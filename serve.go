package exadla

import "exadla/internal/serve"

// ServeConfig configures the solve service started by Serve: HTTP address,
// executor lanes, admission budgets, factorization-cache capacity, and the
// batched small-problem fast path. The zero value gets working defaults.
type ServeConfig = serve.Config

// SolveServer is a running dense-linear-algebra service: factorize/solve
// jobs over HTTP (or in-process via Submit), per-tenant admission control
// with load shedding, an LRU factorization cache keyed by matrix
// fingerprint, and batched execution for floods of tiny problems.
type SolveServer = serve.Server

// ServeJob is one submitted problem: an op, its dimensions, and either the
// operator matrix or a fingerprint referencing a factor already resident in
// the server's cache.
type ServeJob = serve.JobSpec

// ServeStatus is a job's observable state: lifecycle, span-derived task
// progress, queue wait, cache disposition, and fingerprint.
type ServeStatus = serve.Status

// ServeShedError is the admission-control rejection carrying the
// Retry-After hint (HTTP 429 on the wire).
type ServeShedError = serve.ShedError

// ServeOp names a job kind accepted by the solve service.
type ServeOp = serve.Op

// Job kinds accepted by the solve service.
const (
	ServeSolveSPD  = serve.OpSolveSPD
	ServeFactorSPD = serve.OpFactorSPD
	ServeSolveLU   = serve.OpSolveLU
	ServeFactorLU  = serve.OpFactorLU
)

// Serve starts a dense-linear-algebra service. With cfg.Addr set it listens
// there (POST /jobs, GET /jobs/{id}, GET /jobs/{id}/result, GET /metrics,
// GET /healthz); with an empty Addr the server runs in-process only and is
// driven through its Submit/WaitJob/Result methods. Call Close to drain and
// stop it.
func Serve(cfg ServeConfig) (*SolveServer, error) {
	return serve.New(cfg)
}
