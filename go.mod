module exadla

go 1.22
