package exadla_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"exadla"
	"exadla/internal/autotune"
	"exadla/internal/blas"
)

func newCtx(t *testing.T, opts ...exadla.Option) *exadla.Context {
	t.Helper()
	ctx := exadla.NewContext(opts...)
	t.Cleanup(ctx.Close)
	return ctx
}

func TestSolveSPD(t *testing.T) {
	ctx := newCtx(t, exadla.WithWorkers(4), exadla.WithTileSize(32))
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 17, 64, 200} {
		a := exadla.RandomSPD(rng, n)
		xTrue := exadla.RandomGeneral(rng, n, 2)
		b := ctx.Multiply(a, xTrue)
		x, err := ctx.SolveSPD(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := exadla.Residual(a, x, b); r > 1e-12 {
			t.Errorf("n=%d: residual %g", n, r)
		}
	}
}

func TestSolveSPDNotPD(t *testing.T) {
	ctx := newCtx(t)
	a := exadla.Identity(5)
	a.Set(3, 3, -1)
	b := exadla.NewMatrix(5, 1)
	if _, err := ctx.SolveSPD(a, b); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestCholeskyFactorReuse(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(2))
	n := 50
	a := exadla.RandomSPD(rng, n)
	f, err := ctx.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		xTrue := exadla.RandomGeneral(rng, n, 1)
		b := ctx.Multiply(a, xTrue)
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := exadla.Residual(a, x, b); r > 1e-12 {
			t.Errorf("trial %d: residual %g", trial, r)
		}
	}
	// L·Lᵀ must reproduce A.
	l := f.L()
	lt := exadla.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lt.Set(i, j, l.At(j, i))
		}
	}
	recon := ctx.Multiply(l, lt)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(recon.At(i, j)-a.At(i, j)) > 1e-10*float64(n) {
				t.Fatalf("L·Lᵀ differs from A at (%d,%d)", i, j)
			}
		}
	}
}

func TestSolveGeneral(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(24))
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 30, 100} {
		a := exadla.RandomGeneral(rng, n, n)
		xTrue := exadla.RandomGeneral(rng, n, 1)
		b := ctx.Multiply(a, xTrue)
		x, err := ctx.Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := exadla.Residual(a, x, b); r > 1e-10 {
			t.Errorf("n=%d: residual %g", n, r)
		}
	}
}

func TestLUFactorReuse(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(4))
	n := 60
	a := exadla.RandomGeneral(rng, n, n)
	f, err := ctx.LU(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := exadla.RandomGeneral(rng, n, 3)
	b := ctx.Multiply(a, xTrue)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := exadla.Residual(a, x, b); r > 1e-10 {
		t.Errorf("residual %g", r)
	}
}

func TestLeastSquares(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(5))
	m, n := 120, 40
	a := exadla.RandomGeneral(rng, m, n)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)
	x, err := ctx.LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := x.Dims()
	if rows != n || cols != 1 {
		t.Fatalf("solution dims %d×%d", rows, cols)
	}
	for i := 0; i < n; i++ {
		if math.Abs(x.At(i, 0)-xTrue.At(i, 0)) > 1e-9 {
			t.Fatalf("x[%d] = %v want %v", i, x.At(i, 0), xTrue.At(i, 0))
		}
	}
}

func TestQRFactorPieces(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(6))
	m, n := 48, 32
	a := exadla.RandomGeneral(rng, m, n)
	f := ctx.QR(a)
	// Qᵀ·A must equal [R; 0].
	qta := f.QTb(a)
	r := f.R()
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := 0.0
			if i <= j {
				want = r.At(i, j)
			}
			if math.Abs(qta.At(i, j)-want) > 1e-10*float64(m) {
				t.Fatalf("QᵀA differs from R at (%d,%d)", i, j)
			}
		}
	}
}

func TestSolveMixed(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(7))
	n := 120
	a := exadla.RandomWithCond(rng, n, n, 100)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)
	x, res, err := ctx.SolveMixed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("not converged: %+v", res)
	}
	if r := exadla.Residual(a, x, b); r > 1e-12 {
		t.Errorf("residual %g", r)
	}
}

func TestSolveMixedSPD(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(8))
	n := 80
	a := exadla.RandomSPDWithCond(rng, n, 50)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)
	x, res, err := ctx.SolveMixedSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && !res.FellBack {
		t.Errorf("no outcome: %+v", res)
	}
	if r := exadla.Residual(a, x, b); r > 1e-11 {
		t.Errorf("residual %g", r)
	}
}

func TestTSQRLeastSquares(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(9))
	m, n := 500, 12
	a := exadla.RandomGeneral(rng, m, n)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)
	x, err := ctx.TSQRLeastSquares(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(x.At(i, 0)-xTrue.At(i, 0)) > 1e-9 {
			t.Fatalf("x[%d] differs", i)
		}
	}
}

func TestRandomizedLeastSquares(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(10))
	m, n := 800, 20
	a := exadla.RandomWithCond(rng, m, n, 1e5)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)
	x, err := ctx.RandomizedLeastSquares(rng, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(x.At(i, 0)-xTrue.At(i, 0)) > 1e-6 {
			t.Fatalf("x[%d] = %v want %v", i, x.At(i, 0), xTrue.At(i, 0))
		}
	}
}

func TestCondEst(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(11))
	a := exadla.RandomWithCond(rng, 100, 30, 1e4)
	est := ctx.CondEst(rng, a)
	if est < 1e3 || est > 1e5 {
		t.Errorf("cond estimate %g for cond 1e4", est)
	}
}

func TestMultiply(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(8))
	rng := rand.New(rand.NewSource(12))
	a := exadla.RandomGeneral(rng, 13, 21)
	b := exadla.RandomGeneral(rng, 21, 9)
	c := ctx.Multiply(a, b)
	for i := 0; i < 13; i++ {
		for j := 0; j < 9; j++ {
			want := 0.0
			for k := 0; k < 21; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 1e-10 {
				t.Fatalf("C(%d,%d) = %v want %v", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestTracing(t *testing.T) {
	ctx := newCtx(t, exadla.WithTracing(), exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(13))
	a := exadla.RandomSPD(rng, 64)
	if _, err := ctx.Cholesky(a); err != nil {
		t.Fatal(err)
	}
	st := ctx.TraceStats()
	if st.Tasks == 0 {
		t.Error("tracing recorded no tasks")
	}
	if st.ByKernel["potrf"] <= 0 {
		t.Error("no potrf kernel time recorded")
	}
	ctx.ResetTrace()
	if ctx.TraceStats().Tasks != 0 {
		t.Error("ResetTrace did not clear")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := exadla.NewMatrix(3, 2)
	m.Set(2, 1, 5)
	if m.At(2, 1) != 5 {
		t.Error("At/Set")
	}
	c := m.Clone()
	c.Set(2, 1, 9)
	if m.At(2, 1) != 5 {
		t.Error("Clone not deep")
	}
	if r, cc := m.Dims(); r != 3 || cc != 2 {
		t.Error("Dims")
	}
	// Norms of a known matrix.
	a := exadla.FromSlice(2, 2, []float64{1, -3, 2, 4}) // [[1,2],[-3,4]]
	if a.Norm(exadla.One) != 6 {
		t.Errorf("One norm %v", a.Norm(exadla.One))
	}
	if a.Norm(exadla.Inf) != 7 {
		t.Errorf("Inf norm %v", a.Norm(exadla.Inf))
	}
	if a.Norm(exadla.Max) != 4 {
		t.Errorf("Max norm %v", a.Norm(exadla.Max))
	}
	want := math.Sqrt(1 + 9 + 4 + 16)
	if math.Abs(a.Norm(exadla.Frobenius)-want) > 1e-14 {
		t.Errorf("Frobenius %v", a.Norm(exadla.Frobenius))
	}
}

func TestDimensionErrors(t *testing.T) {
	ctx := newCtx(t)
	a := exadla.NewMatrix(3, 4)
	b := exadla.NewMatrix(3, 1)
	if _, err := ctx.Solve(a, b); err == nil {
		t.Error("Solve accepted non-square A")
	}
	sq := exadla.Identity(3)
	bad := exadla.NewMatrix(5, 1)
	if _, err := ctx.SolveSPD(sq, bad); err == nil {
		t.Error("SolveSPD accepted mismatched RHS")
	}
	if _, err := ctx.LeastSquares(a, b); err == nil {
		t.Error("LeastSquares accepted wide matrix")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	exadla.FromSlice(2, 2, []float64{1, 2, 3})
}

func TestInvert(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(20))
	n := 60
	a := exadla.RandomWithCond(rng, n, n, 100)
	inv, err := ctx.Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := ctx.Multiply(a, inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-10*float64(n) {
				t.Fatalf("A·A⁻¹ (%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestInvertSPD(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(21))
	n := 50
	a := exadla.RandomSPD(rng, n)
	inv, err := ctx.InvertSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric and a true inverse.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if inv.At(i, j) != inv.At(j, i) {
				t.Fatalf("inverse not symmetric at (%d,%d)", i, j)
			}
		}
	}
	prod := ctx.Multiply(a, inv)
	for i := 0; i < n; i++ {
		if math.Abs(prod.At(i, i)-1) > 1e-10*float64(n) {
			t.Fatalf("diagonal (%d) = %v", i, prod.At(i, i))
		}
	}
}

func TestInvertSingular(t *testing.T) {
	ctx := newCtx(t)
	a := exadla.NewMatrix(4, 4) // zero matrix
	if _, err := ctx.Invert(a); err == nil {
		t.Error("expected error inverting singular matrix")
	}
}

func TestQRTreePublicAPI(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(22))
	m, n := 96, 32
	a := exadla.RandomGeneral(rng, m, n)
	f := ctx.QRTree(a)
	qta := f.QTb(a)
	r := f.R()
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := 0.0
			if i <= j {
				want = r.At(i, j)
			}
			if math.Abs(qta.At(i, j)-want) > 1e-10*float64(m) {
				t.Fatalf("tree QᵀA differs from R at (%d,%d)", i, j)
			}
		}
	}
}

func TestWithTuningTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	// Write a table mapping cholesky n=64 at this worker count to nb=8.
	tab := autotune.NewTable()
	tab.Set(autotune.Key("cholesky", 64, 3), 8)
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, exadla.WithWorkers(3), exadla.WithTileSize(32), exadla.WithTuningTable(path))
	rng := rand.New(rand.NewSource(30))
	a := exadla.RandomSPD(rng, 64)
	xTrue := exadla.RandomGeneral(rng, 64, 1)
	b := ctx.Multiply(a, xTrue)
	x, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := exadla.Residual(a, x, b); r > 1e-12 {
		t.Errorf("tuned solve residual %g", r)
	}
	// Untuned shape must still work through the default tile size.
	a2 := exadla.RandomSPD(rng, 50)
	b2 := ctx.Multiply(a2, exadla.RandomGeneral(rng, 50, 1))
	if _, err := ctx.SolveSPD(a2, b2); err != nil {
		t.Fatal(err)
	}
}

func TestWithTuningTableGemmBlocking(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	// Machine-global gemm.* keys (as written by exatune -op gemm) must be
	// installed into the packed-GEMM blocking when the table is loaded;
	// absent fields keep their prior values.
	prev := blas.GemmBlocking()
	t.Cleanup(func() { blas.SetGemmBlocking(prev) })
	tab := autotune.NewTable()
	tab.Set(autotune.GlobalKey("gemm.kc"), 192)
	tab.Set(autotune.GlobalKey("gemm.mc"), 128)
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, exadla.WithTuningTable(path))
	got := blas.GemmBlocking()
	if got.KC != 192 || got.MC != 128 {
		t.Errorf("blocking after load = %+v, want KC=192 MC=128", got)
	}
	if got.MR != prev.MR || got.NR != prev.NR || got.NC != prev.NC {
		t.Errorf("untuned fields changed: %+v (prev %+v)", got, prev)
	}
	// The tuned blocking must still produce correct results end-to-end.
	rng := rand.New(rand.NewSource(31))
	a := exadla.RandomSPD(rng, 96)
	xTrue := exadla.RandomGeneral(rng, 96, 1)
	b := ctx.Multiply(a, xTrue)
	x, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := exadla.Residual(a, x, b); r > 1e-12 {
		t.Errorf("tuned solve residual %g", r)
	}
}

func TestWithTuningTableMissingFile(t *testing.T) {
	// Missing file is fine (empty table).
	ctx := exadla.NewContext(exadla.WithTuningTable(filepath.Join(t.TempDir(), "none.json")))
	ctx.Close()
}
