package exadla

import (
	"log/slog"

	"exadla/internal/obs"
)

// WithObsServer starts a live observability HTTP server on addr (host:port;
// port 0 picks an ephemeral port, reported by Context.ObsAddr) for the
// lifetime of the Context. The server exposes:
//
//	/metrics        process metrics, Prometheus text format
//	                (append ?format=json for the JSON snapshot)
//	/trace          the live trace as Chrome/Perfetto JSON
//	                (requires WithTracing; 404 otherwise)
//	/healthz        JSON liveness report
//	/debug/pprof/   net/http/pprof CPU, heap, and goroutine profiling
//
// A failure to bind the address panics, like other misconfigured options:
// silently running without the requested introspection would be worse.
func WithObsServer(addr string) Option {
	return func(c *Context) { c.obsAddr = addr }
}

// WithEventLog routes scheduler failure events — retries, permanent
// failures, chaos injections, ABFT corruption corrections — through the
// given structured logger: retried attempts at Warn, permanent failures at
// Error, each carrying kernel, seq, attempt, kind, and error attributes.
// A nil logger uses slog.Default().
func WithEventLog(l *slog.Logger) Option {
	return func(c *Context) {
		if l == nil {
			l = slog.Default()
		}
		c.eventLog = l
	}
}

// ObsAddr returns the observability server's actual listen address, or ""
// when WithObsServer was not used. Useful with port 0.
func (c *Context) ObsAddr() string {
	if c.obs == nil {
		return ""
	}
	return c.obs.Addr()
}

// startObs starts the observability server if one was requested.
func (c *Context) startObs() {
	if c.obsAddr == "" {
		return
	}
	s, err := obs.Start(c.obsAddr, obs.Options{
		Trace: c.log,
		Health: func() map[string]any {
			fs := c.FaultStats()
			return map[string]any{
				"workers":      c.workers,
				"tasks_failed": fs.Failed,
			}
		},
	})
	if err != nil {
		panic("exadla: " + err.Error())
	}
	c.obs = s
}
