package exadla

import (
	"fmt"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/tile"
)

// Matrix is a dense float64 matrix in column-major order. The zero value is
// not usable; construct with NewMatrix or FromSlice.
type Matrix struct {
	rows, cols int
	data       []float64 // column-major, leading dimension == rows
}

// NewMatrix allocates a rows×cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("exadla: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice wraps existing column-major data (leading dimension rows) in a
// Matrix without copying. len(data) must be rows·cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("exadla: FromSlice got %d elements for %d×%d", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// Dims returns the matrix dimensions.
func (m *Matrix) Dims() (rows, cols int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i+j*m.rows]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i+j*m.rows] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("exadla: index (%d,%d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// Data exposes the backing column-major storage (leading dimension = row
// count). Mutating it mutates the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{rows: m.rows, cols: m.cols, data: append([]float64(nil), m.data...)}
}

// Norm computes a matrix norm: exadla.One, Inf, Frobenius, or Max.
func (m *Matrix) Norm(n NormKind) float64 {
	return lapack.Lange(lapack.Norm(n), m.rows, m.cols, m.data, m.rows)
}

// NormKind selects a matrix norm for Matrix.Norm.
type NormKind byte

// Supported norms.
const (
	One       NormKind = NormKind(lapack.OneNorm)
	Inf       NormKind = NormKind(lapack.InfNorm)
	Frobenius NormKind = NormKind(lapack.FrobeniusNorm)
	Max       NormKind = NormKind(lapack.MaxAbs)
)

// RandomGeneral returns a rows×cols matrix of standard normal entries.
func RandomGeneral(rng *rand.Rand, rows, cols int) *Matrix {
	return FromSlice(rows, cols, matgen.Dense[float64](rng, rows, cols))
}

// RandomSPD returns an n×n well-conditioned symmetric positive definite
// matrix (O(n²) generation).
func RandomSPD(rng *rand.Rand, n int) *Matrix {
	return FromSlice(n, n, matgen.DiagDomSPD[float64](rng, n))
}

// RandomSPDWithCond returns an n×n SPD matrix with the given 2-norm
// condition number (O(n³) generation).
func RandomSPDWithCond(rng *rand.Rand, n int, cond float64) *Matrix {
	return FromSlice(n, n, matgen.SPDWithCond[float64](rng, n, cond))
}

// RandomWithCond returns a rows×cols matrix with the given 2-norm condition
// number.
func RandomWithCond(rng *rand.Rand, rows, cols int, cond float64) *Matrix {
	return FromSlice(rows, cols, matgen.WithCond[float64](rng, rows, cols, cond))
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	return FromSlice(n, n, matgen.Identity[float64](n))
}

// Multiply computes C = A·B on the Context's worker pool using tiled GEMM.
func (c *Context) Multiply(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("exadla: Multiply dims %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	ta := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, c.tileSize)
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, c.tileSize)
	tc := tile.New[float64](a.rows, b.cols, c.tileSize)
	coreGemm(c.scheduler(), ta, tb, tc)
	return FromSlice(a.rows, b.cols, tc.ToColMajor())
}

// Residual returns ‖B − A·X‖∞ / (‖A‖∞·‖X‖∞ + ‖B‖∞), the normwise backward
// error of X as a solution of A·X = B — the quantity EXPERIMENTS.md reports.
func Residual(a, x, b *Matrix) float64 {
	r := b.Clone()
	blas.Gemm(blas.NoTrans, blas.NoTrans, b.rows, b.cols, a.cols,
		-1, a.data, a.rows, x.data, x.rows, 1, r.data, r.rows)
	den := a.Norm(Inf)*x.Norm(Inf) + b.Norm(Inf)
	if den == 0 {
		return r.Norm(Inf)
	}
	return r.Norm(Inf) / den
}
