package exadla_test

import (
	"math/rand"
	"testing"
	"time"

	"exadla"
	"exadla/internal/sched"
)

// TestHardChaosSolveSPDRecovers is the public hard-fault acceptance run:
// workers are killed and tasks hung mid-solve, the liveness watchdog
// replaces the workers and re-executes the reaped tasks, and the solve
// still lands on the right answer. The span trace must agree exactly
// with the Context's fault counters (the satellite cross-check).
func TestHardChaosSolveSPDRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const n = 288
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t,
		exadla.WithWorkers(4), exadla.WithTileSize(48),
		exadla.WithTracing(),
		exadla.WithErasure(),
		exadla.WithTaskDeadline(300*time.Millisecond),
		exadla.WithHardChaos(82, 0.05, 0.03, 3))
	got, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD under hard chaos: %v", err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}

	fs := ctx.FaultStats()
	if fs.TimedOut < 1 || fs.TimedOut > 3 {
		t.Errorf("FaultStats.TimedOut = %d, want 1..3 (budget 3)", fs.TimedOut)
	}
	if fs.Failed != 0 {
		t.Errorf("FaultStats.Failed = %d, want 0 (generous retry budget)", fs.Failed)
	}

	var retried, timedOut, failed int64
	for _, e := range ctx.TraceLog().Events() {
		switch e.Outcome {
		case sched.OutcomeRetried, sched.OutcomeCorrected:
			retried++
		case sched.OutcomeTimedOut:
			timedOut++
		case sched.OutcomeFailed:
			failed++
		}
	}
	if timedOut != fs.TimedOut {
		t.Errorf("span trace has %d timed-out attempts, FaultStats.TimedOut = %d", timedOut, fs.TimedOut)
	}
	// Every reaped attempt was re-executed through the retry path (the
	// budget was never exhausted), so retry accounting covers soft
	// retries, corrected corruption, and watchdog timeouts together.
	if retried+timedOut != fs.Retried {
		t.Errorf("span trace has %d retried+timed-out attempts, FaultStats.Retried = %d",
			retried+timedOut, fs.Retried)
	}
	if failed != fs.Failed {
		t.Errorf("span trace has %d failed attempts, FaultStats.Failed = %d", failed, fs.Failed)
	}
}

// TestHardChaosSolveGeneral: the LU solver path under worker kills.
func TestHardChaosSolveGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const n = 240
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t,
		exadla.WithWorkers(4), exadla.WithTileSize(48),
		exadla.WithTaskDeadline(300*time.Millisecond),
		exadla.WithHardChaos(84, 0.06, 0, 2))
	got, err := ctx.Solve(a, b)
	if err != nil {
		t.Fatalf("Solve under hard chaos: %v", err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}
	if fs := ctx.FaultStats(); fs.TimedOut < 1 || fs.TimedOut > 2 {
		t.Errorf("FaultStats.TimedOut = %d, want 1..2 (budget 2)", fs.TimedOut)
	}
}

// TestWithErasureCleanSolve: erasure armed on a clean run is invisible —
// right answer, nothing detected, nothing reconstructed.
func TestWithErasureCleanSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	const n = 160
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t, exadla.WithErasure(), exadla.WithTileSize(48))
	got, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}
	fs := ctx.FaultStats()
	if fs.Detected != 0 || fs.TilesReconstructed != 0 || fs.TimedOut != 0 {
		t.Errorf("clean erasure run reported faults: %+v", fs)
	}
}
