package exadla

import (
	"fmt"

	"exadla/internal/ckpt"
	"exadla/internal/core"
	"exadla/internal/tile"
)

// WithCheckpoint arms checkpoint/restart on Cholesky, SolveSPD, LU and
// Solve: after every `every`-th panel step (minimum 1) a consistent
// snapshot of the tile matrix and the DAG frontier — plus, for LU, the
// pivot state of the completed steps — is written atomically into dir.
// A run that dies can be resumed with Context.Resume and, the kernels
// being deterministic, finishes with a factor bitwise identical to an
// uninterrupted run. A checkpoint that cannot be written fails the
// factorization rather than continuing unprotected.
//
// Checkpointing currently takes precedence over WithFaultTolerance on
// the same Context: the snapshot task would need to capture checksum
// state too for the two to compose, which is future work. Use ABFT for
// silent corruption and in-run hard faults, checkpointing for whole-
// process loss.
func WithCheckpoint(dir string, every int) Option {
	if dir == "" {
		panic("exadla: WithCheckpoint needs a directory")
	}
	return func(c *Context) {
		c.ckptDir = dir
		c.ckptEvery = every
	}
}

func (c *Context) ckptOptions() core.CkptOptions {
	return core.CkptOptions{Dir: c.ckptDir, Every: c.ckptEvery}
}

// Resumed is the result of Context.Resume: the factorization kind found
// in the checkpoint directory and the finished factor, ready to solve
// with — exactly one of Cholesky and LU is non-nil.
type Resumed struct {
	// Op is "cholesky" or "lu".
	Op       string
	Cholesky *CholeskyFactor
	LU       *LUFactor
}

// Resume restarts the factorization recorded in dir from its newest
// valid checkpoint (corrupt or torn files are skipped; older snapshots
// are used instead), runs it to completion, and returns the finished
// factor. The remaining panel steps replay the identical kernels on the
// checkpointed bits, so the factor matches what the interrupted run
// would have produced, bitwise. Checkpointing continues during the
// resumed run, into the same directory.
func (c *Context) Resume(dir string) (*Resumed, error) {
	ck, path, err := ckpt.Latest(dir)
	if err != nil {
		return nil, err
	}
	opt := core.CkptOptions{Dir: dir, Every: c.ckptEvery}
	switch ck.Op {
	case ckpt.OpCholesky:
		var t *tile.Matrix[float64]
		if t, err = core.ResumeCholesky(c.scheduler(), ck, opt); err != nil {
			return nil, fmt.Errorf("exadla: resuming %s: %w", path, err)
		}
		return &Resumed{Op: "cholesky", Cholesky: &CholeskyFactor{ctx: c, l: t, n: ck.M}}, nil
	case ckpt.OpLU:
		var f *core.LUFactors[float64]
		if f, err = core.ResumeLU(c.scheduler(), ck, opt); err != nil {
			return nil, fmt.Errorf("exadla: resuming %s: %w", path, err)
		}
		return &Resumed{Op: "lu", LU: &LUFactor{ctx: c, f: f, n: ck.M}}, nil
	}
	return nil, fmt.Errorf("exadla: checkpoint %s holds unknown operation %v", path, ck.Op)
}
