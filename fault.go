package exadla

import (
	"time"

	"exadla/internal/core"
	"exadla/internal/obs"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// WithFaultTolerance routes Cholesky, SolveSPD, LU and Solve through the
// ABFT-protected tile factorizations: per-tile checksums are carried (or
// recorded) alongside the numerical tiles, verified after each panel step,
// and detected corruption is corrected in place and re-verified through the
// scheduler's retry path. If no retry policy was configured explicitly
// (WithTaskRetry), a default of 3 attempts with no backoff is installed,
// since recovery re-execution rides on task retries. Counts are reported by
// Context.FaultStats.
func WithFaultTolerance() Option {
	return func(c *Context) { c.faultTolerant = true }
}

// WithTaskRetry installs the scheduler retry policy: a transiently failed
// task is re-enqueued up to max times, with capped exponential backoff
// starting at the given delay (0 retries immediately). See sched.WithRetry.
func WithTaskRetry(max int, backoff time.Duration) Option {
	return func(c *Context) {
		c.retryMax, c.retryBackoff = max, backoff
		c.retrySet = true
	}
}

// WithChaos arms the scheduler's seeded fault-injection layer: every task
// attempt fails with probability taskFailProb before its body runs. Combine
// with WithTaskRetry to exercise recovery, or leave retries off to observe
// failure aggregation. For the delay distribution variant use the sched
// package directly.
func WithChaos(seed int64, taskFailProb float64) Option {
	return func(c *Context) {
		c.chaosSeed, c.chaosProb = seed, taskFailProb
		c.chaosSet = true
	}
}

// WithTaskDeadline arms the scheduler's liveness watchdog: a task attempt
// that has not completed d after starting is presumed lost with its worker
// (hang, deadlock, dead process), the worker is replaced, and the task is
// re-executed through the retry path. Choose d comfortably above the
// slowest legitimate kernel — a deadline that fires on healthy tasks burns
// retry budget on re-executions that were never needed.
func WithTaskDeadline(d time.Duration) Option {
	return func(c *Context) { c.taskDeadline = d }
}

// WithHardChaos injects hard faults for resilience testing: each task
// attempt is, with the given probabilities, killed together with its
// worker (KillWorker: the goroutine executing it exits) or hung forever
// (HangTask: the attempt never completes) — both struck before the task
// body runs, so a watchdog re-execution computes on clean inputs.
// maxFaults caps the total number of strikes (negative means unlimited).
// Recovery requires the watchdog, so if no WithTaskDeadline was given a
// 2-second deadline is installed, and if no WithTaskRetry was given the
// retry budget defaults to 50 attempts (hard faults re-execute through
// the retry path).
func WithHardChaos(seed int64, killWorkerProb, hangTaskProb float64, maxFaults int) Option {
	return func(c *Context) {
		c.hardChaosSeed = seed
		c.killWorkerProb, c.hangTaskProb = killWorkerProb, hangTaskProb
		c.hardChaosBudget = maxFaults
		c.hardChaosSet = true
	}
}

// WithErasure arms per-tile-row XOR parity on the fault-tolerant
// factorizations (implies WithFaultTolerance): finalized tiles are
// committed to a parity group, and a tile found wholesale-lost by
// checksum verification — faults across multiple columns rather than a
// single flipped entry — is rebuilt bit-exactly by XOR subtraction
// instead of failing the run. FaultStats.TilesReconstructed counts the
// rebuilds.
func WithErasure() Option {
	return func(c *Context) {
		c.faultTolerant = true
		c.erasure = true
	}
}

// FaultStats is a point-in-time snapshot of the Context's fault-tolerance
// counters, accumulated across operations since the Context was created.
type FaultStats struct {
	// Injected counts corruptions introduced through an injection hook
	// (exabench's fault driver; zero in production use).
	Injected int64
	// Detected counts verification events that found checksum faults, and
	// Corrected / Unlocated the per-fault outcomes.
	Detected, Corrected, Unlocated int64
	// Retried counts task attempts re-enqueued by the scheduler's retry
	// policy; Failed counts task failures that exhausted it (or were not
	// retryable).
	Retried, Failed int64
	// TilesReconstructed counts whole tiles rebuilt from row parity after
	// a hard loss (WithErasure).
	TilesReconstructed int64
	// TimedOut counts task attempts reaped by the liveness watchdog
	// (WithTaskDeadline) — each one also cost a presumed-dead worker its
	// slot (the pool replaces it).
	TimedOut int64
}

// FaultStats reports the fault-tolerance counters.
func (c *Context) FaultStats() FaultStats {
	return FaultStats{
		Injected:           c.ftStats.Injected.Load(),
		Detected:           c.ftStats.Detected.Load(),
		Corrected:          c.ftStats.Corrected.Load(),
		Unlocated:          c.ftStats.Unlocated.Load(),
		Retried:            c.retried.Load(),
		Failed:             c.failed.Load(),
		TilesReconstructed: c.ftStats.TilesReconstructed.Load(),
		TimedOut:           c.timedOut.Load(),
	}
}

// faultSchedOpts assembles the scheduler options implied by the Context's
// fault-tolerance configuration.
func (c *Context) faultSchedOpts() []sched.Option {
	var opts []sched.Option
	retryMax, backoff := c.retryMax, c.retryBackoff
	if !c.retrySet && c.faultTolerant {
		retryMax, backoff = 3, 0
	}
	if !c.retrySet && c.hardChaosSet {
		// Hard-fault recovery rides on retries, and every kill or hang
		// consumes one attempt: be generous by default.
		retryMax, backoff = 50, 0
	}
	if retryMax > 0 {
		opts = append(opts, sched.WithRetry(retryMax, backoff))
	}
	if c.chaosSet {
		opts = append(opts, sched.WithChaos(c.chaosSeed, c.chaosProb, nil))
	}
	deadline := c.taskDeadline
	if deadline <= 0 && c.hardChaosSet {
		// The watchdog is the only recovery path for hard chaos; arm it.
		deadline = 2 * time.Second
	}
	if deadline > 0 {
		opts = append(opts, sched.WithTaskDeadline(deadline))
	}
	if c.hardChaosSet {
		opts = append(opts, sched.WithHardChaos(c.hardChaosSeed, c.killWorkerProb, c.hangTaskProb, c.hardChaosBudget))
	}
	if retryMax > 0 || c.chaosSet || c.hardChaosSet || deadline > 0 || c.faultTolerant || c.eventLog != nil {
		logFn := func(sched.FailureEvent) {}
		if c.eventLog != nil {
			logFn = obs.FailureLogger(c.eventLog)
		}
		opts = append(opts, sched.WithFailureObserver(func(ev sched.FailureEvent) {
			if ev.Retrying {
				c.retried.Add(1)
			} else {
				c.failed.Add(1)
			}
			if ev.TimedOut {
				c.timedOut.Add(1)
			}
			logFn(ev)
		}))
	}
	return opts
}

// ftOptions builds the per-operation resilience options. Corruption and
// loss injection hooks are deliberately not part of the public surface —
// the benchmark fault driver and the tests use internal/core directly.
func (c *Context) ftOptions() core.FTOptions {
	return core.FTOptions{Stats: &c.ftStats, Erasure: c.erasure}
}

// cholesky routes to the checkpointed, resilient, or plain tile
// factorization per the Context configuration. Checkpointing takes
// precedence over ABFT (see WithCheckpoint for why they do not compose
// yet).
func (c *Context) cholesky(t *tile.Matrix[float64]) error {
	if c.ckptDir != "" {
		return core.CheckpointedCholesky(c.scheduler(), t, c.ckptOptions())
	}
	if c.faultTolerant {
		return core.ResilientCholesky(c.scheduler(), t, c.ftOptions())
	}
	return core.Cholesky(c.scheduler(), t)
}

// lu routes to the checkpointed, resilient, or plain tile LU
// factorization.
func (c *Context) lu(t *tile.Matrix[float64]) (*core.LUFactors[float64], error) {
	if c.ckptDir != "" {
		return core.CheckpointedLU(c.scheduler(), t, c.ckptOptions())
	}
	if c.faultTolerant {
		return core.ResilientLU(c.scheduler(), t, c.ftOptions())
	}
	return core.LU(c.scheduler(), t)
}
