package exadla

import (
	"time"

	"exadla/internal/core"
	"exadla/internal/obs"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// WithFaultTolerance routes Cholesky, SolveSPD, LU and Solve through the
// ABFT-protected tile factorizations: per-tile checksums are carried (or
// recorded) alongside the numerical tiles, verified after each panel step,
// and detected corruption is corrected in place and re-verified through the
// scheduler's retry path. If no retry policy was configured explicitly
// (WithTaskRetry), a default of 3 attempts with no backoff is installed,
// since recovery re-execution rides on task retries. Counts are reported by
// Context.FaultStats.
func WithFaultTolerance() Option {
	return func(c *Context) { c.faultTolerant = true }
}

// WithTaskRetry installs the scheduler retry policy: a transiently failed
// task is re-enqueued up to max times, with capped exponential backoff
// starting at the given delay (0 retries immediately). See sched.WithRetry.
func WithTaskRetry(max int, backoff time.Duration) Option {
	return func(c *Context) {
		c.retryMax, c.retryBackoff = max, backoff
		c.retrySet = true
	}
}

// WithChaos arms the scheduler's seeded fault-injection layer: every task
// attempt fails with probability taskFailProb before its body runs. Combine
// with WithTaskRetry to exercise recovery, or leave retries off to observe
// failure aggregation. For the delay distribution variant use the sched
// package directly.
func WithChaos(seed int64, taskFailProb float64) Option {
	return func(c *Context) {
		c.chaosSeed, c.chaosProb = seed, taskFailProb
		c.chaosSet = true
	}
}

// FaultStats is a point-in-time snapshot of the Context's fault-tolerance
// counters, accumulated across operations since the Context was created.
type FaultStats struct {
	// Injected counts corruptions introduced through an injection hook
	// (exabench's fault driver; zero in production use).
	Injected int64
	// Detected counts verification events that found checksum faults, and
	// Corrected / Unlocated the per-fault outcomes.
	Detected, Corrected, Unlocated int64
	// Retried counts task attempts re-enqueued by the scheduler's retry
	// policy; Failed counts task failures that exhausted it (or were not
	// retryable).
	Retried, Failed int64
}

// FaultStats reports the fault-tolerance counters.
func (c *Context) FaultStats() FaultStats {
	return FaultStats{
		Injected:  c.ftStats.Injected.Load(),
		Detected:  c.ftStats.Detected.Load(),
		Corrected: c.ftStats.Corrected.Load(),
		Unlocated: c.ftStats.Unlocated.Load(),
		Retried:   c.retried.Load(),
		Failed:    c.failed.Load(),
	}
}

// faultSchedOpts assembles the scheduler options implied by the Context's
// fault-tolerance configuration.
func (c *Context) faultSchedOpts() []sched.Option {
	var opts []sched.Option
	retryMax, backoff := c.retryMax, c.retryBackoff
	if !c.retrySet && c.faultTolerant {
		retryMax, backoff = 3, 0
	}
	if retryMax > 0 {
		opts = append(opts, sched.WithRetry(retryMax, backoff))
	}
	if c.chaosSet {
		opts = append(opts, sched.WithChaos(c.chaosSeed, c.chaosProb, nil))
	}
	if retryMax > 0 || c.chaosSet || c.faultTolerant || c.eventLog != nil {
		logFn := func(sched.FailureEvent) {}
		if c.eventLog != nil {
			logFn = obs.FailureLogger(c.eventLog)
		}
		opts = append(opts, sched.WithFailureObserver(func(ev sched.FailureEvent) {
			if ev.Retrying {
				c.retried.Add(1)
			} else {
				c.failed.Add(1)
			}
			logFn(ev)
		}))
	}
	return opts
}

// ftOptions builds the per-operation resilience options. Corruption
// injection hooks are deliberately not part of the public surface — the
// benchmark fault driver and the tests use internal/core directly.
func (c *Context) ftOptions() core.FTOptions {
	return core.FTOptions{Stats: &c.ftStats}
}

// cholesky routes to the resilient or plain tile factorization per the
// Context configuration.
func (c *Context) cholesky(t *tile.Matrix[float64]) error {
	if c.faultTolerant {
		return core.ResilientCholesky(c.scheduler(), t, c.ftOptions())
	}
	return core.Cholesky(c.scheduler(), t)
}

// lu routes to the resilient or plain tile LU factorization.
func (c *Context) lu(t *tile.Matrix[float64]) (*core.LUFactors[float64], error) {
	if c.faultTolerant {
		return core.ResilientLU(c.scheduler(), t, c.ftOptions())
	}
	return core.LU(c.scheduler(), t)
}
