// Benchmarks regenerating the timing side of the experiment suite (E1–E8 in
// DESIGN.md). Each experiment's full table — including the simulated
// scaling series — is produced by cmd/exabench; these testing.B targets
// cover the directly measurable kernels so `go test -bench=.` tracks them.
package exadla_test

import (
	"fmt"
	"math/rand"
	"testing"

	"exadla"
	"exadla/internal/batch"
	"exadla/internal/blas"
	"exadla/internal/ca"
	"exadla/internal/core"
	"exadla/internal/dist"
	"exadla/internal/ft"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/mixed"
	"exadla/internal/rnd"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// reportGFLOPS attaches a flops/s metric to the benchmark.
func reportGFLOPS(b *testing.B, flops float64) {
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// ---- Substrate: GEMM ----

func BenchmarkGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{128, 256, 512} {
		a := matgen.Dense[float64](rng, n, n)
		bb := matgen.Dense[float64](rng, n, n)
		c := make([]float64, n*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
			}
			reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n))
		})
	}
}

// BenchmarkGemmAxpy tracks the pre-packing axpy path — the baseline the
// packed register-blocked kernel is graded against (see BENCH_gemm.json).
func BenchmarkGemmAxpy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{128, 256, 512} {
		a := matgen.Dense[float64](rng, n, n)
		bb := matgen.Dense[float64](rng, n, n)
		c := make([]float64, n*n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blas.GemmAxpy(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
			}
			reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n))
		})
	}
}

func BenchmarkGemmFloat32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 512
	a := matgen.Dense[float32](rng, n, n)
	bb := matgen.Dense[float32](rng, n, n)
	c := make([]float32, n*n)
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
		}
		reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n))
	})
}

// ---- E1: tile Cholesky, dataflow vs fork-join (real runtime) ----

func benchCholesky(b *testing.B, n, nb int, forkJoin bool) {
	rng := rand.New(rand.NewSource(int64(n)))
	aD := matgen.DiagDomSPD[float64](rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := tile.FromColMajor(n, n, aD, n, nb)
		r := sched.New(4)
		b.StartTimer()
		var err error
		if forkJoin {
			err = core.CholeskyForkJoin(r, a)
		} else {
			err = core.Cholesky(r, a)
		}
		b.StopTimer()
		r.Shutdown()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	reportGFLOPS(b, float64(n)*float64(n)*float64(n)/3)
}

func BenchmarkE1_CholeskyDataflow(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchCholesky(b, n, 96, false) })
	}
}

func BenchmarkE1_CholeskyForkJoin(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchCholesky(b, n, 96, true) })
	}
}

// ---- E3: mixed precision vs FP64 solve ----

func BenchmarkE3_SolveFP64(b *testing.B) {
	for _, n := range []int{256, 512} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := matgen.WithCond[float64](rng, n, n, 100)
		rhs := matgen.Dense[float64](rng, n, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				af := append([]float64(nil), a...)
				x := append([]float64(nil), rhs...)
				ipiv := make([]int, n)
				b.StartTimer()
				if err := lapack.Gesv(n, 1, af, n, ipiv, x, n); err != nil {
					b.Fatal(err)
				}
			}
			reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n)/3)
		})
	}
}

func BenchmarkE3_SolveMixed(b *testing.B) {
	for _, n := range []int{256, 512} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := matgen.WithCond[float64](rng, n, n, 100)
		rhs := matgen.Dense[float64](rng, n, 1)
		x := make([]float64, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mixed.SolveLU(n, a, n, rhs, x); err != nil {
					b.Fatal(err)
				}
			}
			reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n)/3)
		})
	}
}

// ---- E4: Householder QR vs TSQR on tall-skinny ----

func BenchmarkE4_HouseholderQR(b *testing.B) {
	for _, m := range []int{20000, 50000} {
		n := 32
		rng := rand.New(rand.NewSource(int64(m)))
		a := matgen.Dense[float64](rng, m, n)
		tau := make([]float64, n)
		b.Run(fmt.Sprintf("m=%d_n=%d", m, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				af := append([]float64(nil), a...)
				b.StartTimer()
				lapack.Geqrf(m, n, af, m, tau)
			}
			reportGFLOPS(b, 2*float64(m)*float64(n)*float64(n))
		})
	}
}

func BenchmarkE4_TSQR(b *testing.B) {
	for _, m := range []int{20000, 50000} {
		n := 32
		rng := rand.New(rand.NewSource(int64(m)))
		a := matgen.Dense[float64](rng, m, n)
		b.Run(fmt.Sprintf("m=%d_n=%d_blocks=16", m, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := sched.New(1)
				ca.Factor(r, m, n, a, m, 16)
				r.Shutdown()
			}
			reportGFLOPS(b, 2*float64(m)*float64(n)*float64(n))
		})
	}
}

// ---- E5: tile-size sweep ----

func BenchmarkE5_TileSweep(b *testing.B) {
	n := 512
	rng := rand.New(rand.NewSource(5))
	aD := matgen.DiagDomSPD[float64](rng, n)
	for _, nb := range []int{32, 64, 96, 128, 256} {
		b.Run(fmt.Sprintf("nb=%d", nb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := tile.FromColMajor(n, n, aD, n, nb)
				r := sched.New(1)
				b.StartTimer()
				if err := core.Cholesky(r, a); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				r.Shutdown()
				b.StartTimer()
			}
			reportGFLOPS(b, float64(n)*float64(n)*float64(n)/3)
		})
	}
}

// ---- E6: ABFT overhead ----

func BenchmarkE6_CholeskyPlain(b *testing.B) {
	n := 384
	rng := rand.New(rand.NewSource(6))
	a := matgen.DiagDomSPD[float64](rng, n)
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ft.CholeskyUnprotected(n, a, n); err != nil {
				b.Fatal(err)
			}
		}
		reportGFLOPS(b, float64(n)*float64(n)*float64(n)/3)
	})
}

func BenchmarkE6_CholeskyABFT(b *testing.B) {
	n := 384
	rng := rand.New(rand.NewSource(6))
	a := matgen.DiagDomSPD[float64](rng, n)
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ft.Cholesky(n, a, n, nil); err != nil {
				b.Fatal(err)
			}
		}
		reportGFLOPS(b, float64(n)*float64(n)*float64(n)/3)
	})
}

// ---- E7: batched vs looped tiny factorizations ----

func BenchmarkE7_Loop(b *testing.B) {
	benchBatch(b, func(n int, mats [][]float64) {
		batch.PotrfSeq(n, mats)
	})
}

func BenchmarkE7_Batched(b *testing.B) {
	r := sched.New(4)
	defer r.Shutdown()
	benchBatch(b, func(n int, mats [][]float64) {
		batch.Potrf(r, n, mats, batch.Options{})
	})
}

func benchBatch(b *testing.B, run func(n int, mats [][]float64)) {
	const count = 1000
	for _, n := range []int{8, 32} {
		rng := rand.New(rand.NewSource(int64(n)))
		orig := make([][]float64, count)
		for i := range orig {
			orig[i] = matgen.DiagDomSPD[float64](rng, n)
		}
		b.Run(fmt.Sprintf("n=%d_count=%d", n, count), func(b *testing.B) {
			mats := make([][]float64, count)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for k := range orig {
					mats[k] = append([]float64(nil), orig[k]...)
				}
				b.StartTimer()
				run(n, mats)
			}
			reportGFLOPS(b, float64(count)*float64(n)*float64(n)*float64(n)/3)
		})
	}
}

// ---- E8: direct QR vs randomized least squares ----

func BenchmarkE8_DirectQR(b *testing.B) {
	m, n := 50000, 100
	rng := rand.New(rand.NewSource(8))
	a := matgen.Dense[float64](rng, m, n)
	rhs := matgen.Dense[float64](rng, m, 1)
	b.Run(fmt.Sprintf("m=%d_n=%d", m, n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			af := append([]float64(nil), a...)
			bf := append([]float64(nil), rhs...)
			b.StartTimer()
			if err := lapack.Gels(m, n, af, m, bf); err != nil {
				b.Fatal(err)
			}
		}
		reportGFLOPS(b, 2*float64(m)*float64(n)*float64(n))
	})
}

func BenchmarkE8_Blendenpik(b *testing.B) {
	m, n := 50000, 100
	rng := rand.New(rand.NewSource(8))
	a := matgen.Dense[float64](rng, m, n)
	rhs := matgen.Dense[float64](rng, m, 1)
	b.Run(fmt.Sprintf("m=%d_n=%d", m, n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := rnd.SolveLSFast(rng, m, n, a, m, rhs, 4.0, 1e-12, 300); err != nil {
				b.Fatal(err)
			}
		}
		reportGFLOPS(b, 2*float64(m)*float64(n)*float64(n))
	})
}

// ---- Public API end-to-end ----

func BenchmarkSolveSPD(b *testing.B) {
	ctx := exadla.NewContext(exadla.WithWorkers(4))
	defer ctx.Close()
	rng := rand.New(rand.NewSource(9))
	n := 512
	a := exadla.RandomSPD(rng, n)
	rhs := exadla.RandomGeneral(rng, n, 1)
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ctx.SolveSPD(a, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E9: three-precision (fp16) refinement ----

func BenchmarkE9_SolveMixedHalf(b *testing.B) {
	n := 256
	rng := rand.New(rand.NewSource(10))
	a := matgen.WithCond[float64](rng, n, n, 50)
	rhs := matgen.Dense[float64](rng, n, 1)
	x := make([]float64, n)
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mixed.SolveLUHalf(n, a, n, rhs, x); err != nil {
				b.Fatal(err)
			}
		}
		reportGFLOPS(b, 2*float64(n)*float64(n)*float64(n)/3)
	})
}

// ---- E10: communication counting throughput (analysis cost itself) ----

func BenchmarkE10_CommCount(b *testing.B) {
	n, nb := 512, 64
	rng := rand.New(rand.NewSource(11))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	if err := core.Cholesky(rec, a); err != nil {
		b.Fatal(err)
	}
	g := rec.Graph()
	place := dist.BlockCyclic(a, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.Count(g, 16, place)
	}
}
