package exadla

import (
	"fmt"
	"math"

	"exadla/internal/blas"
	"exadla/internal/lapack"
)

// EigenSym computes the full spectral decomposition A = V·diag(λ)·Vᵀ of a
// symmetric matrix (lower triangle referenced; A untouched): eigenvalues in
// ascending order and orthonormal eigenvectors as the columns of V.
func (c *Context) EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("exadla: EigenSym needs square matrix, got %d×%d", a.rows, a.cols)
	}
	n := a.rows
	v := a.Clone()
	d := make([]float64, n)
	if err := lapack.Syev(true, n, v.data, n, d); err != nil {
		return nil, nil, err
	}
	return d, v, nil
}

// EigenvaluesSym computes only the eigenvalues of a symmetric matrix
// (ascending; lower triangle referenced; A untouched).
func (c *Context) EigenvaluesSym(a *Matrix) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: EigenvaluesSym needs square matrix, got %d×%d", a.rows, a.cols)
	}
	n := a.rows
	w := a.Clone()
	d := make([]float64, n)
	if err := lapack.Syev(false, n, w.data, n, d); err != nil {
		return nil, err
	}
	return d, nil
}

// SingularValues computes the singular values of an m×n matrix (m ≥ n,
// descending) via the symmetric eigenvalues of AᵀA. This squares the
// condition number, so singular values below ‖A‖·√ε are returned as
// best-effort small values — adequate for rank estimation and diagnostics,
// not for σmin of very ill-conditioned matrices.
func (c *Context) SingularValues(a *Matrix) ([]float64, error) {
	if a.rows < a.cols {
		return nil, fmt.Errorf("exadla: SingularValues needs m ≥ n, got %d×%d", a.rows, a.cols)
	}
	m, n := a.rows, a.cols
	ata := make([]float64, n*n)
	blas.Syrk(blas.Lower, blas.Trans, n, m, 1, a.data, m, 0, ata, n)
	d := make([]float64, n)
	if err := lapack.Syev(false, n, ata, n, d); err != nil {
		return nil, err
	}
	// λ ascending → σ descending.
	out := make([]float64, n)
	for i, l := range d {
		if l < 0 {
			l = 0 // rounding can push tiny eigenvalues negative
		}
		out[n-1-i] = math.Sqrt(l)
	}
	return out, nil
}
