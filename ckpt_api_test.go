package exadla_test

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"exadla"
	"exadla/internal/ckpt"
)

// rewindCheckpoints deletes the newest checkpoint files in dir, keeping
// `keep` of them — simulating a run that died after writing only the
// earlier snapshots.
func rewindCheckpoints(t *testing.T, dir string, keep int) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) <= keep {
		t.Fatalf("only %d checkpoints on disk, cannot keep %d and delete some", len(names), keep)
	}
	for _, n := range names[keep:] {
		if err := os.Remove(filepath.Join(dir, n)); err != nil {
			t.Fatal(err)
		}
	}
}

func bitwiseEqual(t *testing.T, got, want *exadla.Matrix, n int) {
	t.Helper()
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			g, w := got.At(i, j), want.At(i, j)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("entry (%d,%d): %x != %x", i, j, math.Float64bits(g), math.Float64bits(w))
			}
		}
	}
}

// TestCheckpointResumeCholeskyBitwise: factor with checkpointing, rewind
// the checkpoint directory to an earlier snapshot (as if the process had
// died there), Resume on a fresh Context, and get the identical factor —
// bit for bit.
func TestCheckpointResumeCholeskyBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n = 240
	a, _, _ := spdSystem(t, rng, n)
	dir := t.TempDir()

	ctx := newCtx(t, exadla.WithTileSize(48), exadla.WithCheckpoint(dir, 1))
	f, err := ctx.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := f.L()

	rewindCheckpoints(t, dir, 2)

	ctx2 := newCtx(t, exadla.WithTileSize(48))
	res, err := ctx2.Resume(dir)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if res.Op != "cholesky" || res.Cholesky == nil {
		t.Fatalf("Resume returned op %q (cholesky factor %v)", res.Op, res.Cholesky != nil)
	}
	bitwiseEqual(t, res.Cholesky.L(), want, n)
}

// TestCheckpointResumeLUBitwise: the LU analogue, checked end-to-end by
// solving with both the original and the resumed factors — identical
// pivot state and factor bits give a bitwise-identical solution.
func TestCheckpointResumeLUBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const n = 240
	a, b, _ := spdSystem(t, rng, n)
	dir := t.TempDir()

	ctx := newCtx(t, exadla.WithTileSize(48), exadla.WithCheckpoint(dir, 1))
	f, err := ctx.LU(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}

	rewindCheckpoints(t, dir, 1)

	ctx2 := newCtx(t, exadla.WithTileSize(48))
	res, err := ctx2.Resume(dir)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if res.Op != "lu" || res.LU == nil {
		t.Fatalf("Resume returned op %q (lu factor %v)", res.Op, res.LU != nil)
	}
	got, err := res.LU.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g, w := got.At(i, 0), want.At(i, 0)
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("solution[%d]: %x != %x", i, math.Float64bits(g), math.Float64bits(w))
		}
	}
}

// TestResumeEmptyDir: resuming from a directory with no valid checkpoint
// reports ErrNoCheckpoint.
func TestResumeEmptyDir(t *testing.T) {
	ctx := newCtx(t)
	if _, err := ctx.Resume(t.TempDir()); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Errorf("Resume on empty dir = %v, want ErrNoCheckpoint", err)
	}
}
