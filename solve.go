package exadla

import (
	"fmt"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/ca"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/mixed"
	"exadla/internal/rnd"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// coreGemm hides the generic instantiation from matrix.go.
func coreGemm(s sched.Scheduler, a, b, c *tile.Matrix[float64]) {
	core.Gemm(s, blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	s.Wait()
}

// CholeskyFactor is a reusable tile Cholesky factorization.
type CholeskyFactor struct {
	ctx *Context
	l   *tile.Matrix[float64]
	n   int
}

// Cholesky computes the tile Cholesky factorization A = L·Lᵀ of a symmetric
// positive definite matrix (lower triangle referenced; A untouched).
func (c *Context) Cholesky(a *Matrix) (*CholeskyFactor, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: Cholesky needs square matrix, got %d×%d", a.rows, a.cols)
	}
	t := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, c.tileSizeFor("cholesky", a.rows))
	if err := c.cholesky(t); err != nil {
		return nil, err
	}
	return &CholeskyFactor{ctx: c, l: t, n: a.rows}, nil
}

// Solve solves A·X = B using the factorization. B is untouched.
func (f *CholeskyFactor) Solve(b *Matrix) (*Matrix, error) {
	if b.rows != f.n {
		return nil, fmt.Errorf("exadla: RHS has %d rows, factor is %d×%d", b.rows, f.n, f.n)
	}
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, f.l.NB)
	s := f.ctx.scheduler()
	core.TrsmLower(s, blas.NoTrans, f.l, tb)
	core.TrsmLower(s, blas.Trans, f.l, tb)
	s.Wait()
	return FromSlice(b.rows, b.cols, tb.ToColMajor()), nil
}

// L returns the explicit lower-triangular factor as a Matrix.
func (f *CholeskyFactor) L() *Matrix {
	data := f.l.ToColMajor()
	// Zero the (meaningless) strict upper triangle.
	for j := 0; j < f.n; j++ {
		for i := 0; i < j; i++ {
			data[i+j*f.n] = 0
		}
	}
	return FromSlice(f.n, f.n, data)
}

// SolveSPD factors A (SPD) and solves A·X = B in one dataflow graph, the
// recommended one-shot driver.
func (c *Context) SolveSPD(a, b *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: SolveSPD needs square matrix, got %d×%d", a.rows, a.cols)
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("exadla: RHS has %d rows, matrix has %d", b.rows, a.rows)
	}
	nb := c.tileSizeFor("cholesky", a.rows)
	ta := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, nb)
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, nb)
	if c.faultTolerant {
		// Factor resiliently (verified factor), then solve. The extra
		// barrier between the two phases is the price of verification.
		if err := core.ResilientCholesky(c.scheduler(), ta, c.ftOptions()); err != nil {
			return nil, err
		}
		s := c.scheduler()
		core.TrsmLower(s, blas.NoTrans, ta, tb)
		core.TrsmLower(s, blas.Trans, ta, tb)
		s.Wait()
		return FromSlice(b.rows, b.cols, tb.ToColMajor()), nil
	}
	if err := core.Posv(c.scheduler(), ta, tb); err != nil {
		return nil, err
	}
	return FromSlice(b.rows, b.cols, tb.ToColMajor()), nil
}

// LUFactor is a reusable tile LU factorization (incremental pivoting).
type LUFactor struct {
	ctx *Context
	f   *core.LUFactors[float64]
	n   int
}

// LU computes the tile LU factorization of a square matrix with
// incremental (block pairwise) pivoting. See DESIGN.md for the stability
// trade-off versus classic partial pivoting.
func (c *Context) LU(a *Matrix) (*LUFactor, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: LU needs square matrix, got %d×%d", a.rows, a.cols)
	}
	t := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, c.tileSizeFor("lu", a.rows))
	f, err := c.lu(t)
	if err != nil {
		return nil, err
	}
	return &LUFactor{ctx: c, f: f, n: a.rows}, nil
}

// Solve solves A·X = B using the factorization. B is untouched.
func (f *LUFactor) Solve(b *Matrix) (*Matrix, error) {
	if b.rows != f.n {
		return nil, fmt.Errorf("exadla: RHS has %d rows, factor is %d×%d", b.rows, f.n, f.n)
	}
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, f.f.A.NB)
	s := f.ctx.scheduler()
	core.ApplyLU(s, f.f, tb)
	core.TrsmUpper(s, f.f.A, tb)
	s.Wait()
	return FromSlice(b.rows, b.cols, tb.ToColMajor()), nil
}

// Solve factors A (general square) and solves A·X = B in one dataflow
// graph.
func (c *Context) Solve(a, b *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: Solve needs square matrix, got %d×%d", a.rows, a.cols)
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("exadla: RHS has %d rows, matrix has %d", b.rows, a.rows)
	}
	nb := c.tileSizeFor("lu", a.rows)
	ta := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, nb)
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, nb)
	if c.faultTolerant {
		f, err := core.ResilientLU(c.scheduler(), ta, c.ftOptions())
		if err != nil {
			return nil, err
		}
		s := c.scheduler()
		core.ApplyLU(s, f, tb)
		core.TrsmUpper(s, ta, tb)
		s.Wait()
		return FromSlice(b.rows, b.cols, tb.ToColMajor()), nil
	}
	if _, err := core.Gesv(c.scheduler(), ta, tb); err != nil {
		return nil, err
	}
	return FromSlice(b.rows, b.cols, tb.ToColMajor()), nil
}

// QRFactor is a reusable tile QR factorization.
type QRFactor struct {
	ctx  *Context
	f    *core.QRFactors[float64]
	m, n int
}

// QR computes the tile QR factorization of an m×n matrix (A untouched)
// using the flat elimination order.
func (c *Context) QR(a *Matrix) *QRFactor {
	t := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, c.tileSizeFor("qr", a.rows))
	f := core.QR(c.scheduler(), t)
	return &QRFactor{ctx: c, f: f, m: a.rows, n: a.cols}
}

// QRTree computes the tile QR factorization with a binary reduction tree
// per panel (CAQR order) — shorter critical path on tall matrices at the
// cost of extra reflector storage. The factor behaves identically to QR's.
func (c *Context) QRTree(a *Matrix) *QRFactor {
	t := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, c.tileSizeFor("qr", a.rows))
	f := core.QRTree(c.scheduler(), t)
	return &QRFactor{ctx: c, f: f, m: a.rows, n: a.cols}
}

// R returns the n×n upper-triangular factor (for m ≥ n).
func (f *QRFactor) R() *Matrix {
	data := f.f.A.ToColMajor()
	n := f.n
	r := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j && i < f.m; i++ {
			r.Set(i, j, data[i+j*f.m])
		}
	}
	return r
}

// QTb applies Qᵀ to a matrix (for least-squares pipelines). B is untouched.
func (f *QRFactor) QTb(b *Matrix) *Matrix {
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, f.f.A.NB)
	s := f.ctx.scheduler()
	core.ApplyQT(s, f.f, tb)
	s.Wait()
	return FromSlice(b.rows, b.cols, tb.ToColMajor())
}

// LeastSquares solves min‖A·x − b‖₂ for a tall full-rank matrix A (m ≥ n)
// via tile QR. It returns the n×nrhs solution.
func (c *Context) LeastSquares(a, b *Matrix) (*Matrix, error) {
	if a.rows < a.cols {
		return nil, fmt.Errorf("exadla: LeastSquares needs m ≥ n, got %d×%d", a.rows, a.cols)
	}
	if b.rows != a.rows {
		return nil, fmt.Errorf("exadla: RHS has %d rows, matrix has %d", b.rows, a.rows)
	}
	nb := c.tileSizeFor("qr", a.rows)
	ta := tile.FromColMajor(a.rows, a.cols, a.data, a.rows, nb)
	tb := tile.FromColMajor(b.rows, b.cols, b.data, b.rows, nb)
	core.Gels(c.scheduler(), ta, tb)
	full := tb.ToColMajor()
	x := NewMatrix(a.cols, b.cols)
	for j := 0; j < b.cols; j++ {
		copy(x.data[j*a.cols:(j+1)*a.cols], full[j*b.rows:j*b.rows+a.cols])
	}
	return x, nil
}

// MixedResult re-exports the mixed-precision convergence report.
type MixedResult = mixed.Result

// SolveMixed solves A·x = b with float32 LU factorization plus float64
// iterative refinement (the dsgesv scheme), falling back to a full float64
// solve for hopelessly conditioned systems. b must have one column.
func (c *Context) SolveMixed(a, b *Matrix) (*Matrix, MixedResult, error) {
	if a.rows != a.cols {
		return nil, MixedResult{}, fmt.Errorf("exadla: SolveMixed needs square matrix")
	}
	if b.rows != a.rows || b.cols != 1 {
		return nil, MixedResult{}, fmt.Errorf("exadla: SolveMixed needs an n×1 RHS")
	}
	x := NewMatrix(a.rows, 1)
	res, err := mixed.SolveLU(a.rows, a.data, a.rows, b.data, x.data)
	return x, res, err
}

// SolveMixedHalf solves A·x = b with three precisions: an emulated
// half-precision factorization (fp16 storage, fp32 compute — the
// tensor-core model), float32 correction solves, and float64 residuals.
// It only converges for mildly conditioned systems (cond ≲ 10³) and falls
// back to float64 beyond; see the E9 experiment.
func (c *Context) SolveMixedHalf(a, b *Matrix) (*Matrix, MixedResult, error) {
	if a.rows != a.cols {
		return nil, MixedResult{}, fmt.Errorf("exadla: SolveMixedHalf needs square matrix")
	}
	if b.rows != a.rows || b.cols != 1 {
		return nil, MixedResult{}, fmt.Errorf("exadla: SolveMixedHalf needs an n×1 RHS")
	}
	x := NewMatrix(a.rows, 1)
	res, err := mixed.SolveLUHalf(a.rows, a.data, a.rows, b.data, x.data)
	return x, res, err
}

// SolveMixedSPD is SolveMixed with a Cholesky kernel for SPD systems.
func (c *Context) SolveMixedSPD(a, b *Matrix) (*Matrix, MixedResult, error) {
	if a.rows != a.cols {
		return nil, MixedResult{}, fmt.Errorf("exadla: SolveMixedSPD needs square matrix")
	}
	if b.rows != a.rows || b.cols != 1 {
		return nil, MixedResult{}, fmt.Errorf("exadla: SolveMixedSPD needs an n×1 RHS")
	}
	x := NewMatrix(a.rows, 1)
	res, err := mixed.SolveCholesky(a.rows, a.data, a.rows, b.data, x.data)
	return x, res, err
}

// TSQRLeastSquares solves min‖A·x − b‖₂ with communication-avoiding TSQR
// over nblocks row blocks. b must have one column.
func (c *Context) TSQRLeastSquares(a, b *Matrix, nblocks int) (*Matrix, error) {
	if b.cols != 1 || b.rows != a.rows {
		return nil, fmt.Errorf("exadla: TSQRLeastSquares needs an m×1 RHS")
	}
	x, err := ca.LeastSquares(c.scheduler(), a.rows, a.cols, a.data, a.rows, b.data, nblocks)
	if err != nil {
		return nil, err
	}
	return FromSlice(a.cols, 1, x), nil
}

// RandomizedLeastSquares solves min‖A·x − b‖₂ with the
// sketch-to-precondition scheme (Gaussian sketch + QR preconditioner +
// LSQR). b must have one column.
func (c *Context) RandomizedLeastSquares(rng *rand.Rand, a, b *Matrix) (*Matrix, error) {
	if b.cols != 1 || b.rows != a.rows {
		return nil, fmt.Errorf("exadla: RandomizedLeastSquares needs an m×1 RHS")
	}
	x, stats, err := rnd.SolveLS(rng, a.rows, a.cols, a.data, a.rows, b.data, 2.0, 1e-14, 300)
	if err != nil {
		return nil, err
	}
	if !stats.Converged {
		return nil, fmt.Errorf("exadla: randomized solver did not converge in %d iterations", stats.LSQRIterations)
	}
	return FromSlice(a.cols, 1, x), nil
}

// CondEst estimates the 2-norm condition number of a tall or square matrix.
func (c *Context) CondEst(rng *rand.Rand, a *Matrix) float64 {
	return rnd.CondEst2(rng, a.rows, a.cols, a.data, a.rows, 40)
}

// Invert computes the inverse of a general square matrix via LU with
// partial pivoting (A untouched). Prefer Solve for linear systems —
// explicit inverses cost ~3× a solve and amplify rounding — but covariance
// and sensitivity computations legitimately need them.
func (c *Context) Invert(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: Invert needs square matrix, got %d×%d", a.rows, a.cols)
	}
	n := a.rows
	f := a.Clone()
	ipiv := make([]int, n)
	if err := lapack.Getrf(n, n, f.data, n, ipiv); err != nil {
		return nil, err
	}
	if err := lapack.Getri(n, f.data, n, ipiv); err != nil {
		return nil, err
	}
	return f, nil
}

// InvertSPD computes the inverse of a symmetric positive definite matrix
// (lower triangle referenced; A untouched) with the tile dataflow pipeline:
// Cholesky → triangular inverse → Wᵀ·W, all one task graph. The full
// symmetric inverse is returned.
func (c *Context) InvertSPD(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("exadla: InvertSPD needs square matrix, got %d×%d", a.rows, a.cols)
	}
	n := a.rows
	t := tile.FromColMajor(n, n, a.data, n, c.tileSizeFor("cholesky", n))
	if err := core.Potri(c.scheduler(), t); err != nil {
		return nil, err
	}
	f := FromSlice(n, n, t.ToColMajor())
	// Mirror the computed lower triangle.
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			f.data[j+i*n] = f.data[i+j*n]
		}
	}
	return f, nil
}
