// Poisson: a small "science workload" end to end — discretize −Δu = f on
// the unit square with the 5-point stencil, solve the resulting SPD system
// with the tile Cholesky solver, and check against the known analytic
// solution. (Dense direct solvers on structured PDE systems are exactly
// the workload the dense linear algebra stack exists to serve; a real
// application would exploit the sparsity, but the solver path is the same.)
package main

import (
	"fmt"
	"log"
	"math"

	"exadla"
	"exadla/internal/matgen"
)

func main() {
	ctx := exadla.NewContext()
	defer ctx.Close()

	// Grid of interior points: (n+1) intervals of width h over (0,1)².
	const n = 24
	h := 1.0 / float64(n+1)

	// A = h⁻²·(5-point Laplacian); we fold h² into the right-hand side.
	a := exadla.FromSlice(n*n, n*n, matgen.Poisson2D[float64](n))

	// Manufactured solution u(x,y) = sin(πx)·sin(πy), so
	// f = −Δu = 2π²·sin(πx)·sin(πy).
	b := exadla.NewMatrix(n*n, 1)
	uExact := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i+1) * h
			y := float64(j+1) * h
			uExact[i*n+j] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			b.Set(i*n+j, 0, 2*math.Pi*math.Pi*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)*h*h)
		}
	}

	u, err := ctx.SolveSPD(a, b)
	if err != nil {
		log.Fatal(err)
	}

	// Discretization error should be O(h²); the algebraic error is ~ε.
	var maxErr float64
	for i := range uExact {
		if d := math.Abs(u.At(i, 0) - uExact[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("solved −Δu = f on a %d×%d grid (%d unknowns)\n", n, n, n*n)
	fmt.Printf("max |u − u_exact| = %.3e (expected O(h²) = %.3e)\n", maxErr, h*h)
	fmt.Printf("algebraic backward error = %.2e\n", exadla.Residual(a, u, b))
	if maxErr > 10*h*h {
		log.Fatalf("discretization error %g exceeds O(h²) bound", maxErr)
	}
	fmt.Println("\nthe Laplacian's condition number grows like h⁻²; this is the regime where")
	fmt.Println("mixed-precision refinement (examples/precisionladder) starts paying its way.")
}
