// Fault tolerance: factor an SPD matrix with ABFT checksums, silently
// corrupt the stored factor the way a memory upset would, and watch the
// checksum relations detect, locate, and repair the damage.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/ft"
	"exadla/internal/matgen"
)

func main() {
	const n = 400
	rng := rand.New(rand.NewSource(3))
	a := matgen.DiagDomSPD[float64](rng, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Symv(blas.Lower, n, 1, a, n, xTrue, 1, 0, b, 1)

	// Factor with checksum rows carried through the elimination.
	f, err := ft.Cholesky(n, a, n, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored %d×%d SPD matrix with ABFT checksums\n", n, n)
	fmt.Printf("clean verify: %d faults\n", len(f.Verify()))

	// Silent corruption of the stored factor (a high-order bit flip's
	// worth of damage).
	inj := ft.NewInjector(1)
	injected := inj.AddNoise(f.L, inj.RandomLowerIndex(n), n, 7.5)
	fmt.Printf("\ninjected corruption at L(%d,%d), Δ=%.3g\n", injected.Row, injected.Col, injected.Delta)

	// The corrupted factor produces a garbage solution.
	bad := append([]float64(nil), b...)
	f.Solve(bad)
	fmt.Printf("solve with corrupted factor: forward error %.2e\n", fwdErr(bad, xTrue))

	// Detect, locate, correct.
	faults := f.Verify()
	for _, flt := range faults {
		fmt.Printf("checksum scan: %v\n", flt)
	}
	f.Correct(faults)

	good := append([]float64(nil), b...)
	f.Solve(good)
	fmt.Printf("solve after recovery: forward error %.2e\n", fwdErr(good, xTrue))
	fmt.Println("\nno checkpoint, no recomputation: the checksums are maintained by the")
	fmt.Println("factorization's own arithmetic at O(n²) cost on an O(n³) computation.")
}

func fwdErr(x, xTrue []float64) float64 {
	var d, nrm float64
	for i := range x {
		if v := abs(x[i] - xTrue[i]); v > d {
			d = v
		}
		if v := abs(xTrue[i]); v > nrm {
			nrm = v
		}
	}
	return d / nrm
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
