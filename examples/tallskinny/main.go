// Tall-skinny least squares three ways: tile QR, communication-avoiding
// TSQR, and randomized sketch-to-precondition — all solving the same
// overdetermined system to the same accuracy with very different
// communication and synchronization profiles.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"exadla"
)

func main() {
	ctx := exadla.NewContext()
	defer ctx.Close()

	const m, n = 60000, 48
	rng := rand.New(rand.NewSource(5))
	a := exadla.RandomWithCond(rng, m, n, 1e4)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)

	fmt.Printf("min‖Ax−b‖ with A %d×%d (cond 1e4)\n\n", m, n)

	t0 := time.Now()
	xQR, err := ctx.LeastSquares(a, b)
	if err != nil {
		log.Fatal(err)
	}
	report("tile QR", time.Since(t0), xQR, xTrue)

	t0 = time.Now()
	xTSQR, err := ctx.TSQRLeastSquares(a, b, 16)
	if err != nil {
		log.Fatal(err)
	}
	report("TSQR (16 blocks)", time.Since(t0), xTSQR, xTrue)

	t0 = time.Now()
	xRand, err := ctx.RandomizedLeastSquares(rng, a, b)
	if err != nil {
		log.Fatal(err)
	}
	report("randomized (sketch+LSQR)", time.Since(t0), xRand, xTrue)

	fmt.Println("\nTSQR factors the row blocks independently and combines the R factors up")
	fmt.Println("a log-depth tree: one reduction instead of one synchronization per column.")
}

func report(name string, d time.Duration, x, xTrue *exadla.Matrix) {
	var maxErr float64
	n, _ := xTrue.Dims()
	for i := 0; i < n; i++ {
		if v := abs(x.At(i, 0) - xTrue.At(i, 0)); v > maxErr {
			maxErr = v
		}
	}
	fmt.Printf("%-26s %8.3fs   max|x−x*| = %.2e\n", name, d.Seconds(), maxErr)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
