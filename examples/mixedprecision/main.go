// Mixed precision: solve the same system with a full float64 factorization
// and with float32-factorize + float64-refine (the dsgesv scheme), showing
// that refinement recovers double-precision accuracy and how the iteration
// count responds to conditioning.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"exadla"
)

func main() {
	ctx := exadla.NewContext()
	defer ctx.Close()

	const n = 600
	rng := rand.New(rand.NewSource(7))

	for _, cond := range []float64{1e2, 1e5, 1e8} {
		a := exadla.RandomWithCond(rng, n, n, cond)
		xTrue := exadla.RandomGeneral(rng, n, 1)
		b := ctx.Multiply(a, xTrue)

		x64, err := ctx.Solve(a, b)
		if err != nil {
			log.Fatal(err)
		}
		xm, res, err := ctx.SolveMixed(a, b)
		if err != nil {
			log.Fatal(err)
		}

		outcome := fmt.Sprintf("converged in %d sweeps", res.Iterations)
		if res.FellBack {
			outcome = fmt.Sprintf("fell back to float64 after %d sweeps", res.Iterations)
		}
		fmt.Printf("cond=%.0e: %s\n", cond, outcome)
		fmt.Printf("  backward error: fp64 %.2e, mixed %.2e\n",
			exadla.Residual(a, x64, b), exadla.Residual(a, xm, b))
	}
	fmt.Println("\nmixed precision does the O(n³) factorization in float32 and recovers")
	fmt.Println("float64 accuracy with O(n²) refinement sweeps — until the matrix is so")
	fmt.Println("ill-conditioned that the float32 factors stop contracting.")
}
