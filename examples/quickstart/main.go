// Quickstart: factor and solve a symmetric positive definite system with
// the tile Cholesky solver, then verify the backward error.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"exadla"
)

func main() {
	// A Context owns the worker pool; create once, reuse for many solves.
	ctx := exadla.NewContext(exadla.WithWorkers(4), exadla.WithTileSize(96))
	defer ctx.Close()

	const n = 1000
	rng := rand.New(rand.NewSource(42))

	// Build a random SPD system with a known solution.
	a := exadla.RandomSPD(rng, n)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)

	// One-shot driver: tile Cholesky + forward/backward solves, all in one
	// dataflow graph.
	x, err := ctx.SolveSPD(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d×%d SPD system\n", n, n)
	fmt.Printf("backward error ‖b−Ax‖/((‖A‖‖x‖+‖b‖)) = %.2e\n", exadla.Residual(a, x, b))

	// Reusable factorization: factor once, solve many right-hand sides.
	f, err := ctx.Cholesky(a)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rhs := exadla.RandomGeneral(rng, n, 1)
		xi, err := f.Solve(rhs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rhs %d: backward error %.2e\n", i, exadla.Residual(a, xi, rhs))
	}
}
