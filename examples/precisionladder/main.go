// Precision ladder: the same linear system solved at three factorization
// precisions — emulated fp16 (tensor-core model), fp32, and fp64 — with
// iterative refinement recovering double-precision accuracy wherever the
// low-precision factors still contract.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"exadla"
)

func main() {
	ctx := exadla.NewContext()
	defer ctx.Close()

	const n = 500
	rng := rand.New(rand.NewSource(11))

	fmt.Printf("%-8s %-10s %-7s %-14s %s\n", "cond", "scheme", "sweeps", "outcome", "backward error")
	for _, cond := range []float64{1e2, 1e4, 1e6} {
		a := exadla.RandomWithCond(rng, n, n, cond)
		xTrue := exadla.RandomGeneral(rng, n, 1)
		b := ctx.Multiply(a, xTrue)

		type scheme struct {
			name  string
			solve func() (*exadla.Matrix, exadla.MixedResult, error)
		}
		schemes := []scheme{
			{"fp16+IR", func() (*exadla.Matrix, exadla.MixedResult, error) { return ctx.SolveMixedHalf(a, b) }},
			{"fp32+IR", func() (*exadla.Matrix, exadla.MixedResult, error) { return ctx.SolveMixed(a, b) }},
			{"fp64", func() (*exadla.Matrix, exadla.MixedResult, error) {
				x, err := ctx.Solve(a, b)
				return x, exadla.MixedResult{Converged: true}, err
			}},
		}
		for _, s := range schemes {
			x, res, err := s.solve()
			if err != nil {
				log.Fatal(err)
			}
			outcome := "converged"
			if res.FellBack {
				outcome = "fp64 fallback"
			} else if !res.Converged {
				outcome = "stalled"
			}
			fmt.Printf("%-8.0e %-10s %-7d %-14s %.2e\n",
				cond, s.name, res.Iterations, outcome, exadla.Residual(a, x, b))
		}
	}
	fmt.Println("\neach precision rung trades factorization cost against the conditioning")
	fmt.Println("range it can refine: fp16 dies near cond 1e3-1e4, fp32 near 1e7.")
}
