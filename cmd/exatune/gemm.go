package main

import (
	"fmt"
	"math/rand"
	"os"

	"exadla/internal/autotune"
	"exadla/internal/blas"
	"exadla/internal/matgen"
)

// gemmParam is one coordinate of the GEMM blocking search: a machine-global
// tuning key, the candidate values to sweep, and an accessor into Blocking.
type gemmParam struct {
	key        string
	candidates []int
	field      func(*blas.Blocking) *int
}

var gemmParams = []gemmParam{
	{"gemm.mr", []int{4, 8}, func(b *blas.Blocking) *int { return &b.MR }},
	{"gemm.kc", []int{64, 128, 192, 256, 384, 512}, func(b *blas.Blocking) *int { return &b.KC }},
	{"gemm.mc", []int{64, 128, 256, 384, 512}, func(b *blas.Blocking) *int { return &b.MC }},
	{"gemm.nc", []int{256, 512, 1024, 2048}, func(b *blas.Blocking) *int { return &b.NC }},
}

// tuneGemm runs coordinate descent over the packed-GEMM blocking factors:
// each parameter is swept with the others held at the incumbent best, in
// dependency order (register tile first, then the cache blocks built around
// it). Winners are persisted under machine-global keys — unlike the tiled
// factorizations, the blocking is a property of the cache hierarchy, not of
// the problem size.
func tuneGemm(n, reps int, out string) {
	rng := rand.New(rand.NewSource(1))
	a := matgen.Dense[float64](rng, n, n)
	b := matgen.Dense[float64](rng, n, n)
	c := make([]float64, n*n)

	cur := blas.GemmBlocking()
	defer blas.SetGemmBlocking(cur) // leave the process-default untouched

	measure := func(trial blas.Blocking) float64 {
		installed := blas.SetGemmBlocking(trial)
		if installed != trial {
			return -1 // clamped: candidate not representable, skip
		}
		return autotune.Time(func() {
			blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		})
	}

	fmt.Printf("tuning gemm blocking n=%d (%d reps per candidate, coordinate descent)\n", n, reps)
	for _, p := range gemmParams {
		res := autotune.Search(p.candidates, reps, func(v int) float64 {
			trial := cur
			*p.field(&trial) = v
			return measure(trial)
		})
		fmt.Printf("\n%-8s %-12s\n", p.key, "seconds")
		for _, m := range res.Table {
			mark := ""
			if m.Param == res.Best {
				mark = "← best"
			}
			if m.Pruned {
				mark = "(pruned)"
			}
			fmt.Printf("%-8d %-12.4f %s\n", m.Param, m.Seconds, mark)
		}
		if res.Best >= 0 {
			*p.field(&cur) = res.Best
		}
	}

	flops := 2 * float64(n) * float64(n) * float64(n)
	best := measure(cur)
	fmt.Printf("\nbest blocking: MR=%d NR=%d MC=%d KC=%d NC=%d (%.2f GF/s at n=%d)\n",
		cur.MR, cur.NR, cur.MC, cur.KC, cur.NC, flops/best/1e9, n)

	if out != "" {
		table, err := autotune.Load(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, p := range gemmParams {
			table.Set(autotune.GlobalKey(p.key), *p.field(&cur))
		}
		if err := table.Save(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved global gemm.* keys to %s\n", out)
	}
}
