// Command exatune runs the empirical tile-size autotuner for the tiled
// factorizations and records the winners in a persistent tuning table.
//
// Usage:
//
//	exatune -op cholesky -n 1024 -workers 4 -out tuning.json
//	exatune -op qr -n 512
//	exatune -op gemm -n 768 -out tuning.json   # packed-GEMM blocking factors
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"

	"exadla/internal/autotune"
	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

func main() {
	op := flag.String("op", "cholesky", "operation to tune: cholesky, lu, qr, or gemm")
	n := flag.Int("n", 1024, "problem size")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	reps := flag.Int("reps", 3, "repetitions per candidate (min is kept)")
	out := flag.String("out", "", "tuning table JSON to update (optional)")
	list := flag.String("nb", "16,32,48,64,96,128,192,256", "comma-separated tile sizes to try")
	flag.Parse()

	if *op == "gemm" {
		// The GEMM blocking search sweeps its own per-parameter candidate
		// lists (coordinate descent); -nb and -workers do not apply.
		tuneGemm(*n, *reps, *out)
		return
	}

	candidates, err := parseList(*list)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(1))
	var aD []float64
	switch *op {
	case "cholesky":
		aD = matgen.DiagDomSPD[float64](rng, *n)
	case "lu", "qr":
		aD = matgen.Dense[float64](rng, *n, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		os.Exit(2)
	}

	measure := func(nb int) float64 {
		if nb > *n {
			return -1
		}
		a := tile.FromColMajor(*n, *n, aD, *n, nb)
		rt := sched.New(*workers)
		defer rt.Shutdown()
		return autotune.Time(func() {
			switch *op {
			case "cholesky":
				if err := core.Cholesky(rt, a); err != nil {
					panic(err)
				}
			case "lu":
				if _, err := core.LU(rt, a); err != nil {
					panic(err)
				}
			case "qr":
				core.QR(rt, a)
			}
		})
	}

	fmt.Printf("tuning %s n=%d workers=%d (%d reps per candidate)\n\n", *op, *n, *workers, *reps)
	res := autotune.Search(candidates, *reps, measure)
	fmt.Printf("%-6s %-12s %s\n", "nb", "seconds", "")
	for _, m := range res.Table {
		mark := ""
		if m.Param == res.Best {
			mark = "← best"
		}
		if m.Pruned {
			mark = "(pruned)"
		}
		fmt.Printf("%-6d %-12.4f %s\n", m.Param, m.Seconds, mark)
	}
	if res.Best < 0 {
		fmt.Fprintln(os.Stderr, "no valid candidate")
		os.Exit(1)
	}
	key := autotune.Key(*op, *n, *workers)
	fmt.Printf("\n%s → nb=%d\n", key, res.Best)

	if *out != "" {
		table, err := autotune.Load(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		table.Set(key, res.Best)
		if err := table.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved to %s\n", *out)
	}
}

func parseList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad tile size %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
