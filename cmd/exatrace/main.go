// Command exatrace records the task DAG of one tiled factorization,
// simulates it under a chosen worker count, and renders an ASCII Gantt
// chart plus utilization statistics — the quickest way to *see* the
// difference between dataflow and fork-join scheduling.
//
// Usage:
//
//	exatrace -op cholesky -n 1024 -nb 96 -workers 8
//	exatrace -op qr -n 512 -forkjoin
//
// With -cluster it instead summarizes a merged multi-process trace (the
// native events JSON written by exadist -events-out or the obs server's
// /trace?scope=cluster&format=events): per-process compute/fetch/commit/
// idle split, fault counts, the comm-aware critical path, and the top
// tile-transfer edges by bytes.
//
//	exatrace -cluster cluster-events.json
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

func main() {
	op := flag.String("op", "cholesky", "operation: cholesky, lu, or qr")
	n := flag.Int("n", 1024, "problem size")
	nb := flag.Int("nb", 96, "tile size")
	workers := flag.Int("workers", 8, "virtual workers for the simulated schedule")
	forkJoin := flag.Bool("forkjoin", false, "use the block-synchronous variant")
	width := flag.Int("width", 110, "Gantt chart width in columns")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON to this path")
	cluster := flag.String("cluster", "", "summarize a merged cluster trace (native events JSON) instead of simulating")
	flag.Parse()

	if *cluster != "" {
		if err := summarizeCluster(*cluster, *workers, *chrome); err != nil {
			fmt.Fprintln(os.Stderr, "exatrace:", err)
			os.Exit(1)
		}
		return
	}

	rng := rand.New(rand.NewSource(1))
	var aD []float64
	switch *op {
	case "cholesky":
		aD = matgen.DiagDomSPD[float64](rng, *n)
	case "lu", "qr":
		aD = matgen.Dense[float64](rng, *n, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		os.Exit(2)
	}
	a := tile.FromColMajor(*n, *n, aD, *n, *nb)

	rec := sched.NewRecorder()
	var err error
	switch *op {
	case "cholesky":
		if *forkJoin {
			err = core.CholeskyForkJoin(rec, a)
		} else {
			err = core.Cholesky(rec, a)
		}
	case "lu":
		if *forkJoin {
			_, err = core.LUForkJoin(rec, a)
		} else {
			_, err = core.LU(rec, a)
		}
	case "qr":
		if *forkJoin {
			core.QRForkJoin(rec, a)
		} else {
			core.QR(rec, a)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	g := rec.Graph()
	variant := "dataflow"
	if *forkJoin {
		variant = "fork-join"
	}
	fmt.Printf("%s %s: n=%d nb=%d — %d tasks, %.4fs total work, %.4fs critical path\n",
		*op, variant, *n, *nb, g.Tasks(), g.TotalWork(), g.CriticalPath())

	res, events := sched.SimulateEvents(g, *workers)
	fmt.Printf("simulated on %d workers: makespan %.4fs, utilization %.1f%%, speedup %.2fx\n\n",
		*workers, res.Makespan, 100*res.Utilization, g.TotalWork()/res.Makespan)

	// Feed the simulated schedule into the trace log as full spans, with
	// barrier nodes flattened into direct task→task edges, so the DAG view
	// and the Chrome export see the dependence structure.
	flat := g.FlattenBarriers()
	log := trace.NewLog()
	for _, e := range events {
		log.TaskSpan(sched.Span{
			ID: e.ID, Name: e.Name, Worker: e.Worker, Attempt: 1,
			Deps:  flat[e.ID],
			Ready: int64(e.Ready * 1e9),
			Start: int64(e.Start * 1e9), End: int64(e.End * 1e9),
		})
	}
	printCriticalPath(log, *workers)
	if err := log.Gantt(os.Stdout, *width); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := log.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open at ui.perfetto.dev)\n", *chrome)
	}
}

// summarizeCluster loads a merged cluster trace (native events JSON) and
// prints the per-process time split, fault counts, the comm-aware critical
// path, and the heaviest tile-transfer edges. With -chrome it also
// re-exports the Perfetto view.
func summarizeCluster(path string, workers int, chrome string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	log, err := trace.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}

	cs := log.AnalyzeCluster()
	fmt.Printf("cluster trace %s: %d processes, span %.4fs\n", path, len(cs.Procs), cs.Span)
	for _, p := range cs.Procs {
		name := "coordinator"
		if p.Proc > 0 {
			name = fmt.Sprintf("worker %d", p.Proc-1)
		}
		fmt.Printf("  %-12s %4d tasks  compute %8.4fs  fetch %8.4fs  commit %8.4fs  idle %8.4fs",
			name, p.Tasks, p.Compute, p.Fetch, p.Commit, p.Idle)
		if p.BytesFetched > 0 || p.BytesCommitted > 0 {
			fmt.Printf("  (%s fetched, %s committed)", fmtBytes(p.BytesFetched), fmtBytes(p.BytesCommitted))
		}
		fmt.Println()
	}

	if len(cs.Faults) > 0 {
		kinds := make([]string, 0, len(cs.Faults))
		for k := range cs.Faults {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Printf("faults:")
		for _, k := range kinds {
			fmt.Printf(" %s ×%d", k, cs.Faults[k])
		}
		fmt.Println()
	}

	d := log.AnalyzeDAG()
	if d.TInf > 0 {
		fmt.Printf("critical path: T1 %.4fs, T∞ %.4fs (parallelism %.2f)", d.T1, d.TInf, d.T1/d.TInf)
		if d.TCommInf > d.TInf {
			fmt.Printf(", comm-aware T∞ %.4fs", d.TCommInf)
		}
		fmt.Println()
		dag, comm := d.SpeedupBound(workers), d.CommSpeedupBound(workers)
		fmt.Printf("speedup bound on %d workers: %.2fx DAG-limited", workers, dag)
		if comm < dag {
			fmt.Printf(", %.2fx comm-limited (communication costs %.0f%% of the bound)",
				comm, 100*(1-comm/dag))
		}
		fmt.Println()
		if d.BytesFetched > 0 {
			fmt.Printf("traffic on the task path: %s fetched, %.4fs fetching, %.4fs committing\n",
				fmtBytes(d.BytesFetched), d.FetchTime, d.CommitTime)
		}
	}

	if len(cs.Transfers) > 0 {
		top := cs.Transfers
		if len(top) > 8 {
			top = top[:8]
		}
		fmt.Printf("top tile transfers by bytes:\n")
		for _, t := range top {
			fmt.Printf("  tile(%d,%d)  %s over %d fetches\n", t.Tile[0], t.Tile[1], fmtBytes(t.Bytes), t.Count)
		}
	}

	if chrome != "" {
		out, err := os.Create(chrome)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := log.WriteChromeCluster(out); err != nil {
			return err
		}
		fmt.Printf("wrote Perfetto cluster trace to %s (open at ui.perfetto.dev)\n", chrome)
	}
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// printCriticalPath reports the work/span decomposition of the traced
// schedule: T∞ and its per-kernel composition, Brent's makespan bounds, and
// how the achieved speedup compares to the DAG-limited bound min(p, T₁/T∞).
func printCriticalPath(log *trace.Log, workers int) {
	d := log.AnalyzeDAG()
	if d.TInf <= 0 {
		return
	}
	fmt.Printf("critical path: %.4fs across %d tasks (T1/T∞ = %.2f)\n",
		d.TInf, d.CritTasks, d.T1/d.TInf)
	type share struct {
		name string
		frac float64
	}
	shares := make([]share, 0, len(d.CritShare))
	for k, v := range d.CritShare {
		shares = append(shares, share{k, v})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].frac != shares[j].frac {
			return shares[i].frac > shares[j].frac
		}
		return shares[i].name < shares[j].name
	})
	fmt.Printf("critical-path share:")
	for _, s := range shares {
		fmt.Printf(" %s %.1f%%", s.name, 100*s.frac)
	}
	fmt.Println()
	fmt.Printf("Brent bounds on %d workers: makespan in [%.4fs, %.4fs]\n",
		workers, math.Max(d.T1/float64(workers), d.TInf), d.BrentBound(workers))
	bound := d.SpeedupBound(workers)
	fmt.Printf("speedup %.2fx of %.2fx DAG-limited (%.0f%%)\n\n",
		d.Speedup(), bound, 100*d.Speedup()/bound)
}
