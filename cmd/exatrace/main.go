// Command exatrace records the task DAG of one tiled factorization,
// simulates it under a chosen worker count, and renders an ASCII Gantt
// chart plus utilization statistics — the quickest way to *see* the
// difference between dataflow and fork-join scheduling.
//
// Usage:
//
//	exatrace -op cholesky -n 1024 -nb 96 -workers 8
//	exatrace -op qr -n 512 -forkjoin
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

func main() {
	op := flag.String("op", "cholesky", "operation: cholesky, lu, or qr")
	n := flag.Int("n", 1024, "problem size")
	nb := flag.Int("nb", 96, "tile size")
	workers := flag.Int("workers", 8, "virtual workers for the simulated schedule")
	forkJoin := flag.Bool("forkjoin", false, "use the block-synchronous variant")
	width := flag.Int("width", 110, "Gantt chart width in columns")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON to this path")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	var aD []float64
	switch *op {
	case "cholesky":
		aD = matgen.DiagDomSPD[float64](rng, *n)
	case "lu", "qr":
		aD = matgen.Dense[float64](rng, *n, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		os.Exit(2)
	}
	a := tile.FromColMajor(*n, *n, aD, *n, *nb)

	rec := sched.NewRecorder()
	var err error
	switch *op {
	case "cholesky":
		if *forkJoin {
			err = core.CholeskyForkJoin(rec, a)
		} else {
			err = core.Cholesky(rec, a)
		}
	case "lu":
		if *forkJoin {
			_, err = core.LUForkJoin(rec, a)
		} else {
			_, err = core.LU(rec, a)
		}
	case "qr":
		if *forkJoin {
			core.QRForkJoin(rec, a)
		} else {
			core.QR(rec, a)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	g := rec.Graph()
	variant := "dataflow"
	if *forkJoin {
		variant = "fork-join"
	}
	fmt.Printf("%s %s: n=%d nb=%d — %d tasks, %.4fs total work, %.4fs critical path\n",
		*op, variant, *n, *nb, g.Tasks(), g.TotalWork(), g.CriticalPath())

	res, events := sched.SimulateEvents(g, *workers)
	fmt.Printf("simulated on %d workers: makespan %.4fs, utilization %.1f%%, speedup %.2fx\n\n",
		*workers, res.Makespan, 100*res.Utilization, g.TotalWork()/res.Makespan)

	// Feed the simulated schedule into the trace log as full spans, with
	// barrier nodes flattened into direct task→task edges, so the DAG view
	// and the Chrome export see the dependence structure.
	flat := g.FlattenBarriers()
	log := trace.NewLog()
	for _, e := range events {
		log.TaskSpan(sched.Span{
			ID: e.ID, Name: e.Name, Worker: e.Worker, Attempt: 1,
			Deps:  flat[e.ID],
			Ready: int64(e.Ready * 1e9),
			Start: int64(e.Start * 1e9), End: int64(e.End * 1e9),
		})
	}
	printCriticalPath(log, *workers)
	if err := log.Gantt(os.Stdout, *width); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := log.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open at ui.perfetto.dev)\n", *chrome)
	}
}

// printCriticalPath reports the work/span decomposition of the traced
// schedule: T∞ and its per-kernel composition, Brent's makespan bounds, and
// how the achieved speedup compares to the DAG-limited bound min(p, T₁/T∞).
func printCriticalPath(log *trace.Log, workers int) {
	d := log.AnalyzeDAG()
	if d.TInf <= 0 {
		return
	}
	fmt.Printf("critical path: %.4fs across %d tasks (T1/T∞ = %.2f)\n",
		d.TInf, d.CritTasks, d.T1/d.TInf)
	type share struct {
		name string
		frac float64
	}
	shares := make([]share, 0, len(d.CritShare))
	for k, v := range d.CritShare {
		shares = append(shares, share{k, v})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].frac != shares[j].frac {
			return shares[i].frac > shares[j].frac
		}
		return shares[i].name < shares[j].name
	})
	fmt.Printf("critical-path share:")
	for _, s := range shares {
		fmt.Printf(" %s %.1f%%", s.name, 100*s.frac)
	}
	fmt.Println()
	fmt.Printf("Brent bounds on %d workers: makespan in [%.4fs, %.4fs]\n",
		workers, math.Max(d.T1/float64(workers), d.TInf), d.BrentBound(workers))
	bound := d.SpeedupBound(workers)
	fmt.Printf("speedup %.2fx of %.2fx DAG-limited (%.0f%%)\n\n",
		d.Speedup(), bound, 100*d.Speedup()/bound)
}
