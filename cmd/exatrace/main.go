// Command exatrace records the task DAG of one tiled factorization,
// simulates it under a chosen worker count, and renders an ASCII Gantt
// chart plus utilization statistics — the quickest way to *see* the
// difference between dataflow and fork-join scheduling.
//
// Usage:
//
//	exatrace -op cholesky -n 1024 -nb 96 -workers 8
//	exatrace -op qr -n 512 -forkjoin
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

func main() {
	op := flag.String("op", "cholesky", "operation: cholesky, lu, or qr")
	n := flag.Int("n", 1024, "problem size")
	nb := flag.Int("nb", 96, "tile size")
	workers := flag.Int("workers", 8, "virtual workers for the simulated schedule")
	forkJoin := flag.Bool("forkjoin", false, "use the block-synchronous variant")
	width := flag.Int("width", 110, "Gantt chart width in columns")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON to this path")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	var aD []float64
	switch *op {
	case "cholesky":
		aD = matgen.DiagDomSPD[float64](rng, *n)
	case "lu", "qr":
		aD = matgen.Dense[float64](rng, *n, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		os.Exit(2)
	}
	a := tile.FromColMajor(*n, *n, aD, *n, *nb)

	rec := sched.NewRecorder()
	var err error
	switch *op {
	case "cholesky":
		if *forkJoin {
			err = core.CholeskyForkJoin(rec, a)
		} else {
			err = core.Cholesky(rec, a)
		}
	case "lu":
		if *forkJoin {
			_, err = core.LUForkJoin(rec, a)
		} else {
			_, err = core.LU(rec, a)
		}
	case "qr":
		if *forkJoin {
			core.QRForkJoin(rec, a)
		} else {
			core.QR(rec, a)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	g := rec.Graph()
	variant := "dataflow"
	if *forkJoin {
		variant = "fork-join"
	}
	fmt.Printf("%s %s: n=%d nb=%d — %d tasks, %.4fs total work, %.4fs critical path\n",
		*op, variant, *n, *nb, g.Tasks(), g.TotalWork(), g.CriticalPath())

	res, events := sched.SimulateEvents(g, *workers)
	fmt.Printf("simulated on %d workers: makespan %.4fs, utilization %.1f%%, speedup %.2fx\n\n",
		*workers, res.Makespan, 100*res.Utilization, g.TotalWork()/res.Makespan)

	log := trace.NewLog()
	for _, e := range events {
		log.TaskRan(e.Name, e.Worker, int64(e.Start*1e9), int64(e.End*1e9))
	}
	if err := log.Gantt(os.Stdout, *width); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := log.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open at chrome://tracing)\n", *chrome)
	}
}
