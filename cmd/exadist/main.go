// Command exadist runs the multi-process distributed runtime from the
// shell: one -serve process owns the task DAG and the tile object store,
// any number of -join processes pull tasks from it over net/rpc. Workers
// are stateless and disposable — kill -9 one mid-run and the coordinator
// reaps its lease, re-executes the lost work, and finishes with the same
// bits. The -verify flag proves it by comparing against a single-process
// factorization.
//
// A three-terminal demo:
//
//	exadist -serve 127.0.0.1:7000 -n 2048 -workers 3 -verify
//	exadist -join 127.0.0.1:7000
//	exadist -join 127.0.0.1:7000   # kill -9 this one; the job still finishes
//
// Fault hooks for the -join side (-kill-after, -hang-after, -drop, -dup,
// -delay, -corrupt, -partition-after/-partition-for, -slow) make the
// chaos reproducible from the command line; -spec and -scrub on the
// serve side arm the defenses (speculative twin leases, at-rest CRC
// scrubbing).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"time"

	"exadla"
	"exadla/internal/dist"
	"exadla/internal/obs"
	"exadla/internal/trace"
)

func main() {
	serve := flag.String("serve", "", "serve a coordinator on this host:port")
	join := flag.String("join", "", "join the coordinator at this host:port as a worker")

	// Serve-side flags.
	op := flag.String("op", "cholesky", "operation: cholesky or lunp (LU without pivoting)")
	n := flag.Int("n", 1024, "matrix order")
	nb := flag.Int("nb", exadla.DefaultTileSize, "tile size")
	seed := flag.Int64("seed", 1, "matrix generator seed")
	minWorkers := flag.Int("min-workers", 0, "fleet size below which the coordinator computes locally")
	waitWorkers := flag.Int("wait-workers", 0, "hold task leasing until this many workers registered")
	gridP := flag.Int("grid-p", 0, "process grid rows (with -strict)")
	gridQ := flag.Int("grid-q", 0, "process grid columns (with -strict)")
	strict := flag.Bool("strict", false, "strict owner-computes placement (byte-exact vs the replay cost model)")
	writeBack := flag.Bool("writeback", false, "write-back residency: drop finalized tiles to worker caches, keep XOR parity")
	lease := flag.Duration("lease", 2*time.Second, "task lease duration")
	deadAfter := flag.Duration("dead-after", 1500*time.Millisecond, "heartbeat silence before a worker is declared dead")
	spec := flag.Bool("spec", false, "speculative execution: twin leases running long vs their kernel's duration history onto idle workers")
	scrub := flag.Duration("scrub", 0, "background integrity scrub interval (0 disables); repairs at-rest tile rot from row parity")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (arms snapshots; use -resume to restart)")
	ckptEvery := flag.Int("ckpt-every", 1, "panel steps between checkpoints")
	resume := flag.Bool("resume", false, "resume from the newest checkpoint in -ckpt instead of starting fresh")
	verify := flag.Bool("verify", false, "after the run, factor the same matrix single-process and compare bitwise")
	obsAddr := flag.String("obs", "", "serve live observability on this host:port (serve side: /metrics, /dist, /trace?scope=cluster; join side: /healthz, /trace, pprof)")
	traceOut := flag.String("trace-out", "", "after the run, write the merged cluster trace (Chrome/Perfetto JSON) here")
	eventsOut := flag.String("events-out", "", "after the run, write the merged cluster trace in the native events format (for exatrace -cluster) here")
	logEvents := flag.Bool("log-events", false, "log structured cluster fault events (evictions, reaps, stale commits, wire chaos) to stderr")

	// Join-side fault hooks.
	killAfter := flag.Int("kill-after", 0, "exit(137) upon being granted the Nth task (simulated SIGKILL)")
	hangAfter := flag.Int("hang-after", 0, "hang upon the Nth granted task, heartbeats still flowing")
	hangFor := flag.Duration("hang-for", 3*time.Second, "hang duration for -hang-after")
	drop := flag.Float64("drop", 0, "probability of dropping an RPC request or reply")
	dup := flag.Float64("dup", 0, "probability of duplicating an RPC")
	delay := flag.Float64("delay", 0, "probability of delaying an RPC by -max-delay")
	maxDelay := flag.Duration("max-delay", 5*time.Millisecond, "injected RPC latency")
	corrupt := flag.Float64("corrupt", 0, "probability of flipping one payload bit in a tile in flight")
	partAfter := flag.Duration("partition-after", 0, "silence every RPC starting this long after the worker connects")
	partFor := flag.Duration("partition-for", 0, "partition window length; the worker rejoins when it closes")
	slow := flag.Float64("slow", 0, "straggler factor: pad every kernel to this multiple of its measured duration")
	rejoinWindow := flag.Duration("rejoin-window", 0, "keep re-registering after losing the coordinator for this long (default: derived from the partition window)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the wire-fault injector")
	flag.Parse()

	switch {
	case *serve != "" && *join != "":
		fmt.Fprintln(os.Stderr, "exadist: -serve and -join are mutually exclusive")
		os.Exit(2)
	case *join != "":
		opt := dist.WorkerOptions{
			Chaos: dist.NetChaos{
				DropSend:       *drop,
				DropReply:      *drop,
				Dup:            *dup,
				Delay:          *delay,
				MaxDelay:       *maxDelay,
				Corrupt:        *corrupt,
				PartitionAfter: *partAfter,
				PartitionFor:   *partFor,
				Seed:           *chaosSeed,
			},
			KillAfter:    *killAfter,
			ExitOnKill:   true,
			HangAfter:    *hangAfter,
			HangFor:      *hangFor,
			SlowFactor:   *slow,
			RejoinWindow: *rejoinWindow,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		if *obsAddr != "" {
			// A worker's obs server is minimal: /healthz + pprof, plus the
			// worker-local span mirror on /trace (the merged cluster view
			// lives on the coordinator).
			tl := trace.NewLog()
			opt.Trace = tl
			srv, err := obs.Start(*obsAddr, obs.Options{Trace: tl})
			if err != nil {
				fmt.Fprintln(os.Stderr, "exadist:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "worker observability on http://%s/healthz\n", srv.Addr())
		}
		if err := dist.RunWorker(*join, opt); err != nil {
			fmt.Fprintln(os.Stderr, "exadist:", err)
			os.Exit(1)
		}
		fmt.Println("exadist: job complete, worker done")
	case *serve != "":
		if err := runServe(*serve, serveConfig{
			op: *op, n: *n, nb: *nb, seed: *seed,
			minWorkers: *minWorkers, waitWorkers: *waitWorkers,
			gridP: *gridP, gridQ: *gridQ, strict: *strict, writeBack: *writeBack,
			lease: *lease, deadAfter: *deadAfter,
			speculate: *spec, scrubEvery: *scrub,
			ckptDir: *ckptDir, ckptEvery: *ckptEvery, resume: *resume,
			verify: *verify, obsAddr: *obsAddr,
			traceOut: *traceOut, eventsOut: *eventsOut, logEvents: *logEvents,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "exadist:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type serveConfig struct {
	op                      string
	n, nb                   int
	seed                    int64
	minWorkers, waitWorkers int
	gridP, gridQ            int
	strict, writeBack       bool
	lease, deadAfter        time.Duration
	speculate               bool
	scrubEvery              time.Duration
	ckptDir                 string
	ckptEvery               int
	resume                  bool
	verify                  bool
	obsAddr                 string
	traceOut, eventsOut     string
	logEvents               bool
}

func runServe(addr string, cfg serveConfig) error {
	var distOp string
	switch cfg.op {
	case "cholesky":
		distOp = exadla.DistCholesky
	case "lunp", "lu-nopiv":
		distOp = exadla.DistLUNoPiv
	default:
		return fmt.Errorf("unknown -op %q (want cholesky or lunp)", cfg.op)
	}

	dcfg := exadla.DistConfig{
		Op: distOp, TileSize: cfg.nb,
		GridP: cfg.gridP, GridQ: cfg.gridQ,
		Strict: cfg.strict, WriteBack: cfg.writeBack,
		MinWorkers: cfg.minWorkers, WaitWorkers: cfg.waitWorkers,
		Lease: cfg.lease, DeadAfter: cfg.deadAfter,
		Speculate: cfg.speculate, ScrubEvery: cfg.scrubEvery,
		CheckpointDir: cfg.ckptDir, CheckpointEvery: cfg.ckptEvery,
		Metrics: cfg.obsAddr != "",
	}
	if cfg.logEvents {
		dcfg.EventLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	var job *exadla.DistJob
	var a *exadla.Matrix
	var err error
	if cfg.resume {
		if cfg.ckptDir == "" {
			return fmt.Errorf("-resume needs -ckpt")
		}
		job, err = exadla.ResumeDist(addr, dcfg)
	} else {
		rng := rand.New(rand.NewSource(cfg.seed))
		a = exadla.RandomSPD(rng, cfg.n)
		job, err = exadla.ServeDist(addr, a.Clone(), dcfg)
	}
	if err != nil {
		return err
	}

	if cfg.obsAddr != "" {
		srv, err := job.ServeObs(cfg.obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s/metrics /dist /trace?scope=cluster\n", srv.Addr())
	}

	fmt.Printf("coordinator on %s: %s n=%d nb=%d (ctrl-c to abandon)\n", job.Addr(), cfg.op, cfg.n, cfg.nb)
	t0 := time.Now()
	got, err := job.Run()
	wall := time.Since(t0)
	if err != nil {
		return err
	}
	s := job.Stats()
	fmt.Printf("done in %v\n", wall)
	fmt.Printf("  workers: %d joined, %d lost; leases: %d granted, %d expired\n",
		s.WorkersJoined, s.WorkersLost, s.LeasesGranted, s.LeasesExpired)
	fmt.Printf("  tasks: %d done (%d re-executed, %d local); commits: %d rejected, %d duplicate\n",
		s.TasksCompleted, s.TasksReexecuted, s.TasksLocal, s.CommitsRejected, s.CommitsDuplicate)
	fmt.Printf("  traffic: %d B fetched, %d B committed, %d B scattered, %d RPC retries\n",
		s.BytesFetched, s.BytesCommitted, s.BytesScattered, s.RPCRetries)
	fmt.Printf("  recovery: %d tiles reconstructed, %d checkpoints, %d workers rejoined\n",
		s.TilesRebuilt, s.CheckpointsSaved, s.WorkersRejoined)
	if s.SpecLaunched > 0 {
		fmt.Printf("  speculation: %d twins launched, %d won, %d wasted\n",
			s.SpecLaunched, s.SpecWins, s.SpecWasted)
	}
	if s.CorruptInjected+s.CorruptCommits+s.CorruptGets+s.AtRestDetected > 0 || s.ScrubScanned > 0 {
		fmt.Printf("  integrity: %d corruptions injected, %d caught at commit, %d caught at fetch; scrub scanned %d tiles, repaired %d/%d rotted\n",
			s.CorruptInjected, s.CorruptCommits, s.CorruptGets, s.ScrubScanned, s.AtRestRepaired, s.AtRestDetected)
	}

	if cfg.traceOut != "" {
		if err := writeFileWith(cfg.traceOut, job.WriteClusterTrace); err != nil {
			return fmt.Errorf("write -trace-out: %w", err)
		}
		fmt.Printf("  merged cluster trace: %s (load at ui.perfetto.dev)\n", cfg.traceOut)
	}
	if cfg.eventsOut != "" {
		if err := writeFileWith(cfg.eventsOut, job.WriteClusterEvents); err != nil {
			return fmt.Errorf("write -events-out: %w", err)
		}
		fmt.Printf("  merged cluster events: %s (summarize with exatrace -cluster)\n", cfg.eventsOut)
	}

	if cfg.verify {
		if a == nil {
			fmt.Println("verify: skipped (resumed run has no reference input)")
			return nil
		}
		want, err := localFactor(distOp, a, cfg.nb)
		if err != nil {
			return fmt.Errorf("verify reference: %w", err)
		}
		rows, cols := got.Dims()
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				if distOp == exadla.DistCholesky && i < j {
					continue // Cholesky only defines the lower triangle
				}
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					return fmt.Errorf("verify: element (%d,%d) differs: %v != %v", i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		fmt.Println("verify: bitwise identical to the single-process factorization")
	}
	return nil
}

// writeFileWith creates path and streams write's output into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// localFactor computes the single-process reference factor.
func localFactor(op string, a *exadla.Matrix, nb int) (*exadla.Matrix, error) {
	if op == exadla.DistCholesky {
		ctx := exadla.NewContext(exadla.WithTileSize(nb))
		defer ctx.Close()
		f, err := ctx.Cholesky(a.Clone())
		if err != nil {
			return nil, err
		}
		return f.L(), nil
	}
	// LU without pivoting: run the distributed plan with zero workers — the
	// coordinator degrades to pure local execution of the identical kernels.
	job, err := exadla.ServeDist("127.0.0.1:0", a.Clone(), exadla.DistConfig{
		Op: exadla.DistLUNoPiv, TileSize: nb,
	})
	if err != nil {
		return nil, err
	}
	return job.Run()
}
