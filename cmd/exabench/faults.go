package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/ft"
	"exadla/internal/matgen"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// runFaults is the -faults mode: a fault-injection demonstration of the
// resilient runtime, in three acts. First a seeded chaos sweep (task kills
// at increasing probability, absorbed by retries) over the tile Cholesky
// and LU factorizations, then the failure report with retries disabled, and
// finally ABFT-driven recovery from mid-factorization data corruption with
// the injected/detected/corrected/retried accounting.
func runFaults(quick bool) {
	n := pick(quick, 256, 512)
	nb := 64
	workers := 4

	fmt.Println("--- chaos sweep: seeded task kills absorbed by retries ---")
	fmt.Println()
	tb := newTable("op", "n", "fail prob", "tasks", "retried", "failed", "residual", "status")
	for _, op := range []string{"cholesky", "lu"} {
		for _, prob := range []float64{0.01, 0.05, 0.10} {
			tasks, retried, failed, resid, err := chaosRun(op, n, nb, workers, prob)
			status := "ok"
			if err != nil {
				status = "FAILED"
			}
			tb.add(op, n, prob, tasks, retried, failed, resid, status)
		}
	}
	tb.print()

	fmt.Println()
	fmt.Println("--- same seed, retries disabled: aggregated failure report ---")
	fmt.Println()
	noRetryDemo(n, nb, workers)

	fmt.Println()
	fmt.Println("--- ABFT recovery: checksum-detected corruption, corrected in place ---")
	fmt.Println()
	abftDemo(n, nb, workers)

	fmt.Println()
	fmt.Println("--- hard faults (E6c): worker kills reaped by the watchdog, lost tiles rebuilt from parity ---")
	fmt.Println()
	hardFaultSweep(n, nb, workers)

	fmt.Println()
	fmt.Println("--- checkpoint/restart: abort mid-factorization, resume to a bitwise-identical factor ---")
	fmt.Println()
	checkpointDemo(n, nb, workers)

	fmt.Println()
	fmt.Println("--- distributed runtime: worker death, hangs, and wire chaos over net/rpc ---")
	fmt.Println()
	distFaultSweep(quick)
}

// chaosRun factors one matrix under a seeded chaos layer with generous
// retries, returning the task accounting and the factorization residual.
func chaosRun(op string, n, nb, workers int, prob float64) (tasks, retried, failed int64, resid float64, err error) {
	rng := rand.New(rand.NewSource(2016))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	reg := metrics.New()
	r := sched.New(workers,
		sched.WithMetrics(reg),
		sched.WithRetry(50, 0),
		sched.WithChaos(2016, prob, nil),
	)
	defer r.Shutdown()
	switch op {
	case "cholesky":
		err = core.Cholesky(r, a)
		if err == nil {
			resid = choleskyResidual(n, aD, a)
		}
	case "lu":
		var f *core.LUFactors[float64]
		f, err = core.LU(r, a)
		if err == nil {
			resid = luResidual(n, nb, aD, f, r)
		}
	}
	snap := reg.Snapshot()
	tasks = snap.Counters["sched.tasks_submitted"]
	retried = snap.Counters["sched.tasks_retried"]
	failed = snap.Counters["sched.tasks_failed"]
	return tasks, retried, failed, resid, err
}

// noRetryDemo runs the chaos seed without a retry policy and prints the
// aggregated failure the solver surfaces instead of panicking.
func noRetryDemo(n, nb, workers int) {
	rng := rand.New(rand.NewSource(2016))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(workers, sched.WithChaos(2016, 0.05, nil))
	defer r.Shutdown()
	if err := core.Cholesky(r, a); err != nil {
		fmt.Printf("cholesky: %v\n", err)
	} else {
		fmt.Println("cholesky: unexpectedly succeeded")
	}
}

// abftDemo corrupts the factorization mid-flight through the resilient
// algorithms' injection hook and reports the recovery accounting.
func abftDemo(n, nb, workers int) {
	tb := newTable("op", "n", "injected", "detected", "corrected", "unlocated", "retried", "max diff vs clean", "status")
	for _, op := range []string{"cholesky", "lu"} {
		var stats ft.Stats
		var retried atomic.Int64
		rng := rand.New(rand.NewSource(7))
		aD := matgen.DiagDomSPD[float64](rng, n)

		// Fault-free reference factor.
		clean := tile.FromColMajor(n, n, aD, n, nb)
		rc := sched.New(workers)
		var cleanErr error
		if op == "cholesky" {
			cleanErr = core.Cholesky(rc, clean)
		} else {
			_, cleanErr = core.LU(rc, clean)
		}
		rc.Shutdown()
		if cleanErr != nil {
			tb.add(op, n, 0, 0, 0, 0, 0, "-", "reference failed: "+cleanErr.Error())
			continue
		}

		inj := ft.NewInjector(7)
		hook := func(step int, m *tile.Matrix[float64]) {
			// One corruption per run, dropped into the middle of the
			// factorization: a panel tile right after the step's checksum
			// snapshot.
			if step != m.NT/2 || m.MT <= step+1 {
				return
			}
			k := step
			inj.AddNoise(m.Tile(k+1, k), 3+2*m.TileRows(k+1), m.TileRows(k+1), 1e-2)
			stats.Injected.Add(1)
		}
		a := tile.FromColMajor(n, n, aD, n, nb)
		r := sched.New(workers,
			sched.WithRetry(3, 0),
			sched.WithFailureObserver(func(ev sched.FailureEvent) {
				if ev.Retrying {
					retried.Add(1)
				}
			}),
		)
		opt := core.FTOptions{InjectHook: hook, Stats: &stats}
		var err error
		if op == "cholesky" {
			err = core.ResilientCholesky(r, a, opt)
		} else {
			_, err = core.ResilientLU(r, a, opt)
		}
		r.Shutdown()
		status := "recovered"
		if err != nil {
			status = "FAILED: " + err.Error()
		}
		var diff float64
		cd, gd := clean.ToColMajor(), a.ToColMajor()
		for i := range cd {
			if d := math.Abs(cd[i] - gd[i]); d > diff {
				diff = d
			}
		}
		tb.add(op, n,
			stats.Injected.Load(), stats.Detected.Load(),
			stats.Corrected.Load(), stats.Unlocated.Load(),
			int(retried.Load()), diff, status)
	}
	tb.print()
}

// choleskyResidual reconstructs L·Lᵀ and reports the scaled max error over
// the lower triangle.
func choleskyResidual(n int, aD []float64, a *tile.Matrix[float64]) float64 {
	f := a.ToColMajor()
	var diff, norm float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var v float64
			for k := 0; k <= j; k++ {
				v += f[i+k*n] * f[j+k*n]
			}
			if d := math.Abs(v - aD[i+j*n]); d > diff {
				diff = d
			}
			if av := math.Abs(aD[i+j*n]); av > norm {
				norm = av
			}
		}
	}
	return diff / (norm * float64(n) * 0x1p-52)
}

// luResidual solves A·x = b with the factors against a random known
// solution and reports the max error.
func luResidual(n, nb int, aD []float64, f *core.LUFactors[float64], s sched.Scheduler) float64 {
	rng := rand.New(rand.NewSource(123))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	b := make([]float64, n)
	at := tile.FromColMajor(n, n, aD, n, nb)
	core.MatVec(blas.NoTrans, 1, at, x, 0, b)
	tb := tile.FromColMajor(n, 1, b, n, nb)
	core.ApplyLU(s, f, tb)
	core.TrsmUpper(s, f.A, tb)
	s.Wait()
	got := tb.ToColMajor()
	var diff float64
	for i := range x {
		if d := math.Abs(got[i] - x[i]); d > diff {
			diff = d
		}
	}
	return diff
}
