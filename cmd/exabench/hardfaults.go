package main

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"exadla/internal/ckpt"
	"exadla/internal/core"
	"exadla/internal/ft"
	"exadla/internal/matgen"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// hardFaultSweep is the E6c experiment: factor under worker-kill chaos with
// a budget of k ∈ {0, 1, 2} kills at seeded points, plus one deliberately
// lost tile rebuilt from row parity. The watchdog reaps each killed
// worker's task at the deadline, a replacement worker re-executes it, and
// the factor must still match the fault-free run bit for bit.
func hardFaultSweep(n, nb, workers int) {
	deadline := 300 * time.Millisecond
	killProb := 0.10
	tb := newTable("op", "n", "kill budget", "workers lost", "timed out", "tiles rebuilt", "max |Δ| vs clean", "status")
	for _, op := range []string{"cholesky", "lu"} {
		rng := rand.New(rand.NewSource(2016))
		aD := matgen.DiagDomSPD[float64](rng, n)

		// Fault-free reference factor.
		clean := tile.FromColMajor(n, n, aD, n, nb)
		rc := sched.New(workers)
		var cleanErr error
		if op == "cholesky" {
			cleanErr = core.Cholesky(rc, clean)
		} else {
			_, cleanErr = core.LU(rc, clean)
		}
		rc.Shutdown()
		if cleanErr != nil {
			tb.add(op, n, "-", 0, 0, 0, "-", "reference failed: "+cleanErr.Error())
			continue
		}

		for k := 0; k <= 2; k++ {
			var stats ft.Stats
			a := tile.FromColMajor(n, n, aD, n, nb)
			reg := metrics.New()
			r := sched.New(workers,
				sched.WithMetrics(reg),
				sched.WithRetry(50, 0),
				sched.WithTaskDeadline(deadline),
				sched.WithHardChaos(2016+int64(k), killProb, 0, k),
			)
			opt := core.FTOptions{
				Stats:     &stats,
				Erasure:   true,
				LoseTiles: []core.TileLoss{{Step: 1, I: 2, J: 0}},
			}
			var err error
			if op == "cholesky" {
				err = core.ResilientCholesky(r, a, opt)
			} else {
				_, err = core.ResilientLU(r, a, opt)
			}
			r.Shutdown()
			status := "bitwise"
			if err != nil {
				status = "FAILED: " + err.Error()
			}
			diff := factorDiff(op, clean, a, nb)
			if diff != 0 && err == nil {
				status = "DIVERGED"
			}
			snap := reg.Snapshot()
			tb.add(op, n, k,
				snap.Counters["sched.workers_lost"],
				snap.Counters["sched.tasks_timed_out"],
				stats.TilesReconstructed.Load(), diff, status)
		}
	}
	tb.print()
}

// factorDiff compares the meaningful part of the factor bitwise: the lower
// triangle for Cholesky (entries above the diagonal are dead storage), the
// whole array for LU.
func factorDiff(op string, clean, got *tile.Matrix[float64], nb int) float64 {
	cd, gd := clean.ToColMajor(), got.ToColMajor()
	n := clean.M
	var diff float64
	for j := 0; j < n; j++ {
		lo := 0
		if op == "cholesky" {
			lo = j
		}
		for i := lo; i < n; i++ {
			if d := math.Abs(cd[i+j*n] - gd[i+j*n]); d > diff {
				diff = d
			}
		}
	}
	return diff
}

// checkpointDemo aborts a checkpointed factorization mid-flight, resumes it
// from the newest snapshot on disk, and checks the resumed factor is
// bitwise identical to an uninterrupted run.
func checkpointDemo(n, nb, workers int) {
	tb := newTable("op", "n", "abort after step", "resumed from", "max |Δ| vs clean", "status")
	for _, op := range []string{"cholesky", "lu"} {
		rng := rand.New(rand.NewSource(2016))
		aD := matgen.DiagDomSPD[float64](rng, n)

		clean := tile.FromColMajor(n, n, aD, n, nb)
		rc := sched.New(workers)
		var cleanErr error
		if op == "cholesky" {
			cleanErr = core.Cholesky(rc, clean)
		} else {
			_, cleanErr = core.LU(rc, clean)
		}
		rc.Shutdown()
		if cleanErr != nil {
			tb.add(op, n, "-", "-", "-", "reference failed: "+cleanErr.Error())
			continue
		}

		dir, err := os.MkdirTemp("", "exabench-ckpt-*")
		if err != nil {
			tb.add(op, n, "-", "-", "-", "tempdir: "+err.Error())
			continue
		}
		defer os.RemoveAll(dir)

		abortAt := clean.NT / 2
		opt := core.CkptOptions{Dir: dir, Every: 1, AbortAtStep: abortAt}
		a := tile.FromColMajor(n, n, aD, n, nb)
		r := sched.New(workers)
		if op == "cholesky" {
			err = core.CheckpointedCholesky(r, a, opt)
		} else {
			_, err = core.CheckpointedLU(r, a, opt)
		}
		r.Shutdown()
		if !errors.Is(err, core.ErrAborted) {
			tb.add(op, n, abortAt, "-", "-", fmt.Sprintf("expected abort, got %v", err))
			continue
		}

		ck, _, err := ckpt.Latest(dir)
		if err != nil {
			tb.add(op, n, abortAt, "-", "-", "no checkpoint: "+err.Error())
			continue
		}
		r2 := sched.New(workers)
		var resumed *tile.Matrix[float64]
		ropt := core.CkptOptions{Dir: dir, Every: 1}
		if op == "cholesky" {
			resumed, err = core.ResumeCholesky(r2, ck, ropt)
		} else {
			var f *core.LUFactors[float64]
			f, err = core.ResumeLU(r2, ck, ropt)
			if err == nil {
				resumed = f.A
			}
		}
		r2.Shutdown()
		if err != nil {
			tb.add(op, n, abortAt, ck.Step, "-", "resume failed: "+err.Error())
			continue
		}
		diff := factorDiff(op, clean, resumed, nb)
		status := "bitwise"
		if diff != 0 {
			status = "DIVERGED"
		}
		tb.add(op, n, abortAt, fmt.Sprintf("step %d", ck.Step), diff, status)
	}
	tb.print()
}
