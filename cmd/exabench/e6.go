package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"exadla/internal/blas"
	"exadla/internal/ft"
	"exadla/internal/matgen"
)

// runE6 reproduces the ABFT experiment: checksum-protected Cholesky and
// GEMM versus unprotected baselines — protection overhead, and
// detection/location/correction rates under injected faults, with the
// solve residual before and after recovery.
func runE6(quick bool) {
	sizes := pick(quick, []int{128, 256}, []int{128, 256, 512})
	const trials = 25

	fmt.Println("— Cholesky under single stored-factor corruptions —")
	tbl := newTable("n", "t_plain(s)", "t_abft(s)", "overhead%",
		"detected", "located", "corrected", "resid_faulty", "resid_recovered")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		a := matgen.DiagDomSPD[float64](rng, n)

		// Min-of-3 timing to suppress single-run noise.
		tPlain, tABFT := math.Inf(1), math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := ft.CholeskyUnprotected(n, a, n); err != nil {
				fmt.Println(err)
				return
			}
			if s := time.Since(t0).Seconds(); s < tPlain {
				tPlain = s
			}
			t0 = time.Now()
			if _, err := ft.Cholesky(n, a, n, nil); err != nil {
				fmt.Println(err)
				return
			}
			if s := time.Since(t0).Seconds(); s < tABFT {
				tABFT = s
			}
		}

		xTrue := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Symv(blas.Lower, n, 1, a, n, xTrue, 1, 0, b, 1)

		detected, located, corrected := 0, 0, 0
		var residFaulty, residFixed float64
		for trial := 0; trial < trials; trial++ {
			f, err := ft.Cholesky(n, a, n, nil)
			if err != nil {
				continue
			}
			inj := ft.NewInjector(int64(n*1000 + trial))
			injected := inj.AddNoise(f.L, inj.RandomLowerIndex(n), n, 5+rng.Float64()*20)

			// Residual with the corrupted factor.
			xf := append([]float64(nil), b...)
			f.Solve(xf)
			residFaulty = math.Max(residFaulty, fwdErr(xf, xTrue))

			faults := f.Verify()
			if len(faults) > 0 {
				detected++
				if faults[0].Row == injected.Row && faults[0].Col == injected.Col {
					located++
				}
			}
			f.Correct(faults)
			if len(f.Verify()) == 0 {
				corrected++
			}
			xr := append([]float64(nil), b...)
			f.Solve(xr)
			residFixed = math.Max(residFixed, fwdErr(xr, xTrue))
		}
		tbl.add(n, tPlain, tABFT, 100*(tABFT-tPlain)/tPlain,
			fmt.Sprintf("%d/%d", detected, trials),
			fmt.Sprintf("%d/%d", located, trials),
			fmt.Sprintf("%d/%d", corrected, trials),
			residFaulty, residFixed)
	}
	tbl.print()

	fmt.Println("\n— GEMM under per-column corruptions —")
	tbl2 := newTable("m=n=k", "t_plain(s)", "t_abft(s)", "overhead%", "faults", "recovered")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n) * 7))
		a := matgen.Dense[float64](rng, n, n)
		bm := matgen.Dense[float64](rng, n, n)

		c := make([]float64, n*n)
		t0 := time.Now()
		blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
		tPlain := time.Since(t0).Seconds()

		t0 = time.Now()
		p := ft.Gemm(n, n, n, a, n, bm, n)
		tABFT := time.Since(t0).Seconds()

		inj := ft.NewInjector(int64(n))
		nf := 4
		for k := 0; k < nf; k++ {
			col := (k * n) / nf
			inj.AddNoise(p.C, col*n+rng.Intn(n), n, 50)
		}
		faults := p.Verify()
		p.Correct(faults)
		var maxDiff float64
		for i := range c {
			if d := math.Abs(p.C[i] - c[i]); d > maxDiff {
				maxDiff = d
			}
		}
		recovered := "yes"
		if maxDiff > 1e-6 {
			recovered = "no"
		}
		tbl2.add(n, tPlain, tABFT, 100*(tABFT-tPlain)/tPlain,
			fmt.Sprintf("%d/%d", len(faults), nf), recovered)
	}
	tbl2.print()
	fmt.Println("\nexpected shape: overhead shrinks with n (O(n²) checksums on O(n³) work, here 2")
	fmt.Println("extra rows of n); detection/location/correction ≈ 100%; recovered residual")
	fmt.Println("returns to fault-free levels vs the corrupted solve's garbage")
}
