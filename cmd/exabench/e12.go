package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"exadla/internal/dist"
	"exadla/internal/matgen"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

func init() {
	experiments = append(experiments,
		experiment{"e12", "E12 (extension): merged cluster trace under chaos", runE12})
}

// runE12 exercises the cluster-wide tracer: a coordinator and three
// workers (one killed mid-run, all behind seeded wire chaos) factor a
// matrix while every process records lease-lifecycle spans; the worker
// shards ride home on heartbeats, get re-based onto the coordinator's
// clock, and merge into one timeline. The experiment prints the
// per-process compute/fetch/commit/idle split and the comm-aware speedup
// bound, and writes the trace as E12_cluster_trace.json (Perfetto) and
// E12_cluster_events.json (native, for exatrace -cluster).
func runE12(quick bool) {
	n := pick(quick, 256, 512)
	nb := 32

	rng := rand.New(rand.NewSource(2016))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)

	chaos := func(seed int64) dist.NetChaos {
		return dist.NetChaos{DropSend: 0.02, DropReply: 0.02, Dup: 0.02,
			Delay: 0.05, MaxDelay: 2 * time.Millisecond, Seed: seed}
	}
	c, err := dist.NewCoordinator("127.0.0.1:0", dist.Options{
		Op: dist.OpCholesky, A: a,
		Lease:      500 * time.Millisecond,
		DeadAfter:  200 * time.Millisecond,
		LocalDelay: 50 * time.Millisecond,
		Poll:       time.Millisecond,
	})
	if err != nil {
		fmt.Printf("coordinator: %v\n", err)
		return
	}
	workers := []dist.WorkerOptions{
		{Chaos: chaos(1), KillAfter: 4},
		{Chaos: chaos(2)},
		{Chaos: chaos(3)},
	}
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(w dist.WorkerOptions) {
			defer wg.Done()
			if err := dist.RunWorker(c.Addr(), w); err != nil && !errors.Is(err, dist.ErrKilled) {
				fmt.Printf("worker exit: %v\n", err)
			}
		}(workers[i])
	}
	if err := c.Run(); err != nil {
		fmt.Printf("run: %v\n", err)
		wg.Wait()
		return
	}
	wg.Wait()

	log := c.ClusterLog()
	cs := log.AnalyzeCluster()
	fmt.Printf("merged trace: %d processes, span %.3fs, %d tasks completed\n",
		len(cs.Procs), cs.Span, c.Stats().TasksCompleted)
	tb := newTable("process", "tasks", "compute s", "fetch s", "commit s", "idle s", "fetched B", "committed B")
	for _, p := range cs.Procs {
		name := "coordinator"
		if p.Proc > 0 {
			name = fmt.Sprintf("worker %d", p.Proc-1)
		}
		tb.add(name, p.Tasks, p.Compute, p.Fetch, p.Commit, p.Idle, p.BytesFetched, p.BytesCommitted)
	}
	tb.print()

	if len(cs.Faults) > 0 {
		fmt.Printf("fault instants:")
		for _, k := range []string{trace.PhaseEvicted, trace.PhaseReaped, trace.PhaseStale, trace.PhaseChaos} {
			if cs.Faults[k] > 0 {
				fmt.Printf(" %s ×%d", k, cs.Faults[k])
			}
		}
		fmt.Println()
	}

	d := log.AnalyzeDAG()
	if d.TInf > 0 {
		p := 3
		fmt.Printf("comm-aware critical path: T∞ %.4fs vs %.4fs compute-only; "+
			"speedup bound on %d workers %.2fx comm-limited vs %.2fx DAG-limited\n",
			d.TCommInf, d.TInf, p, d.CommSpeedupBound(p), d.SpeedupBound(p))
	}

	for _, out := range []struct {
		path  string
		write func(*trace.Log) error
	}{
		{"E12_cluster_trace.json", func(l *trace.Log) error {
			f, err := os.Create("E12_cluster_trace.json")
			if err != nil {
				return err
			}
			defer f.Close()
			return l.WriteChromeCluster(f)
		}},
		{"E12_cluster_events.json", func(l *trace.Log) error {
			f, err := os.Create("E12_cluster_events.json")
			if err != nil {
				return err
			}
			defer f.Close()
			return l.WriteJSON(f)
		}},
	} {
		if err := out.write(log); err != nil {
			fmt.Printf("write %s: %v\n", out.path, err)
			continue
		}
		fmt.Printf("wrote %s\n", out.path)
	}
}
