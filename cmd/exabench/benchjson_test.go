package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Round-trip and committed-artifact tests for the benchmark JSON schemas:
// the structs must survive encode→decode unchanged, and the artifacts
// checked into the repo root must decode with the current schema and honor
// the PR's performance claims (self-consistent DAG bounds, tiled keeping up
// with serial at n ≥ 512).

func sampleScaleReport() scaleBenchReport {
	return scaleBenchReport{
		Benchmark:  "strong-scaling-f64",
		HostCPUs:   4,
		SimWorkers: []int{1, 2, 4},
		Ops: []scaleOpResult{{
			Op: "cholesky", N: 512, NB: 64, Tasks: 120,
			SerialSeconds:      0.040,
			TiledW1Seconds:     0.039,
			TiledOverSerialPct: 2.5,
			GraphT1:            0.040, GraphTInf: 0.008,
			TraceT1: 0.041, TraceTInf: 0.009,
			Measured: []scaleMeasuredPoint{
				{Workers: 1, Seconds: 0.039, Gflops: 1.1, Speedup: 1, DAGBound: 1},
				{Workers: 4, Seconds: 0.012, Gflops: 3.6, Speedup: 3.25, DAGBound: 4},
			},
			Simulated: []scaleSimPoint{
				{Workers: 1, Makespan: 0.040, Speedup: 1, Utilization: 1, DAGBound: 1},
				{Workers: 4, Makespan: 0.011, Speedup: 3.6, Utilization: 0.9, DAGBound: 4},
			},
		}},
	}
}

func TestScaleReportRoundTrip(t *testing.T) {
	want := sampleScaleReport()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got scaleBenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", got, want)
	}
	if err := want.validate(); err != nil {
		t.Fatalf("sample report failed validate: %v", err)
	}
}

func TestScaleReportValidateCatchesBoundViolation(t *testing.T) {
	r := sampleScaleReport()
	// A simulated speedup above min(p, T1/TInf) is impossible for greedy
	// list scheduling; validate must reject it.
	r.Ops[0].Simulated[1].Speedup = 100
	if err := r.validate(); err == nil {
		t.Fatal("validate accepted a simulated speedup above the DAG bound")
	}
}

func TestCholReportRoundTrip(t *testing.T) {
	want := cholBenchReport{
		Benchmark: "cholesky-f64",
		HostCPUs:  2,
		Sizes: []cholSizeResult{
			{N: 512, NB: 64, Workers: 1, SerialPotrfGflops: 4.4, TiledGflops: 4.5, TiledOverSerialPct: 2.3},
			{N: 512, NB: 64, Workers: 2, SerialPotrfGflops: 4.4, TiledGflops: 8.1, TiledOverSerialPct: 84.1},
		},
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got cholBenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", got, want)
	}
}

// repoRoot walks up from the test's working directory to the directory
// holding go.mod, where the benchmark artifacts live.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func TestCommittedScaleArtifactDecodesAndHoldsClaims(t *testing.T) {
	path := filepath.Join(repoRoot(t), "BENCH_scale.json")
	r, err := loadScaleReport(path)
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	if err := r.validate(); err != nil {
		t.Fatalf("committed artifact fails self-check: %v", err)
	}
	if len(r.Ops) == 0 {
		t.Fatal("committed artifact has no ops")
	}
	for _, op := range r.Ops {
		if len(op.Measured) == 0 || len(op.Simulated) == 0 {
			t.Errorf("%s n=%d: missing measured or simulated sweep", op.Op, op.N)
		}
		// The PR's headline claim: at one worker, the tiled dataflow path
		// keeps up with the serial blocked kernel (within 5%) once the
		// flops dominate, n ≥ 512.
		if op.Op == "cholesky" && op.N >= 512 && op.TiledOverSerialPct < -5 {
			t.Errorf("cholesky n=%d: tiled workers=1 is %.1f%% vs serial, want ≥ -5%%",
				op.N, op.TiledOverSerialPct)
		}
	}
}

func TestCommittedCholArtifactDecodes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(repoRoot(t), "BENCH_chol.json"))
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	var r cholBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(r.Sizes) == 0 {
		t.Fatal("committed BENCH_chol.json has no size entries")
	}
	for _, s := range r.Sizes {
		if s.Workers < 1 {
			t.Errorf("n=%d: entry missing workers field (got %d)", s.N, s.Workers)
		}
	}
}
