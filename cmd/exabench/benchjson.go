package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"

	"exadla/internal/autotune"
	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

// The -json mode measures the hot-path benchmarks the kernel and scheduler
// layers are graded on and writes them as machine-readable artifacts:
//
//	BENCH_gemm.json   — float64 Gemm GF/s by square size, packed
//	                    register-blocked path vs the axpy baseline kernel
//	BENCH_chol.json   — float64 Cholesky GF/s by (size, workers): serial
//	                    Potrf kernel vs the tiled dataflow run at every
//	                    measured worker count
//	BENCH_scale.json  — strong-scaling sweep for Cholesky/LU/QR: measured
//	                    wall times at workers ∈ {1,2,4,…,NumCPU}, the
//	                    recorded DAG replayed on virtual workers with
//	                    sched.Simulate, and the trace.AnalyzeDAG work/span
//	                    bound min(p, T₁/T∞) that no schedule can beat
//
// CI runs this in -quick mode, archives the files, and diffs the scaling
// report against the committed baseline with -benchdiff; full mode covers
// the 256–1024 range the kernel work targets.
//
// Timing discipline: only the factorization itself is inside the timed
// region. Tiling the input, creating the runtime, and shutting it down
// happen outside, so the numbers measure kernel + dispatch cost, not setup.

type gemmSizeResult struct {
	N            int     `json:"n"`
	AxpyGflops   float64 `json:"axpy_gflops"`
	PackedGflops float64 `json:"packed_gflops"`
	Speedup      float64 `json:"speedup"`
}

type gemmBenchReport struct {
	Benchmark  string           `json:"benchmark"`
	Baseline   string           `json:"baseline"`
	Blocking   blas.Blocking    `json:"blocking"`
	Sizes      []gemmSizeResult `json:"sizes"`
	MinSpeedup float64          `json:"min_speedup"`
}

// cholSizeResult is one (size, workers) cell of the Cholesky report. The
// serial Potrf number repeats across the worker rows of one size so every
// row is self-contained for downstream tooling.
type cholSizeResult struct {
	N                  int     `json:"n"`
	NB                 int     `json:"nb"`
	Workers            int     `json:"workers"`
	SerialPotrfGflops  float64 `json:"serial_potrf_gflops"`
	TiledGflops        float64 `json:"tiled_gflops"`
	TiledOverSerialPct float64 `json:"tiled_over_serial_pct"`
}

type cholBenchReport struct {
	Benchmark string           `json:"benchmark"`
	HostCPUs  int              `json:"host_cpus"`
	Sizes     []cholSizeResult `json:"sizes"`
}

// scaleMeasuredPoint is one measured wall-clock run of a tiled
// factorization at a real worker count.
type scaleMeasuredPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Gflops  float64 `json:"gflops"`
	// Speedup is relative to the workers=1 measured time; DAGBound is the
	// trace-derived min(p, T₁/T∞) ceiling at this worker count.
	Speedup  float64 `json:"speedup"`
	DAGBound float64 `json:"dag_bound"`
}

// scaleSimPoint is the recorded task graph replayed by sched.Simulate on a
// virtual worker count — the scaling story on hosts with fewer cores than
// the sweep covers. DAGBound here is min(p, T₁/T∞) of the recorded cost
// graph itself, so speedup ≤ bound holds exactly; the trace-derived bound
// lives on the measured points and the op-level Trace fields.
type scaleSimPoint struct {
	Workers     int     `json:"workers"`
	Makespan    float64 `json:"makespan_seconds"`
	Speedup     float64 `json:"speedup"`
	Utilization float64 `json:"utilization"`
	DAGBound    float64 `json:"dag_bound"`
}

type scaleOpResult struct {
	Op    string `json:"op"`
	N     int    `json:"n"`
	NB    int    `json:"nb"`
	Tasks int    `json:"tasks"`
	// SerialSeconds times the serial blocked kernel (Potrf/Getrf/Geqrf) on
	// the same matrix; TiledOverSerialPct compares the workers=1 tiled run
	// against it (negative means the tiled path is slower).
	SerialSeconds      float64 `json:"serial_seconds"`
	TiledW1Seconds     float64 `json:"tiled_w1_seconds"`
	TiledOverSerialPct float64 `json:"tiled_over_serial_pct"`
	// GraphT1/GraphTInf are work and span of the Recorder-captured cost
	// graph (drives the simulated points); TraceT1/TraceTInf come from
	// trace.AnalyzeDAG over a real instrumented run.
	GraphT1   float64              `json:"graph_t1_seconds"`
	GraphTInf float64              `json:"graph_tinf_seconds"`
	TraceT1   float64              `json:"trace_t1_seconds"`
	TraceTInf float64              `json:"trace_tinf_seconds"`
	Measured  []scaleMeasuredPoint `json:"measured"`
	Simulated []scaleSimPoint      `json:"simulated"`
}

type scaleBenchReport struct {
	Benchmark  string          `json:"benchmark"`
	HostCPUs   int             `json:"host_cpus"`
	SimWorkers []int           `json:"sim_workers"`
	Ops        []scaleOpResult `json:"ops"`
}

// validate machine-checks the report's internal consistency: every
// simulated speedup must respect the DAG bound of its own cost graph
// (greedy list scheduling cannot beat min(p, T₁/T∞)), and speedups and
// bounds must be positive and finite. Called before the report is written
// and again by the decode round-trip test on the committed artifact.
func (r *scaleBenchReport) validate() error {
	const eps = 1e-6
	for _, op := range r.Ops {
		if op.GraphTInf <= 0 || op.GraphT1 <= 0 {
			return fmt.Errorf("%s n=%d: non-positive graph work/span (T1=%g TInf=%g)",
				op.Op, op.N, op.GraphT1, op.GraphTInf)
		}
		graphBound := func(p int) float64 {
			return math.Min(float64(p), op.GraphT1/op.GraphTInf)
		}
		for _, sp := range op.Simulated {
			if sp.Speedup <= 0 || math.IsInf(sp.Speedup, 0) || math.IsNaN(sp.Speedup) {
				return fmt.Errorf("%s n=%d w=%d: bad simulated speedup %g", op.Op, op.N, sp.Workers, sp.Speedup)
			}
			if b := graphBound(sp.Workers); sp.Speedup > b*(1+eps) {
				return fmt.Errorf("%s n=%d w=%d: simulated speedup %.4f exceeds DAG bound %.4f",
					op.Op, op.N, sp.Workers, sp.Speedup, b)
			}
		}
		for _, mp := range op.Measured {
			if mp.Seconds <= 0 {
				return fmt.Errorf("%s n=%d w=%d: non-positive measured time %g", op.Op, op.N, mp.Workers, mp.Seconds)
			}
		}
	}
	return nil
}

// minTime returns the fastest of reps runs of f, the standard timing-noise
// filter.
func minTime(reps int, f func()) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		if s := autotune.Time(f); s < best {
			best = s
		}
	}
	return best
}

// minTimeSetup is minTime with a fresh untimed setup before every rep:
// setup returns the closure to time. Used wherever the measured operation
// destroys its input (factorizations) so re-preparation stays off the clock.
func minTimeSetup(reps int, setup func() func()) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		f := setup()
		if s := autotune.Time(f); s < best {
			best = s
		}
	}
	return best
}

// workerSweep returns the measured worker counts 1,2,4,… up to max,
// including max itself when it is not a power of two.
func workerSweep(max int) []int {
	var ws []int
	for w := 1; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	if ws[len(ws)-1] != max {
		ws = append(ws, max)
	}
	return ws
}

func runBenchJSON(quick bool) error {
	if err := benchGemmJSON(quick); err != nil {
		return err
	}
	if err := benchCholJSON(quick); err != nil {
		return err
	}
	return benchScaleJSON(quick)
}

func benchGemmJSON(quick bool) error {
	sizes := pick(quick, []int{128, 256}, []int{256, 512, 1024})
	reps := pick(quick, 2, 3)
	report := gemmBenchReport{
		Benchmark:  "gemm-f64-nn",
		Baseline:   "axpy",
		Blocking:   blas.GemmBlocking(),
		MinSpeedup: math.Inf(1),
	}
	fmt.Printf("gemm: packed register-blocked path vs axpy baseline (float64, C ← A·B)\n\n")
	tbl := newTable("n", "axpy GF/s", "packed GF/s", "speedup")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		a := matgen.Dense[float64](rng, n, n)
		b := matgen.Dense[float64](rng, n, n)
		c := make([]float64, n*n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		axpy := flops / minTime(reps, func() {
			blas.GemmAxpy(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		}) / 1e9
		packed := flops / minTime(reps, func() {
			blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		}) / 1e9
		sp := packed / axpy
		report.Sizes = append(report.Sizes, gemmSizeResult{N: n, AxpyGflops: axpy, PackedGflops: packed, Speedup: sp})
		report.MinSpeedup = math.Min(report.MinSpeedup, sp)
		tbl.add(n, axpy, packed, sp)
	}
	tbl.print()
	return writeBenchFile("BENCH_gemm.json", report)
}

func benchCholJSON(quick bool) error {
	sizes := pick(quick, []int{256, 512}, []int{512, 1024})
	nb := pick(quick, 64, 96)
	reps := 2
	cpus := runtime.GOMAXPROCS(0)
	report := cholBenchReport{Benchmark: "cholesky-f64", HostCPUs: cpus}
	fmt.Printf("\ncholesky: serial Potrf kernel vs tiled dataflow by worker count (nb=%d)\n\n", nb)
	tbl := newTable("n", "workers", "serial GF/s", "tiled GF/s", "vs serial %")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		aD := matgen.DiagDomSPD[float64](rng, n)
		flops := float64(n) * float64(n) * float64(n) / 3

		serial := flops / minTimeSetup(reps, func() func() {
			work := append([]float64(nil), aD...)
			return func() {
				if err := lapack.Potrf(blas.Lower, n, work, n); err != nil {
					panic(err)
				}
			}
		}) / 1e9

		for _, w := range workerSweep(cpus) {
			rt := sched.New(w)
			tiled := flops / minTimeSetup(reps, func() func() {
				at := tile.FromColMajor(n, n, aD, n, nb)
				return func() {
					if err := core.Cholesky(rt, at); err != nil {
						panic(err)
					}
				}
			}) / 1e9
			rt.Shutdown()
			report.Sizes = append(report.Sizes, cholSizeResult{
				N: n, NB: nb, Workers: w,
				SerialPotrfGflops:  serial,
				TiledGflops:        tiled,
				TiledOverSerialPct: 100 * (tiled/serial - 1),
			})
			tbl.add(n, w, serial, tiled, 100*(tiled/serial-1))
		}
	}
	tbl.print()
	return writeBenchFile("BENCH_chol.json", report)
}

// scaleOp bundles what the sweep needs to know about one factorization.
type scaleOp struct {
	name   string
	matrix func(rng *rand.Rand, n int) []float64
	run    func(s sched.Scheduler, a *tile.Matrix[float64]) error
	serial func(n int, a []float64) // in-place serial blocked kernel
	flops  func(n int) float64
}

func scaleOps() []scaleOp {
	return []scaleOp{
		{
			name:   "cholesky",
			matrix: func(rng *rand.Rand, n int) []float64 { return matgen.DiagDomSPD[float64](rng, n) },
			run: func(s sched.Scheduler, a *tile.Matrix[float64]) error {
				return core.Cholesky(s, a)
			},
			serial: func(n int, a []float64) {
				if err := lapack.Potrf(blas.Lower, n, a, n); err != nil {
					panic(err)
				}
			},
			flops: func(n int) float64 { return float64(n) * float64(n) * float64(n) / 3 },
		},
		{
			name: "lu",
			matrix: func(rng *rand.Rand, n int) []float64 {
				a := matgen.Dense[float64](rng, n, n)
				for i := 0; i < n; i++ {
					a[i+i*n] += float64(n) // diagonal dominance keeps pivots stable
				}
				return a
			},
			run: func(s sched.Scheduler, a *tile.Matrix[float64]) error {
				_, err := core.LU(s, a)
				return err
			},
			serial: func(n int, a []float64) {
				ipiv := make([]int, n)
				if err := lapack.Getrf(n, n, a, n, ipiv); err != nil {
					panic(err)
				}
			},
			flops: func(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) / 3 },
		},
		{
			name:   "qr",
			matrix: func(rng *rand.Rand, n int) []float64 { return matgen.Dense[float64](rng, n, n) },
			run: func(s sched.Scheduler, a *tile.Matrix[float64]) error {
				core.QR(s, a)
				return nil
			},
			serial: func(n int, a []float64) {
				tau := make([]float64, n)
				lapack.Geqrf(n, n, a, n, tau)
			},
			flops: func(n int) float64 { return 4 * float64(n) * float64(n) * float64(n) / 3 },
		},
	}
}

// simWorkerCounts are the virtual worker counts every recorded graph is
// replayed on — fixed regardless of host size so reports from different
// machines stay comparable.
var simWorkerCounts = []int{1, 2, 4, 8, 16, 32}

func benchScaleJSON(quick bool) error {
	sizes := pick(quick, []int{512}, []int{512, 1024})
	nbFor := func(n int) int {
		if n >= 1024 {
			return 96
		}
		return 64
	}
	reps := 2
	cpus := runtime.GOMAXPROCS(0)
	report := scaleBenchReport{
		Benchmark:  "strong-scaling-f64",
		HostCPUs:   cpus,
		SimWorkers: append([]int(nil), simWorkerCounts...),
	}
	fmt.Printf("\nstrong scaling: tiled Cholesky/LU/QR — measured workers %v, simulated %v\n",
		workerSweep(cpus), simWorkerCounts)

	for _, op := range scaleOps() {
		for _, n := range sizes {
			nb := nbFor(n)
			rng := rand.New(rand.NewSource(int64(n)))
			aD := op.matrix(rng, n)
			flops := op.flops(n)

			res := scaleOpResult{Op: op.name, N: n, NB: nb}

			res.SerialSeconds = minTimeSetup(reps, func() func() {
				work := append([]float64(nil), aD...)
				return func() { op.serial(n, work) }
			})

			// Measured sweep: one runtime per worker count, re-tiled input
			// per rep, only the factorization on the clock.
			var w1 float64
			for _, w := range workerSweep(cpus) {
				rt := sched.New(w)
				secs := minTimeSetup(reps, func() func() {
					at := tile.FromColMajor(n, n, aD, n, nb)
					return func() {
						if err := op.run(rt, at); err != nil {
							panic(err)
						}
					}
				})
				rt.Shutdown()
				if w == 1 {
					w1 = secs
				}
				res.Measured = append(res.Measured, scaleMeasuredPoint{
					Workers: w,
					Seconds: secs,
					Gflops:  flops / secs / 1e9,
					Speedup: w1 / secs,
				})
			}
			res.TiledW1Seconds = w1
			res.TiledOverSerialPct = 100 * (res.SerialSeconds/w1 - 1)

			// Instrumented run: spans through trace.AnalyzeDAG give the
			// work/span decomposition of a real execution.
			tl := trace.NewLog()
			{
				rt := sched.New(1, sched.WithTracer(tl))
				at := tile.FromColMajor(n, n, aD, n, nb)
				if err := op.run(rt, at); err != nil {
					panic(err)
				}
				rt.Shutdown()
			}
			st := tl.AnalyzeDAG()
			res.TraceT1, res.TraceTInf = st.T1, st.TInf
			for i := range res.Measured {
				res.Measured[i].DAGBound = st.SpeedupBound(res.Measured[i].Workers)
			}

			// Recorded cost graph replayed on virtual workers.
			rec := sched.NewRecorder()
			{
				at := tile.FromColMajor(n, n, aD, n, nb)
				if err := op.run(rec, at); err != nil {
					panic(err)
				}
			}
			g := rec.Graph()
			res.Tasks = g.Tasks()
			res.GraphT1, res.GraphTInf = g.TotalWork(), g.CriticalPath()
			for _, vw := range simWorkerCounts {
				sim := sched.Simulate(g, vw)
				res.Simulated = append(res.Simulated, scaleSimPoint{
					Workers:     vw,
					Makespan:    sim.Makespan,
					Speedup:     res.GraphT1 / sim.Makespan,
					Utilization: sim.Utilization,
					DAGBound:    math.Min(float64(vw), res.GraphT1/res.GraphTInf),
				})
			}

			fmt.Printf("\n%s n=%d nb=%d: %d tasks, serial %.4fs, tiled w1 %.4fs (%+.1f%%), trace T1/T∞ = %.2f\n",
				op.name, n, nb, res.Tasks, res.SerialSeconds, w1, res.TiledOverSerialPct, st.T1/st.TInf)
			tbl := newTable("workers", "kind", "seconds", "speedup", "util %", "DAG bound")
			for _, mp := range res.Measured {
				tbl.add(mp.Workers, "measured", mp.Seconds, mp.Speedup, "-", mp.DAGBound)
			}
			for _, sp := range res.Simulated {
				tbl.add(sp.Workers, "simulated", sp.Makespan, sp.Speedup, 100*sp.Utilization, sp.DAGBound)
			}
			tbl.print()

			report.Ops = append(report.Ops, res)
		}
	}
	if err := report.validate(); err != nil {
		return fmt.Errorf("scaling report failed self-check: %w", err)
	}
	return writeBenchFile("BENCH_scale.json", report)
}

func writeBenchFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
