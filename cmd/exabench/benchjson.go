package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"

	"exadla/internal/autotune"
	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// The -json mode measures the two hot-path benchmarks the kernel layer is
// graded on and writes them as machine-readable artifacts:
//
//	BENCH_gemm.json  — float64 Gemm GF/s by square size, packed
//	                   register-blocked path vs the axpy baseline kernel
//	BENCH_chol.json  — float64 Cholesky GF/s by size, serial Potrf kernel
//	                   and the full tiled dataflow run
//
// CI runs this in -quick mode and archives the files; full mode covers the
// 256–1024 range the kernel work targets.

type gemmSizeResult struct {
	N            int     `json:"n"`
	AxpyGflops   float64 `json:"axpy_gflops"`
	PackedGflops float64 `json:"packed_gflops"`
	Speedup      float64 `json:"speedup"`
}

type gemmBenchReport struct {
	Benchmark  string           `json:"benchmark"`
	Baseline   string           `json:"baseline"`
	Blocking   blas.Blocking    `json:"blocking"`
	Sizes      []gemmSizeResult `json:"sizes"`
	MinSpeedup float64          `json:"min_speedup"`
}

type cholSizeResult struct {
	N                  int     `json:"n"`
	NB                 int     `json:"nb"`
	SerialPotrfGflops  float64 `json:"serial_potrf_gflops"`
	TiledGflops        float64 `json:"tiled_gflops"`
	TiledOverSerialPct float64 `json:"tiled_over_serial_pct"`
}

type cholBenchReport struct {
	Benchmark string           `json:"benchmark"`
	Workers   int              `json:"workers"`
	Sizes     []cholSizeResult `json:"sizes"`
}

// minTime returns the fastest of reps runs of f, the standard timing-noise
// filter.
func minTime(reps int, f func()) float64 {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		if s := autotune.Time(f); s < best {
			best = s
		}
	}
	return best
}

func runBenchJSON(quick bool) error {
	if err := benchGemmJSON(quick); err != nil {
		return err
	}
	return benchCholJSON(quick)
}

func benchGemmJSON(quick bool) error {
	sizes := pick(quick, []int{128, 256}, []int{256, 512, 1024})
	reps := pick(quick, 2, 3)
	report := gemmBenchReport{
		Benchmark:  "gemm-f64-nn",
		Baseline:   "axpy",
		Blocking:   blas.GemmBlocking(),
		MinSpeedup: math.Inf(1),
	}
	fmt.Printf("gemm: packed register-blocked path vs axpy baseline (float64, C ← A·B)\n\n")
	tbl := newTable("n", "axpy GF/s", "packed GF/s", "speedup")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		a := matgen.Dense[float64](rng, n, n)
		b := matgen.Dense[float64](rng, n, n)
		c := make([]float64, n*n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		axpy := flops / minTime(reps, func() {
			blas.GemmAxpy(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		}) / 1e9
		packed := flops / minTime(reps, func() {
			blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		}) / 1e9
		sp := packed / axpy
		report.Sizes = append(report.Sizes, gemmSizeResult{N: n, AxpyGflops: axpy, PackedGflops: packed, Speedup: sp})
		report.MinSpeedup = math.Min(report.MinSpeedup, sp)
		tbl.add(n, axpy, packed, sp)
	}
	tbl.print()
	return writeBenchFile("BENCH_gemm.json", report)
}

func benchCholJSON(quick bool) error {
	sizes := pick(quick, []int{256, 512}, []int{512, 1024})
	nb := pick(quick, 64, 96)
	reps := 2
	workers := runtime.GOMAXPROCS(0)
	report := cholBenchReport{Benchmark: "cholesky-f64", Workers: workers}
	fmt.Printf("\ncholesky: serial Potrf kernel and full tiled dataflow run (nb=%d, workers=%d)\n\n", nb, workers)
	tbl := newTable("n", "serial GF/s", "tiled GF/s")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		aD := matgen.DiagDomSPD[float64](rng, n)
		flops := float64(n) * float64(n) * float64(n) / 3

		serial := flops / minTime(reps, func() {
			aCopy := append([]float64(nil), aD...)
			if err := lapack.Potrf(blas.Lower, n, aCopy, n); err != nil {
				panic(err)
			}
		}) / 1e9

		tiled := flops / minTime(reps, func() {
			at := tile.FromColMajor(n, n, aD, n, nb)
			rt := sched.New(workers)
			defer rt.Shutdown()
			if err := core.Cholesky(rt, at); err != nil {
				panic(err)
			}
		}) / 1e9

		report.Sizes = append(report.Sizes, cholSizeResult{
			N: n, NB: nb,
			SerialPotrfGflops:  serial,
			TiledGflops:        tiled,
			TiledOverSerialPct: 100 * (tiled/serial - 1),
		})
		tbl.add(n, serial, tiled)
	}
	tbl.print()
	return writeBenchFile("BENCH_chol.json", report)
}

func writeBenchFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
