package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"exadla"
	"exadla/internal/matgen"
)

// The -serve mode benchmarks the solve service end to end and writes
// BENCH_serve.json. Three phases:
//
//  1. An open-loop mixed load over real HTTP: Poisson arrivals of many
//     small solves, a band of medium solves against a few shared operators
//     (cache traffic), and occasional huge factorizations, plus one burst
//     that drives the queue past its admission budget so load shedding is
//     exercised, not just configured. Records throughput, p50/p99/p999
//     latency, shed rate, and cache hit rate.
//  2. Warm-vs-cold: the same operator solved cold (factorize + solve) and
//     then repeatedly against the cached factor. The ratio is the cache's
//     core claim: a warm solve skips the O(n³) factorization.
//  3. A flood of tiny solves through the batched fast path vs the same
//     flood with batching disabled — the fused-submission speedup.
//
// Like the scaling report, only RELATIVE metrics (speedups, rates) are
// gated by -benchdiff; absolute latencies shift with the host.

type serveMixedResult struct {
	DurationS       float64 `json:"duration_s"`
	Offered         int64   `json:"offered"`
	Done            int64   `json:"done"`
	Failed          int64   `json:"failed"`
	Shed            int64   `json:"shed"`
	ThroughputJobsS float64 `json:"throughput_jobs_s"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	P999Ms          float64 `json:"p999_ms"`
	ShedRate        float64 `json:"shed_rate"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	BatchFlushes    int64   `json:"batch_flushes"`
	BatchJobs       int64   `json:"batch_jobs"`
}

type serveWarmResult struct {
	N       int     `json:"n"`
	NB      int     `json:"nb"`
	ColdMs  float64 `json:"cold_ms"`
	WarmMs  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
}

type serveFloodResult struct {
	Count          int     `json:"count"`
	N              int     `json:"n"`
	BatchedSeconds float64 `json:"batched_seconds"`
	PerJobSeconds  float64 `json:"per_job_seconds"`
	Speedup        float64 `json:"speedup"`
	Flushes        int64   `json:"flushes"`
	MeanBatchSize  float64 `json:"mean_batch_size"`
}

type serveBenchReport struct {
	Benchmark string           `json:"benchmark"`
	HostCPUs  int              `json:"host_cpus"`
	Quick     bool             `json:"quick"`
	Mixed     serveMixedResult `json:"mixed"`
	Warm      serveWarmResult  `json:"warm"`
	Flood     serveFloodResult `json:"flood"`
}

// validate machine-checks the report against the service's load-bearing
// claims before it is written: the factorization cache must make repeated
// solves at least 10× faster, the batched fast path must beat per-job
// submission at least 2×, shedding must have been exercised, and the
// percentile ladder must be ordered.
func (r *serveBenchReport) validate() error {
	// The full-mode floors are the acceptance criteria (n=768 warm solves,
	// a 10k-job flood); quick mode measures smaller configurations on
	// noisier CI hosts, so its floors are sanity bounds, with the ratio
	// regression caught by -benchdiff against the committed full report.
	warmFloor, floodFloor := 10.0, 2.0
	if r.Quick {
		warmFloor, floodFloor = 5.0, 1.3
	}
	if r.Warm.Speedup < warmFloor {
		return fmt.Errorf("warm solve is only %.1f× faster than cold, want ≥%.0f×", r.Warm.Speedup, warmFloor)
	}
	if r.Flood.Speedup < floodFloor {
		return fmt.Errorf("batched flood is only %.2f× faster than per-job, want ≥%.1f×", r.Flood.Speedup, floodFloor)
	}
	if r.Mixed.Shed == 0 {
		return fmt.Errorf("the overload burst shed nothing; admission control untested")
	}
	if r.Mixed.P50Ms <= 0 || r.Mixed.P50Ms > r.Mixed.P99Ms || r.Mixed.P99Ms > r.Mixed.P999Ms {
		return fmt.Errorf("percentiles out of order: p50=%.3f p99=%.3f p999=%.3f",
			r.Mixed.P50Ms, r.Mixed.P99Ms, r.Mixed.P999Ms)
	}
	if r.Mixed.CacheHits == 0 {
		return fmt.Errorf("mixed load produced no cache hits; repeated-operator traffic broken")
	}
	if r.Mixed.Done+r.Mixed.Failed+r.Mixed.Shed != r.Mixed.Offered {
		return fmt.Errorf("job accounting leaks: done+failed+shed=%d, offered=%d",
			r.Mixed.Done+r.Mixed.Failed+r.Mixed.Shed, r.Mixed.Offered)
	}
	return nil
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e6
}

func runServeBench(quick bool, addr string) error {
	report := &serveBenchReport{
		Benchmark: "solve-service",
		HostCPUs:  runtime.NumCPU(),
		Quick:     quick,
	}
	mixed, err := serveMixedPhase(quick, addr)
	if err != nil {
		return err
	}
	report.Mixed = *mixed
	report.Warm = serveWarmPhase(quick)
	report.Flood = serveFloodPhase(quick)
	if err := report.validate(); err != nil {
		return fmt.Errorf("serve bench report failed validation: %w", err)
	}
	return writeBenchFile("BENCH_serve.json", report)
}

// serveMixedPhase drives the server over real HTTP with open-loop Poisson
// arrivals: the arrival process never waits for completions, so queueing
// delay shows up in the latency tail instead of throttling the offered
// load the way a closed loop would.
func serveMixedPhase(quick bool, addr string) (*serveMixedResult, error) {
	// addr pins the load-phase server so CI can curl /metrics mid-run;
	// empty picks an ephemeral port.
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	s, err := exadla.Serve(exadla.ServeConfig{
		Addr:        addr,
		MaxQueue:    64,
		SmallCutoff: 16,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	base := "http://" + s.Addr()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 512}}

	rng := rand.New(rand.NewSource(42))
	dur := pick(quick, 3*time.Second, 8*time.Second)
	rate := float64(pick(quick, 250, 400)) // arrivals per second

	// Traffic shapes, pre-generated so the arrival loop only serializes.
	small := make([][]byte, 32)
	for i := range small {
		n := []int{8, 12, 16}[i%3]
		small[i] = serveJobJSON(exadla.ServeSolveSPD, n, matgen.DiagDomSPD[float64](rng, n),
			matgen.Dense[float64](rng, n, 1))
	}
	const mediums = 4
	medium := make([][]byte, mediums) // few shared operators → cache hits
	for i := range medium {
		n := 96
		medium[i] = serveJobJSON(exadla.ServeSolveSPD, n, matgen.DiagDomSPD[float64](rng, n),
			matgen.Dense[float64](rng, n, 1))
	}
	hugeN := pick(quick, 256, 512)
	huge := serveJobJSON(exadla.ServeFactorSPD, hugeN, matgen.DiagDomSPD[float64](rng, hugeN), nil)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		offered   int64
		done      int64
		failed    int64
		shed      int64
		wg        sync.WaitGroup
	)
	// Burst submissions count toward the shed/done accounting but not the
	// latency sample: the percentiles describe steady-state service quality,
	// and the burst exists to prove overload is shed, not queued forever.
	fire := func(body []byte, tenant string, sampleLatency bool) {
		wg.Add(1)
		offered++
		go func() {
			defer wg.Done()
			start := time.Now()
			req, _ := http.NewRequest("POST", base+"/jobs?wait=1", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Tenant", tenant)
			resp, err := client.Do(req)
			if err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
				return
			}
			var st exadla.ServeStatus
			decErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case resp.StatusCode == http.StatusTooManyRequests:
				shed++
			case decErr != nil || st.State != "done":
				failed++
			default:
				done++
				if sampleLatency {
					latencies = append(latencies, time.Since(start))
				}
			}
		}()
	}

	start := time.Now()
	burstAt := dur / 2
	burstFired := false
	for elapsed := time.Duration(0); elapsed < dur; elapsed = time.Since(start) {
		if !burstFired && elapsed > burstAt {
			// A single synchronized burst several times MaxQueue, aimed at
			// the lane path (medium solves drain orders of magnitude slower
			// than the batcher eats tiny ones): admission control must
			// shed, not queue without bound.
			burstFired = true
			for i := 0; i < 6*64; i++ {
				fire(medium[i%mediums], fmt.Sprintf("burst-%d", i%8), false)
			}
		}
		switch u := rng.Float64(); {
		case u < 0.02:
			fire(huge, "science", true)
		case u < 0.12:
			fire(medium[rng.Intn(mediums)], "analytics", true)
		default:
			fire(small[rng.Intn(len(small))], fmt.Sprintf("edge-%d", rng.Intn(4)), true)
		}
		time.Sleep(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	snap := s.Metrics()
	hits, misses := snap.Counters["serve.cache.hits"], snap.Counters["serve.cache.misses"]
	res := &serveMixedResult{
		DurationS:       wall.Seconds(),
		Offered:         offered,
		Done:            done,
		Failed:          failed,
		Shed:            shed,
		ThroughputJobsS: float64(done) / wall.Seconds(),
		P50Ms:           quantileMs(latencies, 0.50),
		P99Ms:           quantileMs(latencies, 0.99),
		P999Ms:          quantileMs(latencies, 0.999),
		ShedRate:        float64(shed) / float64(offered),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheHitRate:    float64(hits) / math.Max(1, float64(hits+misses)),
		BatchFlushes:    snap.Counters["serve.batch.flushes"],
		BatchJobs:       snap.Counters["serve.batch.jobs"],
	}
	tbl := newTable("metric", "value")
	tbl.add("offered jobs", offered)
	tbl.add("throughput (jobs/s)", res.ThroughputJobsS)
	tbl.add("p50 latency (ms)", res.P50Ms)
	tbl.add("p99 latency (ms)", res.P99Ms)
	tbl.add("p99.9 latency (ms)", res.P999Ms)
	tbl.add("shed rate", res.ShedRate)
	tbl.add("cache hit rate", res.CacheHitRate)
	tbl.add("batched jobs", res.BatchJobs)
	tbl.print()
	return res, nil
}

func serveJobJSON(op exadla.ServeOp, n int, a, b []float64) []byte {
	spec := exadla.ServeJob{Op: op, N: n, A: a, B: b}
	if b != nil {
		spec.NRHS = 1
	}
	data, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return data
}

// serveWarmPhase measures the factorization cache's latency win on one
// repeated operator, in-process so HTTP overhead does not blur the ratio.
// The cold number uploads and factors the matrix; the warm numbers are the
// cached workflow the fingerprint exists for — submit only the new
// right-hand side against the resident factor.
func serveWarmPhase(quick bool) serveWarmResult {
	n := pick(quick, 512, 768)
	s, err := exadla.Serve(exadla.ServeConfig{Lanes: 1, SmallCutoff: -1})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))

	solveOnce := func(spec exadla.ServeJob) (time.Duration, exadla.ServeStatus) {
		start := time.Now()
		id, err := s.Submit("warm-bench", spec)
		if err != nil {
			panic(err)
		}
		st, _ := s.WaitJob(id)
		if st.State != "done" {
			panic(fmt.Sprintf("warm bench job failed: %s", st.Error))
		}
		return time.Since(start), st
	}

	// Three distinct operators give three cold samples (each first solve is
	// a miss); the best is the cold number.
	cold := time.Duration(math.MaxInt64)
	var fp string
	var b []float64
	for i := 0; i < 3; i++ {
		a := matgen.DiagDomSPD[float64](rng, n)
		b = matgen.Dense[float64](rng, n, 1)
		d, st := solveOnce(exadla.ServeJob{
			Op: exadla.ServeSolveSPD, N: n, NRHS: 1,
			A: a, B: append([]float64(nil), b...),
		})
		if d < cold {
			cold = d
		}
		fp = st.Fingerprint
	}
	// Warm samples reference the last operator's cached factor by
	// fingerprint: no matrix upload, no factorization — just the O(n²)
	// triangular solves.
	warm := time.Duration(math.MaxInt64)
	for i := 0; i < 7; i++ {
		d, st := solveOnce(exadla.ServeJob{
			Op: exadla.ServeSolveSPD, N: n, NRHS: 1,
			Fingerprint: fp, B: append([]float64(nil), b...),
		})
		if st.Cache != "hit" {
			panic("warm solve missed the cache")
		}
		if d < warm {
			warm = d
		}
	}
	res := serveWarmResult{
		N: n, NB: 64,
		ColdMs:  float64(cold) / 1e6,
		WarmMs:  float64(warm) / 1e6,
		Speedup: float64(cold) / float64(warm),
	}
	tbl := newTable("phase", "latency ms", "speedup")
	tbl.add(fmt.Sprintf("cold solve n=%d", n), res.ColdMs, 1.0)
	tbl.add(fmt.Sprintf("warm solve n=%d", n), res.WarmMs, res.Speedup)
	tbl.print()
	return res
}

// serveFloodPhase pushes the same flood of tiny solves through a server
// with the batched fast path on, then through one with it disabled (every
// job its own DAG on a lane runtime), and compares wall time.
func serveFloodPhase(quick bool) serveFloodResult {
	count := pick(quick, 2000, 10000)
	n := 8
	rng := rand.New(rand.NewSource(11))
	as := make([][]float64, count)
	bs := make([][]float64, count)
	for i := range as {
		as[i] = matgen.DiagDomSPD[float64](rng, n)
		bs[i] = matgen.Dense[float64](rng, n, 1)
	}

	run := func(cutoff int) (float64, int64, float64) {
		s, err := exadla.Serve(exadla.ServeConfig{
			SmallCutoff: cutoff,
			MaxQueue:    count + 16,
			BatchMax:    256,
		})
		if err != nil {
			panic(err)
		}
		defer s.Close()
		ids := make([]string, count)
		start := time.Now()
		for i := range as {
			ids[i], err = s.Submit(fmt.Sprintf("flood-%d", i%4), exadla.ServeJob{
				Op: exadla.ServeSolveSPD, N: n, NRHS: 1,
				A: append([]float64(nil), as[i]...), B: append([]float64(nil), bs[i]...),
			})
			if err != nil {
				panic(err)
			}
		}
		for _, id := range ids {
			if st, _ := s.WaitJob(id); st.State != "done" {
				panic(fmt.Sprintf("flood job %s: %s %s", id, st.State, st.Error))
			}
		}
		secs := time.Since(start).Seconds()
		snap := s.Metrics()
		flushes := snap.Counters["serve.batch.flushes"]
		mean := 0.0
		if flushes > 0 {
			mean = float64(snap.Counters["serve.batch.jobs"]) / float64(flushes)
		}
		return secs, flushes, mean
	}

	// Best-of-3 per path: one quick-mode flood is only tens of
	// milliseconds of wall time, so a single sample is mostly scheduler
	// warmup and OS noise; the min is the honest capacity of each path.
	batched, flushes, mean := run(16)
	perJob, _, _ := run(-1)
	for i := 0; i < 2; i++ {
		if b2, f2, m2 := run(16); b2 < batched {
			batched, flushes, mean = b2, f2, m2
		}
		if p2, _, _ := run(-1); p2 < perJob {
			perJob = p2
		}
	}
	res := serveFloodResult{
		Count: count, N: n,
		BatchedSeconds: batched,
		PerJobSeconds:  perJob,
		Speedup:        perJob / batched,
		Flushes:        flushes,
		MeanBatchSize:  mean,
	}
	tbl := newTable("path", "seconds", "jobs/s", "speedup")
	tbl.add("per-job DAGs", perJob, float64(count)/perJob, 1.0)
	tbl.add("batched fast path", batched, float64(count)/batched, res.Speedup)
	tbl.print()
	fmt.Printf("\n%d jobs fused into %d flushes (mean batch %.0f)\n", count, flushes, mean)
	return res
}
