package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/mixed"
)

// runE3 reproduces the dsgesv plot: mixed-precision LU with iterative
// refinement versus a full float64 solve, across sizes and condition
// numbers — time ratio, refinement sweeps, and delivered accuracy.
func runE3(quick bool) {
	sizes := pick(quick, []int{256, 512}, []int{256, 512, 1024})
	conds := []float64{1e1, 1e4, 1e6, 1e9}

	tbl := newTable("n", "cond", "t_fp64(s)", "t_mixed(s)", "speedup",
		"modeled_2x", "iters", "converged", "fwd_err_mixed", "fwd_err_fp32")
	for _, n := range sizes {
		for _, cond := range conds {
			rng := rand.New(rand.NewSource(int64(n) + int64(cond)))
			a := matgen.WithCond[float64](rng, n, n, cond)
			xTrue := matgen.Dense[float64](rng, n, 1)
			b := make([]float64, n)
			blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)

			// Full float64 solve.
			a64 := append([]float64(nil), a...)
			x64 := append([]float64(nil), b...)
			ipiv := make([]int, n)
			t0 := time.Now()
			if err := lapack.Gesv(n, 1, a64, n, ipiv, x64, n); err != nil {
				fmt.Printf("n=%d cond=%.0e: fp64 solve failed: %v\n", n, cond, err)
				continue
			}
			tFP64 := time.Since(t0).Seconds()

			// Mixed precision.
			xm := make([]float64, n)
			t0 = time.Now()
			res, err := mixed.SolveLU(n, a, n, b, xm)
			tMixed := time.Since(t0).Seconds()
			if err != nil {
				fmt.Printf("n=%d cond=%.0e: mixed solve failed: %v\n", n, cond, err)
				continue
			}

			// Pure float32 for the accuracy contrast, timing the float32
			// factorization for the modeled-speedup column.
			a32 := make([]float32, n*n)
			b32 := make([]float32, n)
			for i := range a {
				a32[i] = float32(a[i])
			}
			for i := range b {
				b32[i] = float32(b[i])
			}
			x32 := make([]float64, n)
			t0 = time.Now()
			fErr := lapack.Getrf(n, n, a32, n, ipiv)
			tFact32 := time.Since(t0).Seconds()
			if fErr == nil {
				lapack.Getrs(blas.NoTrans, n, 1, a32, n, ipiv, b32, n)
				for i := range b32 {
					x32[i] = float64(b32[i])
				}
			}
			// Modeled speedup on hardware with 2× float32 throughput (the
			// documented substitution: scalar Go has no SIMD, so measured
			// float32 runs at float64 speed; real FP units don't).
			tRefine := tMixed - tFact32
			if tRefine < 0 {
				tRefine = 0
			}
			modeled := tFP64 / (tFact32/2 + tRefine)

			conv := "yes"
			if res.FellBack {
				conv = "fallback"
			} else if !res.Converged {
				conv = "no"
			}
			tbl.add(n, fmt.Sprintf("%.0e", cond), tFP64, tMixed, tFP64/tMixed,
				modeled, res.Iterations, conv, fwdErr(xm, xTrue), fwdErr(x32, xTrue))
		}
	}
	tbl.print()
	fmt.Println("\nexpected shape: modeled_2x >1 and flat iters at low cond; iters grow and the")
	fmt.Println("advantage decays toward cond≈1/eps32≈1e7, with fallback beyond; mixed fwd_err")
	fmt.Println("tracks fp64, fp32 fwd_err is ~1e7x worse. measured speedup ≈1 on this host:")
	fmt.Println("scalar Go executes fp32 and fp64 at the same rate (no SIMD), so the hardware")
	fmt.Println("2x fp32 advantage is modeled, not measured (see DESIGN.md substitutions)")
}

func fwdErr(x, xTrue []float64) float64 {
	var d, nrm float64
	for i := range x {
		if v := math.Abs(x[i] - xTrue[i]); v > d {
			d = v
		}
		if v := math.Abs(xTrue[i]); v > nrm {
			nrm = v
		}
	}
	if nrm == 0 {
		return d
	}
	return d / nrm
}
