package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The -benchdiff mode is the CI regression gate on the strong-scaling
// report: it compares a freshly generated BENCH_scale.json against the
// committed baseline and fails when any speedup regressed beyond the
// tolerance. Only RELATIVE metrics are compared — speedups and the
// tiled-vs-serial ratio — because absolute GF/s shift with the host, while
// ratios measured on the same machine in the same run cancel that out.
//
// Entries are matched by (op, n, nb, workers). A baseline entry with no
// counterpart in the new report fails the gate — a report that quietly
// shrinks (an op crashed, a size was dropped) must not pass on whatever
// remains — unless that entry is explicitly waived via -benchmissing
// (format "op/n<N>/nb<NB>", comma-separated; how -quick runs declare the
// full-mode sizes they legitimately omit). Zero matched entries is itself
// a failure, so a schema drift cannot silently turn the gate off.

// diffEntry is one compared metric, kept for the report table.
type diffEntry struct {
	key      string
	old, new float64
	regress  bool
}

func runBenchDiff(basePath, newPath string, tol float64, missing string) error {
	// Dispatch on the baseline's benchmark kind: the same -benchdiff flag
	// gates both the strong-scaling report and the solve-service report.
	if kind, err := peekBenchmark(basePath); err == nil && kind == "solve-service" {
		return runServeBenchDiff(basePath, newPath, tol)
	}
	base, err := loadScaleReport(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadScaleReport(newPath)
	if err != nil {
		return fmt.Errorf("new report: %w", err)
	}

	waived, err := parseWaivers(missing)
	if err != nil {
		return err
	}
	baseOps := map[opKey]*scaleOpResult{}
	for i := range base.Ops {
		op := &base.Ops[i]
		baseOps[opKey{op.Op, op.N, op.NB}] = op
	}

	var entries []diffEntry
	check := func(key string, oldV, newV float64) {
		// A metric regresses when it drops more than tol below baseline.
		entries = append(entries, diffEntry{key, oldV, newV, newV < oldV*(1-tol)})
	}
	matched := map[opKey]bool{}
	for i := range cur.Ops {
		op := &cur.Ops[i]
		k := opKey{op.Op, op.N, op.NB}
		b, ok := baseOps[k]
		if !ok {
			fmt.Printf("benchdiff: %s n=%d nb=%d not in baseline, skipped\n", op.Op, op.N, op.NB)
			continue
		}
		matched[k] = true
		// Tiled-vs-serial is a ratio of two times from the same run; compare
		// it as serial/tiled so "bigger is better" like the speedups.
		check(fmt.Sprintf("%s/n%d/tiled_vs_serial", op.Op, op.N),
			1+b.TiledOverSerialPct/100, 1+op.TiledOverSerialPct/100)
		// Parallelism of the recorded DAG: T1/TInf shrinking means the graph
		// itself lost parallel slack.
		if b.GraphTInf > 0 && op.GraphTInf > 0 {
			check(fmt.Sprintf("%s/n%d/graph_parallelism", op.Op, op.N),
				b.GraphT1/b.GraphTInf, op.GraphT1/op.GraphTInf)
		}
		baseMeasured := map[int]scaleMeasuredPoint{}
		for _, mp := range b.Measured {
			baseMeasured[mp.Workers] = mp
		}
		for _, mp := range op.Measured {
			if bp, ok := baseMeasured[mp.Workers]; ok && mp.Workers > 1 {
				check(fmt.Sprintf("%s/n%d/measured_speedup_w%d", op.Op, op.N, mp.Workers),
					bp.Speedup, mp.Speedup)
			}
		}
		baseSim := map[int]scaleSimPoint{}
		for _, sp := range b.Simulated {
			baseSim[sp.Workers] = sp
		}
		for _, sp := range op.Simulated {
			if bp, ok := baseSim[sp.Workers]; ok && sp.Workers > 1 {
				check(fmt.Sprintf("%s/n%d/sim_speedup_w%d", op.Op, op.N, sp.Workers),
					bp.Speedup, sp.Speedup)
			}
		}
	}

	// Baseline coverage must not shrink: every baseline op either matched
	// or was explicitly waived.
	var lost []string
	for k := range baseOps {
		if !matched[k] && !waived[k] {
			lost = append(lost, fmt.Sprintf("%s/n%d/nb%d", k.op, k.n, k.nb))
		}
	}
	if len(lost) > 0 {
		sort.Strings(lost)
		return fmt.Errorf("benchdiff: baseline entries missing from %s: %s (waive intentionally dropped sizes with -benchmissing)",
			newPath, strings.Join(lost, ", "))
	}
	if len(entries) == 0 {
		return fmt.Errorf("benchdiff: no entries in %s matched the baseline %s — nothing was checked", newPath, basePath)
	}
	tbl := newTable("metric", "baseline", "new", "change %", "status")
	regressions := 0
	for _, e := range entries {
		status := "ok"
		if e.regress {
			status = "REGRESSION"
			regressions++
		}
		tbl.add(e.key, e.old, e.new, 100*(e.new/e.old-1), status)
	}
	tbl.print()
	if regressions > 0 {
		return fmt.Errorf("benchdiff: %d of %d metrics regressed beyond %.0f%% tolerance", regressions, len(entries), 100*tol)
	}
	fmt.Printf("\nbenchdiff: %d metrics within %.0f%% of baseline\n", len(entries), 100*tol)
	return nil
}

// opKey identifies one benchmarked configuration across reports.
type opKey struct {
	op    string
	n, nb int
}

// parseWaivers parses the -benchmissing list: comma-separated
// "op/n<N>/nb<NB>" entries naming baseline configurations the new report
// is allowed to omit.
func parseWaivers(missing string) (map[opKey]bool, error) {
	waived := map[opKey]bool{}
	for _, w := range strings.Split(missing, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		var k opKey
		parts := strings.Split(w, "/")
		if len(parts) != 3 ||
			!strings.HasPrefix(parts[1], "n") || !strings.HasPrefix(parts[2], "nb") {
			return nil, fmt.Errorf("benchdiff: bad -benchmissing entry %q, want op/n<N>/nb<NB>", w)
		}
		k.op = parts[0]
		if _, err := fmt.Sscanf(parts[1], "n%d", &k.n); err != nil {
			return nil, fmt.Errorf("benchdiff: bad -benchmissing entry %q: %v", w, err)
		}
		if _, err := fmt.Sscanf(parts[2], "nb%d", &k.nb); err != nil {
			return nil, fmt.Errorf("benchdiff: bad -benchmissing entry %q: %v", w, err)
		}
		waived[k] = true
	}
	return waived, nil
}

// peekBenchmark reads only the benchmark kind from a report file.
func peekBenchmark(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe struct {
		Benchmark string `json:"benchmark"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", err
	}
	return probe.Benchmark, nil
}

func loadServeReport(path string) (*serveBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r serveBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Benchmark != "solve-service" {
		return nil, fmt.Errorf("%s: benchmark is %q, want solve-service", path, r.Benchmark)
	}
	return &r, nil
}

// runServeBenchDiff gates the solve-service report. As with the scaling
// gate, only relative metrics are compared — the warm-cache speedup, the
// batched-flood speedup, and the mixed-load cache hit rate — because
// absolute throughput and latency shift with the host while same-run ratios
// cancel it out.
func runServeBenchDiff(basePath, newPath string, tol float64) error {
	base, err := loadServeReport(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadServeReport(newPath)
	if err != nil {
		return fmt.Errorf("new report: %w", err)
	}
	if err := cur.validate(); err != nil {
		return fmt.Errorf("benchdiff: new report %s: %w", newPath, err)
	}
	entries := []diffEntry{
		{"serve/warm_cache_speedup", base.Warm.Speedup, cur.Warm.Speedup,
			cur.Warm.Speedup < base.Warm.Speedup*(1-tol)},
		{"serve/batched_flood_speedup", base.Flood.Speedup, cur.Flood.Speedup,
			cur.Flood.Speedup < base.Flood.Speedup*(1-tol)},
		{"serve/mixed_cache_hit_rate", base.Mixed.CacheHitRate, cur.Mixed.CacheHitRate,
			cur.Mixed.CacheHitRate < base.Mixed.CacheHitRate*(1-tol)},
	}
	tbl := newTable("metric", "baseline", "new", "change %", "status")
	regressions := 0
	for _, e := range entries {
		status := "ok"
		if e.regress {
			status = "REGRESSION"
			regressions++
		}
		tbl.add(e.key, e.old, e.new, 100*(e.new/e.old-1), status)
	}
	tbl.print()
	if regressions > 0 {
		return fmt.Errorf("benchdiff: %d of %d serve metrics regressed beyond %.0f%% tolerance",
			regressions, len(entries), 100*tol)
	}
	fmt.Printf("\nbenchdiff: %d serve metrics within %.0f%% of baseline\n", len(entries), 100*tol)
	return nil
}

func loadScaleReport(path string) (*scaleBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r scaleBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Benchmark != "strong-scaling-f64" {
		return nil, fmt.Errorf("%s: benchmark is %q, want strong-scaling-f64", path, r.Benchmark)
	}
	return &r, nil
}
