package main

import (
	"fmt"
	"math/rand"

	"exadla/internal/core"
	"exadla/internal/dist"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

func init() {
	experiments = append(experiments,
		experiment{"e10", "E10 (extension): communication volume on a process grid", runE10})
}

// runE10 quantifies the keynote's central rule — data movement, not flops,
// is the cost — by replaying recorded DAGs on simulated 2D block-cyclic
// process grids and counting words moved: tile Cholesky across grid sizes
// (words/P should shrink like 1/√P at fixed n), and flat vs tree QR on a
// 1D grid (the communication-avoiding trade).
func runE10(quick bool) {
	n := pick(quick, 512, 1024)
	nb := 64

	fmt.Println("— tile Cholesky on √P×√P grids —")
	rng := rand.New(rand.NewSource(3))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	if err := core.Cholesky(rec, a); err != nil {
		fmt.Println(err)
		return
	}
	g := rec.Graph()
	tbl := newTable("P(grid)", "messages", "words", "words/P", "words/P·√P/n²", "remote_tasks%")
	for _, p := range []int{1, 2, 4, 8} {
		stats := dist.Count(g, p*p, dist.BlockCyclic(a, p, p))
		wpp := float64(stats.Words) / float64(p*p)
		normalized := wpp * float64(p) / float64(n*n)
		total := stats.LocalTasks + stats.RemoteTasks
		tbl.add(fmt.Sprintf("%d (%dx%d)", p*p, p, p), stats.Messages, stats.Words,
			wpp, normalized, 100*float64(stats.RemoteTasks)/float64(total))
	}
	tbl.print()
	fmt.Println("\nexpected shape: words/P shrinks as P grows; the normalized column")
	fmt.Println("(words·√P/(P·n²)) stays bounded — the O(n²/√P) per-process volume of a")
	fmt.Println("2D-distributed O(n³) factorization, the communication-optimal regime")

	fmt.Println("\n— flat vs tree QR panel on a 1D process column —")
	mt := pick(quick, 16, 32)
	m := mt * nb
	ncols := 2 * nb
	aD2 := matgen.Dense[float64](rng, m, ncols)
	tbl2 := newTable("tile_rows", "variant", "messages", "words", "comm_depth")
	for _, variant := range []string{"flat", "tree"} {
		a2 := tile.FromColMajor(m, ncols, aD2, m, nb)
		rec2 := sched.NewRecorder()
		var f *core.QRFactors[float64]
		if variant == "flat" {
			f = core.QR(rec2, a2)
		} else {
			f = core.QRTree(rec2, a2)
		}
		places := []dist.Placement{
			dist.BlockCyclic(a2, mt, 1),
			dist.BlockCyclic(f.T, mt, 1),
		}
		if f.T2 != nil {
			places = append(places, dist.BlockCyclic(f.T2, mt, 1))
		}
		place := dist.Merge(places...)
		stats := dist.Count(rec2.Graph(), mt, place)
		tbl2.add(mt, variant, stats.Messages, stats.Words,
			dist.CommDepth(rec2.Graph(), place))
	}
	tbl2.print()
	fmt.Println("\nexpected shape: total words are comparable (the volume is the panel data")
	fmt.Println("either way), but comm_depth — sequential message rounds on the critical")
	fmt.Println("path, the latency cost — drops from Θ(tile_rows) for the flat chain to")
	fmt.Println("Θ(log tile_rows) for the tree: the communication-avoiding win")
}
