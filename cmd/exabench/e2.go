package main

import (
	"fmt"
	"math/rand"
	"os"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

// runE2 reproduces the keynote's trace slide: per-worker Gantt charts of
// fork-join vs dataflow execution of one factorization, with idle-time
// percentages. Schedules are produced by the simulator from measured task
// costs so the worker count is independent of this host.
func runE2(quick bool) {
	// 16 tile columns keep the DAG wide enough that the P=16 comparison
	// reflects structure rather than recording noise.
	n := pick(quick, 512, 1536)
	nb := pick(quick, 64, 96)
	workerCounts := []int{4, 16}

	rng := rand.New(rand.NewSource(7))
	aD := matgen.DiagDomSPD[float64](rng, n)

	graphs := map[string]*sched.Graph{}
	for _, variant := range []string{"dataflow", "fork-join"} {
		a := tile.FromColMajor(n, n, aD, n, nb)
		rec := sched.NewRecorder()
		var err error
		if variant == "dataflow" {
			err = core.Cholesky(rec, a)
		} else {
			err = core.CholeskyForkJoin(rec, a)
		}
		if err != nil {
			fmt.Println(err)
			return
		}
		graphs[variant] = rec.Graph()
	}

	tbl := newTable("P", "variant", "makespan(s)", "busy(s)", "utilization", "idle%")
	for _, p := range workerCounts {
		for _, variant := range []string{"fork-join", "dataflow"} {
			res := sched.Simulate(graphs[variant], p)
			tbl.add(p, variant, res.Makespan, res.Busy, res.Utilization, 100*(1-res.Utilization))
		}
	}
	tbl.print()

	// Gantt charts at P=4.
	for _, variant := range []string{"fork-join", "dataflow"} {
		fmt.Printf("\nGantt (%s, P=4, n=%d, nb=%d) — '.' is idle:\n", variant, n, nb)
		_, events := sched.SimulateEvents(graphs[variant], 4)
		log := trace.NewLog()
		for _, e := range events {
			log.TaskRan(e.Name, e.Worker, int64(e.Start*1e9), int64(e.End*1e9))
		}
		if err := log.Gantt(os.Stdout, 100); err != nil {
			fmt.Println(err)
		}
	}
	fmt.Println("\nexpected shape: fork-join rows show idle gaps at every panel; dataflow rows stay dense")
}
