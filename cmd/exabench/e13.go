package main

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"exadla/internal/dist"
	"exadla/internal/matgen"
	"exadla/internal/tile"
)

func init() {
	experiments = append(experiments,
		experiment{"e13", "E13 (extension): straggler sweep — speculative execution off vs on", runE13})
}

// stragglerProfile describes one misbehaving worker in a 3-worker fleet;
// the other two are healthy.
type stragglerProfile struct {
	name string
	opts dist.WorkerOptions
}

// runE13 measures what one straggler costs a fleet and what speculation
// buys back. For each profile — a 2× slow worker, a 10× slow worker, and
// a worker that hangs mid-lease with heartbeats still flowing — the same
// factorization runs twice: speculation off (the lease deadline is the
// only rescue) and speculation on (a lease running long against its
// kernel's duration history is twinned onto an idle worker, first valid
// commit wins). Every run is verified bitwise against a fault-free
// reference, so the makespan comparison never trades determinism away.
func runE13(quick bool) {
	// Fat tiles on purpose: a kernel must outlast the coordinator's
	// speculation tick for a slow copy of it to be caught mid-flight.
	n := pick(quick, 1024, 1536)
	nb := pick(quick, 256, 384)
	const seed = 2024

	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)
	want, _, err := e13Run(aD, n, nb, nil, false)
	if err != nil {
		fmt.Printf("reference run: %v\n", err)
		return
	}

	profiles := []stragglerProfile{
		{"none", dist.WorkerOptions{}},
		{"slow 2x", dist.WorkerOptions{SlowFactor: 2}},
		{"slow 10x", dist.WorkerOptions{SlowFactor: 10}},
		{"hang 1.2s", dist.WorkerOptions{HangAfter: 2, HangFor: 1200 * time.Millisecond}},
	}

	tb := newTable("straggler", "spec off s", "spec on s", "speedup", "twins", "won", "wasted", "bitwise")
	for _, p := range profiles {
		row := [2]struct {
			wall  float64
			stats dist.StatsSnapshot
			ok    bool
		}{}
		for i, spec := range []bool{false, true} {
			got, res, err := e13Run(aD, n, nb, &p.opts, spec)
			if err != nil {
				fmt.Printf("%s spec=%v: %v\n", p.name, spec, err)
				return
			}
			row[i].wall = res.wall
			row[i].stats = res.stats
			row[i].ok = e13Bitwise(got, want)
		}
		okBoth := "yes"
		if !row[0].ok || !row[1].ok {
			okBoth = "NO"
		}
		tb.add(p.name, row[0].wall, row[1].wall, row[0].wall/row[1].wall,
			int(row[1].stats.SpecLaunched), int(row[1].stats.SpecWins),
			int(row[1].stats.SpecWasted), okBoth)
	}
	tb.print()
	fmt.Println("\nspeedup = makespan(spec off) / makespan(spec on); twins/won/wasted from the spec-on run.")
	fmt.Println("The hang profile is the pathological case: without speculation the job idles out the")
	fmt.Println("whole hang, with it an idle worker twins the stuck lease within a few duration samples.")
}

type e13Result struct {
	wall  float64
	stats dist.StatsSnapshot
}

// e13Run factors a copy of aD on a fresh coordinator. straggler == nil
// runs coordinator-local (the fault-free reference); otherwise three
// workers join, the first with the straggler profile. The reported wall
// time covers Run() only — a worker still sleeping through a hang after
// the job finishes is not part of the makespan.
func e13Run(aD []float64, n, nb int, straggler *dist.WorkerOptions, spec bool) ([]float64, e13Result, error) {
	buf := make([]float64, len(aD))
	copy(buf, aD)
	a := tile.FromColMajor(n, n, buf, n, nb)
	opt := dist.Options{
		Op: dist.OpCholesky, A: a,
		Lease:      3 * time.Second, // long: reaping must not mask the straggler
		DeadAfter:  60 * time.Millisecond,
		LocalDelay: 50 * time.Millisecond,
		Poll:       time.Millisecond,
		// Threshold on the median, not the tail: a persistent straggler
		// feeds its own slow commits into the distribution, and a q95
		// threshold would learn to excuse it.
		Speculate: spec, SpecMinSamples: 2, SpecQuantile: 0.5, SpecFactor: 3,
	}
	if straggler == nil {
		opt.LocalDelay = time.Millisecond
	}
	c, err := dist.NewCoordinator("127.0.0.1:0", opt)
	if err != nil {
		return nil, e13Result{}, err
	}
	var wg sync.WaitGroup
	if straggler != nil {
		for i := 0; i < 3; i++ {
			w := dist.WorkerOptions{}
			if i == 0 {
				w = *straggler
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := dist.RunWorker(c.Addr(), w); err != nil && !errors.Is(err, dist.ErrKilled) {
					fmt.Printf("worker exit: %v\n", err)
				}
			}()
		}
	}
	// The makespan is the time to the last commit, not to Run's return:
	// Run lingers in a goodbye grace period that a worker still sleeping
	// through a hang would otherwise bill to the job.
	runErr := make(chan error, 1)
	t0 := time.Now()
	go func() { runErr <- c.Run() }()
	var wall float64
	waiting := true
	for waiting && wall == 0 {
		select {
		case err = <-runErr:
			waiting = false
		default:
			if c.Status().Done {
				wall = time.Since(t0).Seconds()
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if wall == 0 {
		wall = time.Since(t0).Seconds()
	}
	if waiting {
		err = <-runErr
	}
	wg.Wait()
	if err != nil {
		return nil, e13Result{}, err
	}
	return c.Result().ToColMajor(), e13Result{wall: wall, stats: c.Stats()}, nil
}

func e13Bitwise(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return false
		}
	}
	return true
}
