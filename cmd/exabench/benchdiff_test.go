package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -benchdiff gate must fail when the new report covers fewer baseline
// configurations than the baseline (an op that crashed or was dropped must
// not pass silently), and -benchmissing must waive exactly the named
// entries.

func writeReport(t *testing.T, dir, name string, r scaleBenchReport) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func twoOpReport() scaleBenchReport {
	r := sampleScaleReport()
	lu := r.Ops[0]
	lu.Op = "lu"
	r.Ops = append(r.Ops, lu)
	return r
}

func TestBenchDiffFailsOnShrunkCoverage(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", twoOpReport())

	shrunk := twoOpReport()
	shrunk.Ops = shrunk.Ops[:1] // "lu" vanished from the new report
	cur := writeReport(t, dir, "new.json", shrunk)

	err := runBenchDiff(base, cur, 0.10, "")
	if err == nil {
		t.Fatal("shrunk coverage passed the gate")
	}
	if !strings.Contains(err.Error(), "lu/n512/nb64") {
		t.Fatalf("error does not name the missing entry: %v", err)
	}
}

func TestBenchDiffWaivesMissingEntries(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", twoOpReport())

	shrunk := twoOpReport()
	shrunk.Ops = shrunk.Ops[:1]
	cur := writeReport(t, dir, "new.json", shrunk)

	if err := runBenchDiff(base, cur, 0.10, "lu/n512/nb64"); err != nil {
		t.Fatalf("waived missing entry still failed: %v", err)
	}
	// A waiver for one entry must not cover another.
	if err := runBenchDiff(base, cur, 0.10, "qr/n512/nb64"); err == nil {
		t.Fatal("unrelated waiver let shrunk coverage pass")
	}
}

func TestBenchDiffRejectsMalformedWaiver(t *testing.T) {
	dir := t.TempDir()
	r := sampleScaleReport()
	base := writeReport(t, dir, "base.json", r)
	cur := writeReport(t, dir, "new.json", r)

	if err := runBenchDiff(base, cur, 0.10, "cholesky-512"); err == nil {
		t.Fatal("malformed -benchmissing entry was accepted")
	}
	if err := runBenchDiff(base, cur, 0.10, " cholesky/n512/nb64 , "); err != nil {
		t.Fatalf("well-formed waiver with spaces rejected: %v", err)
	}
}
