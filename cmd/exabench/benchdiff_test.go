package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The -benchdiff gate must fail when the new report covers fewer baseline
// configurations than the baseline (an op that crashed or was dropped must
// not pass silently), and -benchmissing must waive exactly the named
// entries.

func writeReport(t *testing.T, dir, name string, r scaleBenchReport) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func twoOpReport() scaleBenchReport {
	r := sampleScaleReport()
	lu := r.Ops[0]
	lu.Op = "lu"
	r.Ops = append(r.Ops, lu)
	return r
}

func TestBenchDiffFailsOnShrunkCoverage(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", twoOpReport())

	shrunk := twoOpReport()
	shrunk.Ops = shrunk.Ops[:1] // "lu" vanished from the new report
	cur := writeReport(t, dir, "new.json", shrunk)

	err := runBenchDiff(base, cur, 0.10, "")
	if err == nil {
		t.Fatal("shrunk coverage passed the gate")
	}
	if !strings.Contains(err.Error(), "lu/n512/nb64") {
		t.Fatalf("error does not name the missing entry: %v", err)
	}
}

func TestBenchDiffWaivesMissingEntries(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", twoOpReport())

	shrunk := twoOpReport()
	shrunk.Ops = shrunk.Ops[:1]
	cur := writeReport(t, dir, "new.json", shrunk)

	if err := runBenchDiff(base, cur, 0.10, "lu/n512/nb64"); err != nil {
		t.Fatalf("waived missing entry still failed: %v", err)
	}
	// A waiver for one entry must not cover another.
	if err := runBenchDiff(base, cur, 0.10, "qr/n512/nb64"); err == nil {
		t.Fatal("unrelated waiver let shrunk coverage pass")
	}
}

func TestBenchDiffRejectsMalformedWaiver(t *testing.T) {
	dir := t.TempDir()
	r := sampleScaleReport()
	base := writeReport(t, dir, "base.json", r)
	cur := writeReport(t, dir, "new.json", r)

	if err := runBenchDiff(base, cur, 0.10, "cholesky-512"); err == nil {
		t.Fatal("malformed -benchmissing entry was accepted")
	}
	if err := runBenchDiff(base, cur, 0.10, " cholesky/n512/nb64 , "); err != nil {
		t.Fatalf("well-formed waiver with spaces rejected: %v", err)
	}
}

// The single -benchdiff flag also gates the solve-service report; dispatch
// happens on the baseline file's benchmark kind, so the gate must pick the
// serve comparison for a "solve-service" baseline and fail on ratio
// regressions there with the same tolerance rule.

func sampleServeReport() serveBenchReport {
	return serveBenchReport{
		Benchmark: "solve-service",
		HostCPUs:  8,
		Mixed: serveMixedResult{
			DurationS: 3, Offered: 1000, Done: 900, Failed: 0, Shed: 100,
			ThroughputJobsS: 300, P50Ms: 2, P99Ms: 20, P999Ms: 40,
			ShedRate: 0.1, CacheHits: 50, CacheMisses: 10, CacheHitRate: 0.83,
			BatchFlushes: 4, BatchJobs: 800,
		},
		Warm:  serveWarmResult{N: 768, NB: 64, ColdMs: 120, WarmMs: 10, Speedup: 12},
		Flood: serveFloodResult{Count: 10000, N: 8, BatchedSeconds: 1, PerJobSeconds: 3, Speedup: 3, Flushes: 40, MeanBatchSize: 250},
	}
}

func writeServeReport(t *testing.T, dir, name string, r serveBenchReport) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchDiffDispatchesOnServeBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", sampleServeReport())

	same := writeServeReport(t, dir, "new.json", sampleServeReport())
	if err := runBenchDiff(base, same, 0.10, ""); err != nil {
		t.Fatalf("identical serve reports failed the gate: %v", err)
	}

	// The warm-cache speedup collapsing must trip the serve gate even when
	// it stays above validate()'s absolute floor.
	worse := sampleServeReport()
	worse.Warm.Speedup = 10.2
	cur := writeServeReport(t, dir, "worse.json", worse)
	err := runBenchDiff(base, cur, 0.10, "")
	if err == nil {
		t.Fatal("15% warm-speedup regression passed a 10% gate")
	}
	if !strings.Contains(err.Error(), "serve metrics regressed") {
		t.Fatalf("regression error came from the wrong gate: %v", err)
	}
}

func TestBenchDiffRejectsMixedReportKinds(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", sampleServeReport())
	cur := writeReport(t, dir, "new.json", twoOpReport())
	err := runBenchDiff(base, cur, 0.10, "")
	if err == nil || !strings.Contains(err.Error(), "want solve-service") {
		t.Fatalf("scale report accepted against a serve baseline: %v", err)
	}
}

func TestBenchDiffServeRejectsInvalidNewReport(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", sampleServeReport())
	broken := sampleServeReport()
	broken.Mixed.Shed = 0 // admission control untested → validate() must fail the gate
	broken.Mixed.Done = broken.Mixed.Offered
	cur := writeServeReport(t, dir, "new.json", broken)
	err := runBenchDiff(base, cur, 0.10, "")
	if err == nil || !strings.Contains(err.Error(), "shed nothing") {
		t.Fatalf("invalid serve report passed the gate: %v", err)
	}
}
