package main

import (
	"fmt"
	"math/rand"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// runE1 reproduces the keynote's headline plot: tile Cholesky scheduled as
// a dataflow DAG versus block-synchronous fork-join, scaled over worker
// counts. Task costs are measured on this host by a sequential recording
// pass; the scaling is replayed by the simulator (see DESIGN.md, hardware
// substitutions).
func runE1(quick bool) {
	sizes := pick(quick, []int{256, 512}, []int{256, 512, 1024, 1536})
	nb := pick(quick, 64, 96)
	workers := []int{1, 2, 4, 8, 16, 32, 64}

	fmt.Printf("tile size nb=%d; times in seconds (simulated from measured task costs)\n\n", nb)
	tbl := newTable("n", "variant", "tasks", "work(s)", "critpath(s)",
		"P=1", "P=2", "P=4", "P=8", "P=16", "P=32", "P=64", "speedup@64")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		aD := matgen.DiagDomSPD[float64](rng, n)
		for _, variant := range []string{"dataflow", "fork-join"} {
			a := tile.FromColMajor(n, n, aD, n, nb)
			rec := sched.NewRecorder()
			var err error
			if variant == "dataflow" {
				err = core.Cholesky(rec, a)
			} else {
				err = core.CholeskyForkJoin(rec, a)
			}
			if err != nil {
				fmt.Printf("n=%d %s: %v\n", n, variant, err)
				continue
			}
			g := rec.Graph()
			cells := []any{n, variant, g.Tasks(), g.TotalWork(), g.CriticalPath()}
			var p1, p64 float64
			for _, w := range workers {
				res := sched.Simulate(g, w)
				if w == 1 {
					p1 = res.Makespan
				}
				if w == 64 {
					p64 = res.Makespan
				}
				cells = append(cells, res.Makespan)
			}
			cells = append(cells, p1/p64)
			tbl.add(cells...)
		}
	}
	tbl.print()
	fmt.Println("\nexpected shape: dataflow ≥ fork-join everywhere; gap grows with P")
}
