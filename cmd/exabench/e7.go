package main

import (
	"fmt"
	"math/rand"
	"time"

	"exadla/internal/batch"
	"exadla/internal/matgen"
	"exadla/internal/sched"
)

// runE7 reproduces the batched-BLAS argument: thousands of tiny Cholesky
// factorizations submitted one task per problem versus chunked batches,
// plus the simulated multi-worker scaling of the batched DAG.
func runE7(quick bool) {
	count := pick(quick, 500, 2000)
	sizes := []int{4, 8, 16, 32, 64}

	tbl := newTable("n", "count", "t_loop(s)", "t_chunk1(s)", "t_batched(s)",
		"loop/batched", "chunk1/batched", "sim_speedup@16")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		mats := make([][]float64, count)
		for i := range mats {
			mats[i] = matgen.DiagDomSPD[float64](rng, n)
		}
		clone := func() [][]float64 {
			out := make([][]float64, len(mats))
			for i, m := range mats {
				out[i] = append([]float64(nil), m...)
			}
			return out
		}

		// Plain loop.
		ms := clone()
		t0 := time.Now()
		batch.PotrfSeq(n, ms)
		tLoop := time.Since(t0).Seconds()

		// One task per problem (the anti-pattern: task overhead per tiny
		// problem).
		rt := sched.New(1)
		ms = clone()
		t0 = time.Now()
		batch.Potrf(rt, n, ms, batch.Options{ChunkSize: 1})
		tChunk1 := time.Since(t0).Seconds()
		rt.Shutdown()

		// Batched with default chunking.
		rt = sched.New(1)
		ms = clone()
		t0 = time.Now()
		batch.Potrf(rt, n, ms, batch.Options{})
		tBatched := time.Since(t0).Seconds()
		rt.Shutdown()

		// Simulated scaling of the batched DAG.
		rec := sched.NewRecorder()
		batch.Potrf(rec, n, clone(), batch.Options{})
		g := rec.Graph()
		sim := sched.Simulate(g, 16)
		speedup := g.TotalWork() / sim.Makespan

		tbl.add(n, count, tLoop, tChunk1, tBatched,
			tLoop/tBatched, tChunk1/tBatched, speedup)
	}
	tbl.print()
	fmt.Println("\nexpected shape: per-task dispatch dominates at tiny n (chunk1/batched ≫ 1,")
	fmt.Println("shrinking as n grows); batched ≈ loop on one worker but its DAG scales to P")
	fmt.Println("workers (sim_speedup → min(16, chunks)) where the loop cannot")
}
