package main

import (
	"fmt"
	"math/rand"

	"exadla/internal/autotune"
	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// runE5 reproduces the self-adapting-software argument: factorization time
// as a function of tile size (the classic U-shaped curve), and the
// autotuner's pick versus the sweep minimum.
func runE5(quick bool) {
	n := pick(quick, 512, 1024)
	candidates := pick(quick,
		[]int{32, 64, 128, 256},
		[]int{16, 32, 48, 64, 96, 128, 192, 256, 384})
	reps := pick(quick, 1, 3)

	rng := rand.New(rand.NewSource(11))
	aD := matgen.DiagDomSPD[float64](rng, n)

	measure := func(nb int) float64 {
		if nb > n {
			return -1
		}
		a := tile.FromColMajor(n, n, aD, n, nb)
		rt := sched.New(1)
		defer rt.Shutdown()
		return autotune.Time(func() {
			if err := core.Cholesky(rt, a); err != nil {
				panic(err)
			}
		})
	}
	res := autotune.Search(candidates, reps, measure)

	tbl := newTable("nb", "t_cholesky(s)", "vs_best", "note")
	var best float64
	for _, m := range res.Table {
		if m.Param == res.Best {
			best = m.Seconds
		}
	}
	for _, m := range res.Table {
		note := ""
		if m.Pruned {
			note = "pruned"
		}
		if m.Param == res.Best {
			note = "← autotuner pick"
		}
		tbl.add(m.Param, m.Seconds, m.Seconds/best, note)
	}
	tbl.print()

	// Persist like the CLI tool would.
	table := autotune.NewTable()
	table.Set(autotune.Key("cholesky", n, 1), res.Best)
	fmt.Printf("\nautotuner pick for %s: nb=%d (%.3fs)\n",
		autotune.Key("cholesky", n, 1), res.Best, best)
	fmt.Println("\nexpected shape: U-shaped curve (panel-latency bound at small nb, parallelism/cache")
	fmt.Println("bound at large nb); autotuner pick equals the sweep minimum by construction")
}
