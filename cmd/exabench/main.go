// Command exabench regenerates the reproduction's experiment suite E1–E8
// (see DESIGN.md for the mapping to the keynote's claims), printing one
// table or series per experiment.
//
// Usage:
//
//	exabench -exp e1          # one experiment
//	exabench -exp all         # the full suite
//	exabench -exp e1 -quick   # smaller sizes for a fast sanity pass
//	exabench -json            # benchmarks → BENCH_gemm.json, BENCH_chol.json, BENCH_scale.json
//	exabench -serve           # solve-service load benchmark → BENCH_serve.json
//	exabench -benchdiff BASE  # diff a report against a baseline, fail on regression
//	                          # (dispatches on the baseline's benchmark kind)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"exadla/internal/metrics"
	"exadla/internal/obs"
)

type experiment struct {
	name  string
	title string
	run   func(quick bool)
}

var experiments = []experiment{
	{"e1", "E1: tile/DAG Cholesky vs fork-join — scaling with workers", runE1},
	{"e2", "E2: idle time and utilization — dataflow vs fork-join traces", runE2},
	{"e3", "E3: mixed-precision iterative refinement vs full FP64", runE3},
	{"e4", "E4: communication-avoiding TSQR vs Householder QR", runE4},
	{"e5", "E5: tile-size sweep and autotuner", runE5},
	{"e6", "E6: ABFT overhead and fault recovery", runE6},
	{"e7", "E7: batched small factorizations vs one-at-a-time loop", runE7},
	{"e8", "E8: randomized least squares vs direct QR", runE8},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e13 or all")
	quick := flag.Bool("quick", false, "use reduced sizes for a fast pass")
	showMetrics := flag.Bool("metrics", false, "collect runtime metrics and dump a JSON snapshot per experiment")
	faults := flag.Bool("faults", false, "run the fault-injection mode instead of the experiment suite")
	jsonBench := flag.Bool("json", false, "run the kernel benchmark suite and write BENCH_gemm.json / BENCH_chol.json / BENCH_scale.json")
	serveBench := flag.Bool("serve", false, "run the solve-service load benchmark and write BENCH_serve.json")
	serveAddr := flag.String("serve-addr", "", "pin the -serve load-phase server to this host:port so its /metrics can be watched live (default: ephemeral)")
	benchDiff := flag.String("benchdiff", "", "compare the scaling report named by -benchnew against this baseline JSON and exit non-zero on regressions")
	benchNew := flag.String("benchnew", "BENCH_scale.json", "scaling report compared against the -benchdiff baseline")
	benchTol := flag.Float64("benchtol", 0.10, "relative tolerance for -benchdiff speedup regressions")
	benchMissing := flag.String("benchmissing", "", "comma-separated op/n<N>/nb<NB> baseline entries the new report may omit (e.g. full-mode sizes in a -quick run)")
	obsAddr := flag.String("obs", "", "serve live observability (metrics, healthz, pprof) on this host:port while the suite runs")
	flag.Parse()

	if *benchDiff != "" {
		if err := runBenchDiff(*benchDiff, *benchNew, *benchTol, *benchMissing); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *showMetrics {
		metrics.Enable()
	}
	if *obsAddr != "" {
		srv, err := obs.Start(*obsAddr, obs.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability server listening on http://%s\n", srv.Addr())
	}
	if *jsonBench {
		fmt.Printf("\n=== kernel benchmarks (JSON artifacts) ===\n\n")
		if err := runBenchJSON(*quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *serveBench {
		fmt.Printf("\n=== solve service: open-loop load, factor cache, batched fast path ===\n\n")
		if err := runServeBench(*quick, *serveAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *faults {
		fmt.Printf("\n=== fault injection: chaos retries and ABFT recovery ===\n\n")
		runFaults(*quick)
		return
	}
	want := strings.ToLower(*exp)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		fmt.Printf("\n=== %s ===\n\n", e.title)
		e.run(*quick)
		if *showMetrics {
			dumpMetrics(e.name)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: e1..e13, all\n", *exp)
		os.Exit(2)
	}
}

// dumpMetrics prints the accumulated metrics snapshot for one experiment as
// a single JSON document, then zeroes the registry so the next experiment
// starts from a clean slate.
func dumpMetrics(name string) {
	fmt.Printf("\n--- metrics[%s] ---\n", name)
	snap := metrics.Default().Snapshot()
	if err := snap.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
	}
	fmt.Println()
	metrics.Reset()
}

// table is a minimal fixed-width table printer.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table { return &table{headers: headers} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func (t *table) print() {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		fmt.Println(strings.TrimRight(sb.String(), " "))
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}

// pick returns a by quick-mode.
func pick[T any](quick bool, q, full T) T {
	if quick {
		return q
	}
	return full
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
