package main

import (
	"fmt"
	"math/rand"
	"time"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/rnd"
)

// runE8 reproduces the randomized-algorithms argument: Blendenpik-style
// least squares (SRHT sketch → QR preconditioner → LSQR) versus direct
// Householder QR on tall problems — time, iterations, and residual parity,
// including ill-conditioned systems where unpreconditioned iteration dies.
func runE8(quick bool) {
	type cfg struct {
		m, n int
		cond float64
	}
	cfgs := pick(quick,
		[]cfg{{20000, 50, 1e2}, {20000, 100, 1e6}},
		[]cfg{{20000, 50, 1e2}, {50000, 100, 1e2}, {50000, 100, 1e6}, {100000, 200, 1e6}})

	tbl := newTable("m", "n", "cond", "t_qr(s)", "t_blendenpik(s)", "speedup",
		"lsqr_iters", "resid_qr", "resid_rand")
	for _, c := range cfgs {
		rng := rand.New(rand.NewSource(int64(c.m + c.n)))
		a := matgen.WithCond[float64](rng, c.m, c.n, c.cond)
		b := matgen.Dense[float64](rng, c.m, 1)

		// Direct QR.
		aq := append([]float64(nil), a...)
		bq := append([]float64(nil), b...)
		t0 := time.Now()
		if err := lapack.Gels(c.m, c.n, aq, c.m, bq); err != nil {
			fmt.Println(err)
			continue
		}
		tQR := time.Since(t0).Seconds()

		// Blendenpik (SRHT + preconditioned LSQR). Sketch factor 4 keeps
		// κ(A·R⁻¹) small enough that the iteration count stays flat.
		t0 = time.Now()
		x, stats, err := rnd.SolveLSFast(rng, c.m, c.n, a, c.m, b, 4.0, 1e-12, 300)
		tRand := time.Since(t0).Seconds()
		if err != nil {
			fmt.Println(err)
			continue
		}

		tbl.add(c.m, c.n, fmt.Sprintf("%.0e", c.cond), tQR, tRand, tQR/tRand,
			stats.LSQRIterations,
			lsResid(c.m, c.n, a, b, bq[:c.n]),
			lsResid(c.m, c.n, a, b, x))
	}
	tbl.print()
	fmt.Println("\nexpected shape: residual parity at every size; LSQR iteration count flat in")
	fmt.Println("cond (the preconditioner absorbs it); speedup grows with m/n as the O(mn·log m)")
	fmt.Println("sketch displaces the O(mn²) QR")
}

func lsResid(m, n int, a, b, x []float64) float64 {
	r := append([]float64(nil), b...)
	blas.Gemv(blas.NoTrans, m, n, -1, a, m, x, 1, 1, r, 1)
	return blas.Nrm2(m, r, 1)
}
