package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"exadla/internal/ca"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
)

// runE4 reproduces the CAQR/TSQR comparison: QR of tall-skinny matrices by
// flat Householder (one long dependence chain) versus the TSQR reduction
// tree, over aspect ratios and block counts. The parallel benefit is shown
// by simulating the recorded TSQR DAG: its critical path is one leaf plus
// log₂(blocks) combines, versus the inherently serial flat panel.
func runE4(quick bool) {
	type cfg struct{ m, n int }
	cfgs := pick(quick,
		[]cfg{{20000, 16}, {50000, 32}},
		[]cfg{{20000, 16}, {50000, 32}, {100000, 32}, {100000, 64}})
	blockCounts := []int{4, 16, 64}

	tbl := newTable("m", "n", "blocks", "t_house(s)", "t_tsqr_seq(s)",
		"tsqr_critpath(s)", "sim_speedup@16", "max|ΔR|/|R|")
	for _, c := range cfgs {
		rng := rand.New(rand.NewSource(int64(c.m + c.n)))
		a := matgen.Dense[float64](rng, c.m, c.n)

		// Flat Householder QR.
		flat := append([]float64(nil), a...)
		tau := make([]float64, c.n)
		t0 := time.Now()
		lapack.Geqrf(c.m, c.n, flat, c.m, tau)
		tHouse := time.Since(t0).Seconds()

		for _, nb := range blockCounts {
			rec := sched.NewRecorder()
			t0 = time.Now()
			f := ca.Factor(rec, c.m, c.n, a, c.m, nb)
			tTSQR := time.Since(t0).Seconds()
			g := rec.Graph()
			sim := sched.Simulate(g, 16)
			seq := g.TotalWork()
			speedup := seq / sim.Makespan

			// R agreement (up to sign).
			r := f.R()
			var maxDiff, maxR float64
			for j := 0; j < c.n; j++ {
				for i := 0; i <= j; i++ {
					d := math.Abs(math.Abs(r[i+j*c.n]) - math.Abs(flat[i+j*c.m]))
					if d > maxDiff {
						maxDiff = d
					}
					if v := math.Abs(flat[i+j*c.m]); v > maxR {
						maxR = v
					}
				}
			}
			tbl.add(c.m, c.n, nb, tHouse, tTSQR, g.CriticalPath(), speedup, maxDiff/maxR)
		}
	}
	tbl.print()
	fmt.Println("\nexpected shape: identical R (≤1e-12); TSQR total work ≈ Householder work, but")
	fmt.Println("its critical path shrinks ~1/blocks (plus log-depth combines) where the flat")
	fmt.Println("panel cannot be decomposed at all — sim_speedup grows with blocks")
}
