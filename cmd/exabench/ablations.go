package main

import (
	"fmt"
	"math"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

func init() {
	experiments = append(experiments,
		experiment{"a1", "A1 (ablation): incremental vs partial pivoting — element growth", runA1},
		experiment{"a2", "A2 (ablation): scheduler priorities on/off", runA2},
		experiment{"a3", "A3 (ablation): flat vs tree tile QR — panel critical path", runA3},
	)
}

// runA1 measures the stability price of the tile LU's incremental pivoting
// versus classic partial pivoting: the growth of |U| relative to |A| and
// the solve's backward error. This is the trade DESIGN.md calls out — the
// tile algorithm buys its barrier-free DAG with a weaker pivoting rule.
func runA1(quick bool) {
	sizes := pick(quick, []int{128, 256}, []int{128, 256, 512, 1024})
	nb := 64

	tbl := newTable("n", "growth_partial", "growth_incremental", "ratio",
		"bwd_err_partial", "bwd_err_incremental")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		aD := matgen.Dense[float64](rng, n, n)
		anorm := lapack.Lange(lapack.MaxAbs, n, n, aD, n)

		// Partial pivoting (LAPACK-style blocked GETRF).
		ap := append([]float64(nil), aD...)
		ipiv := make([]int, n)
		if err := lapack.Getrf(n, n, ap, n, ipiv); err != nil {
			fmt.Println(err)
			continue
		}
		growthP := maxUpper(n, ap, n) / anorm
		bwdP := luBackwardError(n, aD, func(b []float64) {
			lapack.Getrs(blas.NoTrans, n, 1, ap, n, ipiv, b, n)
		}, rng)

		// Incremental pivoting (tile LU).
		at := tile.FromColMajor(n, n, aD, n, nb)
		rec := sched.NewRecorder()
		f, err := core.LU(rec, at)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fac := at.ToColMajor()
		growthI := maxUpper(n, fac, n) / anorm
		bwdI := luBackwardError(n, aD, func(b []float64) {
			bt := tile.FromColMajor(n, 1, b, n, nb)
			r2 := sched.NewRecorder()
			core.ApplyLU(r2, f, bt)
			core.TrsmUpper(r2, f.A, bt)
			copy(b, bt.ToColMajor())
		}, rng)

		tbl.add(n, growthP, growthI, growthI/growthP, bwdP, bwdI)
	}
	tbl.print()
	fmt.Println("\nexpected shape: on random matrices the two pivoting rules show comparable")
	fmt.Println("growth, with incremental pivoting's backward error a small constant factor")
	fmt.Println("worse (its worst case is exponentially weaker, which random inputs do not")
	fmt.Println("trigger) — the PLASMA trade: slightly weaker stability, full dataflow")
}

func maxUpper(n int, a []float64, lda int) float64 {
	var mx float64
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			if v := math.Abs(a[i+j*lda]); v > mx {
				mx = v
			}
		}
	}
	return mx
}

func luBackwardError(n int, a []float64, solve func(b []float64), rng *rand.Rand) float64 {
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a[i+j*n] * xTrue[j]
		}
		b[i] = s
	}
	x := append([]float64(nil), b...)
	solve(x)
	// ‖b − A·x‖∞ / (‖A‖∞‖x‖∞).
	var rmax, xmax float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a[i+j*n] * x[j]
		}
		if v := math.Abs(b[i] - s); v > rmax {
			rmax = v
		}
		if v := math.Abs(x[i]); v > xmax {
			xmax = v
		}
	}
	return rmax / (lapack.Lange(lapack.InfNorm, n, n, a, n) * xmax)
}

// runA2 disables the priority policy (panel > solve > update, earlier steps
// first) and measures the simulated makespan penalty — the ablation for the
// scheduler's critical-path hinting.
func runA2(quick bool) {
	n := pick(quick, 512, 1536)
	nb := pick(quick, 64, 96)
	rng := rand.New(rand.NewSource(13))
	aD := matgen.DiagDomSPD[float64](rng, n)

	a := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	if err := core.Cholesky(rec, a); err != nil {
		fmt.Println(err)
		return
	}
	g := rec.Graph()
	// Ablated variants: FIFO (priorities zeroed; ties break on submission
	// order) and inverted (trailing updates outrank the critical path).
	clone := func(mod func(i int, n *sched.GraphNode)) *sched.Graph {
		c := &sched.Graph{Nodes: append([]sched.GraphNode(nil), g.Nodes...)}
		for i := range c.Nodes {
			mod(i, &c.Nodes[i])
		}
		return c
	}
	fifo := clone(func(_ int, n *sched.GraphNode) { n.Priority = 0 })
	inverted := clone(func(_ int, n *sched.GraphNode) { n.Priority = -n.Priority })

	tbl := newTable("P", "makespan_prio(s)", "makespan_fifo(s)", "fifo_penalty%",
		"makespan_inverted(s)", "inverted_penalty%")
	for _, p := range []int{2, 4, 8, 16, 32} {
		withPrio := sched.Simulate(g, p)
		noFifo := sched.Simulate(fifo, p)
		inv := sched.Simulate(inverted, p)
		tbl.add(p, withPrio.Makespan,
			noFifo.Makespan, 100*(noFifo.Makespan-withPrio.Makespan)/withPrio.Makespan,
			inv.Makespan, 100*(inv.Makespan-withPrio.Makespan)/withPrio.Makespan)
	}
	tbl.print()
	fmt.Println("\nfinding: for the tile Cholesky DAG even adversarial ordering costs only a")
	fmt.Println("few percent — submission order already approximates the critical path and")
	fmt.Println("greedy list scheduling absorbs the rest. The dataflow structure, not the")
	fmt.Println("priority hints, carries the speedup (contrast with the barrier ablation in E1)")
}

// runA3 compares the flat and tree tile-QR elimination orders on tall tile
// grids: same R, different panel critical path.
func runA3(quick bool) {
	nb := 64
	n := 2 * nb // two tile columns
	rowsList := pick(quick, []int{4, 16}, []int{4, 8, 16, 32})

	tbl := newTable("tile_rows", "variant", "tasks", "work(s)", "critpath(s)", "sim_speedup@32")
	for _, mt := range rowsList {
		m := mt * nb
		rng := rand.New(rand.NewSource(int64(mt)))
		aD := matgen.Dense[float64](rng, m, n)
		for _, variant := range []string{"flat", "tree"} {
			a := tile.FromColMajor(m, n, aD, m, nb)
			rec := sched.NewRecorder()
			if variant == "flat" {
				core.QR(rec, a)
			} else {
				core.QRTree(rec, a)
			}
			g := rec.Graph()
			sim := sched.Simulate(g, 32)
			tbl.add(mt, variant, g.Tasks(), g.TotalWork(), g.CriticalPath(),
				g.TotalWork()/sim.Makespan)
		}
	}
	tbl.print()
	fmt.Println("\nexpected shape: equal R (tested in internal/core); tree critical path grows")
	fmt.Println("like log(tile_rows) instead of linearly, so its simulated speedup keeps")
	fmt.Println("climbing on tall grids where the flat chain saturates")
}
