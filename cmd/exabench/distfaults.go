package main

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"exadla/internal/core"
	"exadla/internal/dist"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

func init() {
	experiments = append(experiments,
		experiment{"e11", "E11 (extension): distributed chaos sweep", distFaultSweep})
}

// distFaultSweep is the distributed-runtime act of -faults: one coordinator
// and a small worker fleet (in-process goroutines here; cmd/exadist runs
// the same runtime as real processes) driven through the full fault menu —
// worker kills, a hang past the lease, seeded wire chaos, write-back
// residency with a death, and total fleet loss. Every scenario must end
// with a factor bitwise identical to the clean single-process run; the
// table records what the runtime had to do to get there.
func distFaultSweep(quick bool) {
	n := pick(quick, 256, 512)
	nb := 32

	rng := rand.New(rand.NewSource(2016))
	aD := matgen.DiagDomSPD[float64](rng, n)

	// Clean single-process reference.
	ref := tile.FromColMajor(n, n, aD, n, nb)
	r := sched.New(4)
	if err := core.Cholesky(r, ref); err != nil {
		fmt.Printf("reference factorization failed: %v\n", err)
		r.Shutdown()
		return
	}
	r.Shutdown()
	want := ref.ToColMajor()

	type scenario struct {
		name      string
		workers   []dist.WorkerOptions
		writeBack bool
	}
	chaos := func(seed int64) dist.NetChaos {
		return dist.NetChaos{DropSend: 0.03, DropReply: 0.03, Dup: 0.03,
			Delay: 0.05, MaxDelay: 2 * time.Millisecond, Seed: seed}
	}
	scenarios := []scenario{
		{name: "clean", workers: make([]dist.WorkerOptions, 3)},
		{name: "kill 1 of 3", workers: []dist.WorkerOptions{{KillAfter: 3}, {}, {}}},
		{name: "kill 2 of 3", workers: []dist.WorkerOptions{{KillAfter: 3}, {KillAfter: 5}, {}}},
		{name: "hang 1 of 3", workers: []dist.WorkerOptions{{HangAfter: 3, HangFor: 600 * time.Millisecond}, {}, {}}},
		{name: "wire chaos ×3", workers: []dist.WorkerOptions{{Chaos: chaos(1)}, {Chaos: chaos(2)}, {Chaos: chaos(3)}}},
		{name: "writeback + kill", workers: []dist.WorkerOptions{{KillAfter: 4}, {}, {}}, writeBack: true},
		{name: "kill all → local", workers: []dist.WorkerOptions{{KillAfter: 1}, {KillAfter: 2}}},
	}

	tb := newTable("scenario", "lost", "reexec", "local", "expired", "rejected", "rebuilt", "rpc retries", "factor")
	for _, sc := range scenarios {
		a := tile.FromColMajor(n, n, aD, n, nb)
		opt := dist.Options{
			Op: dist.OpCholesky, A: a,
			WriteBack:  sc.writeBack,
			Lease:      500 * time.Millisecond,
			DeadAfter:  200 * time.Millisecond,
			LocalDelay: 50 * time.Millisecond,
			Poll:       time.Millisecond,
		}
		c, err := dist.NewCoordinator("127.0.0.1:0", opt)
		if err != nil {
			tb.add(sc.name, "-", "-", "-", "-", "-", "-", "-", "coordinator: "+err.Error())
			continue
		}
		var wg sync.WaitGroup
		for i := range sc.workers {
			wg.Add(1)
			go func(w dist.WorkerOptions) {
				defer wg.Done()
				if err := dist.RunWorker(c.Addr(), w); err != nil && !errors.Is(err, dist.ErrKilled) {
					fmt.Printf("%s: worker exit: %v\n", sc.name, err)
				}
			}(sc.workers[i])
		}
		runErr := c.Run()
		wg.Wait()
		status := "bitwise identical"
		if runErr != nil {
			status = "FAILED: " + runErr.Error()
		} else {
			got := c.Result().ToColMajor()
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					status = fmt.Sprintf("DIVERGED at element %d", i)
					break
				}
			}
		}
		s := c.Stats()
		tb.add(sc.name, s.WorkersLost, s.TasksReexecuted, s.TasksLocal,
			s.LeasesExpired, s.CommitsRejected, s.TilesRebuilt, s.RPCRetries, status)
	}
	tb.print()
}
