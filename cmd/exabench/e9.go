package main

import (
	"fmt"
	"math/rand"

	"exadla/internal/blas"
	"exadla/internal/matgen"
	"exadla/internal/mixed"
)

func init() {
	experiments = append(experiments,
		experiment{"e9", "E9 (extension): the precision ladder — fp16 vs fp32 refinement", runE9})
}

// runE9 extends E3 down the precision ladder to emulated fp16 storage (the
// tensor-core model the post-keynote mixed-precision work targets):
// convergence range, sweep counts, and delivered accuracy of fp16-factor
// refinement versus fp32-factor refinement, across conditioning.
func runE9(quick bool) {
	n := pick(quick, 200, 500)
	conds := []float64{1e1, 1e2, 1e3, 1e4, 1e6}

	tbl := newTable("cond", "scheme", "iters", "outcome", "fwd_err")
	for _, cond := range conds {
		rng := rand.New(rand.NewSource(int64(cond)))
		a := matgen.WithCond[float64](rng, n, n, cond)
		xTrue := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Gemv(blas.NoTrans, n, n, 1, a, n, xTrue, 1, 0, b, 1)

		for _, scheme := range []string{"fp32+IR", "fp16+IR"} {
			x := make([]float64, n)
			var res mixed.Result
			var err error
			if scheme == "fp32+IR" {
				res, err = mixed.SolveLU(n, a, n, b, x)
			} else {
				res, err = mixed.SolveLUHalf(n, a, n, b, x)
			}
			if err != nil {
				fmt.Printf("cond=%.0e %s: %v\n", cond, scheme, err)
				continue
			}
			outcome := "converged"
			if res.FellBack {
				outcome = "fp64 fallback"
			} else if !res.Converged {
				outcome = "stalled"
			}
			tbl.add(fmt.Sprintf("%.0e", cond), scheme, res.Iterations, outcome, fwdErr(x, xTrue))
		}
	}
	tbl.print()
	fmt.Println("\nexpected shape: both schemes deliver fp64 accuracy where they converge;")
	fmt.Println("fp16 needs more sweeps at equal cond and loses convergence near 1/eps16≈1e3")
	fmt.Println("(falling back) while fp32 keeps going to ~1e7 — the precision ladder trades")
	fmt.Println("factorization cost against the conditioning range it can refine")
}
