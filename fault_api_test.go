package exadla_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"exadla"
)

// spdSystem builds a well-conditioned SPD system with a known solution.
func spdSystem(t *testing.T, rng *rand.Rand, n int) (a, b, x *exadla.Matrix) {
	t.Helper()
	a = exadla.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := rng.Float64() - 0.5
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(j, j, float64(n))
	}
	x = exadla.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
	}
	b = exadla.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x.At(j, 0)
		}
		b.Set(i, 0, s)
	}
	return a, b, x
}

func maxErr(got, want *exadla.Matrix, n int) float64 {
	var d float64
	for i := 0; i < n; i++ {
		if v := math.Abs(got.At(i, 0) - want.At(i, 0)); v > d {
			d = v
		}
	}
	return d
}

func TestFaultToleranceSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const n = 160
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t, exadla.WithFaultTolerance(), exadla.WithTileSize(48))
	got, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}
	st := ctx.FaultStats()
	if st.Detected != 0 || st.Failed != 0 {
		t.Errorf("clean fault-tolerant solve reported stats %+v", st)
	}
}

func TestFaultToleranceSolveGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const n = 160
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t, exadla.WithFaultTolerance(), exadla.WithTileSize(48))
	got, err := ctx.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}
}

// TestChaosSolveRecovers: a chaos-armed Context with retries still solves
// correctly and reports the retries it absorbed.
func TestChaosSolveRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	const n = 160
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t,
		exadla.WithChaos(2016, 0.05),
		exadla.WithTaskRetry(50, 0),
		exadla.WithTileSize(48),
	)
	got, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}
	if st := ctx.FaultStats(); st.Retried == 0 {
		t.Error("chaos run reported 0 retried tasks")
	}
}

// TestChaosSolveWithoutRetryFails: with retries off, the same chaos seed
// surfaces an aggregated failure naming the killed kernel instead of
// panicking.
func TestChaosSolveWithoutRetryFails(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	const n = 160
	a, b, _ := spdSystem(t, rng, n)
	ctx := newCtx(t, exadla.WithChaos(2016, 0.05), exadla.WithTileSize(48))
	_, err := ctx.SolveSPD(a, b)
	if err == nil {
		t.Fatal("chaos without retries returned nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "failed") || !strings.Contains(msg, "chaos") {
		t.Errorf("error %q does not describe the chaos-killed task", msg)
	}
	if st := ctx.FaultStats(); st.Failed == 0 {
		t.Error("no failed tasks counted")
	}
}
