// Package exadla is a pure-Go dense linear algebra library built around the
// "new rules" of extreme-scale computing (Dongarra, ICMS/HPDC 2016): tile
// algorithms scheduled as dataflow DAGs instead of fork–join phases,
// mixed-precision iterative refinement, communication-avoiding QR,
// algorithm-based fault tolerance, batched kernels, randomized solvers, and
// empirical autotuning.
//
// The entry point is a Context, which owns a worker pool and tuning
// parameters:
//
//	ctx := exadla.NewContext(exadla.WithWorkers(8))
//	defer ctx.Close()
//
//	a := exadla.NewMatrix(n, n)        // fill with an SPD matrix
//	b := exadla.NewMatrix(n, 1)        // right-hand side
//	x, err := ctx.SolveSPD(a, b)       // tile Cholesky + triangular solves
//
// Factorizations return factor objects that can be reused for multiple
// right-hand sides. Higher-level drivers (SolveMixed, LeastSquares,
// RandomizedLeastSquares, TSQRLeastSquares) expose the specialised solvers.
package exadla

import (
	"log/slog"
	"runtime"
	"sync/atomic"
	"time"

	"exadla/internal/autotune"
	"exadla/internal/blas"
	"exadla/internal/ft"
	"exadla/internal/metrics"
	"exadla/internal/obs"
	"exadla/internal/sched"
	"exadla/internal/trace"
)

// DefaultTileSize is the tile size used when neither an option nor the
// tuning table overrides it. 96 is a good default for the pure-Go kernels
// on current x86 cores (see the E5 tile-size sweep in EXPERIMENTS.md).
const DefaultTileSize = 96

// Context owns the scheduler and configuration shared by the library's
// operations. A Context is safe for sequential use; concurrent calls on the
// same Context would interleave task graphs and must be externally
// serialized. Create one Context per concurrent stream instead.
type Context struct {
	workers  int
	tileSize int
	tracing  bool
	tuning   *autotune.Table

	// Fault-tolerance configuration (fault.go).
	faultTolerant bool
	erasure       bool
	retryMax      int
	retryBackoff  time.Duration
	retrySet      bool
	chaosSeed     int64
	chaosProb     float64
	chaosSet      bool

	// Hard-fault configuration (fault.go): liveness deadline and the
	// worker-kill / task-hang chaos modes.
	taskDeadline    time.Duration
	hardChaosSeed   int64
	killWorkerProb  float64
	hangTaskProb    float64
	hardChaosBudget int
	hardChaosSet    bool

	// Checkpoint/restart configuration (checkpoint.go).
	ckptDir   string
	ckptEvery int

	// Fault-tolerance counters (see Context.FaultStats).
	ftStats  ft.Stats
	retried  atomic.Int64
	failed   atomic.Int64
	timedOut atomic.Int64

	rt  *sched.Runtime
	log *trace.Log

	// Observability (obs.go).
	obsAddr  string
	obs      *obs.Server
	eventLog *slog.Logger
}

// Option configures a Context.
type Option func(*Context)

// WithWorkers sets the worker pool size. The default is GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *Context) { c.workers = n }
}

// WithTileSize sets the tile size used by the tiled algorithms.
func WithTileSize(nb int) Option {
	return func(c *Context) {
		if nb < 1 {
			panic("exadla: tile size must be positive")
		}
		c.tileSize = nb
	}
}

// WithTracing enables per-task execution tracing; see Context.TraceStats
// and Context.TraceLog.
func WithTracing() Option {
	return func(c *Context) { c.tracing = true }
}

// WithMetrics enables runtime metrics collection (scheduler task counts and
// occupancy, per-kernel latency histograms, BLAS flop rates, factorization
// phase timings). The underlying registry is process-global: enabling it on
// one Context enables it for every Context in the process, and it stays
// enabled after the Context is closed. See Context.Metrics.
func WithMetrics() Option {
	return func(c *Context) { metrics.Enable() }
}

// WithTuningTable loads the autotuner's persistent table (as written by
// cmd/exatune) and uses its per-operation tile sizes, falling back to the
// configured tile size for untuned shapes. Machine-global gemm.* blocking
// keys (exatune -op gemm) are installed into the packed GEMM kernel
// immediately — the blocking is process-global, like the metrics registry.
// A missing file yields an empty table; a corrupt file panics, since
// silently ignoring a requested tuning configuration would be worse.
func WithTuningTable(path string) Option {
	return func(c *Context) {
		t, err := autotune.Load(path)
		if err != nil {
			panic("exadla: " + err.Error())
		}
		c.tuning = t
		applyGemmTuning(t)
	}
}

// applyGemmTuning installs any machine-global gemm.* blocking parameters
// from the tuning table into the packed GEMM kernel. Absent keys leave the
// corresponding field at its current value (SetGemmBlocking treats zero as
// "keep default"), and out-of-range values are clamped there, so a partial
// or stale table can never produce an invalid blocking.
func applyGemmTuning(t *autotune.Table) {
	var b blas.Blocking
	changed := false
	set := func(key string, field *int) {
		if v, ok := t.Lookup(autotune.GlobalKey(key)); ok {
			*field = v
			changed = true
		}
	}
	set("gemm.mr", &b.MR)
	set("gemm.nr", &b.NR)
	set("gemm.mc", &b.MC)
	set("gemm.kc", &b.KC)
	set("gemm.nc", &b.NC)
	if changed {
		cur := blas.GemmBlocking()
		if b.MR == 0 {
			b.MR = cur.MR
		}
		if b.NR == 0 {
			b.NR = cur.NR
		}
		if b.MC == 0 {
			b.MC = cur.MC
		}
		if b.KC == 0 {
			b.KC = cur.KC
		}
		if b.NC == 0 {
			b.NC = cur.NC
		}
		blas.SetGemmBlocking(b)
	}
}

// tileSizeFor resolves the tile size for an operation on an n-sized
// problem: exact tuning-table hit first, configured default otherwise.
func (c *Context) tileSizeFor(op string, n int) int {
	if c.tuning != nil {
		if nb, ok := c.tuning.Lookup(autotune.Key(op, n, c.workers)); ok && nb > 0 {
			return nb
		}
	}
	return c.tileSize
}

// NewContext creates a Context and starts its worker pool.
func NewContext(opts ...Option) *Context {
	c := &Context{
		workers:  runtime.GOMAXPROCS(0),
		tileSize: DefaultTileSize,
	}
	for _, o := range opts {
		o(c)
	}
	var schedOpts []sched.Option
	if c.tracing {
		c.log = trace.NewLog()
		schedOpts = append(schedOpts, sched.WithTracer(c.log))
	}
	schedOpts = append(schedOpts, c.faultSchedOpts()...)
	c.rt = sched.New(c.workers, schedOpts...)
	c.startObs()
	return c
}

// Close stops the worker pool and the observability server, if any. The
// Context must not be used afterwards.
func (c *Context) Close() {
	c.rt.Shutdown()
	_ = c.obs.Close()
}

// Workers reports the worker pool size.
func (c *Context) Workers() int { return c.workers }

// TileSize reports the configured tile size.
func (c *Context) TileSize() int { return c.tileSize }

// TraceStats summarizes the execution trace collected so far. It returns
// zero statistics unless the Context was created WithTracing.
func (c *Context) TraceStats() trace.Stats {
	if c.log == nil {
		return trace.Stats{}
	}
	return c.log.Analyze()
}

// TraceLog exposes the raw trace log (nil without WithTracing), for Gantt
// rendering and custom analysis.
func (c *Context) TraceLog() *trace.Log { return c.log }

// ResetTrace discards collected trace events.
func (c *Context) ResetTrace() {
	if c.log != nil {
		c.log.Reset()
	}
}

// Metrics returns a point-in-time snapshot of the process-global metrics
// registry: counters, gauges and latency histograms accumulated since the
// last ResetMetrics. With metrics never enabled (see WithMetrics) the
// snapshot is empty. Use Snapshot.WriteJSON or Snapshot.WriteText to export
// it; see DESIGN.md for the metric-name catalogue and how to read one.
func (c *Context) Metrics() metrics.Snapshot {
	return metrics.Default().Snapshot()
}

// ResetMetrics zeroes all accumulated metrics, keeping collection enabled or
// disabled as it was. Like the registry itself this is process-global.
func (c *Context) ResetMetrics() {
	metrics.Reset()
}

// scheduler returns the Context's scheduler.
func (c *Context) scheduler() sched.Scheduler { return c.rt }
