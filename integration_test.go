package exadla_test

// Integration tests chaining multiple public-API operations the way a
// downstream application would, checking the pieces compose: factor → solve
// → refine, eigen → reconstruct → solve, invert → multiply, and the three
// least-squares paths against each other.

import (
	"math"
	"math/rand"
	"testing"

	"exadla"
)

func TestIntegrationSolvePaths(t *testing.T) {
	// The three square-solve paths (Cholesky, LU, mixed precision) must
	// agree with each other on an SPD system.
	ctx := newCtx(t, exadla.WithTileSize(32))
	rng := rand.New(rand.NewSource(70))
	n := 150
	a := exadla.RandomSPDWithCond(rng, n, 1e3)
	xTrue := exadla.RandomGeneral(rng, n, 1)
	b := ctx.Multiply(a, xTrue)

	xChol, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xLU, err := ctx.Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xMixed, _, err := ctx.SolveMixed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(xChol.At(i, 0)-xLU.At(i, 0)) > 1e-9 {
			t.Fatalf("Cholesky and LU disagree at %d", i)
		}
		if math.Abs(xChol.At(i, 0)-xMixed.At(i, 0)) > 1e-9 {
			t.Fatalf("Cholesky and mixed disagree at %d", i)
		}
	}
}

func TestIntegrationEigenSolveConsistency(t *testing.T) {
	// Solving A·x = b through the spectral decomposition must match the
	// direct solver: x = V·diag(1/λ)·Vᵀ·b.
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(71))
	n := 60
	a := exadla.RandomSPD(rng, n)
	b := exadla.RandomGeneral(rng, n, 1)

	vals, vecs, err := ctx.EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// vtb = Vᵀ·b, scale by 1/λ, multiply back.
	vt := exadla.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			vt.Set(i, j, vecs.At(j, i))
		}
	}
	vtb := ctx.Multiply(vt, b)
	for i := 0; i < n; i++ {
		vtb.Set(i, 0, vtb.At(i, 0)/vals[i])
	}
	xSpectral := ctx.Multiply(vecs, vtb)

	xDirect, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(xSpectral.At(i, 0)-xDirect.At(i, 0)) > 1e-8*(1+math.Abs(xDirect.At(i, 0))) {
			t.Fatalf("spectral and direct solves disagree at %d: %v vs %v",
				i, xSpectral.At(i, 0), xDirect.At(i, 0))
		}
	}
}

func TestIntegrationInverseSolvesSystem(t *testing.T) {
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(72))
	n := 70
	a := exadla.RandomSPD(rng, n)
	b := exadla.RandomGeneral(rng, n, 2)
	inv, err := ctx.InvertSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	xViaInv := ctx.Multiply(inv, b)
	xDirect, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < n; i++ {
			if math.Abs(xViaInv.At(i, j)-xDirect.At(i, j)) > 1e-8*(1+math.Abs(xDirect.At(i, j))) {
				t.Fatalf("inverse-based and direct solves disagree at (%d,%d)", i, j)
			}
		}
	}
}

func TestIntegrationLeastSquaresPaths(t *testing.T) {
	// Tile QR (flat and tree), TSQR, and randomized LS must all land on the
	// same least-squares solution.
	ctx := newCtx(t, exadla.WithTileSize(32))
	rng := rand.New(rand.NewSource(73))
	m, n := 1000, 40
	a := exadla.RandomWithCond(rng, m, n, 1e3)
	// A noisy RHS so the residual is genuinely nonzero.
	b := exadla.RandomGeneral(rng, m, 1)

	xQR, err := ctx.LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	xTSQR, err := ctx.TSQRLeastSquares(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	xRand, err := ctx.RandomizedLeastSquares(rng, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ref := xQR.At(i, 0)
		if math.Abs(xTSQR.At(i, 0)-ref) > 1e-8*(1+math.Abs(ref)) {
			t.Fatalf("TSQR disagrees with QR at %d", i)
		}
		if math.Abs(xRand.At(i, 0)-ref) > 1e-6*(1+math.Abs(ref)) {
			t.Fatalf("randomized disagrees with QR at %d: %v vs %v", i, xRand.At(i, 0), ref)
		}
	}
}

func TestIntegrationSingularValuesMatchCondEst(t *testing.T) {
	ctx := newCtx(t)
	rng := rand.New(rand.NewSource(74))
	m, n := 200, 30
	a := exadla.RandomWithCond(rng, m, n, 1e4)
	sv, err := ctx.SingularValues(a)
	if err != nil {
		t.Fatal(err)
	}
	exact := sv[0] / sv[n-1]
	est := ctx.CondEst(rng, a)
	if est < exact/10 || est > exact*10 {
		t.Errorf("CondEst %v vs spectral %v", est, exact)
	}
}

func TestIntegrationFactorAcrossContexts(t *testing.T) {
	// A factor created on one Context must be reusable after other work has
	// run on the same Context (scheduler state does not leak across ops).
	ctx := newCtx(t, exadla.WithTileSize(16))
	rng := rand.New(rand.NewSource(75))
	n := 50
	a := exadla.RandomSPD(rng, n)
	f, err := ctx.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated work.
	g := exadla.RandomGeneral(rng, 40, 40)
	if _, err := ctx.Solve(g, exadla.RandomGeneral(rng, 40, 1)); err != nil {
		t.Fatal(err)
	}
	// The old factor still solves correctly.
	b := ctx.Multiply(a, exadla.RandomGeneral(rng, n, 1))
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := exadla.Residual(a, x, b); r > 1e-12 {
		t.Errorf("stale-factor residual %g", r)
	}
}
