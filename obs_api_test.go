package exadla_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"exadla"
	"exadla/internal/sched"
)

// TestSpanOutcomesMatchFaultStats is the chaos acceptance check: a run
// under WithChaos + WithTaskRetry must produce a span trace whose attempt
// numbers and outcomes agree exactly with the Context's fault counters.
func TestSpanOutcomesMatchFaultStats(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 288
	a, b, x := spdSystem(t, rng, n)
	ctx := newCtx(t,
		exadla.WithWorkers(4), exadla.WithTileSize(48),
		exadla.WithTracing(),
		exadla.WithChaos(2016, 0.15),
		exadla.WithTaskRetry(50, 0))
	got, err := ctx.SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD under chaos: %v", err)
	}
	if d := maxErr(got, x, n); d > 1e-8 {
		t.Errorf("solution error %g", d)
	}

	fs := ctx.FaultStats()
	var retried, failed, attemptsAboveOne int64
	attempts := map[int]int{}
	for _, e := range ctx.TraceLog().Events() {
		switch e.Outcome {
		case sched.OutcomeRetried, sched.OutcomeCorrected:
			retried++
		case sched.OutcomeFailed:
			failed++
		}
		if e.Attempt > attempts[e.ID] {
			attempts[e.ID] = e.Attempt
		}
	}
	for _, max := range attempts {
		if max > 1 {
			attemptsAboveOne++
		}
	}

	if retried != fs.Retried {
		t.Errorf("span trace has %d retried attempts, FaultStats.Retried = %d", retried, fs.Retried)
	}
	if failed != fs.Failed {
		t.Errorf("span trace has %d failed attempts, FaultStats.Failed = %d", failed, fs.Failed)
	}
	if fs.Failed != 0 {
		t.Errorf("FaultStats.Failed = %d, want 0 with a 50-attempt budget", fs.Failed)
	}
	if retried == 0 || attemptsAboveOne == 0 {
		t.Errorf("chaos at p=0.15 injected no retries (retried=%d, multi-attempt tasks=%d)",
			retried, attemptsAboveOne)
	}
	// Retried attempts and their re-executions agree: each task with a
	// final attempt number k contributed k-1 retried attempts.
	var expectRetried int64
	for _, max := range attempts {
		expectRetried += int64(max - 1)
	}
	if retried != expectRetried {
		t.Errorf("retried spans %d != sum of (attempts-1) %d", retried, expectRetried)
	}
}

func TestWithObsServer(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n = 96
	a, b, _ := spdSystem(t, rng, n)
	ctx := newCtx(t,
		exadla.WithWorkers(2), exadla.WithTileSize(32),
		exadla.WithTracing(),
		exadla.WithObsServer("127.0.0.1:0"))
	if _, err := ctx.SolveSPD(a, b); err != nil {
		t.Fatal(err)
	}

	addr := ctx.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty with WithObsServer")
	}
	for _, path := range []string{"/metrics", "/healthz", "/trace", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
			continue
		}
		switch path {
		case "/healthz":
			var h map[string]any
			if err := json.Unmarshal(body, &h); err != nil || h["status"] != "ok" {
				t.Errorf("/healthz body %q (err %v)", body, err)
			}
		case "/trace":
			var events []map[string]any
			if err := json.Unmarshal(body, &events); err != nil || len(events) == 0 {
				t.Errorf("/trace: %d events (err %v)", len(events), err)
			}
		}
	}
}

func TestWithObsServerOffByDefault(t *testing.T) {
	ctx := newCtx(t, exadla.WithWorkers(1))
	if addr := ctx.ObsAddr(); addr != "" {
		t.Errorf("ObsAddr = %q without WithObsServer", addr)
	}
}

func TestWithEventLog(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const n = 192
	a, b, _ := spdSystem(t, rng, n)
	var buf bytes.Buffer
	ctx := newCtx(t,
		exadla.WithWorkers(4), exadla.WithTileSize(48),
		exadla.WithEventLog(slog.New(slog.NewTextHandler(&buf, nil))),
		exadla.WithChaos(5, 0.2),
		exadla.WithTaskRetry(50, 0))
	if _, err := ctx.SolveSPD(a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kind=chaos") || !strings.Contains(out, "level=WARN") {
		t.Errorf("event log missing chaos retry records:\n%.500s", out)
	}
	if !strings.Contains(out, "kernel=") || !strings.Contains(out, "attempt=") {
		t.Errorf("event log missing task identity attrs:\n%.500s", out)
	}
	if fs := ctx.FaultStats(); fs.Retried == 0 {
		t.Error("chaos injected no retries; test asserts nothing")
	}
}
