package exadla_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"exadla"
	"exadla/internal/matgen"
)

func TestServeAPISolveAndCache(t *testing.T) {
	s, err := exadla.Serve(exadla.ServeConfig{Lanes: 1, Workers: 2, TileSize: 16, SmallCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(1))
	n := 32
	a := matgen.DiagDomSPD[float64](rng, n)
	b := matgen.Dense[float64](rng, n, 1)
	submit := func() exadla.ServeStatus {
		id, err := s.Submit("api-test", exadla.ServeJob{
			Op: exadla.ServeSolveSPD, N: n, NRHS: 1,
			A: append([]float64(nil), a...), B: append([]float64(nil), b...),
		})
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.WaitJob(id)
		if st.State != "done" {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		return st
	}

	cold := submit()
	warm := submit()
	if cold.Cache != "miss" || warm.Cache != "hit" {
		t.Errorf("cache: cold=%q warm=%q", cold.Cache, warm.Cache)
	}
	x, err := s.Result(warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += a[i+k*n] * x[k]
		}
		if math.Abs(sum-b[i]) > 1e-8 {
			t.Fatalf("residual at row %d: %g", i, math.Abs(sum-b[i]))
		}
	}
}

func TestServeAPIShedType(t *testing.T) {
	s, err := exadla.Serve(exadla.ServeConfig{Lanes: 1, Workers: 1, TileSize: 16,
		SmallCutoff: -1, MaxQueue: 1, RetryAfter: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	n := 256 // big enough to still be in flight when the second submit lands
	job := func() exadla.ServeJob {
		return exadla.ServeJob{Op: exadla.ServeSolveSPD, N: n, NRHS: 1,
			A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1)}
	}
	first, err := s.Submit("t", job())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit("t", job())
	var shed *exadla.ServeShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overload returned %T (%v), want *exadla.ServeShedError", err, err)
	}
	if shed.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter=%v", shed.RetryAfter)
	}
	if st, _ := s.WaitJob(first); st.State != "done" {
		t.Errorf("first job: %s", st.State)
	}
}
