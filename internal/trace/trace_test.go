package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestAnalyzeBasics(t *testing.T) {
	l := NewLog()
	// Two workers, each busy 1s over a 2s span → utilization 0.5.
	l.TaskRan("gemm", 0, 0, 1e9)
	l.TaskRan("trsm", 1, 1e9, 2e9)
	st := l.Analyze()
	if st.Tasks != 2 || st.Workers != 2 {
		t.Fatalf("tasks=%d workers=%d", st.Tasks, st.Workers)
	}
	if math.Abs(st.Span-2) > 1e-9 {
		t.Errorf("span %v", st.Span)
	}
	if math.Abs(st.Busy-2) > 1e-9 {
		t.Errorf("busy %v", st.Busy)
	}
	if math.Abs(st.Utilization-0.5) > 1e-9 {
		t.Errorf("utilization %v", st.Utilization)
	}
	if math.Abs(st.ByKernel["gemm"]-1) > 1e-9 {
		t.Errorf("gemm time %v", st.ByKernel["gemm"])
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := NewLog().Analyze()
	if st.Tasks != 0 || st.Utilization != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestEventsSorted(t *testing.T) {
	l := NewLog()
	l.TaskRan("b", 0, 100, 200)
	l.TaskRan("a", 0, 0, 50)
	ev := l.Events()
	if ev[0].Name != "a" || ev[1].Name != "b" {
		t.Errorf("events not sorted: %v", ev)
	}
}

func TestReset(t *testing.T) {
	l := NewLog()
	l.TaskRan("a", 0, 0, 1)
	l.Reset()
	if len(l.Events()) != 0 {
		t.Error("reset did not clear events")
	}
}

func TestGantt(t *testing.T) {
	l := NewLog()
	l.TaskRan("potrf", 0, 0, 5e8)
	l.TaskRan("gemm", 1, 5e8, 1e9)
	var sb strings.Builder
	if err := l.Gantt(&sb, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "w0") || !strings.Contains(out, "w1") {
		t.Errorf("missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "p") || !strings.Contains(out, "g") {
		t.Errorf("missing kernel initials:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Errorf("missing legend:\n%s", out)
	}
	// Worker 0 idle in the second half: its row must contain '.' cells.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], ".") {
		t.Errorf("worker 0 shows no idle time:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewLog().Gantt(&sb, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("unexpected output: %s", sb.String())
	}
}

func TestWriteChrome(t *testing.T) {
	l := NewLog()
	l.TaskRan("potrf", 0, 1000, 2000)
	l.TaskRan("gemm", 1, 2000, 5000)
	var sb strings.Builder
	if err := l.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var xs []map[string]any
	threadNames := map[string]bool{}
	for _, e := range events {
		switch e["ph"] {
		case "X":
			xs = append(xs, e)
		case "M":
			if e["name"] == "thread_name" {
				threadNames[e["args"].(map[string]any)["name"].(string)] = true
			}
		}
	}
	if len(xs) != 2 {
		t.Fatalf("%d X events", len(xs))
	}
	if xs[0]["name"] != "potrf" {
		t.Errorf("first event: %v", xs[0])
	}
	if xs[1]["dur"].(float64) != 3 { // 3000ns = 3µs
		t.Errorf("duration: %v", xs[1]["dur"])
	}
	if xs[1]["tid"].(float64) != 1 {
		t.Errorf("worker lane: %v", xs[1]["tid"])
	}
	if !threadNames["worker 0"] || !threadNames["worker 1"] {
		t.Errorf("missing thread_name metadata: %v", threadNames)
	}
}
