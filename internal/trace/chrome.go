package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), renderable at chrome://tracing or ui.perfetto.dev.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	// Ts and Dur are in microseconds per the format.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur"`
	PID int     `json:"pid"`
	TID int     `json:"tid"`
}

// WriteChrome renders the log in the Chrome trace-event JSON format: one
// process, one thread lane per worker, one complete event per task.
func (l *Log) WriteChrome(w io.Writer) error {
	events := l.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		out = append(out, chromeEvent{
			Name:  e.Name,
			Phase: "X",
			Ts:    float64(e.Start) / 1e3,
			Dur:   float64(e.End-e.Start) / 1e3,
			PID:   1,
			TID:   e.Worker,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	return nil
}
