package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format, renderable at
// chrome://tracing or ui.perfetto.dev. Phases used: "X" complete events for
// task attempts, "M" metadata (process/thread names), "s"/"f" flow events
// for dependence edges, "C" counters (queue depth, busy workers), and "i"
// instants for skipped tasks.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	Cat   string `json:"cat,omitempty"`
	// Ts and Dur are in microseconds per the format.
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePID = 1

// WriteChrome renders the log in the Chrome trace-event JSON format: one
// process, one named thread lane per worker (ordered numerically), one
// complete event per task attempt with task/attempt/outcome/queue-wait
// args, flow arrows for dependence edges, counter tracks for ready-queue
// depth and busy workers, and an extra "skipped" lane of instant events for
// tasks poisoned by failures.
func (l *Log) WriteChrome(w io.Writer) error {
	all := l.Events()
	events := all[:0:0]
	for _, e := range all {
		if e.Phase == "" {
			events = append(events, e)
		}
	}

	maxWorker, haveSkipped := 0, false
	workers := map[int]bool{}
	for _, e := range events {
		if e.Attempt == 0 {
			haveSkipped = true
			continue
		}
		if e.Worker >= 0 {
			workers[e.Worker] = true
			if e.Worker > maxWorker {
				maxWorker = e.Worker
			}
		}
	}
	skipLane := maxWorker + 1

	out := make([]chromeEvent, 0, 2*len(events)+len(workers)+2)

	// Metadata: name the process and each worker lane, ordered numerically.
	out = append(out, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID,
		Args: map[string]any{"name": "exadla dataflow runtime"},
	})
	ids := make([]int, 0, len(workers))
	for w := range workers {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for _, wid := range ids {
		out = append(out,
			chromeEvent{Name: "thread_name", Phase: "M", PID: chromePID, TID: wid,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", wid)}},
			chromeEvent{Name: "thread_sort_index", Phase: "M", PID: chromePID, TID: wid,
				Args: map[string]any{"sort_index": wid}},
		)
	}
	if haveSkipped {
		out = append(out,
			chromeEvent{Name: "thread_name", Phase: "M", PID: chromePID, TID: skipLane,
				Args: map[string]any{"name": "skipped"}},
			chromeEvent{Name: "thread_sort_index", Phase: "M", PID: chromePID, TID: skipLane,
				Args: map[string]any{"sort_index": skipLane}},
		)
	}

	// First and last executed attempt per task ID, for flow-edge endpoints.
	type bounds struct{ first, last Event }
	attempts := map[int]*bounds{}
	for _, e := range events {
		if e.Attempt == 0 || e.ID < 0 {
			continue
		}
		b := attempts[e.ID]
		if b == nil {
			attempts[e.ID] = &bounds{first: e, last: e}
			continue
		}
		if e.Start < b.first.Start {
			b.first = e
		}
		if e.End > b.last.End {
			b.last = e
		}
	}

	// Task attempts and skipped-task instants.
	for _, e := range events {
		if e.Attempt == 0 {
			out = append(out, chromeEvent{
				Name: e.Name, Phase: "i", S: "t",
				Ts: float64(e.Start) / 1e3, PID: chromePID, TID: skipLane,
				Args: map[string]any{"task": e.ID, "outcome": "skipped"},
			})
			continue
		}
		args := map[string]any{
			"task":    e.ID,
			"attempt": e.Attempt,
			"outcome": e.Outcome.String(),
			"wait_us": float64(e.QueueWait()) / 1e3,
		}
		if e.Err != "" {
			args["error"] = e.Err
		}
		out = append(out, chromeEvent{
			Name: e.Name, Phase: "X",
			Ts: float64(e.Start) / 1e3, Dur: float64(e.End-e.Start) / 1e3,
			PID: chromePID, TID: e.Worker, Args: args,
		})
	}

	// Flow arrows: one s→f pair per dependence edge, from the producer's
	// last attempt to the consumer's first.
	flowID := 0
	for _, e := range events {
		if e.Attempt == 0 || e.ID < 0 {
			continue
		}
		to := attempts[e.ID]
		if to == nil || to.first.Attempt != e.Attempt || to.first.Start != e.Start {
			continue // flows target the first attempt only
		}
		for _, d := range e.Deps {
			from := attempts[d]
			if from == nil {
				continue
			}
			flowID++
			out = append(out,
				chromeEvent{Name: "dep", Phase: "s", Cat: "dep", ID: flowID,
					Ts: float64(from.last.End) / 1e3, PID: chromePID, TID: from.last.Worker},
				chromeEvent{Name: "dep", Phase: "f", Cat: "dep", ID: flowID, BP: "e",
					Ts: float64(e.Start) / 1e3, PID: chromePID, TID: e.Worker},
			)
		}
	}

	// Counter tracks, rebuilt from event transitions.
	var queue, busy []transition
	for _, e := range events {
		if e.Attempt == 0 {
			continue
		}
		if e.Ready > 0 && e.Ready <= e.Start {
			queue = append(queue, transition{e.Ready, 1}, transition{e.Start, -1})
		}
		busy = append(busy, transition{e.Start, 1}, transition{e.End, -1})
	}
	out = append(out, counterTrack("queue depth", "ready", queue)...)
	out = append(out, counterTrack("busy workers", "busy", busy)...)

	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode chrome trace: %w", err)
	}
	return nil
}

type transition struct {
	ts    int64
	delta int
}

// counterTrack folds +1/-1 transitions into one "C" event per distinct
// timestamp carrying the running value.
func counterTrack(name, series string, trans []transition) []chromeEvent {
	if len(trans) == 0 {
		return nil
	}
	sort.Slice(trans, func(i, j int) bool { return trans[i].ts < trans[j].ts })
	var out []chromeEvent
	val := 0
	for i := 0; i < len(trans); {
		ts := trans[i].ts
		for i < len(trans) && trans[i].ts == ts {
			val += trans[i].delta
			i++
		}
		out = append(out, chromeEvent{
			Name: name, Phase: "C", Ts: float64(ts) / 1e3, PID: chromePID,
			Args: map[string]any{series: val},
		})
	}
	return out
}
