package trace

import (
	"math"
	"sort"

	"exadla/internal/sched"
)

// DAGStats is the dependence-aware view of a trace: the work/span analysis
// (T₁, T∞) that bounds how fast the recorded DAG could possibly run, plus
// where the critical path actually spends its time. All times in seconds.
type DAGStats struct {
	// Tasks is the number of distinct executed tasks; Attempts counts task
	// executions including retries, and Retries how many attempts ended
	// retried, corruption-corrected, or timed out (watchdog re-execution).
	Tasks, Attempts, Retries int
	// T1 is the total work: summed duration of every attempt — the
	// single-worker makespan lower bound.
	T1 float64
	// TInf is the critical-path length: the longest dependence-weighted
	// chain — the makespan lower bound at infinite parallelism.
	TInf float64
	// Makespan is the observed wall-clock extent (first start to last end).
	Makespan float64
	// Workers is the number of distinct workers observed.
	Workers int
	// CritPath lists the task IDs on one longest path, in execution order;
	// CritTasks is its length.
	CritPath  []int
	CritTasks int
	// CritShare maps kernel name to its fraction of critical-path time.
	CritShare map[string]float64
	// FetchTime and CommitTime are the summed seconds of fetch and commit
	// sub-phase spans (cluster traces only; zero for in-process traces).
	FetchTime, CommitTime float64
	// TCommInf is the communication-aware critical path: the longest chain
	// weighted by fetch+compute+commit per task. TCommInf ≥ TInf, so the
	// comm-limited speedup bound can only be tighter than the DAG-limited
	// one. Equals TInf when the trace carries no sub-phase spans.
	TCommInf float64
	// BytesFetched is the live bytes moved by task-driven fetch spans
	// (initial scatter prefetch, recorded under task ID -1, is excluded so
	// the number is comparable to the per-task communication model).
	BytesFetched int64
}

// Speedup returns the achieved speedup T₁/makespan (0 if unmeasurable).
func (s DAGStats) Speedup() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return s.T1 / s.Makespan
}

// SpeedupBound returns the DAG-limited speedup bound at p workers:
// min(p, T₁/T∞). No schedule can beat it.
func (s DAGStats) SpeedupBound(p int) float64 {
	if s.TInf <= 0 {
		return float64(p)
	}
	return math.Min(float64(p), s.T1/s.TInf)
}

// CommSpeedupBound returns the communication-limited speedup bound at p
// workers: min(p, T₁/TComm∞). Because every chain is at least as long once
// fetch and commit time is charged to its tasks, this is ≤ SpeedupBound —
// the gap between the two is how much of the DAG headroom communication
// eats.
func (s DAGStats) CommSpeedupBound(p int) float64 {
	if s.TCommInf <= 0 {
		return s.SpeedupBound(p)
	}
	return math.Min(float64(p), s.T1/s.TCommInf)
}

// BrentBound returns Brent's greedy-schedule makespan upper bound at p
// workers: T₁/p + T∞. Any work-conserving schedule finishes within it.
func (s DAGStats) BrentBound(p int) float64 {
	if p < 1 {
		p = 1
	}
	return s.T1/float64(p) + s.TInf
}

// dagNode aggregates the attempts of one task ID.
type dagNode struct {
	name string
	deps []int
	dur  float64 // summed whole-attempt durations, seconds
	comp float64 // summed compute sub-phase durations, seconds
	comm float64 // summed fetch+commit sub-phase durations, seconds
	// phased is set once any sub-phase span is seen for this task; the
	// whole-attempt span then stops being the weight source, because it
	// already contains the sub-phases.
	phased bool
}

// weight is the task's compute time: the compute sub-phases when the trace
// records them, the whole-attempt duration otherwise.
func (n *dagNode) weight() float64 {
	if n.phased {
		return n.comp
	}
	return n.dur
}

// commWeight additionally charges the task's fetch and commit time.
func (n *dagNode) commWeight() float64 {
	if n.phased {
		return n.comp + n.comm
	}
	return n.dur
}

// AnalyzeDAG computes the work/span decomposition of the recorded trace.
// Each task's weight is the summed duration of its attempts (a retried task
// stretches every path through it, which is exactly what retries do to the
// schedule). Legacy TaskRan events carry no dependence edges; they enter
// the analysis as independent tasks, so a legacy-only trace reports
// TInf = max single-task duration. Skipped tasks never ran and are
// excluded.
func (l *Log) AnalyzeDAG() DAGStats {
	events := l.Events()
	st := DAGStats{CritShare: map[string]float64{}}

	nodes := map[int]*dagNode{}
	node := func(e Event) *dagNode {
		n := nodes[e.ID]
		if n == nil {
			n = &dagNode{name: e.Name, deps: e.Deps}
			nodes[e.ID] = n
		}
		return n
	}
	synthetic := -1 // legacy events get unique negative IDs
	commitSeen := map[[2]int]bool{} // (id, attempt) whose commit interval is charged
	var first, last int64
	for _, e := range events {
		if e.Attempt == 0 {
			continue
		}
		d := float64(e.End-e.Start) / 1e9
		switch e.Phase {
		case PhaseFetch:
			st.FetchTime += d
			if e.ID >= 0 {
				st.BytesFetched += e.Bytes
				n := node(e)
				n.comm += d
				n.phased = true
			}
			continue
		case PhaseCompute:
			if e.ID >= 0 {
				n := node(e)
				n.comp += d
				n.phased = true
			}
			continue
		case PhaseCommit:
			// Per-tile commit spans share one RPC interval; charge the
			// interval once per attempt.
			if e.ID >= 0 {
				key := [2]int{e.ID, e.Attempt}
				if !commitSeen[key] {
					commitSeen[key] = true
					st.CommitTime += d
					n := node(e)
					n.comm += d
					n.phased = true
				}
			}
			continue
		default:
			if e.Phase != "" {
				continue // fault instants carry no duration
			}
		}
		if st.Attempts == 0 {
			first, last = e.Start, e.End
		}
		st.Attempts++
		if e.Outcome == sched.OutcomeRetried || e.Outcome == sched.OutcomeCorrected ||
			e.Outcome == sched.OutcomeTimedOut {
			st.Retries++
		}
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		id := e.ID
		if id < 0 {
			id = synthetic
			synthetic--
		}
		n := nodes[id]
		if n == nil {
			n = &dagNode{name: e.Name, deps: e.Deps}
			nodes[id] = n
		} else if len(n.deps) == 0 {
			// The node may have been created by a sub-phase span, which
			// carries no dependence edges; the whole-attempt span does.
			n.name, n.deps = e.Name, e.Deps
		}
		n.dur += d
	}
	if st.Attempts == 0 {
		return st
	}
	st.Tasks = len(nodes)
	st.Makespan = float64(last-first) / 1e9
	workers := map[int]bool{}
	for _, e := range events {
		if e.Attempt > 0 && e.Worker >= 0 && e.Phase == "" {
			workers[e.Worker] = true
		}
	}
	st.Workers = len(workers)

	// Longest-path DP in ID order: dependence edges always point from a
	// smaller submission sequence number to a larger one.
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	finish := make(map[int]float64, len(nodes))
	commFinish := make(map[int]float64, len(nodes))
	pred := make(map[int]int, len(nodes))
	critEnd, critFinish, commCrit := 0, math.Inf(-1), math.Inf(-1)
	for _, id := range ids {
		n := nodes[id]
		st.T1 += n.weight()
		start, commStart, p := 0.0, 0.0, id // p == id means "no predecessor"
		for _, d := range n.deps {
			if f, ok := finish[d]; ok && f > start {
				start, p = f, d
			}
			if f, ok := commFinish[d]; ok && f > commStart {
				commStart = f
			}
		}
		finish[id] = start + n.weight()
		commFinish[id] = commStart + n.commWeight()
		pred[id] = p
		if finish[id] > critFinish {
			critEnd, critFinish = id, finish[id]
		}
		if commFinish[id] > commCrit {
			commCrit = commFinish[id]
		}
	}
	st.TInf = critFinish
	st.TCommInf = commCrit

	// Backtrack one critical path and attribute its time per kernel.
	for id := critEnd; ; id = pred[id] {
		st.CritPath = append(st.CritPath, id)
		st.CritShare[nodes[id].name] += nodes[id].weight()
		if pred[id] == id {
			break
		}
	}
	for i, j := 0, len(st.CritPath)-1; i < j; i, j = i+1, j-1 {
		st.CritPath[i], st.CritPath[j] = st.CritPath[j], st.CritPath[i]
	}
	st.CritTasks = len(st.CritPath)
	if st.TInf > 0 {
		for k := range st.CritShare {
			st.CritShare[k] /= st.TInf
		}
	}
	return st
}
