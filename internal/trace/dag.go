package trace

import (
	"math"
	"sort"

	"exadla/internal/sched"
)

// DAGStats is the dependence-aware view of a trace: the work/span analysis
// (T₁, T∞) that bounds how fast the recorded DAG could possibly run, plus
// where the critical path actually spends its time. All times in seconds.
type DAGStats struct {
	// Tasks is the number of distinct executed tasks; Attempts counts task
	// executions including retries, and Retries how many attempts ended
	// retried, corruption-corrected, or timed out (watchdog re-execution).
	Tasks, Attempts, Retries int
	// T1 is the total work: summed duration of every attempt — the
	// single-worker makespan lower bound.
	T1 float64
	// TInf is the critical-path length: the longest dependence-weighted
	// chain — the makespan lower bound at infinite parallelism.
	TInf float64
	// Makespan is the observed wall-clock extent (first start to last end).
	Makespan float64
	// Workers is the number of distinct workers observed.
	Workers int
	// CritPath lists the task IDs on one longest path, in execution order;
	// CritTasks is its length.
	CritPath  []int
	CritTasks int
	// CritShare maps kernel name to its fraction of critical-path time.
	CritShare map[string]float64
}

// Speedup returns the achieved speedup T₁/makespan (0 if unmeasurable).
func (s DAGStats) Speedup() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return s.T1 / s.Makespan
}

// SpeedupBound returns the DAG-limited speedup bound at p workers:
// min(p, T₁/T∞). No schedule can beat it.
func (s DAGStats) SpeedupBound(p int) float64 {
	if s.TInf <= 0 {
		return float64(p)
	}
	return math.Min(float64(p), s.T1/s.TInf)
}

// BrentBound returns Brent's greedy-schedule makespan upper bound at p
// workers: T₁/p + T∞. Any work-conserving schedule finishes within it.
func (s DAGStats) BrentBound(p int) float64 {
	if p < 1 {
		p = 1
	}
	return s.T1/float64(p) + s.TInf
}

// dagNode aggregates the attempts of one task ID.
type dagNode struct {
	name string
	deps []int
	dur  float64 // summed attempt durations, seconds
}

// AnalyzeDAG computes the work/span decomposition of the recorded trace.
// Each task's weight is the summed duration of its attempts (a retried task
// stretches every path through it, which is exactly what retries do to the
// schedule). Legacy TaskRan events carry no dependence edges; they enter
// the analysis as independent tasks, so a legacy-only trace reports
// TInf = max single-task duration. Skipped tasks never ran and are
// excluded.
func (l *Log) AnalyzeDAG() DAGStats {
	events := l.Events()
	st := DAGStats{CritShare: map[string]float64{}}

	nodes := map[int]*dagNode{}
	synthetic := -1 // legacy events get unique negative IDs
	var first, last int64
	for _, e := range events {
		if e.Attempt == 0 {
			continue
		}
		if st.Attempts == 0 {
			first, last = e.Start, e.End
		}
		st.Attempts++
		if e.Outcome == sched.OutcomeRetried || e.Outcome == sched.OutcomeCorrected ||
			e.Outcome == sched.OutcomeTimedOut {
			st.Retries++
		}
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		id := e.ID
		if id < 0 {
			id = synthetic
			synthetic--
		}
		n := nodes[id]
		if n == nil {
			n = &dagNode{name: e.Name, deps: e.Deps}
			nodes[id] = n
		}
		n.dur += float64(e.End-e.Start) / 1e9
	}
	if st.Attempts == 0 {
		return st
	}
	st.Tasks = len(nodes)
	st.Makespan = float64(last-first) / 1e9
	workers := map[int]bool{}
	for _, e := range events {
		if e.Attempt > 0 && e.Worker >= 0 {
			workers[e.Worker] = true
		}
	}
	st.Workers = len(workers)

	// Longest-path DP in ID order: dependence edges always point from a
	// smaller submission sequence number to a larger one.
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	finish := make(map[int]float64, len(nodes))
	pred := make(map[int]int, len(nodes))
	critEnd, critFinish := 0, math.Inf(-1)
	for _, id := range ids {
		n := nodes[id]
		st.T1 += n.dur
		start, p := 0.0, id // p == id means "no predecessor"
		for _, d := range n.deps {
			if f, ok := finish[d]; ok && f > start {
				start, p = f, d
			}
		}
		finish[id] = start + n.dur
		pred[id] = p
		if finish[id] > critFinish {
			critEnd, critFinish = id, finish[id]
		}
	}
	st.TInf = critFinish

	// Backtrack one critical path and attribute its time per kernel.
	for id := critEnd; ; id = pred[id] {
		st.CritPath = append(st.CritPath, id)
		st.CritShare[nodes[id].name] += nodes[id].dur
		if pred[id] == id {
			break
		}
	}
	for i, j := 0, len(st.CritPath)-1; i < j; i, j = i+1, j-1 {
		st.CritPath[i], st.CritPath[j] = st.CritPath[j], st.CritPath[i]
	}
	st.CritTasks = len(st.CritPath)
	if st.TInf > 0 {
		for k := range st.CritShare {
			st.CritShare[k] /= st.TInf
		}
	}
	return st
}
