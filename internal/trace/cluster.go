package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Sub-phase and fault-instant labels for cluster traces. Fetch, compute,
// and commit refine one distributed task attempt into the three legs of
// its lease lifecycle; the remaining labels are zero-duration fault
// instants recorded where the fault was observed.
const (
	PhaseFetch   = "fetch"
	PhaseCompute = "compute"
	PhaseCommit  = "commit"

	PhaseEvicted = "worker_evicted"
	PhaseReaped  = "lease_reaped"
	PhaseStale   = "stale_commit"
	PhaseChaos   = "net_chaos"

	// PhaseSpecTwin marks the grant of a speculative twin lease: the same
	// task, handed to a second worker because the first ran long.
	PhaseSpecTwin = "spec_twin"
	// PhaseCorrupt marks a payload whose CRC64 failed verification — on the
	// wire (a Get reply or Commit body) or at rest in the store.
	PhaseCorrupt = "payload_corrupt"
	// PhasePartition marks a worker entering or leaving an injected network
	// partition window (recorded worker-side; ships once the partition heals).
	PhasePartition = "partition"
	// PhaseRejoin marks a previously evicted or partitioned worker
	// re-registering under a fresh identity.
	PhaseRejoin = "worker_rejoin"
)

// IsFault reports whether phase is a fault-instant label rather than a
// lease-lifecycle sub-phase.
func IsFault(phase string) bool {
	switch phase {
	case PhaseEvicted, PhaseReaped, PhaseStale, PhaseChaos,
		PhaseSpecTwin, PhaseCorrupt, PhasePartition, PhaseRejoin:
		return true
	}
	return false
}

// eventsFile is the native machine-readable trace format: a self-labelled
// envelope around the raw events, so downstream tools (cmd/exatrace
// -cluster, CI artifacts) can re-run any analysis instead of parsing the
// lossy Chrome export.
type eventsFile struct {
	Format string  `json:"format"`
	Events []Event `json:"events"`
}

const eventsFormat = "exadla-trace-v1"

// WriteJSON serializes the log's merged events in the native JSON format.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(eventsFile{Format: eventsFormat, Events: l.Events()}); err != nil {
		return fmt.Errorf("trace: encode events: %w", err)
	}
	return nil
}

// ReadJSON parses a native events file back into a Log, for offline
// analysis of a trace captured from a live run.
func ReadJSON(r io.Reader) (*Log, error) {
	var f eventsFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decode events: %w", err)
	}
	if f.Format != eventsFormat {
		return nil, fmt.Errorf("trace: unrecognised trace format %q (want %q)", f.Format, eventsFormat)
	}
	l := NewLog()
	for _, e := range f.Events {
		l.Add(e)
	}
	return l, nil
}

// WriteChromeCluster renders a merged cluster trace in the Chrome
// trace-event format: one Perfetto process lane per OS process (pid 1 is
// the coordinator, pid 1+k worker k), whole-attempt slices with nested
// fetch/compute/commit sub-slices, flow arrows from a tile's commit to
// each dependent fetch of that tile, and instant markers for faults
// (evictions, lease reaps, stale-commit rejections, wire chaos).
func (l *Log) WriteChromeCluster(w io.Writer) error {
	events := l.Events()

	procs := map[int]bool{}
	for _, e := range events {
		procs[e.Proc] = true
	}
	pids := make([]int, 0, len(procs))
	for p := range procs {
		pids = append(pids, p)
	}
	sort.Ints(pids)

	out := make([]chromeEvent, 0, 2*len(events)+2*len(pids))
	for _, p := range pids {
		name := "coordinator"
		if p > 0 {
			name = fmt.Sprintf("worker %d", p-1)
		}
		out = append(out,
			chromeEvent{Name: "process_name", Phase: "M", PID: p + 1,
				Args: map[string]any{"name": name}},
			chromeEvent{Name: "process_sort_index", Phase: "M", PID: p + 1,
				Args: map[string]any{"sort_index": p}},
		)
	}

	// Commit spans indexed by tile, sorted by end time, for flow sources.
	type anchor struct {
		endUS   float64
		pid, tid int
	}
	commits := map[[2]int][]anchor{}
	tid := func(e Event) int {
		if e.Worker >= 0 {
			return e.Worker
		}
		return 0
	}
	for _, e := range events {
		if e.Phase == PhaseCommit && e.HasTile {
			commits[e.Tile] = append(commits[e.Tile],
				anchor{float64(e.End) / 1e3, e.Proc + 1, tid(e)})
		}
	}
	for _, as := range commits {
		sort.Slice(as, func(i, j int) bool { return as[i].endUS < as[j].endUS })
	}

	flowID := 0
	for _, e := range events {
		ts := float64(e.Start) / 1e3
		switch {
		case IsFault(e.Phase):
			args := map[string]any{"kind": e.Phase}
			if e.ID >= 0 {
				args["task"] = e.ID
			}
			if e.Worker >= 0 {
				args["worker"] = e.Worker
			}
			if e.Err != "" {
				args["detail"] = e.Err
			}
			out = append(out, chromeEvent{
				Name: e.Phase, Phase: "i", Cat: "fault", S: "p",
				Ts: ts, PID: e.Proc + 1, TID: tid(e), Args: args,
			})
		case e.Phase != "":
			args := map[string]any{"task": e.ID, "attempt": e.Attempt}
			if e.Bytes > 0 {
				args["bytes"] = e.Bytes
			}
			if e.HasTile {
				args["tile"] = fmt.Sprintf("(%d,%d)", e.Tile[0], e.Tile[1])
			}
			out = append(out, chromeEvent{
				Name: e.Phase, Phase: "X", Cat: "phase",
				Ts: ts, Dur: float64(e.End-e.Start) / 1e3,
				PID: e.Proc + 1, TID: tid(e), Args: args,
			})
			// Flow arrow: the latest commit of this tile that finished
			// before the fetch began is the transfer's producer.
			if e.Phase == PhaseFetch && e.HasTile && e.ID >= 0 {
				as := commits[e.Tile]
				i := sort.Search(len(as), func(i int) bool { return as[i].endUS > ts })
				if i > 0 {
					src := as[i-1]
					flowID++
					name := fmt.Sprintf("tile(%d,%d)", e.Tile[0], e.Tile[1])
					out = append(out,
						chromeEvent{Name: name, Phase: "s", Cat: "tile", ID: flowID,
							Ts: src.endUS, PID: src.pid, TID: src.tid},
						chromeEvent{Name: name, Phase: "f", Cat: "tile", ID: flowID, BP: "e",
							Ts: ts, PID: e.Proc + 1, TID: tid(e)},
					)
				}
			}
		case e.Attempt == 0:
			out = append(out, chromeEvent{
				Name: e.Name, Phase: "i", S: "t", Ts: ts,
				PID: e.Proc + 1, TID: tid(e),
				Args: map[string]any{"task": e.ID, "outcome": "skipped"},
			})
		default:
			args := map[string]any{
				"task": e.ID, "attempt": e.Attempt, "outcome": e.Outcome.String(),
			}
			if e.Err != "" {
				args["error"] = e.Err
			}
			out = append(out, chromeEvent{
				Name: e.Name, Phase: "X",
				Ts: ts, Dur: float64(e.End-e.Start) / 1e3,
				PID: e.Proc + 1, TID: tid(e), Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode cluster trace: %w", err)
	}
	return nil
}

// ProcStats is one process lane's share of a cluster trace.
type ProcStats struct {
	// Proc is the process lane (0 coordinator, k worker k-1).
	Proc int
	// Tasks is the number of whole task attempts the lane executed.
	Tasks int
	// Compute, Fetch, and Commit are summed sub-phase seconds; Idle is the
	// cluster span not covered by any of them. Lanes without sub-phase
	// spans (in-process execution) charge whole-attempt time to Compute.
	Compute, Fetch, Commit, Idle float64
	// BytesFetched and BytesCommitted are the lane's wire bytes.
	BytesFetched, BytesCommitted int64
}

// TransferEdge aggregates the tile-transfer traffic of one tile: every
// commit→fetch flow of that tile, by total bytes moved.
type TransferEdge struct {
	Tile  [2]int
	Bytes int64
	Count int
}

// ClusterStats summarizes a merged multi-process trace.
type ClusterStats struct {
	// Span is the wall-clock extent in seconds across all lanes.
	Span float64
	// Procs holds one entry per process lane, ordered by lane.
	Procs []ProcStats
	// Faults counts fault instants by kind (worker_evicted, lease_reaped,
	// stale_commit, net_chaos).
	Faults map[string]int
	// Transfers lists tile-transfer edges sorted by descending bytes.
	Transfers []TransferEdge
}

// AnalyzeCluster computes the per-process communication/computation split
// of a merged cluster trace.
func (l *Log) AnalyzeCluster() ClusterStats {
	events := l.Events()
	st := ClusterStats{Faults: map[string]int{}}
	if len(events) == 0 {
		return st
	}

	procs := map[int]*ProcStats{}
	lane := func(p int) *ProcStats {
		ps := procs[p]
		if ps == nil {
			ps = &ProcStats{Proc: p}
			procs[p] = ps
		}
		return ps
	}
	phased := map[int]bool{}
	transfers := map[[2]int]*TransferEdge{}
	commitSeen := map[[3]int]bool{} // (proc, id, attempt)
	var first, last int64
	haveSpan := false
	for _, e := range events {
		if e.End > e.Start {
			if !haveSpan {
				first, last, haveSpan = e.Start, e.End, true
			}
			if e.Start < first {
				first = e.Start
			}
			if e.End > last {
				last = e.End
			}
		}
		d := float64(e.End-e.Start) / 1e9
		switch e.Phase {
		case "":
			if e.Attempt > 0 {
				ps := lane(e.Proc)
				ps.Tasks++
				ps.Compute += d // provisional; replaced below if lane is phased
			}
		case PhaseFetch:
			ps := lane(e.Proc)
			phased[e.Proc] = true
			ps.Fetch += d
			ps.BytesFetched += e.Bytes
			if e.HasTile && e.ID >= 0 {
				t := transfers[e.Tile]
				if t == nil {
					t = &TransferEdge{Tile: e.Tile}
					transfers[e.Tile] = t
				}
				t.Bytes += e.Bytes
				t.Count++
			}
		case PhaseCompute:
			phased[e.Proc] = true
		case PhaseCommit:
			ps := lane(e.Proc)
			phased[e.Proc] = true
			ps.BytesCommitted += e.Bytes
			key := [3]int{e.Proc, e.ID, e.Attempt}
			if !commitSeen[key] {
				commitSeen[key] = true
				ps.Commit += d
			}
		default:
			st.Faults[e.Phase]++
		}
	}
	// Phased lanes: recompute Compute from compute sub-spans so fetch and
	// commit time inside the whole-attempt slice is not double-charged.
	for p := range phased {
		lane(p).Compute = 0
	}
	for _, e := range events {
		if e.Phase == PhaseCompute && phased[e.Proc] {
			lane(e.Proc).Compute += float64(e.End-e.Start) / 1e9
		}
	}

	if haveSpan {
		st.Span = float64(last-first) / 1e9
	}
	pids := make([]int, 0, len(procs))
	for p := range procs {
		pids = append(pids, p)
	}
	sort.Ints(pids)
	for _, p := range pids {
		ps := procs[p]
		if idle := st.Span - ps.Compute - ps.Fetch - ps.Commit; idle > 0 {
			ps.Idle = idle
		}
		st.Procs = append(st.Procs, *ps)
	}
	for _, t := range transfers {
		st.Transfers = append(st.Transfers, *t)
	}
	sort.Slice(st.Transfers, func(i, j int) bool {
		a, b := st.Transfers[i], st.Transfers[j]
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if a.Tile[0] != b.Tile[0] {
			return a.Tile[0] < b.Tile[0]
		}
		return a.Tile[1] < b.Tile[1]
	})
	return st
}
