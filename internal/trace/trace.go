// Package trace collects per-task execution events from the scheduler and
// derives the utilization statistics and Gantt-style visualisations the
// extreme-scale argument is made with: how much of each worker's time is
// spent computing versus idling at barriers.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Event records one executed task.
type Event struct {
	// Name is the kernel label.
	Name string
	// Worker is the worker index that ran the task.
	Worker int
	// Start and End are nanoseconds since the trace epoch.
	Start, End int64
}

// Log accumulates events; it implements sched.Tracer.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty trace log.
func NewLog() *Log { return &Log{} }

// TaskRan implements the scheduler's Tracer interface.
func (l *Log) TaskRan(name string, worker int, start, end int64) {
	l.mu.Lock()
	l.events = append(l.events, Event{Name: name, Worker: worker, Start: start, End: end})
	l.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by start time.
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset discards all recorded events.
func (l *Log) Reset() {
	l.mu.Lock()
	l.events = l.events[:0]
	l.mu.Unlock()
}

// Stats summarizes a trace.
type Stats struct {
	// Tasks is the number of events.
	Tasks int
	// Workers is the number of distinct workers observed.
	Workers int
	// Span is the wall-clock extent in seconds from first start to last end.
	Span float64
	// Busy is the summed task durations in seconds.
	Busy float64
	// Utilization is Busy / (Workers·Span).
	Utilization float64
	// ByKernel maps kernel name to summed seconds.
	ByKernel map[string]float64
}

// Analyze computes summary statistics for the log.
func (l *Log) Analyze() Stats {
	events := l.Events()
	st := Stats{ByKernel: map[string]float64{}}
	if len(events) == 0 {
		return st
	}
	st.Tasks = len(events)
	workers := map[int]bool{}
	first, last := events[0].Start, events[0].End
	for _, e := range events {
		workers[e.Worker] = true
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		d := float64(e.End-e.Start) / 1e9
		st.Busy += d
		st.ByKernel[e.Name] += d
	}
	st.Workers = len(workers)
	st.Span = float64(last-first) / 1e9
	if st.Span > 0 && st.Workers > 0 {
		st.Utilization = st.Busy / (float64(st.Workers) * st.Span)
	}
	return st
}

// Gantt renders an ASCII Gantt chart of the trace to w: one row per worker,
// time bucketed into width columns, each cell showing the initial of the
// kernel that occupied most of that bucket ('.' for idle).
func (l *Log) Gantt(w io.Writer, width int) error {
	events := l.Events()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	if width < 10 {
		width = 10
	}
	first, last := events[0].Start, events[0].End
	maxWorker := 0
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		if e.Worker > maxWorker {
			maxWorker = e.Worker
		}
	}
	span := last - first
	if span <= 0 {
		span = 1
	}
	rows := make([][]byte, maxWorker+1)
	occupancy := make([][]int64, maxWorker+1) // ns of busy time per bucket
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
		occupancy[i] = make([]int64, width)
	}
	bucketNS := span / int64(width)
	if bucketNS == 0 {
		bucketNS = 1
	}
	for _, e := range events {
		b0 := int((e.Start - first) / bucketNS)
		b1 := int((e.End - first) / bucketNS)
		if b1 >= width {
			b1 = width - 1
		}
		initial := byte('?')
		if len(e.Name) > 0 {
			initial = e.Name[0]
		}
		for b := b0; b <= b1; b++ {
			lo := first + int64(b)*bucketNS
			hi := lo + bucketNS
			s, t := e.Start, e.End
			if s < lo {
				s = lo
			}
			if t > hi {
				t = hi
			}
			if d := t - s; d > occupancy[e.Worker][b] {
				occupancy[e.Worker][b] = d
				rows[e.Worker][b] = initial
			}
		}
	}
	for i, row := range rows {
		if _, err := fmt.Fprintf(w, "w%-3d |%s|\n", i, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %s\n", legend(events))
	return err
}

func legend(events []Event) string {
	seen := map[string]bool{}
	var names []string
	for _, e := range events {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("legend:")
	for _, n := range names {
		initial := "?"
		if len(n) > 0 {
			initial = string(n[0])
		}
		fmt.Fprintf(&b, " %s=%s", initial, n)
	}
	return b.String()
}
