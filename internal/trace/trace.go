// Package trace collects per-task execution events from the scheduler and
// derives the utilization statistics, DAG critical-path analysis, and
// Gantt-style visualisations the extreme-scale argument is made with: how
// much of each worker's time is spent computing versus idling at barriers,
// and how close a run gets to its DAG-limited speedup.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"exadla/internal/sched"
)

// Event records one executed task attempt (or one skipped task) with full
// span context. Legacy TaskRan events carry ID -1 and no dependence edges.
type Event struct {
	// ID is the task's submission sequence number, shared by every attempt
	// of the same task; negative for events recorded via the legacy TaskRan
	// interface, which has no task identity.
	ID int
	// Name is the kernel label.
	Name string
	// Worker is the worker index that ran the attempt (-1 for skipped tasks).
	Worker int
	// Attempt is the 1-based attempt number (0 for skipped tasks).
	Attempt int
	// Deps are the IDs of tasks this one depends on (empty for legacy events).
	Deps []int
	// Ready is when the attempt joined the ready queue (nanoseconds since
	// the trace epoch); Start-Ready is the queue wait. Zero when unknown.
	Ready int64
	// Start and End are nanoseconds since the trace epoch.
	Start, End int64
	// Outcome classifies how the attempt ended.
	Outcome sched.Outcome
	// Err is the attempt's failure message, if any.
	Err string
	// Proc is the process lane in a merged cluster trace: 0 for in-process
	// (or coordinator) events, worker id + 1 for distributed worker events.
	Proc int
	// Phase refines a distributed task attempt into sub-spans (PhaseFetch,
	// PhaseCompute, PhaseCommit) or marks a fault instant (PhaseEvicted,
	// PhaseReaped, PhaseStale, PhaseChaos). Empty for whole-attempt spans —
	// the only kind the single-process analyses (Analyze, Gantt, the task
	// accounting of AnalyzeDAG) consume.
	Phase string
	// Bytes is the payload moved during a fetch/commit phase span.
	Bytes int64
	// Tile names the tile a fetch/commit phase span moved, when HasTile.
	Tile    [2]int
	HasTile bool
}

// QueueWait returns Start-Ready, or 0 when the ready time is unknown.
func (e Event) QueueWait() int64 {
	if e.Ready == 0 || e.Ready > e.Start {
		return 0
	}
	return e.Start - e.Ready
}

// Log accumulates events; it implements both sched.Tracer and
// sched.SpanTracer, so a runtime wired with WithTracer(log) emits
// full-fidelity spans. Events are buffered per worker — the hot path takes
// only the owning worker's shard lock, never a global one — and merged (and
// sorted) on demand by Events.
type Log struct {
	mu     sync.Mutex // guards shard-slice growth
	shards atomic.Pointer[[]*logShard]
}

type logShard struct {
	mu     sync.Mutex
	events []Event
}

var (
	_ sched.Tracer     = (*Log)(nil)
	_ sched.SpanTracer = (*Log)(nil)
)

// NewLog returns an empty trace log.
func NewLog() *Log { return &Log{} }

// shard returns the per-worker buffer, growing the shard table
// copy-on-write when a new worker index appears. Skipped-task events
// (worker -1) land in shard 0.
func (l *Log) shard(w int) *logShard {
	if w < 0 {
		w = 0
	}
	if p := l.shards.Load(); p != nil && w < len(*p) {
		return (*p)[w]
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var cur []*logShard
	if p := l.shards.Load(); p != nil {
		cur = *p
	}
	if w < len(cur) {
		return cur[w]
	}
	grown := make([]*logShard, w+1)
	copy(grown, cur)
	for i := len(cur); i <= w; i++ {
		grown[i] = &logShard{}
	}
	l.shards.Store(&grown)
	return grown[w]
}

// TaskRan implements the scheduler's legacy Tracer interface. Runtimes that
// recognise SpanTracer call TaskSpan instead; TaskRan remains for
// simulations and third-party schedulers.
func (l *Log) TaskRan(name string, worker int, start, end int64) {
	s := l.shard(worker)
	s.mu.Lock()
	s.events = append(s.events, Event{
		ID: -1, Name: name, Worker: worker, Attempt: 1,
		Ready: start, Start: start, End: end,
	})
	s.mu.Unlock()
}

// TaskSpan implements sched.SpanTracer: one call per task attempt and per
// skipped task.
func (l *Log) TaskSpan(sp sched.Span) {
	s := l.shard(sp.Worker)
	s.mu.Lock()
	s.events = append(s.events, Event{
		ID: sp.ID, Name: sp.Name, Worker: sp.Worker, Attempt: sp.Attempt,
		Deps: sp.Deps, Ready: sp.Ready, Start: sp.Start, End: sp.End,
		Outcome: sp.Outcome, Err: sp.Err,
	})
	s.mu.Unlock()
}

// Add appends an arbitrary event — the entry point for merged cluster
// traces and deserialized logs, which carry Proc/Phase/Bytes context the
// sched tracer interfaces cannot express. Events land on the shard of
// their process lane.
func (l *Log) Add(e Event) {
	s := l.shard(e.Proc)
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the recorded events merged across worker shards
// and sorted by start time (ID, then attempt, break ties).
func (l *Log) Events() []Event {
	var out []Event
	if p := l.shards.Load(); p != nil {
		for _, s := range *p {
			s.mu.Lock()
			out = append(out, s.events...)
			s.mu.Unlock()
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Attempt < b.Attempt
	})
	return out
}

// Reset discards all recorded events.
func (l *Log) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.shards.Load(); p != nil {
		for _, s := range *p {
			s.mu.Lock()
			s.events = s.events[:0]
			s.mu.Unlock()
		}
	}
}

// Stats summarizes a trace.
type Stats struct {
	// Tasks is the number of executed task attempts (skipped tasks are not
	// counted).
	Tasks int
	// Workers is the number of distinct workers observed.
	Workers int
	// Span is the wall-clock extent in seconds from first start to last end.
	Span float64
	// Busy is the summed task durations in seconds.
	Busy float64
	// Utilization is Busy / (Workers·Span).
	Utilization float64
	// ByKernel maps kernel name to summed seconds.
	ByKernel map[string]float64
}

// Analyze computes summary statistics for the log. Skipped-task events
// (attempt 0) are excluded: they never occupied a worker.
func (l *Log) Analyze() Stats {
	events := l.Events()
	st := Stats{ByKernel: map[string]float64{}}
	var first, last int64
	for _, e := range events {
		if e.Attempt == 0 || e.Phase != "" {
			continue
		}
		if st.Tasks == 0 {
			first, last = e.Start, e.End
		}
		st.Tasks++
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		d := float64(e.End-e.Start) / 1e9
		st.Busy += d
		st.ByKernel[e.Name] += d
	}
	if st.Tasks == 0 {
		return st
	}
	workers := map[int]bool{}
	for _, e := range events {
		if e.Attempt > 0 && e.Worker >= 0 && e.Phase == "" {
			workers[e.Worker] = true
		}
	}
	st.Workers = len(workers)
	st.Span = float64(last-first) / 1e9
	if st.Span > 0 && st.Workers > 0 {
		st.Utilization = st.Busy / (float64(st.Workers) * st.Span)
	}
	return st
}

// Gantt renders an ASCII Gantt chart of the trace to w: one row per worker,
// time bucketed into width columns, each cell showing the initial of the
// kernel that occupied most of that bucket ('.' for idle). Skipped-task
// events have no worker lane and are omitted.
func (l *Log) Gantt(w io.Writer, width int) error {
	all := l.Events()
	events := all[:0:0]
	for _, e := range all {
		if e.Attempt > 0 && e.Worker >= 0 && e.Phase == "" {
			events = append(events, e)
		}
	}
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	if width < 10 {
		width = 10
	}
	first, last := events[0].Start, events[0].End
	maxWorker := 0
	for _, e := range events {
		if e.Start < first {
			first = e.Start
		}
		if e.End > last {
			last = e.End
		}
		if e.Worker > maxWorker {
			maxWorker = e.Worker
		}
	}
	span := last - first
	if span <= 0 {
		span = 1
	}
	rows := make([][]byte, maxWorker+1)
	occupancy := make([][]int64, maxWorker+1) // ns of busy time per bucket
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
		occupancy[i] = make([]int64, width)
	}
	bucketNS := span / int64(width)
	if bucketNS == 0 {
		bucketNS = 1
	}
	for _, e := range events {
		b0 := int((e.Start - first) / bucketNS)
		b1 := int((e.End - first) / bucketNS)
		if b1 >= width {
			b1 = width - 1
		}
		initial := byte('?')
		if len(e.Name) > 0 {
			initial = e.Name[0]
		}
		for b := b0; b <= b1; b++ {
			lo := first + int64(b)*bucketNS
			hi := lo + bucketNS
			s, t := e.Start, e.End
			if s < lo {
				s = lo
			}
			if t > hi {
				t = hi
			}
			if d := t - s; d > occupancy[e.Worker][b] {
				occupancy[e.Worker][b] = d
				rows[e.Worker][b] = initial
			}
		}
	}
	for i, row := range rows {
		if _, err := fmt.Fprintf(w, "w%-3d |%s|\n", i, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %s\n", legend(events))
	return err
}

func legend(events []Event) string {
	seen := map[string]bool{}
	var names []string
	for _, e := range events {
		if !seen[e.Name] {
			seen[e.Name] = true
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("legend:")
	for _, n := range names {
		initial := "?"
		if len(n) > 0 {
			initial = string(n[0])
		}
		fmt.Fprintf(&b, " %s=%s", initial, n)
	}
	return b.String()
}
