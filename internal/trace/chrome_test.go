// Chrome/Perfetto export tests for the span-model additions: dependence
// flow events, counter tracks, the skipped-task lane, and span args.
package trace_test

import (
	"encoding/json"
	"strings"
	"testing"

	"exadla/internal/sched"
	"exadla/internal/trace"
)

func decodeChrome(t *testing.T, l *trace.Log) []map[string]any {
	t.Helper()
	var sb strings.Builder
	if err := l.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	return events
}

func byPhase(events []map[string]any) map[string][]map[string]any {
	m := map[string][]map[string]any{}
	for _, e := range events {
		ph := e["ph"].(string)
		m[ph] = append(m[ph], e)
	}
	return m
}

func TestWriteChromeFlowEvents(t *testing.T) {
	l := trace.NewLog()
	// a on w0, b on w1 depends on a; flow must connect a.End → b.Start.
	l.TaskSpan(span(0, "a", 0, nil, 0, 1000))
	l.TaskSpan(span(1, "b", 1, []int{0}, 1000, 3000))
	ph := byPhase(decodeChrome(t, l))

	if len(ph["s"]) != 1 || len(ph["f"]) != 1 {
		t.Fatalf("flow events: %d starts, %d finishes, want 1+1", len(ph["s"]), len(ph["f"]))
	}
	s, f := ph["s"][0], ph["f"][0]
	if s["id"] != f["id"] {
		t.Errorf("flow ids differ: %v vs %v", s["id"], f["id"])
	}
	if s["ts"].(float64) != 1 || s["tid"].(float64) != 0 {
		t.Errorf("flow start at ts=%v tid=%v, want producer end 1µs on lane 0", s["ts"], s["tid"])
	}
	if f["ts"].(float64) != 1 || f["tid"].(float64) != 1 {
		t.Errorf("flow finish at ts=%v tid=%v, want consumer start 1µs on lane 1", f["ts"], f["tid"])
	}
	if f["bp"] != "e" {
		t.Errorf("flow finish bp=%v, want \"e\"", f["bp"])
	}
}

func TestWriteChromeFlowTargetsFirstAttempt(t *testing.T) {
	l := trace.NewLog()
	l.TaskSpan(span(0, "a", 0, nil, 0, 1000))
	// b retried once: the flow must land on attempt 1, and the span args
	// must carry attempt/outcome.
	l.TaskSpan(sched.Span{ID: 1, Name: "b", Worker: 1, Attempt: 1, Deps: []int{0},
		Ready: 1000, Start: 1000, End: 2000, Outcome: sched.OutcomeRetried, Err: "transient"})
	l.TaskSpan(sched.Span{ID: 1, Name: "b", Worker: 0, Attempt: 2, Deps: []int{0},
		Ready: 2000, Start: 2000, End: 4000, Outcome: sched.OutcomeOK})
	ph := byPhase(decodeChrome(t, l))

	if len(ph["s"]) != 1 {
		t.Fatalf("%d flow starts, want 1 (one per edge, not per attempt)", len(ph["s"]))
	}
	if ts := ph["f"][0]["ts"].(float64); ts != 1 {
		t.Errorf("flow lands at %vµs, want first attempt start 1µs", ts)
	}
	var sawRetry, sawErr bool
	for _, x := range ph["X"] {
		args := x["args"].(map[string]any)
		if args["outcome"] == "retried" {
			sawRetry = true
			if args["error"] == "transient" {
				sawErr = true
			}
		}
	}
	if !sawRetry || !sawErr {
		t.Errorf("retried attempt args missing: retry=%v err=%v", sawRetry, sawErr)
	}
}

func TestWriteChromeCountersAndSkipped(t *testing.T) {
	l := trace.NewLog()
	l.TaskSpan(sched.Span{ID: 0, Name: "a", Worker: 0, Attempt: 1,
		Ready: 500, Start: 1000, End: 2000, Outcome: sched.OutcomeFailed, Err: "boom"})
	l.TaskSpan(sched.Span{ID: 1, Name: "b", Worker: -1, Attempt: 0, Deps: []int{0},
		Start: 2000, End: 2000, Outcome: sched.OutcomeSkipped})
	events := decodeChrome(t, l)
	ph := byPhase(events)

	counters := map[string]bool{}
	for _, c := range ph["C"] {
		counters[c["name"].(string)] = true
	}
	if !counters["queue depth"] || !counters["busy workers"] {
		t.Errorf("counter tracks %v, want queue depth and busy workers", counters)
	}
	// Queue depth rises to 1 at Ready=500ns (0.5µs), back to 0 at Start.
	var sawDepth1 bool
	for _, c := range ph["C"] {
		if c["name"] == "queue depth" && c["ts"].(float64) == 0.5 &&
			c["args"].(map[string]any)["ready"].(float64) == 1 {
			sawDepth1 = true
		}
	}
	if !sawDepth1 {
		t.Error("queue depth never showed the waiting task")
	}

	if len(ph["i"]) != 1 {
		t.Fatalf("%d instant events, want 1 skipped marker", len(ph["i"]))
	}
	skipLane := ph["i"][0]["tid"].(float64)
	var named bool
	for _, m := range ph["M"] {
		if m["name"] == "thread_name" && m["tid"].(float64) == skipLane &&
			m["args"].(map[string]any)["name"] == "skipped" {
			named = true
		}
	}
	if !named {
		t.Errorf("skipped lane %v has no thread_name metadata", skipLane)
	}
}
