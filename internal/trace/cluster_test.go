// Cluster-trace tests: the native events format round-trips, the merged
// multi-process analysis splits each lane into compute/fetch/commit/idle,
// the comm-aware critical path never reports a better bound than the
// compute-only one, and the Perfetto export carries process lanes, flow
// arrows, and fault instants.
package trace_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"exadla/internal/sched"
	"exadla/internal/trace"
)

// clusterFixture builds a two-worker cluster log: task 0 on worker 0,
// task 1 (depending on 0) on worker 1, each split into fetch/compute/
// commit sub-phases inside the whole-attempt span, plus one eviction
// instant. Worker 1's fetch of tile (0,0) starts after worker 0's commit
// of it ends, so the export gets exactly one commit→fetch flow.
func clusterFixture() *trace.Log {
	l := trace.NewLog()
	add := func(e trace.Event) { l.Add(e) }
	// Worker 0 (lane 1): task 0 over [0, 1s].
	add(trace.Event{ID: 0, Name: "potrf", Worker: 0, Attempt: 1, Proc: 1,
		Start: 0, End: 1 * sec, Outcome: sched.OutcomeOK})
	add(trace.Event{ID: 0, Worker: 0, Attempt: 1, Proc: 1, Phase: trace.PhaseFetch,
		Start: 0, End: sec / 5, Bytes: 800, Tile: [2]int{0, 0}, HasTile: true})
	add(trace.Event{ID: 0, Worker: 0, Attempt: 1, Proc: 1, Phase: trace.PhaseCompute,
		Start: sec / 5, End: 8 * sec / 10})
	add(trace.Event{ID: 0, Worker: 0, Attempt: 1, Proc: 1, Phase: trace.PhaseCommit,
		Start: 8 * sec / 10, End: 1 * sec, Bytes: 800, Tile: [2]int{0, 0}, HasTile: true})
	// Worker 1 (lane 2): task 1 over [1.2s, 2.2s], reading tile (0,0).
	add(trace.Event{ID: 1, Name: "trsm", Worker: 1, Attempt: 1, Proc: 2, Deps: []int{0},
		Start: 12 * sec / 10, End: 22 * sec / 10, Outcome: sched.OutcomeOK})
	add(trace.Event{ID: 1, Worker: 1, Attempt: 1, Proc: 2, Phase: trace.PhaseFetch,
		Start: 12 * sec / 10, End: 14 * sec / 10, Bytes: 800, Tile: [2]int{0, 0}, HasTile: true})
	add(trace.Event{ID: 1, Worker: 1, Attempt: 1, Proc: 2, Phase: trace.PhaseCompute,
		Start: 14 * sec / 10, End: 2 * sec})
	add(trace.Event{ID: 1, Worker: 1, Attempt: 1, Proc: 2, Phase: trace.PhaseCommit,
		Start: 2 * sec, End: 22 * sec / 10, Bytes: 800, Tile: [2]int{1, 0}, HasTile: true})
	// The coordinator evicts worker 1 afterwards (lane 2 instant).
	add(trace.Event{ID: -1, Worker: 1, Proc: 2, Phase: trace.PhaseEvicted,
		Start: 23 * sec / 10, End: 23 * sec / 10, Err: "heartbeat silence"})
	return l
}

func TestEventsJSONRoundTrip(t *testing.T) {
	l := clusterFixture()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := l.Events(), got.Events()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed events:\n%v\n%v", a, b)
	}
}

func TestReadJSONRejectsUnknownFormat(t *testing.T) {
	if _, err := trace.ReadJSON(strings.NewReader(`{"format":"nope","events":[]}`)); err == nil {
		t.Fatal("want error for unknown format")
	}
	if _, err := trace.ReadJSON(strings.NewReader(`[1,2,3]`)); err == nil {
		t.Fatal("want error for non-envelope JSON")
	}
}

func TestAnalyzeCluster(t *testing.T) {
	cs := clusterFixture().AnalyzeCluster()
	if len(cs.Procs) != 2 {
		t.Fatalf("lanes %d, want 2", len(cs.Procs))
	}
	// Span covers the durationful slices; the trailing zero-duration
	// eviction instant does not stretch it.
	if math.Abs(cs.Span-2.2) > 1e-9 {
		t.Errorf("span %v, want 2.2", cs.Span)
	}
	for i, want := range []struct {
		proc, tasks                  int
		compute, fetch, commit       float64
		bytesFetched, bytesCommitted int64
	}{
		{1, 1, 0.6, 0.2, 0.2, 800, 800},
		{2, 1, 0.6, 0.2, 0.2, 800, 800},
	} {
		p := cs.Procs[i]
		if p.Proc != want.proc || p.Tasks != want.tasks {
			t.Errorf("lane %d: proc=%d tasks=%d, want %d/%d", i, p.Proc, p.Tasks, want.proc, want.tasks)
		}
		if math.Abs(p.Compute-want.compute) > 1e-9 || math.Abs(p.Fetch-want.fetch) > 1e-9 ||
			math.Abs(p.Commit-want.commit) > 1e-9 {
			t.Errorf("lane %d: compute=%v fetch=%v commit=%v", i, p.Compute, p.Fetch, p.Commit)
		}
		if math.Abs(p.Idle-(cs.Span-1.0)) > 1e-9 {
			t.Errorf("lane %d: idle %v, want %v", i, p.Idle, cs.Span-1.0)
		}
		if p.BytesFetched != want.bytesFetched || p.BytesCommitted != want.bytesCommitted {
			t.Errorf("lane %d: fetched=%d committed=%d", i, p.BytesFetched, p.BytesCommitted)
		}
	}
	if cs.Faults[trace.PhaseEvicted] != 1 || len(cs.Faults) != 1 {
		t.Errorf("faults %v, want one eviction", cs.Faults)
	}
	if len(cs.Transfers) != 1 || cs.Transfers[0].Tile != [2]int{0, 0} ||
		cs.Transfers[0].Bytes != 1600 || cs.Transfers[0].Count != 2 {
		t.Errorf("transfers %v, want tile(0,0) 1600 B over 2 fetches", cs.Transfers)
	}
}

func TestAnalyzeDAGCommAware(t *testing.T) {
	d := clusterFixture().AnalyzeDAG()
	// Compute weight comes from the compute sub-spans (0.6 s each), not the
	// whole-attempt durations — fetch and commit must not be double-counted.
	if math.Abs(d.T1-1.2) > 1e-9 {
		t.Errorf("T1 %v, want 1.2 (compute sub-spans only)", d.T1)
	}
	if math.Abs(d.TInf-1.2) > 1e-9 {
		t.Errorf("TInf %v, want 1.2", d.TInf)
	}
	// The comm-aware path adds each task's fetch+commit time: 2×(0.6+0.4).
	if math.Abs(d.TCommInf-2.0) > 1e-9 {
		t.Errorf("TCommInf %v, want 2.0", d.TCommInf)
	}
	if d.TCommInf < d.TInf {
		t.Errorf("TCommInf %v < TInf %v", d.TCommInf, d.TInf)
	}
	for _, p := range []int{1, 2, 4, 64} {
		dag, comm := d.SpeedupBound(p), d.CommSpeedupBound(p)
		if comm > dag+1e-12 {
			t.Errorf("p=%d: comm-limited bound %v exceeds DAG-limited %v", p, comm, dag)
		}
	}
	if math.Abs(d.CommSpeedupBound(8)-0.6) > 1e-9 {
		t.Errorf("CommSpeedupBound(8) %v, want T1/TCommInf = 0.6", d.CommSpeedupBound(8))
	}
	if d.BytesFetched != 1600 {
		t.Errorf("BytesFetched %d, want 1600", d.BytesFetched)
	}
	if math.Abs(d.FetchTime-0.4) > 1e-9 || math.Abs(d.CommitTime-0.4) > 1e-9 {
		t.Errorf("FetchTime=%v CommitTime=%v, want 0.4/0.4", d.FetchTime, d.CommitTime)
	}
}

func TestAnalyzeDAGCommitDedup(t *testing.T) {
	l := trace.NewLog()
	l.Add(trace.Event{ID: 0, Name: "gemm", Worker: 0, Attempt: 1, Proc: 1,
		Start: 0, End: 1 * sec, Outcome: sched.OutcomeOK})
	l.Add(trace.Event{ID: 0, Worker: 0, Attempt: 1, Proc: 1, Phase: trace.PhaseCompute,
		Start: 0, End: sec / 2})
	// One commit RPC writing three tiles records three spans sharing the
	// same interval; only one copy of the interval may be charged.
	for i := 0; i < 3; i++ {
		l.Add(trace.Event{ID: 0, Worker: 0, Attempt: 1, Proc: 1, Phase: trace.PhaseCommit,
			Start: sec / 2, End: 1 * sec, Bytes: 100, Tile: [2]int{i, 0}, HasTile: true})
	}
	d := l.AnalyzeDAG()
	if math.Abs(d.CommitTime-0.5) > 1e-9 {
		t.Errorf("CommitTime %v, want 0.5 (deduped per attempt)", d.CommitTime)
	}
	if math.Abs(d.TCommInf-1.0) > 1e-9 {
		t.Errorf("TCommInf %v, want 1.0", d.TCommInf)
	}
}

func TestWriteChromeClusterShape(t *testing.T) {
	var buf bytes.Buffer
	if err := clusterFixture().WriteChromeCluster(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	names := map[string]int{}
	var lanes []string
	flows := map[string]int{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		names[name]++
		if name == "process_name" {
			args := e["args"].(map[string]any)
			lanes = append(lanes, args["name"].(string))
		}
		if ph == "s" || ph == "f" {
			flows[ph]++
		}
		if cat, _ := e["cat"].(string); cat == "fault" {
			if ph != "i" {
				t.Errorf("fault event has phase %q, want instant", ph)
			}
		}
	}
	want := []string{"worker 0", "worker 1"}
	if !reflect.DeepEqual(lanes, want) {
		t.Errorf("process lanes %v, want %v", lanes, want)
	}
	if flows["s"] != 1 || flows["f"] != 1 {
		t.Errorf("flow events s=%d f=%d, want one commit→fetch pair", flows["s"], flows["f"])
	}
	if names[trace.PhaseEvicted] != 1 {
		t.Errorf("eviction instants %d, want 1", names[trace.PhaseEvicted])
	}
	for _, phase := range []string{trace.PhaseFetch, trace.PhaseCompute, trace.PhaseCommit} {
		if names[phase] != 2 {
			t.Errorf("%s slices %d, want 2", phase, names[phase])
		}
	}
}
