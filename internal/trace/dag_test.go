// Critical-path analysis tests: hand-built DAGs with known critical paths,
// the fork–join vs dataflow Cholesky comparison the paper's argument rests
// on, and the work/span sandwich property T∞ ≤ makespan ≤ T₁ on simulated
// greedy schedules.
package trace_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

const sec = int64(1e9)

// span is a shorthand builder for test spans.
func span(id int, name string, worker int, deps []int, start, end int64) sched.Span {
	return sched.Span{ID: id, Name: name, Worker: worker, Attempt: 1,
		Deps: deps, Ready: start, Start: start, End: end}
}

func TestAnalyzeDAGChain(t *testing.T) {
	l := trace.NewLog()
	// a(1s) → b(2s) → c(3s), strictly sequential.
	l.TaskSpan(span(0, "a", 0, nil, 0, 1*sec))
	l.TaskSpan(span(1, "b", 0, []int{0}, 1*sec, 3*sec))
	l.TaskSpan(span(2, "c", 0, []int{1}, 3*sec, 6*sec))
	d := l.AnalyzeDAG()
	if d.Tasks != 3 || d.Attempts != 3 || d.Retries != 0 {
		t.Fatalf("tasks=%d attempts=%d retries=%d", d.Tasks, d.Attempts, d.Retries)
	}
	if math.Abs(d.T1-6) > 1e-9 || math.Abs(d.TInf-6) > 1e-9 {
		t.Errorf("T1=%v TInf=%v, want 6, 6", d.T1, d.TInf)
	}
	if d.CritTasks != 3 || len(d.CritPath) != 3 ||
		d.CritPath[0] != 0 || d.CritPath[1] != 1 || d.CritPath[2] != 2 {
		t.Errorf("critical path %v", d.CritPath)
	}
	if math.Abs(d.SpeedupBound(8)-1) > 1e-9 {
		t.Errorf("chain speedup bound %v, want 1", d.SpeedupBound(8))
	}
}

func TestAnalyzeDAGDiamond(t *testing.T) {
	l := trace.NewLog()
	// a(1s) → {b(2s), c(3s)} → d(1s): critical path a-c-d, 5s of 7s work.
	l.TaskSpan(span(0, "a", 0, nil, 0, 1*sec))
	l.TaskSpan(span(1, "b", 0, []int{0}, 1*sec, 3*sec))
	l.TaskSpan(span(2, "c", 1, []int{0}, 1*sec, 4*sec))
	l.TaskSpan(span(3, "d", 0, []int{1, 2}, 4*sec, 5*sec))
	d := l.AnalyzeDAG()
	if math.Abs(d.T1-7) > 1e-9 || math.Abs(d.TInf-5) > 1e-9 {
		t.Fatalf("T1=%v TInf=%v, want 7, 5", d.T1, d.TInf)
	}
	if len(d.CritPath) != 3 || d.CritPath[0] != 0 || d.CritPath[1] != 2 || d.CritPath[2] != 3 {
		t.Errorf("critical path %v, want [0 2 3]", d.CritPath)
	}
	if math.Abs(d.CritShare["c"]-0.6) > 1e-9 || math.Abs(d.CritShare["a"]-0.2) > 1e-9 {
		t.Errorf("critical-path share %v", d.CritShare)
	}
	if d.Workers != 2 {
		t.Errorf("workers %d, want 2", d.Workers)
	}
	if math.Abs(d.Makespan-5) > 1e-9 || math.Abs(d.Speedup()-7.0/5) > 1e-9 {
		t.Errorf("makespan=%v speedup=%v", d.Makespan, d.Speedup())
	}
	// Brent: T1/p + TInf.
	if math.Abs(d.BrentBound(2)-(3.5+5)) > 1e-9 {
		t.Errorf("Brent bound %v", d.BrentBound(2))
	}
}

func TestAnalyzeDAGRetriesStretchPaths(t *testing.T) {
	l := trace.NewLog()
	// Task 0 runs twice (first attempt retried): its weight is both
	// attempts, so the path through it stretches to 3s.
	l.TaskSpan(sched.Span{ID: 0, Name: "flaky", Worker: 0, Attempt: 1,
		Ready: 0, Start: 0, End: 1 * sec, Outcome: sched.OutcomeRetried, Err: "transient"})
	l.TaskSpan(sched.Span{ID: 0, Name: "flaky", Worker: 0, Attempt: 2,
		Ready: 1 * sec, Start: 1 * sec, End: 3 * sec, Outcome: sched.OutcomeOK})
	l.TaskSpan(span(1, "after", 0, []int{0}, 3*sec, 4*sec))
	d := l.AnalyzeDAG()
	if d.Tasks != 2 || d.Attempts != 3 || d.Retries != 1 {
		t.Fatalf("tasks=%d attempts=%d retries=%d", d.Tasks, d.Attempts, d.Retries)
	}
	if math.Abs(d.TInf-4) > 1e-9 || math.Abs(d.T1-4) > 1e-9 {
		t.Errorf("T1=%v TInf=%v, want 4, 4", d.T1, d.TInf)
	}
}

func TestAnalyzeDAGLegacyEvents(t *testing.T) {
	l := trace.NewLog()
	l.TaskRan("a", 0, 0, 2*sec)
	l.TaskRan("b", 1, 0, 3*sec)
	d := l.AnalyzeDAG()
	// No edges recorded: tasks are independent, TInf is the longest task.
	if d.Tasks != 2 || math.Abs(d.TInf-3) > 1e-9 || math.Abs(d.T1-5) > 1e-9 {
		t.Errorf("tasks=%d T1=%v TInf=%v", d.Tasks, d.T1, d.TInf)
	}
}

// logFromSim replays a simulated schedule into a trace log as spans, with
// barrier deps flattened — the same wiring cmd/exatrace uses.
func logFromSim(g *sched.Graph, workers int) (*trace.Log, sched.SimResult) {
	res, events := sched.SimulateEvents(g, workers)
	flat := g.FlattenBarriers()
	l := trace.NewLog()
	for _, e := range events {
		l.TaskSpan(sched.Span{ID: e.ID, Name: e.Name, Worker: e.Worker, Attempt: 1,
			Deps:  flat[e.ID],
			Ready: int64(e.Ready * 1e9),
			Start: int64(e.Start * 1e9), End: int64(e.End * 1e9)})
	}
	return l, res
}

// unitCosts gives every non-barrier node cost 1, making structural
// comparisons deterministic.
func unitCosts(g *sched.Graph) {
	for i := range g.Nodes {
		if !g.Nodes[i].Barrier {
			g.Nodes[i].Cost = 1
		}
	}
}

func TestDAGForkJoinVsDataflowCholesky(t *testing.T) {
	const n, nb = 8 * 16, 16 // 8×8 tiles at unit cost
	rng := rand.New(rand.NewSource(3))
	src := matgen.DiagDomSPD[float64](rng, n)

	recDF := sched.NewModelRecorder()
	if err := core.Cholesky(recDF, tile.FromColMajor(n, n, src, n, nb)); err != nil {
		t.Fatal(err)
	}
	recFJ := sched.NewModelRecorder()
	if err := core.CholeskyForkJoin(recFJ, tile.FromColMajor(n, n, src, n, nb)); err != nil {
		t.Fatal(err)
	}
	gDF, gFJ := recDF.Graph(), recFJ.Graph()
	unitCosts(gDF)
	unitCosts(gFJ)

	const workers = 8
	lDF, _ := logFromSim(gDF, workers)
	lFJ, _ := logFromSim(gFJ, workers)
	dDF, dFJ := lDF.AnalyzeDAG(), lFJ.AnalyzeDAG()

	// Same work, and at unit cost even the same critical path — the
	// fork–join penalty is that barriers forbid overlapping phases, so its
	// schedule lands further from the shared DAG-limited bound.
	if math.Abs(dDF.T1-dFJ.T1) > 1e-9 {
		t.Fatalf("T1 differs: dataflow %v, fork-join %v", dDF.T1, dFJ.T1)
	}
	if dFJ.TInf < dDF.TInf {
		t.Errorf("fork-join TInf %v shorter than dataflow %v", dFJ.TInf, dDF.TInf)
	}
	if dFJ.Makespan <= dDF.Makespan {
		t.Errorf("fork-join makespan %v not longer than dataflow %v", dFJ.Makespan, dDF.Makespan)
	}
	fracDF := dDF.Speedup() / dDF.SpeedupBound(workers)
	fracFJ := dFJ.Speedup() / dFJ.SpeedupBound(workers)
	if fracDF <= fracFJ {
		t.Errorf("dataflow achieves %.2f of its DAG-limited speedup, fork-join %.2f — want dataflow higher",
			fracDF, fracFJ)
	}
	// The DAG view must agree with the graph's own critical path (unit
	// costs make both exact).
	if math.Abs(dDF.TInf-gDF.CriticalPath()) > 1e-9 {
		t.Errorf("AnalyzeDAG TInf %v != graph critical path %v", dDF.TInf, gDF.CriticalPath())
	}
	// potrf is the sequential spine of the tiled Cholesky: it must hold a
	// substantial share of the dataflow critical path.
	if dDF.CritShare["potrf"] <= 0 {
		t.Errorf("potrf absent from critical path share: %v", dDF.CritShare)
	}
}

// TestDAGSandwichProperty checks T∞ ≤ makespan ≤ T₁ for greedy simulated
// schedules of random DAGs at several worker counts.
func TestDAGSandwichProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := &sched.Graph{}
		nNodes := 5 + rng.Intn(40)
		for i := 0; i < nNodes; i++ {
			node := sched.GraphNode{Name: "k", Cost: 0.1 + rng.Float64()}
			for d := 0; d < i; d++ {
				if rng.Float64() < 0.15 {
					node.Deps = append(node.Deps, d)
				}
			}
			g.Nodes = append(g.Nodes, node)
		}
		for _, workers := range []int{1, 2, 7} {
			l, res := logFromSim(g, workers)
			d := l.AnalyzeDAG()
			const eps = 1e-9
			if d.TInf > d.Makespan+eps {
				t.Fatalf("trial %d p=%d: TInf %v > makespan %v", trial, workers, d.TInf, d.Makespan)
			}
			if d.Makespan > d.T1+eps {
				t.Fatalf("trial %d p=%d: makespan %v > T1 %v", trial, workers, d.Makespan, d.T1)
			}
			if math.Abs(d.Makespan-res.Makespan) > 1e-6 {
				t.Fatalf("trial %d p=%d: DAG makespan %v != simulated %v", trial, workers, d.Makespan, res.Makespan)
			}
			// Brent's theorem: the greedy schedule beats T1/p + TInf.
			if d.Makespan > d.BrentBound(workers)+eps {
				t.Fatalf("trial %d p=%d: makespan %v above Brent bound %v",
					trial, workers, d.Makespan, d.BrentBound(workers))
			}
		}
	}
}
