package autotune

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSearchFindsMinimum(t *testing.T) {
	// Synthetic U-shaped cost: minimum at 64.
	cost := func(p int) float64 {
		d := float64(p - 64)
		return 1 + d*d/1000
	}
	res := Search([]int{16, 32, 64, 128, 256}, 3, cost)
	if res.Best != 64 {
		t.Errorf("best %d, want 64", res.Best)
	}
	if len(res.Table) != 5 {
		t.Errorf("table has %d entries", len(res.Table))
	}
}

func TestSearchMinOfReps(t *testing.T) {
	// Noisy measurements: later reps are faster; min-of-reps must keep the
	// minimum.
	calls := map[int]int{}
	measure := func(p int) float64 {
		calls[p]++
		return float64(10 - calls[p]) // 9, 8, 7...
	}
	res := Search([]int{1}, 4, measure)
	if res.Table[0].Seconds != 6 {
		t.Errorf("min-of-reps %v, want 6", res.Table[0].Seconds)
	}
}

func TestSearchPrunes(t *testing.T) {
	calls := map[int]int{}
	measure := func(p int) float64 {
		calls[p]++
		if p == 999 {
			return 100 // hopeless candidate
		}
		return 1
	}
	res := Search([]int{1, 999}, 5, measure)
	if calls[999] != 1 {
		t.Errorf("hopeless candidate measured %d times, want 1", calls[999])
	}
	if res.Best != 1 {
		t.Errorf("best %d", res.Best)
	}
	var pruned bool
	for _, m := range res.Table {
		if m.Param == 999 && m.Pruned {
			pruned = true
		}
	}
	if !pruned {
		t.Error("pruned candidate not marked")
	}
}

func TestSearchSkipsInvalid(t *testing.T) {
	measure := func(p int) float64 {
		if p == 7 {
			return -1 // invalid parameter
		}
		return float64(p)
	}
	res := Search([]int{7, 3}, 1, measure)
	if res.Best != 3 {
		t.Errorf("best %d, want 3", res.Best)
	}
	if len(res.Table) != 1 {
		t.Errorf("invalid candidate appears in table")
	}
}

func TestSearchEmptyCandidates(t *testing.T) {
	res := Search(nil, 3, func(int) float64 { return 1 })
	if res.Best != -1 {
		t.Errorf("best %d for empty candidates", res.Best)
	}
}

func TestTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tune.json")
	tab := NewTable()
	tab.Set(Key("cholesky", 1024, 4), 96)
	tab.Set(Key("qr", 512, 2), 64)
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := loaded.Lookup(Key("cholesky", 1024, 4)); !ok || v != 96 {
		t.Errorf("lookup: %d %v", v, ok)
	}
	if len(loaded.Keys()) != 2 {
		t.Errorf("keys: %v", loaded.Keys())
	}
}

func TestLoadMissingFile(t *testing.T) {
	tab, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Keys()) != 0 {
		t.Error("missing file should load empty")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestTimeMeasures(t *testing.T) {
	s := Time(func() {
		x := 0.0
		for i := 0; i < 10000; i++ {
			x += float64(i)
		}
		_ = x
	})
	if s < 0 {
		t.Error("negative time")
	}
}

func TestGlobalKey(t *testing.T) {
	got := GlobalKey("gemm.mr")
	if got != "global/gemm.mr" {
		t.Fatalf("GlobalKey = %q", got)
	}
	// Global keys must round-trip through the table like any other key.
	tb := NewTable()
	tb.Set(got, 8)
	if v, ok := tb.Lookup(GlobalKey("gemm.mr")); !ok || v != 8 {
		t.Fatalf("Lookup(global key) = %d, %v", v, ok)
	}
}
