// Package autotune implements the self-adapting layer the keynote calls
// for: empirical search over algorithm parameters (tile size, block size)
// with a persistent tuning table, replacing per-machine hand tuning.
package autotune

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Measurement is one (parameter, best-observed-seconds) pair.
type Measurement struct {
	Param   int     `json:"param"`
	Seconds float64 `json:"seconds"`
	// Pruned marks candidates abandoned after the first repetition because
	// they were already far off the best.
	Pruned bool `json:"pruned,omitempty"`
}

// Result is the outcome of one Search.
type Result struct {
	Best  int           `json:"best"`
	Table []Measurement `json:"table"`
}

// pruneFactor abandons a candidate whose first measurement exceeds this
// multiple of the best time seen so far.
const pruneFactor = 3.0

// Search measures every candidate parameter reps times (minimum-of-reps,
// the standard noise filter for timing) and returns the fastest. measure
// runs the workload for one parameter value and returns elapsed seconds;
// if it returns a negative value the candidate is treated as invalid and
// skipped. Candidates whose first measurement is more than pruneFactor×
// the incumbent best are not re-measured.
func Search(candidates []int, reps int, measure func(param int) float64) Result {
	if reps < 1 {
		reps = 1
	}
	res := Result{Best: -1}
	best := math.Inf(1)
	for _, p := range candidates {
		first := measure(p)
		if first < 0 {
			continue
		}
		m := Measurement{Param: p, Seconds: first}
		if first > pruneFactor*best {
			m.Pruned = true
			res.Table = append(res.Table, m)
			continue
		}
		for r := 1; r < reps; r++ {
			if s := measure(p); s >= 0 && s < m.Seconds {
				m.Seconds = s
			}
		}
		res.Table = append(res.Table, m)
		if m.Seconds < best {
			best = m.Seconds
			res.Best = p
		}
	}
	return res
}

// Time runs f once and returns elapsed seconds — the usual measure
// callback body.
func Time(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// Table is a persistent map from workload keys to tuned parameters, stored
// as JSON. It is safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	Entries map[string]int `json:"entries"`
}

// NewTable returns an empty tuning table.
func NewTable() *Table {
	return &Table{Entries: map[string]int{}}
}

// Key builds the canonical lookup key for an operation instance.
func Key(op string, n, workers int) string {
	return fmt.Sprintf("%s/n=%d/w=%d", op, n, workers)
}

// GlobalKey builds the lookup key for a machine-global parameter — one that
// does not vary with problem size or worker count, such as the GEMM
// register- and cache-blocking factors tuned by exatune.
func GlobalKey(param string) string {
	return "global/" + param
}

// Lookup returns the tuned parameter for key, if present.
func (t *Table) Lookup(key string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.Entries[key]
	return v, ok
}

// Set records a tuned parameter.
func (t *Table) Set(key string, v int) {
	t.mu.Lock()
	t.Entries[key] = v
	t.mu.Unlock()
}

// Keys returns the stored keys in sorted order.
func (t *Table) Keys() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ks := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Save writes the table as JSON to path.
func (t *Table) Save(path string) error {
	t.mu.Lock()
	data, err := json.MarshalIndent(t, "", "  ")
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("autotune: encode table: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a table from path; a missing file yields an empty table.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewTable(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("autotune: read table: %w", err)
	}
	t := NewTable()
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("autotune: decode table: %w", err)
	}
	if t.Entries == nil {
		t.Entries = map[string]int{}
	}
	return t, nil
}
