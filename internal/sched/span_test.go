// Span-model tests: the runtime must emit one full-fidelity span per task
// attempt (and per poisoned task) with correct identities, dependence
// edges, attempt numbers, and outcomes on both the clean and the
// fault-tolerant paths.
package sched_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"exadla/internal/sched"
)

// spanCollector implements both sched.Tracer and sched.SpanTracer; wired
// through WithTracer it receives spans, never TaskRan calls.
type spanCollector struct {
	mu      sync.Mutex
	spans   []sched.Span
	taskRan int
}

func (c *spanCollector) TaskRan(string, int, int64, int64) {
	c.mu.Lock()
	c.taskRan++
	c.mu.Unlock()
}

func (c *spanCollector) TaskSpan(sp sched.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

func (c *spanCollector) byID() map[int][]sched.Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := map[int][]sched.Span{}
	for _, sp := range c.spans {
		m[sp.ID] = append(m[sp.ID], sp)
	}
	return m
}

// counts reads the collector's totals under its lock.
func (c *spanCollector) counts() (spans, taskRan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans), c.taskRan
}

func TestSpansCleanChain(t *testing.T) {
	col := &spanCollector{}
	rt := sched.New(2, sched.WithTracer(col))
	h := sched.Handle(1)
	for i := 0; i < 3; i++ {
		rt.Submit(sched.Task{Name: "step", Writes: []sched.Handle{h}, Fn: func() {}})
	}
	rt.Wait()
	rt.Shutdown()

	nSpans, nTaskRan := col.counts()
	if nTaskRan != 0 {
		t.Errorf("TaskRan called %d times on a SpanTracer", nTaskRan)
	}
	if nSpans != 3 {
		t.Fatalf("got %d spans, want 3", nSpans)
	}
	byID := col.byID()
	for id := 0; id < 3; id++ {
		sps := byID[id]
		if len(sps) != 1 {
			t.Fatalf("task %d: %d spans, want 1", id, len(sps))
		}
		sp := sps[0]
		if sp.Outcome != sched.OutcomeOK || sp.Attempt != 1 || sp.Err != "" {
			t.Errorf("task %d: outcome=%v attempt=%d err=%q", id, sp.Outcome, sp.Attempt, sp.Err)
		}
		if sp.Worker < 0 || sp.Start > sp.End || sp.Ready == 0 || sp.QueueWait() < 0 {
			t.Errorf("task %d: worker=%d ready=%d start=%d end=%d", id, sp.Worker, sp.Ready, sp.Start, sp.End)
		}
		// WAW chain: task i depends exactly on task i-1.
		if id == 0 {
			if len(sp.Deps) != 0 {
				t.Errorf("task 0 deps = %v, want none", sp.Deps)
			}
		} else if len(sp.Deps) != 1 || sp.Deps[0] != id-1 {
			t.Errorf("task %d deps = %v, want [%d]", id, sp.Deps, id-1)
		}
	}
}

func TestSpansRetryAttempts(t *testing.T) {
	col := &spanCollector{}
	rt := sched.New(2, sched.WithTracer(col), sched.WithRetry(5, 0))
	var tries atomic.Int64
	rt.Submit(sched.Task{Name: "flaky", FnErr: func() error {
		if tries.Add(1) <= 2 {
			return errors.New("transient")
		}
		return nil
	}})
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr: %v", err)
	}
	rt.Shutdown()

	sps := col.byID()[0]
	if len(sps) != 3 {
		t.Fatalf("got %d spans, want 3 attempts", len(sps))
	}
	for i, sp := range sps {
		if sp.Attempt != i+1 {
			t.Errorf("span %d: attempt %d, want %d", i, sp.Attempt, i+1)
		}
	}
	if sps[0].Outcome != sched.OutcomeRetried || sps[1].Outcome != sched.OutcomeRetried {
		t.Errorf("retried attempts: outcomes %v %v", sps[0].Outcome, sps[1].Outcome)
	}
	if sps[0].Err == "" {
		t.Error("retried span carries no error")
	}
	if sps[2].Outcome != sched.OutcomeOK {
		t.Errorf("final attempt outcome %v", sps[2].Outcome)
	}
}

func TestSpansFailureAndSkip(t *testing.T) {
	col := &spanCollector{}
	rt := sched.New(2, sched.WithTracer(col))
	h := sched.Handle(1)
	rt.Submit(sched.Task{Name: "bad", Writes: []sched.Handle{h}, FnErr: func() error {
		return errors.New("boom")
	}})
	rt.Submit(sched.Task{Name: "dependent", Reads: []sched.Handle{h}, Fn: func() {}})
	if err := rt.WaitErr(); err == nil {
		t.Fatal("WaitErr returned nil for a failed graph")
	}
	rt.Shutdown()

	byID := col.byID()
	bad, dep := byID[0], byID[1]
	if len(bad) != 1 || bad[0].Outcome != sched.OutcomeFailed || bad[0].Err == "" {
		t.Fatalf("failed task spans: %+v", bad)
	}
	if len(dep) != 1 {
		t.Fatalf("dependent spans: %+v", dep)
	}
	sk := dep[0]
	if sk.Outcome != sched.OutcomeSkipped || sk.Attempt != 0 || sk.Worker != -1 {
		t.Errorf("skipped span: outcome=%v attempt=%d worker=%d", sk.Outcome, sk.Attempt, sk.Worker)
	}
	if len(sk.Deps) != 1 || sk.Deps[0] != 0 {
		t.Errorf("skipped span deps = %v, want [0]", sk.Deps)
	}
	if sk.Start != sk.End {
		t.Errorf("skipped span has duration: %d..%d", sk.Start, sk.End)
	}
}

// TestSpansCompleteAtWait pins the emission-ordering guarantee: every span
// — attempt spans and skip-spans alike — is emitted before Wait/WaitErr can
// observe the DAG drained, so a caller reading the tracer right after Wait
// always sees the complete trace.
func TestSpansCompleteAtWait(t *testing.T) {
	col := &spanCollector{}
	rt := sched.New(4, sched.WithTracer(col))
	defer rt.Shutdown()
	total := 0
	for round := 0; round < 25; round++ {
		h := sched.Handle(round)
		rt.Submit(sched.Task{Name: "bad", Writes: []sched.Handle{h}, FnErr: func() error {
			return errors.New("boom")
		}})
		rt.Submit(sched.Task{Name: "dep", Reads: []sched.Handle{h}, Fn: func() {}})
		for i := 0; i < 6; i++ {
			rt.Submit(sched.Task{Name: "ok", Fn: func() {}})
		}
		total += 8
		if err := rt.WaitErr(); err == nil {
			t.Fatal("WaitErr returned nil for a failed graph")
		}
		if n, _ := col.counts(); n != total {
			t.Fatalf("round %d: %d spans at WaitErr-return, want %d", round, n, total)
		}
	}
}

// corrErr simulates the ABFT corruption report: retryable, with the fault
// already corrected in place.
type corrErr struct{}

func (corrErr) Error() string          { return "checksum fault, corrected in place" }
func (corrErr) CorrectedInPlace() bool { return true }

func TestSpansCorrectedOutcome(t *testing.T) {
	col := &spanCollector{}
	rt := sched.New(1, sched.WithTracer(col), sched.WithRetry(3, 0))
	var tries atomic.Int64
	rt.Submit(sched.Task{Name: "verify", FnErr: func() error {
		if tries.Add(1) == 1 {
			return corrErr{}
		}
		return nil
	}})
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr: %v", err)
	}
	rt.Shutdown()

	sps := col.byID()[0]
	if len(sps) != 2 {
		t.Fatalf("got %d spans, want 2", len(sps))
	}
	if sps[0].Outcome != sched.OutcomeCorrected {
		t.Errorf("first attempt outcome %v, want corrected", sps[0].Outcome)
	}
	if sps[1].Outcome != sched.OutcomeOK {
		t.Errorf("second attempt outcome %v, want ok", sps[1].Outcome)
	}
}

// legacyTracer implements only the old interface; the runtime must keep
// calling TaskRan for it.
type legacyTracer struct {
	mu sync.Mutex
	n  int
}

func (l *legacyTracer) TaskRan(string, int, int64, int64) {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

func (l *legacyTracer) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

func TestLegacyTracerStillServed(t *testing.T) {
	lt := &legacyTracer{}
	rt := sched.New(2, sched.WithTracer(lt))
	for i := 0; i < 5; i++ {
		rt.Submit(sched.Task{Name: "t", Fn: func() {}})
	}
	rt.Wait()
	rt.Shutdown()
	if n := lt.count(); n != 5 {
		t.Errorf("TaskRan called %d times, want 5", n)
	}
}
