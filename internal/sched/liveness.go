package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file is the runtime's liveness layer — the hard-fault half of the
// failure model. fault.go handles *soft* faults: a body that returns an
// error, panics, or is killed by chaos still hands control back to the
// runtime. A *hard* fault does not: the worker hangs inside a body, or the
// goroutine dies holding the task, and without intervention Wait blocks
// forever. Two mechanisms restore liveness:
//
//   - WithTaskDeadline arms a watchdog. Every attempt is registered with a
//     deadline; a polling watchdog abandons attempts that overrun it, marks
//     the executing worker dead, spawns a replacement worker under the same
//     id, and routes the task back through the ordinary retry path as a
//     transient *TimeoutError. Go cannot kill a goroutine, so an abandoned
//     worker that eventually returns from its body discovers the
//     abandonment and exits instead of double-completing the task.
//
//   - WaitCtx bounds the wait itself: even without a deadline (or when the
//     watchdog cannot help, e.g. a deadlock between bodies), the caller
//     gets control back when its context expires.
//
// The watchdog's correctness constraint: the deadline must comfortably
// exceed the worst-case task execution time. A legitimately slow attempt
// that overruns the deadline is re-executed while the original may still
// be running — harmless for idempotent bodies, unsound for in-place
// read-modify-write kernels. The chaos modes that exercise this layer
// (WithHardChaos) therefore strike strictly before the body runs, keeping
// chaos runs bitwise identical to clean runs under retries.

// ErrTaskTimeout is the root of every watchdog-abandoned attempt's error,
// for errors.Is checks in tests and policies.
var ErrTaskTimeout = errors.New("task deadline exceeded")

// TimeoutError reports one task attempt abandoned by the watchdog: the
// attempt ran past the runtime's task deadline, the executing worker was
// declared dead, and the task was handed back to the retry policy.
type TimeoutError struct {
	// Kernel and Seq identify the task.
	Kernel string
	Seq    int
	// Attempt is the 1-based attempt number that was abandoned.
	Attempt int
	// Worker is the worker declared dead.
	Worker int
	// Deadline is the per-task deadline that was exceeded.
	Deadline time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("task %q (seq %d) attempt %d exceeded %v deadline on worker %d; worker marked dead",
		e.Kernel, e.Seq, e.Attempt, e.Deadline, e.Worker)
}

func (e *TimeoutError) Unwrap() error { return ErrTaskTimeout }

// WithTaskDeadline bounds every task attempt to d and arms the watchdog:
// an attempt still running past d is abandoned, its worker is declared
// dead (a replacement worker is spawned so the pool keeps its capacity),
// and the task is re-enqueued through the retry path as a transient
// timeout, counted by the sched.tasks_timed_out and sched.workers_lost
// metrics and reported as an OutcomeTimedOut span.
//
// d must comfortably exceed the worst-case execution time of any single
// task: the runtime cannot distinguish a hung worker from a slow one, and
// re-executing an attempt whose original is still mutating its output
// tile is unsound for non-idempotent kernels.
func WithTaskDeadline(d time.Duration) Option {
	return func(r *Runtime) {
		if d <= 0 {
			return
		}
		r.taskDeadline = d
	}
}

// attempt tracks one in-flight task execution for the watchdog. Fields are
// set at registration and immutable afterwards, except abandoned, which is
// guarded by Runtime.watchMu.
type attempt struct {
	n       *node
	worker  int
	num     int   // 1-based attempt number
	readyAt int64 // trace-epoch enqueue time, for the abandoned span
	start   int64 // trace-epoch start time
	began   time.Time
	// lost is closed when the watchdog abandons the attempt; chaos-hung
	// bodies park on it so deterministic hang tests terminate.
	lost      chan struct{}
	abandoned bool
}

// attemptPool recycles attempt records between registrations. Only
// attempts that completed normally are pooled: an abandoned attempt stays
// referenced by its zombie worker (and its lost channel is closed), so it
// is left for the garbage collector.
var attemptPool = sync.Pool{New: func() any { return &attempt{} }}

// registerAttempt records the start of one attempt with the watchdog.
// Returns nil when no deadline is armed.
func (r *Runtime) registerAttempt(n *node, worker, num int, readyAt, start int64) *attempt {
	if r.taskDeadline <= 0 {
		return nil
	}
	att := attemptPool.Get().(*attempt)
	att.n = n
	att.worker = worker
	att.num = num
	att.readyAt = readyAt
	att.start = start
	att.began = time.Now()
	att.abandoned = false
	if att.lost == nil {
		// A pooled attempt that was never abandoned still holds an open,
		// reusable channel.
		att.lost = make(chan struct{})
	}
	r.watchMu.Lock()
	r.running[att] = struct{}{}
	r.watchMu.Unlock()
	return att
}

// completeAttempt deregisters an attempt whose body returned. It reports
// false when the watchdog abandoned the attempt first: the task has
// already been re-enqueued elsewhere and a replacement worker owns this
// worker's slot, so the caller must discard the result and exit.
func (r *Runtime) completeAttempt(att *attempt) bool {
	if att == nil {
		return true
	}
	r.watchMu.Lock()
	abandoned := att.abandoned
	if !abandoned {
		delete(r.running, att)
	}
	r.watchMu.Unlock()
	if !abandoned {
		att.n = nil
		attemptPool.Put(att)
	}
	return !abandoned
}

// startWatchdog arms the deadline poller. Called from New when a task
// deadline is configured.
func (r *Runtime) startWatchdog() {
	r.running = make(map[*attempt]struct{})
	r.watchStop = make(chan struct{})
	r.watchDone = make(chan struct{})
	// Poll at a quarter of the deadline so overruns are detected within
	// ~1.25·d, clamped to keep the poller cheap and responsive.
	poll := r.taskDeadline / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	go r.watchdog(poll)
}

// stopWatchdog halts the poller and waits for it to exit. Idempotent.
func (r *Runtime) stopWatchdog() {
	if r.watchStop == nil {
		return
	}
	r.watchOnce.Do(func() { close(r.watchStop) })
	<-r.watchDone
}

func (r *Runtime) watchdog(poll time.Duration) {
	defer close(r.watchDone)
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		select {
		case <-r.watchStop:
			return
		case <-t.C:
			r.reapOverdue()
		}
	}
}

// reapOverdue abandons every attempt past its deadline and recovers each
// one: the worker is replaced and the task re-routed through the failure
// path outside watchMu (resolveFailure takes Runtime.mu).
func (r *Runtime) reapOverdue() {
	var overdue []*attempt
	now := time.Now()
	r.watchMu.Lock()
	for att := range r.running {
		if now.Sub(att.began) > r.taskDeadline {
			att.abandoned = true
			close(att.lost)
			delete(r.running, att)
			overdue = append(overdue, att)
		}
	}
	r.watchMu.Unlock()
	for _, att := range overdue {
		r.recoverLost(att)
	}
}

// recoverLost handles one abandoned attempt: the worker is presumed dead
// (hung inside a body, or its goroutine gone), so a replacement worker is
// spawned under the same id — the pool keeps its capacity and the
// per-worker metrics their indices — and the timeout is routed through
// resolveFailure like any transient attempt failure. If the worker was
// merely hung, its goroutine discovers the abandonment when the body
// returns (completeAttempt reports false) and exits quietly.
func (r *Runtime) recoverLost(att *attempt) {
	r.met.taskTimedOut()
	r.met.workerLost()
	go r.worker(att.worker)

	err := &TimeoutError{
		Kernel:   att.n.task.Name,
		Seq:      att.n.seq,
		Attempt:  att.num,
		Worker:   att.worker,
		Deadline: r.taskDeadline,
	}
	retrying := att.num <= r.retryMax
	end := traceNow()
	// Emit the abandoned attempt's span before resolveFailure can retire
	// the node, mirroring the worker fast path's ordering guarantee.
	if r.spanTracer != nil {
		sp := Span{
			ID:      att.n.seq,
			Name:    att.n.task.Name,
			Worker:  att.worker,
			Attempt: att.num,
			Deps:    att.n.deps,
			Ready:   att.readyAt,
			Start:   att.start,
			End:     end,
			Err:     err.Error(),
		}
		if retrying {
			sp.Outcome = OutcomeTimedOut
		} else {
			sp.Outcome = OutcomeFailed
		}
		r.spanTracer.TaskSpan(sp)
	} else if r.tracer != nil {
		r.tracer.TaskRan(att.n.task.Name, att.worker, att.start, end)
	}
	skipped := r.resolveFailure(att.n, err, retrying, att.num, att.worker)
	if len(skipped) > 0 {
		r.emitSkipped(skipped, end)
		r.completeSkipped(len(skipped))
	}
}

// WaitCtx blocks like WaitErr but additionally returns ctx.Err() as soon
// as the context is cancelled, even if tasks are still in flight — the
// escape hatch when a task body deadlocks and no watchdog deadline is
// armed. On cancellation the runtime's failure state is left untouched:
// tasks keep draining in the background, and a later WaitErr/Shutdown
// observes their results.
func (r *Runtime) WaitCtx(ctx context.Context) error {
	if ctx == nil {
		return r.WaitErr()
	}
	// Wake the cond broadcast loop when the context fires. AfterFunc covers
	// both a deadline in the future and a ctx already cancelled.
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()

	r.mu.Lock()
	for r.inFlight > 0 && ctx.Err() == nil {
		r.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		r.mu.Unlock()
		return err
	}
	fs := r.failures
	sk := r.skipped
	r.failures = nil
	r.skipped = 0
	r.mu.Unlock()
	if len(fs) == 0 {
		return nil
	}
	return &FailuresError{Failures: fs, Skipped: sk}
}
