package sched

import (
	"strconv"
	"sync"

	"exadla/internal/metrics"
)

// rtMetrics instruments one Runtime against a metrics.Registry. All handle
// operations are nil-safe, and the per-task path is additionally gated on
// the registry's enabled flag, so a Runtime built against the (disabled)
// default registry pays one atomic load per task.
//
// Exported names, all under the "sched." prefix:
//
//	sched.tasks_submitted            counter
//	sched.tasks_completed            counter
//	sched.tasks_retried              counter (failed attempts re-enqueued)
//	sched.tasks_failed               counter (permanent task failures)
//	sched.tasks_panicked             counter (permanent failures via panic)
//	sched.tasks_skipped              counter (dependents poisoned by a failure)
//	sched.tasks_timed_out            counter (attempts abandoned by the watchdog)
//	sched.workers_lost               counter (workers declared dead and replaced)
//	sched.ready_depth                gauge (current ready-queue length)
//	sched.ready_high_water           gauge (max ready-queue length seen)
//	sched.queue_wait_ns              histogram (per-attempt ready→start wait)
//	sched.worker.<id>.busy_ns        counter (time inside task bodies)
//	sched.worker.<id>.idle_ns        counter (time waiting for work)
//	sched.kernel.<name>.tasks        counter
//	sched.kernel.<name>.ns           counter (total execution time)
//	sched.kernel.<name>.latency_ns   histogram (per-task execution time)
//
// Runtimes sharing a registry (the default) aggregate into the same names.
type rtMetrics struct {
	reg       *metrics.Registry
	submitted *metrics.Counter
	completed *metrics.Counter
	retried   *metrics.Counter
	failed    *metrics.Counter
	panicked  *metrics.Counter
	skipped   *metrics.Counter
	timedOut  *metrics.Counter
	lost      *metrics.Counter
	depth     *metrics.Gauge
	highWater *metrics.Gauge
	queueWait *metrics.Histogram
	busy      []*metrics.Counter
	idle      []*metrics.Counter

	kernels sync.Map // kernel name -> *kernelStats
}

type kernelStats struct {
	tasks *metrics.Counter
	ns    *metrics.Counter
	lat   *metrics.Histogram
}

func newRTMetrics(reg *metrics.Registry, workers int) *rtMetrics {
	m := &rtMetrics{
		reg:       reg,
		submitted: reg.Counter("sched.tasks_submitted"),
		completed: reg.Counter("sched.tasks_completed"),
		retried:   reg.Counter("sched.tasks_retried"),
		failed:    reg.Counter("sched.tasks_failed"),
		panicked:  reg.Counter("sched.tasks_panicked"),
		skipped:   reg.Counter("sched.tasks_skipped"),
		timedOut:  reg.Counter("sched.tasks_timed_out"),
		lost:      reg.Counter("sched.workers_lost"),
		depth:     reg.Gauge("sched.ready_depth"),
		highWater: reg.Gauge("sched.ready_high_water"),
		queueWait: reg.Histogram("sched.queue_wait_ns"),
		busy:      make([]*metrics.Counter, workers),
		idle:      make([]*metrics.Counter, workers),
	}
	for w := 0; w < workers; w++ {
		id := strconv.Itoa(w)
		m.busy[w] = reg.Counter("sched.worker." + id + ".busy_ns")
		m.idle[w] = reg.Counter("sched.worker." + id + ".idle_ns")
	}
	return m
}

func (m *rtMetrics) on() bool { return m.reg.Enabled() }

// taskSubmitted records one submission.
func (m *rtMetrics) taskSubmitted() { m.submitted.Inc() }

// readyLen publishes the ready-queue length after an enqueue or dequeue,
// maintaining the high-water mark. Called with Runtime.mu held.
func (m *rtMetrics) readyLen(n int) {
	m.depth.Set(float64(n))
	m.highWater.SetMax(float64(n))
}

// taskDone records one executed task attempt for worker w with execution
// time ns and ready→start queue wait waitNs (negative when unknown).
func (m *rtMetrics) taskDone(name string, w int, ns, waitNs int64) {
	if !m.on() {
		return
	}
	m.completed.Inc()
	m.busy[w].Add(ns)
	if waitNs >= 0 {
		m.queueWait.Observe(waitNs)
	}
	ks := m.kernel(name)
	ks.tasks.Inc()
	ks.ns.Add(ns)
	ks.lat.Observe(ns)
}

// taskRetried records one failed attempt going back on the ready queue.
func (m *rtMetrics) taskRetried() { m.retried.Inc() }

// taskFailed records one permanent task failure.
func (m *rtMetrics) taskFailed(panicked bool) {
	m.failed.Inc()
	if panicked {
		m.panicked.Inc()
	}
}

// taskSkipped records one dependent poisoned by an upstream failure.
func (m *rtMetrics) taskSkipped() { m.skipped.Inc() }

// taskTimedOut records one attempt abandoned past its deadline.
func (m *rtMetrics) taskTimedOut() { m.timedOut.Inc() }

// workerLost records one worker declared dead and replaced.
func (m *rtMetrics) workerLost() { m.lost.Inc() }

// workerIdle records ns nanoseconds worker w spent without a task.
func (m *rtMetrics) workerIdle(w int, ns int64) {
	if !m.on() {
		return
	}
	m.idle[w].Add(ns)
}

// kernel resolves (creating on first use) the per-kernel metric bundle.
func (m *rtMetrics) kernel(name string) *kernelStats {
	if name == "" {
		name = "anon"
	}
	if v, ok := m.kernels.Load(name); ok {
		return v.(*kernelStats)
	}
	ks := &kernelStats{
		tasks: m.reg.Counter("sched.kernel." + name + ".tasks"),
		ns:    m.reg.Counter("sched.kernel." + name + ".ns"),
		lat:   m.reg.Histogram("sched.kernel." + name + ".latency_ns"),
	}
	v, _ := m.kernels.LoadOrStore(name, ks)
	return v.(*kernelStats)
}
