// Cross-checks the metrics layer against the Recorder: for the same tiled
// algorithm on the same input, the Runtime's per-kernel task counters must
// equal the kernel counts in the graph the Recorder captures. This makes
// the metrics subsystem itself correctness-tested — a dropped or
// double-counted task shows up as an exact-count mismatch.
//
// The test lives in an external test package so it can drive the real
// factorizations from internal/core without an import cycle.
package sched_test

import (
	"math/rand"
	"testing"

	"exadla/internal/core"
	"exadla/internal/matgen"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// kernelCounts tallies non-barrier nodes of a recorded graph by name.
func kernelCounts(g *sched.Graph) map[string]int64 {
	m := map[string]int64{}
	for _, n := range g.Nodes {
		if !n.Barrier {
			m[n.Name]++
		}
	}
	return m
}

// runtimeKernelCounts extracts per-kernel task counters from a snapshot.
func runtimeKernelCounts(s metrics.Snapshot) map[string]int64 {
	m := map[string]int64{}
	for name, v := range s.Counters {
		const pre, post = "sched.kernel.", ".tasks"
		if len(name) > len(pre)+len(post) && name[:len(pre)] == pre && name[len(name)-len(post):] == post {
			m[name[len(pre):len(name)-len(post)]] = v
		}
	}
	return m
}

func crossCheck(t *testing.T, name string, submit func(s sched.Scheduler, a *tile.Matrix[float64]) error, src []float64, n, nb int) {
	t.Helper()

	// Recorder pass: the ground-truth task graph.
	rec := sched.NewRecorder()
	if err := submit(rec, tile.FromColMajor(n, n, src, n, nb)); err != nil {
		t.Fatalf("%s recorder pass: %v", name, err)
	}
	want := kernelCounts(rec.Graph())

	// Runtime pass with a private registry.
	reg := metrics.New()
	rt := sched.New(4, sched.WithMetrics(reg))
	err := submit(rt, tile.FromColMajor(n, n, src, n, nb))
	rt.Shutdown()
	if err != nil {
		t.Fatalf("%s runtime pass: %v", name, err)
	}
	snap := reg.Snapshot()
	got := runtimeKernelCounts(snap)

	if len(got) == 0 {
		t.Fatalf("%s: runtime recorded no kernel metrics", name)
	}
	for kernel, w := range want {
		if got[kernel] != w {
			t.Errorf("%s kernel %q: runtime counted %d tasks, recorder graph has %d", name, kernel, got[kernel], w)
		}
	}
	for kernel, g := range got {
		if _, ok := want[kernel]; !ok {
			t.Errorf("%s: runtime counted %d tasks for kernel %q absent from the recorded graph", name, g, kernel)
		}
	}

	var total int64
	for _, w := range want {
		total += w
	}
	if c := snap.Counters["sched.tasks_completed"]; c != total {
		t.Errorf("%s: tasks_completed = %d, recorder graph has %d tasks", name, c, total)
	}
	if c := snap.Counters["sched.tasks_submitted"]; c != total {
		t.Errorf("%s: tasks_submitted = %d, recorder graph has %d tasks", name, c, total)
	}

	// Latency histograms must agree with the counters task for task.
	for kernel, w := range want {
		h, ok := snap.Histograms["sched.kernel."+kernel+".latency_ns"]
		if !ok {
			t.Errorf("%s: no latency histogram for kernel %q", name, kernel)
			continue
		}
		if h.Count != w {
			t.Errorf("%s kernel %q: latency histogram has %d observations, want %d", name, kernel, h.Count, w)
		}
	}

	// Occupancy accounting exists for every worker.
	for w := 0; w < 4; w++ {
		id := string(rune('0' + w))
		if _, ok := snap.Counters["sched.worker."+id+".busy_ns"]; !ok {
			t.Errorf("%s: missing busy counter for worker %d", name, w)
		}
	}
	if hwm := snap.Gauges["sched.ready_high_water"]; hwm < 1 {
		t.Errorf("%s: ready_high_water = %g, want >= 1", name, hwm)
	}

	// Every executed attempt had its queue wait observed.
	if h, ok := snap.Histograms["sched.queue_wait_ns"]; !ok || h.Count != total {
		t.Errorf("%s: queue_wait_ns has %d observations, want %d", name, h.Count, total)
	}
}

func TestMetricsCrossCheckCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, nb = 200, 48 // deliberately non-divisible: boundary tiles included
	src := matgen.DiagDomSPD[float64](rng, n)
	crossCheck(t, "cholesky", func(s sched.Scheduler, a *tile.Matrix[float64]) error {
		return core.Cholesky(s, a)
	}, src, n, nb)
}

func TestMetricsCrossCheckQR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, nb = 200, 48
	src := matgen.Dense[float64](rng, n, n)
	crossCheck(t, "qr", func(s sched.Scheduler, a *tile.Matrix[float64]) error {
		core.QR(s, a)
		s.Wait()
		return nil
	}, src, n, nb)
}

// TestMetricsCrossCheckQRWithRetry reruns the QR cross-check under chaos
// injection with a generous retry budget. Task counters count *attempts*,
// so they are checked against the span trace, while distinct span IDs per
// kernel must still match the recorded graph exactly.
func TestMetricsCrossCheckQRWithRetry(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, nb = 200, 32
	src := matgen.Dense[float64](rng, n, n)

	rec := sched.NewRecorder()
	core.QR(rec, tile.FromColMajor(n, n, src, n, nb))
	want := kernelCounts(rec.Graph())

	reg := metrics.New()
	col := &spanCollector{}
	rt := sched.New(4, sched.WithMetrics(reg), sched.WithTracer(col),
		sched.WithChaos(42, 0.1, nil), sched.WithRetry(50, 0))
	core.QR(rt, tile.FromColMajor(n, n, src, n, nb))
	err := rt.WaitErr()
	rt.Shutdown()
	if err != nil {
		t.Fatalf("qr under chaos+retry: %v", err)
	}
	snap := reg.Snapshot()

	ids := map[string]map[int]bool{}
	attempts := map[string]int64{}
	var retriedSpans, totalAttempts int64
	maxAttempt := 0
	for _, sp := range col.byID() {
		for _, s := range sp {
			if s.Attempt == 0 {
				t.Fatalf("skipped span in a fully retried run: %+v", s)
			}
			if ids[s.Name] == nil {
				ids[s.Name] = map[int]bool{}
			}
			ids[s.Name][s.ID] = true
			attempts[s.Name]++
			totalAttempts++
			if s.Outcome == sched.OutcomeRetried || s.Outcome == sched.OutcomeCorrected {
				retriedSpans++
			}
			if s.Attempt > maxAttempt {
				maxAttempt = s.Attempt
			}
		}
	}

	for kernel, w := range want {
		if got := int64(len(ids[kernel])); got != w {
			t.Errorf("kernel %q: %d distinct span IDs, recorder graph has %d tasks", kernel, got, w)
		}
		if c := snap.Counters["sched.kernel."+kernel+".tasks"]; c != attempts[kernel] {
			t.Errorf("kernel %q: counter %d, span trace has %d attempts", kernel, c, attempts[kernel])
		}
	}
	if c := snap.Counters["sched.tasks_retried"]; c != retriedSpans {
		t.Errorf("tasks_retried = %d, span trace has %d retried attempts", c, retriedSpans)
	}
	if c := snap.Counters["sched.tasks_failed"]; c != 0 {
		t.Errorf("tasks_failed = %d, want 0 with a 50-attempt budget", c)
	}
	if c := snap.Counters["sched.tasks_completed"]; c != totalAttempts {
		t.Errorf("tasks_completed = %d, span trace has %d attempts", c, totalAttempts)
	}
	if maxAttempt < 2 {
		t.Error("chaos at p=0.1 over the QR graph injected no retries")
	}
}

func TestMetricsCrossCheckLU(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, nb = 200, 48
	src := matgen.Dense[float64](rng, n, n)
	for i := 0; i < n; i++ {
		src[i+i*n] += float64(n) // diagonally dominant: no singular pivots
	}
	crossCheck(t, "lu", func(s sched.Scheduler, a *tile.Matrix[float64]) error {
		_, err := core.LU(s, a)
		return err
	}, src, n, nb)
}
