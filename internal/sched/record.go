package sched

import (
	"context"
	"time"
)

// GraphNode is one task in a recorded graph.
type GraphNode struct {
	// Name is the kernel label.
	Name string
	// Cost is the measured execution time in seconds.
	Cost float64
	// Deps are indices of nodes this one depends on (always smaller than
	// the node's own index: graphs are recorded in topological order).
	Deps []int
	// Priority mirrors Task.Priority.
	Priority int
	// Barrier marks a synthetic fork–join barrier node (zero cost).
	Barrier bool
	// Reads and Writes preserve the task's declared data accesses, so
	// analyses (communication counting, locality studies) can replay data
	// placement decisions over the graph.
	Reads, Writes []Handle
	// Executions is how many times the task ran (retries re-execute it and
	// re-fetch its operands). Zero means one: graphs recorded before the
	// failure model, or never annotated, replay as fault-free.
	Executions int
}

// Graph is a recorded task DAG with measured costs, replayable under any
// virtual worker count by Simulate.
type Graph struct {
	Nodes []GraphNode
}

// TotalWork returns the sum of node costs in seconds.
func (g *Graph) TotalWork() float64 {
	var s float64
	for _, n := range g.Nodes {
		s += n.Cost
	}
	return s
}

// CriticalPath returns the length in seconds of the longest dependence
// chain — the makespan lower bound at infinite parallelism.
func (g *Graph) CriticalPath() float64 {
	finish := make([]float64, len(g.Nodes))
	var cp float64
	for i, n := range g.Nodes {
		var start float64
		for _, d := range n.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + n.Cost
		if finish[i] > cp {
			cp = finish[i]
		}
	}
	return cp
}

// FlattenBarriers returns per-node dependency lists with barrier nodes
// transitively replaced by their own (flattened) dependencies, so analyses
// that drop barrier nodes — such as SimulateEvents timelines — still see the
// fork–join ordering as direct task→task edges. Barrier nodes keep an entry
// (their flattened deps) so indices stay aligned with g.Nodes.
func (g *Graph) FlattenBarriers() [][]int {
	flat := make([][]int, len(g.Nodes))
	for i, n := range g.Nodes {
		seen := map[int]bool{}
		var deps []int
		for _, d := range n.Deps {
			if g.Nodes[d].Barrier {
				for _, bd := range flat[d] { // deps precede node: flat[d] is final
					if !seen[bd] {
						seen[bd] = true
						deps = append(deps, bd)
					}
				}
			} else if !seen[d] {
				seen[d] = true
				deps = append(deps, d)
			}
		}
		flat[i] = deps
	}
	return flat
}

// Tasks returns the number of non-barrier nodes.
func (g *Graph) Tasks() int {
	c := 0
	for _, n := range g.Nodes {
		if !n.Barrier {
			c++
		}
	}
	return c
}

// Recorder is a Scheduler that executes tasks inline (sequentially, in
// submission order — always a legal schedule), measures their cost, and
// captures the dependence graph. Wait inserts a barrier node, so fork–join
// algorithms record their barriers and dataflow algorithms record none.
//
// Recorder is not safe for concurrent submission; recording is inherently
// sequential.
type Recorder struct {
	graph       Graph
	last        map[Handle]*raccess
	lastBarrier int // index of most recent barrier node, -1 if none
	sinceBar    []int
	run         bool
	failures    []*TaskError
}

type raccess struct {
	lastWriter int // node index, -1 if none
	readers    []int
}

// NewRecorder returns a Recorder that executes and times each task as it is
// submitted.
func NewRecorder() *Recorder {
	return &Recorder{
		last:        make(map[Handle]*raccess),
		lastBarrier: -1,
		run:         true,
	}
}

// NewModelRecorder returns a Recorder that does not execute tasks; callers
// must fill costs afterwards (or accept zero costs and use the graph for
// structural analysis only).
func NewModelRecorder() *Recorder {
	r := NewRecorder()
	r.run = false
	return r
}

// Submit records (and, by default, executes and times) one task.
func (rec *Recorder) Submit(t Task) {
	idx := len(rec.graph.Nodes)
	node := GraphNode{
		Name:     t.Name,
		Priority: t.Priority,
		Reads:    append([]Handle(nil), t.Reads...),
		Writes:   append([]Handle(nil), t.Writes...),
	}
	deps := map[int]bool{}
	if rec.lastBarrier >= 0 {
		deps[rec.lastBarrier] = true
	}

	written := make(map[Handle]bool, len(t.Writes))
	for _, h := range t.Writes {
		written[h] = true
	}
	for _, h := range t.Reads {
		acc := rec.acc(h)
		if acc.lastWriter >= 0 {
			deps[acc.lastWriter] = true
		}
		if !written[h] {
			acc.readers = append(acc.readers, idx)
		}
	}
	for _, h := range t.Writes {
		acc := rec.acc(h)
		if acc.lastWriter >= 0 {
			deps[acc.lastWriter] = true
		}
		for _, rd := range acc.readers {
			deps[rd] = true
		}
		acc.lastWriter = idx
		acc.readers = acc.readers[:0]
	}
	for d := range deps {
		if d != idx {
			node.Deps = append(node.Deps, d)
		}
	}

	if rec.run && (t.Fn != nil || t.FnErr != nil) {
		start := time.Now()
		var err error
		if t.FnErr != nil {
			err = t.FnErr()
		} else {
			t.Fn()
		}
		node.Cost = time.Since(start).Seconds()
		if err != nil {
			rec.failures = append(rec.failures, &TaskError{
				Kernel:   t.Name,
				Seq:      idx,
				Attempts: 1,
				Writes:   append([]Handle(nil), t.Writes...),
				Err:      err,
			})
		}
	}
	rec.graph.Nodes = append(rec.graph.Nodes, node)
	rec.sinceBar = append(rec.sinceBar, idx)
}

func (rec *Recorder) acc(h Handle) *raccess {
	a := rec.last[h]
	if a == nil {
		a = &raccess{lastWriter: -1}
		rec.last[h] = a
	}
	return a
}

// Wait records a fork–join barrier: every subsequent task will depend on
// everything submitted so far. Tasks were already executed inline, so there
// is nothing to wait for. Consecutive barriers collapse.
func (rec *Recorder) Wait() {
	if len(rec.sinceBar) == 0 {
		return
	}
	idx := len(rec.graph.Nodes)
	node := GraphNode{Name: "barrier", Barrier: true, Deps: append([]int(nil), rec.sinceBar...)}
	rec.graph.Nodes = append(rec.graph.Nodes, node)
	rec.lastBarrier = idx
	rec.sinceBar = rec.sinceBar[:0]
}

// WaitErr records the barrier like Wait and returns the failures recorded
// so far as a *FailuresError, consuming them. The Recorder executes tasks
// inline and has no retry or poisoning — it is a measurement tool, so
// every submitted task runs exactly once and failures are only reported.
func (rec *Recorder) WaitErr() error {
	rec.Wait()
	fs := rec.failures
	rec.failures = nil
	if len(fs) == 0 {
		return nil
	}
	return &FailuresError{Failures: fs}
}

// WaitCtx matches Runtime.WaitCtx for interface parity. Tasks were
// executed inline at Submit, so there is never anything in flight: a
// cancelled context is still honoured, but nothing is abandoned.
func (rec *Recorder) WaitCtx(ctx context.Context) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return rec.WaitErr()
}

// Graph returns the recorded DAG.
func (rec *Recorder) Graph() *Graph { return &rec.graph }
