package sched

import (
	"math/rand"
	"testing"
)

// collectReady returns a Frontier whose ready events append to the returned
// slice.
func collectReady() (*Frontier, *[]int) {
	var ready []int
	f := NewFrontier(func(id int) { ready = append(ready, id) })
	return f, &ready
}

func TestFrontierRAWChain(t *testing.T) {
	f, ready := collectReady()
	h := "x"
	f.Add(0, nil, []Handle{h}) // writer
	f.Add(1, []Handle{h}, nil) // reader (RAW)
	f.Add(2, nil, []Handle{h}) // writer (WAR on 1, WAW on 0)
	if got := *ready; len(got) != 1 || got[0] != 0 {
		t.Fatalf("initial ready = %v, want [0]", got)
	}
	f.Complete(0)
	if got := *ready; len(got) != 2 || got[1] != 1 {
		t.Fatalf("after 0: ready = %v, want [0 1]", got)
	}
	f.Complete(1)
	if got := *ready; len(got) != 3 || got[2] != 2 {
		t.Fatalf("after 1: ready = %v, want [0 1 2]", got)
	}
	f.Complete(2)
	if !f.Done() || f.Pending() != 0 {
		t.Fatalf("not done: pending=%d", f.Pending())
	}
}

func TestFrontierDiamond(t *testing.T) {
	f, ready := collectReady()
	a, b, c := "a", "b", "c"
	f.Add(0, nil, []Handle{a})
	f.Add(1, []Handle{a}, []Handle{b})
	f.Add(2, []Handle{a}, []Handle{c})
	f.Add(3, []Handle{b, c}, nil)
	f.Complete(0)
	if got := *ready; len(got) != 3 { // 0, then 1 and 2
		t.Fatalf("after 0: ready = %v", got)
	}
	f.Complete(2)
	f.Complete(1)
	if got := *ready; got[len(got)-1] != 3 {
		t.Fatalf("join not released: ready = %v", got)
	}
}

func TestFrontierIndependentTasksAllReady(t *testing.T) {
	f, ready := collectReady()
	for i := 0; i < 5; i++ {
		f.Add(i, nil, []Handle{i})
	}
	if len(*ready) != 5 {
		t.Fatalf("ready = %v, want all five", *ready)
	}
}

func TestFrontierReadersShareThenWriterWaits(t *testing.T) {
	f, ready := collectReady()
	h := "h"
	f.Add(0, nil, []Handle{h})
	f.Complete(0)
	f.Add(1, []Handle{h}, nil)
	f.Add(2, []Handle{h}, nil)
	f.Add(3, nil, []Handle{h}) // WAR on both readers
	if got := *ready; len(got) != 3 {
		t.Fatalf("readers should be ready immediately: %v", got)
	}
	f.Complete(1)
	if len(*ready) != 3 {
		t.Fatalf("writer released after one of two readers")
	}
	f.Complete(2)
	if got := *ready; len(got) != 4 || got[3] != 3 {
		t.Fatalf("writer not released: %v", got)
	}
}

func TestFrontierCompletePanics(t *testing.T) {
	f, _ := collectReady()
	f.Add(0, nil, nil)
	f.Complete(0)
	for name, fn := range map[string]func(){
		"double":  func() { f.Complete(0) },
		"unknown": func() { f.Complete(99) },
		"dup-add": func() { f.Add(0, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFrontierMatchesRecorder drives a random tile-DAG-shaped workload
// through both the Recorder (the reference dependence derivation) and the
// Frontier, checking the Frontier admits a full drain in any greedy order
// and never readies a task before all its recorded deps completed.
func TestFrontierMatchesRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nh := 2 + rng.Intn(6)
		handles := make([]Handle, nh)
		for i := range handles {
			handles[i] = i
		}
		ntasks := 5 + rng.Intn(40)
		rec := NewModelRecorder()
		type spec struct{ reads, writes []Handle }
		specs := make([]spec, ntasks)
		for i := range specs {
			var s spec
			s.writes = []Handle{handles[rng.Intn(nh)]}
			for k := rng.Intn(3); k > 0; k-- {
				s.reads = append(s.reads, handles[rng.Intn(nh)])
			}
			specs[i] = s
			rec.Submit(Task{Name: "t", Reads: s.reads, Writes: s.writes})
		}
		g := rec.Graph()

		readySet := map[int]bool{}
		f := NewFrontier(func(id int) { readySet[id] = true })
		for i, s := range specs {
			f.Add(i, s.reads, s.writes)
		}
		completed := map[int]bool{}
		for !f.Done() {
			// Pick an arbitrary ready task, check its recorded deps are done.
			var pick = -1
			for id := range readySet {
				pick = id
				break
			}
			if pick < 0 {
				t.Fatalf("trial %d: frontier stuck with %d pending", trial, f.Pending())
			}
			for _, d := range g.Nodes[pick].Deps {
				if !completed[d] {
					t.Fatalf("trial %d: task %d ready before dep %d", trial, pick, d)
				}
			}
			delete(readySet, pick)
			completed[pick] = true
			f.Complete(pick)
		}
	}
}
