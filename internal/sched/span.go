package sched

import "errors"

// This file is the runtime's span model — the full-fidelity successor to
// the bare (name, worker, start, end) trace event. A span is one *attempt*
// of one task, carrying everything the DAG-level analyses need: the task's
// identity (its submission sequence number), its dependence edges, when it
// became ready versus when a worker actually picked it up (queue wait),
// which attempt this was, and how the attempt ended. Retried tasks emit one
// span per attempt under the same ID; poisoned dependents emit a single
// zero-length span with OutcomeSkipped so the DAG view stays complete.

// Outcome classifies how one task attempt (or a skipped task) ended.
type Outcome uint8

const (
	// OutcomeOK is a successful attempt.
	OutcomeOK Outcome = iota
	// OutcomeRetried is a transiently failed attempt the runtime re-enqueued.
	OutcomeRetried
	// OutcomeFailed is the attempt that made a failure permanent (retry
	// budget exhausted, panic, or a Permanent-wrapped error).
	OutcomeFailed
	// OutcomeCorrected is a retried attempt whose error reported the
	// underlying fault as already corrected in place (ABFT corruption
	// recovery): the retry re-verifies rather than re-computes.
	OutcomeCorrected
	// OutcomeSkipped marks a task that never ran because an upstream
	// failure poisoned it. Skipped spans have Attempt 0 and Worker -1.
	OutcomeSkipped
	// OutcomeTimedOut is an attempt the watchdog abandoned because it
	// overran the task deadline (see WithTaskDeadline): the executing
	// worker is presumed dead and the task is re-enqueued through the
	// retry path. An attempt whose timeout exhausts the retry budget is
	// reported as OutcomeFailed instead, like any other permanent failure.
	OutcomeTimedOut
)

// String returns the lower-case label used in traces and structured logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeRetried:
		return "retried"
	case OutcomeFailed:
		return "failed"
	case OutcomeCorrected:
		return "corrected"
	case OutcomeSkipped:
		return "skipped"
	case OutcomeTimedOut:
		return "timed_out"
	}
	return "unknown"
}

// Span describes one task attempt with full DAG context. Times are
// nanoseconds since the trace epoch (the same clock TaskRan uses).
type Span struct {
	// ID is the task's submission sequence number, unique within a Runtime
	// and shared by every attempt of the same task.
	ID int
	// Name is the kernel label.
	Name string
	// Worker is the worker that ran the attempt (-1 for skipped tasks).
	Worker int
	// Attempt is the 1-based attempt number (0 for skipped tasks).
	Attempt int
	// Deps are the IDs of the tasks this task depends on (RAW/WAR/WAW
	// edges derived at submission, deduplicated).
	Deps []int
	// Ready is when the attempt was enqueued on the ready queue; Start-Ready
	// is the attempt's queue wait. Zero when unknown.
	Ready int64
	// Start and End bound the attempt's execution.
	Start, End int64
	// Outcome classifies how the attempt ended.
	Outcome Outcome
	// Err is the attempt's failure message (empty for OK and skipped spans).
	Err string
}

// QueueWait returns Start-Ready, the time the attempt sat ready but
// unserved, or 0 when the ready time is unknown.
func (s Span) QueueWait() int64 {
	if s.Ready == 0 || s.Ready > s.Start {
		return 0
	}
	return s.Start - s.Ready
}

// SpanTracer is the span-model extension of Tracer. A tracer passed to
// WithTracer that also implements SpanTracer receives one TaskSpan call per
// task attempt (and per skipped task) instead of TaskRan calls.
// Implementations must be safe for concurrent use.
type SpanTracer interface {
	// TaskSpan reports one completed task attempt or one skipped task.
	TaskSpan(Span)
}

// InPlaceCorrector is implemented by task errors (such as the ABFT
// corruption report) that indicate the underlying fault was corrected in
// place before the retryable error was returned. The runtime records such
// retried attempts as OutcomeCorrected.
type InPlaceCorrector interface {
	CorrectedInPlace() bool
}

// outcomeOf classifies one failed-or-not attempt given the retry decision.
func outcomeOf(err error, retrying bool) Outcome {
	if err == nil {
		return OutcomeOK
	}
	if retrying {
		var c InPlaceCorrector
		if errors.As(err, &c) && c.CorrectedInPlace() {
			return OutcomeCorrected
		}
		return OutcomeRetried
	}
	return OutcomeFailed
}
