package sched

import "time"

// traceClock provides monotonic nanosecond timestamps relative to a shared
// process epoch, so events from different workers align on one timeline.
type traceClock struct{}

var traceEpoch = time.Now()

func newTraceClock() traceClock { return traceClock{} }

func (traceClock) now() int64 { return traceNow() }

// traceNow is the shared trace timestamp: nanoseconds since the process
// trace epoch.
func traceNow() int64 { return int64(time.Since(traceEpoch)) }
