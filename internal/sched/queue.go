package sched

import "sync"

// readyShard is one worker's ready queue: a slice-backed max-heap ordered
// by (Priority, FIFO seq) behind its own mutex. Sharding the ready set per
// worker keeps enqueue/dequeue off the runtime-wide dependence lock — the
// per-task dispatch cost that dominates fine-grained tile DAGs — while the
// heap preserves priority order within each shard. A worker drains its own
// shard first (tasks its finishes made ready stay local) and steals the
// top of another shard when it runs dry.
type readyShard struct {
	mu sync.Mutex
	q  []*node
}

// runsBefore reports whether a should run before b when both are ready:
// higher priority first, submission order breaking ties.
func runsBefore(a, b *node) bool {
	if a.task.Priority != b.task.Priority {
		return a.task.Priority > b.task.Priority
	}
	return a.seq < b.seq
}

// push adds n to the shard.
func (s *readyShard) push(n *node) {
	s.mu.Lock()
	s.q = append(s.q, n)
	i := len(s.q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !runsBefore(s.q[i], s.q[p]) {
			break
		}
		s.q[i], s.q[p] = s.q[p], s.q[i]
		i = p
	}
	s.mu.Unlock()
}

// pop removes and returns the highest-priority node, or nil when the shard
// is empty. The node's enqueued flag is cleared under the shard lock, so a
// concurrent re-enqueue (retry, watchdog) observes a consistent state.
func (s *readyShard) pop() *node {
	s.mu.Lock()
	if len(s.q) == 0 {
		s.mu.Unlock()
		return nil
	}
	n := s.q[0]
	last := len(s.q) - 1
	s.q[0] = s.q[last]
	s.q[last] = nil
	s.q = s.q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && runsBefore(s.q[l], s.q[best]) {
			best = l
		}
		if r < last && runsBefore(s.q[r], s.q[best]) {
			best = r
		}
		if best == i {
			break
		}
		s.q[i], s.q[best] = s.q[best], s.q[i]
		i = best
	}
	n.enqueued.Store(false)
	s.mu.Unlock()
	return n
}
