package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chainGraph builds a linear chain of n unit-cost tasks.
func chainGraph(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		node := GraphNode{Name: "t", Cost: 1}
		if i > 0 {
			node.Deps = []int{i - 1}
		}
		g.Nodes = append(g.Nodes, node)
	}
	return g
}

// wideGraph builds n independent unit-cost tasks.
func wideGraph(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, GraphNode{Name: "t", Cost: 1})
	}
	return g
}

func TestSimulateChain(t *testing.T) {
	g := chainGraph(10)
	for _, w := range []int{1, 2, 16} {
		res := Simulate(g, w)
		if math.Abs(res.Makespan-10) > 1e-12 {
			t.Errorf("chain with %d workers: makespan %v, want 10", w, res.Makespan)
		}
	}
	if cp := g.CriticalPath(); math.Abs(cp-10) > 1e-12 {
		t.Errorf("critical path %v, want 10", cp)
	}
}

func TestSimulateWide(t *testing.T) {
	g := wideGraph(12)
	cases := []struct {
		workers int
		want    float64
	}{{1, 12}, {2, 6}, {3, 4}, {4, 3}, {12, 1}, {100, 1}}
	for _, c := range cases {
		res := Simulate(g, c.workers)
		if math.Abs(res.Makespan-c.want) > 1e-12 {
			t.Errorf("wide with %d workers: makespan %v, want %v", c.workers, res.Makespan, c.want)
		}
	}
	if cp := g.CriticalPath(); math.Abs(cp-1) > 1e-12 {
		t.Errorf("critical path %v, want 1", cp)
	}
}

func TestSimulateForkJoinVsDataflow(t *testing.T) {
	// Two phases of 4 unit tasks each where only one cross dependence
	// exists. Fork–join (barrier) needs ≥ 2 rounds regardless; dataflow
	// overlaps everything except the single chain.
	df := &Graph{Nodes: []GraphNode{
		{Cost: 1}, {Cost: 1}, {Cost: 1}, {Cost: 1},
		{Cost: 1, Deps: []int{0}}, {Cost: 1}, {Cost: 1}, {Cost: 1},
	}}
	fj := &Graph{Nodes: []GraphNode{
		{Cost: 1}, {Cost: 1}, {Cost: 1}, {Cost: 1},
		{Barrier: true, Deps: []int{0, 1, 2, 3}},
		{Cost: 1, Deps: []int{4}}, {Cost: 1, Deps: []int{4}},
		{Cost: 1, Deps: []int{4}}, {Cost: 1, Deps: []int{4}},
	}}
	// With 8 workers dataflow finishes in 2 (the chain), and so does
	// fork-join; with 4 workers both need 2; with 8 workers but uneven
	// split dataflow wins. Use 7 workers: dataflow can start phase-2 tasks
	// 5..7 immediately (they have no deps), finishing in max(chain)=2;
	// fork-join still needs 2 full rounds = 2. Distinguish via utilization
	// at 3 workers.
	dfRes := Simulate(df, 3)
	fjRes := Simulate(fj, 3)
	if dfRes.Makespan > fjRes.Makespan+1e-12 {
		t.Errorf("dataflow (%v) slower than fork-join (%v)", dfRes.Makespan, fjRes.Makespan)
	}
	if dfRes.Busy != 8 || fjRes.Busy != 8 {
		t.Errorf("busy time wrong: %v %v", dfRes.Busy, fjRes.Busy)
	}
}

func TestSimulateRespectsDeps(t *testing.T) {
	// Diamond: 0 → {1, 2} → 3, costs 1; with ∞ workers makespan is 3.
	g := &Graph{Nodes: []GraphNode{
		{Cost: 1},
		{Cost: 1, Deps: []int{0}},
		{Cost: 1, Deps: []int{0}},
		{Cost: 1, Deps: []int{1, 2}},
	}}
	res := Simulate(g, 16)
	if math.Abs(res.Makespan-3) > 1e-12 {
		t.Errorf("diamond makespan %v, want 3", res.Makespan)
	}
}

// Property: makespan is monotone non-increasing in workers, bounded below
// by max(critical path, total/P) and above by total work.
func TestSimulateBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := &Graph{}
		for i := 0; i < n; i++ {
			node := GraphNode{Cost: rng.Float64() + 0.01}
			// Random deps on earlier nodes.
			for d := 0; d < i; d++ {
				if rng.Intn(8) == 0 {
					node.Deps = append(node.Deps, d)
				}
			}
			g.Nodes = append(g.Nodes, node)
		}
		total := g.TotalWork()
		cp := g.CriticalPath()
		prev := math.Inf(1)
		for _, w := range []int{1, 2, 4, 8, 64} {
			res := Simulate(g, w)
			lower := math.Max(cp, total/float64(w))
			if res.Makespan > total+1e-9 || res.Makespan < lower-1e-9 {
				return false
			}
			// Greedy list scheduling guarantees ≤ 2·OPT; monotonicity in
			// workers can be violated by greedy anomalies in theory, but
			// the 2x bound must always hold.
			if res.Makespan > 2*lower+1e-9 {
				return false
			}
			_ = prev
			prev = res.Makespan
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRecorderGraph(t *testing.T) {
	rec := NewRecorder()
	h1, h2 := "a", "b"
	order := []string{}
	rec.Submit(Task{Name: "w1", Writes: []Handle{h1}, Fn: func() { order = append(order, "w1") }})
	rec.Submit(Task{Name: "w2", Writes: []Handle{h2}, Fn: func() { order = append(order, "w2") }})
	rec.Submit(Task{Name: "r12", Reads: []Handle{h1, h2}, Fn: func() { order = append(order, "r12") }})
	g := rec.Graph()
	if len(g.Nodes) != 3 {
		t.Fatalf("%d nodes", len(g.Nodes))
	}
	if len(g.Nodes[0].Deps) != 0 || len(g.Nodes[1].Deps) != 0 {
		t.Error("independent writers must have no deps")
	}
	deps := g.Nodes[2].Deps
	if len(deps) != 2 {
		t.Errorf("reader deps %v, want both writers", deps)
	}
	// Inline execution order must match submission order.
	want := []string{"w1", "w2", "r12"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v", order)
		}
	}
}

func TestRecorderBarrier(t *testing.T) {
	rec := NewRecorder()
	rec.Submit(Task{Name: "a"})
	rec.Submit(Task{Name: "b"})
	rec.Wait()
	rec.Submit(Task{Name: "c"})
	g := rec.Graph()
	if len(g.Nodes) != 4 {
		t.Fatalf("%d nodes, want 4 (incl. barrier)", len(g.Nodes))
	}
	bar := g.Nodes[2]
	if !bar.Barrier || len(bar.Deps) != 2 {
		t.Errorf("barrier node malformed: %+v", bar)
	}
	c := g.Nodes[3]
	found := false
	for _, d := range c.Deps {
		if d == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("task after barrier lacks barrier dep: %v", c.Deps)
	}
	if g.Tasks() != 3 {
		t.Errorf("Tasks() = %d, want 3", g.Tasks())
	}
	// Consecutive barriers collapse.
	rec.Wait()
	rec.Wait()
	if len(rec.Graph().Nodes) != 5 {
		t.Errorf("double barrier added extra nodes: %d", len(rec.Graph().Nodes))
	}
}

func TestRecorderMeasuresCost(t *testing.T) {
	rec := NewRecorder()
	rec.Submit(Task{Name: "spin", Fn: func() {
		s := 0.0
		for i := 0; i < 100000; i++ {
			s += float64(i)
		}
		_ = s
	}})
	g := rec.Graph()
	if g.Nodes[0].Cost <= 0 {
		t.Error("cost not measured")
	}
}

func TestSimulateEmptyGraph(t *testing.T) {
	res := Simulate(&Graph{}, 4)
	if res.Makespan != 0 {
		t.Errorf("empty graph makespan %v", res.Makespan)
	}
}
