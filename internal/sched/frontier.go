package sched

import "fmt"

// Frontier is the dependence-tracking half of the runtime, factored out so
// the ready set can be *pulled* by an external executor — the distributed
// coordinator leases ready tasks to remote workers over RPC, which the
// goroutine-pool Runtime's push-based dispatch cannot express.
//
// Tasks are added in submission order with declared read/write handles,
// exactly like Runtime.Submit, and the same RAW/WAR/WAW rules apply. A task
// becomes ready when its last unmet dependence completes; the Frontier
// reports that by calling onReady (synchronously, from inside Add or
// Complete) and otherwise holds no queue of its own — queueing policy
// (priorities, placement, work stealing) belongs to the caller. Complete
// retires a task and releases its successors; an executor that loses a task
// mid-flight (a dead worker) simply re-runs it and calls Complete once.
//
// Frontier is not safe for concurrent use; callers serialize access (the
// distributed coordinator holds its own mutex across every call).
type Frontier struct {
	last    map[Handle]*faccess
	nodes   map[int]*fnode
	pending int
	onReady func(id int)
}

type fnode struct {
	id    int
	succs []*fnode
	nDeps int
	done  bool
}

type faccess struct {
	lastWriter *fnode
	readers    []*fnode
}

// NewFrontier returns an empty Frontier. onReady is invoked exactly once
// per task, when its dependences are all satisfied; it must not call back
// into the Frontier.
func NewFrontier(onReady func(id int)) *Frontier {
	return &Frontier{
		last:    make(map[Handle]*faccess),
		nodes:   make(map[int]*fnode),
		onReady: onReady,
	}
}

// Add registers task id with its declared accesses. IDs must be unique and
// are the caller's names for tasks; Add panics on a duplicate. Dependences
// on earlier tasks are derived from the handles in submission order.
func (f *Frontier) Add(id int, reads, writes []Handle) {
	if _, dup := f.nodes[id]; dup {
		panic(fmt.Sprintf("sched: Frontier.Add duplicate task %d", id))
	}
	n := &fnode{id: id}
	f.nodes[id] = n
	f.pending++
	addDep := func(from *fnode) {
		if from == nil || from == n || from.done {
			return
		}
		from.succs = append(from.succs, n)
		n.nDeps++
	}
	for _, h := range reads {
		acc := f.acc(h)
		addDep(acc.lastWriter)
		if !handleIn(writes, h) {
			acc.readers = append(acc.readers, n)
		}
	}
	for _, h := range writes {
		acc := f.acc(h)
		addDep(acc.lastWriter)
		for _, rd := range acc.readers {
			addDep(rd)
		}
		acc.lastWriter = n
		acc.readers = acc.readers[:0]
	}
	if n.nDeps == 0 {
		f.onReady(id)
	}
}

func (f *Frontier) acc(h Handle) *faccess {
	a := f.last[h]
	if a == nil {
		a = &faccess{}
		f.last[h] = a
	}
	return a
}

// Complete retires task id and releases its successors, reporting any that
// became ready through onReady. Completing an unknown or already-completed
// task panics: with at-least-once remote execution the *caller* decides
// which attempt wins, and must call Complete exactly once for it.
func (f *Frontier) Complete(id int) {
	n := f.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("sched: Frontier.Complete of unknown task %d", id))
	}
	if n.done {
		panic(fmt.Sprintf("sched: Frontier.Complete of completed task %d", id))
	}
	n.done = true
	f.pending--
	for _, s := range n.succs {
		s.nDeps--
		if s.nDeps == 0 {
			f.onReady(s.id)
		}
	}
}

// Completed reports whether task id has been completed.
func (f *Frontier) Completed(id int) bool {
	n := f.nodes[id]
	return n != nil && n.done
}

// Pending returns the number of added-but-not-completed tasks.
func (f *Frontier) Pending() int { return f.pending }

// Done reports whether every added task has completed.
func (f *Frontier) Done() bool { return f.pending == 0 }
