package sched

import "container/heap"

// SimResult summarizes a simulated execution of a recorded graph.
type SimResult struct {
	// Makespan is the simulated wall-clock time in seconds.
	Makespan float64
	// Busy is the total worker-busy time in seconds (equals the graph's
	// TotalWork).
	Busy float64
	// Utilization is Busy / (Workers · Makespan) in [0, 1].
	Utilization float64
	// Workers echoes the simulated worker count.
	Workers int
}

// SimEvent is one task execution in a simulated schedule, attributed to a
// virtual worker; times are in seconds.
type SimEvent struct {
	// ID is the task's node index in the simulated graph.
	ID     int
	Name   string
	Worker int
	// Ready is when the task's last dependency finished (0 for initial
	// tasks); Start-Ready is the simulated queue wait.
	Ready float64
	Start float64
	End   float64
}

// Simulate replays a recorded graph under the given number of virtual
// workers using event-driven greedy list scheduling: whenever a worker is
// free, it takes the highest-priority ready task (FIFO tie-break). This is
// the same policy the real Runtime uses, so simulated scaling reflects what
// the runtime would do on a machine with that many cores.
func Simulate(g *Graph, workers int) SimResult {
	res, _ := simulate(g, workers, false)
	return res
}

// SimulateEvents is Simulate returning the per-task schedule for Gantt
// rendering and timeline analysis. Barrier nodes are omitted from events.
func SimulateEvents(g *Graph, workers int) (SimResult, []SimEvent) {
	return simulate(g, workers, true)
}

func simulate(g *Graph, workers int, record bool) (SimResult, []SimEvent) {
	if workers < 1 {
		workers = 1
	}
	n := len(g.Nodes)
	if n == 0 {
		return SimResult{Workers: workers, Utilization: 1}, nil
	}

	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, node := range g.Nodes {
		indeg[i] = len(node.Deps)
		for _, d := range node.Deps {
			succs[d] = append(succs[d], i)
		}
	}
	var ready simReadyQueue // deps met
	var running simRunningQueue
	readyAt := make([]float64, n)
	for i := range g.Nodes {
		if indeg[i] == 0 {
			heap.Push(&ready, simTask{idx: i, prio: g.Nodes[i].Priority})
		}
	}

	// Free-worker IDs for event attribution.
	freeIDs := make([]int, workers)
	for i := range freeIDs {
		freeIDs[i] = workers - 1 - i // pop order: 0, 1, 2, ...
	}
	var events []SimEvent

	now := 0.0
	var makespan, busy float64
	for {
		// Start as many ready tasks as there are free workers.
		for len(freeIDs) > 0 && ready.Len() > 0 {
			t := heap.Pop(&ready).(simTask)
			w := freeIDs[len(freeIDs)-1]
			freeIDs = freeIDs[:len(freeIDs)-1]
			cost := g.Nodes[t.idx].Cost
			finish := now + cost
			heap.Push(&running, simEvent{time: finish, idx: t.idx, worker: w})
			busy += cost
			if record && !g.Nodes[t.idx].Barrier {
				events = append(events, SimEvent{
					ID: t.idx, Name: g.Nodes[t.idx].Name, Worker: w,
					Ready: readyAt[t.idx], Start: now, End: finish,
				})
			}
		}
		if running.Len() == 0 {
			break // nothing running and nothing ready: done
		}
		now = running[0].time
		// Complete everything finishing at 'now'.
		for running.Len() > 0 && running[0].time <= now {
			ev := heap.Pop(&running).(simEvent)
			freeIDs = append(freeIDs, ev.worker)
			if ev.time > makespan {
				makespan = ev.time
			}
			for _, s := range succs[ev.idx] {
				indeg[s]--
				if indeg[s] == 0 {
					readyAt[s] = now
					heap.Push(&ready, simTask{idx: s, prio: g.Nodes[s].Priority, seq: s})
				}
			}
		}
	}
	res := SimResult{Makespan: makespan, Busy: busy, Workers: workers}
	if makespan > 0 {
		res.Utilization = busy / (float64(workers) * makespan)
	} else {
		res.Utilization = 1
	}
	return res, events
}

type simTask struct {
	idx  int
	prio int
	seq  int
}

type simReadyQueue []simTask

func (q simReadyQueue) Len() int { return len(q) }
func (q simReadyQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio > q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q simReadyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *simReadyQueue) Push(x any)   { *q = append(*q, x.(simTask)) }
func (q *simReadyQueue) Pop() any {
	old := *q
	t := old[len(old)-1]
	*q = old[:len(old)-1]
	return t
}

type simEvent struct {
	time   float64
	idx    int
	worker int
}

type simRunningQueue []simEvent

func (q simRunningQueue) Len() int           { return len(q) }
func (q simRunningQueue) Less(i, j int) bool { return q[i].time < q[j].time }
func (q simRunningQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *simRunningQueue) Push(x any)        { *q = append(*q, x.(simEvent)) }
func (q *simRunningQueue) Pop() any {
	old := *q
	t := old[len(old)-1]
	*q = old[:len(old)-1]
	return t
}
