package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The stress tests drive the Runtime with thousands of tiny tasks over
// overlapping read/write handle sets and verify dependence correctness with
// a per-handle version harness:
//
//   - at submission time (sequential) each task records the version every
//     handle it touches must have when the task runs, derived from a model
//     where each write increments the handle's version;
//   - at execution time the task checks the live versions against the
//     recorded ones and writers bump them.
//
// The live version slots are deliberately plain (non-atomic) int64s: the
// scheduler's dependence edges are the only thing ordering conflicting
// accesses, so under `go test -race` any missing RAW/WAR/WAW edge surfaces
// either as a race report or as a version mismatch.

// violationLog collects dependence violations observed inside tasks.
type violationLog struct {
	mu   sync.Mutex
	msgs []string
}

func (v *violationLog) addf(format string, args ...any) {
	v.mu.Lock()
	if len(v.msgs) < 20 { // enough to diagnose, bounded to keep failures readable
		v.msgs = append(v.msgs, fmt.Sprintf(format, args...))
	}
	v.mu.Unlock()
}

// pickDistinct draws k distinct ints in [0, n).
func pickDistinct(rng *rand.Rand, n, k int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		h := rng.Intn(n)
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

func runVersionStress(t *testing.T, workers, nHandles, nTasks int, barrierEvery int, seed int64, opts ...Option) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rt := New(workers, append([]Option{WithMetrics(nil)}, opts...)...)
	defer rt.Shutdown()

	live := make([]int64, nHandles)      // mutated only inside tasks
	simulated := make([]int64, nHandles) // submission-time model
	var viol violationLog

	for i := 0; i < nTasks; i++ {
		reads := pickDistinct(rng, nHandles, 1+rng.Intn(3))
		writes := pickDistinct(rng, nHandles, 1+rng.Intn(2))

		// Expected version per touched handle, from the sequential model.
		expect := make(map[int]int64, len(reads)+len(writes))
		for _, h := range reads {
			expect[h] = simulated[h]
		}
		for _, h := range writes {
			expect[h] = simulated[h]
		}
		for _, h := range writes {
			simulated[h]++
		}

		rh := make([]Handle, len(reads))
		for i, h := range reads {
			rh[i] = h
		}
		wh := make([]Handle, len(writes))
		for i, h := range writes {
			wh[i] = h
		}
		task, myReads, myWrites := i, reads, writes
		rt.Submit(Task{
			Name:     "tiny",
			Reads:    rh,
			Writes:   wh,
			Priority: rng.Intn(5),
			Fn: func() {
				for _, h := range myReads {
					if v := live[h]; v != expect[h] {
						viol.addf("task %d read handle %d at version %d, want %d", task, h, v, expect[h])
					}
				}
				for _, h := range myWrites {
					if v := live[h]; v != expect[h] {
						viol.addf("task %d wrote handle %d at version %d, want %d", task, h, v, expect[h])
					}
					live[h] = expect[h] + 1
				}
			},
		})
		if barrierEvery > 0 && i%barrierEvery == barrierEvery-1 {
			rt.Wait()
		}
	}
	rt.Wait()

	if len(viol.msgs) > 0 {
		for _, m := range viol.msgs {
			t.Error(m)
		}
		t.Fatalf("%d+ dependence violations", len(viol.msgs))
	}
	for h := range live {
		if live[h] != simulated[h] {
			t.Fatalf("handle %d finished at version %d, model says %d", h, live[h], simulated[h])
		}
	}
}

// TestRuntimeStressVersions is the pure-dataflow stress: one big DAG, no
// intermediate barriers, heavy handle contention.
func TestRuntimeStressVersions(t *testing.T) {
	nTasks := 4000
	if testing.Short() {
		nTasks = 800
	}
	runVersionStress(t, 8, 16, nTasks, 0, 1)
}

// TestRuntimeStressVersionsWide uses many handles (sparser conflicts, more
// genuine parallelism) so enqueue/dequeue paths race harder.
func TestRuntimeStressVersionsWide(t *testing.T) {
	nTasks := 4000
	if testing.Short() {
		nTasks = 800
	}
	runVersionStress(t, 8, 128, nTasks, 0, 2)
}

// TestRuntimeStressVersionsWithBarriers interleaves Wait calls, exercising
// the fork–join path of the same harness.
func TestRuntimeStressVersionsWithBarriers(t *testing.T) {
	nTasks := 2000
	if testing.Short() {
		nTasks = 500
	}
	runVersionStress(t, 4, 24, nTasks, 97, 3)
}

// TestRuntimeStressConcurrentSubmit stresses Submit racing with execution:
// a producer goroutine keeps submitting chains while workers drain them.
func TestRuntimeStressConcurrentSubmit(t *testing.T) {
	const chains, depth = 32, 50
	rt := New(8, WithMetrics(nil))
	defer rt.Shutdown()

	counts := make([]int64, chains) // each chain serializes on its own handle
	var wg sync.WaitGroup
	for c := 0; c < chains; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := 0; d < depth; d++ {
				rt.Submit(Task{
					Name:   "chain",
					Writes: []Handle{c},
					Fn:     func() { counts[c]++ },
				})
			}
		}()
	}
	wg.Wait()
	rt.Wait()
	for c, got := range counts {
		if got != depth {
			t.Fatalf("chain %d ran %d links, want %d", c, got, depth)
		}
	}
}
