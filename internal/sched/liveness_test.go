// Liveness-layer tests: the watchdog must detect attempts stuck past the
// task deadline, declare their workers dead, replace them, and re-execute
// the work through the retry path; WaitCtx must return control when a task
// body deadlocks; the hard chaos modes must exercise all of it with a
// deterministic fault budget.
package sched_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"exadla/internal/metrics"
	"exadla/internal/sched"
)

// TestWaitCtxHungBody is the satellite regression test: WaitErr blocks
// forever on a deadlocked body, WaitCtx returns ctx.Err().
func TestWaitCtxHungBody(t *testing.T) {
	rt := sched.New(2)
	release := make(chan struct{})
	rt.Submit(sched.Task{Name: "hung", Fn: func() { <-release }})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := rt.WaitCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx on hung body = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("WaitCtx took %v to honour a 50ms context", time.Since(start))
	}

	// Unblock the body: the run completes normally and the runtime stays
	// usable — cancellation abandoned the wait, not the work.
	close(release)
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr after release: %v", err)
	}
	rt.Shutdown()
}

// TestWaitCtxCleanRun checks WaitCtx degrades to WaitErr when the context
// never fires, including failure aggregation.
func TestWaitCtxCleanRun(t *testing.T) {
	rt := sched.New(2)
	defer rt.Shutdown()
	var ran atomic.Int32
	rt.Submit(sched.Task{Name: "ok", Fn: func() { ran.Add(1) }})
	if err := rt.WaitCtx(context.Background()); err != nil {
		t.Fatalf("WaitCtx clean = %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("task ran %d times", ran.Load())
	}

	boom := errors.New("boom")
	rt.Submit(sched.Task{Name: "bad", FnErr: func() error { return sched.Permanent(boom) }})
	err := rt.WaitCtx(context.Background())
	var fe *sched.FailuresError
	if !errors.As(err, &fe) || !errors.Is(err, boom) {
		t.Fatalf("WaitCtx failure = %v, want FailuresError wrapping boom", err)
	}
}

// TestWatchdogRecoversHungTask hangs a body on its first attempt only: the
// watchdog must abandon it, replace the worker, and let the retry succeed.
func TestWatchdogRecoversHungTask(t *testing.T) {
	reg := metrics.New()
	col := &spanCollector{}
	var evMu atomic.Pointer[[]sched.FailureEvent]
	evMu.Store(&[]sched.FailureEvent{})
	rt := sched.New(2,
		sched.WithTaskDeadline(40*time.Millisecond),
		sched.WithRetry(3, 0),
		sched.WithMetrics(reg),
		sched.WithTracer(col),
		sched.WithFailureObserver(func(e sched.FailureEvent) {
			evs := append(*evMu.Load(), e)
			evMu.Store(&evs)
		}))
	defer rt.Shutdown()

	stuck := make(chan struct{})
	var tries atomic.Int32
	var secondRan atomic.Int32
	rt.Submit(sched.Task{Name: "sticky", Fn: func() {
		if tries.Add(1) == 1 {
			<-stuck // first attempt hangs past the deadline
			return
		}
		secondRan.Add(1)
	}})
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr after watchdog recovery: %v", err)
	}
	close(stuck) // release the zombie goroutine

	if secondRan.Load() != 1 {
		t.Fatalf("re-executed attempt ran %d times, want 1", secondRan.Load())
	}
	snap := snapshotCounters(reg)
	if snap["sched.tasks_timed_out"] != 1 {
		t.Errorf("tasks_timed_out = %d, want 1", snap["sched.tasks_timed_out"])
	}
	if snap["sched.workers_lost"] != 1 {
		t.Errorf("workers_lost = %d, want 1", snap["sched.workers_lost"])
	}
	if snap["sched.tasks_retried"] != 1 {
		t.Errorf("tasks_retried = %d, want 1 (the timeout re-enqueue)", snap["sched.tasks_retried"])
	}

	// Span trail: attempt 1 timed out, attempt 2 ok, same task ID.
	var timedOut, ok int
	for _, sp := range col.byID() {
		for _, s := range sp {
			switch s.Outcome {
			case sched.OutcomeTimedOut:
				timedOut++
				if s.Attempt != 1 {
					t.Errorf("timed-out span attempt = %d, want 1", s.Attempt)
				}
				if s.Err == "" {
					t.Error("timed-out span has empty Err")
				}
			case sched.OutcomeOK:
				ok++
				if s.Attempt != 2 {
					t.Errorf("ok span attempt = %d, want 2", s.Attempt)
				}
			}
		}
	}
	if timedOut != 1 || ok != 1 {
		t.Errorf("spans timed_out=%d ok=%d, want 1/1", timedOut, ok)
	}

	// Failure observer saw the timeout with the TimedOut flag.
	evs := *evMu.Load()
	if len(evs) != 1 || !evs[0].TimedOut || !evs[0].Retrying {
		t.Errorf("failure events = %+v, want one retrying TimedOut event", evs)
	}
	if !errors.Is(evs[0].Err, sched.ErrTaskTimeout) {
		t.Errorf("event error %v does not wrap ErrTaskTimeout", evs[0].Err)
	}
}

// TestWatchdogTimeoutExhaustsRetries: with no retry budget a timeout is a
// permanent failure reported through WaitErr, and dependents are poisoned.
func TestWatchdogTimeoutExhaustsRetries(t *testing.T) {
	rt := sched.New(2, sched.WithTaskDeadline(30*time.Millisecond))
	defer rt.Shutdown()

	stuck := make(chan struct{})
	defer close(stuck)
	h := sched.Handle("h")
	rt.Submit(sched.Task{Name: "stuck", Writes: []sched.Handle{h}, Fn: func() { <-stuck }})
	var depRan atomic.Int32
	rt.Submit(sched.Task{Name: "dep", Reads: []sched.Handle{h}, Fn: func() { depRan.Add(1) }})

	err := rt.WaitErr()
	var fe *sched.FailuresError
	if !errors.As(err, &fe) {
		t.Fatalf("WaitErr = %v, want FailuresError", err)
	}
	if !errors.Is(err, sched.ErrTaskTimeout) {
		t.Fatalf("failure %v does not wrap ErrTaskTimeout", err)
	}
	var te *sched.TimeoutError
	if !errors.As(err, &te) || te.Kernel != "stuck" || te.Attempt != 1 {
		t.Fatalf("failure %v missing TimeoutError context", err)
	}
	if fe.Skipped != 1 || depRan.Load() != 0 {
		t.Fatalf("dependent not poisoned: skipped=%d ran=%d", fe.Skipped, depRan.Load())
	}
}

// TestHardChaosKillWorker kills workers at seeded points: the watchdog
// must replace them and re-execute their tasks; the pool must survive with
// full capacity for follow-up work.
func TestHardChaosKillWorker(t *testing.T) {
	reg := metrics.New()
	rt := sched.New(4,
		sched.WithTaskDeadline(50*time.Millisecond),
		sched.WithRetry(10, 0),
		sched.WithMetrics(reg),
		sched.WithHardChaos(99, 0.15, 0, 3))
	defer rt.Shutdown()

	var ran atomic.Int32
	for i := 0; i < 60; i++ {
		rt.Submit(sched.Task{Name: "work", Fn: func() { ran.Add(1) }})
	}
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr under worker-kill chaos: %v", err)
	}
	if ran.Load() != 60 {
		t.Fatalf("ran %d tasks, want 60", ran.Load())
	}
	snap := snapshotCounters(reg)
	lost := snap["sched.workers_lost"]
	if lost == 0 || lost > 3 {
		t.Fatalf("workers_lost = %d, want 1..3 (budget 3, p=0.15 over 60 tasks)", lost)
	}
	if snap["sched.tasks_timed_out"] != lost {
		t.Errorf("tasks_timed_out = %d != workers_lost = %d", snap["sched.tasks_timed_out"], lost)
	}

	// The pool still has its full capacity: more work completes.
	for i := 0; i < 20; i++ {
		rt.Submit(sched.Task{Name: "more", Fn: func() { ran.Add(1) }})
	}
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr after recovery: %v", err)
	}
	if ran.Load() != 80 {
		t.Fatalf("ran %d tasks total, want 80", ran.Load())
	}
}

// TestHardChaosHangTask hangs attempts at seeded points; the watchdog
// abandons them and the retry path completes the work.
func TestHardChaosHangTask(t *testing.T) {
	reg := metrics.New()
	rt := sched.New(4,
		sched.WithTaskDeadline(50*time.Millisecond),
		sched.WithRetry(10, 0),
		sched.WithMetrics(reg),
		sched.WithHardChaos(7, 0, 0.2, 2))
	defer rt.Shutdown()

	var ran atomic.Int32
	for i := 0; i < 40; i++ {
		rt.Submit(sched.Task{Name: "work", Fn: func() { ran.Add(1) }})
	}
	if err := rt.WaitErr(); err != nil {
		t.Fatalf("WaitErr under hang chaos: %v", err)
	}
	if ran.Load() != 40 {
		t.Fatalf("ran %d tasks, want 40", ran.Load())
	}
	snap := snapshotCounters(reg)
	if snap["sched.tasks_timed_out"] == 0 {
		t.Error("hang chaos at p=0.2 triggered no watchdog abandonments")
	}
	if snap["sched.tasks_timed_out"] > 2 {
		t.Errorf("tasks_timed_out = %d exceeds fault budget 2", snap["sched.tasks_timed_out"])
	}
}

// TestHardChaosRequiresDeadline: arming hard chaos without a watchdog
// deadline must panic at construction — nothing could ever recover.
func TestHardChaosRequiresDeadline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with WithHardChaos but no WithTaskDeadline did not panic")
		}
	}()
	sched.New(2, sched.WithHardChaos(1, 0.5, 0, -1))
}

// TestHardChaosDeterministicWithChaosStream: soft-chaos-only seeded runs
// must be unaffected by the hard-mode extension (no extra rng draws when
// hard probabilities are zero). Two identical soft configurations see the
// same kill pattern whether or not the (disarmed) hard option is present.
func TestHardChaosDeterministicWithChaosStream(t *testing.T) {
	runPattern := func(opts ...sched.Option) []int {
		var mu atomic.Pointer[[]int]
		seqs := []int{}
		mu.Store(&seqs)
		all := append([]sched.Option{
			sched.WithRetry(100, 0),
			sched.WithFailureObserver(func(e sched.FailureEvent) {
				s := append(*mu.Load(), e.Seq)
				mu.Store(&s)
			}),
		}, opts...)
		rt := sched.New(1, all...)
		defer rt.Shutdown()
		for i := 0; i < 50; i++ {
			rt.Submit(sched.Task{Name: "probe", Fn: func() {}})
		}
		rt.Wait()
		return *mu.Load()
	}

	base := runPattern(sched.WithChaos(42, 0.2, nil))
	withDisarmed := runPattern(sched.WithChaos(42, 0.2, nil), sched.WithHardChaos(42, 0, 0, -1))
	if len(base) == 0 {
		t.Fatal("soft chaos at p=0.2 injected nothing")
	}
	if len(base) != len(withDisarmed) {
		t.Fatalf("disarmed hard chaos changed the soft stream: %d vs %d kills", len(base), len(withDisarmed))
	}
	for i := range base {
		if base[i] != withDisarmed[i] {
			t.Fatalf("kill pattern diverged at %d: seq %d vs %d", i, base[i], withDisarmed[i])
		}
	}
}

// snapshotCounters flattens a registry snapshot's counters by name.
func snapshotCounters(reg *metrics.Registry) map[string]int64 {
	return reg.Snapshot().Counters
}
