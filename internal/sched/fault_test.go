package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exadla/internal/metrics"
)

// --- failure aggregation -------------------------------------------------

func TestFnErrFailureNamesKernel(t *testing.T) {
	r := New(2, WithMetrics(nil))
	defer r.Shutdown()
	boom := errors.New("singular pivot")
	r.Submit(Task{Name: "getrf", Writes: []Handle{"a"}, FnErr: func() error { return Permanent(boom) }})
	r.Submit(Task{Name: "ok", Fn: func() {}})
	err := r.WaitErr()
	var fe *FailuresError
	if !errors.As(err, &fe) {
		t.Fatalf("WaitErr = %v, want *FailuresError", err)
	}
	if len(fe.Failures) != 1 {
		t.Fatalf("got %d failures, want 1", len(fe.Failures))
	}
	f := fe.Failures[0]
	if f.Kernel != "getrf" || f.Attempts != 1 || f.Panicked {
		t.Errorf("failure = %+v, want kernel getrf, 1 attempt, no panic", f)
	}
	if len(f.Writes) != 1 || f.Writes[0] != Handle("a") {
		t.Errorf("failure writes = %v, want [a]", f.Writes)
	}
	if !errors.Is(err, boom) {
		t.Error("errors.Is could not reach the root cause through the aggregate")
	}
	// The error text must carry the kernel name for operators.
	if msg := err.Error(); !contains(msg, "getrf") {
		t.Errorf("error text %q does not name the kernel", msg)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestWaitPanicsOnErrorFailure(t *testing.T) {
	// Wait (the legacy form) stays fail-fast: a non-panic task failure is
	// raised as a *FailuresError panic.
	r := New(1, WithMetrics(nil))
	defer r.Shutdown()
	r.Submit(Task{Name: "bad", FnErr: func() error { return Permanent(errors.New("no")) }})
	defer func() {
		p := recover()
		if _, ok := p.(*FailuresError); !ok {
			t.Errorf("Wait panicked with %v, want *FailuresError", p)
		}
	}()
	r.Wait()
	t.Error("Wait returned despite a failed task")
}

// --- retry policy --------------------------------------------------------

func TestRetryTransientSucceeds(t *testing.T) {
	var events []FailureEvent
	var mu sync.Mutex
	reg := metrics.New()
	r := New(4,
		WithMetrics(reg),
		WithRetry(3, 0),
		WithFailureObserver(func(ev FailureEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	defer r.Shutdown()

	var runs atomic.Int64
	r.Submit(Task{Name: "flaky", FnErr: func() error {
		if runs.Add(1) <= 2 {
			return errors.New("transient glitch")
		}
		return nil
	}})
	if err := r.WaitErr(); err != nil {
		t.Fatalf("WaitErr = %v after retries, want nil", err)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("body ran %d times, want 3 (2 failures + success)", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(events))
	}
	for i, ev := range events {
		if !ev.Retrying || ev.Kernel != "flaky" || ev.Attempt != i+1 {
			t.Errorf("event %d = %+v, want retrying flaky attempt %d", i, ev, i+1)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sched.tasks_retried"]; got != 2 {
		t.Errorf("sched.tasks_retried = %d, want 2", got)
	}
	if got := snap.Counters["sched.tasks_failed"]; got != 0 {
		t.Errorf("sched.tasks_failed = %d, want 0", got)
	}
}

func TestRetryBackoffPathSucceeds(t *testing.T) {
	// Nonzero backoff routes re-enqueues through time.AfterFunc; Wait must
	// keep blocking across the gap (the node stays in flight).
	r := New(2, WithMetrics(nil), WithRetry(5, time.Millisecond))
	defer r.Shutdown()
	var runs atomic.Int64
	r.Submit(Task{Name: "flaky", FnErr: func() error {
		if runs.Add(1) <= 3 {
			return errors.New("again")
		}
		return nil
	}})
	if err := r.WaitErr(); err != nil {
		t.Fatalf("WaitErr = %v, want nil", err)
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("body ran %d times, want 4", got)
	}
}

func TestRetryExhausted(t *testing.T) {
	r := New(2, WithMetrics(nil), WithRetry(2, 0))
	defer r.Shutdown()
	var runs atomic.Int64
	r.Submit(Task{Name: "doomed", FnErr: func() error {
		runs.Add(1)
		return errors.New("always")
	}})
	err := r.WaitErr()
	var fe *FailuresError
	if !errors.As(err, &fe) || len(fe.Failures) != 1 {
		t.Fatalf("WaitErr = %v, want one aggregated failure", err)
	}
	if got := fe.Failures[0].Attempts; got != 3 {
		t.Errorf("recorded %d attempts, want 3 (max retries 2 + original)", got)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("body ran %d times, want 3", got)
	}
}

func TestPanicNotRetried(t *testing.T) {
	r := New(2, WithMetrics(nil), WithRetry(5, 0))
	defer r.Shutdown()
	var runs atomic.Int64
	r.Submit(Task{Name: "crash", Fn: func() {
		runs.Add(1)
		panic("corrupted state")
	}})
	err := r.WaitErr()
	var fe *FailuresError
	if !errors.As(err, &fe) || len(fe.Failures) != 1 {
		t.Fatalf("WaitErr = %v, want one failure", err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("panicking body ran %d times, want 1 (no retry)", got)
	}
	if !fe.Failures[0].Panicked || fe.Failures[0].PanicValue != "corrupted state" {
		t.Errorf("failure = %+v, want panicked with original value", fe.Failures[0])
	}
}

func TestPermanentNotRetried(t *testing.T) {
	r := New(2, WithMetrics(nil), WithRetry(5, 0))
	defer r.Shutdown()
	var runs atomic.Int64
	root := errors.New("matrix not positive definite")
	r.Submit(Task{Name: "potrf", FnErr: func() error {
		runs.Add(1)
		return Permanent(root)
	}})
	err := r.WaitErr()
	if err == nil {
		t.Fatal("WaitErr = nil, want failure")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("Permanent-failing body ran %d times, want 1", got)
	}
	if !errors.Is(err, root) {
		t.Error("root cause not reachable through Permanent wrapper")
	}
}

func TestBackoffCapped(t *testing.T) {
	r := New(1, WithMetrics(nil), WithRetry(100, time.Millisecond))
	defer r.Shutdown()
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{1, time.Millisecond},
		{2, 2 * time.Millisecond},
		{3, 4 * time.Millisecond},
		{7, 64 * time.Millisecond},
		{8, 64 * time.Millisecond},  // capped
		{50, 64 * time.Millisecond}, // still capped
	}
	for _, c := range cases {
		if got := r.backoffFor(c.attempt); got != c.want {
			t.Errorf("backoffFor(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
}

// --- poisoning -----------------------------------------------------------

func TestPoisonPropagatesThroughChain(t *testing.T) {
	// fail → b → c: both transitive dependents are skipped; an independent
	// chain on another handle is untouched.
	r := New(4, WithMetrics(nil))
	defer r.Shutdown()
	var ran sync.Map
	mark := func(name string) func() { return func() { ran.Store(name, true) } }
	r.Submit(Task{Name: "fail", Writes: []Handle{"x"}, FnErr: func() error {
		return Permanent(errors.New("dead"))
	}})
	r.Submit(Task{Name: "b", Reads: []Handle{"x"}, Writes: []Handle{"y"}, Fn: mark("b")})
	r.Submit(Task{Name: "c", Reads: []Handle{"y"}, Fn: mark("c")})
	r.Submit(Task{Name: "other1", Writes: []Handle{"z"}, Fn: mark("other1")})
	r.Submit(Task{Name: "other2", Reads: []Handle{"z"}, Fn: mark("other2")})
	err := r.WaitErr()
	var fe *FailuresError
	if !errors.As(err, &fe) {
		t.Fatalf("WaitErr = %v, want *FailuresError", err)
	}
	if fe.Skipped != 2 {
		t.Errorf("skipped = %d, want 2 (the poisoned chain)", fe.Skipped)
	}
	for _, name := range []string{"b", "c"} {
		if _, ok := ran.Load(name); ok {
			t.Errorf("poisoned task %q ran", name)
		}
	}
	for _, name := range []string{"other1", "other2"} {
		if _, ok := ran.Load(name); !ok {
			t.Errorf("independent task %q did not run", name)
		}
	}
}

func TestPoisonedEpochThenCleanEpoch(t *testing.T) {
	// After WaitErr consumes a failed epoch the runtime must be fully
	// reusable: fresh tasks on the same handles run normally.
	r := New(2, WithMetrics(nil))
	defer r.Shutdown()
	r.Submit(Task{Name: "fail", Writes: []Handle{"x"}, FnErr: func() error {
		return Permanent(errors.New("dead"))
	}})
	r.Submit(Task{Name: "victim", Reads: []Handle{"x"}, Fn: func() {}})
	if err := r.WaitErr(); err == nil {
		t.Fatal("first epoch should fail")
	}
	var ok atomic.Bool
	r.Submit(Task{Name: "fresh", Writes: []Handle{"x"}, Fn: func() { ok.Store(true) }})
	if err := r.WaitErr(); err != nil {
		t.Fatalf("second epoch failed: %v", err)
	}
	if !ok.Load() {
		t.Error("fresh task on the previously poisoned handle did not run")
	}
}

// --- chaos layer ---------------------------------------------------------

func TestChaosKillsWithoutRunningBody(t *testing.T) {
	// p=1 chaos with no retry: the body never executes, and the aggregated
	// error names the kernel and unwraps to ErrInjected — no panic anywhere.
	r := New(2, WithMetrics(nil), WithChaos(7, 1.0, nil))
	defer r.Shutdown()
	var runs atomic.Int64
	r.Submit(Task{Name: "syrk", Fn: func() { runs.Add(1) }})
	err := r.WaitErr()
	if runs.Load() != 0 {
		t.Error("chaos-killed attempt still ran the body")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("WaitErr = %v, want wrapped ErrInjected", err)
	}
	var fe *FailuresError
	if !errors.As(err, &fe) || fe.Failures[0].Kernel != "syrk" {
		t.Errorf("aggregate %v does not name the killed kernel", err)
	}
}

func TestChaosWithRetryCompletes(t *testing.T) {
	// Seeded chaos at p=0.05 with a generous retry budget: every task
	// eventually runs exactly once (the body is only executed on the
	// surviving attempt), so the computation is exact.
	reg := metrics.New()
	r := New(4, WithMetrics(reg), WithRetry(50, 0), WithChaos(42, 0.05, nil))
	defer r.Shutdown()
	var count atomic.Int64
	for i := 0; i < 500; i++ {
		r.Submit(Task{Name: "inc", FnErr: func() error { count.Add(1); return nil }})
	}
	if err := r.WaitErr(); err != nil {
		t.Fatalf("WaitErr = %v, want nil", err)
	}
	if got := count.Load(); got != 500 {
		t.Errorf("bodies ran %d times, want exactly 500", got)
	}
	if got := reg.Snapshot().Counters["sched.tasks_retried"]; got == 0 {
		t.Error("p=0.05 over 500 tasks retried nothing — chaos not active?")
	}
}

func TestChaosRetriedCountDeterministic(t *testing.T) {
	// The chaos stream is a single seeded sequence consuming one draw per
	// attempt, so the TOTAL number of injected failures is a function of
	// (seed, task count) alone — independent of worker interleaving. Two
	// runs with the same seed must retry the same number of attempts.
	run := func(seed int64) int64 {
		var retried atomic.Int64
		r := New(8, WithMetrics(nil), WithRetry(100, 0), WithChaos(seed, 0.1, nil),
			WithFailureObserver(func(ev FailureEvent) {
				if ev.Retrying {
					retried.Add(1)
				}
			}))
		defer r.Shutdown()
		for i := 0; i < 300; i++ {
			r.Submit(Task{Name: "t", Fn: func() {}})
		}
		if err := r.WaitErr(); err != nil {
			t.Fatalf("WaitErr = %v", err)
		}
		return retried.Load()
	}
	a, b := run(1234), run(1234)
	if a != b {
		t.Errorf("same seed retried %d vs %d attempts", a, b)
	}
	if a == 0 {
		t.Error("seed 1234 at p=0.1 over 300 tasks injected nothing")
	}
	if c := run(99); c == a {
		t.Logf("different seed coincidentally retried the same count (%d) — acceptable", c)
	}
}

// TestChaosVersionStressDeterministic reruns the dependence-correctness
// stress harness under chaos + retry: injected kills must not reorder,
// drop, or double-execute any task (bodies run exactly once, on the
// surviving attempt), so the per-handle version checks still hold.
func TestChaosVersionStressDeterministic(t *testing.T) {
	nTasks := 1500
	if testing.Short() {
		nTasks = 300
	}
	runVersionStress(t, 8, 24, nTasks, 0, 5,
		WithRetry(100, 0), WithChaos(2016, 0.05, nil))
}

// TestChaosDelayVersionStress adds scheduling jitter on top of kills —
// the numpywren "stragglers and restarts" regime — and the dependence
// harness must still pass.
func TestChaosDelayVersionStress(t *testing.T) {
	if testing.Short() {
		t.Skip("delay distribution stress is slow in -short mode")
	}
	runVersionStress(t, 8, 16, 400, 0, 6,
		WithRetry(100, 0), WithChaos(7, 0.03, UniformDelay(200*time.Microsecond)))
}

// --- Shutdown robustness (satellite: idempotent, Wait-concurrent) --------

func TestShutdownIdempotent(t *testing.T) {
	r := New(2, WithMetrics(nil))
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		r.Submit(Task{Name: "t", Fn: func() { n.Add(1) }})
	}
	r.Shutdown()
	r.Shutdown() // second call must be a no-op, not a deadlock or panic
	r.Shutdown()
	if n.Load() != 50 {
		t.Errorf("%d tasks ran before shutdown, want 50", n.Load())
	}
}

func TestShutdownConcurrentWithWait(t *testing.T) {
	// Hammer Shutdown against Wait/WaitErr/Shutdown from multiple
	// goroutines while a DAG is draining. Run with -race.
	for iter := 0; iter < 30; iter++ {
		r := New(4, WithMetrics(nil))
		for i := 0; i < 40; i++ {
			r.Submit(Task{Name: "t", Reads: []Handle{i % 4}, Writes: []Handle{(i + 1) % 4}, Fn: func() {}})
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() { defer wg.Done(); r.Shutdown() }()
		}
		wg.Add(2)
		go func() { defer wg.Done(); r.Wait() }()
		go func() { defer wg.Done(); _ = r.WaitErr() }()
		wg.Wait()
	}
}

func TestShutdownSubmitRaceHammer(t *testing.T) {
	// Submit racing Shutdown: every Submit either succeeds (and the task
	// runs before the workers stop) or panics with the documented
	// "Submit after Shutdown" error. Nothing else is acceptable.
	for iter := 0; iter < 30; iter++ {
		r := New(2, WithMetrics(nil))
		var submitted, ran atomic.Int64
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				func() {
					defer func() { recover() }() // late Submit panics by contract
					r.Submit(Task{Name: "t", Fn: func() { ran.Add(1) }})
					submitted.Add(1)
				}()
			}
		}()
		go func() {
			defer wg.Done()
			r.Shutdown()
		}()
		wg.Wait()
		r.Shutdown()
		if ran.Load() != submitted.Load() {
			t.Fatalf("iter %d: %d submits accepted but %d ran", iter, submitted.Load(), ran.Load())
		}
	}
}

func TestShutdownWaitsForBackoffRetries(t *testing.T) {
	// A task in its backoff window is still in flight; Shutdown must wait
	// for the retry to resolve rather than stopping workers under it.
	r := New(2, WithMetrics(nil), WithRetry(3, 2*time.Millisecond))
	var runs atomic.Int64
	r.Submit(Task{Name: "flaky", FnErr: func() error {
		if runs.Add(1) == 1 {
			return errors.New("first attempt dies")
		}
		return nil
	}})
	r.Shutdown()
	if got := runs.Load(); got != 2 {
		t.Errorf("Shutdown returned with %d attempts done, want 2", got)
	}
}

// --- metrics integration -------------------------------------------------

func TestFailureMetricsCounters(t *testing.T) {
	reg := metrics.New()
	r := New(2, WithMetrics(reg), WithRetry(1, 0))
	defer r.Shutdown()

	var flaky atomic.Int64
	r.Submit(Task{Name: "flaky", FnErr: func() error { // 1 retry, then succeeds
		if flaky.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	}})
	r.Submit(Task{Name: "perm", Writes: []Handle{"p"}, FnErr: func() error {
		return Permanent(errors.New("fatal"))
	}})
	r.Submit(Task{Name: "victim", Reads: []Handle{"p"}, Fn: func() {}})
	r.Submit(Task{Name: "crash", Fn: func() { panic("boom") }})
	_ = r.WaitErr()

	snap := reg.Snapshot()
	want := map[string]int64{
		"sched.tasks_submitted": 4,
		"sched.tasks_retried":   1,
		"sched.tasks_failed":    2, // perm + crash
		"sched.tasks_panicked":  1,
		"sched.tasks_skipped":   1, // victim
	}
	for name, w := range want {
		if got := snap.Counters[name]; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}

// --- Recorder parity -----------------------------------------------------

func TestRecorderFnErrAndWaitErr(t *testing.T) {
	rec := NewRecorder()
	rec.Submit(Task{Name: "ok", FnErr: func() error { return nil }})
	rec.Submit(Task{Name: "bad", FnErr: func() error { return errors.New("nope") }})
	err := rec.WaitErr()
	var fe *FailuresError
	if !errors.As(err, &fe) || len(fe.Failures) != 1 || fe.Failures[0].Kernel != "bad" {
		t.Fatalf("Recorder.WaitErr = %v, want one failure of kernel bad", err)
	}
	if err := rec.WaitErr(); err != nil {
		t.Errorf("second WaitErr = %v, want nil (failures consumed)", err)
	}
	if got := len(rec.Graph().Nodes); got != 3 { // 2 tasks + 1 barrier
		t.Errorf("graph has %d nodes, want 3", got)
	}
}

func TestGraphNodeExecutionsDefault(t *testing.T) {
	// Executions is an annotation layer: zero means one execution, so
	// pre-failure-model graphs replay unchanged.
	var n GraphNode
	if n.Executions != 0 {
		t.Errorf("zero value Executions = %d, want 0", n.Executions)
	}
}

// --- interface conformance ----------------------------------------------

var (
	_ Scheduler   = (*Runtime)(nil)
	_ Scheduler   = (*Recorder)(nil)
	_ ErrorWaiter = (*Runtime)(nil)
	_ ErrorWaiter = (*Recorder)(nil)
)

func TestFailuresErrorText(t *testing.T) {
	fe := &FailuresError{
		Failures: []*TaskError{{Kernel: "gemm", Seq: 12, Attempts: 4, Err: fmt.Errorf("bad tile")}},
		Skipped:  3,
	}
	msg := fe.Error()
	for _, want := range []string{"1 task(s) failed", "3 dependent task(s) skipped", "gemm", "4 attempt(s)"} {
		if !contains(msg, want) {
			t.Errorf("error text %q missing %q", msg, want)
		}
	}
}
