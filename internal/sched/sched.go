// Package sched implements the dataflow task runtime at the core of the
// library — the Go analogue of PLASMA's QUARK scheduler.
//
// Algorithms submit Tasks that declare which data they read and write
// through opaque comparable Handles (in practice: matrix tiles). The runtime
// derives read-after-write, write-after-read and write-after-write
// dependences automatically, in submission order, and executes tasks on a
// worker pool as soon as their dependences are satisfied. This is the
// "dynamic DAG scheduling" the extreme-scale argument advocates over
// fork–join: no artificial barriers, idle time limited to genuine critical
// path constraints.
//
// Two Scheduler implementations are provided:
//
//   - Runtime executes tasks on a pool of goroutines, honouring priorities.
//   - Recorder captures the task graph (executing tasks inline, sequentially,
//     and timing them) so the graph can be replayed under Simulate with any
//     number of virtual workers — the mechanism this repository uses to
//     reproduce scaling behaviour on small hosts.
//
// A fork–join baseline needs no separate implementation: algorithms express
// barriers by calling Wait between phases, which Runtime executes as a real
// join and Recorder records as an all-to-all dependence.
//
// Dispatch is built for fine-grained tile DAGs, where per-task overhead
// competes directly with kernel time: the ready set is sharded into
// per-worker priority heaps with work stealing (dependence tracking keeps
// the runtime lock, ready-queue traffic does not), nodes are allocated from
// a slab, wakeups signal one idle worker per enqueue instead of
// broadcasting to the pool, and the steady-state dispatch path — pop, run,
// resolve successors — performs no heap allocation.
//
// The runtime is fault-aware ("at extreme scale, faults are the norm"):
// tasks may return errors (Task.FnErr) or panic without taking down the
// pool, transient failures are retried with capped exponential backoff
// (WithRetry), permanently failed tasks poison — skip — their dependents
// while the rest of the DAG drains, and WaitErr aggregates the root
// failures with kernel and handle context. A seeded chaos layer
// (WithChaos) kills or delays task attempts to exercise all of this
// deterministically; see fault.go.
package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"exadla/internal/metrics"
)

// Handle identifies a datum (typically one matrix tile) for dependence
// tracking. Any comparable value works; equal values alias the same datum.
type Handle any

// Task is one unit of work with declared data accesses.
type Task struct {
	// Name labels the kernel for traces ("potrf", "gemm", ...).
	Name string
	// Reads lists data the task reads. A handle appearing in both Reads
	// and Writes is treated as read-modify-write.
	Reads []Handle
	// Writes lists data the task writes.
	Writes []Handle
	// Priority orders ready tasks: higher runs first. Use it to favour the
	// critical path (e.g. panel factorizations over trailing updates).
	Priority int
	// Fn performs the work. It must touch only the declared data.
	Fn func()
	// FnErr is the error-returning body variant and takes precedence over
	// Fn when both are set. A non-nil return marks the task failed: the
	// runtime retries it if a retry policy is installed and the error is
	// transient (see Permanent), and otherwise poisons its dependents and
	// reports the failure through WaitErr. Bodies that may be retried must
	// be idempotent.
	FnErr func() error
}

// Scheduler is the submission interface shared by the real runtime and the
// recorder. Wait blocks until every task submitted so far has completed,
// and doubles as the phase barrier for fork–join style algorithms.
type Scheduler interface {
	Submit(t Task)
	Wait()
}

// node is the runtime's internal task state. Graph state (succs, nDeps,
// done, poisoned) is guarded by Runtime.mu; the per-attempt fields crossed
// by the dispatch path and the watchdog (enqueued, attempts, readyAt) are
// atomics so popping a task never touches the runtime lock.
type node struct {
	task     Task
	succs    []*node
	nDeps    int // remaining unmet dependences; guarded by Runtime.mu
	seq      int // submission order, for FIFO tie-breaking
	done     bool  // completed; guarded by Runtime.mu
	poisoned bool  // an upstream task failed; skip the body. Guarded by mu.
	deps     []int // dep task seqs, recorded only under a SpanTracer; immutable after link

	enqueued atomic.Bool  // on a ready shard (or about to be)
	attempts atomic.Int32 // executions so far
	readyAt  atomic.Int64 // when the node was (last) enqueued
}

// Runtime executes tasks on a fixed pool of worker goroutines.
type Runtime struct {
	workers int

	mu       sync.Mutex
	cond     *sync.Cond
	last     map[Handle]*access
	inFlight int // submitted but not yet completed
	seq      int
	shutdown bool
	failures []*TaskError // permanent failures of the current Wait epoch
	skipped  int          // poisoned dependents that never ran
	nodeSlab []node       // slab allocator for nodes; guarded by mu
	finStack []finEntry   // finishLocked scratch, reused; guarded by mu

	// Ready set: per-worker shards plus the idle-worker parking lot.
	// readyCount is the total across shards; stopping mirrors shutdown for
	// lock-free reads in the dequeue loop.
	shards     []readyShard
	readyCount atomic.Int64
	stopping   atomic.Bool
	idleMu     sync.Mutex
	idleCond   *sync.Cond
	idlers     atomic.Int32 // modified under idleMu; read lock-free by enqueuers

	// Failure policy, immutable after New.
	retryMax     int
	retryBackoff time.Duration
	chaos        *chaosState
	failObs      func(FailureEvent)

	// Liveness layer (see liveness.go). taskDeadline is immutable after
	// New; the attempt registry has its own lock so the watchdog never
	// contends with the scheduling fast path.
	taskDeadline time.Duration
	watchMu      sync.Mutex
	running      map[*attempt]struct{}
	watchStop    chan struct{}
	watchDone    chan struct{}
	watchOnce    sync.Once

	tracer     Tracer
	spanTracer SpanTracer // tracer's span extension, when implemented
	met        *rtMetrics
}

// access records the dependence frontier for one handle.
type access struct {
	lastWriter *node
	readers    []*node // readers since lastWriter
}

// Tracer receives task lifecycle events from a Runtime. Implementations
// must be safe for concurrent use. A Tracer that also implements SpanTracer
// receives full spans (per-attempt, with DAG context) instead of TaskRan
// calls; see span.go.
type Tracer interface {
	// TaskRan reports a completed task: which worker ran it and its start
	// and end times in nanoseconds since the trace epoch.
	TaskRan(name string, worker int, start, end int64)
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithTracer attaches a tracer to the runtime. If tr also implements
// SpanTracer the runtime emits spans — one per task attempt, carrying task
// ID, dependence edges, queue wait, attempt number, and outcome — instead
// of the legacy TaskRan events.
func WithTracer(tr Tracer) Option {
	return func(r *Runtime) {
		r.tracer = tr
		r.spanTracer, _ = tr.(SpanTracer)
	}
}

// WithMetrics directs the runtime's instrumentation (task counts, queue
// depth, worker occupancy, per-kernel latency histograms) at reg instead of
// the package-wide metrics.Default() registry. Passing nil silences the
// runtime's metrics entirely.
func WithMetrics(reg *metrics.Registry) Option {
	return func(r *Runtime) { r.met = newRTMetrics(reg, r.workers) }
}

// New creates a Runtime with the given number of worker goroutines
// (minimum 1). Call Shutdown when done.
func New(workers int, opts ...Option) *Runtime {
	if workers < 1 {
		workers = 1
	}
	r := &Runtime{
		workers: workers,
		last:    make(map[Handle]*access),
		shards:  make([]readyShard, workers),
	}
	r.cond = sync.NewCond(&r.mu)
	r.idleCond = sync.NewCond(&r.idleMu)
	for _, o := range opts {
		o(r)
	}
	if r.met == nil {
		r.met = newRTMetrics(metrics.Default(), workers)
	}
	if r.chaos != nil && r.chaos.hard() && r.taskDeadline <= 0 {
		panic("sched: WithHardChaos (worker kills / task hangs) requires WithTaskDeadline so the watchdog can recover")
	}
	if r.taskDeadline > 0 {
		r.startWatchdog()
	}
	for w := 0; w < workers; w++ {
		go r.worker(w)
	}
	return r
}

// nodeSlabSize is the node slab block: Submit hands out nodes from a
// pre-allocated block, so fine-grained DAGs cost one allocation per block
// instead of one per task.
const nodeSlabSize = 256

// newNode allocates a node from the slab. Caller holds r.mu.
func (r *Runtime) newNode() *node {
	if len(r.nodeSlab) == 0 {
		r.nodeSlab = make([]node, nodeSlabSize)
	}
	n := &r.nodeSlab[0]
	r.nodeSlab = r.nodeSlab[1:]
	return n
}

// Submit registers a task. Dependences on previously submitted tasks are
// derived from the declared handles; the task runs as soon as they are all
// satisfied. Submit is safe for concurrent use, though dependence order
// follows the serialization of the Submit calls themselves.
func (r *Runtime) Submit(t Task) {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		panic("sched: Submit after Shutdown")
	}
	n := r.newNode()
	n.task = t
	n.seq = r.seq
	r.seq++
	r.inFlight++
	r.met.taskSubmitted()
	r.link(n)
	ready := n.nDeps == 0
	r.mu.Unlock()
	if ready {
		// Source tasks spread round-robin across shards so a burst of
		// submissions parallelizes immediately.
		r.enqueue(n, n.seq%r.workers)
	}
}

// link derives dependences for n and registers it in the access map.
// Caller holds r.mu.
func (r *Runtime) link(n *node) {
	record := r.spanTracer != nil
	addDep := func(from *node) {
		if from == nil || from == n {
			return
		}
		if record {
			// Record the structural edge for spans even when the dep has
			// already completed (it imposes no scheduling constraint but is
			// still part of the DAG). Dep lists are tiny; linear dedupe.
			dup := false
			for _, d := range n.deps {
				if d == from.seq {
					dup = true
					break
				}
			}
			if !dup {
				n.deps = append(n.deps, from.seq)
			}
		}
		if from.done {
			return
		}
		from.succs = append(from.succs, n)
		n.nDeps++
	}
	// Reads: RAW on the last writer. Write lists are tiny (one or two
	// handles), so membership is a linear scan instead of a per-Submit map.
	for _, h := range n.task.Reads {
		acc := r.acc(h)
		addDep(acc.lastWriter)
		if !handleIn(n.task.Writes, h) {
			acc.readers = append(acc.readers, n)
		}
	}
	// Writes: WAW on the last writer, WAR on readers since.
	for _, h := range n.task.Writes {
		acc := r.acc(h)
		addDep(acc.lastWriter)
		for _, rd := range acc.readers {
			addDep(rd)
		}
		acc.lastWriter = n
		acc.readers = acc.readers[:0]
	}
}

// handleIn reports whether h appears in hs.
func handleIn(hs []Handle, h Handle) bool {
	for _, x := range hs {
		if x == h {
			return true
		}
	}
	return false
}

func (r *Runtime) acc(h Handle) *access {
	a := r.last[h]
	if a == nil {
		a = &access{}
		r.last[h] = a
	}
	return a
}

// enqueue makes a dependence-free task runnable on shard home, waking one
// idle worker if any is parked. It takes no runtime-wide lock and is safe
// to call with or without r.mu held (shard and idle locks are leaves: no
// code path acquires r.mu while holding either).
func (r *Runtime) enqueue(n *node, home int) {
	if !n.enqueued.CompareAndSwap(false, true) {
		return
	}
	if r.spanTracer != nil || r.met.on() {
		n.readyAt.Store(traceNow()) // queue-wait epoch for the next attempt
	}
	r.shards[home].push(n)
	depth := r.readyCount.Add(1)
	r.met.readyLen(int(depth))
	// Wake exactly one parked worker per enqueued task. The readyCount
	// increment above is ordered before this load, and sleepers re-check
	// readyCount under idleMu before parking, so the wakeup cannot be lost:
	// either the sleeper sees the new count and never parks, or it is
	// already in Wait when the Signal lands.
	if r.idlers.Load() > 0 {
		r.idleMu.Lock()
		r.idleCond.Signal()
		r.idleMu.Unlock()
	}
}

// dequeue returns the next task for worker id: its own shard first (work
// its finishes made ready), then a stealing sweep over the other shards,
// then parking until an enqueue signals. Returns nil at shutdown.
func (r *Runtime) dequeue(id int) *node {
	for {
		if n := r.shards[id].pop(); n != nil {
			r.met.readyLen(int(r.readyCount.Add(-1)))
			return n
		}
		for off := 1; off < len(r.shards); off++ {
			if n := r.shards[(id+off)%len(r.shards)].pop(); n != nil {
				r.met.readyLen(int(r.readyCount.Add(-1)))
				return n
			}
		}
		if r.stopping.Load() && r.readyCount.Load() == 0 {
			return nil
		}
		r.idleMu.Lock()
		r.idlers.Add(1)
		for r.readyCount.Load() == 0 && !r.stopping.Load() {
			r.idleCond.Wait()
		}
		r.idlers.Add(-1)
		r.idleMu.Unlock()
	}
}

func (r *Runtime) worker(id int) {
	clock := newTraceClock()
	idleFrom := clock.now()
	for {
		n := r.dequeue(id)
		if n == nil {
			r.met.workerIdle(id, clock.now()-idleFrom)
			return
		}
		// The popped node is exclusively this worker's until its attempt
		// resolves; the only concurrent writer is a watchdog abandonment of
		// an *earlier* attempt re-enqueueing the node, which the atomics
		// make safe (both sides see consistent attempt counts).
		attemptNum := int(n.attempts.Add(1))
		readyAt := n.readyAt.Load()

		start := clock.now()
		r.met.workerIdle(id, start-idleFrom)
		att := r.registerAttempt(n, id, attemptNum, readyAt, start)
		err, died := r.runTask(n, att, attemptNum)
		if died {
			// Hard chaos killed this worker while it held the task. The
			// attempt stays registered: the watchdog will declare the worker
			// dead, re-enqueue the task, and spawn a replacement worker.
			return
		}
		if !r.completeAttempt(att) {
			// The watchdog abandoned this attempt — the task has been handed
			// to another worker and a replacement owns this id. Discard the
			// result and exit; the span was emitted by the watchdog.
			return
		}
		end := clock.now()
		idleFrom = end
		wait := int64(-1)
		if readyAt > 0 && readyAt <= start {
			wait = start - readyAt
		}
		r.met.taskDone(n.task.Name, id, end-start, wait)

		// Emit the attempt's trace event before the node completes or is
		// re-enqueued: Wait/WaitErr/Shutdown return once inFlight reaches
		// zero, so anything emitted after finish()/resolveFailure() could be
		// missed by a caller reading the tracer right after Wait.
		retrying := err != nil && attemptNum <= r.retryMax && retryable(err)
		if r.spanTracer != nil {
			sp := Span{
				ID:      n.seq,
				Name:    n.task.Name,
				Worker:  id,
				Attempt: attemptNum,
				Deps:    n.deps,
				Ready:   readyAt,
				Start:   start,
				End:     end,
				Outcome: outcomeOf(err, retrying),
			}
			if err != nil {
				sp.Err = err.Error()
			}
			r.spanTracer.TaskSpan(sp)
		} else if r.tracer != nil {
			r.tracer.TaskRan(n.task.Name, id, start, end)
		}

		var skipped []*node
		if err == nil {
			skipped = r.finish(n, false, id)
		} else {
			skipped = r.resolveFailure(n, err, retrying, attemptNum, id)
		}
		if len(skipped) > 0 {
			r.emitSkipped(skipped, end)
			r.completeSkipped(len(skipped))
		}
	}
}

// emitSkipped reports poisoned dependents that will never run as
// zero-length spans, so DAG analyses see the complete graph.
func (r *Runtime) emitSkipped(skipped []*node, ts int64) {
	for _, s := range skipped {
		r.spanTracer.TaskSpan(Span{
			ID:      s.seq,
			Name:    s.task.Name,
			Worker:  -1,
			Deps:    s.deps,
			Start:   ts,
			End:     ts,
			Outcome: OutcomeSkipped,
		})
	}
}

// finish completes n outside the worker's fast path, returning the
// poisoned dependents drained with it (non-empty only under a SpanTracer).
// home is the shard newly-ready successors are enqueued on — the finishing
// worker's own shard, so dependent work stays local until stolen.
func (r *Runtime) finish(n *node, failed bool, home int) []*node {
	r.mu.Lock()
	skipped := r.finishLocked(n, failed, home)
	r.mu.Unlock()
	return skipped
}

// runTask executes one attempt of a task body: the chaos layer may delay
// the attempt, kill it (soft: the worker survives and reports the injected
// error), kill the *worker* (hard: died is returned true and the caller's
// goroutine exits holding the task, leaving recovery to the watchdog), or
// hang it (the body parks until the watchdog abandons the attempt). Then
// FnErr (preferred) or Fn runs with panic capture, so one faulty kernel
// can neither unwind a worker nor deadlock the pool. All chaos strikes
// before the body, so a re-executed attempt is bitwise-safe even for
// non-idempotent read-modify-write kernels.
func (r *Runtime) runTask(n *node, att *attempt, attemptNum int) (err error, died bool) {
	if r.chaos != nil {
		fate := r.chaos.draw()
		if fate.delay > 0 {
			time.Sleep(fate.delay)
		}
		switch {
		case fate.killWorker:
			return nil, true
		case fate.hang:
			// att is always non-nil here: New rejects hard chaos without a
			// task deadline. Park until the watchdog declares the attempt
			// lost, then exit through the abandoned-worker path.
			<-att.lost
			return nil, false
		case fate.kill:
			return &chaosError{kernel: n.task.Name, attempt: attemptNum}, false
		}
	}
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{val: p}
		}
	}()
	if n.task.FnErr != nil {
		return n.task.FnErr(), false
	}
	if n.task.Fn != nil {
		n.task.Fn()
	}
	return nil, false
}

// resolveFailure routes one failed attempt: re-enqueue through the retry
// policy when retry (computed by the worker before emitting the attempt's
// span) is set, or make the failure permanent and poison the task's
// dependents. attempt is the caller's snapshot of the attempt number (the
// watchdog resolves abandoned attempts concurrently with the replacement
// execution, so n.attempts cannot be read here). home is the shard retries
// and newly-ready successors target. It returns the dependents skipped by
// a permanent failure (collected only under a SpanTracer).
func (r *Runtime) resolveFailure(n *node, err error, retry bool, attempt, home int) (skipped []*node) {
	_, panicked := err.(*panicError)
	if r.failObs != nil {
		var toErr *TimeoutError
		r.failObs(FailureEvent{
			Kernel:   n.task.Name,
			Seq:      n.seq,
			Attempt:  attempt,
			Err:      err,
			Panicked: panicked,
			Retrying: retry,
			TimedOut: errors.As(err, &toErr),
		})
	}
	if retry {
		r.met.taskRetried()
		delay := r.backoffFor(attempt)
		if delay <= 0 {
			r.enqueue(n, home)
			return nil
		}
		// The node stays in flight during backoff, so Wait and Shutdown
		// keep blocking until the retry resolves.
		time.AfterFunc(delay, func() {
			r.enqueue(n, home)
		})
		return nil
	}

	te := &TaskError{
		Kernel:   n.task.Name,
		Seq:      n.seq,
		Attempts: attempt,
		Writes:   append([]Handle(nil), n.task.Writes...),
		Err:      err,
	}
	if p, ok := err.(*panicError); ok {
		te.Panicked = true
		te.PanicValue = p.val
	}
	r.mu.Lock()
	r.failures = append(r.failures, te)
	r.met.taskFailed(te.Panicked)
	skipped = r.finishLocked(n, true, home)
	r.mu.Unlock()
	return skipped
}

// finEntry is one pending completion in finishLocked's drain stack.
type finEntry struct {
	n      *node
	poison bool
}

// finishLocked marks n complete — failed reports a permanent failure —
// releases its successors, and drains poisoned dependents inline: a
// dependent of a failed or skipped task never runs its body, because its
// inputs are garbage, but it still completes so the DAG drains. Successors
// made ready are enqueued on shard home. It returns the drained dependents
// (collected only under a SpanTracer, for skip-span emission outside the
// lock). Caller holds r.mu; the drain stack is reused across calls so the
// steady-state dispatch path does not allocate.
func (r *Runtime) finishLocked(n *node, failed bool, home int) []*node {
	var skipped []*node
	stack := append(r.finStack[:0], finEntry{n, failed})
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d.n.done = true
		for _, s := range d.n.succs {
			if d.poison {
				s.poisoned = true
			}
			s.nDeps--
			if s.nDeps == 0 {
				if s.poisoned {
					r.skipped++
					r.met.taskSkipped()
					if r.spanTracer != nil {
						skipped = append(skipped, s)
					}
					stack = append(stack, finEntry{s, true})
				} else {
					r.enqueue(s, home)
				}
			}
		}
		r.inFlight--
	}
	r.finStack = stack[:0]
	// Dependents collected for skip-span emission stay in flight until
	// completeSkipped runs, so Wait cannot observe a drained DAG whose
	// trace is still missing their spans.
	r.inFlight += len(skipped)
	if r.inFlight == 0 {
		r.cond.Broadcast()
	}
	return skipped
}

// completeSkipped retires poisoned dependents whose skip-spans have just
// been emitted; finishLocked deferred their inFlight decrement.
func (r *Runtime) completeSkipped(count int) {
	r.mu.Lock()
	r.inFlight -= count
	if r.inFlight == 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// Wait blocks until all tasks submitted so far have completed. It is the
// fork–join barrier when called between phases. Wait is fail-fast: if any
// task panicked it re-raises the first panic on the caller's goroutine,
// and any other task failure is raised as a *FailuresError panic. Callers
// submitting error-returning tasks should use WaitErr instead.
func (r *Runtime) Wait() {
	err := r.WaitErr()
	if err == nil {
		return
	}
	fe := err.(*FailuresError)
	for _, f := range fe.Failures {
		if f.Panicked {
			panic(f.PanicValue)
		}
	}
	panic(fe)
}

// WaitErr blocks until all tasks submitted so far have completed and
// returns the epoch's aggregated failures as a *FailuresError (nil if
// every task succeeded). The failure state is consumed: the Runtime is
// reusable for a fresh epoch afterwards.
func (r *Runtime) WaitErr() error {
	r.mu.Lock()
	for r.inFlight > 0 {
		r.cond.Wait()
	}
	fs := r.failures
	sk := r.skipped
	r.failures = nil
	r.skipped = 0
	r.mu.Unlock()
	if len(fs) == 0 {
		return nil
	}
	return &FailuresError{Failures: fs, Skipped: sk}
}

// Shutdown waits for outstanding tasks (including pending retries) and
// stops the workers. It is idempotent, safe to call concurrently with
// Wait, WaitErr, or another Shutdown, and never panics — task failures
// left unconsumed are discarded with the Runtime. Submitting after
// Shutdown has completed panics.
func (r *Runtime) Shutdown() {
	r.mu.Lock()
	for r.inFlight > 0 {
		r.cond.Wait()
	}
	r.shutdown = true
	r.mu.Unlock()
	// Release the worker pool: every shard is empty (inFlight hit zero), so
	// workers parked in dequeue exit once woken.
	r.stopping.Store(true)
	r.idleMu.Lock()
	r.idleCond.Broadcast()
	r.idleMu.Unlock()
	// The watchdog outlives the last task so late overruns are still
	// reaped; it stops only here. Workers hung inside bodies (hard chaos,
	// or a genuinely stuck kernel) are abandoned goroutines by now — Go
	// cannot kill them — and exit whenever their bodies return.
	r.stopWatchdog()
}

// Workers reports the size of the worker pool.
func (r *Runtime) Workers() int { return r.workers }
