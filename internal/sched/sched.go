// Package sched implements the dataflow task runtime at the core of the
// library — the Go analogue of PLASMA's QUARK scheduler.
//
// Algorithms submit Tasks that declare which data they read and write
// through opaque comparable Handles (in practice: matrix tiles). The runtime
// derives read-after-write, write-after-read and write-after-write
// dependences automatically, in submission order, and executes tasks on a
// worker pool as soon as their dependences are satisfied. This is the
// "dynamic DAG scheduling" the extreme-scale argument advocates over
// fork–join: no artificial barriers, idle time limited to genuine critical
// path constraints.
//
// Two Scheduler implementations are provided:
//
//   - Runtime executes tasks on a pool of goroutines, honouring priorities.
//   - Recorder captures the task graph (executing tasks inline, sequentially,
//     and timing them) so the graph can be replayed under Simulate with any
//     number of virtual workers — the mechanism this repository uses to
//     reproduce scaling behaviour on small hosts.
//
// A fork–join baseline needs no separate implementation: algorithms express
// barriers by calling Wait between phases, which Runtime executes as a real
// join and Recorder records as an all-to-all dependence.
package sched

import (
	"container/heap"
	"sync"

	"exadla/internal/metrics"
)

// Handle identifies a datum (typically one matrix tile) for dependence
// tracking. Any comparable value works; equal values alias the same datum.
type Handle any

// Task is one unit of work with declared data accesses.
type Task struct {
	// Name labels the kernel for traces ("potrf", "gemm", ...).
	Name string
	// Reads lists data the task reads. A handle appearing in both Reads
	// and Writes is treated as read-modify-write.
	Reads []Handle
	// Writes lists data the task writes.
	Writes []Handle
	// Priority orders ready tasks: higher runs first. Use it to favour the
	// critical path (e.g. panel factorizations over trailing updates).
	Priority int
	// Fn performs the work. It must touch only the declared data.
	Fn func()
}

// Scheduler is the submission interface shared by the real runtime and the
// recorder. Wait blocks until every task submitted so far has completed,
// and doubles as the phase barrier for fork–join style algorithms.
type Scheduler interface {
	Submit(t Task)
	Wait()
}

// node is the runtime's internal task state.
type node struct {
	task     Task
	succs    []*node
	nDeps    int // remaining unmet dependences; guarded by Runtime.mu
	seq      int // submission order, for FIFO tie-breaking
	enqueued bool
	done     bool // completed; guarded by Runtime.mu
}

// Runtime executes tasks on a fixed pool of worker goroutines.
type Runtime struct {
	workers int

	mu       sync.Mutex
	cond     *sync.Cond
	ready    readyQueue
	last     map[Handle]*access
	inFlight int // submitted but not yet completed
	seq      int
	shutdown bool
	panicked any // first task panic, re-raised by Wait

	tracer Tracer
	met    *rtMetrics
}

// access records the dependence frontier for one handle.
type access struct {
	lastWriter *node
	readers    []*node // readers since lastWriter
}

// Tracer receives task lifecycle events from a Runtime. Implementations
// must be safe for concurrent use.
type Tracer interface {
	// TaskRan reports a completed task: which worker ran it and its start
	// and end times in nanoseconds since the trace epoch.
	TaskRan(name string, worker int, start, end int64)
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithTracer attaches a tracer to the runtime.
func WithTracer(tr Tracer) Option {
	return func(r *Runtime) { r.tracer = tr }
}

// WithMetrics directs the runtime's instrumentation (task counts, queue
// depth, worker occupancy, per-kernel latency histograms) at reg instead of
// the package-wide metrics.Default() registry. Passing nil silences the
// runtime's metrics entirely.
func WithMetrics(reg *metrics.Registry) Option {
	return func(r *Runtime) { r.met = newRTMetrics(reg, r.workers) }
}

// New creates a Runtime with the given number of worker goroutines
// (minimum 1). Call Shutdown when done.
func New(workers int, opts ...Option) *Runtime {
	if workers < 1 {
		workers = 1
	}
	r := &Runtime{
		workers: workers,
		last:    make(map[Handle]*access),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	if r.met == nil {
		r.met = newRTMetrics(metrics.Default(), workers)
	}
	for w := 0; w < workers; w++ {
		go r.worker(w)
	}
	return r
}

// Submit registers a task. Dependences on previously submitted tasks are
// derived from the declared handles; the task runs as soon as they are all
// satisfied. Submit is safe for concurrent use, though dependence order
// follows the serialization of the Submit calls themselves.
func (r *Runtime) Submit(t Task) {
	n := &node{task: t}
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		panic("sched: Submit after Shutdown")
	}
	n.seq = r.seq
	r.seq++
	r.inFlight++
	r.met.taskSubmitted()
	r.link(n)
	if n.nDeps == 0 {
		r.enqueueLocked(n)
	}
	r.mu.Unlock()
}

// link derives dependences for n and registers it in the access map.
// Caller holds r.mu.
func (r *Runtime) link(n *node) {
	addDep := func(from *node) {
		if from == nil || from == n || from.done {
			return
		}
		from.succs = append(from.succs, n)
		n.nDeps++
	}
	// Reads: RAW on the last writer.
	written := make(map[Handle]bool, len(n.task.Writes))
	for _, h := range n.task.Writes {
		written[h] = true
	}
	for _, h := range n.task.Reads {
		acc := r.acc(h)
		addDep(acc.lastWriter)
		if !written[h] {
			acc.readers = append(acc.readers, n)
		}
	}
	// Writes: WAW on the last writer, WAR on readers since.
	for _, h := range n.task.Writes {
		acc := r.acc(h)
		addDep(acc.lastWriter)
		for _, rd := range acc.readers {
			addDep(rd)
		}
		acc.lastWriter = n
		acc.readers = acc.readers[:0]
	}
}

func (r *Runtime) acc(h Handle) *access {
	a := r.last[h]
	if a == nil {
		a = &access{}
		r.last[h] = a
	}
	return a
}

// enqueueLocked puts a dependence-free task on the ready queue.
func (r *Runtime) enqueueLocked(n *node) {
	if n.enqueued {
		return
	}
	n.enqueued = true
	heap.Push(&r.ready, n)
	r.met.readyLen(len(r.ready))
	r.cond.Broadcast()
}

func (r *Runtime) worker(id int) {
	clock := newTraceClock()
	idleFrom := clock.now()
	for {
		r.mu.Lock()
		for len(r.ready) == 0 && !r.shutdown {
			r.cond.Wait()
		}
		if r.shutdown && len(r.ready) == 0 {
			r.mu.Unlock()
			r.met.workerIdle(id, clock.now()-idleFrom)
			return
		}
		n := heap.Pop(&r.ready).(*node)
		r.met.readyLen(len(r.ready))
		r.mu.Unlock()

		start := clock.now()
		r.met.workerIdle(id, start-idleFrom)
		if n.task.Fn != nil {
			r.runTask(n)
		}
		end := clock.now()
		idleFrom = end
		if r.tracer != nil {
			r.tracer.TaskRan(n.task.Name, id, start, end)
		}
		r.met.taskDone(n.task.Name, id, end-start)

		r.mu.Lock()
		n.done = true
		for _, s := range n.succs {
			s.nDeps--
			if s.nDeps == 0 {
				r.enqueueLocked(s)
			}
		}
		r.inFlight--
		if r.inFlight == 0 {
			r.cond.Broadcast()
		}
		r.mu.Unlock()
	}
}

// runTask executes a task body, capturing any panic so one faulty kernel
// cannot deadlock the pool; the first panic is re-raised on Wait.
func (r *Runtime) runTask(n *node) {
	defer func() {
		if p := recover(); p != nil {
			r.mu.Lock()
			if r.panicked == nil {
				r.panicked = p
			}
			r.mu.Unlock()
		}
	}()
	n.task.Fn()
}

// Wait blocks until all tasks submitted so far have completed. It is the
// fork–join barrier when called between phases. If any task panicked, Wait
// re-raises the first panic on the caller's goroutine.
func (r *Runtime) Wait() {
	r.mu.Lock()
	for r.inFlight > 0 {
		r.cond.Wait()
	}
	p := r.panicked
	r.panicked = nil
	r.mu.Unlock()
	if p != nil {
		panic(p)
	}
}

// Shutdown waits for outstanding tasks and stops the workers. The Runtime
// must not be used afterwards.
func (r *Runtime) Shutdown() {
	r.Wait()
	r.mu.Lock()
	r.shutdown = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Workers reports the size of the worker pool.
func (r *Runtime) Workers() int { return r.workers }

// readyQueue is a max-heap on (Priority, FIFO seq).
type readyQueue []*node

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].task.Priority != q[j].task.Priority {
		return q[i].task.Priority > q[j].task.Priority
	}
	return q[i].seq < q[j].seq
}
func (q readyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *readyQueue) Pop() any {
	old := *q
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*q = old[:len(old)-1]
	return n
}
