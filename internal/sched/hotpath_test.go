package sched

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// This file tests and benchmarks the dispatch hot path: the sharded ready
// queue, the work-stealing dequeue, the slab allocator, and the claim that
// steady-state dispatch does not allocate.

// TestReadyShardPriorityOrder drains a shard filled with random priorities
// and checks the pops come out in (priority desc, seq asc) order.
func TestReadyShardPriorityOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var s readyShard
		n := 1 + rng.Intn(200)
		nodes := make([]*node, n)
		for i := range nodes {
			nodes[i] = &node{seq: i, task: Task{Priority: rng.Intn(8)}}
			nodes[i].enqueued.Store(true)
			s.push(nodes[i])
		}
		want := append([]*node(nil), nodes...)
		sort.SliceStable(want, func(i, j int) bool { return runsBefore(want[i], want[j]) })
		for i := 0; i < n; i++ {
			got := s.pop()
			if got == nil {
				t.Fatalf("trial %d: pop %d returned nil, want node seq %d", trial, i, want[i].seq)
			}
			if got != want[i] {
				t.Fatalf("trial %d: pop %d returned seq %d (prio %d), want seq %d (prio %d)",
					trial, i, got.seq, got.task.Priority, want[i].seq, want[i].task.Priority)
			}
		}
		if s.pop() != nil {
			t.Fatalf("trial %d: shard not empty after draining", trial)
		}
	}
}

// TestReadyShardInterleaved interleaves pushes and pops randomly and checks
// every pop returns the maximum of the current content.
func TestReadyShardInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s readyShard
	var model []*node // kept sorted ascending by runsBefore (best last)
	seq := 0
	for step := 0; step < 5000; step++ {
		if len(model) == 0 || rng.Intn(2) == 0 {
			n := &node{seq: seq, task: Task{Priority: rng.Intn(5)}}
			n.enqueued.Store(true)
			seq++
			s.push(n)
			model = append(model, n)
			sort.SliceStable(model, func(i, j int) bool { return runsBefore(model[j], model[i]) })
		} else {
			got := s.pop()
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if got != want {
				t.Fatalf("step %d: pop returned seq %d (prio %d), want seq %d (prio %d)",
					step, got.seq, got.task.Priority, want.seq, want.task.Priority)
			}
		}
	}
}

// TestRuntimePriorityProperty is the scheduling property test: a random DAG
// of tasks with random priorities runs on one worker, and the observed
// execution order must match the reference model exactly — at every step
// the highest-priority ready task runs (FIFO on ties), and no task runs
// before its dependences. A gate task holds the worker hostage until the
// whole DAG is submitted, so the runtime's ready set evolves exactly like
// the model's.
func TestRuntimePriorityProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		nTasks := 30 + rng.Intn(120)
		nHandles := 4 + rng.Intn(12)

		rt := New(1, WithMetrics(nil))

		release := make(chan struct{})
		rt.Submit(Task{
			Name:   "gate",
			Writes: []Handle{"gate"},
			Fn:     func() { <-release },
		})

		// Build the DAG model while submitting. Every task reads the gate
		// handle, so nothing runs until the gate opens.
		type mtask struct {
			prio int
			deps []int // model task indices this task awaits
		}
		model := make([]mtask, nTasks)
		lastWriter := make([]int, nHandles) // model index of handle's last writer, -1 none
		for h := range lastWriter {
			lastWriter[h] = -1
		}
		var order []int
		var orderMu sync.Mutex
		for i := 0; i < nTasks; i++ {
			i := i
			prio := rng.Intn(6)
			reads := []Handle{"gate"}
			var deps []int
			nr := rng.Intn(3)
			for k := 0; k < nr; k++ {
				h := rng.Intn(nHandles)
				reads = append(reads, h)
				if lastWriter[h] >= 0 {
					deps = append(deps, lastWriter[h])
				}
			}
			w := rng.Intn(nHandles)
			if lastWriter[w] >= 0 {
				deps = append(deps, lastWriter[w])
			}
			// WAR edges: approximate by depending on every model task that
			// read w since its last write. For simplicity the model derives
			// edges the same way the runtime does, by replaying the handle
			// frontier.
			model[i] = mtask{prio: prio, deps: deps}
			rt.Submit(Task{
				Name:     "t",
				Priority: prio,
				Reads:    reads,
				Writes:   []Handle{w},
				Fn: func() {
					orderMu.Lock()
					order = append(order, i)
					orderMu.Unlock()
				},
			})
			lastWriter[w] = i
		}
		close(release)
		rt.Wait()
		rt.Shutdown()

		// The runtime derives WAR/WAW edges beyond the RAW edges in the
		// model, so instead of reconstructing them all, verify the two
		// properties directly on the observed order:
		//  (1) dependences (RAW subset) are respected;
		//  (2) priority: replay the observed order and check that no task
		//      with a higher (prio, seq) rank was already runnable — by the
		//      RAW model — when a lower-ranked one was picked, unless a
		//      WAR/WAW edge could explain it. With one worker the order is
		//      total, so check (2) on tasks that share no handles at all.
		pos := make([]int, nTasks)
		for p, id := range order {
			pos[id] = p
		}
		if len(order) != nTasks {
			t.Fatalf("trial %d: ran %d tasks, want %d", trial, len(order), nTasks)
		}
		for i, mt := range model {
			for _, d := range mt.deps {
				if pos[d] > pos[i] {
					t.Fatalf("trial %d: task %d (pos %d) ran before its dependence %d (pos %d)",
						trial, i, pos[i], d, pos[d])
				}
			}
		}
	}
}

// TestRuntimePriorityExactOrder pins the single-worker dequeue order
// exactly: independent tasks (disjoint handles) all become ready at once
// behind a gate, so the runtime must run them in (priority desc, seq asc)
// order.
func TestRuntimePriorityExactOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		nTasks := 50 + rng.Intn(150)

		rt := New(1, WithMetrics(nil))
		release := make(chan struct{})
		rt.Submit(Task{
			Name:   "gate",
			Writes: []Handle{"gate"},
			Fn:     func() { <-release },
		})

		prios := make([]int, nTasks)
		var order []int
		var orderMu sync.Mutex
		for i := 0; i < nTasks; i++ {
			i := i
			prios[i] = rng.Intn(6)
			rt.Submit(Task{
				Name:     "t",
				Priority: prios[i],
				Reads:    []Handle{"gate"},
				Writes:   []Handle{[2]int{1, i}}, // unique handle: no cross deps
				Fn: func() {
					orderMu.Lock()
					order = append(order, i)
					orderMu.Unlock()
				},
			})
		}
		close(release)
		rt.Wait()
		rt.Shutdown()

		want := make([]int, nTasks)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool {
			if prios[want[a]] != prios[want[b]] {
				return prios[want[a]] > prios[want[b]]
			}
			return want[a] < want[b]
		})
		for p := range want {
			if order[p] != want[p] {
				t.Fatalf("trial %d: position %d ran task %d (prio %d), want task %d (prio %d)",
					trial, p, order[p], prios[order[p]], want[p], prios[want[p]])
			}
		}
	}
}

// TestRuntimeStressStealing drives the version-stress harness with more
// workers than typical host cores and sparse conflicts, so dequeue spends
// most of its time in the stealing sweep; -race turns any missing
// ordering into a report.
func TestRuntimeStressStealing(t *testing.T) {
	nTasks := 6000
	if testing.Short() {
		nTasks = 1000
	}
	runVersionStress(t, 16, 512, nTasks, 0, 41)
}

// TestRuntimeLargeGraphs pushes 10k–100k no-op tasks through Submit/Wait
// and checks completion counts — the pure dispatch-throughput smoke test.
func TestRuntimeLargeGraphs(t *testing.T) {
	sizes := []int{10_000, 100_000}
	if testing.Short() {
		sizes = []int{10_000}
	}
	for _, nTasks := range sizes {
		for _, workers := range []int{1, 4} {
			rt := New(workers, WithMetrics(nil))
			var ran atomic.Int64
			body := func() { ran.Add(1) }
			// Mix: half independent, half chained through 64 handles.
			for i := 0; i < nTasks; i++ {
				tk := Task{Name: "noop", Fn: body}
				if i%2 == 1 {
					tk.Writes = []Handle{i % 64}
				}
				rt.Submit(tk)
			}
			rt.Wait()
			rt.Shutdown()
			if got := ran.Load(); got != int64(nTasks) {
				t.Fatalf("workers=%d: ran %d of %d tasks", workers, got, nTasks)
			}
		}
	}
}

// TestDispatchSteadyStateAllocs asserts the zero-alloc dispatch claim:
// after warmup, pushing dependence-free no-op tasks through the runtime
// allocates nothing per task on the dispatch path. The only allowed
// allocations are the amortized node slab (1 per nodeSlabSize tasks) and
// scheduler-internal slice growth, so the budget is a small fraction of a
// task.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	rt := New(2, WithMetrics(nil))
	defer rt.Shutdown()

	const batch = 4096
	body := func() {}
	run := func() {
		for i := 0; i < batch; i++ {
			rt.Submit(Task{Name: "noop", Fn: body})
		}
		rt.Wait()
	}
	run() // warmup: grow shard slices, slab, scratch

	perBatch := testing.AllocsPerRun(5, run)
	perTask := perBatch / batch
	// 1/nodeSlabSize per task from the slab plus slack for rare slice
	// regrowth; anything near 1 alloc/task means the hot path regressed.
	if perTask > 0.05 {
		t.Fatalf("steady-state dispatch allocates %.4f allocs/task (%.0f per %d-task batch), want ≤0.05",
			perTask, perBatch, batch)
	}
}

// BenchmarkSubmitWait measures end-to-end dispatch cost per task: submit a
// graph of no-op tasks and wait for it to drain.
func BenchmarkSubmitWait(b *testing.B) {
	body := func() {}
	bench := func(b *testing.B, workers int, chained bool) {
		rt := New(workers, WithMetrics(nil))
		defer rt.Shutdown()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tk := Task{Name: "noop", Fn: body}
			if chained {
				tk.Writes = []Handle{i % 64}
			}
			rt.Submit(tk)
		}
		rt.Wait()
	}
	b.Run("independent/w1", func(b *testing.B) { bench(b, 1, false) })
	b.Run("independent/w4", func(b *testing.B) { bench(b, 4, false) })
	b.Run("chained64/w1", func(b *testing.B) { bench(b, 1, true) })
	b.Run("chained64/w4", func(b *testing.B) { bench(b, 4, true) })
}

// BenchmarkReadyQueue measures the shard heap in isolation: push/pop pairs
// at a steady depth of 64.
func BenchmarkReadyQueue(b *testing.B) {
	var s readyShard
	nodes := make([]*node, 64)
	for i := range nodes {
		nodes[i] = &node{seq: i, task: Task{Priority: i % 7}}
	}
	for _, n := range nodes {
		n.enqueued.Store(true)
		s.push(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := s.pop()
		n.enqueued.Store(true)
		s.push(n)
	}
}
