package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// This file is the runtime's failure model — the "faults are the norm"
// rule applied to the scheduler itself. A task can fail three ways:
//
//   - its FnErr body returns an error (the task ran and reported failure);
//   - its body panics (captured per-task, never unwinding a worker);
//   - the chaos layer kills the attempt before the body runs (modelling an
//     executor that died holding the task, numpywren-style).
//
// A failed attempt is either retried — re-enqueued with capped exponential
// backoff, if the Runtime has a retry policy and the error is transient —
// or made permanent. A permanent failure poisons the task's dependents:
// they are skipped without running (their outputs would be garbage), the
// DAG still drains, and WaitErr reports the root failures plus the skip
// count. Wait keeps its legacy fail-fast semantics (it panics).
//
// Hard faults — a worker that dies or hangs holding a task, never handing
// control back — are the watchdog's job; see liveness.go. The chaos modes
// here (WithHardChaos) inject exactly those faults deterministically.

// TaskError describes one permanently failed task with its kernel and
// data-handle context.
type TaskError struct {
	// Kernel is the task's Name.
	Kernel string
	// Seq is the task's submission index.
	Seq int
	// Attempts is how many times the task was executed (or killed by chaos)
	// before the failure became permanent.
	Attempts int
	// Writes lists the handles the task would have produced.
	Writes []Handle
	// Panicked reports that the last attempt panicked; PanicValue holds the
	// recovered value.
	Panicked   bool
	PanicValue any
	// Err is the underlying failure.
	Err error
}

func (e *TaskError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "task %q (seq %d", e.Kernel, e.Seq)
	if len(e.Writes) > 0 {
		fmt.Fprintf(&sb, ", writes %v", e.Writes)
	}
	fmt.Fprintf(&sb, ") failed after %d attempt(s): %v", e.Attempts, e.Err)
	return sb.String()
}

func (e *TaskError) Unwrap() error { return e.Err }

// FailuresError aggregates every permanent task failure of one Wait epoch.
type FailuresError struct {
	// Failures are the root causes, in completion order.
	Failures []*TaskError
	// Skipped counts dependent tasks that were poisoned and never ran.
	Skipped int
}

func (e *FailuresError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sched: %d task(s) failed", len(e.Failures))
	if e.Skipped > 0 {
		fmt.Fprintf(&sb, ", %d dependent task(s) skipped", e.Skipped)
	}
	if len(e.Failures) > 0 {
		fmt.Fprintf(&sb, "; first: %v", e.Failures[0])
	}
	return sb.String()
}

// Unwrap exposes the individual task errors to errors.Is/As.
func (e *FailuresError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// ErrorWaiter is implemented by schedulers whose Wait has an
// error-returning form. Algorithms that submit error-returning tasks
// should prefer WaitErr over Wait.
type ErrorWaiter interface {
	// WaitErr blocks like Wait and returns the aggregated task failures of
	// the epoch (a *FailuresError), or nil if every task succeeded.
	WaitErr() error
}

// panicError adapts a recovered panic value into the error plumbing.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("task panicked: %v", e.val) }

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the retry policy treats the failure as
// non-transient: the task fails immediately, without re-execution. Use it
// from FnErr bodies for deterministic errors (bad input, unrecoverable
// state) that retrying cannot fix.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// retryable reports whether a failure should go through the retry path:
// panics and Permanent-wrapped errors are final, everything else is
// presumed transient.
func retryable(err error) bool {
	var pe *panicError
	if errors.As(err, &pe) {
		return false
	}
	var perm *permanentError
	return !errors.As(err, &perm)
}

// ErrInjected is the root of every chaos-injected failure, for errors.Is
// checks in tests and policies.
var ErrInjected = errors.New("injected chaos failure")

// chaosError carries the attempt context of one injected failure.
type chaosError struct {
	kernel  string
	attempt int
}

func (e *chaosError) Error() string {
	return fmt.Sprintf("chaos: killed %q attempt %d before execution", e.kernel, e.attempt)
}

func (e *chaosError) Unwrap() error { return ErrInjected }

// DelayDist draws one scheduling delay from a distribution. The rng is the
// chaos layer's seeded stream; implementations must not retain it.
type DelayDist func(rng *rand.Rand) time.Duration

// UniformDelay returns a DelayDist uniform on [0, max).
func UniformDelay(max time.Duration) DelayDist {
	if max <= 0 {
		return nil
	}
	return func(rng *rand.Rand) time.Duration {
		return time.Duration(rng.Int63n(int64(max)))
	}
}

// chaosState is the scheduler-level fault injector: a seeded stream (the
// ft.Injector discipline — same seed, same decision sequence) that kills
// or delays task attempts (soft faults), and — when the hard modes are
// armed via WithHardChaos — kills the executing worker outright or hangs
// the attempt, exercising the watchdog. Decisions are drawn under a lock
// so the stream stays a single deterministic sequence; which attempt
// receives which draw still depends on worker interleaving, as real soft
// errors do. The hard-mode draws are only taken when hard chaos is armed,
// so seeded soft-chaos streams are unchanged by this extension.
type chaosState struct {
	mu       sync.Mutex
	rng      *rand.Rand
	failProb float64
	delay    DelayDist

	// Hard modes (WithHardChaos). budget caps the number of hard faults
	// injected, so "kill exactly k workers" sweeps are expressible; a
	// negative budget is unlimited.
	killWorkerProb float64
	hangProb       float64
	budget         int
}

// chaosFate is the outcome of one chaos draw for one task attempt. At most
// one of kill/killWorker/hang is set.
type chaosFate struct {
	kill       bool // soft: fail the attempt, worker survives
	killWorker bool // hard: the worker goroutine dies holding the task
	hang       bool // hard: the body blocks until the watchdog abandons it
	delay      time.Duration
}

// hard reports whether any hard-fault mode is armed (watchdog required).
func (c *chaosState) hard() bool { return c.killWorkerProb > 0 || c.hangProb > 0 }

// draw returns the fate of one task attempt.
func (c *chaosState) draw() (f chaosFate) {
	c.mu.Lock()
	f.kill = c.rng.Float64() < c.failProb
	if c.delay != nil {
		f.delay = c.delay(c.rng)
	}
	if c.hard() && c.budget != 0 {
		// One extra draw decides the hard fate; soft-only configurations
		// never reach here, keeping their seeded streams unchanged.
		u := c.rng.Float64()
		switch {
		case u < c.killWorkerProb:
			f.killWorker, f.kill = true, false
		case u < c.killWorkerProb+c.hangProb:
			f.hang, f.kill = true, false
		}
		if (f.killWorker || f.hang) && c.budget > 0 {
			c.budget--
		}
	}
	c.mu.Unlock()
	return f
}

// WithRetry installs a retry policy: a transiently failed task is
// re-enqueued up to max times (so it executes at most max+1 times) with
// capped exponential backoff — backoff, 2·backoff, 4·backoff, … capped at
// 64·backoff. A zero backoff re-enqueues immediately. Panics and
// Permanent-wrapped errors are never retried.
func WithRetry(max int, backoff time.Duration) Option {
	return func(r *Runtime) {
		if max < 0 {
			max = 0
		}
		r.retryMax = max
		r.retryBackoff = backoff
	}
}

// WithChaos attaches a seeded fault/delay injector to the runtime: each
// task attempt is killed before execution with probability taskFailProb
// and (independently) delayed by a draw from delayDist (nil for no
// delays). Killed attempts go through the retry path like any transient
// failure, so resilience is testable under -race with a deterministic
// failure budget.
func WithChaos(seed int64, taskFailProb float64, delayDist DelayDist) Option {
	return func(r *Runtime) {
		if taskFailProb <= 0 && delayDist == nil {
			return
		}
		r.chaos = &chaosState{
			rng:      rand.New(rand.NewSource(seed)),
			failProb: taskFailProb,
			delay:    delayDist,
		}
	}
}

// WithHardChaos arms the chaos layer's hard-fault modes: each task attempt
// kills its worker goroutine outright with probability killWorkerProb, or
// hangs forever with probability hangProb. When WithChaos is also present
// the soft layer's seeded stream is shared (and seed here is ignored);
// alone, WithHardChaos seeds its own stream.
// Both strike strictly before the body runs, so watchdog re-execution is
// bitwise-safe for non-idempotent kernels. maxFaults caps the total number
// of hard faults injected (negative for unlimited), making "kill exactly k
// workers at seeded points" sweeps deterministic. Hard chaos requires
// WithTaskDeadline — New panics otherwise, because nothing else can
// recover a dead or hung worker.
func WithHardChaos(seed int64, killWorkerProb, hangProb float64, maxFaults int) Option {
	return func(r *Runtime) {
		if killWorkerProb <= 0 && hangProb <= 0 {
			return
		}
		if r.chaos == nil {
			r.chaos = &chaosState{rng: rand.New(rand.NewSource(seed))}
		}
		r.chaos.killWorkerProb = killWorkerProb
		r.chaos.hangProb = hangProb
		r.chaos.budget = maxFaults
	}
}

// FailureEvent describes one failed task attempt, delivered to the
// failure observer.
type FailureEvent struct {
	// Kernel and Seq identify the task.
	Kernel string
	Seq    int
	// Attempt is the 1-based attempt number that failed.
	Attempt int
	// Err is the attempt's failure.
	Err error
	// Panicked reports a panic failure.
	Panicked bool
	// Retrying reports whether the runtime will re-enqueue the task.
	Retrying bool
	// TimedOut reports a watchdog abandonment: the attempt overran the
	// task deadline and its worker was declared dead (see WithTaskDeadline).
	TimedOut bool
}

// WithFailureObserver registers a callback invoked once per failed task
// attempt (retried or permanent). The observer runs on a worker goroutine
// outside the runtime lock; it must be safe for concurrent use and must
// not call back into the Runtime.
func WithFailureObserver(fn func(FailureEvent)) Option {
	return func(r *Runtime) { r.failObs = fn }
}

// backoffFor computes the capped exponential backoff before re-running a
// task whose attempt-th execution just failed.
func (r *Runtime) backoffFor(attempt int) time.Duration {
	if r.retryBackoff <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6 // cap at 64×
	}
	return r.retryBackoff << uint(shift)
}
