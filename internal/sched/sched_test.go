package sched

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRuntimeRunsAllTasks(t *testing.T) {
	r := New(4)
	defer r.Shutdown()
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		r.Submit(Task{Name: "inc", Fn: func() { count.Add(1) }})
	}
	r.Wait()
	if got := count.Load(); got != 100 {
		t.Errorf("ran %d tasks, want 100", got)
	}
}

func TestRAWOrdering(t *testing.T) {
	// writer → reader must observe the write.
	r := New(4)
	defer r.Shutdown()
	h := "x"
	for trial := 0; trial < 50; trial++ {
		var v int
		var got int
		r.Submit(Task{Name: "w", Writes: []Handle{h}, Fn: func() { v = 42 }})
		r.Submit(Task{Name: "r", Reads: []Handle{h}, Fn: func() { got = v }})
		r.Wait()
		if got != 42 {
			t.Fatalf("trial %d: reader saw %d", trial, got)
		}
		v = 0
	}
}

func TestWAWOrdering(t *testing.T) {
	// Two writers to the same handle must apply in submission order.
	r := New(4)
	defer r.Shutdown()
	h := "x"
	for trial := 0; trial < 50; trial++ {
		var v int
		r.Submit(Task{Name: "w1", Writes: []Handle{h}, Fn: func() { v = 1 }})
		r.Submit(Task{Name: "w2", Writes: []Handle{h}, Fn: func() { v = 2 }})
		r.Wait()
		if v != 2 {
			t.Fatalf("trial %d: final value %d", trial, v)
		}
	}
}

func TestWAROrdering(t *testing.T) {
	// A writer submitted after readers must wait for all of them.
	r := New(8)
	defer r.Shutdown()
	h := "x"
	for trial := 0; trial < 20; trial++ {
		v := 7
		reads := make([]int, 10)
		for i := 0; i < 10; i++ {
			i := i
			r.Submit(Task{Name: "r", Reads: []Handle{h}, Fn: func() { reads[i] = v }})
		}
		r.Submit(Task{Name: "w", Writes: []Handle{h}, Fn: func() { v = 99 }})
		r.Wait()
		for i, got := range reads {
			if got != 7 {
				t.Fatalf("trial %d: reader %d saw %d (writer overtook)", trial, i, got)
			}
		}
	}
}

func TestIndependentTasksRunConcurrently(t *testing.T) {
	// With W workers and W mutually-blocking tasks, all must be in flight
	// at once — proving the runtime doesn't serialize independent work.
	const w = 4
	r := New(w)
	defer r.Shutdown()
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	arrived := 0
	for i := 0; i < w; i++ {
		r.Submit(Task{Name: "rendezvous", Fn: func() {
			mu.Lock()
			arrived++
			cond.Broadcast()
			for arrived < w {
				cond.Wait()
			}
			mu.Unlock()
		}})
	}
	r.Wait() // deadlocks if the runtime cannot run 4 tasks concurrently
}

func TestReadersRunAfterSingleWrite(t *testing.T) {
	// Multiple readers of one handle must not be serialized against each
	// other: they all run between the two writes.
	r := New(4)
	defer r.Shutdown()
	h := "m"
	var stage atomic.Int64
	stage.Store(1)
	bad := atomic.Int64{}
	r.Submit(Task{Name: "w1", Writes: []Handle{h}, Fn: func() { stage.Store(2) }})
	for i := 0; i < 8; i++ {
		r.Submit(Task{Name: "r", Reads: []Handle{h}, Fn: func() {
			if stage.Load() != 2 {
				bad.Add(1)
			}
		}})
	}
	r.Submit(Task{Name: "w2", Writes: []Handle{h}, Fn: func() { stage.Store(3) }})
	r.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d readers observed wrong stage", bad.Load())
	}
}

func TestPriorityOrdering(t *testing.T) {
	// With one worker, ready tasks must run in priority order.
	r := New(1)
	defer r.Shutdown()
	var mu sync.Mutex
	var order []int
	// Block the worker so all tasks become ready before any runs.
	gate := make(chan struct{})
	r.Submit(Task{Name: "gate", Fn: func() { <-gate }})
	for _, p := range []int{1, 5, 3, 2, 4} {
		p := p
		r.Submit(Task{Name: "t", Priority: p, Fn: func() {
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
		}})
	}
	close(gate)
	r.Wait()
	want := []int{5, 4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestChainIsSequential(t *testing.T) {
	// A read-modify-write chain on one handle forms a strict sequence.
	r := New(8)
	defer r.Shutdown()
	h := "acc"
	v := 0
	const steps = 200
	for i := 0; i < steps; i++ {
		r.Submit(Task{Name: "rmw", Reads: []Handle{h}, Writes: []Handle{h}, Fn: func() { v++ }})
	}
	r.Wait()
	if v != steps {
		t.Errorf("chain result %d, want %d", v, steps)
	}
}

// TestRandomGraphLinearizable builds random task graphs over a few handles
// where every task does read-modify-writes; executing with many workers
// must produce the same per-handle values as a sequential execution.
func TestRandomGraphLinearizable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nh = 6
		type op struct{ reads, writes []int }
		nTasks := 30 + rng.Intn(50)
		ops := make([]op, nTasks)
		for i := range ops {
			var o op
			for h := 0; h < nh; h++ {
				switch rng.Intn(4) {
				case 0:
					o.reads = append(o.reads, h)
				case 1:
					o.writes = append(o.writes, h)
				}
			}
			ops[i] = o
		}
		exec := func(workers int) [nh]int64 {
			var vals [nh]int64
			var r Scheduler
			var rt *Runtime
			if workers > 0 {
				rt = New(workers)
				r = rt
			} else {
				r = NewRecorder()
			}
			for i, o := range ops {
				i := i
				o := o
				var reads, writes []Handle
				for _, h := range o.reads {
					reads = append(reads, h)
				}
				for _, h := range o.writes {
					writes = append(writes, h)
				}
				r.Submit(Task{Name: "t", Reads: reads, Writes: writes, Fn: func() {
					var acc int64
					for _, h := range o.reads {
						acc += atomic.LoadInt64(&vals[h])
					}
					for _, h := range o.writes {
						atomic.StoreInt64(&vals[h], acc+int64(i)+1)
					}
				}})
			}
			r.Wait()
			if rt != nil {
				rt.Shutdown()
			}
			return vals
		}
		seq := exec(0) // recorder executes inline in submission order
		par := exec(6)
		return seq == par
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWaitAsBarrier(t *testing.T) {
	r := New(4)
	defer r.Shutdown()
	var phase1 atomic.Int64
	for i := 0; i < 20; i++ {
		r.Submit(Task{Name: "p1", Fn: func() { phase1.Add(1) }})
	}
	r.Wait()
	if phase1.Load() != 20 {
		t.Fatal("Wait returned before phase completed")
	}
	// Runtime must be reusable after Wait.
	var phase2 atomic.Int64
	for i := 0; i < 20; i++ {
		r.Submit(Task{Name: "p2", Fn: func() { phase2.Add(1) }})
	}
	r.Wait()
	if phase2.Load() != 20 {
		t.Fatal("second phase incomplete")
	}
}

func TestSubmitAfterShutdownPanics(t *testing.T) {
	r := New(1)
	r.Shutdown()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Submit(Task{Name: "late"})
}

func TestTracerReceivesEvents(t *testing.T) {
	var mu sync.Mutex
	var names []string
	tr := tracerFunc(func(name string, worker int, start, end int64) {
		mu.Lock()
		names = append(names, name)
		mu.Unlock()
	})
	r := New(2, WithTracer(tr))
	defer r.Shutdown()
	r.Submit(Task{Name: "a"})
	r.Submit(Task{Name: "b"})
	r.Wait()
	if len(names) != 2 {
		t.Errorf("tracer saw %d events, want 2", len(names))
	}
}

type tracerFunc func(name string, worker int, start, end int64)

func (f tracerFunc) TaskRan(name string, worker int, start, end int64) { f(name, worker, start, end) }

func TestTaskPanicPropagatesToWait(t *testing.T) {
	r := New(2)
	defer func() {
		// Shutdown's internal Wait must not re-panic (already consumed).
		r.Shutdown()
	}()
	var after atomic.Int64
	r.Submit(Task{Name: "boom", Fn: func() { panic("kernel exploded") }})
	r.Submit(Task{Name: "ok", Fn: func() { after.Add(1) }})
	func() {
		defer func() {
			if p := recover(); p != "kernel exploded" {
				t.Errorf("Wait panicked with %v", p)
			}
		}()
		r.Wait()
		t.Error("Wait returned instead of panicking")
	}()
	// The pool must still be alive for subsequent work.
	r.Submit(Task{Name: "more", Fn: func() { after.Add(1) }})
	r.Wait()
	if after.Load() != 2 {
		t.Errorf("post-panic tasks ran %d times, want 2", after.Load())
	}
}

func TestDependentsPoisonedAfterPanic(t *testing.T) {
	// A panicking writer poisons its dependents: they are skipped (their
	// input is garbage) but the DAG still drains, and unrelated tasks run.
	r := New(2)
	defer r.Shutdown()
	h := "x"
	ran := atomic.Bool{}
	unrelated := atomic.Bool{}
	r.Submit(Task{Name: "boom", Writes: []Handle{h}, Fn: func() { panic("x") }})
	r.Submit(Task{Name: "reader", Reads: []Handle{h}, Fn: func() { ran.Store(true) }})
	r.Submit(Task{Name: "bystander", Fn: func() { unrelated.Store(true) }})
	err := r.WaitErr()
	if ran.Load() {
		t.Error("dependent task ran on a poisoned input")
	}
	if !unrelated.Load() {
		t.Error("unrelated task was not executed")
	}
	var fe *FailuresError
	if !errors.As(err, &fe) {
		t.Fatalf("WaitErr returned %v, want *FailuresError", err)
	}
	if len(fe.Failures) != 1 || !fe.Failures[0].Panicked || fe.Failures[0].Kernel != "boom" {
		t.Errorf("failures = %+v, want one panicked failure of kernel boom", fe.Failures)
	}
	if fe.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", fe.Skipped)
	}
}
