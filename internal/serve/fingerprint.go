package serve

import (
	"fmt"
	"hash/maphash"
	"unsafe"
)

// fingerprinter computes 128-bit content hashes of float64 matrices. It
// runs two independent maphash passes (distinct seeds fixed at server
// start) over a zero-copy byte view of the data, so fingerprinting a
// multi-megabyte operator costs ~100µs rather than the milliseconds a
// cryptographic hash would charge — a cost paid on the warm path too, where
// it would otherwise eat the cache's entire latency win.
//
// Fingerprints are stable for the lifetime of one Server (the seeds are
// per-process); they identify "the same operator resubmitted to this
// server", not a portable content address.
type fingerprinter struct {
	s1, s2 maphash.Seed
}

func newFingerprinter() fingerprinter {
	return fingerprinter{s1: maphash.MakeSeed(), s2: maphash.MakeSeed()}
}

func (f fingerprinter) of(a []float64) string {
	b := unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*8)
	var h maphash.Hash
	h.SetSeed(f.s1)
	_, _ = h.Write(b)
	lo := h.Sum64()
	h.Reset()
	h.SetSeed(f.s2)
	_, _ = h.Write(b)
	return fmt.Sprintf("%016x%016x", h.Sum64(), lo)
}
