// Package serve is the dense-linear-algebra-as-a-service layer: a
// job-oriented HTTP front end over the tile scheduler. Tenants submit
// factorize/solve problems, poll or stream status derived from the
// scheduler's span traces, and fetch results. The server applies per-tenant
// admission control with fair-share dequeueing and load shedding, keeps an
// LRU cache of finished factorizations keyed by matrix fingerprint so a
// repeated operator pays O(n²) triangular solves instead of the O(n³)
// factorization, and routes floods of tiny problems through the batched
// kernels on fused scheduler submissions instead of one DAG per job.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"exadla/internal/blas"
	"exadla/internal/core"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// Config configures a Server. The zero value gets sensible defaults: two
// execution lanes splitting the CPUs, a 32-entry factor cache, and the
// batched fast path for problems of order ≤ 32.
type Config struct {
	// Addr is the HTTP listen address (host:port, port 0 for ephemeral).
	// Empty means no HTTP listener: the server is driven in-process through
	// Submit, which is how the load generator's closed-form phases run.
	Addr string

	// Lanes is the number of concurrent job executors. Each lane owns its
	// own scheduler runtime, so Lanes jobs make independent progress.
	// Default 2.
	Lanes int
	// Workers is the worker count per lane runtime (and for the batcher's
	// runtime). Default GOMAXPROCS/Lanes, at least 1.
	Workers int
	// TileSize is the tile edge used when converting submitted matrices.
	// Default 64.
	TileSize int

	// MaxQueue is the admission budget: the maximum number of admitted but
	// not yet finished jobs across all tenants. Submissions beyond it are
	// shed with 429 + Retry-After. Default 256.
	MaxQueue int
	// MaxQueuePerTenant bounds one tenant's in-flight jobs so a single
	// tenant cannot consume the whole queue budget. Default MaxQueue.
	MaxQueuePerTenant int
	// RetryAfter is the backoff hint attached to shed responses.
	// Default 1s.
	RetryAfter time.Duration

	// CacheEntries is the factorization cache capacity in entries;
	// negative disables caching. Default 32.
	CacheEntries int

	// SmallCutoff routes solve jobs of order ≤ SmallCutoff through the
	// batched fast path; negative disables batching. Default 32.
	SmallCutoff int
	// BatchMax is the most problems fused into one batched flush.
	// Default 256.
	BatchMax int
	// BatchWait is how long an underfull batch lingers for stragglers
	// before flushing; negative flushes immediately. Default 2ms.
	BatchWait time.Duration

	// Registry receives the serve.* counters and histograms (plus the lane
	// runtimes' sched.* instrumentation). Default: a fresh private registry,
	// exposed on the server's own /metrics endpoint.
	Registry *metrics.Registry
}

func (c *Config) setDefaults() {
	if c.Lanes <= 0 {
		c.Lanes = 2
	}
	if c.Workers <= 0 {
		c.Workers = max(1, runtime.GOMAXPROCS(0)/c.Lanes)
	}
	if c.TileSize <= 0 {
		c.TileSize = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxQueuePerTenant <= 0 || c.MaxQueuePerTenant > c.MaxQueue {
		c.MaxQueuePerTenant = c.MaxQueue
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 32
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	switch {
	case c.SmallCutoff == 0:
		c.SmallCutoff = 32
	case c.SmallCutoff < 0:
		c.SmallCutoff = 0
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 256
	}
	switch {
	case c.BatchWait == 0:
		c.BatchWait = 2 * time.Millisecond
	case c.BatchWait < 0:
		c.BatchWait = 0
	}
	if c.Registry == nil {
		c.Registry = metrics.New()
	}
}

// ShedError is returned by Submit when admission control rejects a job;
// the HTTP layer maps it to 429 with a Retry-After header.
type ShedError struct {
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: queue full, retry after %v", e.RetryAfter)
}

// Server is a running solve service.
type Server struct {
	cfg   Config
	reg   *metrics.Registry
	met   *svMetrics
	fpr   fingerprinter
	cache *factorCache

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	qBig    map[string][]*job // per-tenant FIFO, lane path
	qSmall  map[string][]*job // per-tenant FIFO, batched path
	order   []string          // tenants in first-seen order (round-robin ring)
	seen    map[string]bool
	rrBig   int
	rrSmall int
	pending int // admitted − terminal
	perTen  map[string]int
	hwm     int
	nextID  int
	closed  bool

	ln   net.Listener
	hsrv *http.Server

	wg sync.WaitGroup
}

// New starts a Server: Lanes executor goroutines, the batcher, and (when
// Addr is set) the HTTP listener. Call Close when done.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		fpr:    newFingerprinter(),
		jobs:   make(map[string]*job),
		qBig:   make(map[string][]*job),
		qSmall: make(map[string][]*job),
		seen:   make(map[string]bool),
		perTen: make(map[string]int),
	}
	s.met = newSVMetrics(s.reg)
	s.cache = newFactorCache(cfg.CacheEntries, s.met)
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Lanes; i++ {
		s.wg.Add(1)
		go s.runLane()
	}
	s.wg.Add(1)
	go s.runBatcher()
	if cfg.Addr != "" {
		ln, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
		}
		s.ln = ln
		s.hsrv = &http.Server{Handler: s.handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = s.hsrv.Serve(ln) }()
	}
	return s, nil
}

// Addr returns the HTTP listen address, or "" for an in-process-only server.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Metrics snapshots the server's registry.
func (s *Server) Metrics() metrics.Snapshot { return s.reg.Snapshot() }

// CacheLen reports how many factorizations are resident in the cache.
func (s *Server) CacheLen() int { return s.cache.len() }

// Submit validates spec and admits it under tenant's budget, returning the
// job ID. A *ShedError return means admission control rejected the job.
func (s *Server) Submit(tenant string, spec JobSpec) (string, error) {
	if tenant == "" {
		tenant = "anon"
	}
	s.met.submitted.Inc()
	if err := spec.check(); err != nil {
		return "", err
	}
	small := s.isSmall(&spec)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("serve: server closed")
	}
	if s.pending >= s.cfg.MaxQueue || s.perTen[tenant] >= s.cfg.MaxQueuePerTenant {
		s.met.shed.Inc()
		s.mu.Unlock()
		return "", &ShedError{RetryAfter: s.cfg.RetryAfter}
	}
	s.met.admitted.Inc()
	id := fmt.Sprintf("j%08d", s.nextID)
	s.nextID++
	j := newJob(id, tenant, spec)
	s.jobs[id] = j
	if !s.seen[tenant] {
		s.seen[tenant] = true
		s.order = append(s.order, tenant)
	}
	s.perTen[tenant]++
	if small {
		s.qSmall[tenant] = append(s.qSmall[tenant], j)
	} else {
		s.qBig[tenant] = append(s.qBig[tenant], j)
	}
	s.pending++
	if s.pending > s.hwm {
		s.hwm = s.pending
		s.met.queueDepthHWM.Set(float64(s.hwm))
	}
	s.met.queueDepth.Set(float64(s.pending))
	s.cond.Broadcast()
	s.mu.Unlock()
	return id, nil
}

// isSmall decides the batched fast path: tiny solve jobs carrying their own
// operator. Fingerprint references and factorize ops always take a lane (the
// batched kernels work on raw slices and do not feed the cache).
func (s *Server) isSmall(sp *JobSpec) bool {
	return sp.Op.solves() && sp.A != nil && sp.N <= s.cfg.SmallCutoff && sp.testDelay == 0
}

// Status reports a job's current state.
func (s *Server) Status(id string) (Status, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, false
	}
	return j.status(), true
}

// WaitJob blocks until the job reaches a terminal state and returns it.
func (s *Server) WaitJob(id string) (Status, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, false
	}
	<-j.done
	return j.status(), true
}

// Result returns a finished solve job's solution X (n×nrhs, column-major).
func (s *Server) Result(id string) ([]float64, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("serve: no job %s", id)
	}
	switch State(j.state.Load()) {
	case StateQueued, StateRunning:
		return nil, fmt.Errorf("serve: job %s still %s", id, State(j.state.Load()))
	case StateFailed:
		return nil, fmt.Errorf("serve: job %s failed: %v", id, j.errMsg.Load())
	}
	if r := j.result.Load(); r != nil {
		return r.([]float64), nil
	}
	return nil, fmt.Errorf("serve: job %s produced no solution (factorize jobs deliver a fingerprint)", id)
}

// popRR pops the head of the first non-empty tenant queue at or after
// *cursor, advancing the cursor past the served tenant — one job per tenant
// per revolution, so a tenant with a thousand queued jobs cannot starve one
// with a single job. Caller holds s.mu.
func (s *Server) popRR(q map[string][]*job, cursor *int) *job {
	n := len(s.order)
	for k := 0; k < n; k++ {
		t := s.order[(*cursor+k)%n]
		if len(q[t]) > 0 {
			j := q[t][0]
			q[t] = q[t][1:]
			*cursor = (*cursor + k + 1) % n
			return j
		}
	}
	return nil
}

// nextBig blocks until a lane-path job is available (nil once the server is
// closed and drained).
func (s *Server) nextBig() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.popRR(s.qBig, &s.rrBig); j != nil {
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// takeSmall blocks until at least one batched-path job is available and
// returns up to max of them, dequeued fair-share. Nil once closed.
func (s *Server) takeSmall(max int) []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if out := s.popSmallLocked(max); len(out) > 0 {
			return out
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// takeSmallNow is the non-blocking top-up used after the batch linger.
func (s *Server) takeSmallNow(max int) []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.popSmallLocked(max)
}

func (s *Server) popSmallLocked(max int) []*job {
	var out []*job
	for len(out) < max {
		j := s.popRR(s.qSmall, &s.rrSmall)
		if j == nil {
			break
		}
		out = append(out, j)
	}
	return out
}

func (s *Server) markRunning(j *job) {
	w := int64(time.Since(j.submitted))
	j.started.Store(w)
	j.state.Store(int32(StateRunning))
	s.met.queueWait.Observe(w)
}

func (s *Server) finish(j *job, err error) {
	el := int64(time.Since(j.submitted))
	j.finished.Store(el)
	if err != nil {
		j.errMsg.Store(err.Error())
		j.state.Store(int32(StateFailed))
		s.met.failed.Inc()
	} else {
		j.state.Store(int32(StateDone))
		s.met.done.Inc()
	}
	s.met.latency.Observe(el)
	if st := j.started.Load(); st > 0 {
		s.met.runNs.Observe(el - st)
	}
	close(j.done)
	s.mu.Lock()
	s.pending--
	s.perTen[j.tenant]--
	s.met.queueDepth.Set(float64(s.pending))
	s.mu.Unlock()
}

// progressTracer feeds span traces back into the lane's current job, which
// is where poll/stream status comes from: tasks completed so far and their
// accumulated scheduler queue wait.
type progressTracer struct {
	cur atomic.Pointer[job]
}

func (t *progressTracer) TaskRan(string, int, int64, int64) {}

func (t *progressTracer) TaskSpan(sp sched.Span) {
	if j := t.cur.Load(); j != nil {
		j.tasksDone.Add(1)
		j.spanWaitNs.Add(sp.QueueWait())
	}
}

func (s *Server) runLane() {
	defer s.wg.Done()
	tr := &progressTracer{}
	rt := sched.New(s.cfg.Workers, sched.WithTracer(tr), sched.WithMetrics(s.reg))
	defer rt.Shutdown()
	for {
		j := s.nextBig()
		if j == nil {
			return
		}
		s.execBig(rt, tr, j)
	}
}

func (s *Server) execBig(rt *sched.Runtime, tr *progressTracer, j *job) {
	s.markRunning(j)
	tr.cur.Store(j)
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("serve: job %s panicked: %v", j.id, p)
			}
		}()
		return s.runBig(rt, j)
	}()
	tr.cur.Store(nil)
	s.finish(j, err)
}

// runBig executes one lane-path job: resolve the factor cache, run the
// factorization or the warm triangular solves on the lane's runtime, and
// publish the result.
func (s *Server) runBig(rt *sched.Runtime, j *job) error {
	sp := &j.spec
	if sp.testDelay > 0 {
		time.Sleep(sp.testDelay)
	}
	lu := !sp.Op.spd()
	nb := s.cfg.TileSize
	key := cacheKey{fp: sp.Fingerprint, lu: lu}
	if sp.A != nil {
		key.fp = s.fpr.of(sp.A)
	}
	j.fingerprint.Store(key.fp)

	if !sp.Op.solves() {
		// Factorize: on a hit the work is already resident — the job's
		// deliverable (the fingerprint) is valid immediately.
		if f := s.cache.get(key); f != nil && f.n == sp.N {
			j.cacheStatus.Store(cacheHit)
			return nil
		}
		j.cacheStatus.Store(cacheMiss)
		ta := tile.FromColMajor(sp.N, sp.N, sp.A, sp.N, nb)
		if lu {
			f, err := core.LU(rt, ta)
			if err != nil {
				return err
			}
			s.cache.put(key, &factor{n: sp.N, lu: f})
		} else {
			if err := core.Cholesky(rt, ta); err != nil {
				return err
			}
			s.cache.put(key, &factor{n: sp.N, chol: ta})
		}
		return nil
	}

	f := s.cache.get(key)
	if f != nil && f.n != sp.N {
		return fmt.Errorf("serve: fingerprint %s is an order-%d factor, job says n=%d", key.fp, f.n, sp.N)
	}
	if f == nil && sp.A == nil {
		return fmt.Errorf("serve: fingerprint %s not resident in the factor cache", key.fp)
	}
	tb := tile.FromColMajor(sp.N, sp.NRHS, sp.B, sp.N, nb)
	if f != nil {
		// Warm path: the cached factor is immutable and shared; only the
		// right-hand side is written.
		j.cacheStatus.Store(cacheHit)
		if lu {
			core.ApplyLU(rt, f.lu, tb)
			core.TrsmUpper(rt, f.lu.A, tb)
		} else {
			core.TrsmLower(rt, blas.NoTrans, f.chol, tb)
			core.TrsmLower(rt, blas.Trans, f.chol, tb)
		}
		if err := rt.WaitErr(); err != nil {
			return err
		}
	} else {
		j.cacheStatus.Store(cacheMiss)
		ta := tile.FromColMajor(sp.N, sp.N, sp.A, sp.N, nb)
		if lu {
			fl, err := core.Gesv(rt, ta, tb)
			if err != nil {
				return err
			}
			s.cache.put(key, &factor{n: sp.N, lu: fl})
		} else {
			if err := core.Posv(rt, ta, tb); err != nil {
				return err
			}
			s.cache.put(key, &factor{n: sp.N, chol: ta})
		}
	}
	j.result.Store(tb.ToColMajor())
	return nil
}

// Close shuts the server down: stop the HTTP listener gracefully (2s drain,
// then hard close), fail every still-queued job, and wait for the lanes and
// the batcher to finish their in-flight work.
func (s *Server) Close() error {
	var httpErr error
	if s.hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := s.hsrv.Shutdown(ctx); err != nil {
			httpErr = s.hsrv.Close()
		}
		cancel()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return httpErr
	}
	s.closed = true
	var orphans []*job
	for t := range s.qBig {
		orphans = append(orphans, s.qBig[t]...)
		s.qBig[t] = nil
	}
	for t := range s.qSmall {
		orphans = append(orphans, s.qSmall[t]...)
		s.qSmall[t] = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range orphans {
		s.finish(j, errors.New("serve: server shut down before the job ran"))
	}
	s.wg.Wait()
	return httpErr
}
