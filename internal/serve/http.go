package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"
)

// handler builds the service mux:
//
//	POST /jobs              submit (JSON body, or raw float64 with query params);
//	                        ?wait=1 blocks until terminal and returns the status
//	GET  /jobs/{id}         status (?watch=1 streams NDJSON until terminal)
//	GET  /jobs/{id}/result  solution vector (?format=bin for raw float64 LE)
//	GET  /metrics           Prometheus text (?format=json for a JSON snapshot)
//	GET  /healthz           liveness + queue/cache occupancy
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	var err error
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		spec, err = specFromRaw(r)
	} else {
		err = json.NewDecoder(r.Body).Decode(&spec)
	}
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Submit(r.Header.Get("X-Tenant"), spec)
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			secs := int(shed.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":          err.Error(),
				"retry_after_ms": shed.RetryAfter.Milliseconds(),
			})
			return
		}
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		st, _ := s.WaitJob(id)
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

// specFromRaw parses the zero-copy submission form: op/n/nrhs/fingerprint
// as query parameters and the body as little-endian float64s — A (n×n,
// column-major) first unless a fingerprint stands in for it, then B
// (n×nrhs) for solve ops.
func specFromRaw(r *http.Request) (JobSpec, error) {
	q := r.URL.Query()
	spec := JobSpec{Op: Op(q.Get("op")), Fingerprint: q.Get("fingerprint")}
	var err error
	if spec.N, err = strconv.Atoi(q.Get("n")); err != nil {
		return spec, fmt.Errorf("raw submit: bad n: %w", err)
	}
	if v := q.Get("nrhs"); v != "" {
		if spec.NRHS, err = strconv.Atoi(v); err != nil {
			return spec, fmt.Errorf("raw submit: bad nrhs: %w", err)
		}
	} else if spec.Op.solves() {
		spec.NRHS = 1
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return spec, err
	}
	if len(body)%8 != 0 {
		return spec, fmt.Errorf("raw submit: body is %d bytes, not a whole number of float64s", len(body))
	}
	vals := make([]float64, len(body)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	if spec.Fingerprint == "" {
		if len(vals) < spec.N*spec.N {
			return spec, fmt.Errorf("raw submit: body holds %d floats, need %d for the matrix", len(vals), spec.N*spec.N)
		}
		spec.A = vals[:spec.N*spec.N]
		vals = vals[spec.N*spec.N:]
	}
	if spec.Op.solves() {
		spec.B = vals
	}
	return spec, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	if r.URL.Query().Get("watch") != "1" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	// Stream NDJSON status lines until the job is terminal (or the client
	// goes away), so progress — tasks done, state transitions — is visible
	// live without polling.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		st, _ = s.Status(id)
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State == StateDone.String() || st.State == StateFailed.String() {
			return
		}
		select {
		case <-tick.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.Status(id)
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	x, err := s.Result(id)
	if err != nil {
		switch st.State {
		case StateQueued.String(), StateRunning.String():
			jsonError(w, http.StatusConflict, err)
		default:
			jsonError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if r.URL.Query().Get("format") == "bin" {
		w.Header().Set("Content-Type", "application/octet-stream")
		buf := make([]byte, 8*len(x))
		for i, v := range x {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		_, _ = w.Write(buf)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "n": st.N, "nrhs": st.NRHS, "x": x})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = snap.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"pending":       pending,
		"cache_entries": s.cache.len(),
		"lanes":         s.cfg.Lanes,
	})
}
