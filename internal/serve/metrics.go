package serve

import "exadla/internal/metrics"

// svMetrics bundles the serving layer's instrumentation. Handles are
// resolved once per Server against the configured registry; every name maps
// onto the Prometheus charset as serve_* (serve.cache.hits →
// serve_cache_hits) through the obs endpoint and the server's own /metrics.
type svMetrics struct {
	submitted *metrics.Counter // POST /jobs requests that parsed
	admitted  *metrics.Counter // jobs accepted past admission control
	shed      *metrics.Counter // jobs rejected with 429 by load shedding
	done      *metrics.Counter // jobs that completed successfully
	failed    *metrics.Counter // jobs that completed with an error

	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter

	batchJobs    *metrics.Counter // jobs solved through the batched fast path
	batchFlushes *metrics.Counter // batch submissions to the scheduler

	queueDepth    *metrics.Gauge // jobs admitted but not yet terminal
	queueDepthHWM *metrics.Gauge

	latency   *metrics.Histogram // submit → terminal, ns
	runNs     *metrics.Histogram // execution only, ns
	queueWait *metrics.Histogram // admission → execution start, ns
	batchSize *metrics.Histogram // problems per batch flush
}

func newSVMetrics(reg *metrics.Registry) *svMetrics {
	return &svMetrics{
		submitted:      reg.Counter("serve.submitted"),
		admitted:       reg.Counter("serve.admitted"),
		shed:           reg.Counter("serve.shed_total"),
		done:           reg.Counter("serve.done"),
		failed:         reg.Counter("serve.failed"),
		cacheHits:      reg.Counter("serve.cache.hits"),
		cacheMisses:    reg.Counter("serve.cache.misses"),
		cacheEvictions: reg.Counter("serve.cache.evictions"),
		batchJobs:      reg.Counter("serve.batch.jobs"),
		batchFlushes:   reg.Counter("serve.batch.flushes"),
		queueDepth:     reg.Gauge("serve.queue_depth"),
		queueDepthHWM:  reg.Gauge("serve.queue_depth_hwm"),
		latency:        reg.Histogram("serve.latency.ns"),
		runNs:          reg.Histogram("serve.run.ns"),
		queueWait:      reg.Histogram("serve.queue_wait.ns"),
		batchSize:      reg.Histogram("serve.batch.size"),
	}
}
