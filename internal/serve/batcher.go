package serve

import (
	"fmt"
	"time"

	"exadla/internal/batch"
	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
)

// runBatcher is the small-problem fast path. Tiny solves pay more in
// scheduler submission and tile conversion than in arithmetic, so instead
// of one DAG per job the batcher gathers up to BatchMax of them, lingers
// BatchWait for stragglers, and pushes each (kind, n) group through the
// batched panel kernels as a handful of fused chunk tasks on one runtime.
func (s *Server) runBatcher() {
	defer s.wg.Done()
	rt := sched.New(s.cfg.Workers, sched.WithMetrics(s.reg))
	defer rt.Shutdown()
	for {
		jobs := s.takeSmall(s.cfg.BatchMax)
		if jobs == nil {
			return
		}
		if len(jobs) < s.cfg.BatchMax && s.cfg.BatchWait > 0 {
			time.Sleep(s.cfg.BatchWait)
			jobs = append(jobs, s.takeSmallNow(s.cfg.BatchMax-len(jobs))...)
		}
		s.flushBatch(rt, jobs)
	}
}

type batchKey struct {
	lu bool
	n  int
}

func (s *Server) flushBatch(rt *sched.Runtime, jobs []*job) {
	s.met.batchFlushes.Inc()
	s.met.batchSize.Observe(int64(len(jobs)))
	groups := make(map[batchKey][]*job)
	for _, j := range jobs {
		s.markRunning(j)
		j.batched.Store(true)
		k := batchKey{lu: !j.spec.Op.spd(), n: j.spec.N}
		groups[k] = append(groups[k], j)
	}
	for k, group := range groups {
		s.runBatchGroup(rt, k, group)
	}
}

// runBatchGroup factors every operator in the group through one batched
// submission, then back-substitutes each job's right-hand side in place.
// The batched kernels already isolate per-problem panics; the triangular
// solves get the same treatment here, so one malformed problem fails alone.
func (s *Server) runBatchGroup(rt *sched.Runtime, k batchKey, group []*job) {
	n := k.n
	mats := make([][]float64, len(group))
	for i, j := range group {
		mats[i] = j.spec.A
	}
	var pivs [][]int
	var errs []error
	if k.lu {
		pivs, errs = batch.Getrf(rt, n, mats, batch.Options{})
	} else {
		errs = batch.Potrf(rt, n, mats, batch.Options{})
	}
	for i, j := range group {
		if errs[i] != nil {
			s.finish(j, errs[i])
			continue
		}
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("serve: batched solve panicked: %v", p)
				}
			}()
			if k.lu {
				lapack.Getrs(blas.NoTrans, n, j.spec.NRHS, mats[i], n, pivs[i], j.spec.B, n)
			} else {
				lapack.Potrs(blas.Lower, n, j.spec.NRHS, mats[i], n, j.spec.B, n)
			}
			return nil
		}()
		if err == nil {
			j.result.Store(j.spec.B)
			s.met.batchJobs.Inc()
		}
		j.tasksDone.Store(1) // the fused submission, from this job's view
		s.finish(j, err)
	}
}
