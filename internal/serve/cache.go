package serve

import (
	"container/list"
	"sync"

	"exadla/internal/core"
	"exadla/internal/tile"
)

// factor is one cached factorization. Exactly one of chol/lu is set.
// Factors are immutable once inserted — warm solves only read them — so a
// single entry is safely shared by concurrent lanes.
type factor struct {
	n    int
	chol *tile.Matrix[float64]    // Cholesky L (lower triangle of the factored tiles)
	lu   *core.LUFactors[float64] // LU with pivots
}

type cacheKey struct {
	fp string
	lu bool
}

// factorCache is an LRU map from matrix fingerprint (plus factorization
// kind) to the finished factor. Capacity is counted in entries; eviction is
// least-recently-used. All methods are safe for concurrent use.
type factorCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEnt
	m   map[cacheKey]*list.Element

	met *svMetrics
}

type cacheEnt struct {
	key cacheKey
	f   *factor
}

func newFactorCache(capacity int, met *svMetrics) *factorCache {
	return &factorCache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element), met: met}
}

// get returns the cached factor for key, bumping its recency, and records
// the hit or miss.
func (c *factorCache) get(key cacheKey) *factor {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.met.cacheHits.Inc()
		return el.Value.(*cacheEnt).f
	}
	c.met.cacheMisses.Inc()
	return nil
}

// peek is get without touching recency or the hit/miss counters — used by
// the fingerprint-reference path to validate a handle before running.
func (c *factorCache) peek(key cacheKey) *factor {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		return el.Value.(*cacheEnt).f
	}
	return nil
}

// put inserts f under key, evicting the least-recently-used entry if the
// cache is full. If another lane raced the same factorization in, the
// incumbent wins (both are factors of the identical matrix).
func (c *factorCache) put(key cacheKey, f *factor) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEnt{key: key, f: f})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEnt).key)
		c.met.cacheEvictions.Inc()
	}
}

func (c *factorCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
