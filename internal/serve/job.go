package serve

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Op names a job kind.
type Op string

// Supported job kinds. Factorize ops run the O(n³) factorization and warm
// the cache; solve ops factor (or reuse a cached factor) and then apply the
// O(n²) triangular solves to the right-hand side.
const (
	// OpSolveSPD solves A·X = B for a symmetric positive definite A via
	// tile Cholesky.
	OpSolveSPD Op = "solve"
	// OpFactorSPD factors an SPD matrix and returns its fingerprint, so
	// later OpSolveSPD jobs against the same operator hit the cache (or
	// reference it by fingerprint without re-uploading the matrix).
	OpFactorSPD Op = "factorize"
	// OpSolveLU solves A·X = B for a general square A via tile LU.
	OpSolveLU Op = "lusolve"
	// OpFactorLU factors a general square matrix via tile LU.
	OpFactorLU Op = "lufactorize"
)

func (o Op) valid() bool {
	switch o {
	case OpSolveSPD, OpFactorSPD, OpSolveLU, OpFactorLU:
		return true
	}
	return false
}

func (o Op) spd() bool { return o == OpSolveSPD || o == OpFactorSPD }

func (o Op) solves() bool { return o == OpSolveSPD || o == OpSolveLU }

// JobSpec is one submitted problem. Either A (the full n×n column-major
// operator) or Fingerprint (referencing a factor already resident in the
// cache) must be set; solve ops additionally need B (n×nrhs, column-major).
type JobSpec struct {
	Op          Op        `json:"op"`
	N           int       `json:"n"`
	NRHS        int       `json:"nrhs,omitempty"`
	A           []float64 `json:"a,omitempty"`
	B           []float64 `json:"b,omitempty"`
	Fingerprint string    `json:"fingerprint,omitempty"`

	// testDelay stalls the job's execution; in-process test hook for
	// exercising queue backpressure deterministically.
	testDelay time.Duration
}

func (sp *JobSpec) check() error {
	if !sp.Op.valid() {
		return fmt.Errorf("unknown op %q", sp.Op)
	}
	if sp.N < 1 {
		return fmt.Errorf("op %s: n must be positive, got %d", sp.Op, sp.N)
	}
	if sp.NRHS == 0 && sp.Op.solves() {
		sp.NRHS = 1
	}
	if sp.A == nil && sp.Fingerprint == "" {
		return fmt.Errorf("op %s: need a matrix or a fingerprint", sp.Op)
	}
	if sp.A != nil && len(sp.A) != sp.N*sp.N {
		return fmt.Errorf("op %s: matrix has %d elements, want %d×%d", sp.Op, len(sp.A), sp.N, sp.N)
	}
	if sp.Op.solves() {
		if sp.NRHS < 1 {
			return fmt.Errorf("op %s: nrhs must be positive, got %d", sp.Op, sp.NRHS)
		}
		if len(sp.B) != sp.N*sp.NRHS {
			return fmt.Errorf("op %s: rhs has %d elements, want %d×%d", sp.Op, len(sp.B), sp.N, sp.NRHS)
		}
	} else if sp.A == nil {
		return fmt.Errorf("op %s: factorize needs the matrix itself", sp.Op)
	}
	return nil
}

// State is a job's lifecycle position.
type State int32

// Job states, in order.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// job is the server-side record of one submitted problem.
type job struct {
	id     string
	tenant string
	spec   JobSpec

	state     atomic.Int32
	submitted time.Time
	started   atomic.Int64 // ns since submitted, 0 until running
	finished  atomic.Int64 // ns since submitted, 0 until terminal

	// Progress derived from span traces: tasks of this job's DAG completed
	// so far and their accumulated ready→start queue wait (big path only;
	// batched jobs execute as one fused submission).
	tasksDone   atomic.Int64
	spanWaitNs  atomic.Int64
	cacheStatus atomic.Int32 // 0 none, 1 miss, 2 hit
	batched     atomic.Bool

	fingerprint atomic.Value // string, set once known
	errMsg      atomic.Value // string
	result      atomic.Value // []float64 (solution X) once done

	done chan struct{} // closed at terminal state
}

const (
	cacheNone int32 = iota
	cacheMiss
	cacheHit
)

func newJob(id, tenant string, spec JobSpec) *job {
	j := &job{id: id, tenant: tenant, spec: spec, submitted: time.Now(), done: make(chan struct{})}
	j.state.Store(int32(StateQueued))
	return j
}

func (j *job) cacheString() string {
	switch j.cacheStatus.Load() {
	case cacheMiss:
		return "miss"
	case cacheHit:
		return "hit"
	}
	return ""
}

func (j *job) fp() string {
	if v := j.fingerprint.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Status is the wire form of a job's state, served by GET /jobs/{id} and
// streamed by ?watch=1.
type Status struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	Op          Op      `json:"op"`
	N           int     `json:"n"`
	NRHS        int     `json:"nrhs,omitempty"`
	State       string  `json:"state"`
	TasksDone   int64   `json:"tasks_done"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	SpanWaitMs  float64 `json:"span_wait_ms,omitempty"`
	RunMs       float64 `json:"run_ms"`
	Batched     bool    `json:"batched,omitempty"`
	Cache       string  `json:"cache,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Error       string  `json:"error,omitempty"`
}

func (j *job) status() Status {
	st := Status{
		ID:          j.id,
		Tenant:      j.tenant,
		Op:          j.spec.Op,
		N:           j.spec.N,
		NRHS:        j.spec.NRHS,
		State:       State(j.state.Load()).String(),
		TasksDone:   j.tasksDone.Load(),
		SpanWaitMs:  float64(j.spanWaitNs.Load()) / 1e6,
		Batched:     j.batched.Load(),
		Cache:       j.cacheString(),
		Fingerprint: j.fp(),
	}
	if e := j.errMsg.Load(); e != nil {
		st.Error = e.(string)
	}
	started, finished := j.started.Load(), j.finished.Load()
	switch {
	case started > 0:
		st.QueueWaitMs = float64(started) / 1e6
	case finished > 0: // batched jobs may go queued→terminal in one hop
		st.QueueWaitMs = float64(finished) / 1e6
	default:
		st.QueueWaitMs = float64(time.Since(j.submitted)) / 1e6
	}
	if started > 0 {
		end := finished
		if end == 0 {
			end = int64(time.Since(j.submitted))
		}
		st.RunMs = float64(end-started) / 1e6
	}
	return st
}
