package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"exadla/internal/matgen"
)

func clone(v []float64) []float64 { return append([]float64(nil), v...) }

// residual returns max_i |A·x − b|_i for column-major n×n A and n×nrhs x, b.
func residual(n, nrhs int, a, x, b []float64) float64 {
	worst := 0.0
	for c := 0; c < nrhs; c++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i+k*n] * x[k+c*n]
			}
			if d := math.Abs(s - b[i+c*n]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func mustSubmit(t *testing.T, s *Server, tenant string, spec JobSpec) string {
	t.Helper()
	id, err := s.Submit(tenant, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return id
}

func waitDone(t *testing.T, s *Server, id string) Status {
	t.Helper()
	st, ok := s.WaitJob(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if st.State != "done" {
		t.Fatalf("job %s: state %s, error %q", id, st.State, st.Error)
	}
	return st
}

func TestServeSolveCorrectness(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 2, TileSize: 16, SmallCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	n, nrhs := 48, 3
	for _, op := range []Op{OpSolveSPD, OpSolveLU} {
		a := matgen.DiagDomSPD[float64](rng, n)
		b := matgen.Dense[float64](rng, n, nrhs)
		id := mustSubmit(t, s, "t0", JobSpec{Op: op, N: n, NRHS: nrhs, A: clone(a), B: clone(b)})
		st := waitDone(t, s, id)
		if st.Cache != "miss" {
			t.Errorf("%s: first solve should be a cache miss, got %q", op, st.Cache)
		}
		if st.Fingerprint == "" {
			t.Errorf("%s: no fingerprint reported", op)
		}
		if st.TasksDone < 1 {
			t.Errorf("%s: span-derived progress reports %d tasks", op, st.TasksDone)
		}
		x, err := s.Result(id)
		if err != nil {
			t.Fatalf("%s: Result: %v", op, err)
		}
		if r := residual(n, nrhs, a, x, b); r > 1e-8 {
			t.Errorf("%s: residual %g", op, r)
		}
	}
}

func TestCacheHitBitwiseEqualsColdSolve(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 2, TileSize: 16, SmallCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	n, nrhs := 64, 2
	a := matgen.DiagDomSPD[float64](rng, n)
	b := matgen.Dense[float64](rng, n, nrhs)

	cold := mustSubmit(t, s, "t0", JobSpec{Op: OpSolveSPD, N: n, NRHS: nrhs, A: clone(a), B: clone(b)})
	stCold := waitDone(t, s, cold)
	warm := mustSubmit(t, s, "t0", JobSpec{Op: OpSolveSPD, N: n, NRHS: nrhs, A: clone(a), B: clone(b)})
	stWarm := waitDone(t, s, warm)

	if stCold.Cache != "miss" || stWarm.Cache != "hit" {
		t.Fatalf("cache status: cold=%q warm=%q", stCold.Cache, stWarm.Cache)
	}
	if stCold.Fingerprint != stWarm.Fingerprint {
		t.Errorf("same matrix fingerprinted differently: %s vs %s", stCold.Fingerprint, stWarm.Fingerprint)
	}
	xc, _ := s.Result(cold)
	xw, _ := s.Result(warm)
	for i := range xc {
		if xc[i] != xw[i] {
			t.Fatalf("warm solve differs from cold at %d: %v vs %v", i, xw[i], xc[i])
		}
	}
	snap := s.Metrics()
	if snap.Counters["serve.cache.hits"] != 1 || snap.Counters["serve.cache.misses"] != 1 {
		t.Errorf("cache counters: hits=%d misses=%d, want 1/1",
			snap.Counters["serve.cache.hits"], snap.Counters["serve.cache.misses"])
	}
}

func TestFactorizeThenSolveByFingerprint(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 2, TileSize: 16, SmallCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	n := 40
	a := matgen.DiagDomSPD[float64](rng, n)
	b := matgen.Dense[float64](rng, n, 1)

	fid := mustSubmit(t, s, "t0", JobSpec{Op: OpFactorSPD, N: n, A: clone(a)})
	fp := waitDone(t, s, fid).Fingerprint
	if fp == "" {
		t.Fatal("factorize produced no fingerprint")
	}

	// Solve referencing the resident factor: no matrix upload at all.
	sid := mustSubmit(t, s, "t0", JobSpec{Op: OpSolveSPD, N: n, NRHS: 1, Fingerprint: fp, B: clone(b)})
	st := waitDone(t, s, sid)
	if st.Cache != "hit" {
		t.Errorf("fingerprint solve was %q, want hit", st.Cache)
	}
	x, err := s.Result(sid)
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(n, 1, a, x, b); r > 1e-8 {
		t.Errorf("residual %g", r)
	}

	// An unknown fingerprint must fail cleanly, not hang or panic.
	bad := mustSubmit(t, s, "t0", JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
		Fingerprint: strings.Repeat("f", 32), B: clone(b)})
	if st, _ := s.WaitJob(bad); st.State != "failed" || !strings.Contains(st.Error, "not resident") {
		t.Errorf("unknown fingerprint: state=%s err=%q", st.State, st.Error)
	}
}

func TestFingerprintCollisionSanity(t *testing.T) {
	fpr := newFingerprinter()
	rng := rand.New(rand.NewSource(4))
	seen := make(map[string]bool)
	const trials = 2000
	for i := 0; i < trials; i++ {
		m := matgen.Dense[float64](rng, 8, 8)
		fp := fpr.of(m)
		if len(fp) != 32 {
			t.Fatalf("fingerprint %q is not 128 bits of hex", fp)
		}
		if seen[fp] {
			t.Fatalf("collision after %d random matrices", i)
		}
		seen[fp] = true
		if fpr.of(m) != fp {
			t.Fatal("fingerprint is not deterministic")
		}
	}
	// One-bit perturbation must change the fingerprint.
	m := matgen.Dense[float64](rng, 16, 16)
	fp := fpr.of(m)
	m[100] = math.Nextafter(m[100], 2)
	if fpr.of(m) == fp {
		t.Error("single-ulp perturbation kept the same fingerprint")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 2, TileSize: 16, SmallCutoff: -1, CacheEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	n := 24
	var fps []string
	for i := 0; i < 3; i++ {
		a := matgen.DiagDomSPD[float64](rng, n)
		id := mustSubmit(t, s, "t0", JobSpec{Op: OpFactorSPD, N: n, A: a})
		fps = append(fps, waitDone(t, s, id).Fingerprint)
	}
	if got := s.CacheLen(); got != 2 {
		t.Errorf("cache holds %d entries, want 2", got)
	}
	if s.Metrics().Counters["serve.cache.evictions"] != 1 {
		t.Errorf("evictions=%d, want 1", s.Metrics().Counters["serve.cache.evictions"])
	}
	// The first (least recently used) factor is the one gone.
	b := matgen.Dense[float64](rng, n, 1)
	id := mustSubmit(t, s, "t0", JobSpec{Op: OpSolveSPD, N: n, NRHS: 1, Fingerprint: fps[0], B: b})
	if st, _ := s.WaitJob(id); st.State != "failed" {
		t.Errorf("solve against the evicted factor: state=%s", st.State)
	}
}

func TestShedUnderOverloadAndAdmitAfterDrain(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 1, TileSize: 16, SmallCutoff: -1,
		MaxQueue: 2, RetryAfter: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	n := 16
	spec := func(d time.Duration) JobSpec {
		return JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
			A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1), testDelay: d}
	}
	j1 := mustSubmit(t, s, "t0", spec(300*time.Millisecond))
	j2 := mustSubmit(t, s, "t0", spec(0))
	// Budget exhausted: one running/queued + one queued == MaxQueue.
	if _, err := s.Submit("t0", spec(0)); err == nil {
		t.Fatal("third submission admitted past a MaxQueue of 2")
	} else {
		shed, ok := err.(*ShedError)
		if !ok {
			t.Fatalf("overload returned %T (%v), want *ShedError", err, err)
		}
		if shed.RetryAfter != 7*time.Second {
			t.Errorf("RetryAfter=%v, want the configured 7s", shed.RetryAfter)
		}
	}
	if s.Metrics().Counters["serve.shed_total"] != 1 {
		t.Errorf("shed_total=%d, want 1", s.Metrics().Counters["serve.shed_total"])
	}
	waitDone(t, s, j1)
	waitDone(t, s, j2)
	// Drained: admission reopens.
	j4 := mustSubmit(t, s, "t0", spec(0))
	waitDone(t, s, j4)
}

func TestPerTenantBudgetIsolation(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 1, TileSize: 16, SmallCutoff: -1,
		MaxQueue: 10, MaxQueuePerTenant: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	n := 16
	spec := func(d time.Duration) JobSpec {
		return JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
			A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1), testDelay: d}
	}
	var greedy []string
	greedy = append(greedy, mustSubmit(t, s, "hog", spec(200*time.Millisecond)))
	greedy = append(greedy, mustSubmit(t, s, "hog", spec(0)))
	if _, err := s.Submit("hog", spec(0)); err == nil {
		t.Fatal("tenant exceeded its per-tenant budget")
	}
	// The other tenant still gets in: the hog sheds alone.
	polite := mustSubmit(t, s, "polite", spec(0))
	for _, id := range greedy {
		waitDone(t, s, id)
	}
	waitDone(t, s, polite)
}

func TestFairShareDequeue(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 1, TileSize: 16, SmallCutoff: -1, MaxQueue: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	n := 16
	spec := func(d time.Duration) JobSpec {
		return JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
			A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1), testDelay: d}
	}
	// Plug the single lane, then queue 4 slow jobs for the hog and one for
	// the latecomer. Fair-share dequeue serves the latecomer second, not
	// fifth.
	plug := mustSubmit(t, s, "hog", spec(200*time.Millisecond))
	var hogs []string
	for i := 0; i < 4; i++ {
		hogs = append(hogs, mustSubmit(t, s, "hog", spec(50*time.Millisecond)))
	}
	late := mustSubmit(t, s, "late", spec(0))
	waitDone(t, s, late)
	st, _ := s.Status(hogs[3])
	if st.State == "done" {
		t.Error("hog's whole backlog drained before the other tenant's single job")
	}
	waitDone(t, s, plug)
	for _, id := range hogs {
		waitDone(t, s, id)
	}
}

func TestBatchedFastPathFusesJobs(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 2, TileSize: 16,
		SmallCutoff: 16, BatchMax: 64, BatchWait: 5 * time.Millisecond, MaxQueue: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(9))
	n, count := 8, 200
	as := make([][]float64, count)
	bs := make([][]float64, count)
	ids := make([]string, count)
	for i := 0; i < count; i++ {
		as[i] = matgen.DiagDomSPD[float64](rng, n)
		bs[i] = matgen.Dense[float64](rng, n, 1)
		op := OpSolveSPD
		if i%3 == 0 {
			op = OpSolveLU
		}
		ids[i] = mustSubmit(t, s, fmt.Sprintf("t%d", i%4),
			JobSpec{Op: op, N: n, NRHS: 1, A: clone(as[i]), B: clone(bs[i])})
	}
	for i, id := range ids {
		st := waitDone(t, s, id)
		if !st.Batched {
			t.Fatalf("job %d took the lane path; SmallCutoff routing broken", i)
		}
		x, err := s.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if r := residual(n, 1, as[i], x, bs[i]); r > 1e-9 {
			t.Errorf("job %d residual %g", i, r)
		}
	}
	snap := s.Metrics()
	if got := snap.Counters["serve.batch.jobs"]; got != int64(count) {
		t.Errorf("batch.jobs=%d, want %d", got, count)
	}
	if fl := snap.Counters["serve.batch.flushes"]; fl >= int64(count)/4 {
		t.Errorf("%d flushes for %d jobs: the fast path is not batching", fl, count)
	}
}

func TestBatchedPathIsolatesBadProblem(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 2, TileSize: 16,
		SmallCutoff: 16, BatchMax: 32, BatchWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(10))
	n := 8
	var ids []string
	for i := 0; i < 10; i++ {
		a := matgen.DiagDomSPD[float64](rng, n)
		if i == 4 {
			a[3+3*n] = -1e9 // not positive definite
		}
		ids = append(ids, mustSubmit(t, s, "t0",
			JobSpec{Op: OpSolveSPD, N: n, NRHS: 1, A: a, B: matgen.Dense[float64](rng, n, 1)}))
	}
	for i, id := range ids {
		st, _ := s.WaitJob(id)
		if i == 4 {
			if st.State != "failed" {
				t.Errorf("the indefinite problem reported %s", st.State)
			}
			continue
		}
		if st.State != "done" {
			t.Errorf("job %d: %s (%s) — a bad neighbor took it down", i, st.State, st.Error)
		}
	}
}

func TestConcurrentSubmitPollFetch(t *testing.T) {
	s, err := New(Config{Lanes: 2, Workers: 2, TileSize: 16,
		SmallCutoff: 16, MaxQueue: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const tenants, perTenant = 4, 25
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + tn)))
			tenant := fmt.Sprintf("tenant-%d", tn)
			for i := 0; i < perTenant; i++ {
				var spec JobSpec
				switch i % 3 {
				case 0: // tiny solve → batched path
					spec = JobSpec{Op: OpSolveSPD, N: 8, NRHS: 1,
						A: matgen.DiagDomSPD[float64](rng, 8), B: matgen.Dense[float64](rng, 8, 1)}
				case 1: // bigger solve → lane path, shared operator → cache traffic
					a := matgen.DiagDomSPD[float64](rand.New(rand.NewSource(int64(tn))), 32)
					spec = JobSpec{Op: OpSolveSPD, N: 32, NRHS: 2,
						A: a, B: matgen.Dense[float64](rng, 32, 2)}
				default: // LU
					spec = JobSpec{Op: OpSolveLU, N: 24, NRHS: 1,
						A: matgen.Dense[float64](rng, 24, 24), B: matgen.Dense[float64](rng, 24, 1)}
				}
				id, err := s.Submit(tenant, spec)
				if err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
				// Poll while it runs, then fetch.
				for k := 0; k < 3; k++ {
					if _, ok := s.Status(id); !ok {
						t.Errorf("%s: job %s lost", tenant, id)
						return
					}
				}
				st, _ := s.WaitJob(id)
				if st.State != "done" {
					t.Errorf("%s: job %s %s: %s", tenant, id, st.State, st.Error)
					return
				}
				if _, err := s.Result(id); err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := s.Metrics()
	if got := snap.Counters["serve.done"]; got != tenants*perTenant {
		t.Errorf("done=%d, want %d", got, tenants*perTenant)
	}
	if snap.Counters["serve.failed"] != 0 {
		t.Errorf("failed=%d", snap.Counters["serve.failed"])
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", Lanes: 1, Workers: 2, TileSize: 16, SmallCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	rng := rand.New(rand.NewSource(11))
	n := 24
	a := matgen.DiagDomSPD[float64](rng, n)
	b := matgen.Dense[float64](rng, n, 1)

	// JSON submit with wait=1 returns the terminal status directly.
	body, _ := json.Marshal(JobSpec{Op: OpSolveSPD, N: n, NRHS: 1, A: a, B: b})
	req, _ := http.NewRequest("POST", base+"/jobs?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || st.State != "done" || st.Tenant != "alice" {
		t.Fatalf("wait submit: code=%d status=%+v", resp.StatusCode, st)
	}

	// Result as JSON, then as raw bytes; both must agree with the residual.
	resp, err = http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		X []float64 `json:"x"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r := residual(n, 1, a, res.X, b); r > 1e-8 {
		t.Errorf("HTTP residual %g", r)
	}
	resp, err = http.Get(base + "/jobs/" + st.ID + "/result?format=bin")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(raw) != 8*n {
		t.Fatalf("binary result is %d bytes, want %d", len(raw), 8*n)
	}
	for i := range res.X {
		if math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])) != res.X[i] {
			t.Fatal("binary result differs from JSON result")
		}
	}

	// Raw octet-stream submit: A then B as little-endian float64s.
	raw = make([]byte, 8*(n*n+n))
	for i, v := range a {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	for i, v := range b {
		binary.LittleEndian.PutUint64(raw[8*(n*n+i):], math.Float64bits(v))
	}
	req, _ = http.NewRequest("POST", fmt.Sprintf("%s/jobs?wait=1&op=solve&n=%d&nrhs=1", base, n), bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st2 Status
	_ = json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if st2.State != "done" {
		t.Fatalf("raw submit: %+v", st2)
	}
	if st2.Cache != "hit" {
		t.Errorf("raw resubmission of the same operator was %q, want hit", st2.Cache)
	}

	// Unknown job is a JSON 404.
	resp, _ = http.Get(base + "/jobs/j99999999")
	if resp.StatusCode != 404 {
		t.Errorf("unknown job: code=%d", resp.StatusCode)
	}
	resp.Body.Close()

	// /metrics carries the serve_* family in Prometheus form.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_cache_hits", "serve_shed_total", "serve_done", "serve_latency_ns"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestHTTPShedAndWatch(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", Lanes: 1, Workers: 1, TileSize: 16,
		SmallCutoff: -1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	rng := rand.New(rand.NewSource(12))
	n := 16
	// Plug the lane in-process so the HTTP submission is deterministically shed.
	slow := mustSubmit(t, s, "t0", JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
		A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1),
		testDelay: 400 * time.Millisecond})

	body, _ := json.Marshal(JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
		A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1)})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: code=%d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After=%q, want \"2\"", ra)
	}

	// Watching the plugged job streams at least a running line and a done line.
	wresp, err := http.Get(base + "/jobs/" + slow + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var states []string
	sc := bufio.NewScanner(wresp.Body)
	for sc.Scan() {
		var st Status
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		states = append(states, st.State)
	}
	if len(states) < 2 || states[len(states)-1] != "done" {
		t.Errorf("watch stream states: %v", states)
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	s, err := New(Config{Lanes: 1, Workers: 1, TileSize: 16, SmallCutoff: -1, MaxQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	n := 16
	spec := func(d time.Duration) JobSpec {
		return JobSpec{Op: OpSolveSPD, N: n, NRHS: 1,
			A: matgen.DiagDomSPD[float64](rng, n), B: matgen.Dense[float64](rng, n, 1), testDelay: d}
	}
	running := mustSubmit(t, s, "t0", spec(200*time.Millisecond))
	queued := mustSubmit(t, s, "t0", spec(0))
	for st, _ := s.Status(running); st.State != "running"; st, _ = s.Status(running) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The in-flight job finished; the queued one failed cleanly.
	if st, _ := s.Status(running); st.State != "done" {
		t.Errorf("in-flight job at close: %s", st.State)
	}
	if st, _ := s.Status(queued); st.State != "failed" || !strings.Contains(st.Error, "shut down") {
		t.Errorf("queued job at close: %s (%s)", st.State, st.Error)
	}
	if _, err := s.Submit("t0", spec(0)); err == nil {
		t.Error("submit after Close was admitted")
	}
}
