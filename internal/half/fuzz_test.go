package half

import (
	"math"
	"testing"
)

// FuzzHalfRoundTrip exercises the storage-format invariant the mixed-
// precision solvers rely on: every half value survives a round trip through
// float32 unchanged. Float32 is exact (binary16 ⊂ binary32), so
// FromFloat32 must map each widened value back onto the identical bit
// pattern — for normals, subnormals, signed zeros and ±Inf alike. NaNs are
// the one exception: the payload is not preserved, only NaN-ness.
func FuzzHalfRoundTrip(f *testing.F) {
	seeds := []uint16{
		0x0000, 0x8000, // ±0
		0x0001, 0x8001, // smallest subnormals
		0x03ff, 0x83ff, // largest subnormals
		0x0400, 0x8400, // smallest normals
		0x3c00, 0xbc00, // ±1
		0x3555,         // ~1/3
		0x7bff, 0xfbff, // ±MaxValue
		0x7c00, 0xfc00, // ±Inf
		0x7c01, 0x7e00, 0xfe00, 0xffff, // NaNs
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, u uint16) {
		h := Half(u)
		w := h.Float32()
		back := FromFloat32(w)

		if h.IsNaN() {
			if !math.IsNaN(float64(w)) {
				t.Fatalf("%#04x: NaN widened to %g", u, w)
			}
			if !back.IsNaN() {
				t.Fatalf("%#04x: NaN round-tripped to %#04x", u, uint16(back))
			}
			return
		}
		if back != h {
			t.Fatalf("%#04x: round trip gave %#04x (via %g)", u, uint16(back), w)
		}
		if h.IsInf() != math.IsInf(float64(w), 0) {
			t.Fatalf("%#04x: infinity mismatch (widened %g)", u, w)
		}
		// The widened value must be sign-consistent, zeros included.
		if math.Signbit(float64(w)) != (u&0x8000 != 0) {
			t.Fatalf("%#04x: sign lost in widening (%g)", u, w)
		}
	})
}

// FuzzHalfFromFloat32Nearest checks FromFloat32 against the rounding spec
// directly: for any finite float32, the chosen half must be at minimal
// distance among all 65536 candidates, ties must resolve to the even
// mantissa, and magnitudes at or beyond the overflow threshold (65520, the
// midpoint between MaxValue and the next unbounded-exponent step) must
// produce ±Inf. Exhaustive comparison is cheap at 2¹⁶ candidates and leaves
// no corner of the subnormal or boundary ranges unchecked.
func FuzzHalfFromFloat32Nearest(f *testing.F) {
	seedFloats := []float32{
		0, float32(math.Copysign(0, -1)),
		1, -1, 0.1, 1.0 / 3.0,
		65504, 65519.996, 65520, 65536, -65520,
		0x1p-14, 0x1p-24, 0x1p-25, 0x1.8p-25, 0x1p-26,
		5.960464e-8, // ≈ half of the smallest subnormal
		float32(math.Inf(1)), float32(math.Inf(-1)),
	}
	for _, s := range seedFloats {
		f.Add(math.Float32bits(s))
	}
	f.Fuzz(func(t *testing.T, ub uint32) {
		x := math.Float32frombits(ub)
		h := FromFloat32(x)
		xd := float64(x)

		if math.IsNaN(xd) {
			if !h.IsNaN() {
				t.Fatalf("%g: converted to non-NaN %#04x", x, uint16(h))
			}
			return
		}
		if math.IsInf(xd, 0) || math.Abs(xd) >= 65520 {
			want := PosInf
			if math.Signbit(xd) {
				want = NegInf
			}
			if h != want {
				t.Fatalf("%g: got %#04x, want %#04x", x, uint16(h), uint16(want))
			}
			return
		}
		if h.IsNaN() || h.IsInf() {
			t.Fatalf("%g: finite in-range input became %#04x", x, uint16(h))
		}

		err := math.Abs(float64(h.Float32()) - xd)
		for c := 0; c < 1<<16; c++ {
			cand := Half(c)
			if cand.IsNaN() || cand.IsInf() || cand == h {
				continue
			}
			cerr := math.Abs(float64(cand.Float32()) - xd)
			if cerr < err {
				t.Fatalf("%g: chose %#04x (err %g) over closer %#04x (err %g)",
					x, uint16(h), err, uint16(cand), cerr)
			}
			if cerr == err && h&1 != 0 && cand&1 == 0 {
				// A tie must resolve to the even mantissa. Signed-zero
				// pairs widen to equal values and are not a real tie.
				if h.Float32() != cand.Float32() {
					t.Fatalf("%g: tie broken to odd %#04x instead of even %#04x",
						x, uint16(h), uint16(cand))
				}
			}
		}
	})
}
