package half

import (
	"math"
	"testing"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Half
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},   // max finite
		{0x1p-14, 0x0400}, // min normal
		{0x1p-24, 0x0001}, // min subnormal
		{1.5, 0x3e00},
		{-0.25, 0xb400},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := c.bits.Float32(); got != c.f {
			t.Errorf("%#04x.Float32() = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if nz != 0x8000 {
		t.Errorf("-0 = %#04x", nz)
	}
	if v := nz.Float32(); v != 0 || !math.Signbit(float64(v)) {
		t.Errorf("-0 round trip = %v", v)
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(70000); got != PosInf {
		t.Errorf("70000 → %#04x, want +Inf", got)
	}
	if got := FromFloat32(-1e10); got != NegInf {
		t.Errorf("-1e10 → %#04x, want -Inf", got)
	}
	if got := FromFloat32(float32(math.Inf(1))); got != PosInf {
		t.Errorf("+Inf → %#04x", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Errorf("1e-10 → %#04x, want +0", got)
	}
	if got := FromFloat32(-1e-10); got != 0x8000 {
		t.Errorf("-1e-10 → %#04x, want -0", got)
	}
}

func TestNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Errorf("NaN → %#04x, not NaN", h)
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Error("NaN round trip lost NaN-ness")
	}
	if PosInf.IsNaN() || !PosInf.IsInf() {
		t.Error("Inf classification")
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// Halfway cases between representable halves round to even mantissa.
	// 1 + 2⁻¹¹ is exactly halfway between 1 (mantissa 0, even) and 1+2⁻¹⁰.
	if got := FromFloat32(1 + 0x1p-11); got != 0x3c00 {
		t.Errorf("1+2^-11 → %#04x, want 0x3c00 (ties to even)", got)
	}
	// 1 + 3·2⁻¹¹ is halfway between 1+2⁻¹⁰ (odd) and 1+2·2⁻¹⁰ (even).
	if got := FromFloat32(1 + 3*0x1p-11); got != 0x3c02 {
		t.Errorf("1+3·2^-11 → %#04x, want 0x3c02", got)
	}
	// Just above halfway rounds up.
	if got := FromFloat32(1 + 0x1p-11 + 0x1p-20); got != 0x3c01 {
		t.Errorf("slightly above halfway → %#04x, want 0x3c01", got)
	}
}

func TestMantissaCarryPropagation(t *testing.T) {
	// The largest half below 2 rounds up to exactly 2 (exponent carry).
	f := float32(2 - 0x1p-12)
	if got := FromFloat32(f); got != 0x4000 {
		t.Errorf("2−2⁻¹² → %#04x, want 0x4000 (=2)", got)
	}
	// Just below the overflow threshold rounds to Inf.
	if got := FromFloat32(65520); got != PosInf {
		t.Errorf("65520 → %#04x, want +Inf", got)
	}
	if got := FromFloat32(65519); got != 0x7bff {
		t.Errorf("65519 → %#04x, want max finite", got)
	}
}

// TestExhaustiveRoundTrip checks that every one of the 65536 half bit
// patterns survives Half→float32→Half (canonicalizing NaNs).
func TestExhaustiveRoundTrip(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := Half(i)
		f := h.Float32()
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("%#04x: NaN lost", h)
			}
			continue
		}
		if back != h {
			t.Fatalf("%#04x → %v → %#04x", h, f, back)
		}
	}
}

func TestEpsilonProperty(t *testing.T) {
	// 1 + Epsilon must be the next half after 1; 1 + Epsilon/2 rounds to 1.
	if got := FromFloat32(1 + Epsilon); got != 0x3c01 {
		t.Errorf("1+ε → %#04x", got)
	}
	if got := FromFloat32(1 + Epsilon/2); got != 0x3c00 {
		t.Errorf("1+ε/2 → %#04x", got)
	}
}

func TestRoundSlices(t *testing.T) {
	s := []float64{1, 1 + 1e-8, 100000, 1e-30}
	RoundSlice64(s)
	if s[0] != 1 || s[1] != 1 {
		t.Error("small perturbation should vanish at half precision")
	}
	if !math.IsInf(s[2], 1) {
		t.Errorf("100000 should overflow, got %v", s[2])
	}
	if s[3] != 0 {
		t.Errorf("1e-30 should flush to zero, got %v", s[3])
	}
	s32 := []float32{3.14159265}
	RoundSlice32(s32)
	if d := math.Abs(float64(s32[0]) - 3.140625); d > 1e-12 {
		t.Errorf("π rounded to %v", s32[0])
	}
}
