// Package half implements IEEE 754 binary16 ("half precision") as a
// storage format with round-to-nearest-even conversions, emulating the
// fp16 arithmetic units the post-keynote mixed-precision work (fp16
// factorization + fp32/fp64 refinement) is built on. Values are stored in
// 16 bits and computed on after conversion to float32 — exactly the
// fp16-storage/fp32-accumulate model of tensor-core hardware.
package half

import "math"

// Half is an IEEE 754 binary16 value in its raw bit representation.
type Half uint16

// Machine parameters of binary16.
const (
	// Epsilon is the ulp of 1.0: 2⁻¹⁰.
	Epsilon = 0x1p-10
	// MaxValue is the largest finite half (65504).
	MaxValue = 65504.0
	// MinNormal is the smallest positive normal half (2⁻¹⁴).
	MinNormal = 0x1p-14
)

// Inf and NaN bit patterns.
const (
	PosInf Half = 0x7c00
	NegInf Half = 0xfc00
	qNaN   Half = 0x7e00
)

// FromFloat32 converts with round-to-nearest-even, overflowing to ±Inf and
// flushing tiny values to (signed) zero through the subnormal range.
func FromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	if exp == 0xff { // Inf or NaN
		if man != 0 {
			return Half(sign) | qNaN
		}
		return Half(sign) | PosInf
	}
	e := exp - 127 + 15
	if e >= 0x1f { // overflow
		return Half(sign) | PosInf
	}
	if e <= 0 {
		// Subnormal half (or underflow to zero).
		if e < -10 {
			return Half(sign)
		}
		man |= 0x800000 // make the implicit bit explicit
		shift := uint32(14 - e)
		// Round to nearest even: add half-ulp−1 plus the sticky lsb.
		halfULP := uint32(1) << (shift - 1)
		rounded := (man + halfULP - 1 + ((man >> shift) & 1)) >> shift
		return Half(sign | uint16(rounded))
	}
	// Normal: round the 23-bit mantissa to 10 bits.
	lsb := (man >> 13) & 1
	rounded := man + 0xfff + lsb
	if rounded&0x800000 != 0 { // mantissa carry
		rounded = 0
		e++
		if e >= 0x1f {
			return Half(sign) | PosInf
		}
	}
	return Half(sign | uint16(e)<<10 | uint16(rounded>>13)&0x3ff)
}

// FromFloat64 converts through float32 (double rounding is harmless here:
// float32 keeps 13 more mantissa bits than the final 10).
func FromFloat64(f float64) Half {
	return FromFloat32(float32(f))
}

// Float32 converts back exactly (every half is representable as float32).
func (h Half) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f:
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000) // NaN
		}
		return math.Float32frombits(sign | 0x7f800000) // Inf
	case exp == 0:
		// Subnormal: value = man·2⁻²⁴.
		v := float32(man) * 0x1p-24
		if sign != 0 {
			return -v
		}
		return v
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
}

// Float64 converts back exactly.
func (h Half) Float64() float64 { return float64(h.Float32()) }

// IsNaN reports whether h is a NaN.
func (h Half) IsNaN() bool {
	return h&0x7c00 == 0x7c00 && h&0x3ff != 0
}

// IsInf reports whether h is ±Inf.
func (h Half) IsInf() bool { return h&0x7fff == 0x7c00 }

// Round64 rounds a float64 through half precision and back — the standard
// way to emulate an fp16 store in a higher-precision computation.
func Round64(f float64) float64 { return FromFloat64(f).Float64() }

// RoundSlice64 rounds every element of a float64 slice through half
// precision in place, returning the slice.
func RoundSlice64(s []float64) []float64 {
	for i, v := range s {
		s[i] = Round64(v)
	}
	return s
}

// RoundSlice32 rounds every element of a float32 slice through half
// precision in place, returning the slice.
func RoundSlice32(s []float32) []float32 {
	for i, v := range s {
		s[i] = FromFloat32(v).Float32()
	}
	return s
}
