package matgen

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
)

func TestRandomOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 32} {
		q := RandomOrthogonal[float64](rng, n)
		// QᵀQ must be the identity.
		qtq := make([]float64, n*n)
		blas.Gemm(blas.Trans, blas.NoTrans, n, n, n, 1, q, n, q, n, 0, qtq, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq[i+j*n]-want) > 1e-12*float64(n) {
					t.Fatalf("n=%d: QᵀQ[%d,%d] = %v", n, i, j, qtq[i+j*n])
				}
			}
		}
	}
}

func TestDiagDomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 40
	a := DiagDomSPD[float64](rng, n)
	for j := 0; j < n; j++ {
		if a[j+j*n] <= 0 {
			t.Fatalf("diagonal %d not positive: %v", j, a[j+j*n])
		}
		var off float64
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			if a[i+j*n] != a[j+i*n] {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
			off += math.Abs(a[i+j*n])
		}
		if a[j+j*n] <= off {
			t.Fatalf("row %d not strictly diagonally dominant", j)
		}
	}
}

func TestSPDWithCondTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, cond := 24, 1e4
	a := SPDWithCond[float64](rng, n, cond)
	// Orthogonal similarity preserves the trace: trace(A) = Σ eigenvalues.
	wantTrace := 0.0
	for _, d := range logSpaced(n, cond) {
		wantTrace += d
	}
	gotTrace := 0.0
	for i := 0; i < n; i++ {
		gotTrace += a[i+i*n]
	}
	if math.Abs(gotTrace-wantTrace) > 1e-10*wantTrace*float64(n) {
		t.Errorf("trace: got %v want %v", gotTrace, wantTrace)
	}
	// Symmetry.
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if a[i+j*n] != a[j+i*n] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestWithCondFrobenius(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n, cond := 30, 18, 1e3
	a := WithCond[float64](rng, m, n, cond)
	// Orthogonal transforms preserve ‖A‖_F = sqrt(Σ σᵢ²).
	want := 0.0
	for _, s := range logSpaced(min(m, n), cond) {
		want += s * s
	}
	want = math.Sqrt(want)
	got := blas.Nrm2(m*n, a, 1)
	if math.Abs(got-want) > 1e-10*want*float64(m) {
		t.Errorf("‖A‖_F: got %v want %v", got, want)
	}
}

func TestHilbert(t *testing.T) {
	h := Hilbert[float64](3)
	want := []float64{1, 0.5, 1.0 / 3, 0.5, 1.0 / 3, 0.25, 1.0 / 3, 0.25, 0.2}
	for i := range want {
		if math.Abs(h[i]-want[i]) > 1e-15 {
			t.Fatalf("Hilbert[%d]: got %v want %v", i, h[i], want[i])
		}
	}
}

func TestPoisson2D(t *testing.T) {
	n := 3
	a := Poisson2D[float64](n)
	nn := n * n
	// Symmetric, diagonal of 4, row sums between 0 and 4 (boundary rows > 0).
	for j := 0; j < nn; j++ {
		if a[j+j*nn] != 4 {
			t.Fatalf("diagonal %d: %v", j, a[j+j*nn])
		}
		for i := 0; i < nn; i++ {
			if a[i+j*nn] != a[j+i*nn] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Interior row (center of 3×3 grid) has four -1 neighbours.
	center := 4
	count := 0
	for i := 0; i < nn; i++ {
		if i != center && a[i+center*nn] == -1 {
			count++
		}
	}
	if count != 4 {
		t.Errorf("center row has %d neighbours, want 4", count)
	}
}

func TestRHSForSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 6, 4
	a := Dense[float64](rng, m, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	b := RHSForSolution(m, n, a, m, x)
	for i := 0; i < m; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += a[i+j*m] * x[j]
		}
		if math.Abs(b[i]-want) > 1e-12 {
			t.Fatalf("b[%d]: got %v want %v", i, b[i], want)
		}
	}
}

func TestGeneratorsFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := DiagDomSPD[float32](rng, 8)
	if len(a) != 64 {
		t.Fatal("wrong size")
	}
	q := RandomOrthogonal[float32](rng, 8)
	qtq := make([]float32, 64)
	blas.Gemm(blas.Trans, blas.NoTrans, 8, 8, 8, 1, q, 8, q, 8, 0, qtq, 8)
	for i := 0; i < 8; i++ {
		if math.Abs(float64(qtq[i+i*8]-1)) > 1e-5 {
			t.Fatalf("float32 QᵀQ diag: %v", qtq[i+i*8])
		}
	}
}
