// Package matgen generates dense test matrices with prescribed structure:
// random general matrices, symmetric positive definite matrices (both cheap
// diagonally dominant ones and ones with an exact prescribed condition
// number), and classical ill-conditioned examples.
//
// All matrices are column-major with leading dimension equal to the row
// count unless stated otherwise. Generators take an explicit *rand.Rand so
// callers control determinism.
package matgen

import (
	"math"
	"math/rand"

	"exadla/internal/blas"
)

// Dense returns an m×n matrix with independent standard normal entries.
func Dense[T blas.Float](rng *rand.Rand, m, n int) []T {
	a := make([]T, m*n)
	for i := range a {
		a[i] = T(rng.NormFloat64())
	}
	return a
}

// DiagDomSPD returns an n×n symmetric positive definite matrix built from a
// random symmetric matrix made strictly diagonally dominant. Generation is
// O(n²), so it is the generator of choice for large benchmark inputs. The
// matrix is well conditioned (condition number typically below ~100).
func DiagDomSPD[T blas.Float](rng *rand.Rand, n int) []T {
	a := make([]T, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			v := T(rng.NormFloat64())
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	for i := 0; i < n; i++ {
		var s T
		for j := 0; j < n; j++ {
			v := a[i+j*n]
			if v < 0 {
				v = -v
			}
			s += v
		}
		a[i+i*n] = s + 1
	}
	return a
}

// SPDWithCond returns an n×n symmetric positive definite matrix with
// condition number exactly cond (in the 2-norm, up to rounding): A = Q·D·Qᵀ
// where Q is a random orthogonal matrix (a product of n Householder
// reflectors) and D has log-spaced eigenvalues in [1/cond, 1].
// Generation is O(n³); intended for accuracy studies at moderate sizes.
func SPDWithCond[T blas.Float](rng *rand.Rand, n int, cond float64) []T {
	if cond < 1 {
		panic("matgen: condition number must be ≥ 1")
	}
	d := logSpaced(n, cond)
	q := RandomOrthogonal[T](rng, n)
	// A = Q·D·Qᵀ: scale columns of Q by D, multiply by Qᵀ.
	qd := make([]T, n*n)
	for j := 0; j < n; j++ {
		s := T(d[j])
		for i := 0; i < n; i++ {
			qd[i+j*n] = q[i+j*n] * s
		}
	}
	a := make([]T, n*n)
	blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, qd, n, q, n, 0, a, n)
	// Resymmetrize to kill rounding asymmetry.
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			v := (a[i+j*n] + a[j+i*n]) / 2
			a[i+j*n], a[j+i*n] = v, v
		}
	}
	return a
}

// WithCond returns an m×n matrix with prescribed 2-norm condition number:
// A = U·Σ·Vᵀ with log-spaced singular values in [1/cond, 1] and random
// orthogonal U, V. Generation is O((m+n)·m·n).
func WithCond[T blas.Float](rng *rand.Rand, m, n int, cond float64) []T {
	if cond < 1 {
		panic("matgen: condition number must be ≥ 1")
	}
	k := min(m, n)
	sigma := logSpaced(k, cond)
	// Start from the m×n "diagonal" matrix Σ and apply random reflectors
	// from the left and right: A = H_L Σ H_Rᵀ remains U Σ Vᵀ shaped.
	a := make([]T, m*n)
	for i := 0; i < k; i++ {
		a[i+i*m] = T(sigma[i])
	}
	applyRandomReflectorsLeft(rng, m, n, a, m)
	applyRandomReflectorsRight(rng, m, n, a, m)
	return a
}

// RandomOrthogonal returns a random n×n orthogonal matrix as a product of n
// random Householder reflectors applied to the identity.
func RandomOrthogonal[T blas.Float](rng *rand.Rand, n int) []T {
	q := make([]T, n*n)
	for i := 0; i < n; i++ {
		q[i+i*n] = 1
	}
	applyRandomReflectorsLeft(rng, n, n, q, n)
	return q
}

// applyRandomReflectorsLeft applies min(m, 8)+1 random Householder
// reflectors H = I − 2vvᵀ/‖v‖² to A from the left. A handful of dense
// reflectors already mixes every row with every other; using n reflectors
// would produce a Haar-distributed factor but costs no extra correctness.
func applyRandomReflectorsLeft[T blas.Float](rng *rand.Rand, m, n int, a []T, lda int) {
	if m < 2 {
		return
	}
	v := make([]T, m)
	w := make([]T, n)
	for r := 0; r < min(m, 8)+1; r++ {
		var nrm2 T
		for i := range v {
			v[i] = T(rng.NormFloat64())
			nrm2 += v[i] * v[i]
		}
		// w = AᵀV; A -= (2/‖v‖²)·v·wᵀ.
		blas.Gemv(blas.Trans, m, n, 1, a, lda, v, 1, 0, w, 1)
		blas.Ger(m, n, -2/nrm2, v, 1, w, 1, a, lda)
	}
}

func applyRandomReflectorsRight[T blas.Float](rng *rand.Rand, m, n int, a []T, lda int) {
	if n < 2 {
		return
	}
	v := make([]T, n)
	w := make([]T, m)
	for r := 0; r < min(n, 8)+1; r++ {
		var nrm2 T
		for i := range v {
			v[i] = T(rng.NormFloat64())
			nrm2 += v[i] * v[i]
		}
		// w = A·v; A -= (2/‖v‖²)·w·vᵀ.
		blas.Gemv(blas.NoTrans, m, n, 1, a, lda, v, 1, 0, w, 1)
		blas.Ger(m, n, -2/nrm2, w, 1, v, 1, a, lda)
	}
}

// Hilbert returns the n×n Hilbert matrix H[i][j] = 1/(i+j+1), a classically
// ill-conditioned symmetric positive definite matrix.
func Hilbert[T blas.Float](n int) []T {
	a := make([]T, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a[i+j*n] = T(1 / float64(i+j+1))
		}
	}
	return a
}

// Poisson2D returns the n²×n² pentadiagonal matrix of the 5-point Laplacian
// stencil on an n×n grid: 4 on the diagonal, -1 on grid-neighbour entries.
// It is symmetric positive definite with condition number Θ(n²).
func Poisson2D[T blas.Float](n int) []T {
	nn := n * n
	a := make([]T, nn*nn)
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			r := idx(i, j)
			a[r+r*nn] = 4
			if i > 0 {
				a[r+idx(i-1, j)*nn] = -1
			}
			if i < n-1 {
				a[r+idx(i+1, j)*nn] = -1
			}
			if j > 0 {
				a[r+idx(i, j-1)*nn] = -1
			}
			if j < n-1 {
				a[r+idx(i, j+1)*nn] = -1
			}
		}
	}
	return a
}

// Identity returns the n×n identity matrix.
func Identity[T blas.Float](n int) []T {
	a := make([]T, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = 1
	}
	return a
}

// RHSForSolution returns b = A·x for a given m×n matrix and solution x, so
// solver tests know the exact answer.
func RHSForSolution[T blas.Float](m, n int, a []T, lda int, x []T) []T {
	b := make([]T, m)
	blas.Gemv(blas.NoTrans, m, n, 1, a, lda, x, 1, 0, b, 1)
	return b
}

// logSpaced returns k values log-spaced from 1 down to 1/cond.
func logSpaced(k int, cond float64) []float64 {
	s := make([]float64, k)
	if k == 1 {
		s[0] = 1
		return s
	}
	for i := range s {
		t := float64(i) / float64(k-1)
		s[i] = math.Pow(cond, -t)
	}
	return s
}
