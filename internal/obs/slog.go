package obs

import (
	"context"
	"errors"
	"log/slog"

	"exadla/internal/sched"
)

// FailureLogger adapts a structured logger into a scheduler failure
// observer (sched.WithFailureObserver): each failed task attempt becomes
// one log record identifying which task failed, which attempt, how it
// failed, and whether the runtime is retrying. The event kind classifies
// the failure:
//
//	chaos                  injected by WithChaos (errors.Is ErrInjected)
//	corruption-corrected   ABFT checksum fault, already repaired in place
//	timeout                watchdog deadline expiry (worker presumed lost)
//	panic                  the task body panicked
//	error                  any other task error
//
// Retried attempts log at Warn, permanent failures at Error.
func FailureLogger(l *slog.Logger) func(sched.FailureEvent) {
	return func(e sched.FailureEvent) {
		kind := "error"
		var c sched.InPlaceCorrector
		switch {
		case e.Panicked:
			kind = "panic"
		case e.TimedOut:
			kind = "timeout"
		case errors.Is(e.Err, sched.ErrInjected):
			kind = "chaos"
		case errors.As(e.Err, &c) && c.CorrectedInPlace():
			kind = "corruption-corrected"
		}
		level := slog.LevelError
		msg := "task failed"
		if e.Retrying {
			level, msg = slog.LevelWarn, "task attempt failed, retrying"
		}
		l.Log(context.Background(), level, msg,
			slog.String("kernel", e.Kernel),
			slog.Int("seq", e.Seq),
			slog.Int("attempt", e.Attempt),
			slog.String("kind", kind),
			slog.Bool("retrying", e.Retrying),
			slog.Any("err", e.Err),
		)
	}
}
