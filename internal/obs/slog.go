package obs

import (
	"context"
	"errors"
	"log/slog"

	"exadla/internal/dist"
	"exadla/internal/sched"
	"exadla/internal/trace"
)

// FailureLogger adapts a structured logger into a scheduler failure
// observer (sched.WithFailureObserver): each failed task attempt becomes
// one log record identifying which task failed, which attempt, how it
// failed, and whether the runtime is retrying. The event kind classifies
// the failure:
//
//	chaos                  injected by WithChaos (errors.Is ErrInjected)
//	corruption-corrected   ABFT checksum fault, already repaired in place
//	timeout                watchdog deadline expiry (worker presumed lost)
//	panic                  the task body panicked
//	error                  any other task error
//
// Retried attempts log at Warn, permanent failures at Error.
func FailureLogger(l *slog.Logger) func(sched.FailureEvent) {
	return func(e sched.FailureEvent) {
		kind := "error"
		var c sched.InPlaceCorrector
		switch {
		case e.Panicked:
			kind = "panic"
		case e.TimedOut:
			kind = "timeout"
		case errors.Is(e.Err, sched.ErrInjected):
			kind = "chaos"
		case errors.As(e.Err, &c) && c.CorrectedInPlace():
			kind = "corruption-corrected"
		}
		level := slog.LevelError
		msg := "task failed"
		if e.Retrying {
			level, msg = slog.LevelWarn, "task attempt failed, retrying"
		}
		l.Log(context.Background(), level, msg,
			slog.String("kernel", e.Kernel),
			slog.Int("seq", e.Seq),
			slog.Int("attempt", e.Attempt),
			slog.String("kind", kind),
			slog.Bool("retrying", e.Retrying),
			slog.Any("err", e.Err),
		)
	}
}

// DistLogger adapts a structured logger into a distributed-runtime fault
// observer (dist.Options.Events / exadla.DistConfig.EventLog): each
// cluster fault event becomes one log record. Fleet-level faults that cost
// work (a worker evicted, a lease reaped for re-execution) log at Warn;
// faults the protocol absorbs by design (a stale commit rejected, an
// injected wire fault) log at Info. The hook is invoked under the
// coordinator's lock, so the adapter only logs — it never calls back into
// the coordinator.
func DistLogger(l *slog.Logger) func(dist.Event) {
	return func(e dist.Event) {
		level := slog.LevelInfo
		var msg string
		switch e.Kind {
		case trace.PhaseEvicted:
			level, msg = slog.LevelWarn, "worker evicted"
		case trace.PhaseReaped:
			level, msg = slog.LevelWarn, "lease reaped, task will re-execute"
		case trace.PhaseStale:
			msg = "stale commit rejected"
		case trace.PhaseChaos:
			msg = "injected wire fault"
		default:
			msg = "dist event"
		}
		attrs := []any{
			slog.String("kind", e.Kind),
			slog.Int("worker", e.Worker),
		}
		if e.Task >= 0 {
			attrs = append(attrs, slog.Int("task", e.Task))
		}
		if e.Attempt > 0 {
			attrs = append(attrs, slog.Int("attempt", e.Attempt))
		}
		if e.Detail != "" {
			attrs = append(attrs, slog.String("detail", e.Detail))
		}
		l.Log(context.Background(), level, msg, attrs...)
	}
}
