package obs

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"exadla/internal/ft"
	"exadla/internal/sched"
)

func TestFailureLoggerKinds(t *testing.T) {
	var buf bytes.Buffer
	fn := FailureLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	fn(sched.FailureEvent{Kernel: "gemm", Seq: 3, Attempt: 1, Retrying: true,
		Err: fmt.Errorf("pre-run: %w", sched.ErrInjected)})
	fn(sched.FailureEvent{Kernel: "verify", Seq: 4, Attempt: 1, Retrying: true,
		Err: &ft.CorruptionError{TileRow: 1, TileCol: 2, Faults: []ft.Fault{{}}, Corrected: 1}})
	fn(sched.FailureEvent{Kernel: "potrf", Seq: 5, Attempt: 2, Panicked: true,
		Err: errors.New("panic: index out of range")})
	fn(sched.FailureEvent{Kernel: "trsm", Seq: 6, Attempt: 3,
		Err: errors.New("singular")})

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d log lines, want 4:\n%s", len(lines), out)
	}
	for i, want := range []string{"kind=chaos", "kind=corruption-corrected", "kind=panic", "kind=error"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d missing %s: %s", i, want, lines[i])
		}
	}
	// Retried attempts log at WARN, permanent failures at ERROR.
	if !strings.Contains(lines[0], "level=WARN") || !strings.Contains(lines[2], "level=ERROR") {
		t.Errorf("levels wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], "kernel=gemm") || !strings.Contains(lines[0], "seq=3") ||
		!strings.Contains(lines[0], "attempt=1") {
		t.Errorf("identifying attrs missing: %s", lines[0])
	}
}
