package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.New()
	reg.Counter("sched.tasks_completed").Add(7)
	log := trace.NewLog()
	log.TaskSpan(sched.Span{ID: 0, Name: "potrf", Worker: 0, Attempt: 1, Start: 0, End: 1000})

	s, err := Start("127.0.0.1:0", Options{
		Registry: reg,
		Trace:    log,
		Health:   func() map[string]any { return map[string]any{"workers": 4} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "sched_tasks_completed 7") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	code, body = get(t, base+"/metrics?format=json")
	var snap map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &snap) != nil {
		t.Errorf("/metrics?format=json: code=%d body=%q", code, body)
	}

	code, body = get(t, base+"/trace")
	var events []map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &events) != nil {
		t.Fatalf("/trace: code=%d body=%q", code, body)
	}
	found := false
	for _, e := range events {
		if e["name"] == "potrf" {
			found = true
		}
	}
	if !found {
		t.Errorf("/trace missing the recorded span: %v", events)
	}

	code, body = get(t, base+"/healthz")
	var health map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &health) != nil {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}
	if health["status"] != "ok" || health["workers"].(float64) != 4 {
		t.Errorf("/healthz body: %v", health)
	}
	if _, ok := health["goroutines"]; !ok {
		t.Errorf("/healthz missing goroutines: %v", health)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
}

func TestServerClusterEndpoints(t *testing.T) {
	clusterLog := func() *trace.Log {
		l := trace.NewLog()
		l.Add(trace.Event{ID: 0, Name: "potrf", Worker: 0, Attempt: 1, Proc: 1,
			Start: 0, End: 1000, Outcome: sched.OutcomeOK})
		l.Add(trace.Event{ID: 0, Worker: 0, Attempt: 1, Proc: 1,
			Phase: trace.PhaseCompute, Start: 0, End: 1000})
		return l
	}
	s, err := Start("127.0.0.1:0", Options{
		Registry: metrics.New(),
		Cluster:  clusterLog,
		Dist: func() any {
			return map[string]any{"workers_live": 3, "tasks_completed": 12}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// Chrome form: a JSON array with a process_name lane for worker 0.
	code, body := get(t, base+"/trace?scope=cluster")
	var events []map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &events) != nil {
		t.Fatalf("/trace?scope=cluster: code=%d body=%q", code, body)
	}
	lane := false
	for _, e := range events {
		if e["name"] == "process_name" {
			lane = lane || e["args"].(map[string]any)["name"] == "worker 0"
		}
	}
	if !lane {
		t.Errorf("cluster trace has no worker 0 lane: %v", events)
	}

	// Native events form re-loads through trace.ReadJSON.
	code, body = get(t, base+"/trace?scope=cluster&format=events")
	if code != 200 {
		t.Fatalf("/trace?scope=cluster&format=events: code=%d", code)
	}
	back, err := trace.ReadJSON(strings.NewReader(body))
	if err != nil {
		t.Fatalf("native cluster trace does not re-load: %v", err)
	}
	if len(back.Events()) != 2 {
		t.Errorf("native cluster trace has %d events, want 2", len(back.Events()))
	}

	code, body = get(t, base+"/dist")
	var st map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &st) != nil {
		t.Fatalf("/dist: code=%d body=%q", code, body)
	}
	if st["workers_live"].(float64) != 3 || st["tasks_completed"].(float64) != 12 {
		t.Errorf("/dist body: %v", st)
	}

	// A plain /trace on a server with only a cluster source is 404; so are
	// the cluster endpoints on a server without one.
	if code, _ := get(t, base+"/trace"); code != http.StatusNotFound {
		t.Errorf("/trace without a log: code=%d, want 404", code)
	}
	bare, err := Start("127.0.0.1:0", Options{Registry: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _ := get(t, "http://"+bare.Addr()+"/trace?scope=cluster"); code != http.StatusNotFound {
		t.Errorf("/trace?scope=cluster without a source: code=%d, want 404", code)
	}
	if code, _ := get(t, "http://"+bare.Addr()+"/dist"); code != http.StatusNotFound {
		t.Errorf("/dist without a job: code=%d, want 404", code)
	}
}

func TestServerWithoutTrace(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, _ := get(t, "http://"+s.Addr()+"/trace")
	if code != http.StatusNotFound {
		t.Errorf("/trace without a log: code=%d, want 404", code)
	}
}

func TestServerBadAddr(t *testing.T) {
	if _, err := Start("256.0.0.1:bad", Options{}); err == nil {
		t.Error("Start on an invalid address returned no error")
	}
}

// TestCloseDrainsInFlightRequests pins the graceful-shutdown contract: a
// request already being served when Close is called completes instead of
// being truncated mid-body. The 1-second pprof CPU profile is a real slow
// in-flight request.
func TestCloseDrainsInFlightRequests(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{Registry: metrics.New()})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		n      int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/debug/pprof/profile?seconds=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, n: len(body), err: err}
	}()
	// Let the request reach the handler, then close while it is in flight.
	time.Sleep(200 * time.Millisecond)
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Errorf("Close returned after %v; it did not wait for the in-flight profile", waited)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request truncated by Close: %v", r.err)
	}
	if r.status != http.StatusOK || r.n == 0 {
		t.Errorf("in-flight request got status %d, %d bytes", r.status, r.n)
	}
}

// TestReadHeaderTimeoutClosesIdleClients pins the other half of the fix: a
// client that connects but never sends its headers is disconnected instead
// of holding the connection (and a graceful shutdown) hostage forever.
func TestReadHeaderTimeoutClosesIdleClients(t *testing.T) {
	s, err := Start("127.0.0.1:0", Options{
		Registry:          metrics.New(),
		ReadHeaderTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line and then go silent.
	if _, err := conn.Write([]byte("GET /healthz HTT")); err != nil {
		t.Fatal(err)
	}
	// The server may write a 408 before closing; what matters is that the
	// connection reaches EOF promptly instead of idling forever.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	body, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("expected EOF after the header timeout, got %v", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("connection survived %v; ReadHeaderTimeout not applied", waited)
	}
	// The server may write a 408/400 farewell before closing; any successful
	// response to an unfinished request would be a bug.
	if strings.Contains(string(body), "200 OK") {
		t.Errorf("server answered a request whose headers never arrived: %q", body)
	}
}
