// Package obs is the live observability server: an opt-in HTTP endpoint a
// running factorization can be inspected through without stopping it —
// metrics in Prometheus text or JSON form, the live trace as a Chrome/
// Perfetto JSON download, a health probe, and net/http/pprof for CPU and
// heap profiling. Production systems are profiled in production; this is
// the repo's answer to that requirement.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"exadla/internal/metrics"
	"exadla/internal/trace"
)

// Options configures a Server. The zero value serves the default metrics
// registry and no trace.
type Options struct {
	// Registry is the metrics registry /metrics exposes; nil means the
	// package default registry.
	Registry *metrics.Registry
	// Trace, when non-nil, enables /trace serving the live log as Chrome
	// trace JSON.
	Trace *trace.Log
	// Cluster, when non-nil, enables /trace?scope=cluster: it is called per
	// request and must return the merged multi-process trace (e.g. a dist
	// coordinator's ClusterLog), served as Chrome trace JSON with one
	// process lane per OS process, or as the native events format with
	// &format=events.
	Cluster func() *trace.Log
	// Dist, when non-nil, enables /dist serving its return value as a JSON
	// document — the live cluster status (workers, leases, evictions,
	// counters) of a distributed coordinator.
	Dist func() any
	// Health, when non-nil, contributes extra fields to the /healthz body.
	Health func() map[string]any
	// ReadHeaderTimeout bounds how long an accepted connection may sit
	// without sending its request headers before the server closes it, so an
	// idle or stalled client cannot hold a connection open forever. Zero
	// means the 10s default.
	ReadHeaderTimeout time.Duration
	// CloseTimeout bounds how long Close waits for in-flight requests to
	// drain before falling back to a hard close. Zero means the 3s default.
	CloseTimeout time.Duration
}

// Server is a running observability HTTP server.
type Server struct {
	ln           net.Listener
	srv          *http.Server
	start        time.Time
	closeTimeout time.Duration
}

// Start listens on addr (host:port; use port 0 for an ephemeral port) and
// serves the observability endpoints in a background goroutine:
//
//	/metrics        Prometheus text format (?format=json for a JSON snapshot)
//	/trace          Chrome trace-event JSON of the live trace log
//	                (?scope=cluster for the merged multi-process trace,
//	                &format=events for the native re-loadable form)
//	/dist           JSON cluster status (workers, leases, evictions)
//	/healthz        JSON liveness report
//	/debug/pprof/   the standard net/http/pprof handlers
func Start(addr string, opt Options) (*Server, error) {
	reg := opt.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("scope") == "cluster" {
			if opt.Cluster == nil {
				http.Error(w, "cluster tracing not enabled", http.StatusNotFound)
				return
			}
			l := opt.Cluster()
			w.Header().Set("Content-Type", "application/json")
			if r.URL.Query().Get("format") == "events" {
				w.Header().Set("Content-Disposition", `attachment; filename="exadla-cluster-events.json"`)
				_ = l.WriteJSON(w)
				return
			}
			w.Header().Set("Content-Disposition", `attachment; filename="exadla-cluster-trace.json"`)
			_ = l.WriteChromeCluster(w)
			return
		}
		if opt.Trace == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="exadla-trace.json"`)
		_ = opt.Trace.WriteChrome(w)
	})
	mux.HandleFunc("/dist", func(w http.ResponseWriter, r *http.Request) {
		if opt.Dist == nil {
			http.Error(w, "no distributed job", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(opt.Dist())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{
			"status":     "ok",
			"uptime_s":   time.Since(s.start).Seconds(),
			"goroutines": runtime.NumGoroutine(),
		}
		if opt.Health != nil {
			for k, v := range opt.Health() {
				body[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	rht := opt.ReadHeaderTimeout
	if rht <= 0 {
		rht = 10 * time.Second
	}
	s.closeTimeout = opt.CloseTimeout
	if s.closeTimeout <= 0 {
		s.closeTimeout = 3 * time.Second
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: rht}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's actual listen address (resolving port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server gracefully: it stops accepting new connections and
// waits up to the close timeout for in-flight requests — a /trace download
// mid-run, a pprof profile — to finish, instead of truncating them the way
// http.Server.Close would. Requests still running at the deadline are cut
// off by the hard-close fallback. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.closeTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
