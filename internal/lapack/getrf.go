package lapack

import "exadla/internal/blas"

// Getf2 computes the unblocked LU factorization with partial pivoting of
// the m×n matrix A: A = P·L·U. L is unit lower triangular, U upper
// triangular; both overwrite A. ipiv must have length min(m, n); on return
// ipiv[i] is the row (zero-based, ≥ i) swapped with row i at step i.
//
// Like reference GETRF, an exactly zero pivot is reported as a
// *SingularError but the factorization continues, so the caller receives a
// complete (rank-revealing at that column) factorization either way.
func Getf2[T blas.Float](m, n int, a []T, lda int, ipiv []int) error {
	k := min(m, n)
	if len(ipiv) < k {
		panic("lapack: ipiv too short")
	}
	var firstZero = -1
	for j := 0; j < k; j++ {
		// Find pivot in column j at or below the diagonal.
		col := a[j*lda:]
		p := j
		mx := col[j]
		if mx < 0 {
			mx = -mx
		}
		for i := j + 1; i < m; i++ {
			v := col[i]
			if v < 0 {
				v = -v
			}
			if v > mx {
				mx, p = v, i
			}
		}
		ipiv[j] = p
		if col[p] == 0 {
			if firstZero < 0 {
				firstZero = j
			}
			continue // zero column below diagonal: L entries stay zero
		}
		if p != j {
			blas.Swap(n, a[j:], lda, a[p:], lda)
		}
		// Scale multipliers.
		inv := 1 / col[j]
		for i := j + 1; i < m; i++ {
			col[i] *= inv
		}
		// Trailing update A[j+1:, j+1:] -= A[j+1:, j]·A[j, j+1:].
		if j+1 < n {
			blas.Ger(m-j-1, n-j-1, -1, col[j+1:], 1, a[j+(j+1)*lda:], lda, a[j+1+(j+1)*lda:], lda)
		}
	}
	if firstZero >= 0 {
		return &SingularError{Index: firstZero}
	}
	return nil
}

// Laswp applies the row interchanges recorded in ipiv[k1:k2] to the
// columns of the m×n matrix A: for i = k1..k2-1, row i is swapped with row
// ipiv[i]. This matches dlaswp with increment 1 (zero-based).
func Laswp[T blas.Float](n int, a []T, lda int, k1, k2 int, ipiv []int) {
	for i := k1; i < k2; i++ {
		p := ipiv[i]
		if p != i {
			blas.Swap(n, a[i:], lda, a[p:], lda)
		}
	}
}

// Getrf computes the blocked LU factorization with partial pivoting of the
// m×n matrix A in place. ipiv has the same meaning as in Getf2.
func Getrf[T blas.Float](m, n int, a []T, lda int, ipiv []int) error {
	k := min(m, n)
	if len(ipiv) < k {
		panic("lapack: ipiv too short")
	}
	if k <= blockSize {
		return Getf2(m, n, a, lda, ipiv)
	}
	var firstErr error
	for j := 0; j < k; j += blockSize {
		jb := min(blockSize, k-j)
		// Factor the panel A[j:m, j:j+jb].
		if err := Getf2(m-j, jb, a[j+j*lda:], lda, ipiv[j:j+jb]); err != nil {
			if firstErr == nil {
				serr := err.(*SingularError)
				firstErr = &SingularError{Index: j + serr.Index}
			}
		}
		// Panel pivots are relative to row j.
		for i := j; i < j+jb; i++ {
			ipiv[i] += j
		}
		// Apply interchanges to the columns left of the panel...
		Laswp(j, a, lda, j, j+jb, ipiv)
		if j+jb < n {
			// ...and right of it.
			Laswp(n-j-jb, a[(j+jb)*lda:], lda, j, j+jb, ipiv)
			// U block row: solve L11·U12 = A12.
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit,
				jb, n-j-jb, 1, a[j+j*lda:], lda, a[j+(j+jb)*lda:], lda)
			// Trailing update A22 -= L21·U12.
			if j+jb < m {
				blas.Gemm(blas.NoTrans, blas.NoTrans, m-j-jb, n-j-jb, jb,
					-1, a[j+jb+j*lda:], lda, a[j+(j+jb)*lda:], lda,
					1, a[j+jb+(j+jb)*lda:], lda)
			}
		}
	}
	return firstErr
}

// Getrs solves op(A)·X = B given the LU factorization from Getrf. B is
// n×nrhs and is overwritten with X.
func Getrs[T blas.Float](trans blas.Transpose, n, nrhs int, a []T, lda int, ipiv []int, b []T, ldb int) {
	if trans == blas.NoTrans {
		// Pᵀ... apply the recorded swaps to B, then L·U·X = P·B.
		Laswp(nrhs, b, ldb, 0, n, ipiv)
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, n, nrhs, 1, a, lda, b, ldb)
		blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
		return
	}
	// Aᵀ·X = B ⇒ Uᵀ·Lᵀ·Pᵀ·X = B: solve Uᵀ, then Lᵀ, then undo the swaps in
	// reverse order.
	blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
	blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.Unit, n, nrhs, 1, a, lda, b, ldb)
	for i := n - 1; i >= 0; i-- {
		if p := ipiv[i]; p != i {
			blas.Swap(nrhs, b[i:], ldb, b[p:], ldb)
		}
	}
}

// Gesv factors the n×n matrix A with partial pivoting (overwriting it) and
// solves A·X = B in place. ipiv must have length n.
func Gesv[T blas.Float](n, nrhs int, a []T, lda int, ipiv []int, b []T, ldb int) error {
	if err := Getrf(n, n, a, lda, ipiv); err != nil {
		return err
	}
	Getrs(blas.NoTrans, n, nrhs, a, lda, ipiv, b, ldb)
	return nil
}
