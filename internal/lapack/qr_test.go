package lapack_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
)

// qrCheck factors A, reconstructs Q·R, and verifies both the reconstruction
// and the orthogonality of Q.
func qrCheck(t *testing.T, rng *rand.Rand, m, n int) {
	t.Helper()
	a := matgen.Dense[float64](rng, m, n)
	f := append([]float64(nil), a...)
	k := min(m, n)
	tau := make([]float64, k)
	lapack.Geqrf(m, n, f, m, tau)

	r := extractUpper(k, n, f, m)

	// Materialize Q (m×k).
	q := make([]float64, m*k)
	lapack.Lacpy(lapack.General, m, k, f, m, q, m)
	lapack.Orgqr(m, k, k, q, m, tau)

	// QᵀQ == I.
	qtq := make([]float64, k*k)
	blas.Gemm(blas.Trans, blas.NoTrans, k, k, m, 1, q, m, q, m, 0, qtq, k)
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(qtq[i+j*k]-want) > 1e-13*float64(m) {
				t.Fatalf("m=%d n=%d: QᵀQ[%d,%d] = %v", m, n, i, j, qtq[i+j*k])
			}
		}
	}

	// Q·R == A.
	recon := make([]float64, m*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, q, m, r, k, 0, recon, m)
	if res := residual(recon, a, max(m, n)); res > 30 {
		t.Errorf("m=%d n=%d: QR reconstruction residual %g", m, n, res)
	}
}

func TestGeqrfReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, d := range [][2]int{{1, 1}, {3, 3}, {10, 10}, {10, 4}, {100, 30}, {64, 64}, {65, 65}, {130, 130}, {40, 100}} {
		qrCheck(t, rng, d[0], d[1])
	}
}

func TestGeqrfMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, n := 150, 150 // forces blocked path
	a := matgen.Dense[float64](rng, m, n)
	blocked := append([]float64(nil), a...)
	unblocked := append([]float64(nil), a...)
	tauB := make([]float64, n)
	tauU := make([]float64, n)
	work := make([]float64, n)
	lapack.Geqrf(m, n, blocked, m, tauB)
	lapack.Geqr2(m, n, unblocked, m, tauU, work)
	for i := range blocked {
		if math.Abs(blocked[i]-unblocked[i]) > 1e-10 {
			t.Fatalf("blocked/unblocked diverge at %d: %v vs %v", i, blocked[i], unblocked[i])
		}
	}
	for i := range tauB {
		if math.Abs(tauB[i]-tauU[i]) > 1e-12 {
			t.Fatalf("tau diverges at %d", i)
		}
	}
}

func TestOrmqrMatchesExplicitQ(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, n, nrhs := 40, 25, 3
	a := matgen.Dense[float64](rng, m, n)
	tau := make([]float64, n)
	lapack.Geqrf(m, n, a, m, tau)

	q := make([]float64, m*m)
	lapack.Lacpy(lapack.General, m, min(m, n), a, m, q, m)
	lapack.Orgqr(m, m, n, q, m, tau)

	c := matgen.Dense[float64](rng, m, nrhs)
	for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		got := append([]float64(nil), c...)
		lapack.Ormqr(trans, m, nrhs, n, a, m, tau, got, m)
		want := make([]float64, m*nrhs)
		blas.Gemm(trans, blas.NoTrans, m, nrhs, m, 1, q, m, c, m, 0, want, m)
		if r := residual(got, want, m); r > 30 {
			t.Errorf("Ormqr %v residual %g", trans, r)
		}
	}
}

func TestGelsSolvesLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, n := 100, 20
	a := matgen.Dense[float64](rng, m, n)
	aCopy := append([]float64(nil), a...)
	b := matgen.Dense[float64](rng, m, 1)
	bCopy := append([]float64(nil), b...)
	if err := lapack.Gels(m, n, a, m, b); err != nil {
		t.Fatal(err)
	}
	x := b[:n]
	// Optimality: the residual must be orthogonal to the column space,
	// i.e. Aᵀ(b − A·x) ≈ 0.
	res := append([]float64(nil), bCopy...)
	blas.Gemv(blas.NoTrans, m, n, -1, aCopy, m, x, 1, 1, res, 1)
	atr := make([]float64, n)
	blas.Gemv(blas.Trans, m, n, 1, aCopy, m, res, 1, 0, atr, 1)
	scale := lapack.Lange(lapack.OneNorm, m, n, aCopy, m) * blas.Nrm2(m, bCopy, 1)
	for i, v := range atr {
		if math.Abs(v) > 1e-12*scale*float64(m) {
			t.Errorf("normal equations violated at %d: %g", i, v)
		}
	}
}

func TestGelsExactSystem(t *testing.T) {
	// When b is in the range of A the residual must vanish and x must be
	// the exact preimage.
	rng := rand.New(rand.NewSource(24))
	m, n := 60, 15
	a := matgen.Dense[float64](rng, m, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, m)
	blas.Gemv(blas.NoTrans, m, n, 1, a, m, xTrue, 1, 0, b, 1)
	aCopy := append([]float64(nil), a...)
	if err := lapack.Gels(m, n, a, m, b); err != nil {
		t.Fatal(err)
	}
	if r := residual(b[:n], xTrue, m); r > 1e4 {
		t.Errorf("exact-system solution residual %g", r)
	}
	_ = aCopy
}

func TestLarfgProperties(t *testing.T) {
	// H·[alpha, x] = [beta, 0] and beta² == alpha² + ‖x‖² (norm preserved).
	rng := rand.New(rand.NewSource(25))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		alpha := r.NormFloat64()
		x := make([]float64, n-1)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		normBefore := math.Hypot(alpha, blas.Nrm2(n-1, x, 1))
		v := append([]float64(nil), x...)
		beta, tau := lapack.Larfg(n, alpha, v, 1)
		if math.Abs(math.Abs(beta)-normBefore) > 1e-12*(1+normBefore) {
			return false
		}
		// Apply H = I − tau·[1 v][1 v]ᵀ to [alpha, x]ᵀ explicitly.
		full := append([]float64{alpha}, x...)
		vv := append([]float64{1}, v...)
		dot := blas.Dot(n, vv, 1, full, 1)
		blas.Axpy(n, -tau*dot, vv, 1, full, 1)
		if math.Abs(full[0]-beta) > 1e-12*(1+math.Abs(beta)) {
			return false
		}
		for _, z := range full[1:] {
			if math.Abs(z) > 1e-12*(1+normBefore) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLarfgZeroTail(t *testing.T) {
	// x == 0 must yield the identity reflector (tau == 0, beta == alpha).
	x := []float64{0, 0, 0}
	beta, tau := lapack.Larfg(4, 2.5, x, 1)
	if tau != 0 || beta != 2.5 {
		t.Errorf("got beta=%v tau=%v", beta, tau)
	}
}

func TestGeqrfFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m, n := 30, 12
	a := matgen.Dense[float32](rng, m, n)
	orig := append([]float32(nil), a...)
	tau := make([]float32, n)
	lapack.Geqrf(m, n, a, m, tau)
	q := make([]float32, m*n)
	lapack.Lacpy(lapack.General, m, n, a, m, q, m)
	lapack.Orgqr(m, n, n, q, m, tau)
	r := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			r[i+j*n] = a[i+j*m]
		}
	}
	recon := make([]float32, m*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, n, 1, q, m, r, n, 0, recon, m)
	for i := range recon {
		if math.Abs(float64(recon[i]-orig[i])) > float64(m)*0x1p-23*30 {
			t.Fatalf("float32 QR reconstruction diff at %d: %v vs %v", i, recon[i], orig[i])
		}
	}
}
