package lapack_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
)

// Property: for any random SPD matrix, Potrf produces a factor whose
// reconstruction matches to a size-scaled tolerance, and every diagonal
// entry of L is strictly positive.
func TestQuickPotrfProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(96)
		a := matgen.DiagDomSPD[float64](rng, n)
		fac := append([]float64(nil), a...)
		if err := lapack.Potrf(blas.Lower, n, fac, n); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if fac[i+i*n] <= 0 {
				return false
			}
		}
		l := extractLower(n, fac, n, false)
		recon := make([]float64, n*n)
		blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, l, n, l, n, 0, recon, n)
		return residual(recon, a, n) < 100
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: for any random square matrix, Getrf's reconstruction matches
// and every pivot index points at or below its row.
func TestQuickGetrfProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(96)
		a := matgen.Dense[float64](rng, n, n)
		fac := append([]float64(nil), a...)
		ipiv := make([]int, n)
		if err := lapack.Getrf(n, n, fac, n, ipiv); err != nil {
			return true // exactly singular random matrix: astronomically rare, but legal
		}
		for i, p := range ipiv {
			if p < i || p >= n {
				return false
			}
		}
		recon := reconstructLU(n, n, fac, n, ipiv)
		return residual(recon, a, n) < 100
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: QR preserves column norms — ‖A·e_j‖₂ equals ‖R[0:j+1, j]‖₂
// (orthogonal transforms are isometries).
func TestQuickGeqrfColumnNorms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(80)
		n := 1 + rng.Intn(m)
		a := matgen.Dense[float64](rng, m, n)
		fac := append([]float64(nil), a...)
		tau := make([]float64, n)
		lapack.Geqrf(m, n, fac, m, tau)
		for j := 0; j < n; j++ {
			orig := blas.Nrm2(m, a[j*m:j*m+m], 1)
			rcol := blas.Nrm2(min(j+1, m), fac[j*m:j*m+min(j+1, m)], 1)
			if math.Abs(orig-rcol) > 1e-11*(1+orig)*float64(m) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: solving with the factorization inverts matrix application for
// well-conditioned systems — Getrs(Getrf(A), A·x) ≈ x.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := matgen.WithCond[float64](rng, n, n, 100)
		x := matgen.Dense[float64](rng, n, 1)
		b := make([]float64, n)
		blas.Gemv(blas.NoTrans, n, n, 1, a, n, x, 1, 0, b, 1)
		fac := append([]float64(nil), a...)
		ipiv := make([]int, n)
		if err := lapack.Getrf(n, n, fac, n, ipiv); err != nil {
			return false
		}
		lapack.Getrs(blas.NoTrans, n, 1, fac, n, ipiv, b, n)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-9*(1+math.Abs(x[i]))*float64(n) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Trtri really inverses — T·T⁻¹ ≈ I for well-conditioned
// triangles of either orientation.
func TestQuickTrtriProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80)
		uplo := blas.Lower
		if seed%2 == 0 {
			uplo = blas.Upper
		}
		a := matgen.Dense[float64](rng, n, n)
		for i := range a {
			a[i] /= float64(n)
		}
		for i := 0; i < n; i++ {
			a[i+i*n] = 1 + math.Abs(a[i+i*n])
		}
		inv := append([]float64(nil), a...)
		if err := lapack.Trtri(uplo, blas.NonUnit, n, inv, n); err != nil {
			return false
		}
		t1 := triDense(uplo, blas.NonUnit, n, a, n)
		t2 := triDense(uplo, blas.NonUnit, n, inv, n)
		return identityResidual(n, t1, t2) < 1e5
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
