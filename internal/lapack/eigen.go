package lapack

import (
	"fmt"

	"exadla/internal/blas"
)

// Sytd2 reduces the n×n symmetric matrix A (lower triangle stored) to
// tridiagonal form T = Qᵀ·A·Q by Householder similarity transforms.
// On return, d (length n) holds the diagonal of T, e (length n−1) the
// subdiagonal, tau (length n−1) the reflector scales, and A's strictly
// lower part holds the reflector vectors (column j stores v in rows
// j+2..n−1 with the implicit 1 at row j+1).
func Sytd2[T blas.Float](n int, a []T, lda int, d, e, tau []T) {
	if n == 0 {
		return
	}
	w := make([]T, n)
	for j := 0; j < n-1; j++ {
		// Generate the reflector zeroing A[j+2:, j].
		col := a[j*lda:]
		var tailLen = n - j - 1
		beta, tj := Larfg(tailLen, col[j+1], col[j+2:j+2+max(0, tailLen-1)], 1)
		e[j] = beta
		tau[j] = tj
		if tj != 0 {
			// Two-sided update of the trailing matrix B = A[j+1:, j+1:]:
			// B ← (I − τvvᵀ)·B·(I − τvvᵀ) via the symmetric rank-2 form
			// B -= v·wᵀ + w·vᵀ with w = τ·B·v − (τ²/2)(vᵀBv)·v.
			col[j+1] = 1
			v := col[j+1 : j+1+tailLen]
			m := tailLen
			sub := a[j+1+(j+1)*lda:]
			blas.Symv(blas.Lower, m, tj, sub, lda, v, 1, 0, w[:m], 1)
			alpha := -tj / 2 * blas.Dot(m, w, 1, v, 1)
			blas.Axpy(m, alpha, v, 1, w[:m], 1)
			// B -= v wᵀ + w vᵀ (lower triangle only).
			for c := 0; c < m; c++ {
				vc, wc := v[c], w[c]
				bcol := sub[c*lda:]
				for r := c; r < m; r++ {
					bcol[r] -= v[r]*wc + w[r]*vc
				}
			}
			col[j+1] = beta
		}
		d[j] = col[j]
	}
	d[n-1] = a[n-1+(n-1)*lda]
}

// Orgtr overwrites A with the explicit orthogonal matrix Q of the Sytd2
// reduction (lower storage): Q = H₀·H₁···H_{n−2}.
func Orgtr[T blas.Float](n int, a []T, lda int, tau []T) {
	if n == 0 {
		return
	}
	// Build Q by applying reflectors to the identity from the last to the
	// first; reflector j acts on rows/cols j+1..n−1.
	q := make([]T, n*n)
	for i := 0; i < n; i++ {
		q[i+i*n] = 1
	}
	work := make([]T, n)
	for j := n - 2; j >= 0; j-- {
		if tau[j] == 0 {
			continue
		}
		col := a[j*lda:]
		save := col[j+1]
		col[j+1] = 1
		m := n - j - 1
		// Q[j+1:, j+1:] ← H_j·Q[j+1:, j+1:].
		Larf(blas.Left, m, m, col[j+1:j+1+m], 1, tau[j], q[j+1+(j+1)*n:], n, work)
		col[j+1] = save
	}
	Lacpy(General, n, n, q, n, a, lda)
}

// Steqr computes all eigenvalues (and, if z is non-nil, eigenvectors) of a
// symmetric tridiagonal matrix with diagonal d (length n) and subdiagonal e
// (length ≥ n−1), using the implicit QL algorithm with Wilkinson shifts.
// d is overwritten with the eigenvalues in ascending order; z (n×n,
// leading dimension ldz), when given, must contain the matrix that reduced
// the original A to tridiagonal form (or the identity) and is overwritten
// with the eigenvectors as columns, reordered consistently with d.
func Steqr[T blas.Float](n int, d, e []T, z []T, ldz int) error {
	if n == 0 {
		return nil
	}
	eps := Epsilon[T]()
	const maxIter = 64
	// Workspace copy of e with a trailing zero slot.
	ee := make([]T, n)
	copy(ee, e[:n-1])

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first negligible subdiagonal at or after l.
			m := l
			for ; m < n-1; m++ {
				ad := absT(d[m]) + absT(d[m+1])
				if absT(ee[m]) <= eps*ad {
					break
				}
			}
			if m == l {
				break // eigenvalue converged
			}
			if iter >= maxIter {
				return fmt.Errorf("lapack: Steqr failed to converge at eigenvalue %d", l)
			}
			// Wilkinson-style shift from the leading 2×2.
			g := (d[l+1] - d[l]) / (2 * ee[l])
			r := hypot(g, 1)
			g = d[m] - d[l] + ee[l]/(g+copySign(r, g))
			s, c := T(1), T(1)
			p := T(0)
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					// Recover from underflow: drop the rotation and retry.
					d[i+1] -= p
					ee[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				if z != nil {
					// Apply the rotation to columns i and i+1 of Z.
					for k := 0; k < n; k++ {
						f := z[k+(i+1)*ldz]
						z[k+(i+1)*ldz] = s*z[k+i*ldz] + c*f
						z[k+i*ldz] = c*z[k+i*ldz] - s*f
					}
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}

	// Sort eigenvalues ascending, carrying eigenvectors along (straight
	// selection, as dsteqr does).
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			if z != nil {
				blas.Swap(n, z[i*ldz:], 1, z[k*ldz:], 1)
			}
		}
	}
	return nil
}

// Syev computes all eigenvalues, and optionally eigenvectors, of the n×n
// symmetric matrix A (lower triangle stored). With vectors true, A is
// overwritten with orthonormal eigenvectors as columns (A = V·diag(d)·Vᵀ);
// otherwise A's contents are destroyed. d must have length n.
func Syev[T blas.Float](vectors bool, n int, a []T, lda int, d []T) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		d[0] = a[0]
		if vectors {
			a[0] = 1
		}
		return nil
	}
	e := make([]T, n-1)
	tau := make([]T, n-1)
	Sytd2(n, a, lda, d, e, tau)
	if !vectors {
		return Steqr(n, d, e, nil, 0)
	}
	Orgtr(n, a, lda, tau)
	return Steqr(n, d, e, a, lda)
}

func absT[T blas.Float](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

func copySign[T blas.Float](mag, sign T) T {
	if sign < 0 {
		return -absT(mag)
	}
	return absT(mag)
}
