package lapack

import (
	"math"

	"exadla/internal/blas"
)

// sqrt computes the square root in the operand's own precision.
func sqrt[T blas.Float](x T) T {
	return T(math.Sqrt(float64(x)))
}

// Epsilon returns the machine epsilon (unit roundoff ulp of 1.0) for T.
func Epsilon[T blas.Float]() T {
	var one T = 1
	switch any(one).(type) {
	case float32:
		return T(math.Float32frombits(0x34000000)) // 2^-23
	default:
		return T(0x1p-52)
	}
}
