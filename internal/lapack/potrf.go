package lapack

import "exadla/internal/blas"

// Potf2 computes the unblocked Cholesky factorization of the n×n symmetric
// positive definite matrix A: A = L·Lᵀ (uplo == Lower) or A = Uᵀ·U
// (uplo == Upper). The factor overwrites the referenced triangle.
func Potf2[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) error {
	if uplo == blas.Lower {
		for j := 0; j < n; j++ {
			// A[j,j] -= A[j,0:j]·A[j,0:j]ᵀ (row of L, strided).
			d := a[j+j*lda]
			for k := 0; k < j; k++ {
				v := a[j+k*lda]
				d -= v * v
			}
			if d <= 0 {
				return &NotPositiveDefiniteError{Index: j}
			}
			d = sqrt(d)
			a[j+j*lda] = d
			if j+1 < n {
				// A[j+1:,j] = (A[j+1:,j] − A[j+1:,0:j]·A[j,0:j]ᵀ) / d.
				col := a[j*lda:]
				for k := 0; k < j; k++ {
					ljk := a[j+k*lda]
					if ljk == 0 {
						continue
					}
					ck := a[k*lda:]
					for i := j + 1; i < n; i++ {
						col[i] -= ljk * ck[i]
					}
				}
				inv := 1 / d
				for i := j + 1; i < n; i++ {
					col[i] *= inv
				}
			}
		}
		return nil
	}
	// Upper: A = UᵀU.
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		d := col[j]
		for k := 0; k < j; k++ {
			d -= col[k] * col[k]
		}
		if d <= 0 {
			return &NotPositiveDefiniteError{Index: j}
		}
		d = sqrt(d)
		col[j] = d
		if j+1 < n {
			// U[j,j+1:] = (A[j,j+1:] − U[0:j,j]ᵀ·U[0:j,j+1:]) / d.
			for jj := j + 1; jj < n; jj++ {
				cjj := a[jj*lda:]
				s := cjj[j]
				for k := 0; k < j; k++ {
					s -= col[k] * cjj[k]
				}
				cjj[j] = s / d
			}
		}
	}
	return nil
}

// potrfLeaf is the recursion cutoff of Potrf: triangles of this order run
// the unblocked Potf2, everything larger splits in half so the solve and
// update — the bulk of the flops — run through the blocked level-3 routines
// (and from there the packed GEMM kernel). Smaller than the level-3
// blockSize because Potf2's scalar loops are the slowest code in the
// factorization; the level-3 routines handle 32-sized operands fine.
const potrfLeaf = 32

// Potrf computes the Cholesky factorization of the n×n symmetric positive
// definite matrix A in place, recursively: the leading half is factored,
// the coupling panel solved with Trsm, the trailing half updated with Syrk
// and factored in turn. All but an O(n·potrfLeaf²) sliver of the flops run
// as level-3 updates.
func Potrf[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) error {
	if n <= potrfLeaf {
		return Potf2(uplo, n, a, lda)
	}
	n1 := n / 2
	n2 := n - n1
	if err := Potrf(uplo, n1, a, lda); err != nil {
		return err
	}
	if uplo == blas.Lower {
		// A21 ← A21·L11⁻ᵀ, then A22 -= L21·L21ᵀ.
		blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
			n2, n1, 1, a, lda, a[n1:], lda)
		blas.Syrk(blas.Lower, blas.NoTrans, n2, n1, -1, a[n1:], lda, 1, a[n1+n1*lda:], lda)
	} else {
		// A12 ← U11⁻ᵀ·A12, then A22 -= U12ᵀ·U12.
		blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit,
			n1, n2, 1, a, lda, a[n1*lda:], lda)
		blas.Syrk(blas.Upper, blas.Trans, n2, n1, -1, a[n1*lda:], lda, 1, a[n1+n1*lda:], lda)
	}
	if err := Potrf(uplo, n2, a[n1+n1*lda:], lda); err != nil {
		perr := err.(*NotPositiveDefiniteError)
		return &NotPositiveDefiniteError{Index: n1 + perr.Index}
	}
	return nil
}

// Potrs solves A·X = B for nrhs right-hand sides given the Cholesky factor
// computed by Potrf. B is n×nrhs and is overwritten with X.
func Potrs[T blas.Float](uplo blas.Uplo, n, nrhs int, a []T, lda int, b []T, ldb int) {
	if uplo == blas.Lower {
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
		blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
		return
	}
	blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
}

// Posv factors the symmetric positive definite matrix A (overwriting it)
// and solves A·X = B in place.
func Posv[T blas.Float](uplo blas.Uplo, n, nrhs int, a []T, lda int, b []T, ldb int) error {
	if err := Potrf(uplo, n, a, lda); err != nil {
		return err
	}
	Potrs(uplo, n, nrhs, a, lda, b, ldb)
	return nil
}
