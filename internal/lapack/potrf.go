package lapack

import "exadla/internal/blas"

// Potf2 computes the unblocked Cholesky factorization of the n×n symmetric
// positive definite matrix A: A = L·Lᵀ (uplo == Lower) or A = Uᵀ·U
// (uplo == Upper). The factor overwrites the referenced triangle.
func Potf2[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) error {
	if uplo == blas.Lower {
		for j := 0; j < n; j++ {
			// A[j,j] -= A[j,0:j]·A[j,0:j]ᵀ (row of L, strided).
			d := a[j+j*lda]
			for k := 0; k < j; k++ {
				v := a[j+k*lda]
				d -= v * v
			}
			if d <= 0 {
				return &NotPositiveDefiniteError{Index: j}
			}
			d = sqrt(d)
			a[j+j*lda] = d
			if j+1 < n {
				// A[j+1:,j] = (A[j+1:,j] − A[j+1:,0:j]·A[j,0:j]ᵀ) / d.
				col := a[j*lda:]
				for k := 0; k < j; k++ {
					ljk := a[j+k*lda]
					if ljk == 0 {
						continue
					}
					ck := a[k*lda:]
					for i := j + 1; i < n; i++ {
						col[i] -= ljk * ck[i]
					}
				}
				inv := 1 / d
				for i := j + 1; i < n; i++ {
					col[i] *= inv
				}
			}
		}
		return nil
	}
	// Upper: A = UᵀU.
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		d := col[j]
		for k := 0; k < j; k++ {
			d -= col[k] * col[k]
		}
		if d <= 0 {
			return &NotPositiveDefiniteError{Index: j}
		}
		d = sqrt(d)
		col[j] = d
		if j+1 < n {
			// U[j,j+1:] = (A[j,j+1:] − U[0:j,j]ᵀ·U[0:j,j+1:]) / d.
			for jj := j + 1; jj < n; jj++ {
				cjj := a[jj*lda:]
				s := cjj[j]
				for k := 0; k < j; k++ {
					s -= col[k] * cjj[k]
				}
				cjj[j] = s / d
			}
		}
	}
	return nil
}

// Potrf computes the blocked Cholesky factorization of the n×n symmetric
// positive definite matrix A in place, using level-3 updates on panels of
// width blockSize.
func Potrf[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) error {
	if n <= blockSize {
		return Potf2(uplo, n, a, lda)
	}
	if uplo == blas.Lower {
		for j := 0; j < n; j += blockSize {
			jb := min(blockSize, n-j)
			// Diagonal block: A[j:j+jb, j:j+jb] -= L21·L21ᵀ.
			blas.Syrk(blas.Lower, blas.NoTrans, jb, j, -1, a[j:], lda, 1, a[j+j*lda:], lda)
			if err := Potf2(blas.Lower, jb, a[j+j*lda:], lda); err != nil {
				perr := err.(*NotPositiveDefiniteError)
				return &NotPositiveDefiniteError{Index: j + perr.Index}
			}
			if j+jb < n {
				// Panel below: A[j+jb:, j:j+jb] -= A[j+jb:, 0:j]·A[j:j+jb, 0:j]ᵀ.
				blas.Gemm(blas.NoTrans, blas.Trans, n-j-jb, jb, j,
					-1, a[j+jb:], lda, a[j:], lda, 1, a[j+jb+j*lda:], lda)
				// Solve against the new diagonal block.
				blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
					n-j-jb, jb, 1, a[j+j*lda:], lda, a[j+jb+j*lda:], lda)
			}
		}
		return nil
	}
	// Upper.
	for j := 0; j < n; j += blockSize {
		jb := min(blockSize, n-j)
		blas.Syrk(blas.Upper, blas.Trans, jb, j, -1, a[j*lda:], lda, 1, a[j+j*lda:], lda)
		if err := Potf2(blas.Upper, jb, a[j+j*lda:], lda); err != nil {
			perr := err.(*NotPositiveDefiniteError)
			return &NotPositiveDefiniteError{Index: j + perr.Index}
		}
		if j+jb < n {
			// A[j:j+jb, j+jb:] -= A[0:j, j:j+jb]ᵀ·A[0:j, j+jb:], then solve.
			blas.Gemm(blas.Trans, blas.NoTrans, jb, n-j-jb, j,
				-1, a[j*lda:], lda, a[(j+jb)*lda:], lda, 1, a[j+(j+jb)*lda:], lda)
			blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit,
				jb, n-j-jb, 1, a[j+j*lda:], lda, a[j+(j+jb)*lda:], lda)
		}
	}
	return nil
}

// Potrs solves A·X = B for nrhs right-hand sides given the Cholesky factor
// computed by Potrf. B is n×nrhs and is overwritten with X.
func Potrs[T blas.Float](uplo blas.Uplo, n, nrhs int, a []T, lda int, b []T, ldb int) {
	if uplo == blas.Lower {
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
		blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
		return
	}
	blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, n, nrhs, 1, a, lda, b, ldb)
}

// Posv factors the symmetric positive definite matrix A (overwriting it)
// and solves A·X = B in place.
func Posv[T blas.Float](uplo blas.Uplo, n, nrhs int, a []T, lda int, b []T, ldb int) error {
	if err := Potrf(uplo, n, a, lda); err != nil {
		return err
	}
	Potrs(uplo, n, nrhs, a, lda, b, ldb)
	return nil
}
