package lapack

import "exadla/internal/blas"

// Trti2 computes the unblocked inverse of a triangular matrix in place.
func Trti2[T blas.Float](uplo blas.Uplo, diag blas.Diag, n int, a []T, lda int) error {
	unit := diag == blas.Unit
	if uplo == blas.Upper {
		for j := 0; j < n; j++ {
			var ajj T
			if unit {
				ajj = -1
			} else {
				if a[j+j*lda] == 0 {
					return &SingularError{Index: j}
				}
				a[j+j*lda] = 1 / a[j+j*lda]
				ajj = -a[j+j*lda]
			}
			// Compute elements 0..j-1 of column j.
			blas.Trmv(blas.Upper, blas.NoTrans, diag, j, a, lda, a[j*lda:], 1)
			blas.Scal(j, ajj, a[j*lda:], 1)
		}
		return nil
	}
	for j := n - 1; j >= 0; j-- {
		var ajj T
		if unit {
			ajj = -1
		} else {
			if a[j+j*lda] == 0 {
				return &SingularError{Index: j}
			}
			a[j+j*lda] = 1 / a[j+j*lda]
			ajj = -a[j+j*lda]
		}
		if j < n-1 {
			// Elements j+1..n-1 of column j.
			sub := a[j+1+(j+1)*lda:]
			col := a[j+1+j*lda:]
			blas.Trmv(blas.Lower, blas.NoTrans, diag, n-j-1, sub, lda, col, 1)
			blas.Scal(n-j-1, ajj, col, 1)
		}
	}
	return nil
}

// Trtri computes the blocked inverse of a triangular matrix in place.
func Trtri[T blas.Float](uplo blas.Uplo, diag blas.Diag, n int, a []T, lda int) error {
	// Check singularity up front, as reference dtrtri does.
	if diag == blas.NonUnit {
		for i := 0; i < n; i++ {
			if a[i+i*lda] == 0 {
				return &SingularError{Index: i}
			}
		}
	}
	if n <= blockSize {
		return Trti2(uplo, diag, n, a, lda)
	}
	if uplo == blas.Upper {
		for j := 0; j < n; j += blockSize {
			jb := min(blockSize, n-j)
			// Update block column j: A[0:j, j:j+jb] gets U₁₁⁻¹·(-A₁₂·U₂₂⁻¹)
			// via the standard two triangular multiplies.
			blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, diag, j, jb, 1, a, lda, a[j*lda:], lda)
			blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, diag, j, jb, -1, a[j+j*lda:], lda, a[j*lda:], lda)
			if err := Trti2(blas.Upper, diag, jb, a[j+j*lda:], lda); err != nil {
				return &SingularError{Index: j + err.(*SingularError).Index}
			}
		}
		return nil
	}
	nn := ((n - 1) / blockSize) * blockSize
	for j := nn; j >= 0; j -= blockSize {
		jb := min(blockSize, n-j)
		if j+jb < n {
			// A[j+jb:, j:j+jb] ← -L₃₃⁻¹·A₃₂·L₂₂⁻¹.
			blas.Trmm(blas.Left, blas.Lower, blas.NoTrans, diag, n-j-jb, jb, 1,
				a[j+jb+(j+jb)*lda:], lda, a[j+jb+j*lda:], lda)
			blas.Trsm(blas.Right, blas.Lower, blas.NoTrans, diag, n-j-jb, jb, -1,
				a[j+j*lda:], lda, a[j+jb+j*lda:], lda)
		}
		if err := Trti2(blas.Lower, diag, jb, a[j+j*lda:], lda); err != nil {
			return &SingularError{Index: j + err.(*SingularError).Index}
		}
	}
	return nil
}

// Lauu2 computes the unblocked product U·Uᵀ or Lᵀ·L of a triangular factor
// in place (the "LAUUM" operation used by POTRI).
func Lauu2[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) {
	if uplo == blas.Upper {
		// A ← U·Uᵀ (upper triangle of result).
		for i := 0; i < n; i++ {
			aii := a[i+i*lda]
			if i < n-1 {
				// a[i][i] = row i of U · row i of Uᵀ = Σ_{k≥i} U[i,k]².
				row := make([]T, n-i)
				for k := i; k < n; k++ {
					row[k-i] = a[i+k*lda]
				}
				a[i+i*lda] = blas.Dot(n-i, row, 1, row, 1)
				// a[0:i, i] = A[0:i, i:n]·U[i, i:n]ᵀ.
				blas.Gemv(blas.NoTrans, i, n-i-1, 1, a[(i+1)*lda:], lda, row[1:], 1, aii, a[i*lda:], 1)
			} else {
				blas.Scal(i+1, aii, a[i*lda:], 1)
			}
		}
		return
	}
	// A ← Lᵀ·L (lower triangle of result).
	for i := 0; i < n; i++ {
		aii := a[i+i*lda]
		if i < n-1 {
			col := a[i+i*lda : i+i*lda+n-i]
			a[i+i*lda] = blas.Dot(n-i, col, 1, col, 1)
			// a[i, 0:i] = L[i:n, i]ᵀ·L[i:n, 0:i] → stored at a[i + k*lda].
			blas.Gemv(blas.Trans, n-i-1, i, 1, a[i+1:], lda, a[i+1+i*lda:], 1, aii, a[i:], lda)
		} else {
			blas.Scal(i+1, aii, a[i:], lda)
		}
	}
}

// Lauum is the blocked version of Lauu2.
func Lauum[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) {
	if n <= blockSize {
		Lauu2(uplo, n, a, lda)
		return
	}
	if uplo == blas.Upper {
		for i := 0; i < n; i += blockSize {
			ib := min(blockSize, n-i)
			// A₀₁ ← A₀₁·U₁₁ᵀ + A₀₂·U₁₂ᵀ... following dlauum.
			blas.Trmm(blas.Right, blas.Upper, blas.Trans, blas.NonUnit, i, ib, 1,
				a[i+i*lda:], lda, a[i*lda:], lda)
			Lauu2(blas.Upper, ib, a[i+i*lda:], lda)
			if i+ib < n {
				blas.Gemm(blas.NoTrans, blas.Trans, i, ib, n-i-ib, 1,
					a[(i+ib)*lda:], lda, a[i+(i+ib)*lda:], lda, 1, a[i*lda:], lda)
				blas.Syrk(blas.Upper, blas.NoTrans, ib, n-i-ib, 1,
					a[i+(i+ib)*lda:], lda, 1, a[i+i*lda:], lda)
			}
		}
		return
	}
	for i := 0; i < n; i += blockSize {
		ib := min(blockSize, n-i)
		blas.Trmm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit, ib, i, 1,
			a[i+i*lda:], lda, a[i:], lda)
		Lauu2(blas.Lower, ib, a[i+i*lda:], lda)
		if i+ib < n {
			blas.Gemm(blas.Trans, blas.NoTrans, ib, i, n-i-ib, 1,
				a[i+ib+i*lda:], lda, a[i+ib:], lda, 1, a[i:], lda)
			blas.Syrk(blas.Lower, blas.Trans, ib, n-i-ib, 1,
				a[i+ib+i*lda:], lda, 1, a[i+i*lda:], lda)
		}
	}
}

// Potri computes the inverse of an SPD matrix from its Cholesky factor
// (as produced by Potrf): A⁻¹ = (L⁻¹)ᵀ·L⁻¹ or U⁻¹·(U⁻¹)ᵀ, in place.
func Potri[T blas.Float](uplo blas.Uplo, n int, a []T, lda int) error {
	if err := Trtri(uplo, blas.NonUnit, n, a, lda); err != nil {
		return err
	}
	Lauum(uplo, n, a, lda)
	return nil
}

// Getri computes the inverse of a general matrix from its LU factorization
// (as produced by Getrf with pivots ipiv), in place.
func Getri[T blas.Float](n int, a []T, lda int, ipiv []int) error {
	// inv(U) in place.
	if err := Trtri(blas.Upper, blas.NonUnit, n, a, lda); err != nil {
		return err
	}
	// Solve inv(A)·L = inv(U) for inv(A), one column block at a time from
	// the right, like dgetri.
	work := make([]T, n*blockSize)
	nn := ((n - 1) / blockSize) * blockSize
	for j := nn; j >= 0; j -= blockSize {
		jb := min(blockSize, n-j)
		// Copy the strictly-lower part of columns j..j+jb-1 (the L
		// multipliers) into work and zero it in A.
		for jj := 0; jj < jb; jj++ {
			col := a[(j+jj)*lda:]
			for i := j + jj + 1; i < n; i++ {
				work[i+jj*n] = col[i]
				col[i] = 0
			}
		}
		// A[:, j:j+jb] -= A[:, j+jb:]·L[j+jb:, j:j+jb].
		if j+jb < n {
			blas.Gemm(blas.NoTrans, blas.NoTrans, n, jb, n-j-jb,
				-1, a[(j+jb)*lda:], lda, work[j+jb:], n, 1, a[j*lda:], lda)
		}
		// A[:, j:j+jb] ← A[:, j:j+jb]·L₁₁⁻¹ (unit lower).
		blas.Trsm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, n, jb, 1,
			work[j:], n, a[j*lda:], lda)
	}
	// Apply column interchanges: columns swapped in reverse pivot order.
	for j := n - 1; j >= 0; j-- {
		if p := ipiv[j]; p != j {
			blas.Swap(n, a[j*lda:], 1, a[p*lda:], 1)
		}
	}
	return nil
}
