package lapack

import "exadla/internal/blas"

// Larfg generates an elementary Householder reflector H such that
//
//	H·[alpha, x]ᵀ = [beta, 0]ᵀ,  H = I − tau·v·vᵀ,  v = [1, vTail]ᵀ.
//
// On return x is overwritten with vTail. n is the order of the reflector
// (1 + len of x's logical vector). It returns beta and tau; tau == 0 means
// H is the identity.
func Larfg[T blas.Float](n int, alpha T, x []T, incX int) (beta, tau T) {
	if n <= 1 {
		return alpha, 0
	}
	xnorm := blas.Nrm2(n-1, x, incX)
	if xnorm == 0 {
		return alpha, 0
	}
	// beta = -sign(alpha)·‖[alpha, x]‖ for stability.
	beta = hypot(alpha, xnorm)
	if alpha > 0 {
		beta = -beta
	}
	tau = (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	blas.Scal(n-1, scale, x, incX)
	return beta, tau
}

func hypot[T blas.Float](a, b T) T {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a < b {
		a, b = b, a
	}
	if a == 0 {
		return 0
	}
	r := b / a
	return a * sqrt(1+r*r)
}

// Larf applies the reflector H = I − tau·v·vᵀ to the m×n matrix C from the
// left (side == Left, v has length m) or right (side == Right, v has length
// n). work must have length ≥ n (Left) or m (Right).
func Larf[T blas.Float](side blas.Side, m, n int, v []T, incV int, tau T, c []T, ldc int, work []T) {
	if tau == 0 {
		return
	}
	if side == blas.Left {
		// work = Cᵀ·v; C -= tau·v·workᵀ.
		blas.Gemv(blas.Trans, m, n, 1, c, ldc, v, incV, 0, work[:n], 1)
		blas.Ger(m, n, -tau, v, incV, work, 1, c, ldc)
		return
	}
	// work = C·v; C -= tau·work·vᵀ.
	blas.Gemv(blas.NoTrans, m, n, 1, c, ldc, v, incV, 0, work[:m], 1)
	blas.Ger(m, n, -tau, work, 1, v, incV, c, ldc)
}

// Geqr2 computes the unblocked QR factorization of the m×n matrix A:
// A = Q·R. R overwrites the upper triangle; the Householder vectors
// overwrite the strict lower triangle and tau (length min(m, n)) holds the
// reflector scales. work must have length ≥ n.
func Geqr2[T blas.Float](m, n int, a []T, lda int, tau, work []T) {
	k := min(m, n)
	for j := 0; j < k; j++ {
		col := a[j*lda:]
		beta, t := Larfg(m-j, col[j], col[j+1:j+1+max(0, m-j-1)], 1)
		tau[j] = t
		if j+1 < n {
			// Apply H to the trailing A[j:, j+1:] with v implicit in A.
			col[j] = 1
			Larf(blas.Left, m-j, n-j-1, col[j:j+m-j], 1, t, a[j+(j+1)*lda:], lda, work)
		}
		col[j] = beta
	}
}

// Larft forms the upper-triangular block reflector factor T of the compact
// WY representation: H₁·H₂···H_k = I − V·T·Vᵀ, with the reflectors stored
// forward and columnwise in the m×k matrix V (unit diagonal implied).
// t is k×k with leading dimension ldt.
func Larft[T blas.Float](m, k int, v []T, ldv int, tau []T, t []T, ldt int) {
	for i := 0; i < k; i++ {
		ti := tau[i]
		if ti == 0 {
			for j := 0; j <= i; j++ {
				t[j+i*ldt] = 0
			}
			continue
		}
		// t[0:i, i] = −tau[i]·V[:, 0:i]ᵀ·v_i, exploiting that v_i has an
		// implicit leading 1 at row i and zeros above.
		for j := 0; j < i; j++ {
			t[j+i*ldt] = -ti * v[i+j*ldv] // contribution of the implicit 1
		}
		if i+1 < m {
			// += −tau·V[i+1:, 0:i]ᵀ·V[i+1:, i].
			blas.Gemv(blas.Trans, m-i-1, i, -ti, v[i+1:], ldv, v[i+1+i*ldv:], 1, 1, t[i*ldt:], 1)
		}
		// t[0:i, i] = T[0:i, 0:i]·t[0:i, i].
		blas.Trmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t, ldt, t[i*ldt:], 1)
		t[i+i*ldt] = ti
	}
}

// Larfb applies the block reflector H = I − V·T·Vᵀ (or its transpose) to
// the m×n matrix C from the left, with V m×k forward/columnwise and T from
// Larft. work must have length ≥ n*k.
func Larfb[T blas.Float](side blas.Side, trans blas.Transpose, m, n, k int, v []T, ldv int, t []T, ldt int, c []T, ldc int, work []T) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if side != blas.Left {
		panic("lapack: Larfb implements side == Left only")
	}
	// W = CᵀV (n×k), exploiting V's unit lower trapezoidal structure:
	// V = [V1; V2] with V1 k×k unit lower triangular.
	w := work[:n*k]
	// W = C1ᵀ (n×k) where C1 is the first k rows of C.
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			w[i+j*n] = c[j+i*ldc]
		}
	}
	// W = W·V1 (unit lower): Trmm Right Lower NoTrans Unit.
	blas.Trmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, n, k, 1, v, ldv, w, n)
	if m > k {
		// W += C2ᵀ·V2.
		blas.Gemm(blas.Trans, blas.NoTrans, n, k, m-k, 1, c[k:], ldc, v[k:], ldv, 1, w, n)
	}
	// W = W·Tᵀ (trans==NoTrans applies H = I − V·T·Vᵀ) or W·T (Hᵀ).
	tt := blas.Trans
	if trans == blas.Trans {
		tt = blas.NoTrans
	}
	blas.Trmm(blas.Right, blas.Upper, tt, blas.NonUnit, n, k, 1, t, ldt, w, n)
	// C -= V·Wᵀ: C2 -= V2·Wᵀ, then C1 -= V1·Wᵀ.
	if m > k {
		blas.Gemm(blas.NoTrans, blas.Trans, m-k, n, k, -1, v[k:], ldv, w, n, 1, c[k:], ldc)
	}
	// Wᵀ update for C1: W = W·V1ᵀ then C1 -= Wᵀ.
	blas.Trmm(blas.Right, blas.Lower, blas.Trans, blas.Unit, n, k, 1, v, ldv, w, n)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			c[j+i*ldc] -= w[i+j*n]
		}
	}
}

// Geqrf computes the blocked QR factorization of the m×n matrix A in
// place, with tau of length min(m, n), using compact-WY panel updates.
func Geqrf[T blas.Float](m, n int, a []T, lda int, tau []T) {
	k := min(m, n)
	if k == 0 {
		return
	}
	work := make([]T, max(n, 1)*blockSize)
	tmat := make([]T, blockSize*blockSize)
	for j := 0; j < k; j += blockSize {
		jb := min(blockSize, k-j)
		Geqr2(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], work)
		if j+jb < n {
			Larft(m-j, jb, a[j+j*lda:], lda, tau[j:j+jb], tmat, jb)
			Larfb(blas.Left, blas.Trans, m-j, n-j-jb, jb,
				a[j+j*lda:], lda, tmat, jb, a[j+(j+jb)*lda:], lda, work)
		}
	}
}

// Org2r generates the first k columns of the orthogonal factor Q from the
// reflectors stored by Geqr2/Geqrf in the m×n matrix A (n ≥ k). On return
// A holds the explicit m×n Q panel.
func Org2r[T blas.Float](m, n, k int, a []T, lda int, tau []T) {
	if n == 0 {
		return
	}
	work := make([]T, n)
	// Initialise trailing columns k..n-1 to identity columns.
	for j := k; j < n; j++ {
		col := a[j*lda:]
		for i := 0; i < m; i++ {
			col[i] = 0
		}
		col[j] = 1
	}
	for j := k - 1; j >= 0; j-- {
		col := a[j*lda:]
		t := tau[j]
		if j+1 < n {
			col[j] = 1
			Larf(blas.Left, m-j, n-j-1, col[j:j+m-j], 1, t, a[j+(j+1)*lda:], lda, work)
		}
		if j+1 < m {
			blas.Scal(m-j-1, -t, col[j+1:], 1)
		}
		col[j] = 1 - t
		for i := 0; i < j; i++ {
			col[i] = 0
		}
	}
}

// Orgqr generates the explicit m×n orthogonal factor Q (n ≥ k columns)
// from Geqrf output. It currently delegates to the unblocked Org2r; Q is
// only materialised in tests and small drivers.
func Orgqr[T blas.Float](m, n, k int, a []T, lda int, tau []T) {
	Org2r(m, n, k, a, lda, tau)
}

// Ormqr applies Q or Qᵀ (from Geqrf's reflectors in A, k of them) to the
// m×n matrix C from the left: C ← op(Q)·C.
func Ormqr[T blas.Float](trans blas.Transpose, m, n, k int, a []T, lda int, tau []T, c []T, ldc int) {
	work := make([]T, max(m, n))
	// Q = H₀H₁···H_{k−1}. Q·C applies reflectors in reverse order, Qᵀ·C in
	// forward order.
	apply := func(j int) {
		col := a[j*lda:]
		save := col[j]
		col[j] = 1
		Larf(blas.Left, m-j, n, col[j:j+m-j], 1, tau[j], c[j:], ldc, work)
		col[j] = save
	}
	if trans == blas.Trans {
		for j := 0; j < k; j++ {
			apply(j)
		}
	} else {
		for j := k - 1; j >= 0; j-- {
			apply(j)
		}
	}
}

// Gels solves the overdetermined least-squares problem min‖A·x − b‖₂ for a
// full-rank m×n matrix A with m ≥ n, via QR: x = R⁻¹·(Qᵀb)[0:n]. A and b
// are overwritten; the solution is the first n entries of b. It returns a
// *SingularError if R has an exactly zero diagonal entry.
func Gels[T blas.Float](m, n int, a []T, lda int, b []T) error {
	if m < n {
		panic("lapack: Gels requires m ≥ n")
	}
	tau := make([]T, n)
	Geqrf(m, n, a, lda, tau)
	Ormqr(blas.Trans, m, 1, n, a, lda, tau, b, m)
	for i := 0; i < n; i++ {
		if a[i+i*lda] == 0 {
			return &SingularError{Index: i}
		}
	}
	blas.Trsv(blas.Upper, blas.NoTrans, blas.NonUnit, n, a, lda, b, 1)
	return nil
}
