package lapack_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
)

// residual computes ‖X − Y‖_max / (‖Y‖_max·n·ε), the standard normalized
// backward-error style metric: values of O(1–10) indicate a numerically
// correct factorization.
func residual(x, y []float64, n int) float64 {
	var diff, norm float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		if d > diff {
			diff = d
		}
		if a := math.Abs(y[i]); a > norm {
			norm = a
		}
	}
	if norm == 0 {
		norm = 1
	}
	return diff / (norm * float64(n) * 0x1p-52)
}

func extractLower(n int, a []float64, lda int, unit bool) []float64 {
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = a[i+j*lda]
		}
		if unit {
			l[j+j*n] = 1
		}
	}
	return l
}

func extractUpper(m, n int, a []float64, lda int) []float64 {
	u := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for i := 0; i <= min(j, m-1); i++ {
			u[i+j*m] = a[i+j*lda]
		}
	}
	return u
}

func TestPotrfReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 63, 64, 65, 200} {
		for _, uplo := range []blas.Uplo{blas.Lower, blas.Upper} {
			a := matgen.DiagDomSPD[float64](rng, n)
			f := append([]float64(nil), a...)
			if err := lapack.Potrf(uplo, n, f, n); err != nil {
				t.Fatalf("n=%d %v: %v", n, uplo, err)
			}
			recon := make([]float64, n*n)
			if uplo == blas.Lower {
				l := extractLower(n, f, n, false)
				blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, l, n, l, n, 0, recon, n)
			} else {
				u := extractUpper(n, n, f, n)
				blas.Gemm(blas.Trans, blas.NoTrans, n, n, n, 1, u, n, u, n, 0, recon, n)
			}
			if r := residual(recon, a, n); r > 30 {
				t.Errorf("n=%d %v: reconstruction residual %g", n, uplo, r)
			}
		}
	}
}

func TestPotrfMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 150 // forces blocking
	a := matgen.DiagDomSPD[float64](rng, n)
	blocked := append([]float64(nil), a...)
	unblocked := append([]float64(nil), a...)
	if err := lapack.Potrf(blas.Lower, n, blocked, n); err != nil {
		t.Fatal(err)
	}
	if err := lapack.Potf2(blas.Lower, n, unblocked, n); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			d := math.Abs(blocked[i+j*n] - unblocked[i+j*n])
			if d > 1e-10 {
				t.Fatalf("blocked/unblocked diverge at (%d,%d): %g", i, j, d)
			}
		}
	}
}

func TestPotrfNotPositiveDefinite(t *testing.T) {
	// Indefinite matrix: identity with a negative entry at position 2.
	n := 5
	a := matgen.Identity[float64](n)
	a[2+2*n] = -1
	err := lapack.Potrf(blas.Lower, n, a, n)
	var pd *lapack.NotPositiveDefiniteError
	if !errors.As(err, &pd) {
		t.Fatalf("expected NotPositiveDefiniteError, got %v", err)
	}
	if pd.Index != 2 {
		t.Errorf("index: got %d want 2", pd.Index)
	}
}

func TestPotrfNotPDBlocked(t *testing.T) {
	// The failing minor must be reported with a global index even when it
	// falls in a later block.
	rng := rand.New(rand.NewSource(3))
	n := 130
	a := matgen.DiagDomSPD[float64](rng, n)
	bad := 100
	a[bad+bad*n] = -1e6 // destroys positive definiteness at this minor
	err := lapack.Potrf(blas.Lower, n, a, n)
	var pd *lapack.NotPositiveDefiniteError
	if !errors.As(err, &pd) {
		t.Fatalf("expected NotPositiveDefiniteError, got %v", err)
	}
	if pd.Index != bad {
		t.Errorf("index: got %d want %d", pd.Index, bad)
	}
}

func TestPosvSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, uplo := range []blas.Uplo{blas.Lower, blas.Upper} {
		n, nrhs := 80, 3
		a := matgen.DiagDomSPD[float64](rng, n)
		xTrue := matgen.Dense[float64](rng, n, nrhs)
		b := make([]float64, n*nrhs)
		blas.Gemm(blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, a, n, xTrue, n, 0, b, n)
		f := append([]float64(nil), a...)
		if err := lapack.Posv(uplo, n, nrhs, f, n, b, n); err != nil {
			t.Fatal(err)
		}
		if r := residual(b, xTrue, n); r > 1e4 {
			t.Errorf("%v: solution residual %g", uplo, r)
		}
	}
}

func reconstructLU(m, n int, f []float64, lda int, ipiv []int) []float64 {
	k := min(m, n)
	l := make([]float64, m*k)
	for j := 0; j < k; j++ {
		l[j+j*m] = 1
		for i := j + 1; i < m; i++ {
			l[i+j*m] = f[i+j*lda]
		}
	}
	u := extractUpper(k, n, f, lda)
	recon := make([]float64, m*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, l, m, u, k, 0, recon, m)
	// Undo the recorded row swaps (reverse order) to recover A.
	for i := k - 1; i >= 0; i-- {
		if p := ipiv[i]; p != i {
			blas.Swap(n, recon[i:], m, recon[p:], m)
		}
	}
	return recon
}

func TestGetrfReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := [][2]int{{1, 1}, {5, 5}, {10, 7}, {7, 10}, {64, 64}, {65, 65}, {150, 100}, {100, 150}, {200, 200}}
	for _, d := range dims {
		m, n := d[0], d[1]
		a := matgen.Dense[float64](rng, m, n)
		f := append([]float64(nil), a...)
		ipiv := make([]int, min(m, n))
		if err := lapack.Getrf(m, n, f, m, ipiv); err != nil {
			t.Fatalf("%dx%d: unexpected error %v", m, n, err)
		}
		recon := reconstructLU(m, n, f, m, ipiv)
		if r := residual(recon, a, max(m, n)); r > 30 {
			t.Errorf("%dx%d: reconstruction residual %g", m, n, r)
		}
	}
}

func TestGetrfPivotsAreMaximal(t *testing.T) {
	// With partial pivoting all multipliers (entries of L below the
	// diagonal) have magnitude ≤ 1.
	rng := rand.New(rand.NewSource(6))
	m, n := 90, 90
	f := matgen.Dense[float64](rng, m, n)
	ipiv := make([]int, n)
	if err := lapack.Getrf(m, n, f, m, ipiv); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		for i := j + 1; i < m; i++ {
			if math.Abs(f[i+j*m]) > 1+1e-14 {
				t.Fatalf("multiplier L[%d,%d] = %v exceeds 1", i, j, f[i+j*m])
			}
		}
	}
}

func TestGesvSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, nrhs := 120, 2
	a := matgen.Dense[float64](rng, n, n)
	xTrue := matgen.Dense[float64](rng, n, nrhs)
	b := make([]float64, n*nrhs)
	blas.Gemm(blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, a, n, xTrue, n, 0, b, n)
	f := append([]float64(nil), a...)
	ipiv := make([]int, n)
	if err := lapack.Gesv(n, nrhs, f, n, ipiv, b, n); err != nil {
		t.Fatal(err)
	}
	if r := residual(b, xTrue, n); r > 1e6 {
		t.Errorf("solution residual %g", r)
	}
}

func TestGetrsTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 60
	a := matgen.Dense[float64](rng, n, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	// b = Aᵀ·x.
	b := make([]float64, n)
	blas.Gemv(blas.Trans, n, n, 1, a, n, xTrue, 1, 0, b, 1)
	f := append([]float64(nil), a...)
	ipiv := make([]int, n)
	if err := lapack.Getrf(n, n, f, n, ipiv); err != nil {
		t.Fatal(err)
	}
	lapack.Getrs(blas.Trans, n, 1, f, n, ipiv, b, n)
	if r := residual(b, xTrue, n); r > 1e5 {
		t.Errorf("transpose solve residual %g", r)
	}
}

func TestGetrfSingular(t *testing.T) {
	n := 6
	a := make([]float64, n*n) // all zeros: singular immediately
	ipiv := make([]int, n)
	err := lapack.Getrf(n, n, a, n, ipiv)
	var se *lapack.SingularError
	if !errors.As(err, &se) {
		t.Fatalf("expected SingularError, got %v", err)
	}
	if se.Index != 0 {
		t.Errorf("index: got %d want 0", se.Index)
	}
}

func TestGetrfSingularLaterColumn(t *testing.T) {
	// An exactly-zero column stays exactly zero through elimination, so the
	// zero pivot is discovered at that column.
	rng := rand.New(rand.NewSource(9))
	n := 10
	a := matgen.Dense[float64](rng, n, n)
	for i := 0; i < n; i++ {
		a[i+3*n] = 0
	}
	ipiv := make([]int, n)
	err := lapack.Getrf(n, n, a, n, ipiv)
	var se *lapack.SingularError
	if !errors.As(err, &se) {
		t.Fatalf("expected SingularError, got %v", err)
	}
	if se.Index != 3 {
		t.Errorf("index: got %d want 3", se.Index)
	}
}

func TestLaswpRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, n := 12, 5
	a := matgen.Dense[float64](rng, m, n)
	orig := append([]float64(nil), a...)
	ipiv := []int{3, 5, 2, 9, 4, 5, 6, 11, 8, 9, 10, 11}
	lapack.Laswp(n, a, m, 0, m, ipiv)
	// Reverse.
	for i := m - 1; i >= 0; i-- {
		if p := ipiv[i]; p != i {
			blas.Swap(n, a[i:], m, a[p:], m)
		}
	}
	for i := range a {
		if a[i] != orig[i] {
			t.Fatal("Laswp round-trip mismatch")
		}
	}
}

func TestLangeNorms(t *testing.T) {
	// 2×3 matrix with known norms.
	// A = [1 -2 3; -4 5 -6] column-major.
	a := []float64{1, -4, -2, 5, 3, -6}
	m, n := 2, 3
	if got := lapack.Lange(lapack.MaxAbs, m, n, a, m); got != 6 {
		t.Errorf("MaxAbs: got %v", got)
	}
	if got := lapack.Lange(lapack.OneNorm, m, n, a, m); got != 9 {
		t.Errorf("OneNorm: got %v", got)
	}
	if got := lapack.Lange(lapack.InfNorm, m, n, a, m); got != 15 {
		t.Errorf("InfNorm: got %v", got)
	}
	want := math.Sqrt(1 + 4 + 9 + 16 + 25 + 36)
	if got := lapack.Lange(lapack.FrobeniusNorm, m, n, a, m); math.Abs(got-want) > 1e-14 {
		t.Errorf("Frobenius: got %v want %v", got, want)
	}
}

func TestLansyMatchesLange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 17
	a := matgen.DiagDomSPD[float64](rng, n)
	for _, norm := range []lapack.Norm{lapack.OneNorm, lapack.InfNorm, lapack.MaxAbs, lapack.FrobeniusNorm} {
		want := lapack.Lange(norm, n, n, a, n)
		for _, uplo := range []blas.Uplo{blas.Lower, blas.Upper} {
			got := lapack.Lansy(norm, uplo, n, a, n)
			if math.Abs(got-want) > 1e-12*want {
				t.Errorf("Lansy %c %v: got %v want %v", norm, uplo, got, want)
			}
		}
	}
}

func TestLacpyLaset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, n := 7, 5
	a := matgen.Dense[float64](rng, m, n)
	b := make([]float64, m*n)
	lapack.Lacpy(lapack.General, m, n, a, m, b, m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Lacpy General mismatch")
		}
	}
	lapack.Laset(lapack.General, m, n, 0, 1, b, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if b[i+j*m] != want {
				t.Fatalf("Laset(%d,%d) = %v", i, j, b[i+j*m])
			}
		}
	}
	// Triangle-restricted copy leaves the other triangle alone.
	c := make([]float64, m*n)
	lapack.Lacpy(blas.Lower, m, n, a, m, c, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want := 0.0
			if i >= j {
				want = a[i+j*m]
			}
			if c[i+j*m] != want {
				t.Fatalf("Lacpy Lower (%d,%d): %v want %v", i, j, c[i+j*m], want)
			}
		}
	}
}

func TestEpsilon(t *testing.T) {
	if e := lapack.Epsilon[float64](); e != 0x1p-52 {
		t.Errorf("float64 epsilon: %v", e)
	}
	if e := lapack.Epsilon[float32](); float64(e) != 0x1p-23 {
		t.Errorf("float32 epsilon: %v", e)
	}
}

func TestPotrfFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 50
	a := matgen.DiagDomSPD[float32](rng, n)
	f := append([]float32(nil), a...)
	if err := lapack.Potrf(blas.Lower, n, f, n); err != nil {
		t.Fatal(err)
	}
	// Reconstruct in float32 and compare with tolerance scaled to ε₃₂.
	l := make([]float32, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = f[i+j*n]
		}
	}
	recon := make([]float32, n*n)
	blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, l, n, l, n, 0, recon, n)
	var maxDiff, maxA float64
	for i := range a {
		if d := math.Abs(float64(recon[i] - a[i])); d > maxDiff {
			maxDiff = d
		}
		if v := math.Abs(float64(a[i])); v > maxA {
			maxA = v
		}
	}
	if maxDiff > maxA*float64(n)*0x1p-23*30 {
		t.Errorf("float32 reconstruction diff %g (‖A‖=%g)", maxDiff, maxA)
	}
}
