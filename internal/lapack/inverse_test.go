package lapack_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
)

// identityResidual computes ‖X·Y − I‖_max/(n·ε).
func identityResidual(n int, x, y []float64) float64 {
	prod := make([]float64, n*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, x, n, y, n, 0, prod, n)
	var d float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if v := math.Abs(prod[i+j*n] - want); v > d {
				d = v
			}
		}
	}
	return d / (float64(n) * 0x1p-52)
}

func triDense(uplo blas.Uplo, diag blas.Diag, n int, a []float64, lda int) []float64 {
	out := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			switch {
			case i == j:
				if diag == blas.Unit {
					out[i+j*n] = 1
				} else {
					out[i+j*n] = a[i+j*lda]
				}
			case (uplo == blas.Lower && i > j) || (uplo == blas.Upper && i < j):
				out[i+j*n] = a[i+j*lda]
			}
		}
	}
	return out
}

func TestTrtri(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 17, 64, 65, 150} {
		for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
			for _, diag := range []blas.Diag{blas.NonUnit, blas.Unit} {
				a := matgen.Dense[float64](rng, n, n)
				// Keep the triangle well conditioned: a random unit
				// triangular matrix has an exponentially large inverse, so
				// scale the off-diagonal entries down and dominate the
				// diagonal.
				scale := 1 / float64(n)
				for i := range a {
					a[i] *= scale
				}
				for i := 0; i < n; i++ {
					a[i+i*n] = 2 + math.Abs(a[i+i*n])
				}
				orig := triDense(uplo, diag, n, a, n)
				inv := append([]float64(nil), a...)
				if err := lapack.Trtri(uplo, diag, n, inv, n); err != nil {
					t.Fatalf("n=%d %v %v: %v", n, uplo, diag, err)
				}
				invD := triDense(uplo, diag, n, inv, n)
				if r := identityResidual(n, orig, invD); r > 1e4 {
					t.Errorf("n=%d %v %v: T·T⁻¹ residual %g", n, uplo, diag, r)
				}
			}
		}
	}
}

func TestTrtriSingular(t *testing.T) {
	n := 6
	a := matgen.Identity[float64](n)
	a[4+4*n] = 0
	err := lapack.Trtri(blas.Upper, blas.NonUnit, n, a, n)
	var se *lapack.SingularError
	if !errors.As(err, &se) || se.Index != 4 {
		t.Errorf("got %v", err)
	}
}

func TestLauumMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 64, 100} {
		for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
			a := matgen.Dense[float64](rng, n, n)
			tri := triDense(uplo, blas.NonUnit, n, a, n)
			want := make([]float64, n*n)
			if uplo == blas.Upper {
				blas.Gemm(blas.NoTrans, blas.Trans, n, n, n, 1, tri, n, tri, n, 0, want, n)
			} else {
				blas.Gemm(blas.Trans, blas.NoTrans, n, n, n, 1, tri, n, tri, n, 0, want, n)
			}
			got := append([]float64(nil), a...)
			lapack.Lauum(uplo, n, got, n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					inTri := (uplo == blas.Upper && i <= j) || (uplo == blas.Lower && i >= j)
					if !inTri {
						continue
					}
					if math.Abs(got[i+j*n]-want[i+j*n]) > 1e-10*float64(n) {
						t.Fatalf("n=%d %v: (%d,%d) = %v want %v", n, uplo, i, j, got[i+j*n], want[i+j*n])
					}
				}
			}
		}
	}
}

func TestPotri(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 10, 80, 130} {
		for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
			a := matgen.DiagDomSPD[float64](rng, n)
			f := append([]float64(nil), a...)
			if err := lapack.Potrf(uplo, n, f, n); err != nil {
				t.Fatal(err)
			}
			if err := lapack.Potri(uplo, n, f, n); err != nil {
				t.Fatal(err)
			}
			// Symmetrize the stored triangle into a dense inverse.
			inv := make([]float64, n*n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					if (uplo == blas.Lower && i >= j) || (uplo == blas.Upper && i <= j) {
						inv[i+j*n] = f[i+j*n]
					} else {
						inv[i+j*n] = f[j+i*n]
					}
				}
			}
			if r := identityResidual(n, a, inv); r > 1e5 {
				t.Errorf("n=%d %v: A·A⁻¹ residual %g", n, uplo, r)
			}
		}
	}
}

func TestGetri(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 7, 64, 65, 120} {
		a := matgen.Dense[float64](rng, n, n)
		f := append([]float64(nil), a...)
		ipiv := make([]int, n)
		if err := lapack.Getrf(n, n, f, n, ipiv); err != nil {
			t.Fatal(err)
		}
		if err := lapack.Getri(n, f, n, ipiv); err != nil {
			t.Fatal(err)
		}
		if r := identityResidual(n, a, f); r > 1e6 {
			t.Errorf("n=%d: A·A⁻¹ residual %g", n, r)
		}
		// Both sides: A⁻¹·A ≈ I too.
		if r := identityResidual(n, f, a); r > 1e6 {
			t.Errorf("n=%d: A⁻¹·A residual %g", n, r)
		}
	}
}

func TestGetriSingular(t *testing.T) {
	n := 4
	a := make([]float64, n*n)
	ipiv := make([]int, n)
	_ = lapack.Getrf(n, n, a, n, ipiv) // reports singular, factors anyway
	if err := lapack.Getri(n, a, n, ipiv); err == nil {
		t.Error("expected singular error")
	}
}
