// Package lapack provides pure-Go implementations of the LAPACK-style dense
// factorization kernels the library is built on: Cholesky (POTRF), LU with
// partial pivoting (GETRF), and Householder QR (GEQRF), together with their
// solve drivers, the auxiliary routines they need (LARFG/LARFT/LARFB, LASWP,
// LANGE, ...), and blocked variants structured exactly like the reference
// implementations.
//
// Matrices are column-major with explicit leading dimensions, matching
// package blas. Routines are generic over float32 and float64.
//
// Unlike reference LAPACK's info codes, failures are reported as typed
// errors: *NotPositiveDefiniteError and *SingularError. As in LAPACK, GETRF
// reports singularity but still completes the factorization, so callers can
// decide whether an exactly-zero pivot matters for their use.
package lapack

import (
	"fmt"

	"exadla/internal/blas"
)

// Norm selects which matrix norm Lange computes.
type Norm byte

const (
	// MaxAbs is the largest absolute entry (not a consistent norm).
	MaxAbs Norm = 'M'
	// OneNorm is the maximum absolute column sum.
	OneNorm Norm = '1'
	// InfNorm is the maximum absolute row sum.
	InfNorm Norm = 'I'
	// FrobeniusNorm is the square root of the sum of squares.
	FrobeniusNorm Norm = 'F'
)

// blockSize is the panel width used by the blocked factorizations. 64
// balances level-3 fraction against panel latency for the pure-Go kernels.
const blockSize = 64

// NotPositiveDefiniteError reports that a Cholesky factorization encountered
// a non-positive leading minor.
type NotPositiveDefiniteError struct {
	// Index is the zero-based order of the first non-positive-definite
	// leading minor.
	Index int
}

func (e *NotPositiveDefiniteError) Error() string {
	return fmt.Sprintf("lapack: matrix is not positive definite (leading minor %d)", e.Index)
}

// SingularError reports an exactly singular matrix: U[Index][Index] == 0 in
// an LU factorization, or a zero diagonal in a triangular solve.
type SingularError struct {
	// Index is the zero-based position of the zero pivot.
	Index int
}

func (e *SingularError) Error() string {
	return fmt.Sprintf("lapack: matrix is singular (zero pivot at %d)", e.Index)
}

// Lacpy copies the m×n matrix A into B. uplo selects all of A (use
// the zero value General), or only the Upper/Lower triangle.
func Lacpy[T blas.Float](uplo blas.Uplo, m, n int, a []T, lda int, b []T, ldb int) {
	for j := 0; j < n; j++ {
		lo, hi := 0, m
		switch uplo {
		case blas.Upper:
			hi = min(j+1, m)
		case blas.Lower:
			lo = min(j, m)
		}
		copy(b[lo+j*ldb:hi+j*ldb], a[lo+j*lda:hi+j*lda])
	}
}

// General is the Uplo value Lacpy and Laset interpret as "the whole
// matrix".
const General blas.Uplo = 'G'

// Laset sets the selected part of the m×n matrix A to offdiag off the
// diagonal and diag on it.
func Laset[T blas.Float](uplo blas.Uplo, m, n int, offdiag, diag T, a []T, lda int) {
	for j := 0; j < n; j++ {
		lo, hi := 0, m
		switch uplo {
		case blas.Upper:
			hi = min(j, m)
		case blas.Lower:
			lo = min(j+1, m)
		}
		col := a[j*lda:]
		for i := lo; i < hi; i++ {
			col[i] = offdiag
		}
	}
	for i := 0; i < min(m, n); i++ {
		a[i+i*lda] = diag
	}
}

// Lange computes the selected norm of the m×n matrix A.
func Lange[T blas.Float](norm Norm, m, n int, a []T, lda int) T {
	if m == 0 || n == 0 {
		return 0
	}
	switch norm {
	case MaxAbs:
		var mx T
		for j := 0; j < n; j++ {
			for _, v := range a[j*lda : j*lda+m] {
				if v < 0 {
					v = -v
				}
				if v > mx {
					mx = v
				}
			}
		}
		return mx
	case OneNorm:
		var mx T
		for j := 0; j < n; j++ {
			var s T
			for _, v := range a[j*lda : j*lda+m] {
				if v < 0 {
					v = -v
				}
				s += v
			}
			if s > mx {
				mx = s
			}
		}
		return mx
	case InfNorm:
		rows := make([]T, m)
		for j := 0; j < n; j++ {
			for i, v := range a[j*lda : j*lda+m] {
				if v < 0 {
					v = -v
				}
				rows[i] += v
			}
		}
		var mx T
		for _, s := range rows {
			if s > mx {
				mx = s
			}
		}
		return mx
	case FrobeniusNorm:
		// Column-by-column scaled accumulation via Nrm2 would rescan; a
		// single scaled pass suffices here.
		var scale, ssq T = 0, 1
		for j := 0; j < n; j++ {
			for _, v := range a[j*lda : j*lda+m] {
				if v == 0 {
					continue
				}
				if v < 0 {
					v = -v
				}
				if scale < v {
					r := scale / v
					ssq = 1 + ssq*r*r
					scale = v
				} else {
					r := v / scale
					ssq += r * r
				}
			}
		}
		return scale * sqrt(ssq)
	default:
		panic(fmt.Sprintf("lapack: invalid norm %q", byte(norm)))
	}
}

// Lansy computes the selected norm of the n×n symmetric matrix A of which
// only the uplo triangle is stored.
func Lansy[T blas.Float](norm Norm, uplo blas.Uplo, n int, a []T, lda int) T {
	if n == 0 {
		return 0
	}
	switch norm {
	case OneNorm, InfNorm:
		// Row and column sums coincide for symmetric matrices.
		sums := make([]T, n)
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == blas.Lower {
				lo, hi = j, n
			}
			for i := lo; i < hi; i++ {
				v := a[i+j*lda]
				if v < 0 {
					v = -v
				}
				sums[j] += v
				if i != j {
					sums[i] += v
				}
			}
		}
		var mx T
		for _, s := range sums {
			if s > mx {
				mx = s
			}
		}
		return mx
	case MaxAbs:
		var mx T
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == blas.Lower {
				lo, hi = j, n
			}
			for i := lo; i < hi; i++ {
				v := a[i+j*lda]
				if v < 0 {
					v = -v
				}
				if v > mx {
					mx = v
				}
			}
		}
		return mx
	case FrobeniusNorm:
		var s T
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == blas.Lower {
				lo, hi = j, n
			}
			for i := lo; i < hi; i++ {
				v := a[i+j*lda]
				if i == j {
					s += v * v
				} else {
					s += 2 * v * v
				}
			}
		}
		return sqrt(s)
	default:
		panic(fmt.Sprintf("lapack: invalid norm %q for Lansy", byte(norm)))
	}
}
