package lapack_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/matgen"
)

// eigResidual computes max_k ‖A·v_k − λ_k·v_k‖∞ / (‖A‖∞·n·ε).
func eigResidual(n int, a []float64, v []float64, d []float64) float64 {
	anorm := lapack.Lange(lapack.InfNorm, n, n, a, n)
	var worst float64
	av := make([]float64, n)
	for k := 0; k < n; k++ {
		blas.Gemv(blas.NoTrans, n, n, 1, a, n, v[k*n:k*n+n], 1, 0, av, 1)
		for i := 0; i < n; i++ {
			if r := math.Abs(av[i] - d[k]*v[i+k*n]); r > worst {
				worst = r
			}
		}
	}
	return worst / (anorm * float64(n) * 0x1p-52)
}

// symmetrize fills the full matrix from the lower triangle.
func symmetrize(n int, a []float64) []float64 {
	out := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			out[i+j*n] = a[i+j*n]
			out[j+i*n] = a[i+j*n]
		}
	}
	return out
}

func TestSyevDiagonalMatrix(t *testing.T) {
	n := 5
	a := make([]float64, n*n)
	want := []float64{-3, -1, 0, 2, 7}
	perm := []int{3, 0, 4, 1, 2} // scatter them unsorted
	for i, p := range perm {
		a[i+i*n] = want[p]
	}
	d := make([]float64, n)
	if err := lapack.Syev(true, n, a, n, d); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-13 {
			t.Errorf("λ[%d] = %v want %v", i, d[i], want[i])
		}
	}
}

func TestSyevTridiagonalKnownSpectrum(t *testing.T) {
	// The (−1, 2, −1) tridiagonal matrix has eigenvalues
	// 2 − 2cos(kπ/(n+1)), k = 1..n.
	n := 20
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = 2
		if i+1 < n {
			a[i+1+i*n] = -1
		}
	}
	d := make([]float64, n)
	if err := lapack.Syev(false, n, a, n, d); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(d[k-1]-want) > 1e-12 {
			t.Errorf("λ[%d] = %v want %v", k-1, d[k-1], want)
		}
	}
}

func TestSyevEigenpairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 50, 120} {
		aL := matgen.DiagDomSPD[float64](rng, n)
		full := symmetrize(n, aL)
		v := append([]float64(nil), aL...)
		d := make([]float64, n)
		if err := lapack.Syev(true, n, v, n, d); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Ascending eigenvalues.
		for i := 1; i < n; i++ {
			if d[i] < d[i-1] {
				t.Fatalf("n=%d: eigenvalues not sorted", n)
			}
		}
		// Residual and orthonormality.
		if r := eigResidual(n, full, v, d); r > 100 {
			t.Errorf("n=%d: eigenpair residual %g", n, r)
		}
		vtv := make([]float64, n*n)
		blas.Gemm(blas.Trans, blas.NoTrans, n, n, n, 1, v, n, v, n, 0, vtv, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv[i+j*n]-want) > 1e-12*float64(n) {
					t.Fatalf("n=%d: VᵀV(%d,%d) = %v", n, i, j, vtv[i+j*n])
				}
			}
		}
		// Trace preservation: Σλ = trace(A).
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += full[i+i*n]
			sum += d[i]
		}
		if math.Abs(trace-sum) > 1e-10*(1+math.Abs(trace)) {
			t.Errorf("n=%d: Σλ = %v, trace = %v", n, sum, trace)
		}
	}
}

func TestSyevRecoversPrescribedSpectrum(t *testing.T) {
	// matgen.SPDWithCond promises log-spaced eigenvalues in [1/cond, 1];
	// the eigensolver must recover exactly that spectrum — a deep
	// cross-validation of generator and solver.
	rng := rand.New(rand.NewSource(2))
	n, cond := 40, 1e6
	a := matgen.SPDWithCond[float64](rng, n, cond)
	d := make([]float64, n)
	if err := lapack.Syev(false, n, a, n, d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tt := float64(n-1-i) / float64(n-1)
		want := math.Pow(cond, -tt)
		if math.Abs(d[i]-want) > 1e-9*(1+want)+1e-12*cond*0 {
			if math.Abs(d[i]-want)/want > 1e-7 {
				t.Errorf("λ[%d] = %v want %v", i, d[i], want)
			}
		}
	}
	if got := d[n-1] / d[0]; math.Abs(got-cond)/cond > 1e-6 {
		t.Errorf("condition λmax/λmin = %v want %v", got, cond)
	}
}

func TestSyevIndefinite(t *testing.T) {
	// Works for indefinite symmetric matrices too (not just SPD).
	rng := rand.New(rand.NewSource(3))
	n := 30
	g := matgen.Dense[float64](rng, n, n)
	// A = G + Gᵀ is symmetric indefinite.
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			a[i+j*n] = g[i+j*n] + g[j+i*n]
		}
	}
	full := symmetrize(n, a)
	v := append([]float64(nil), a...)
	d := make([]float64, n)
	if err := lapack.Syev(true, n, v, n, d); err != nil {
		t.Fatal(err)
	}
	if d[0] >= 0 || d[n-1] <= 0 {
		t.Errorf("expected mixed signs: λmin=%v λmax=%v", d[0], d[n-1])
	}
	if r := eigResidual(n, full, v, d); r > 100 {
		t.Errorf("residual %g", r)
	}
}

func TestSteqrPlainTridiagonal(t *testing.T) {
	// Eigenvalues-only path on a directly-specified tridiagonal.
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	if err := lapack.Steqr(n, d, e, nil, 0); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(d[k-1]-want) > 1e-12 {
			t.Errorf("λ[%d] = %v want %v", k-1, d[k-1], want)
		}
	}
}

func TestSyevHilbert(t *testing.T) {
	// The 8×8 Hilbert matrix: all eigenvalues positive, the largest ≈1.696,
	// κ ≈ 1.5e10 — a stiff accuracy test for the QL iteration.
	n := 8
	h := matgen.Hilbert[float64](n)
	d := make([]float64, n)
	if err := lapack.Syev(false, n, h, n, d); err != nil {
		t.Fatal(err)
	}
	if d[0] <= 0 {
		t.Errorf("Hilbert λmin = %v, want > 0", d[0])
	}
	if math.Abs(d[n-1]-1.6959389969219) > 1e-9 {
		t.Errorf("Hilbert λmax = %v", d[n-1])
	}
}
