package tile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"exadla/internal/matgen"
)

func TestRoundTripColMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range [][3]int{{1, 1, 4}, {4, 4, 4}, {5, 3, 2}, {10, 10, 3}, {100, 37, 16}, {64, 64, 64}, {65, 65, 64}} {
		m, n, nb := d[0], d[1], d[2]
		src := matgen.Dense[float64](rng, m, n)
		a := FromColMajor(m, n, src, m, nb)
		out := a.ToColMajor()
		for i := range src {
			if src[i] != out[i] {
				t.Fatalf("m=%d n=%d nb=%d: round trip differs at %d", m, n, nb, i)
			}
		}
	}
}

func TestTileDims(t *testing.T) {
	a := New[float64](10, 7, 4)
	if a.MT != 3 || a.NT != 2 {
		t.Fatalf("MT=%d NT=%d", a.MT, a.NT)
	}
	wantRows := []int{4, 4, 2}
	wantCols := []int{4, 3}
	for i, w := range wantRows {
		if a.TileRows(i) != w {
			t.Errorf("TileRows(%d)=%d want %d", i, a.TileRows(i), w)
		}
	}
	for j, w := range wantCols {
		if a.TileCols(j) != w {
			t.Errorf("TileCols(%d)=%d want %d", j, a.TileCols(j), w)
		}
	}
	if len(a.Tile(2, 1)) != 2*3 {
		t.Errorf("corner tile len %d", len(a.Tile(2, 1)))
	}
}

func TestAtSetConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		nb := 1 + rng.Intn(10)
		a := New[float64](m, n, nb)
		ref := make([]float64, m*n)
		for k := 0; k < 50; k++ {
			i, j := rng.Intn(m), rng.Intn(n)
			v := rng.NormFloat64()
			a.Set(i, j, v)
			ref[i+j*m] = v
		}
		out := a.ToColMajor()
		for i := range ref {
			if out[i] != ref[i] {
				return false
			}
		}
		for k := 0; k < 50; k++ {
			i, j := rng.Intn(m), rng.Intn(n)
			if a.At(i, j) != ref[i+j*m] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHandlesDistinguishTilesAndMatrices(t *testing.T) {
	a := New[float64](8, 8, 4)
	b := New[float64](8, 8, 4)
	if a.Handle(0, 0) == a.Handle(0, 1) {
		t.Error("distinct tiles share a handle")
	}
	if a.Handle(0, 0) != a.Handle(0, 0) {
		t.Error("same tile's handle not stable")
	}
	if a.Handle(0, 0) == b.Handle(0, 0) {
		t.Error("tiles of distinct matrices share a handle")
	}
	c := a.Clone()
	if a.Handle(1, 1) == c.Handle(1, 1) {
		t.Error("clone shares handles with original")
	}
}

func TestConvertPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := matgen.Dense[float64](rng, 9, 5)
	a := FromColMajor(9, 5, src, 9, 4)
	s := Convert[float32](a)
	d := Convert[float64](s)
	out := d.ToColMajor()
	for i := range src {
		if float32(src[i]) != float32(out[i]) {
			t.Fatalf("precision round trip differs at %d", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New[float64](4, 4, 2)
	a.Set(1, 1, 5)
	b := a.Clone()
	b.Set(1, 1, 9)
	if a.At(1, 1) != 5 {
		t.Error("clone shares storage")
	}
}

func TestSetTile(t *testing.T) {
	a := New[float64](6, 6, 4)
	repl := make([]float64, a.TileRows(1)*a.TileCols(1))
	for i := range repl {
		repl[i] = 7
	}
	a.SetTile(1, 1, repl)
	if a.At(5, 5) != 7 {
		t.Error("SetTile contents not visible")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetTile with wrong size must panic")
		}
	}()
	a.SetTile(0, 0, make([]float64, 3))
}
