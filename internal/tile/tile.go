// Package tile implements the tiled matrix layout used by the tile
// algorithms: the matrix is stored as an MT×NT grid of nb×nb column-major
// tiles, each in its own contiguous allocation. Tiles are the unit of both
// data locality and dependence tracking — a tile's identity doubles as the
// scheduler handle for the data it holds.
package tile

import (
	"fmt"

	"exadla/internal/blas"
	"exadla/internal/sched"
)

// Matrix is an M×N matrix stored as a grid of NB×NB column-major tiles.
// Boundary tiles are trimmed to the remaining rows/columns.
type Matrix[T blas.Float] struct {
	// M and N are the global matrix dimensions.
	M, N int
	// NB is the tile size.
	NB int
	// MT and NT are the number of tile rows and tile columns.
	MT, NT int

	tiles [][]T
	id    *int // unique identity for scheduler handles
}

// Handle identifies one tile of one matrix for dependence tracking.
type Handle struct {
	mat  *int
	i, j int
}

var _ sched.Handle = Handle{}

// Coords returns the tile-grid coordinates the handle names, for placement
// and communication analyses.
func (h Handle) Coords() (i, j int) { return h.i, h.j }

// New allocates an M×N tiled matrix with tile size nb, zero-initialized.
func New[T blas.Float](m, n, nb int) *Matrix[T] {
	if m < 0 || n < 0 || nb < 1 {
		panic(fmt.Sprintf("tile: invalid dimensions %d×%d nb=%d", m, n, nb))
	}
	mt := (m + nb - 1) / nb
	nt := (n + nb - 1) / nb
	if mt == 0 {
		mt = 1
	}
	if nt == 0 {
		nt = 1
	}
	a := &Matrix[T]{M: m, N: n, NB: nb, MT: mt, NT: nt, id: new(int)}
	a.tiles = make([][]T, mt*nt)
	for j := 0; j < nt; j++ {
		for i := 0; i < mt; i++ {
			a.tiles[i+j*mt] = make([]T, a.TileRows(i)*a.TileCols(j))
		}
	}
	return a
}

// TileRows returns the row count of tiles in tile-row i.
func (a *Matrix[T]) TileRows(i int) int {
	if i < 0 || i >= a.MT {
		panic("tile: tile row out of range")
	}
	if r := a.M - i*a.NB; r < a.NB {
		return max(r, 0)
	}
	return a.NB
}

// TileCols returns the column count of tiles in tile-column j.
func (a *Matrix[T]) TileCols(j int) int {
	if j < 0 || j >= a.NT {
		panic("tile: tile column out of range")
	}
	if c := a.N - j*a.NB; c < a.NB {
		return max(c, 0)
	}
	return a.NB
}

// Tile returns the backing slice of tile (i, j), column-major with leading
// dimension TileRows(i).
func (a *Matrix[T]) Tile(i, j int) []T {
	return a.tiles[i+j*a.MT]
}

// SetTile replaces the backing slice of tile (i, j). The slice must have
// exactly TileRows(i)·TileCols(j) elements. It is used by fault-recovery
// code that swaps in reconstructed tiles.
func (a *Matrix[T]) SetTile(i, j int, data []T) {
	if len(data) != a.TileRows(i)*a.TileCols(j) {
		panic("tile: SetTile size mismatch")
	}
	a.tiles[i+j*a.MT] = data
}

// Handle returns the scheduler handle naming tile (i, j).
func (a *Matrix[T]) Handle(i, j int) Handle {
	if i < 0 || i >= a.MT || j < 0 || j >= a.NT {
		panic("tile: handle out of range")
	}
	return Handle{mat: a.id, i: i, j: j}
}

// At returns element (i, j) in global coordinates. It is intended for tests
// and small drivers, not inner loops.
func (a *Matrix[T]) At(i, j int) T {
	ti, tj := i/a.NB, j/a.NB
	ii, jj := i%a.NB, j%a.NB
	return a.Tile(ti, tj)[ii+jj*a.TileRows(ti)]
}

// Set assigns element (i, j) in global coordinates.
func (a *Matrix[T]) Set(i, j int, v T) {
	ti, tj := i/a.NB, j/a.NB
	ii, jj := i%a.NB, j%a.NB
	a.Tile(ti, tj)[ii+jj*a.TileRows(ti)] = v
}

// FromColMajor converts an m×n column-major matrix with leading dimension
// lda into tiled layout with tile size nb.
func FromColMajor[T blas.Float](m, n int, src []T, lda, nb int) *Matrix[T] {
	start := convertStart()
	defer func() { convertDone(start, int64(m)*int64(n)) }()
	a := New[T](m, n, nb)
	for tj := 0; tj < a.NT; tj++ {
		tc := a.TileCols(tj)
		for ti := 0; ti < a.MT; ti++ {
			tr := a.TileRows(ti)
			dst := a.Tile(ti, tj)
			for jj := 0; jj < tc; jj++ {
				srcOff := (ti * a.NB) + (tj*a.NB+jj)*lda
				copy(dst[jj*tr:jj*tr+tr], src[srcOff:srcOff+tr])
			}
		}
	}
	return a
}

// ToColMajor converts the tiled matrix back to column-major with leading
// dimension m.
func (a *Matrix[T]) ToColMajor() []T {
	start := convertStart()
	defer func() { convertDone(start, int64(a.M)*int64(a.N)) }()
	out := make([]T, a.M*a.N)
	for tj := 0; tj < a.NT; tj++ {
		tc := a.TileCols(tj)
		for ti := 0; ti < a.MT; ti++ {
			tr := a.TileRows(ti)
			src := a.Tile(ti, tj)
			for jj := 0; jj < tc; jj++ {
				dstOff := (ti * a.NB) + (tj*a.NB+jj)*a.M
				copy(out[dstOff:dstOff+tr], src[jj*tr:jj*tr+tr])
			}
		}
	}
	return out
}

// Clone returns a deep copy sharing no storage with a (its handles are
// distinct from a's: the copy is a different datum).
func (a *Matrix[T]) Clone() *Matrix[T] {
	b := New[T](a.M, a.N, a.NB)
	for idx, t := range a.tiles {
		copy(b.tiles[idx], t)
	}
	return b
}

// Convert returns a copy of the matrix in the other precision.
func Convert[D, S blas.Float](a *Matrix[S]) *Matrix[D] {
	b := New[D](a.M, a.N, a.NB)
	for idx, t := range a.tiles {
		dst := b.tiles[idx]
		for k, v := range t {
			dst[k] = D(v)
		}
	}
	return b
}
