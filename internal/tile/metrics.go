package tile

import (
	"time"

	"exadla/internal/metrics"
)

// Layout-conversion accounting in the default metrics registry:
//
//	tile.convert_ns     — wall time spent converting between column-major
//	                      and tiled layout (FromColMajor + ToColMajor)
//	tile.convert_elems  — elements moved by those conversions
//
// Conversions sit outside the task DAG, so their cost is pure overhead
// relative to an application that keeps data tiled end to end; the ratio of
// tile.convert_ns to scheduler busy time shows how much a benchmark pays
// for the legacy interface.
var (
	convertNs    = metrics.Default().Counter("tile.convert_ns")
	convertElems = metrics.Default().Counter("tile.convert_elems")
)

// convertDone records one finished layout conversion of elems elements
// started at start (zero start means metrics were disabled at entry).
func convertDone(start time.Time, elems int64) {
	if start.IsZero() {
		return
	}
	convertNs.Add(time.Since(start).Nanoseconds())
	convertElems.Add(elems)
}

// convertStart returns the conversion start time, or the zero time when
// metrics are disabled so the exit path is free.
func convertStart() time.Time {
	if !metrics.Enabled() {
		return time.Time{}
	}
	return time.Now()
}
