package dist

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"exadla/internal/ft"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

// RunWorker is the stateless half of the runtime: a pull loop that holds
// no durable state the job cannot lose. Everything it knows — its id, its
// grid slot, its tile cache — is reconstructable by re-registering, which
// is exactly what it does when the coordinator declares it dead. The fault
// hooks (KillAfter, HangAfter, Chaos) are the process-level mirror of
// sched.WithHardChaos: deterministic, seeded, and aimed at the protocol's
// weakest moments (after a lease is granted, before a commit lands).

// ErrKilled is returned by RunWorker when its KillAfter fault hook fired
// in-process (ExitOnKill=false): the worker vanishes mid-lease without a
// goodbye, leaving the coordinator to notice via heartbeat silence.
var ErrKilled = errors.New("dist: worker killed by fault injection")

// WorkerOptions configures one worker process (or goroutine, in tests).
type WorkerOptions struct {
	// Chaos injects seeded wire faults into every RPC this worker makes.
	Chaos NetChaos
	// KillAfter kills the worker upon being granted its Nth task (1-based):
	// the lease is granted and lost, exercising deadline reaping. With
	// ExitOnKill the whole process exits 137 (SIGKILL's exit code, for the
	// multi-process tests); otherwise RunWorker stops heartbeating and
	// returns ErrKilled (the in-process simulation).
	KillAfter  int
	ExitOnKill bool
	// HangAfter hangs the worker for HangFor upon its Nth granted task,
	// with heartbeats still flowing — the hung-but-alive case. The lease
	// expires, the task is re-run elsewhere, and this worker's late commit
	// must be rejected.
	HangAfter int
	HangFor   time.Duration
	// SlowFactor > 1 makes this worker a straggler: every task attempt is
	// padded to SlowFactor times its measured duration (a 10× worker spends
	// 10× the wall-clock per task — fetch, decode, and compute alike, as a
	// throttled CPU would). The speculation experiments' knob.
	SlowFactor float64
	// RejoinWindow bounds how long a worker that lost the coordinator (every
	// call failing — e.g. a partition silencing its traffic) keeps retrying
	// to re-register before giving up. Zero disables retrying, except that a
	// configured partition window (Chaos.PartitionFor) implies a window long
	// enough to outlive the partition — a flapping node exists to come back.
	RejoinWindow time.Duration
	// Trace, when non-nil, receives a local mirror of every span this
	// worker records (worker-local clock). Spans ship to the coordinator's
	// merged cluster trace regardless.
	Trace *trace.Log
	// Logf, when non-nil, receives progress and fault events.
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// worker is one registration's state: identity, geometry, and tile cache.
type worker struct {
	cl   *client
	opt  *WorkerOptions
	id   int
	slot int
	op   string
	a    *tile.Matrix[float64] // local tile cache
	ver  map[coord]int         // cached version per tile (missing = none)
	home map[coord]bool        // tiles scattered to this worker's slot
	// cacheRemote caches fetched remote tiles by version; off under strict
	// placement so every remote read is a measured fetch (the cost-model
	// contract).
	cacheRemote bool
	pollMS      int
	hbStop      chan struct{}
	leased      int // tasks granted so far, drives KillAfter/HangAfter
	sh          *spanShipper
	// cur is the task attempt being executed, annotating fetch spans.
	cur struct {
		id, attempt int
		name        string
	}
}

// RunWorker joins the coordinator at addr and works until the job is done
// (nil), the process is killed (ErrKilled / os.Exit), or the coordinator
// becomes unreachable (error). It re-registers automatically after an
// eviction, so a worker that was merely slow rejoins the fleet with a
// fresh identity and cache.
// rejoinRetryEvery paces re-registration attempts inside the rejoin window.
const rejoinRetryEvery = 50 * time.Millisecond

func RunWorker(addr string, opt WorkerOptions) error {
	window := opt.RejoinWindow
	if window <= 0 && opt.Chaos.PartitionFor > 0 {
		window = opt.Chaos.PartitionAfter + 2*opt.Chaos.PartitionFor + 5*time.Second
	}
	rejoinUntil := time.Now().Add(window)
	cl, err := dial(addr, opt.Chaos)
	if err != nil {
		return err
	}
	defer cl.close()
	sh := newSpanShipper(opt.Trace)
	cl.onChaos = func(kind string) {
		switch {
		case strings.HasPrefix(kind, "partition"):
			sh.instant(trace.PhasePartition, kind)
		case strings.HasPrefix(kind, "corrupt"):
			sh.instant(trace.PhaseCorrupt, kind)
		default:
			sh.instant(trace.PhaseChaos, kind)
		}
	}
	leased := 0
	prev := -1 // previous identity, announced on rejoin
	for {
		w, err := register(cl, sh, &opt, prev)
		if err != nil {
			if window > 0 && time.Now().Before(rejoinUntil) {
				opt.logf("dist: register failed (%v), retrying within rejoin window", err)
				time.Sleep(rejoinRetryEvery)
				continue
			}
			return err
		}
		prev = w.id
		w.leased = leased
		err = w.loop()
		leased = w.leased
		w.stopHeartbeat()
		switch {
		case errors.Is(err, ErrEvicted):
			opt.logf("dist: worker %d evicted, re-registering", w.id)
			continue
		case err != nil && !errors.Is(err, ErrKilled) &&
			window > 0 && time.Now().Before(rejoinUntil):
			// Transport failure — e.g. a partition silencing every call until
			// retries ran dry. The flapping-node path: keep trying to rejoin
			// under a fresh identity until the window closes.
			opt.logf("dist: worker %d lost the coordinator (%v), rejoining", w.id, err)
			time.Sleep(rejoinRetryEvery)
			continue
		}
		return err
	}
}

// register announces the worker, builds its cache, and prefetches its home
// tiles under strict placement.
func register(cl *client, sh *spanShipper, opt *WorkerOptions, prev int) (*worker, error) {
	var rep RegisterReply
	t0 := time.Now().UnixNano()
	if err := cl.call("Register", &RegisterArgs{Rejoin: prev >= 0, PrevWorker: prev}, &rep); err != nil {
		return nil, err
	}
	sh.sample(rep.CoordNS, t0, time.Now().UnixNano())
	sh.setWorker(rep.Worker)
	w := &worker{
		cl: cl, opt: opt,
		id: rep.Worker, slot: rep.Slot, op: rep.Op,
		a:           tile.New[float64](rep.M, rep.N, rep.NB),
		ver:         map[coord]int{},
		home:        map[coord]bool{},
		cacheRemote: rep.CacheRemote,
		pollMS:      rep.PollMS,
		hbStop:      make(chan struct{}),
		sh:          sh,
	}
	w.cur.id = -1
	for _, c := range rep.Scatter {
		w.home[coord(c)] = true
		if err := w.fetch(coord(c), true); err != nil {
			return nil, err
		}
	}
	opt.logf("dist: worker %d registered (slot %d, %d home tiles)", w.id, w.slot, len(rep.Scatter))
	hb := time.Duration(rep.HeartbeatMS) * time.Millisecond
	go w.heartbeat(hb)
	return w, nil
}

func (w *worker) heartbeat(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.hbStop:
			return
		case <-t.C:
			spans, base, off, rtt, hasOff := w.sh.batch(shipBatch)
			args := &HeartbeatArgs{Worker: w.id, Spans: spans, SpanBase: base,
				OffsetNS: off, RTTNS: rtt, HasOffset: hasOff}
			var rep HeartbeatReply
			t0 := time.Now().UnixNano()
			// Errors and evictions surface on the next Lease; the beat loop
			// just keeps trying (unacked spans re-ship next beat).
			if err := w.cl.call("Heartbeat", args, &rep); err == nil {
				w.sh.sample(rep.CoordNS, t0, time.Now().UnixNano())
				w.sh.ack(len(spans))
			}
		}
	}
}

func (w *worker) stopHeartbeat() {
	select {
	case <-w.hbStop:
	default:
		close(w.hbStop)
	}
}

// fetch pulls one tile into the cache, recording a fetch span attributed
// to the current task attempt (or to the scatter prefetch, id -1). The
// payload is verified against the CRC the store keeps at rest; a mismatch
// means the wire corrupted it in flight, and the fetch simply re-asks — the
// corrupt bytes never reach the cache, let alone a kernel.
func (w *worker) fetch(c coord, scatter bool) error {
	for {
		var rep GetReply
		t0 := time.Now().UnixNano()
		if err := w.cl.call("Get", &GetArgs{Worker: w.id, I: c[0], J: c[1], Scatter: scatter}, &rep); err != nil {
			return err
		}
		ws := WireSpan{
			ID: w.cur.id, Name: w.cur.name, Attempt: w.cur.attempt,
			Phase: trace.PhaseFetch, StartNS: t0, EndNS: time.Now().UnixNano(),
			Bytes: int64(8 * len(rep.Data)), TileI: c[0], TileJ: c[1], HasTile: true,
		}
		if scatter {
			ws.ID, ws.Name, ws.Attempt = -1, "scatter", 1
		}
		w.sh.add(ws)
		t := w.a.Tile(c[0], c[1])
		if len(rep.Data) != len(t) {
			return fmt.Errorf("dist: tile (%d,%d) fetch returned %d words, want %d", c[0], c[1], len(rep.Data), len(t))
		}
		if ft.CRC64(rep.Data) != rep.CRC {
			w.cl.countDetected()
			w.sh.instant(trace.PhaseCorrupt, fmt.Sprintf("get (%d,%d) failed CRC, refetching", c[0], c[1]))
			w.opt.logf("dist: worker %d refetching tile (%d,%d): payload failed CRC", w.id, c[0], c[1])
			continue
		}
		copy(t, rep.Data)
		w.ver[c] = rep.Ver
		return nil
	}
}

// ensure makes every operand tile current in the cache before the kernel
// runs. Home tiles are trusted at matching versions; remote tiles are
// refetched per task unless the coordinator allowed remote caching.
func (w *worker) ensure(ops []coord, vers []int) error {
	for k, c := range ops {
		have, cached := w.ver[c]
		if cached && have == vers[k] && (w.home[c] || w.cacheRemote) {
			continue
		}
		if err := w.fetch(c, false); err != nil {
			return err
		}
	}
	return nil
}

// loop is one registration's pull loop; it returns nil when the job is
// done, ErrEvicted to re-register, or a fatal error.
func (w *worker) loop() error {
	for {
		ci, cd := w.cl.takeCorrupts()
		var rep LeaseReply
		if err := w.cl.call("Lease", &LeaseArgs{Worker: w.id, RPCRetries: w.cl.takeRetries(),
			CorruptsInjected: ci, CorruptsDetected: cd}, &rep); err != nil {
			return err
		}
		switch {
		case rep.Evicted:
			return ErrEvicted
		case rep.Done:
			spans, base, off, rtt, hasOff := w.sh.batch(0) // flush everything
			bci, bcd := w.cl.takeCorrupts()
			var bye ByeReply
			if err := w.cl.call("Bye", &ByeArgs{Worker: w.id, Spans: spans,
				SpanBase: base, OffsetNS: off, RTTNS: rtt, HasOffset: hasOff,
				CorruptsInjected: bci, CorruptsDetected: bcd}, &bye); err == nil {
				w.sh.ack(len(spans))
			}
			return nil
		case rep.Task == nil:
			ms := rep.PollMS
			if ms < 1 {
				ms = w.pollMS
			}
			time.Sleep(time.Duration(ms) * time.Millisecond)
			continue
		}
		w.leased++
		if w.opt.KillAfter > 0 && w.leased == w.opt.KillAfter {
			if w.opt.ExitOnKill {
				os.Exit(137)
			}
			w.opt.logf("dist: worker %d dying mid-lease (task %d)", w.id, rep.Task.ID)
			w.stopHeartbeat()
			return ErrKilled
		}
		if w.opt.HangAfter > 0 && w.leased == w.opt.HangAfter {
			w.opt.logf("dist: worker %d hanging %v on task %d", w.id, w.opt.HangFor, rep.Task.ID)
			time.Sleep(w.opt.HangFor)
		}
		if err := w.execute(rep.Task, rep.Token, rep.Vers, rep.Attempt); err != nil {
			return err
		}
	}
}

// execute runs one leased task: fetch operands, apply the kernel on the
// cache, commit the written tiles. A rejected commit (this worker was
// reaped or the task re-ran elsewhere) invalidates the written cache
// entries — the kernel may have computed on a stale snapshot — and the
// loop simply pulls the next task. Every leg is recorded as a span: the
// whole attempt, each operand fetch (inside ensure), the kernel compute,
// and one commit span per shipped tile sharing the commit RPC's interval.
func (w *worker) execute(t *TaskSpec, token int64, vers []int, attempt int) error {
	if attempt < 1 {
		attempt = 1
	}
	w.cur.id, w.cur.attempt, w.cur.name = t.ID, attempt, t.Kind
	defer func() { w.cur.id, w.cur.attempt, w.cur.name = -1, 0, "" }()
	whole := WireSpan{ID: t.ID, Name: t.Kind, Attempt: attempt, StartNS: time.Now().UnixNano()}
	reads, writes := accesses(w.op, t)
	ops := append(append([]coord{}, reads...), writes...)
	if len(vers) != len(ops) {
		return fmt.Errorf("dist: lease for task %d carries %d versions for %d operands", t.ID, len(vers), len(ops))
	}
	if err := w.ensure(ops, vers); err != nil {
		return err
	}
	args := &CommitArgs{Worker: w.id, Task: t.ID, Token: token}
	compStart := time.Now().UnixNano()
	kerr := applyKernel(w.op, t, w.a)
	if kerr == nil && w.opt.SlowFactor > 1 {
		// Straggler injection: pad the whole attempt so far (fetch, decode,
		// compute) to SlowFactor× its measured duration — a throttled CPU
		// slows serialization every bit as much as it slows kernels.
		time.Sleep(time.Duration(float64(time.Now().UnixNano()-whole.StartNS) * (w.opt.SlowFactor - 1)))
	}
	w.sh.add(WireSpan{ID: t.ID, Name: t.Kind, Attempt: attempt,
		Phase: trace.PhaseCompute, StartNS: compStart, EndNS: time.Now().UnixNano()})
	if kerr != nil {
		args.Err = kerr.Error()
		for _, c := range writes {
			delete(w.ver, c) // the failed kernel may have half-written them
		}
	} else {
		for _, c := range writes {
			// The kernel rewrote these cache tiles; until the commit is
			// accepted with fresh store versions they match no known version
			// (an acknowledged-but-unapplied stale commit must not leave them
			// looking current).
			delete(w.ver, c)
			tl := w.a.Tile(c[0], c[1])
			data := make([]float64, len(tl))
			copy(data, tl)
			args.Tiles = append(args.Tiles, TilePayload{I: c[0], J: c[1], Data: data, CRC: ft.CRC64(data)})
		}
	}
	commitStart := time.Now().UnixNano()
	var rep CommitReply
	rpcErr := w.cl.call("Commit", args, &rep)
	for rpcErr == nil && rep.BadPayload {
		// The coordinator rejected the payload as corrupt-in-flight. The
		// lease is still ours and the cached bytes are fine — resend them.
		w.sh.instant(trace.PhaseCorrupt, fmt.Sprintf("commit of task %d failed CRC at coordinator, resending", t.ID))
		w.opt.logf("dist: worker %d resending commit of task %d after CRC reject", w.id, t.ID)
		rep = CommitReply{}
		rpcErr = w.cl.call("Commit", args, &rep)
	}
	commitEnd := time.Now().UnixNano()
	for _, p := range args.Tiles {
		w.sh.add(WireSpan{ID: t.ID, Name: t.Kind, Attempt: attempt,
			Phase: trace.PhaseCommit, StartNS: commitStart, EndNS: commitEnd,
			Bytes: int64(8 * len(p.Data)), TileI: p.I, TileJ: p.J, HasTile: true})
	}
	whole.EndNS = commitEnd
	switch {
	case rpcErr != nil:
		whole.Outcome, whole.Err = int(sched.OutcomeFailed), rpcErr.Error()
	case kerr != nil:
		whole.Outcome, whole.Err = int(sched.OutcomeFailed), kerr.Error()
	case rep.Evicted || !rep.Accepted || rep.Duplicate:
		// The result was discarded (reaped straggler / eviction / losing twin
		// of a speculative race): the task ran or runs again elsewhere, which
		// is what Retried means. Exactly one attempt per task records OK.
		whole.Outcome = int(sched.OutcomeRetried)
	default:
		whole.Outcome = int(sched.OutcomeOK)
	}
	w.sh.add(whole)
	if rpcErr != nil {
		return rpcErr
	}
	if rep.Evicted {
		return ErrEvicted
	}
	if !rep.Accepted || rep.Duplicate {
		// Not applied: the written cache entries stay invalidated.
		return nil
	}
	for k, p := range args.Tiles {
		if k < len(rep.Vers) {
			w.ver[coord{p.I, p.J}] = rep.Vers[k]
		}
	}
	return nil
}
