package dist

import (
	"math/rand"
	"sync"
	"time"
)

// NetChaos is the wire-level fault injector, the network sibling of
// sched.WithChaos (in-task transient errors) and WithHardChaos (worker
// death). It sits inside the worker's RPC client and, per call, draws a
// seeded fate: drop the request before it leaves (the coordinator never
// sees it), drop the reply after the server executed (forcing a retry of a
// call whose effects already happened — the at-least-once case that proves
// handler idempotency), delay the call, or duplicate it. Probabilities are
// independent; the seed makes every run's fault sequence reproducible, so
// a chaos test that passes once passes always.
//
// The zero value injects nothing. NetChaos is pure configuration and
// freely copyable; the RNG state lives in the chaosDice the RPC client
// builds from it.
type NetChaos struct {
	// DropSend is the probability the request is never transmitted.
	DropSend float64
	// DropReply is the probability the reply is discarded after the server
	// has fully executed the call.
	DropReply float64
	// Dup is the probability the call is transmitted twice back-to-back.
	Dup float64
	// Delay is the probability the call is delayed by MaxDelay.
	Delay float64
	// MaxDelay is the injected latency for delayed calls.
	MaxDelay time.Duration
	// Seed makes the fault sequence deterministic; 0 means seed 1.
	Seed int64
}

// enabled reports whether any fault has a non-zero probability.
func (c NetChaos) enabled() bool {
	return c.DropSend > 0 || c.DropReply > 0 || c.Dup > 0 || c.Delay > 0
}

// chaosDice is the seeded per-client fault source.
type chaosDice struct {
	cfg NetChaos
	mu  sync.Mutex
	rng *rand.Rand
}

func newChaosDice(cfg NetChaos) *chaosDice {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &chaosDice{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// fate is one call's drawn outcome.
type fate struct {
	dropSend  bool
	dropReply bool
	duplicate bool
	delay     time.Duration
}

// draw rolls the per-call dice. Safe for concurrent use.
func (d *chaosDice) draw() fate {
	if d == nil || !d.cfg.enabled() {
		return fate{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var f fate
	if d.rng.Float64() < d.cfg.DropSend {
		f.dropSend = true
	}
	if d.rng.Float64() < d.cfg.DropReply {
		f.dropReply = true
	}
	if d.rng.Float64() < d.cfg.Dup {
		f.duplicate = true
	}
	if d.rng.Float64() < d.cfg.Delay {
		f.delay = d.cfg.MaxDelay
	}
	return f
}
