package dist

import (
	"math/rand"
	"sync"
	"time"
)

// NetChaos is the wire-level fault injector, the network sibling of
// sched.WithChaos (in-task transient errors) and WithHardChaos (worker
// death). It sits inside the worker's RPC client and, per call, draws a
// seeded fate: drop the request before it leaves (the coordinator never
// sees it), drop the reply after the server executed (forcing a retry of a
// call whose effects already happened — the at-least-once case that proves
// handler idempotency), delay the call, duplicate it, or flip a payload bit
// (the lying-node case the CRC64 integrity layer exists to catch).
// Probabilities are independent; the seed makes every run's fault sequence
// reproducible, so a chaos test that passes once passes always.
//
// On top of the per-call dice there is one time-based fault: a partition
// window. From PartitionAfter after the client dialed, for PartitionFor,
// every call is dropped before transmission — heartbeats included — so the
// coordinator sees total silence, evicts the worker, and the worker must
// rejoin when the window closes (the flapping-node case).
//
// The zero value injects nothing. NetChaos is pure configuration and
// freely copyable; the RNG state lives in the chaosDice the RPC client
// builds from it.
type NetChaos struct {
	// DropSend is the probability the request is never transmitted.
	DropSend float64
	// DropReply is the probability the reply is discarded after the server
	// has fully executed the call.
	DropReply float64
	// Dup is the probability the call is transmitted twice back-to-back.
	Dup float64
	// Delay is the probability the call is delayed by MaxDelay.
	Delay float64
	// MaxDelay is the injected latency for delayed calls.
	MaxDelay time.Duration
	// Corrupt is the probability a data-bearing payload (a Get reply or a
	// Commit body) has one random bit flipped in flight. The CRC travels
	// untouched — corruption lies about the data, not about the check.
	Corrupt float64
	// PartitionAfter/PartitionFor define the partition window: starting
	// PartitionAfter after the client connects, every call is silently
	// dropped for PartitionFor. Zero PartitionFor disables the window.
	PartitionAfter time.Duration
	PartitionFor   time.Duration
	// Seed makes the fault sequence deterministic; 0 means seed 1.
	Seed int64
}

// enabled reports whether any fault has a non-zero probability.
func (c NetChaos) enabled() bool {
	return c.DropSend > 0 || c.DropReply > 0 || c.Dup > 0 || c.Delay > 0 ||
		c.Corrupt > 0 || c.PartitionFor > 0
}

// chaosDice is the seeded per-client fault source.
type chaosDice struct {
	cfg   NetChaos
	birth time.Time
	mu    sync.Mutex
	rng   *rand.Rand
	// inPartition tracks the window state between draws so the start/end
	// transitions are reported exactly once each.
	inPartition bool
}

func newChaosDice(cfg NetChaos) *chaosDice {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &chaosDice{cfg: cfg, birth: time.Now(), rng: rand.New(rand.NewSource(seed))}
}

// fate is one call's drawn outcome.
type fate struct {
	dropSend  bool
	dropReply bool
	duplicate bool
	delay     time.Duration
	// corrupt flips one payload bit; corruptElem/corruptBit are the raw
	// random draws the injector reduces onto the payload's actual length.
	corrupt     bool
	corruptElem uint64
	corruptBit  uint
	// partitioned silences this call entirely; partitionStart/End flag the
	// window transitions (each reported once) for span recording.
	partitioned    bool
	partitionStart bool
	partitionEnd   bool
}

// draw rolls the per-call dice. Safe for concurrent use.
func (d *chaosDice) draw() fate {
	if d == nil || !d.cfg.enabled() {
		return fate{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var f fate
	if d.cfg.PartitionFor > 0 {
		since := time.Since(d.birth)
		in := since >= d.cfg.PartitionAfter && since < d.cfg.PartitionAfter+d.cfg.PartitionFor
		if in && !d.inPartition {
			f.partitionStart = true
		}
		if !in && d.inPartition {
			f.partitionEnd = true
		}
		d.inPartition = in
		if in {
			f.partitioned = true
			f.dropSend = true
		}
	}
	if d.rng.Float64() < d.cfg.DropSend {
		f.dropSend = true
	}
	if d.rng.Float64() < d.cfg.DropReply {
		f.dropReply = true
	}
	if d.rng.Float64() < d.cfg.Dup {
		f.duplicate = true
	}
	if d.rng.Float64() < d.cfg.Delay {
		f.delay = d.cfg.MaxDelay
	}
	if d.cfg.Corrupt > 0 && d.rng.Float64() < d.cfg.Corrupt {
		f.corrupt = true
		f.corruptElem = d.rng.Uint64()
		f.corruptBit = uint(d.rng.Intn(64))
	}
	return f
}
