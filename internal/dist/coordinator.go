package dist

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exadla/internal/ckpt"
	"exadla/internal/ft"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/tile"
	"exadla/internal/trace"
)

// The Coordinator is the stateful half of the disaggregated runtime: it
// owns the task DAG (a sched.Frontier), the tile object store, the lease
// table, and the worker registry. Workers own nothing durable — they pull
// a lease, fetch operands, compute, and ship the result back — so any
// worker can die at any point and the only thing lost is time:
//
//   - a task leased to a dead or hung worker is reaped when its lease
//     deadline passes and re-leased elsewhere (capped by nothing: tasks
//     retry until the job finishes or fails deterministically);
//   - a straggler that finally commits after being reaped presents a stale
//     lease token and is rejected, so duplicated work never double-writes;
//   - tiles whose only copy lived on a dead worker (write-back residency)
//     are reconstructed from XOR parity, not recomputed;
//   - if the live worker count falls below the configured minimum the
//     coordinator degrades to executing ready tasks itself — the job never
//     deadlocks, it just stops being distributed;
//   - with checkpointing enabled, leases are gated to a step window and a
//     snapshot is cut at each window boundary, so a killed coordinator
//     resumes from the last window bitwise-identically.
//
// Locking is deliberately coarse: one mutex guards the frontier, heaps,
// leases, workers, and store maps, and every RPC handler takes it. Tile
// *data* is written only under that mutex (commit copies, local kernels,
// snapshots), and the DAG guarantees in-flight tasks touch disjoint tiles,
// so workers compute outside any lock while the coordinator stays simple
// enough to reason about under chaos.

// ErrAborted is returned by Run when the coordinator was told to abort
// after a checkpoint (the AbortAtStep test hook — the moral equivalent of
// kill -9 on the coordinator, minus the inconvenience).
var ErrAborted = errors.New("dist: coordinator aborted after checkpoint")

// scrubTilesPerPass bounds how many tiles one background scrub pass
// re-verifies, keeping each pass short under the coordinator lock.
const scrubTilesPerPass = 32

// Options configures a distributed run.
type Options struct {
	// Op is the factorization: OpCholesky or OpLUNoPiv.
	Op string
	// A is the matrix to factor in place (tile layout). Ignored when Resume
	// finds a checkpoint.
	A *tile.Matrix[float64]
	// GridP×GridQ is the process grid for block-cyclic placement (default
	// 1×1). Grid slots beyond the worker count just sit vacant.
	GridP, GridQ int
	// Strict pins each task to its output tile's block-cyclic home slot
	// (owner computes), and workers cache only home tiles — the placement
	// discipline under which measured traffic must equal the Count replay
	// model. Off, any worker runs any ready task and caches everything.
	Strict bool
	// WriteBack enables erasure write-back residency: finalized tiles may
	// be dropped from the store (the committing worker holds the only
	// copy), at most one per tile row, and are reconstructed from XOR
	// parity on demand or on worker death.
	WriteBack bool
	// MinWorkers is the degradation threshold: when fewer workers are live
	// the coordinator executes ready tasks locally (min 1 — with zero live
	// workers it always eventually makes progress itself).
	MinWorkers int
	// WaitWorkers delays all leasing until that many workers have joined —
	// a start barrier for controlled experiments (do not combine with
	// worker kills below MinWorkers).
	WaitWorkers int
	// Lease is how long a worker holds a task before it is reaped;
	// DeadAfter is the heartbeat silence after which a worker is declared
	// dead; LocalDelay is how long a coordinator that has never seen a
	// worker waits before going local.
	Lease, DeadAfter, LocalDelay time.Duration
	// Poll is the idle re-poll interval handed to workers.
	Poll time.Duration
	// Speculate enables twin leases for stragglers: when a running lease's
	// age exceeds SpecFactor times the SpecQuantile of that kernel's
	// observed lease durations (after SpecMinSamples commits of the kind),
	// an otherwise-idle worker is handed a twin of the task. Whichever copy
	// commits first wins through the lease-token gate; the loser's payload
	// is acknowledged but discarded, so the result stays bitwise identical.
	// Ignored under Strict (twins would break owner-computes placement).
	Speculate      bool
	SpecQuantile   float64 // default 0.95
	SpecFactor     float64 // default 2.0
	SpecMinSamples int     // default 5
	// ScrubEvery enables the background at-rest scrub: each interval the
	// coordinator re-verifies a batch of stored tiles against their CRCs,
	// repairing detected rot from the row parity where possible. Zero
	// disables scrubbing (the read path still verifies on every Get).
	ScrubEvery time.Duration
	// CkptDir enables checkpointing into that directory; CkptEvery is the
	// window width in panel steps (default 1). AbortAtStep > 0 aborts the
	// run (ErrAborted) once the snapshot covering steps < AbortAtStep is
	// saved — the coordinator-death test hook. Resume loads the latest
	// checkpoint from CkptDir instead of starting from Options.A.
	CkptDir     string
	CkptEvery   int
	AbortAtStep int
	Resume      bool
	// Registry mirrors the run counters (nil disables mirroring).
	Registry *metrics.Registry
	// Events, when non-nil, receives structured fault events (evictions,
	// lease reaps, stale commits, shipped wire-chaos observations) as they
	// happen — the hook obs.DistLogger adapts onto slog. Called with the
	// coordinator lock held: the hook must not call back into the
	// coordinator.
	Events func(Event)
	// Logf, when non-nil, receives progress and fault events.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.GridP < 1 {
		o.GridP = 1
	}
	if o.GridQ < 1 {
		o.GridQ = 1
	}
	if o.Lease <= 0 {
		o.Lease = 2 * time.Second
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 1500 * time.Millisecond
	}
	if o.LocalDelay <= 0 {
		o.LocalDelay = 250 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 5 * time.Millisecond
	}
	if o.CkptEvery < 1 {
		o.CkptEvery = 1
	}
	if o.SpecQuantile <= 0 || o.SpecQuantile >= 1 {
		o.SpecQuantile = 0.95
	}
	if o.SpecFactor <= 0 {
		o.SpecFactor = 2.0
	}
	if o.SpecMinSamples < 1 {
		o.SpecMinSamples = 5
	}
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// lease is one outstanding task assignment.
type lease struct {
	task     int
	worker   int
	token    int64
	deadline time.Time
	// granted is when the lease was handed out — the clock speculation
	// compares against the kernel's historical duration distribution.
	granted time.Time
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id       int
	slot     int
	lastBeat time.Time
	evicted  bool
	byed     bool
}

func (w *workerState) live() bool { return !w.evicted && !w.byed }

// heapItem orders ready tasks by descending priority, then plan order (the
// tiebreak keeps lease order deterministic given the same event sequence).
type heapItem struct{ id, prio int }

type taskHeap []heapItem

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(a, b int) bool {
	if h[a].prio != h[b].prio {
		return h[a].prio > h[b].prio
	}
	return h[a].id < h[b].id
}
func (h taskHeap) Swap(a, b int)        { h[a], h[b] = h[b], h[a] }
func (h *taskHeap) Push(x any)          { *h = append(*h, x.(heapItem)) }
func (h *taskHeap) Pop() any            { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h taskHeap) peek() heapItem       { return h[0] }
func (h *taskHeap) popItem() heapItem   { return heap.Pop(h).(heapItem) }
func (h *taskHeap) pushItem(i heapItem) { heap.Push(h, i) }

// Coordinator runs one distributed factorization. Create with
// NewCoordinator (which binds the listener, so workers can join
// immediately), then call Run.
type Coordinator struct {
	opt Options
	ln  net.Listener
	srv *rpc.Server

	mu         sync.Mutex
	a          *tile.Matrix[float64]
	st         *store
	pl         *plan
	fr         *sched.Frontier
	heaps      []taskHeap // per grid slot when Strict, else heaps[0]
	gated      []int      // ready tasks beyond the checkpoint window
	window     int        // only tasks with Step < window may be leased
	fromStep   int
	leases     map[int]*lease
	attempts   map[int]int
	workers    map[int]*workerState
	// Speculative execution: twins holds the second lease of each task
	// running twice, specQ the straggler tasks waiting for an idle worker
	// to twin them, and specPending marks queued tasks so the straggler
	// scan enqueues each at most once per twin generation. specHist feeds
	// per-kernel lease-duration histograms in specReg — a private,
	// always-on registry, so speculation has its signal even when the user
	// configured no Options.Registry.
	twins       map[int]*lease
	specQ       []int
	specPending map[int]bool
	specReg     *metrics.Registry
	specHist    map[string]*metrics.Histogram
	lastScrub   time.Time
	slots      []int // occupant worker id per grid slot, -1 vacant
	nextWorker int
	nextToken  int64
	everJoined bool
	// barrierMet latches once WaitWorkers workers were live simultaneously;
	// until then neither leasing nor local fallback may start (the barrier
	// exists to pin placement, e.g. for strict-mode byte accounting).
	barrierMet bool
	started    time.Time
	done       bool
	failErr    error

	// Cluster-trace state: the coordinator's trace epoch, its own events
	// (local execution spans, fault instants), the raw span shards shipped
	// by workers, the cumulative span count absorbed per shipper
	// (exactly-once absorption), and the best clock-offset/RTT sample per
	// shipper. All four maps are keyed by the shipper's lineage ROOT — the
	// registration id of the process's first identity — because a span
	// shipper (and its cumulative index and clock) lives for the worker
	// process, across evictions and rejoins. Keying by root keeps
	// absorption exactly-once even when a batch shipped under an old
	// identity races a re-registration.
	epoch    time.Time
	cevents  []trace.Event
	lineage  map[int]int
	shards   map[int][]WireSpan
	absorbed map[int]int64
	offs     map[int]int64
	offRTTs  map[int]int64
	evictLog []Eviction
	taskDeps [][]int

	stats RunStats
	m     *distMetrics
	wake  chan struct{}
}

// NewCoordinator binds a listener on addr (e.g. "127.0.0.1:0"), loads or
// plans the job, and starts serving registrations. Run drives it to
// completion.
func NewCoordinator(addr string, opt Options) (*Coordinator, error) {
	opt.defaults()
	c := &Coordinator{
		opt:         opt,
		leases:      map[int]*lease{},
		attempts:    map[int]int{},
		workers:     map[int]*workerState{},
		twins:       map[int]*lease{},
		specPending: map[int]bool{},
		specReg:     metrics.New(),
		specHist:    map[string]*metrics.Histogram{},
		wake:        make(chan struct{}, 1),
		epoch:       time.Now(),
		lineage:     map[int]int{},
		shards:      map[int][]WireSpan{},
		absorbed:    map[int]int64{},
		offs:        map[int]int64{},
		offRTTs:     map[int]int64{},
	}
	c.m = newDistMetrics(opt.Registry)

	a, fromStep, err := c.initialState()
	if err != nil {
		return nil, err
	}
	if a == nil {
		return nil, errors.New("dist: no matrix (Options.A nil and no checkpoint to resume)")
	}
	if a.M != a.N {
		return nil, fmt.Errorf("dist: need a square matrix, got %d×%d", a.M, a.N)
	}
	c.a = a
	c.fromStep = fromStep
	c.pl, err = makePlan(opt.Op, a.MT, a.NT, fromStep)
	if err != nil {
		return nil, err
	}
	c.taskDeps = buildTaskDeps(opt.Op, c.pl)
	c.st = newStore(a, opt.WriteBack, func() { c.addStat(&c.stats.TilesRebuilt, c.m.tilesRebuilt, 1) })
	// Store callbacks run under c.mu (the coordinator serializes all store
	// access), so recording fault instants here is safe.
	c.st.onRotDetect = func(i, j int) {
		c.addStat(&c.stats.AtRestDetected, c.m.atRestDetected, 1)
		c.faultLocked(trace.PhaseCorrupt, -1, -1, 0, fmt.Sprintf("at-rest rot in tile (%d,%d)", i, j))
		c.opt.logf("dist: at-rest rot detected in tile (%d,%d)", i, j)
	}
	c.st.onRotRepair = func(i, j int) {
		c.addStat(&c.stats.AtRestRepaired, c.m.atRestRepaired, 1)
		c.opt.logf("dist: tile (%d,%d) repaired from row parity", i, j)
	}

	nslots := 1
	if opt.Strict {
		nslots = opt.GridP * opt.GridQ
	}
	c.heaps = make([]taskHeap, nslots)
	c.slots = make([]int, opt.GridP*opt.GridQ)
	for i := range c.slots {
		c.slots[i] = -1
	}
	c.window = c.pl.steps
	if opt.CkptDir != "" {
		c.window = fromStep + opt.CkptEvery
		if c.window > c.pl.steps {
			c.window = c.pl.steps
		}
	}

	c.fr = sched.NewFrontier(func(id int) { c.readyLocked(id) })
	for i := range c.pl.tasks {
		t := &c.pl.tasks[i]
		r, w := accesses(opt.Op, t)
		c.fr.Add(t.ID, coordHandles(r), coordHandles(w))
	}
	if c.fr.Done() {
		// A resumed checkpoint can cover the whole factorization: the job is
		// born complete and Run only gathers the result.
		c.done = true
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	c.srv = rpc.NewServer()
	if err := c.srv.RegisterName(coordService, &coordRPC{c}); err != nil {
		ln.Close()
		return nil, err
	}
	go c.accept()
	return c, nil
}

// initialState picks the starting matrix and panel step: the latest
// checkpoint when resuming, Options.A otherwise.
func (c *Coordinator) initialState() (*tile.Matrix[float64], int, error) {
	if c.opt.Resume && c.opt.CkptDir != "" {
		snap, path, err := ckpt.Latest(c.opt.CkptDir)
		if err == nil {
			want := ckptOp(c.opt.Op)
			if snap.Op != want {
				return nil, 0, fmt.Errorf("dist: checkpoint %s is %v, want %v", path, snap.Op, want)
			}
			c.opt.logf("dist: resuming from %s (step %d)", path, snap.Step)
			return tile.FromColMajor(snap.M, snap.N, snap.Data, snap.M, snap.NB), snap.Step, nil
		}
		if !errors.Is(err, ckpt.ErrNoCheckpoint) {
			return nil, 0, err
		}
	}
	return c.opt.A, 0, nil
}

func ckptOp(op string) ckpt.Op {
	if op == OpLUNoPiv {
		return ckpt.OpLUNoPiv
	}
	return ckpt.OpCholesky
}

func coordHandles(cs []coord) []sched.Handle {
	hs := make([]sched.Handle, len(cs))
	for i, c := range cs {
		hs[i] = c
	}
	return hs
}

// Addr returns the listener's address for workers to join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Result returns the factored matrix (valid after Run returns nil).
func (c *Coordinator) Result() *tile.Matrix[float64] { return c.a }

// Stats returns the run's fault-and-traffic counters.
func (c *Coordinator) Stats() StatsSnapshot { return c.stats.Snapshot() }

func (c *Coordinator) addStat(a *atomic.Int64, m *metrics.Counter, d int64) {
	a.Add(d)
	m.Add(d)
}

// absorbCorruptsLocked lands a worker's piggybacked corruption ledger: how
// many payload corruptions its chaos layer injected and how many corrupt
// Get replies it detected and refetched.
func (c *Coordinator) absorbCorruptsLocked(injected, detected int64) {
	if injected > 0 {
		c.addStat(&c.stats.CorruptInjected, c.m.corruptInjected, injected)
	}
	if detected > 0 {
		c.addStat(&c.stats.CorruptGets, c.m.corruptGets, detected)
	}
}

// CorruptStoredTile flips one bit of tile (i,j)'s in-store bytes without
// touching its at-rest CRC — the rot-injection hook integrity tests use to
// exercise the scrub and the verified read path. It fails if the tile's
// bytes are not currently in the store (write-back residency).
func (c *Coordinator) CorruptStoredTile(i, j, elem int, bit uint) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= c.a.MT || j < 0 || j >= c.a.NT {
		return fmt.Errorf("dist: tile (%d,%d) out of range", i, j)
	}
	if w := c.st.resident[i][j]; w >= 0 {
		return fmt.Errorf("dist: tile (%d,%d) bytes are resident on worker %d, not in-store", i, j, w)
	}
	t := c.st.a.Tile(i, j)
	if len(t) == 0 {
		return fmt.Errorf("dist: tile (%d,%d) is empty", i, j)
	}
	e := ((elem % len(t)) + len(t)) % len(t)
	t[e] = math.Float64frombits(math.Float64bits(t[e]) ^ (1 << (bit % 64)))
	return nil
}

func (c *Coordinator) accept() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.srv.ServeConn(conn)
	}
}

func (c *Coordinator) signal() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// readyLocked routes a newly ready task to its heap, or parks it if its
// step lies beyond the current checkpoint window.
func (c *Coordinator) readyLocked(id int) {
	t := &c.pl.tasks[id]
	if t.Step >= c.window {
		c.gated = append(c.gated, id)
		return
	}
	c.pushReadyLocked(id)
}

func (c *Coordinator) pushReadyLocked(id int) {
	t := &c.pl.tasks[id]
	slot := 0
	if c.opt.Strict {
		slot = homeSlot(c.opt.Op, t, c.opt.GridP, c.opt.GridQ)
	}
	c.heaps[slot].pushItem(heapItem{id: id, prio: priority(c.opt.Op, t)})
}

// liveCountLocked counts registered, non-evicted, non-departed workers.
func (c *Coordinator) liveCountLocked() int {
	n := 0
	for _, w := range c.workers {
		if w.live() {
			n++
		}
	}
	return n
}

// pickTaskLocked selects the best ready task the asking worker may run:
// its own slot's heap first, then (Strict) heaps of vacant slots — work
// stealing confined to slots nobody owns, so measured traffic matches the
// owner-computes model whenever the grid is fully populated.
func (c *Coordinator) pickTaskLocked(w *workerState) (int, bool) {
	if !c.opt.Strict {
		if len(c.heaps[0]) == 0 {
			return 0, false
		}
		return c.heaps[0].popItem().id, true
	}
	best, bestHeap := heapItem{prio: -1, id: -1}, -1
	consider := func(s int) {
		h := c.heaps[s]
		if len(h) == 0 {
			return
		}
		it := h.peek()
		if bestHeap < 0 || it.prio > best.prio || (it.prio == best.prio && it.id < best.id) {
			best, bestHeap = it, s
		}
	}
	if w.slot >= 0 {
		consider(w.slot)
	}
	if bestHeap < 0 {
		for s := range c.heaps {
			if c.slots[s] == -1 {
				consider(s)
			}
		}
	}
	if bestHeap < 0 {
		return 0, false
	}
	return c.heaps[bestHeap].popItem().id, true
}

// completeLocked retires a finished task (committed remotely or executed
// locally) and advances the checkpoint window / completion state.
func (c *Coordinator) completeLocked(id int) error {
	c.fr.Complete(id)
	c.addStat(&c.stats.TasksCompleted, c.m.tasksCompleted, 1)
	if err := c.advanceWindowLocked(); err != nil {
		return err
	}
	if c.fr.Done() && !c.done {
		c.done = true
		c.signal()
	}
	return nil
}

// stepsDoneBelow reports whether every task with Step < s has completed.
func (c *Coordinator) stepsDoneBelowLocked(s int) bool {
	for i := range c.pl.tasks {
		t := &c.pl.tasks[i]
		if t.Step < s && !c.fr.Completed(t.ID) {
			return false
		}
	}
	return true
}

// advanceWindowLocked cuts a checkpoint each time every task below the
// window boundary has completed, then widens the window and releases gated
// tasks. With AbortAtStep set, the run aborts right after the covering
// snapshot is saved — simulating coordinator death at a restartable point.
func (c *Coordinator) advanceWindowLocked() error {
	if c.opt.CkptDir == "" || c.done {
		return nil
	}
	for c.window <= c.pl.steps && c.stepsDoneBelowLocked(c.window) {
		if err := c.snapshotLocked(c.window); err != nil {
			return err
		}
		if c.opt.AbortAtStep > 0 && c.window >= c.opt.AbortAtStep {
			c.failErr = ErrAborted
			c.done = true
			c.signal()
			return nil
		}
		if c.window == c.pl.steps {
			break
		}
		c.window += c.opt.CkptEvery
		if c.window > c.pl.steps {
			c.window = c.pl.steps
		}
		kept := c.gated[:0]
		for _, id := range c.gated {
			if c.pl.tasks[id].Step < c.window {
				c.pushReadyLocked(id)
			} else {
				kept = append(kept, id)
			}
		}
		c.gated = kept
	}
	return nil
}

// snapshotLocked persists a consistent checkpoint: all tasks below step
// have run, none at or above it have been leased (window gating), so the
// store is exactly the state between panel steps.
func (c *Coordinator) snapshotLocked(step int) error {
	if err := c.st.materialize(); err != nil {
		return err
	}
	_, err := ckpt.Save(c.opt.CkptDir, &ckpt.Checkpoint{
		Op:   ckptOp(c.opt.Op),
		Step: step,
		M:    c.a.M, N: c.a.N, NB: c.a.NB,
		Data: c.a.ToColMajor(),
	})
	if err != nil {
		return err
	}
	c.addStat(&c.stats.CheckpointsSaved, c.m.ckptsSaved, 1)
	c.opt.logf("dist: checkpoint at step %d", step)
	return nil
}

// failLocked records a deterministic job failure and releases everyone.
func (c *Coordinator) failLocked(err error) {
	if c.failErr == nil {
		c.failErr = err
	}
	c.done = true
	c.signal()
}

// revokeLeaseLocked releases a primary lease. If a speculative twin is
// still running it is promoted to primary — the task stays in flight on
// the healthy worker instead of being re-queued behind the whole frontier.
// Otherwise the task returns to the ready heap.
func (c *Coordinator) revokeLeaseLocked(l *lease) {
	delete(c.leases, l.task)
	c.addStat(&c.stats.LeasesExpired, c.m.leasesExpired, 1)
	if tw := c.twins[l.task]; tw != nil {
		c.leases[l.task] = tw
		delete(c.twins, l.task)
		c.opt.logf("dist: twin of task %d (worker %d) promoted to primary", l.task, tw.worker)
		return
	}
	c.pushReadyLocked(l.task)
}

// dropTwinsLocked discards every twin lease held by worker w (its work is
// speculative by definition — the primary still covers the task).
func (c *Coordinator) dropTwinsLocked(w *workerState) {
	for id, tw := range c.twins {
		if tw.worker == w.id {
			delete(c.twins, id)
			c.addStat(&c.stats.LeasesExpired, c.m.leasesExpired, 1)
		}
	}
}

// evictLocked declares a worker dead: frees its slot, revokes its leases,
// and reconstructs any tile it held the only copy of.
func (c *Coordinator) evictLocked(w *workerState, reason string) {
	if !w.live() {
		return
	}
	w.evicted = true
	c.addStat(&c.stats.WorkersLost, c.m.workersLost, 1)
	c.m.workersLive.Set(float64(c.liveCountLocked()))
	c.faultLocked(trace.PhaseEvicted, w.id, -1, 0, reason)
	c.evictLog = append(c.evictLog, Eviction{Worker: w.id, Reason: reason, AtMS: c.nowNS() / 1e6})
	if w.slot >= 0 {
		c.slots[w.slot] = -1
		w.slot = -1
	}
	var lost []*lease
	for _, l := range c.leases {
		if l.worker == w.id {
			lost = append(lost, l)
		}
	}
	for _, l := range lost {
		c.revokeLeaseLocked(l)
	}
	c.dropTwinsLocked(w)
	if _, err := c.st.dropWorker(w.id); err != nil {
		c.failLocked(err)
	}
	c.opt.logf("dist: worker %d lost (%s)", w.id, reason)
	c.signal()
}

// reapLocked enforces deadlines: leases past their deadline are revoked
// (hung worker — it may still be heartbeating, its eventual commit will be
// stale), and workers silent past DeadAfter are evicted wholesale.
func (c *Coordinator) reapLocked(now time.Time) {
	// Collect first: revocation can promote a twin back into c.leases, and
	// mutating a map mid-range may or may not surface the new entry.
	var expired []*lease
	for _, l := range c.leases {
		if now.After(l.deadline) {
			expired = append(expired, l)
		}
	}
	for _, l := range expired {
		c.opt.logf("dist: lease on task %d (worker %d) expired", l.task, l.worker)
		c.faultLocked(trace.PhaseReaped, l.worker, l.task, c.attempts[l.task], "lease deadline passed")
		c.revokeLeaseLocked(l)
	}
	for id, tw := range c.twins {
		if now.After(tw.deadline) {
			c.opt.logf("dist: twin lease on task %d (worker %d) expired", id, tw.worker)
			c.faultLocked(trace.PhaseReaped, tw.worker, id, c.attempts[id], "twin lease deadline passed")
			delete(c.twins, id)
			c.addStat(&c.stats.LeasesExpired, c.m.leasesExpired, 1)
		}
	}
	for _, w := range c.workers {
		if w.live() && now.Sub(w.lastBeat) > c.opt.DeadAfter {
			c.evictLocked(w, "heartbeat silence")
		}
	}
}

// speculateLocked scans outstanding leases for stragglers: a lease whose
// age exceeds SpecFactor × the SpecQuantile of its kernel's committed
// lease durations is queued for twinning by the next idle worker. Strict
// mode opts out — a twin runs on a foreign slot, which would falsify the
// owner-computes byte accounting.
func (c *Coordinator) speculateLocked(now time.Time) {
	if !c.opt.Speculate || c.opt.Strict || c.done || len(c.leases) == 0 {
		return
	}
	var snap metrics.Snapshot
	snapped := false
	thr := map[string]time.Duration{}
	var due []int
	for id, l := range c.leases {
		if c.specPending[id] || c.twins[id] != nil {
			continue
		}
		kind := c.pl.tasks[id].Kind
		d, ok := thr[kind]
		if !ok {
			if !snapped {
				snap = c.specReg.Snapshot()
				snapped = true
			}
			h := snap.Histograms["dist.lease."+kind+".ns"]
			if h.Count < int64(c.opt.SpecMinSamples) {
				// No per-kind signal yet; fall back to the all-kinds
				// distribution so the first straggler of a kind is still
				// twinnable once the run as a whole has history.
				h = snap.Histograms["dist.lease.all.ns"]
			}
			if h.Count < int64(c.opt.SpecMinSamples) {
				d = -1 // not enough signal to call anything slow
			} else {
				d = time.Duration(float64(h.Quantile(c.opt.SpecQuantile)) * c.opt.SpecFactor)
				if d < time.Millisecond {
					d = time.Millisecond
				}
			}
			thr[kind] = d
		}
		if d > 0 && now.Sub(l.granted) >= d {
			due = append(due, id)
		}
	}
	sort.Ints(due) // map order is random; keep the queue deterministic-ish
	for _, id := range due {
		c.specPending[id] = true
		c.specQ = append(c.specQ, id)
	}
}

// pickSpecLocked pops the next twinnable straggler for worker w: the
// primary lease must still be outstanding and held by someone else.
func (c *Coordinator) pickSpecLocked(w *workerState) (int, bool) {
	for len(c.specQ) > 0 {
		id := c.specQ[0]
		c.specQ = c.specQ[1:]
		l := c.leases[id]
		if l == nil || c.twins[id] != nil || c.fr.Completed(id) {
			delete(c.specPending, id) // stale queue entry
			continue
		}
		if l.worker == w.id {
			// The asker holds the primary; requeue for a different worker.
			c.specQ = append([]int{id}, c.specQ...)
			return 0, false
		}
		delete(c.specPending, id)
		return id, true
	}
	return 0, false
}

// leaseObserveLocked feeds an accepted commit's grant→commit duration into
// the kernel's histogram (and the all-kinds fallback) — the distribution
// speculation thresholds on.
func (c *Coordinator) leaseObserveLocked(kind string, d time.Duration) {
	for _, k := range [2]string{kind, "all"} {
		h := c.specHist[k]
		if h == nil {
			h = c.specReg.Histogram("dist.lease." + k + ".ns")
			c.specHist[k] = h
		}
		h.Observe(d.Nanoseconds())
	}
}

// localStepLocked is the bottom of the degradation ladder: when live
// workers are below the minimum (or none ever joined and LocalDelay has
// passed), the coordinator executes one ready task in-process. Returns
// whether it did.
func (c *Coordinator) localStepLocked(now time.Time) bool {
	if c.done {
		return false
	}
	threshold := c.opt.MinWorkers
	if threshold < 1 {
		threshold = 1
	}
	live := c.liveCountLocked()
	if live >= threshold {
		return false
	}
	if !c.everJoined && now.Sub(c.started) < c.opt.LocalDelay {
		return false
	}
	if c.opt.WaitWorkers > 0 && !c.barrierMet {
		// An explicit start barrier holds local fallback too: stealing tasks
		// before the fleet assembles would scramble the pinned placement.
		return false
	}
	// Pick the globally best ready task across all heaps.
	bestSlot := -1
	var best heapItem
	for s := range c.heaps {
		if len(c.heaps[s]) == 0 {
			continue
		}
		it := c.heaps[s].peek()
		if bestSlot < 0 || it.prio > best.prio || (it.prio == best.prio && it.id < best.id) {
			best, bestSlot = it, s
		}
	}
	if bestSlot < 0 {
		return false
	}
	id := c.heaps[bestSlot].popItem().id
	t := &c.pl.tasks[id]
	r, w := accesses(c.opt.Op, t)
	for _, cd := range append(append([]coord{}, r...), w...) {
		if c.st.resident[cd[0]][cd[1]] >= 0 {
			if err := c.st.reconstruct(cd); err != nil {
				c.failLocked(err)
				return false
			}
		}
	}
	if c.attempts[id] > 0 {
		c.addStat(&c.stats.TasksReexecuted, c.m.tasksReexecuted, 1)
	}
	c.attempts[id]++
	startNS := c.nowNS()
	if err := applyKernel(c.opt.Op, t, c.a); err != nil {
		c.localSpanLocked(id, t.Kind, c.attempts[id], startNS, err)
		c.failLocked(err)
		return false
	}
	c.localSpanLocked(id, t.Kind, c.attempts[id], startNS, nil)
	for _, cd := range w {
		c.st.putLocal(cd, c.pl.finalWriter[cd] == id)
	}
	c.addStat(&c.stats.TasksLocal, c.m.tasksLocal, 1)
	if err := c.completeLocked(id); err != nil {
		c.failLocked(err)
	}
	return true
}

// Run drives the job to completion: serving worker RPCs (already started),
// reaping dead workers and expired leases, degrading to local execution
// when the fleet is too small, and gathering the final matrix. It returns
// nil on success, ErrAborted for the checkpoint-abort hook, or the
// deterministic kernel error that failed the job.
func (c *Coordinator) Run() error {
	c.mu.Lock()
	c.started = time.Now()
	c.lastScrub = c.started
	c.mu.Unlock()

	tick := c.opt.Lease / 4
	if hb := c.opt.DeadAfter / 4; hb < tick {
		tick = hb
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}

	for {
		select {
		case <-time.After(tick):
		case <-c.wake:
		}
		c.mu.Lock()
		now := time.Now()
		c.reapLocked(now)
		c.speculateLocked(now)
		if c.opt.ScrubEvery > 0 && !c.done && now.Sub(c.lastScrub) >= c.opt.ScrubEvery {
			c.addStat(&c.stats.ScrubScanned, c.m.scrubScanned, int64(c.st.scrub(scrubTilesPerPass)))
			c.lastScrub = now
		}
		for c.localStepLocked(now) {
		}
		done := c.done
		c.mu.Unlock()
		if done {
			break
		}
	}

	// Grace period: let workers observe Done on their next lease and say
	// Bye, so clean runs end with clean exits on both sides.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		live := c.liveCountLocked()
		c.mu.Unlock()
		if live == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.ln.Close()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failErr == nil {
		if err := c.st.materialize(); err != nil {
			c.failErr = err
		}
	}
	return c.failErr
}

// coordRPC is the net/rpc receiver; every method locks the coordinator.
type coordRPC struct{ c *Coordinator }

// Register admits a worker (new or returning after eviction), assigns a
// grid slot if one is vacant, and hands back the job geometry plus the
// scatter list for strict placement.
func (r *coordRPC) Register(args *RegisterArgs, reply *RegisterReply) error {
	c := r.c
	defer c.m.timeRPC("register")()
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextWorker
	c.nextWorker++
	if args.Rejoin {
		// A flapping node coming back after eviction: its old identity (and
		// anything leased to it) is gone; it re-enters as a fresh worker.
		c.addStat(&c.stats.WorkersRejoined, c.m.workersRejoined, 1)
		c.faultLocked(trace.PhaseRejoin, id, -1, 0, fmt.Sprintf("was worker %d", args.PrevWorker))
		c.opt.logf("dist: worker %d rejoined (was worker %d)", id, args.PrevWorker)
		// The returning process keeps its span shipper, whose cumulative
		// indices (and clock) span identities: chain the new id to the old
		// lineage so absorption stays exactly-once even when a batch shipped
		// under the old id is still in flight.
		c.lineage[id] = c.rootLocked(args.PrevWorker)
	}
	w := &workerState{id: id, slot: -1, lastBeat: time.Now()}
	for s := range c.slots {
		if c.slots[s] == -1 {
			c.slots[s] = id
			w.slot = s
			break
		}
	}
	c.workers[id] = w
	c.everJoined = true
	c.addStat(&c.stats.WorkersJoined, c.m.workersJoined, 1)
	c.m.workersLive.Set(float64(c.liveCountLocked()))
	*reply = RegisterReply{
		Worker: id, Slot: w.slot,
		M: c.a.M, N: c.a.N, NB: c.a.NB,
		Op:   c.opt.Op,
		Grid: c.opt.GridP * c.opt.GridQ, GridP: c.opt.GridP,
		LeaseMS:     int(c.opt.Lease / time.Millisecond),
		PollMS:      int(c.opt.Poll / time.Millisecond),
		HeartbeatMS: int(c.opt.DeadAfter / (4 * time.Millisecond)),
		CacheRemote: !c.opt.Strict,
		CoordNS:     c.nowNS(),
	}
	if reply.HeartbeatMS < 1 {
		reply.HeartbeatMS = 1
	}
	if c.opt.Strict && w.slot >= 0 {
		for i := 0; i < c.a.MT; i++ {
			for j := 0; j < c.a.NT; j++ {
				if (i%c.opt.GridP)*c.opt.GridQ+j%c.opt.GridQ == w.slot {
					reply.Scatter = append(reply.Scatter, [2]int{i, j})
				}
			}
		}
	}
	c.opt.logf("dist: worker %d joined (slot %d)", id, w.slot)
	return nil
}

// Lease hands one ready task to the worker, or tells it to poll, stop
// (done), or re-register (evicted). Leasing doubles as a heartbeat.
func (r *coordRPC) Lease(args *LeaseArgs, reply *LeaseReply) error {
	c := r.c
	defer c.m.timeRPC("lease")()
	c.mu.Lock()
	defer c.mu.Unlock()
	if args.RPCRetries > 0 {
		c.addStat(&c.stats.RPCRetries, c.m.rpcRetries, args.RPCRetries)
		c.m.rpcRetriesHist.Observe(args.RPCRetries)
	}
	c.absorbCorruptsLocked(args.CorruptsInjected, args.CorruptsDetected)
	w := c.workers[args.Worker]
	if w == nil || !w.live() {
		reply.Evicted = true
		return nil
	}
	w.lastBeat = time.Now()
	if c.done {
		reply.Done = true
		return nil
	}
	reply.PollMS = int(c.opt.Poll / time.Millisecond)
	if reply.PollMS < 1 {
		reply.PollMS = 1
	}
	if c.opt.WaitWorkers > 0 && !c.barrierMet {
		if c.liveCountLocked() < c.opt.WaitWorkers {
			return nil
		}
		c.barrierMet = true
	}
	id, ok := c.pickTaskLocked(w)
	spec := false
	if !ok && c.opt.Speculate {
		// No fresh work: offer this idle worker a twin of a straggling lease.
		id, ok = c.pickSpecLocked(w)
		spec = ok
	}
	if !ok {
		return nil
	}
	t := c.pl.tasks[id]
	now := time.Now()
	c.nextToken++
	l := &lease{task: id, worker: w.id, token: c.nextToken, deadline: now.Add(c.opt.Lease), granted: now}
	if spec {
		c.twins[id] = l
		c.addStat(&c.stats.SpecLaunched, c.m.specLaunched, 1)
		prim := c.leases[id]
		c.faultLocked(trace.PhaseSpecTwin, w.id, id, c.attempts[id]+1,
			fmt.Sprintf("twin of worker %d", prim.worker))
		c.opt.logf("dist: task %d straggling on worker %d; twin leased to worker %d", id, prim.worker, w.id)
	} else {
		c.leases[id] = l
	}
	if c.attempts[id] > 0 {
		c.addStat(&c.stats.TasksReexecuted, c.m.tasksReexecuted, 1)
	}
	c.attempts[id]++
	c.addStat(&c.stats.LeasesGranted, c.m.leasesGranted, 1)
	rd, wr := accesses(c.opt.Op, &t)
	reply.Task = &t
	reply.Token = c.nextToken
	reply.Attempt = c.attempts[id]
	reply.Vers = c.st.versions(append(append([]coord{}, rd...), wr...))
	return nil
}

// Heartbeat keeps a worker live between leases (e.g. during a long
// kernel) and lands the trace-span batch piggybacked on the beat. Spans
// are absorbed even from a worker already declared dead — its recorded
// history is still true history.
func (r *coordRPC) Heartbeat(args *HeartbeatArgs, reply *HeartbeatReply) error {
	c := r.c
	defer c.m.timeRPC("heartbeat")()
	c.mu.Lock()
	defer c.mu.Unlock()
	reply.CoordNS = c.nowNS()
	c.absorbLocked(args.Worker, args.Spans, args.SpanBase, args.OffsetNS, args.RTTNS, args.HasOffset)
	w := c.workers[args.Worker]
	if w == nil || !w.live() {
		reply.Evicted = true
		return nil
	}
	w.lastBeat = time.Now()
	return nil
}

// Get serves one tile (reconstructing a dropped resident tile first).
func (r *coordRPC) Get(args *GetArgs, reply *GetReply) error {
	c := r.c
	defer c.m.timeRPC("get")()
	c.mu.Lock()
	defer c.mu.Unlock()
	if args.I < 0 || args.I >= c.a.MT || args.J < 0 || args.J >= c.a.NT {
		return fmt.Errorf("dist: tile (%d,%d) out of range", args.I, args.J)
	}
	data, ver, crc, err := c.st.get(coord{args.I, args.J}, args.Worker)
	if err != nil {
		return err
	}
	reply.Data = data
	reply.Ver = ver
	reply.CRC = crc
	n := int64(8 * len(data))
	c.m.rpcGetBytes.Observe(n)
	if args.Scatter {
		c.addStat(&c.stats.BytesScattered, c.m.bytesScattered, n)
	} else {
		c.addStat(&c.stats.BytesFetched, c.m.bytesFetched, n)
	}
	return nil
}

// Commit atomically lands a task's outputs and marks it complete. The
// lease token is the exactly-once gate: a reaped straggler's token no
// longer matches and its (possibly stale-input) result is discarded; a
// chaos-duplicated commit of a completed task is acknowledged idempotently.
func (r *coordRPC) Commit(args *CommitArgs, reply *CommitReply) error {
	c := r.c
	defer c.m.timeRPC("commit")()
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[args.Worker]
	if w == nil || !w.live() {
		reply.Evicted = true
		return nil
	}
	w.lastBeat = time.Now()
	l := c.leases[args.Task]
	tw := c.twins[args.Task]
	var win *lease
	switch {
	case l != nil && l.token == args.Token && l.worker == args.Worker:
		win = l
	case tw != nil && tw.token == args.Token && tw.worker == args.Worker:
		win = tw
	}
	if win == nil {
		if c.fr.Completed(args.Task) {
			// A commit of an already-completed task: a retransmission of one
			// that landed, or the losing copy of a reaped/speculated pair.
			// Acknowledge it so the sender moves on, flag it Duplicate so the
			// sender does not record a completion of its own, and ship no
			// versions — this payload was NOT applied, and blessing the
			// sender's cache with current version numbers would let a stale
			// straggler's bytes masquerade as the store's.
			c.addStat(&c.stats.CommitsDuplicate, c.m.commitsDuplicate, 1)
			reply.Accepted = true
			reply.Duplicate = true
			return nil
		}
		c.addStat(&c.stats.CommitsRejected, c.m.commitsRejected, 1)
		c.faultLocked(trace.PhaseStale, args.Worker, args.Task, c.attempts[args.Task], "stale lease token")
		c.opt.logf("dist: rejected stale commit of task %d from worker %d", args.Task, args.Worker)
		return nil
	}
	// End-to-end integrity: verify every payload against the CRC the worker
	// computed at the kernel's output before a single byte is applied. A
	// mismatch means the wire lied in flight; the lease stays live so the
	// worker can resend the same attempt's clean bytes.
	if args.Err == "" {
		for _, p := range args.Tiles {
			if ft.CRC64(p.Data) != p.CRC {
				c.addStat(&c.stats.CorruptCommits, c.m.corruptCommits, 1)
				c.faultLocked(trace.PhaseCorrupt, args.Worker, args.Task, c.attempts[args.Task],
					fmt.Sprintf("commit payload for tile (%d,%d) failed CRC", p.I, p.J))
				c.opt.logf("dist: rejected corrupt commit payload for tile (%d,%d) from worker %d", p.I, p.J, args.Worker)
				reply.BadPayload = true
				return nil
			}
		}
	}
	delete(c.leases, args.Task)
	if tw != nil {
		delete(c.twins, args.Task)
		if win == tw {
			c.addStat(&c.stats.SpecWins, c.m.specWins, 1)
			c.opt.logf("dist: twin of task %d (worker %d) won the race", args.Task, args.Worker)
		} else {
			c.addStat(&c.stats.SpecWasted, c.m.specWasted, 1)
		}
	}
	delete(c.specPending, args.Task)
	if args.Err != "" {
		c.failLocked(errors.New(args.Err))
		reply.Accepted = true
		return nil
	}
	c.leaseObserveLocked(c.pl.tasks[args.Task].Kind, time.Since(win.granted))
	for _, p := range args.Tiles {
		final := c.pl.finalWriter[coord{p.I, p.J}] == args.Task
		ver, err := c.st.put(coord{p.I, p.J}, p.Data, p.CRC, args.Worker, final)
		if err != nil {
			c.failLocked(err)
			return err
		}
		reply.Vers = append(reply.Vers, ver)
		c.addStat(&c.stats.BytesCommitted, c.m.bytesCommitted, int64(8*len(p.Data)))
		c.m.rpcCommitBytes.Observe(int64(8 * len(p.Data)))
	}
	reply.Accepted = true
	if err := c.completeLocked(args.Task); err != nil {
		c.failLocked(err)
	}
	return nil
}

// Bye deregisters a worker gracefully; tiles resident on it are
// reconstructed into the store before its cache disappears.
func (r *coordRPC) Bye(args *ByeArgs, _ *ByeReply) error {
	c := r.c
	defer c.m.timeRPC("bye")()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.absorbLocked(args.Worker, args.Spans, args.SpanBase, args.OffsetNS, args.RTTNS, args.HasOffset)
	c.absorbCorruptsLocked(args.CorruptsInjected, args.CorruptsDetected)
	w := c.workers[args.Worker]
	if w == nil || !w.live() {
		return nil
	}
	w.byed = true
	if w.slot >= 0 {
		c.slots[w.slot] = -1
		w.slot = -1
	}
	var lost []*lease
	for _, l := range c.leases {
		if l.worker == w.id {
			lost = append(lost, l)
		}
	}
	for _, l := range lost {
		c.revokeLeaseLocked(l)
	}
	c.dropTwinsLocked(w)
	if _, err := c.st.dropWorker(w.id); err != nil {
		c.failLocked(err)
	}
	c.m.workersLive.Set(float64(c.liveCountLocked()))
	c.opt.logf("dist: worker %d left", w.id)
	c.signal()
	return nil
}
