package dist

import (
	"sync/atomic"
	"time"

	"exadla/internal/metrics"
)

// RunStats is one distributed run's fault-and-traffic ledger. Fields are
// atomics so RPC handlers, the reaper, and the run loop update them
// without coordination; Snapshot copies them out for reports. Every field
// is also mirrored into a metrics.Registry (when one is configured) under
// "dist.*" names, alongside the scheduler's "sched.*" counters, so the
// obs Prometheus endpoint exposes the distributed runtime for free.
type RunStats struct {
	WorkersJoined    atomic.Int64
	WorkersLost      atomic.Int64
	LeasesGranted    atomic.Int64
	LeasesExpired    atomic.Int64
	TasksCompleted   atomic.Int64
	TasksReexecuted  atomic.Int64
	TasksLocal       atomic.Int64
	CommitsRejected  atomic.Int64
	CommitsDuplicate atomic.Int64
	RPCRetries       atomic.Int64
	BytesFetched     atomic.Int64
	BytesCommitted   atomic.Int64
	BytesScattered   atomic.Int64
	TilesRebuilt     atomic.Int64
	CheckpointsSaved atomic.Int64

	// Speculative execution: twin leases granted for slow-running tasks,
	// how many twins won (committed first), and how many were wasted work
	// (the primary finished first).
	SpecLaunched atomic.Int64
	SpecWins     atomic.Int64
	SpecWasted   atomic.Int64

	// End-to-end integrity: corrupt commit payloads the coordinator
	// rejected, corrupt Get replies workers detected, total corruptions the
	// chaos layer reports injecting, and the at-rest scrub's ledger.
	CorruptCommits  atomic.Int64
	CorruptGets     atomic.Int64
	CorruptInjected atomic.Int64
	ScrubScanned    atomic.Int64
	AtRestDetected  atomic.Int64
	AtRestRepaired  atomic.Int64

	// Partition tolerance: workers that re-registered under a fresh
	// identity after losing a previous one.
	WorkersRejoined atomic.Int64
}

// StatsSnapshot is a plain-value copy of RunStats for reporting.
type StatsSnapshot struct {
	WorkersJoined    int64 `json:"workers_joined"`
	WorkersLost      int64 `json:"workers_lost"`
	LeasesGranted    int64 `json:"leases_granted"`
	LeasesExpired    int64 `json:"leases_expired"`
	TasksCompleted   int64 `json:"tasks_completed"`
	TasksReexecuted  int64 `json:"tasks_reexecuted"`
	TasksLocal       int64 `json:"tasks_local"`
	CommitsRejected  int64 `json:"commits_rejected"`
	CommitsDuplicate int64 `json:"commits_duplicate"`
	RPCRetries       int64 `json:"rpc_retries"`
	BytesFetched     int64 `json:"bytes_fetched"`
	BytesCommitted   int64 `json:"bytes_committed"`
	BytesScattered   int64 `json:"bytes_scattered"`
	TilesRebuilt     int64 `json:"tiles_reconstructed"`
	CheckpointsSaved int64 `json:"checkpoints_written"`
	SpecLaunched     int64 `json:"spec_launched"`
	SpecWins         int64 `json:"spec_wins"`
	SpecWasted       int64 `json:"spec_wasted"`
	CorruptCommits   int64 `json:"corrupt_commits_rejected"`
	CorruptGets      int64 `json:"corrupt_gets_detected"`
	CorruptInjected  int64 `json:"corrupts_injected"`
	ScrubScanned     int64 `json:"scrub_tiles_scanned"`
	AtRestDetected   int64 `json:"atrest_rot_detected"`
	AtRestRepaired   int64 `json:"atrest_rot_repaired"`
	WorkersRejoined  int64 `json:"workers_rejoined"`
}

// Snapshot copies the current counter values.
func (s *RunStats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		WorkersJoined:    s.WorkersJoined.Load(),
		WorkersLost:      s.WorkersLost.Load(),
		LeasesGranted:    s.LeasesGranted.Load(),
		LeasesExpired:    s.LeasesExpired.Load(),
		TasksCompleted:   s.TasksCompleted.Load(),
		TasksReexecuted:  s.TasksReexecuted.Load(),
		TasksLocal:       s.TasksLocal.Load(),
		CommitsRejected:  s.CommitsRejected.Load(),
		CommitsDuplicate: s.CommitsDuplicate.Load(),
		RPCRetries:       s.RPCRetries.Load(),
		BytesFetched:     s.BytesFetched.Load(),
		BytesCommitted:   s.BytesCommitted.Load(),
		BytesScattered:   s.BytesScattered.Load(),
		TilesRebuilt:     s.TilesRebuilt.Load(),
		CheckpointsSaved: s.CheckpointsSaved.Load(),
		SpecLaunched:     s.SpecLaunched.Load(),
		SpecWins:         s.SpecWins.Load(),
		SpecWasted:       s.SpecWasted.Load(),
		CorruptCommits:   s.CorruptCommits.Load(),
		CorruptGets:      s.CorruptGets.Load(),
		CorruptInjected:  s.CorruptInjected.Load(),
		ScrubScanned:     s.ScrubScanned.Load(),
		AtRestDetected:   s.AtRestDetected.Load(),
		AtRestRepaired:   s.AtRestRepaired.Load(),
		WorkersRejoined:  s.WorkersRejoined.Load(),
	}
}

// distMetrics is the registry mirror of RunStats plus the live-worker
// gauge. All handles are nil-safe (a nil registry disables mirroring).
type distMetrics struct {
	workersLive      *metrics.Gauge
	workersJoined    *metrics.Counter
	workersLost      *metrics.Counter
	leasesGranted    *metrics.Counter
	leasesExpired    *metrics.Counter
	tasksCompleted   *metrics.Counter
	tasksReexecuted  *metrics.Counter
	tasksLocal       *metrics.Counter
	commitsRejected  *metrics.Counter
	commitsDuplicate *metrics.Counter
	rpcRetries       *metrics.Counter
	bytesFetched     *metrics.Counter
	bytesCommitted   *metrics.Counter
	bytesScattered   *metrics.Counter
	tilesRebuilt     *metrics.Counter
	ckptsSaved       *metrics.Counter
	specLaunched     *metrics.Counter
	specWins         *metrics.Counter
	specWasted       *metrics.Counter
	corruptCommits   *metrics.Counter
	corruptGets      *metrics.Counter
	corruptInjected  *metrics.Counter
	scrubScanned     *metrics.Counter
	atRestDetected   *metrics.Counter
	atRestRepaired   *metrics.Counter
	workersRejoined  *metrics.Counter

	// Per-RPC telemetry: handler latency per method ("dist.rpc.<m>.ns"),
	// payload sizes for the data-bearing methods, and the distribution of
	// client-retry bursts reported on leases ("dist.rpc.retries").
	rpcNS          map[string]*metrics.Histogram
	rpcGetBytes    *metrics.Histogram
	rpcCommitBytes *metrics.Histogram
	rpcRetriesHist *metrics.Histogram
}

// rpcMethods are the coordinator's RPC handler names, each with a
// "dist.rpc.<method>.ns" latency histogram.
var rpcMethods = []string{"register", "lease", "heartbeat", "get", "commit", "bye"}

// timeRPC starts a latency observation for one RPC handler; the returned
// func records it (use with defer). Nil-safe all the way down: with no
// registry the histogram handles are nil and Observe is a no-op.
func (m *distMetrics) timeRPC(method string) func() {
	h := m.rpcNS[method]
	start := time.Now()
	return func() { h.Observe(time.Since(start).Nanoseconds()) }
}

func newDistMetrics(r *metrics.Registry) *distMetrics {
	return &distMetrics{
		workersLive:      r.Gauge("dist.workers_live"),
		workersJoined:    r.Counter("dist.workers_joined"),
		workersLost:      r.Counter("dist.workers_lost"),
		leasesGranted:    r.Counter("dist.leases_granted"),
		leasesExpired:    r.Counter("dist.leases_expired"),
		tasksCompleted:   r.Counter("dist.tasks_completed"),
		tasksReexecuted:  r.Counter("dist.tasks_reexecuted"),
		tasksLocal:       r.Counter("dist.tasks_local"),
		commitsRejected:  r.Counter("dist.commits_rejected"),
		commitsDuplicate: r.Counter("dist.commits_duplicate"),
		rpcRetries:       r.Counter("dist.rpc_retries"),
		bytesFetched:     r.Counter("dist.bytes_fetched"),
		bytesCommitted:   r.Counter("dist.bytes_committed"),
		bytesScattered:   r.Counter("dist.bytes_scattered"),
		tilesRebuilt:     r.Counter("dist.tiles_reconstructed"),
		ckptsSaved:       r.Counter("dist.checkpoints_written"),
		specLaunched:     r.Counter("dist.spec.launched"),
		specWins:         r.Counter("dist.spec.wins"),
		specWasted:       r.Counter("dist.spec.wasted"),
		corruptCommits:   r.Counter("dist.integrity.commit_rejected"),
		corruptGets:      r.Counter("dist.integrity.get_rejected"),
		corruptInjected:  r.Counter("dist.integrity.wire_injected"),
		scrubScanned:     r.Counter("dist.integrity.scrub_scanned"),
		atRestDetected:   r.Counter("dist.integrity.atrest_detected"),
		atRestRepaired:   r.Counter("dist.integrity.atrest_repaired"),
		workersRejoined:  r.Counter("dist.rejoin.workers"),
		rpcNS:            rpcLatencyHists(r),
		rpcGetBytes:      r.Histogram("dist.rpc.get.bytes"),
		rpcCommitBytes:   r.Histogram("dist.rpc.commit.bytes"),
		rpcRetriesHist:   r.Histogram("dist.rpc.retries"),
	}
}

func rpcLatencyHists(r *metrics.Registry) map[string]*metrics.Histogram {
	hs := make(map[string]*metrics.Histogram, len(rpcMethods))
	for _, m := range rpcMethods {
		hs[m] = r.Histogram("dist.rpc." + m + ".ns")
	}
	return hs
}
