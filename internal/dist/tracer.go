package dist

import (
	"sync"
	"time"

	"exadla/internal/sched"
	"exadla/internal/trace"
)

// spanShipper is a worker process's trace recorder: every span the worker
// emits is appended here (and mirrored into an optional local trace.Log),
// then shipped to the coordinator in batches piggybacked on heartbeats.
// Shipping is at-least-once with exactly-once absorption: spans keep their
// cumulative index (SpanBase), are removed from the queue only once a
// shipment is acknowledged, and the coordinator drops any prefix it has
// already absorbed — so chaos-retransmitted or re-shipped batches never
// duplicate spans in the merged trace.
//
// It also owns the clock-offset estimate: around every Register and
// Heartbeat RPC the worker samples (t0, CoordNS, t1) and keeps the sample
// with the smallest RTT; offset = CoordNS − (t0+t1)/2 maps this process's
// UnixNano clock onto the coordinator's epoch-relative one, with error
// bounded by half the best RTT. The offset rides along with every
// shipment, so the coordinator can align even a worker that dies early.
//
// One shipper outlives worker re-registrations (it is per process, the
// clock being estimated is per process); spans record the worker id
// current at emission time, which becomes their lane in the merged trace.
type spanShipper struct {
	mirror *trace.Log // optional worker-local mirror (nil = none)

	mu      sync.Mutex
	worker  int // current registration id, -1 before the first Register
	pending []WireSpan
	acked   int64 // cumulative index of pending[0]
	bestRTT int64
	offset  int64
	hasOff  bool
}

// shipBatch caps spans per heartbeat so shipments stay small; Bye flushes
// without a cap.
const shipBatch = 512

func newSpanShipper(mirror *trace.Log) *spanShipper {
	return &spanShipper{mirror: mirror, worker: -1}
}

func (s *spanShipper) setWorker(id int) {
	s.mu.Lock()
	s.worker = id
	s.mu.Unlock()
}

// add records one span for shipping (and into the local mirror), stamping
// it with the current registration id.
func (s *spanShipper) add(ws WireSpan) {
	s.mu.Lock()
	ws.Worker = s.worker
	s.pending = append(s.pending, ws)
	s.mu.Unlock()
	if s.mirror != nil {
		s.mirror.Add(wireToEvent(ws, 0))
	}
}

// instant records a zero-duration fault span (e.g. an injected wire fault).
func (s *spanShipper) instant(phase, detail string) {
	now := time.Now().UnixNano()
	s.add(WireSpan{ID: -1, Phase: phase, StartNS: now, EndNS: now, Err: detail})
}

// sample feeds one (t0, coordNS, t1) clock observation; coordNS == 0 means
// the server predates the protocol field and is ignored.
func (s *spanShipper) sample(coordNS, t0, t1 int64) {
	if coordNS == 0 || t1 < t0 {
		return
	}
	rtt := t1 - t0
	s.mu.Lock()
	if !s.hasOff || rtt < s.bestRTT {
		s.hasOff = true
		s.bestRTT = rtt
		s.offset = coordNS - (t0+t1)/2
	}
	s.mu.Unlock()
}

// batch snapshots up to max unacked spans (0 = all) plus the current
// offset, without removing anything: removal happens in ack once the
// shipment is known to have landed.
func (s *spanShipper) batch(max int) (spans []WireSpan, base, off, rtt int64, hasOff bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pending)
	if max > 0 && n > max {
		n = max
	}
	spans = append([]WireSpan(nil), s.pending[:n]...)
	return spans, s.acked, s.offset, s.bestRTT, s.hasOff
}

// ack removes n spans after a successful shipment.
func (s *spanShipper) ack(n int) {
	s.mu.Lock()
	if n > len(s.pending) {
		n = len(s.pending)
	}
	s.pending = s.pending[n:]
	s.acked += int64(n)
	s.mu.Unlock()
}

// wireToEvent converts a shipped span into a trace event, re-basing its
// local-clock timestamps by off (0 for a worker-local mirror).
func wireToEvent(ws WireSpan, off int64) trace.Event {
	return trace.Event{
		ID: ws.ID, Name: ws.Name, Worker: ws.Worker, Attempt: ws.Attempt,
		Start: ws.StartNS + off, End: ws.EndNS + off,
		Outcome: sched.Outcome(ws.Outcome), Err: ws.Err,
		Proc: ws.Worker + 1, Phase: ws.Phase, Bytes: ws.Bytes,
		Tile: [2]int{ws.TileI, ws.TileJ}, HasTile: ws.HasTile,
	}
}
