package dist

import (
	"fmt"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/tile"
)

// The plan is the coordinator's serializable view of a factorization DAG:
// the same tile tasks core.Cholesky (and a right-looking no-pivot LU)
// would submit as closures, but named by (Kind, K, I, J) so they can cross
// a process boundary. Both sides derive everything else — operand tiles,
// kernel call, boundary dimensions — from the spec plus the matrix
// geometry, so a task re-executed on a different worker after a crash is
// the *same* computation, which is what makes the bitwise-determinism
// guarantee survive the wire: the DAG serializes the writers of every
// tile, each kernel is deterministic, therefore any legal schedule on any
// set of processes produces bit-identical factors.

// Supported distributed operations.
const (
	OpCholesky = "cholesky"
	// OpLUNoPiv is right-looking LU without pivoting (callers supply
	// diagonally dominant matrices); pivoting would make tile finalization
	// order data-dependent, which the lease/erasure protocol does not need
	// and PR-scoped determinism tests do not want.
	OpLUNoPiv = "lunp"
)

// coord is a tile coordinate, used as the sched.Frontier handle for
// dependence tracking and as the worker cache key.
type coord [2]int

// plan is the fully unrolled task list of one factorization, in the same
// submission order as the in-process runtime uses.
type plan struct {
	op     string
	mt, nt int
	tasks  []TaskSpec
	// finalWriter[c] is the ID of the last task writing tile c — the task
	// whose commit finalizes the tile and folds it into the erasure parity.
	finalWriter map[coord]int
	// steps is the number of panel steps in the full factorization (NT),
	// independent of the resume offset.
	steps int
}

// makePlan unrolls the DAG for op over an mt×nt tile grid, starting at
// panel step fromStep (tiles must already hold the state of earlier steps —
// the checkpoint-resume path). Task IDs index p.tasks.
func makePlan(op string, mt, nt, fromStep int) (*plan, error) {
	p := &plan{op: op, mt: mt, nt: nt, steps: nt, finalWriter: map[coord]int{}}
	add := func(kind string, k, i, j int) {
		id := len(p.tasks)
		t := TaskSpec{ID: id, Step: k, Kind: kind, K: k, I: i, J: j}
		p.tasks = append(p.tasks, t)
		_, w := accesses(op, &t)
		for _, c := range w {
			p.finalWriter[c] = id
		}
	}
	switch op {
	case OpCholesky:
		if mt != nt {
			return nil, fmt.Errorf("dist: cholesky needs a square tile grid, got %d×%d", mt, nt)
		}
		for k := fromStep; k < nt; k++ {
			add("potrf", k, 0, 0)
			for i := k + 1; i < mt; i++ {
				add("trsm", k, i, 0)
			}
			for j := k + 1; j < nt; j++ {
				add("syrk", k, 0, j)
				for i := j + 1; i < mt; i++ {
					add("gemm", k, i, j)
				}
			}
		}
	case OpLUNoPiv:
		if mt != nt {
			return nil, fmt.Errorf("dist: lunp needs a square tile grid, got %d×%d", mt, nt)
		}
		for k := fromStep; k < nt; k++ {
			add("getrfnp", k, 0, 0)
			for j := k + 1; j < nt; j++ {
				add("ltrsm", k, 0, j)
			}
			for i := k + 1; i < mt; i++ {
				add("utrsm", k, i, 0)
			}
			for j := k + 1; j < nt; j++ {
				for i := k + 1; i < mt; i++ {
					add("lgemm", k, i, j)
				}
			}
		}
	default:
		return nil, fmt.Errorf("dist: unknown op %q", op)
	}
	return p, nil
}

// accesses returns the tiles a task reads and writes, mirroring the
// Reads/Writes declarations of the in-process submission (written tiles
// that are also read-modify-written appear only in writes, as there). The
// concatenation reads‖writes is the operand order used for LeaseReply.Vers
// and the worker's fetch loop.
func accesses(op string, t *TaskSpec) (reads, writes []coord) {
	k := t.K
	switch op + "/" + t.Kind {
	case "cholesky/potrf":
		return nil, []coord{{k, k}}
	case "cholesky/trsm":
		return []coord{{k, k}}, []coord{{t.I, k}}
	case "cholesky/syrk":
		return []coord{{t.J, k}}, []coord{{t.J, t.J}}
	case "cholesky/gemm":
		return []coord{{t.I, k}, {t.J, k}}, []coord{{t.I, t.J}}
	case "lunp/getrfnp":
		return nil, []coord{{k, k}}
	case "lunp/ltrsm": // U[k][j] ← L[k][k]⁻¹·A[k][j]
		return []coord{{k, k}}, []coord{{k, t.J}}
	case "lunp/utrsm": // L[i][k] ← A[i][k]·U[k][k]⁻¹
		return []coord{{k, k}}, []coord{{t.I, k}}
	case "lunp/lgemm": // A[i][j] -= L[i][k]·U[k][j]
		return []coord{{t.I, k}, {k, t.J}}, []coord{{t.I, t.J}}
	}
	panic(fmt.Sprintf("dist: unknown task %s/%s", op, t.Kind))
}

// priority orders ready tasks the way the in-process scheduler does:
// advance the panel chain first (it is the critical path), then solves,
// then trailing updates, all weighted toward earlier target columns.
func priority(op string, t *TaskSpec) int {
	target, bonus := t.K, 0
	switch t.Kind {
	case "potrf", "getrfnp":
		bonus = 2
	case "trsm", "ltrsm", "utrsm":
		bonus = 1
	default: // syrk, gemm, lgemm
		if t.J > 0 {
			target = t.J
		}
	}
	return 3*(1<<20-target) + bonus
}

// homeSlot is the block-cyclic owner of a task: the process-grid slot of
// its first written tile, matching BlockCyclic so live-run placement and
// the replay cost model agree tile for tile.
func homeSlot(op string, t *TaskSpec, p, q int) int {
	_, w := accesses(op, t)
	c := w[0]
	return (c[0]%p)*q + c[1]%q
}

// applyKernel executes one task's kernel in place on a (worker cache or
// coordinator store — both run exactly this code, so local fallback and
// remote execution are bitwise interchangeable).
func applyKernel(op string, t *TaskSpec, a *tile.Matrix[float64]) error {
	k := t.K
	switch op + "/" + t.Kind {
	case "cholesky/potrf":
		if err := lapack.Potrf(blas.Lower, a.TileCols(k), a.Tile(k, k), a.TileRows(k)); err != nil {
			perr := err.(*lapack.NotPositiveDefiniteError)
			return &lapack.NotPositiveDefiniteError{Index: k*a.NB + perr.Index}
		}
	case "cholesky/trsm":
		i := t.I
		blas.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
			a.TileRows(i), a.TileCols(k), 1,
			a.Tile(k, k), a.TileRows(k), a.Tile(i, k), a.TileRows(i))
	case "cholesky/syrk":
		j := t.J
		blas.Syrk(blas.Lower, blas.NoTrans, a.TileCols(j), a.TileCols(k),
			-1, a.Tile(j, k), a.TileRows(j), 1, a.Tile(j, j), a.TileRows(j))
	case "cholesky/gemm":
		i, j := t.I, t.J
		blas.Gemm(blas.NoTrans, blas.Trans,
			a.TileRows(i), a.TileCols(j), a.TileCols(k),
			-1, a.Tile(i, k), a.TileRows(i),
			a.Tile(j, k), a.TileRows(j),
			1, a.Tile(i, j), a.TileRows(i))
	case "lunp/getrfnp":
		return getrfnp(a.TileRows(k), a.TileCols(k), a.Tile(k, k), a.TileRows(k), k*a.NB)
	case "lunp/ltrsm":
		j := t.J
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit,
			a.TileRows(k), a.TileCols(j), 1,
			a.Tile(k, k), a.TileRows(k), a.Tile(k, j), a.TileRows(k))
	case "lunp/utrsm":
		i := t.I
		blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit,
			a.TileRows(i), a.TileCols(k), 1,
			a.Tile(k, k), a.TileRows(k), a.Tile(i, k), a.TileRows(i))
	case "lunp/lgemm":
		i, j := t.I, t.J
		blas.Gemm(blas.NoTrans, blas.NoTrans,
			a.TileRows(i), a.TileCols(j), a.TileCols(k),
			-1, a.Tile(i, k), a.TileRows(i),
			a.Tile(k, j), a.TileRows(k),
			1, a.Tile(i, j), a.TileRows(i))
	default:
		return fmt.Errorf("dist: unknown task %s/%s", op, t.Kind)
	}
	return nil
}

// getrfnp is the unblocked right-looking LU factorization of an m×n tile
// without pivoting: A = L·U with unit-diagonal L, overwriting a. off is
// the tile's global diagonal offset, used only to report a zero pivot's
// global index.
func getrfnp(m, n int, a []float64, lda, off int) error {
	for k := 0; k < m && k < n; k++ {
		piv := a[k+k*lda]
		if piv == 0 {
			return fmt.Errorf("dist: zero pivot at global index %d in no-pivot LU", off+k)
		}
		for i := k + 1; i < m; i++ {
			a[i+k*lda] /= piv
		}
		for j := k + 1; j < n; j++ {
			akj := a[k+j*lda]
			if akj == 0 {
				continue
			}
			for i := k + 1; i < m; i++ {
				a[i+j*lda] -= a[i+k*lda] * akj
			}
		}
	}
	return nil
}
