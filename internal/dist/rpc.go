package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/rpc"
	"reflect"
	"sync"
	"time"
)

// This file is the wire protocol of the distributed runtime: the net/rpc
// message types exchanged between stateless workers and the coordinator,
// and the retrying client the workers (and the chaos layer) speak through.
//
// The protocol is deliberately at-least-once on the client side and
// exactly-once on the server side: every call may be retried (or
// duplicated by chaos), so every server handler is idempotent — Commit is
// keyed by (task, lease token) and a re-delivered commit of a completed
// task is acknowledged without effect. That split is what makes worker
// death, dropped replies, and duplicated packets all collapse into the
// same safe outcome: the answer never changes, only the traffic bill does.

// coordService is the registered net/rpc service name.
const coordService = "Coord"

// TaskSpec names one remotely executable tile task. Kind selects the
// kernel; K/I/J are the panel step and tile coordinates it operates on
// (unused coordinates are zero — see accesses()). Specs carry no closures:
// a worker reconstructs the full operand list and kernel call from the
// spec plus the job geometry, which is what makes tasks re-executable on
// any process.
type TaskSpec struct {
	ID   int
	Step int // panel step, for checkpoint barriers
	Kind string
	K    int
	I    int
	J    int
}

// WireSpan is one trace event in transit from a worker to the coordinator:
// a whole task attempt (Phase ""), a fetch/compute/commit sub-phase, or a
// zero-duration fault instant (see trace.IsFault). Timestamps are the
// recording process's local clock (UnixNano); the coordinator re-bases
// them onto its own epoch with the RTT-midpoint offset shipped alongside.
type WireSpan struct {
	ID      int    // task id, -1 for scatter prefetch and chaos instants
	Name    string // kernel kind, or "scatter"
	Worker  int    // worker id at recording time (lane in the merged trace)
	Attempt int
	Phase   string
	StartNS int64 // local clock, UnixNano
	EndNS   int64
	Bytes   int64 // payload moved, fetch/commit phases only
	TileI   int
	TileJ   int
	HasTile bool
	Outcome int // sched.Outcome, whole-attempt spans only
	Err     string
}

// RegisterArgs announces a new (or re-registering) worker. A worker that
// lost a previous identity — evicted while hung, or silenced by a network
// partition until its heartbeats lapsed — sets Rejoin and PrevWorker so the
// coordinator can account the rebirth (dist.rejoin.*) and stamp a rejoin
// instant on the cluster timeline. The fresh identity starts with an empty
// cache: rejoin discards all local state rather than trusting any of it.
type RegisterArgs struct {
	Rejoin     bool
	PrevWorker int
}

// RegisterReply hands the worker its identity and the job geometry.
type RegisterReply struct {
	Worker int // worker id, unique per registration
	Slot   int // process-grid slot owned (block-cyclic placement), -1 if none free
	M, N   int
	NB     int
	Op     string
	Grid   int // total grid slots (P)
	GridP  int // grid rows; columns are Grid/GridP
	// LeaseMS and PollMS are the lease duration and the idle re-poll
	// interval the coordinator wants this worker to use.
	LeaseMS int
	PollMS  int
	// HeartbeatMS is the interval the worker must beat at to stay live.
	HeartbeatMS int
	// Scatter lists the tiles homed at Slot, for the initial prefetch under
	// strict placement ({} otherwise). CacheRemote permits caching fetched
	// remote tiles by version; strict placement disables it so measured
	// task traffic matches the per-access replay cost model.
	Scatter     [][2]int
	CacheRemote bool
	// CoordNS is the coordinator's clock (nanoseconds since its trace
	// epoch) when the handler ran, for RTT-midpoint offset estimation.
	CoordNS int64
}

// LeaseArgs asks for one ready task. RPCRetries piggybacks the number of
// client-side RPC retries the worker performed since its last report, so
// the coordinator's metrics see wire-level flakiness it cannot observe
// directly. CorruptsInjected and CorruptsDetected piggyback the chaos
// layer's payload-corruption count and the worker's CRC-mismatch detections
// on fetched tiles, closing the injected-vs-detected cross-check the
// integrity tests assert.
type LeaseArgs struct {
	Worker           int
	RPCRetries       int64
	CorruptsInjected int64
	CorruptsDetected int64
}

// LeaseReply grants a task (nil Task means "nothing ready; poll again in
// PollMS"). Vers lists the current version of each tile the task touches,
// in accesses() order (reads then writes), so worker caches stay coherent
// under stolen writes. Done reports job completion; Evicted tells a worker
// the coordinator declared it dead (it may re-register for a fresh id).
type LeaseReply struct {
	Task    *TaskSpec
	Token   int64
	Vers    []int
	PollMS  int
	Done    bool
	Evicted bool
	// Attempt is the 1-based execution attempt this lease grants, for span
	// annotation.
	Attempt int
}

// HeartbeatArgs keeps a worker and its leases alive between Lease calls.
// It doubles as the trace-shard shipping channel: Spans carries a batch of
// locally recorded spans, SpanBase the cumulative index of the batch's
// first span (so retransmissions and re-shipped unacked batches are
// absorbed exactly once), and OffsetNS/RTTNS the worker's current best
// (min-RTT) clock-offset sample.
type HeartbeatArgs struct {
	Worker    int
	Spans     []WireSpan
	SpanBase  int64
	OffsetNS  int64
	RTTNS     int64
	HasOffset bool
}
type HeartbeatReply struct {
	Evicted bool
	CoordNS int64
}

// GetArgs fetches one tile. Scatter marks the initial home-tile prefetch,
// billed separately from task-driven traffic.
type GetArgs struct {
	Worker  int
	I, J    int
	Scatter bool
}

// GetReply carries the tile payload (column-major, ld = rows) and its
// CRC64, verified against the bytes before serving (at-rest rot is repaired
// from parity first) and re-verified by the fetching worker on arrival.
type GetReply struct {
	Data []float64
	Ver  int
	CRC  uint64
}

// TilePayload is one written tile shipped back in a commit. CRC is the
// CRC64 of Data computed by the worker that ran the kernel; the coordinator
// verifies it before the store accepts the bytes and keeps it as the tile's
// at-rest checksum.
type TilePayload struct {
	I, J int
	Data []float64
	CRC  uint64
}

// CommitArgs completes a leased task, shipping its outputs. Err, when
// non-empty, reports a deterministic kernel failure (e.g. a non-SPD pivot)
// instead of outputs; the coordinator fails the job. Token must match the
// task's current lease or the commit is rejected (a reaped straggler).
type CommitArgs struct {
	Worker int
	Task   int
	Token  int64
	Tiles  []TilePayload
	Err    string
}

// CommitReply acknowledges a commit. Vers are the store versions assigned
// to the shipped tiles, in Tiles order, so the committing worker can cache
// its own outputs coherently. Accepted is false for stale-token commits:
// the work was re-leased elsewhere and this result is discarded. Duplicate
// marks an accepted-but-unapplied commit (the task already completed — a
// retransmission, or the losing half of a speculative twin pair); the
// sender records the attempt as retried, not successful, so exactly one OK
// span exists per completed task. BadPayload reports a CRC64 mismatch on a
// shipped tile: the lease is still live and the worker must resend.
type CommitReply struct {
	Accepted   bool
	Vers       []int
	Evicted    bool
	Duplicate  bool
	BadPayload bool
}

// ByeArgs deregisters a worker gracefully (mid-run scale-down), flushing
// any trace spans still unshipped (same fields as HeartbeatArgs) and the
// final corruption counters (same fields as LeaseArgs), so a clean run
// reports every injected and detected corruption.
type ByeArgs struct {
	Worker           int
	Spans            []WireSpan
	SpanBase         int64
	OffsetNS         int64
	RTTNS            int64
	HasOffset        bool
	CorruptsInjected int64
	CorruptsDetected int64
}
type ByeReply struct{}

// ErrEvicted is returned by worker RPC helpers when the coordinator has
// declared this worker dead; the worker may re-register.
var ErrEvicted = errors.New("dist: worker evicted by coordinator")

// jitterSource decorrelates retry schedules across workers: each delay in
// the capped exponential ladder is re-drawn uniformly from [d/2, d] (equal
// jitter). This is the thundering-herd defense — after a coordinator stall
// every worker's retry clock would otherwise tick in lockstep (same base,
// same doubling), landing the whole fleet's retries in the same instant;
// the half-window spread breaks the synchrony while keeping the expected
// delay at 3/4 of the deterministic schedule. A non-zero seed makes the
// sequence reproducible for tests; the schedule itself (doubling, cap)
// stays at the call sites, so concurrent calls sharing the source only
// share randomness, never each other's position in the ladder.
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterSource(seed int64) *jitterSource {
	if seed == 0 {
		seed = rand.Int63() | 1
	}
	return &jitterSource{rng: rand.New(rand.NewSource(seed))}
}

// jitter maps one scheduled delay onto [d/2, d].
func (j *jitterSource) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return d/2 + time.Duration(j.rng.Int63n(int64(d/2)+1))
}

// client is the worker-side RPC client: one TCP connection to the
// coordinator with jittered capped-backoff retry, automatic redial, and the
// seeded network-chaos layer injected around every call. Safe for
// concurrent use (the heartbeat goroutine shares it with the task loop).
type client struct {
	addr string
	dice *chaosDice

	// onChaos, when non-nil, observes every injected wire fault (kinds
	// "drop_send", "drop_reply", "duplicate", "delay", "corrupt_get",
	// "corrupt_commit", "partition_start", "partition_end") for span
	// recording. Set before the client is shared across goroutines.
	onChaos func(kind string)

	mu       sync.Mutex
	rpc      *rpc.Client
	retries  int64 // client-side retry count, drained by takeRetries
	corrupts int64 // payload corruptions injected, drained by takeCorrupts
	detected int64 // fetch-side CRC mismatches caught, drained alongside

	// retry policy
	maxAttempts int
	backoff     time.Duration
	jit         *jitterSource
}

const (
	defaultRPCAttempts = 8
	defaultRPCBackoff  = 5 * time.Millisecond
	maxRPCBackoff      = 500 * time.Millisecond
)

// dial connects to the coordinator, retrying with capped backoff. The
// retry jitter inherits the chaos seed (when set) so chaos runs stay fully
// reproducible; an unseeded client jitters from a random source, which is
// the point — unrelated workers must not share a retry clock.
func dial(addr string, chaos NetChaos) (*client, error) {
	jitterSeed := int64(0)
	if chaos.Seed != 0 {
		jitterSeed = chaos.Seed ^ 0x6a09e667f3bcc908 // decorrelate from the fate stream
	}
	c := &client{
		addr: addr, dice: newChaosDice(chaos),
		maxAttempts: defaultRPCAttempts, backoff: defaultRPCBackoff,
		jit: newJitterSource(jitterSeed),
	}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *client) redial() error {
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		conn, err := rpc.Dial("tcp", c.addr)
		if err == nil {
			c.mu.Lock()
			c.rpc = conn
			c.mu.Unlock()
			return nil
		}
		lastErr = err
		time.Sleep(c.jit.jitter(delay))
		if delay *= 2; delay > maxRPCBackoff {
			delay = maxRPCBackoff
		}
	}
	return fmt.Errorf("dist: dialing coordinator %s: %w", c.addr, lastErr)
}

func (c *client) conn() *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpc
}

// call performs one RPC with chaos injection and jittered capped-backoff
// retry. Chaos may drop the request before it is sent (the server never
// sees it), drop the reply after the server executed it (at-least-once
// delivery made visible), delay it, duplicate it, flip a payload bit, or
// silence it entirely inside a partition window; every variant either
// succeeds eventually or surfaces the transport error after the retry
// budget.
func (c *client) call(method string, args, reply any) error {
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			time.Sleep(c.jit.jitter(delay))
			if delay *= 2; delay > maxRPCBackoff {
				delay = maxRPCBackoff
			}
		}
		fate := c.dice.draw()
		if fate.partitionStart {
			c.chaos("partition_start")
		}
		if fate.partitionEnd {
			c.chaos("partition_end")
		}
		if fate.partitioned {
			lastErr = errPartitioned
			continue
		}
		if fate.delay > 0 {
			c.chaos("delay")
			time.Sleep(fate.delay)
		}
		if fate.dropSend {
			c.chaos("drop_send")
			lastErr = errors.New("dist: chaos dropped request")
			continue
		}
		sendArgs := args
		if fate.corrupt && method == "Commit" {
			// Corrupt a deep copy, never the caller's buffer: the retry after
			// the coordinator's CRC rejection must resend the clean original,
			// or the corruption would be permanent instead of transient.
			if mutated, ok := corruptCommitArgs(args, fate); ok {
				sendArgs = mutated
				c.countCorrupt()
				c.chaos("corrupt_commit")
			}
		}
		// gob leaves absent (zero-valued) fields untouched in the reply, so
		// a reused reply struct must be cleared before every decode or a
		// retry could resurrect the previous attempt's fields.
		zeroReply(reply)
		err := c.conn().Call(coordService+"."+method, sendArgs, reply)
		if err == nil && fate.duplicate {
			// Deliver the call twice; the server must be idempotent. The
			// second reply wins, like a retransmission beating the original.
			c.chaos("duplicate")
			zeroReply(reply)
			err = c.conn().Call(coordService+"."+method, sendArgs, reply)
		}
		if err == nil && fate.dropReply {
			c.chaos("drop_reply")
			lastErr = errors.New("dist: chaos dropped reply")
			continue
		}
		if err == nil {
			if fate.corrupt && method == "Get" {
				// The delivered reply is what gets corrupted — a dropped one
				// would make the injection unobservable (and uncounted).
				if gr, ok := reply.(*GetReply); ok && len(gr.Data) > 0 {
					flipPayloadBit(gr.Data, fate)
					c.countCorrupt()
					c.chaos("corrupt_get")
				}
			}
			return nil
		}
		lastErr = err
		if errors.Is(err, rpc.ErrShutdown) || isNetError(err) {
			if rerr := c.redial(); rerr != nil {
				return rerr
			}
		}
	}
	return fmt.Errorf("dist: %s failed after %d attempts: %w", method, c.maxAttempts, lastErr)
}

// errPartitioned marks calls silenced by the chaos partition window, so the
// worker's rejoin logic can tell an injected partition from a dead
// coordinator.
var errPartitioned = errors.New("dist: chaos partition silenced call")

// corruptCommitArgs deep-copies a CommitArgs and flips one data bit in one
// shipped tile (false when the commit carries no payload). The CRC field is
// copied untouched: corruption lies about the bytes, the checksum is how
// the receiver finds out.
func corruptCommitArgs(args any, f fate) (*CommitArgs, bool) {
	ca, ok := args.(*CommitArgs)
	if !ok || len(ca.Tiles) == 0 {
		return nil, false
	}
	cp := *ca
	cp.Tiles = append([]TilePayload(nil), ca.Tiles...)
	k := int(f.corruptElem % uint64(len(cp.Tiles)))
	if len(cp.Tiles[k].Data) == 0 {
		return nil, false
	}
	data := append([]float64(nil), cp.Tiles[k].Data...)
	flipPayloadBit(data, f)
	cp.Tiles[k].Data = data
	return &cp, true
}

// flipPayloadBit flips one bit of one element, chosen by the fate's raw
// random draws reduced onto the payload length.
func flipPayloadBit(data []float64, f fate) {
	i := int((f.corruptElem >> 8) % uint64(len(data)))
	data[i] = math.Float64frombits(math.Float64bits(data[i]) ^ (1 << f.corruptBit))
}

func (c *client) countCorrupt() {
	c.mu.Lock()
	c.corrupts++
	c.mu.Unlock()
}

// countDetected records a fetch-side CRC mismatch (called by the worker).
func (c *client) countDetected() {
	c.mu.Lock()
	c.detected++
	c.mu.Unlock()
}

func (c *client) chaos(kind string) {
	if c.onChaos != nil {
		c.onChaos(kind)
	}
}

// isNetError reports whether err looks like a broken transport (as opposed
// to a server-side handler error, which net/rpc returns as a ServerError).
func isNetError(err error) bool {
	var se rpc.ServerError
	return !errors.As(err, &se)
}

// zeroReply clears a reply struct in place before a decode.
func zeroReply(reply any) {
	if v := reflect.ValueOf(reply); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
}

// takeRetries drains the client-side retry counter for piggybacking on the
// next Lease call.
func (c *client) takeRetries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.retries
	c.retries = 0
	return n
}

// takeCorrupts drains the injected/detected corruption counters for
// piggybacking on the next Lease or Bye call.
func (c *client) takeCorrupts() (injected, detected int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	injected, detected = c.corrupts, c.detected
	c.corrupts, c.detected = 0, 0
	return injected, detected
}

func (c *client) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rpc != nil {
		_ = c.rpc.Close()
	}
}
