package dist

import (
	"errors"
	"fmt"
	"net/rpc"
	"reflect"
	"sync"
	"time"
)

// This file is the wire protocol of the distributed runtime: the net/rpc
// message types exchanged between stateless workers and the coordinator,
// and the retrying client the workers (and the chaos layer) speak through.
//
// The protocol is deliberately at-least-once on the client side and
// exactly-once on the server side: every call may be retried (or
// duplicated by chaos), so every server handler is idempotent — Commit is
// keyed by (task, lease token) and a re-delivered commit of a completed
// task is acknowledged without effect. That split is what makes worker
// death, dropped replies, and duplicated packets all collapse into the
// same safe outcome: the answer never changes, only the traffic bill does.

// coordService is the registered net/rpc service name.
const coordService = "Coord"

// TaskSpec names one remotely executable tile task. Kind selects the
// kernel; K/I/J are the panel step and tile coordinates it operates on
// (unused coordinates are zero — see accesses()). Specs carry no closures:
// a worker reconstructs the full operand list and kernel call from the
// spec plus the job geometry, which is what makes tasks re-executable on
// any process.
type TaskSpec struct {
	ID   int
	Step int // panel step, for checkpoint barriers
	Kind string
	K    int
	I    int
	J    int
}

// WireSpan is one trace event in transit from a worker to the coordinator:
// a whole task attempt (Phase ""), a fetch/compute/commit sub-phase, or a
// zero-duration fault instant (see trace.IsFault). Timestamps are the
// recording process's local clock (UnixNano); the coordinator re-bases
// them onto its own epoch with the RTT-midpoint offset shipped alongside.
type WireSpan struct {
	ID      int    // task id, -1 for scatter prefetch and chaos instants
	Name    string // kernel kind, or "scatter"
	Worker  int    // worker id at recording time (lane in the merged trace)
	Attempt int
	Phase   string
	StartNS int64 // local clock, UnixNano
	EndNS   int64
	Bytes   int64 // payload moved, fetch/commit phases only
	TileI   int
	TileJ   int
	HasTile bool
	Outcome int // sched.Outcome, whole-attempt spans only
	Err     string
}

// RegisterArgs announces a new (or re-registering) worker.
type RegisterArgs struct{}

// RegisterReply hands the worker its identity and the job geometry.
type RegisterReply struct {
	Worker int // worker id, unique per registration
	Slot   int // process-grid slot owned (block-cyclic placement), -1 if none free
	M, N   int
	NB     int
	Op     string
	Grid   int // total grid slots (P)
	GridP  int // grid rows; columns are Grid/GridP
	// LeaseMS and PollMS are the lease duration and the idle re-poll
	// interval the coordinator wants this worker to use.
	LeaseMS int
	PollMS  int
	// HeartbeatMS is the interval the worker must beat at to stay live.
	HeartbeatMS int
	// Scatter lists the tiles homed at Slot, for the initial prefetch under
	// strict placement ({} otherwise). CacheRemote permits caching fetched
	// remote tiles by version; strict placement disables it so measured
	// task traffic matches the per-access replay cost model.
	Scatter     [][2]int
	CacheRemote bool
	// CoordNS is the coordinator's clock (nanoseconds since its trace
	// epoch) when the handler ran, for RTT-midpoint offset estimation.
	CoordNS int64
}

// LeaseArgs asks for one ready task. RPCRetries piggybacks the number of
// client-side RPC retries the worker performed since its last report, so
// the coordinator's metrics see wire-level flakiness it cannot observe
// directly.
type LeaseArgs struct {
	Worker     int
	RPCRetries int64
}

// LeaseReply grants a task (nil Task means "nothing ready; poll again in
// PollMS"). Vers lists the current version of each tile the task touches,
// in accesses() order (reads then writes), so worker caches stay coherent
// under stolen writes. Done reports job completion; Evicted tells a worker
// the coordinator declared it dead (it may re-register for a fresh id).
type LeaseReply struct {
	Task    *TaskSpec
	Token   int64
	Vers    []int
	PollMS  int
	Done    bool
	Evicted bool
	// Attempt is the 1-based execution attempt this lease grants, for span
	// annotation.
	Attempt int
}

// HeartbeatArgs keeps a worker and its leases alive between Lease calls.
// It doubles as the trace-shard shipping channel: Spans carries a batch of
// locally recorded spans, SpanBase the cumulative index of the batch's
// first span (so retransmissions and re-shipped unacked batches are
// absorbed exactly once), and OffsetNS/RTTNS the worker's current best
// (min-RTT) clock-offset sample.
type HeartbeatArgs struct {
	Worker    int
	Spans     []WireSpan
	SpanBase  int64
	OffsetNS  int64
	RTTNS     int64
	HasOffset bool
}
type HeartbeatReply struct {
	Evicted bool
	CoordNS int64
}

// GetArgs fetches one tile. Scatter marks the initial home-tile prefetch,
// billed separately from task-driven traffic.
type GetArgs struct {
	Worker  int
	I, J    int
	Scatter bool
}

// GetReply carries the tile payload (column-major, ld = rows).
type GetReply struct {
	Data []float64
	Ver  int
}

// TilePayload is one written tile shipped back in a commit.
type TilePayload struct {
	I, J int
	Data []float64
}

// CommitArgs completes a leased task, shipping its outputs. Err, when
// non-empty, reports a deterministic kernel failure (e.g. a non-SPD pivot)
// instead of outputs; the coordinator fails the job. Token must match the
// task's current lease or the commit is rejected (a reaped straggler).
type CommitArgs struct {
	Worker int
	Task   int
	Token  int64
	Tiles  []TilePayload
	Err    string
}

// CommitReply acknowledges a commit. Vers are the store versions assigned
// to the shipped tiles, in Tiles order, so the committing worker can cache
// its own outputs coherently. Accepted is false for stale-token commits:
// the work was re-leased elsewhere and this result is discarded.
type CommitReply struct {
	Accepted bool
	Vers     []int
	Evicted  bool
}

// ByeArgs deregisters a worker gracefully (mid-run scale-down), flushing
// any trace spans still unshipped (same fields as HeartbeatArgs).
type ByeArgs struct {
	Worker    int
	Spans     []WireSpan
	SpanBase  int64
	OffsetNS  int64
	RTTNS     int64
	HasOffset bool
}
type ByeReply struct{}

// ErrEvicted is returned by worker RPC helpers when the coordinator has
// declared this worker dead; the worker may re-register.
var ErrEvicted = errors.New("dist: worker evicted by coordinator")

// client is the worker-side RPC client: one TCP connection to the
// coordinator with capped-backoff retry, automatic redial, and the seeded
// network-chaos layer injected around every call. Safe for concurrent use
// (the heartbeat goroutine shares it with the task loop).
type client struct {
	addr string
	dice *chaosDice

	// onChaos, when non-nil, observes every injected wire fault (kinds
	// "drop_send", "drop_reply", "duplicate", "delay") for span recording.
	// Set before the client is shared across goroutines.
	onChaos func(kind string)

	mu      sync.Mutex
	rpc     *rpc.Client
	retries int64 // client-side retry count, drained by TakeRetries

	// retry policy
	maxAttempts int
	backoff     time.Duration
}

const (
	defaultRPCAttempts = 8
	defaultRPCBackoff  = 5 * time.Millisecond
	maxRPCBackoff      = 500 * time.Millisecond
)

// dial connects to the coordinator, retrying with capped backoff.
func dial(addr string, chaos NetChaos) (*client, error) {
	c := &client{addr: addr, dice: newChaosDice(chaos), maxAttempts: defaultRPCAttempts, backoff: defaultRPCBackoff}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *client) redial() error {
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		conn, err := rpc.Dial("tcp", c.addr)
		if err == nil {
			c.mu.Lock()
			c.rpc = conn
			c.mu.Unlock()
			return nil
		}
		lastErr = err
		time.Sleep(delay)
		if delay *= 2; delay > maxRPCBackoff {
			delay = maxRPCBackoff
		}
	}
	return fmt.Errorf("dist: dialing coordinator %s: %w", c.addr, lastErr)
}

func (c *client) conn() *rpc.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpc
}

// call performs one RPC with chaos injection and capped-backoff retry.
// Chaos may drop the request before it is sent (the server never sees it),
// drop the reply after the server executed it (at-least-once delivery made
// visible), delay it, or duplicate it; every variant either succeeds
// eventually or surfaces the transport error after the retry budget.
func (c *client) call(method string, args, reply any) error {
	var lastErr error
	delay := c.backoff
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			time.Sleep(delay)
			if delay *= 2; delay > maxRPCBackoff {
				delay = maxRPCBackoff
			}
		}
		fate := c.dice.draw()
		if fate.delay > 0 {
			c.chaos("delay")
			time.Sleep(fate.delay)
		}
		if fate.dropSend {
			c.chaos("drop_send")
			lastErr = errors.New("dist: chaos dropped request")
			continue
		}
		// gob leaves absent (zero-valued) fields untouched in the reply, so
		// a reused reply struct must be cleared before every decode or a
		// retry could resurrect the previous attempt's fields.
		zeroReply(reply)
		err := c.conn().Call(coordService+"."+method, args, reply)
		if err == nil && fate.duplicate {
			// Deliver the call twice; the server must be idempotent. The
			// second reply wins, like a retransmission beating the original.
			c.chaos("duplicate")
			zeroReply(reply)
			err = c.conn().Call(coordService+"."+method, args, reply)
		}
		if err == nil && fate.dropReply {
			c.chaos("drop_reply")
			lastErr = errors.New("dist: chaos dropped reply")
			continue
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, rpc.ErrShutdown) || isNetError(err) {
			if rerr := c.redial(); rerr != nil {
				return rerr
			}
		}
	}
	return fmt.Errorf("dist: %s failed after %d attempts: %w", method, c.maxAttempts, lastErr)
}

func (c *client) chaos(kind string) {
	if c.onChaos != nil {
		c.onChaos(kind)
	}
}

// isNetError reports whether err looks like a broken transport (as opposed
// to a server-side handler error, which net/rpc returns as a ServerError).
func isNetError(err error) bool {
	var se rpc.ServerError
	return !errors.As(err, &se)
}

// zeroReply clears a reply struct in place before a decode.
func zeroReply(reply any) {
	if v := reflect.ValueOf(reply); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
}

// takeRetries drains the client-side retry counter for piggybacking on the
// next Lease call.
func (c *client) takeRetries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.retries
	c.retries = 0
	return n
}

func (c *client) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rpc != nil {
		_ = c.rpc.Close()
	}
}
