package dist_test

import (
	"math/rand"
	"testing"

	"exadla/internal/core"
	"exadla/internal/dist"
	"exadla/internal/ft"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

func choleskyGraph(n, nb int) (*sched.Graph, *tile.Matrix[float64]) {
	rng := rand.New(rand.NewSource(1))
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	if err := core.Cholesky(rec, a); err != nil {
		panic(err)
	}
	return rec.Graph(), a
}

func TestSingleProcessNoComm(t *testing.T) {
	g, a := choleskyGraph(64, 16)
	stats := dist.Count(g, 1, dist.BlockCyclic(a, 1, 1))
	if stats.Messages != 0 || stats.Words != 0 {
		t.Errorf("single process moved data: %v", stats)
	}
	if stats.RemoteTasks != 0 {
		t.Errorf("remote tasks on one process: %d", stats.RemoteTasks)
	}
}

func TestCommGrowsThenAmortizes(t *testing.T) {
	// More processes → more remote operands, but words moved per process
	// must shrink (the point of the 2D distribution).
	g, a := choleskyGraph(128, 16)
	prevWords := 0
	for _, pq := range [][2]int{{1, 2}, {2, 2}, {2, 4}, {4, 4}} {
		p, q := pq[0], pq[1]
		stats := dist.Count(g, p*q, dist.BlockCyclic(a, p, q))
		if stats.Words <= prevWords {
			// Total comm should grow with process count for fixed n.
			t.Errorf("P=%d: words %d not above previous %d", p*q, stats.Words, prevWords)
		}
		prevWords = stats.Words
	}
}

func TestBlockCyclicPlacement(t *testing.T) {
	a := tile.New[float64](64, 64, 16) // 4×4 tiles
	place := dist.BlockCyclic(a, 2, 2)
	// Tile (0,0) → proc 0; (0,1) → 1; (1,0) → 2; (1,1) → 3; (2,2) → 0.
	cases := []struct{ i, j, proc int }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {1, 1, 3}, {2, 2, 0}, {3, 1, 3},
	}
	for _, c := range cases {
		proc, words := place(a.Handle(c.i, c.j))
		if proc != c.proc {
			t.Errorf("tile (%d,%d) on proc %d, want %d", c.i, c.j, proc, c.proc)
		}
		if words != 16*16 {
			t.Errorf("tile (%d,%d) words %d", c.i, c.j, words)
		}
	}
}

func TestForeignHandlesAreFree(t *testing.T) {
	a := tile.New[float64](32, 32, 16)
	b := tile.New[float64](32, 32, 16)
	place := dist.BlockCyclic(a, 2, 2)
	if _, words := place(b.Handle(0, 0)); words != 0 {
		t.Error("foreign matrix handle has nonzero size")
	}
	if _, words := place("not-a-tile"); words != 0 {
		t.Error("non-tile handle has nonzero size")
	}
}

func TestMergePlacements(t *testing.T) {
	a := tile.New[float64](32, 32, 16)
	b := tile.New[float64](32, 32, 16)
	place := dist.Merge(dist.BlockCyclic(a, 2, 1), dist.BlockCyclic(b, 1, 2))
	if proc, words := place(a.Handle(1, 0)); proc != 1 || words == 0 {
		t.Errorf("a(1,0): proc=%d words=%d", proc, words)
	}
	if proc, words := place(b.Handle(0, 1)); proc != 1 || words == 0 {
		t.Errorf("b(0,1): proc=%d words=%d", proc, words)
	}
}

func TestTreeQRMovesFewerPanelWords(t *testing.T) {
	// On a 1D process column (each tile row its own process), the flat
	// chain ships the evolving R through every merge serially from the
	// diagonal owner; the tree's pairwise merges halve the R traffic each
	// round. Both must beat a naive expectation and tree ≤ flat.
	m, n, nb := 16*32, 32, 32 // 16×1 tiles
	rng := rand.New(rand.NewSource(2))
	aD := matgen.Dense[float64](rng, m, n)

	run := func(tree bool) dist.CommStats {
		a := tile.FromColMajor(m, n, aD, m, nb)
		rec := sched.NewRecorder()
		var f *core.QRFactors[float64]
		if tree {
			f = core.QRTree(rec, a)
		} else {
			f = core.QR(rec, a)
		}
		place := dist.Merge(
			dist.BlockCyclic(a, 16, 1),
			dist.BlockCyclic(f.T, 16, 1),
			func() dist.Placement {
				if f.T2 != nil {
					return dist.BlockCyclic(f.T2, 16, 1)
				}
				return func(sched.Handle) (int, int) { return 0, 0 }
			}(),
		)
		return dist.Count(rec.Graph(), 16, place)
	}
	flat := run(false)
	tr := run(true)
	if flat.Words == 0 || tr.Words == 0 {
		t.Fatalf("degenerate counts: flat=%v tree=%v", flat, tr)
	}
	if tr.Words > flat.Words {
		t.Errorf("tree moved more words (%d) than flat (%d)", tr.Words, flat.Words)
	}
}

func TestCommDepthTreeBeatsFlat(t *testing.T) {
	m, n, nb := 16*32, 32, 32
	rng := rand.New(rand.NewSource(3))
	aD := matgen.Dense[float64](rng, m, n)
	depth := func(tree bool) int {
		a := tile.FromColMajor(m, n, aD, m, nb)
		rec := sched.NewRecorder()
		var f *core.QRFactors[float64]
		if tree {
			f = core.QRTree(rec, a)
		} else {
			f = core.QR(rec, a)
		}
		places := []dist.Placement{dist.BlockCyclic(a, 16, 1), dist.BlockCyclic(f.T, 16, 1)}
		if f.T2 != nil {
			places = append(places, dist.BlockCyclic(f.T2, 16, 1))
		}
		return dist.CommDepth(rec.Graph(), dist.Merge(places...))
	}
	flat, tr := depth(false), depth(true)
	if tr >= flat {
		t.Errorf("tree comm depth %d not below flat %d", tr, flat)
	}
	if tr > flat/2 {
		t.Errorf("tree depth %d not ≪ flat depth %d", tr, flat)
	}
}

func TestCommDepthZeroOnOneProcess(t *testing.T) {
	g, a := choleskyGraph(64, 16)
	if d := dist.CommDepth(g, dist.BlockCyclic(a, 1, 1)); d != 0 {
		t.Errorf("single-process comm depth %d", d)
	}
}

func TestParityPlacement(t *testing.T) {
	a := tile.New[float64](64, 64, 16) // 4×4 tiles
	e := ft.NewRowErasure(a, nil)
	place := dist.ParityPlacement(a.NT, 2, 2)
	// The checksum column sits at column index nt=4, so on a 2×2 grid row
	// i's parity lives on process (i mod 2)·2 + (4 mod 2) — the grid column
	// that would hold tile (i, 4).
	for _, c := range []struct{ row, proc int }{{0, 0}, {1, 2}, {2, 0}, {3, 2}} {
		proc, words := place(e.RowHandle(c.row))
		if proc != c.proc {
			t.Errorf("parity row %d on proc %d, want %d", c.row, proc, c.proc)
		}
		if words != 16*16 {
			t.Errorf("parity row %d words %d, want 256", c.row, words)
		}
	}
	// Matrix tiles are not the parity placement's business.
	if _, words := place(a.Handle(0, 0)); words != 0 {
		t.Error("matrix tile handle billed by parity placement")
	}
}

// TestParityCommitTrafficCounted replays a resilient Cholesky with erasure
// armed: every commit ships a finalized tile to the checksum column and a
// reconstruction pulls the parity back, traffic only visible once the
// parity handles are placed. The plain block-cyclic placement must miss
// it, the merged one must bill it.
func TestParityCommitTrafficCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, nb := 128, 16
	aD := matgen.DiagDomSPD[float64](rng, n)
	a := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	err := core.ResilientCholesky(rec, a, core.FTOptions{
		Erasure:   true,
		LoseTiles: []core.TileLoss{{Step: 2, I: 3, J: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rec.Graph()

	// Without the parity placement the reconstruction looks free: its only
	// placed operand is the tile it rebuilds, which is its own home. (The
	// commit tasks still show traffic — their unplaced parity output
	// defaults them to process 0, which is exactly the mis-accounting
	// ParityPlacement fixes.)
	plain := dist.Count(g, 4, dist.BlockCyclic(a, 2, 2))
	if plain.ByKernel["reconstruct"] != 0 {
		t.Fatalf("plain placement billed reconstruction traffic: %v", plain.ByKernel)
	}

	merged := dist.Count(g, 4, dist.Merge(
		dist.BlockCyclic(a, 2, 2), dist.ParityPlacement(a.NT, 2, 2)))
	if merged.ByKernel["commit"] == 0 {
		t.Error("merged placement bills no commit traffic")
	}
	if merged.ByKernel["reconstruct"] == 0 {
		t.Error("merged placement bills no reconstruction traffic")
	}
	// The erasure scheme's traffic is a real surcharge over an unprotected
	// factorization of the same matrix on the same grid.
	clean, ca := choleskyGraph(n, nb)
	cleanStats := dist.Count(clean, 4, dist.BlockCyclic(ca, 2, 2))
	if merged.Words <= cleanStats.Words {
		t.Errorf("erasure comm bill %d not above unprotected %d", merged.Words, cleanStats.Words)
	}
}

// TestCountChargesRetriedExecutions: a node the runtime retried
// (Executions > 1) re-fetches its remote operands once per execution, so
// the comm bill scales with the annotation. Nodes left at the zero value
// replay as a single fault-free execution.
func TestCountChargesRetriedExecutions(t *testing.T) {
	a := tile.New[float64](64, 64, 16) // 4×4 tiles of 256 words
	place := dist.BlockCyclic(a, 2, 2)
	// One gemm-shaped task homed on tile (1,1)'s process reading two tiles
	// that live elsewhere.
	node := sched.GraphNode{
		Name:   "gemm",
		Reads:  []sched.Handle{a.Handle(0, 0), a.Handle(0, 1)},
		Writes: []sched.Handle{a.Handle(1, 1)},
	}
	base := dist.Count(&sched.Graph{Nodes: []sched.GraphNode{node}}, 4, place)
	if base.Messages != 2 || base.Words != 2*256 {
		t.Fatalf("baseline comm = %d msgs / %d words, want 2 / 512", base.Messages, base.Words)
	}

	retried := node
	retried.Executions = 3
	got := dist.Count(&sched.Graph{Nodes: []sched.GraphNode{retried}}, 4, place)
	if got.Messages != 3*base.Messages || got.Words != 3*base.Words {
		t.Errorf("3 executions: %d msgs / %d words, want %d / %d",
			got.Messages, got.Words, 3*base.Messages, 3*base.Words)
	}
	if got.ByKernel["gemm"] != 3*base.ByKernel["gemm"] {
		t.Errorf("ByKernel[gemm] = %d, want %d", got.ByKernel["gemm"], 3*base.ByKernel["gemm"])
	}
	if got.RemoteTasks != 1 {
		t.Errorf("RemoteTasks = %d, want 1 (retries re-run the same task)", got.RemoteTasks)
	}
}

// TestCountReplayWithRetriedDAG replays a small recorded Cholesky DAG,
// annotates a few interior nodes as retried, and checks the totals move by
// exactly the extra executions' operand words.
func TestCountReplayWithRetriedDAG(t *testing.T) {
	g, a := choleskyGraph(128, 16)
	place := dist.BlockCyclic(a, 2, 2)
	base := dist.Count(g, 4, place)

	// Annotate every 5th non-barrier node as having run twice and recompute
	// the expected delta from the nodes' own remote operand words.
	extra := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Barrier || i%5 != 0 {
			continue
		}
		n.Executions = 2
		one := dist.Count(&sched.Graph{Nodes: []sched.GraphNode{{
			Name: n.Name, Reads: n.Reads, Writes: n.Writes,
		}}}, 4, place)
		extra += one.Words
	}
	got := dist.Count(g, 4, place)
	if got.Words != base.Words+extra {
		t.Errorf("retried replay words = %d, want %d + %d", got.Words, base.Words, extra)
	}
	if got.Messages <= base.Messages {
		t.Errorf("retried replay messages %d not above baseline %d", got.Messages, base.Messages)
	}
}
