package dist

import (
	"fmt"

	"exadla/internal/ft"
	"exadla/internal/tile"
)

// store is the coordinator's tile object store — the numpywren-style
// disaggregated half of the runtime. It is the single source of truth for
// tile data: every commit lands here before the task counts as done, so a
// worker dying after commit loses nothing and a worker dying before
// commit loses only a lease.
//
// On top of plain storage it keeps the ft.RowErasure XOR parity of every
// *finalized* tile (one the factorization will never write again). That
// enables write-back residency: with WriteBack on, a finalized tile's
// bytes may be dropped from the store — only the committing worker holds
// them — as long as at most one tile per tile row is dropped, because the
// parity plus the in-store peers reconstructs a single missing tile
// bit-exactly. When the worker holding a resident tile dies, the store
// reconstructs instead of re-running the task chain that produced it:
// recovery cost is one XOR pass, not a DAG suffix.
//
// Every tile also carries an at-rest CRC64 (see ft.CRC64): set from the
// worker's end-to-end payload checksum on commit, recomputed after local
// kernels and reconstructions, verified before any byte is served, and
// re-verified by the background scrub. A mismatch is at-rest rot; a rotted
// *finalized* tile is repaired from the row parity (the same machinery as
// residency), while rot the parity cannot cover — an unfinalized tile, or
// a second fault in a row that already dropped a tile — fails the read
// loudly rather than letting silent corruption into the factor.
//
// The store is not internally locked; the coordinator serializes access
// under its own mutex.
type store struct {
	a   *tile.Matrix[float64]
	ers *ft.RowErasure
	// ver[i][j] counts accepted writes of tile (i,j). The DAG serializes
	// writers, so the version sequence — and hence the data each version
	// names — is deterministic; workers use versions for cache coherence.
	ver [][]int
	// crc[i][j] is the at-rest CRC64 of tile (i,j)'s current bytes.
	crc [][]uint64
	// dirty[i][j] latches a detected-but-not-yet-repaired rot, so one rotted
	// tile is counted once across repeated scrub passes.
	dirty [][]bool
	// resident[i][j] is the worker holding the only copy of a dropped
	// finalized tile, or -1 when the bytes are in the store.
	resident [][]int
	// residentInRow[i] counts dropped tiles in tile row i (kept ≤ 1).
	residentInRow []int
	writeBack     bool
	// scrubCur is the scrub's round-robin cursor (tile index, row-major).
	scrubCur int
	// onReconstruct, when non-nil, is called once per rebuilt tile (the
	// coordinator mirrors it into the dist.tiles_reconstructed counter).
	onReconstruct func()
	// onRotDetect/onRotRepair observe at-rest integrity events (nil-safe).
	onRotDetect func(i, j int)
	onRotRepair func(i, j int)
}

func newStore(a *tile.Matrix[float64], writeBack bool, onReconstruct func()) *store {
	s := &store{
		a:             a,
		ers:           ft.NewRowErasure(a, nil),
		ver:           make([][]int, a.MT),
		crc:           make([][]uint64, a.MT),
		dirty:         make([][]bool, a.MT),
		resident:      make([][]int, a.MT),
		residentInRow: make([]int, a.MT),
		writeBack:     writeBack,
		onReconstruct: onReconstruct,
	}
	for i := 0; i < a.MT; i++ {
		s.ver[i] = make([]int, a.NT)
		s.crc[i] = make([]uint64, a.NT)
		s.dirty[i] = make([]bool, a.NT)
		s.resident[i] = make([]int, a.NT)
		for j := 0; j < a.NT; j++ {
			s.resident[i][j] = -1
			s.crc[i][j] = ft.CRC64(a.Tile(i, j))
		}
	}
	return s
}

// get returns a copy of tile c's data, its version, and its at-rest CRC,
// reconstructing a dropped resident tile from parity first and repairing
// detected rot where the parity allows. requester is the worker asking (so
// its own residency is not pointlessly reconstructed — it has the bytes
// cached; anyone else's read needs them in-store).
func (s *store) get(c coord, requester int) ([]float64, int, uint64, error) {
	i, j := c[0], c[1]
	if w := s.resident[i][j]; w >= 0 && w != requester {
		if err := s.reconstruct(c); err != nil {
			return nil, 0, 0, err
		}
	}
	if s.resident[i][j] < 0 {
		if err := s.verifyLocked(c); err != nil {
			return nil, 0, 0, err
		}
	}
	t := s.a.Tile(i, j)
	out := make([]float64, len(t))
	copy(out, t)
	return out, s.ver[i][j], s.crc[i][j], nil
}

// verifyLocked checks tile c's bytes against its at-rest CRC and repairs a
// mismatch from the row parity when possible. An unrepairable mismatch —
// no parity coverage (unfinalized tile) or a second fault in the row — is
// an error: the caller must not serve or snapshot rotted bytes.
func (s *store) verifyLocked(c coord) error {
	i, j := c[0], c[1]
	if ft.CRC64(s.a.Tile(i, j)) == s.crc[i][j] {
		s.dirty[i][j] = false
		return nil
	}
	if !s.dirty[i][j] {
		s.dirty[i][j] = true
		if s.onRotDetect != nil {
			s.onRotDetect(i, j)
		}
	}
	if !s.ers.Committed(i, j) {
		return fmt.Errorf("dist: tile (%d,%d) failed its at-rest CRC and has no parity coverage", i, j)
	}
	if s.residentInRow[i] > 0 {
		return fmt.Errorf("dist: tile (%d,%d) failed its at-rest CRC but row %d has a dropped peer (double fault)", i, j, i)
	}
	if err := s.ers.ReconstructTile(i, j); err != nil {
		return err
	}
	if got := ft.CRC64(s.a.Tile(i, j)); got != s.crc[i][j] {
		return fmt.Errorf("dist: tile (%d,%d) reconstruction does not match its committed CRC (peer rot?)", i, j)
	}
	s.dirty[i][j] = false
	if s.onRotRepair != nil {
		s.onRotRepair(i, j)
	}
	if s.onReconstruct != nil {
		s.onReconstruct()
	}
	return nil
}

// scrub verifies up to max non-resident tiles from the round-robin cursor,
// repairing what the parity covers. Unrepairable rot is left latched (the
// read path fails loudly when the tile is actually needed); scrub itself
// never fails the job. Returns how many tiles it scanned.
func (s *store) scrub(max int) int {
	total := s.a.MT * s.a.NT
	if max > total {
		max = total
	}
	scanned := 0
	for k := 0; k < max; k++ {
		idx := (s.scrubCur + k) % total
		i, j := idx/s.a.NT, idx%s.a.NT
		if s.resident[i][j] >= 0 {
			continue // no bytes in-store to check
		}
		_ = s.verifyLocked(coord{i, j})
		scanned++
	}
	s.scrubCur = (s.scrubCur + max) % total
	return scanned
}

// put stores a committed tile payload (whose CRC the coordinator has
// already verified end-to-end), bumps its version, and — when the
// committing task finalizes the tile — folds it into the row parity and
// possibly drops the bytes (write-back residency at the committing
// worker). Returns the new version.
func (s *store) put(c coord, data []float64, crc uint64, worker int, finalized bool) (int, error) {
	i, j := c[0], c[1]
	t := s.a.Tile(i, j)
	if len(data) != len(t) {
		return 0, fmt.Errorf("dist: tile (%d,%d) payload has %d words, want %d", i, j, len(data), len(t))
	}
	copy(t, data)
	s.ver[i][j]++
	s.crc[i][j] = crc
	s.dirty[i][j] = false
	if s.resident[i][j] >= 0 {
		// The bytes are back (an unexpected re-write of a dropped tile);
		// clear residency rather than hold a stale claim.
		s.clearResident(c)
	}
	if finalized {
		s.ers.Commit(i, j)
		if s.writeBack && s.residentInRow[i] == 0 && worker >= 0 {
			// Drop the bytes; the worker keeps the only copy. One per row, so
			// a single-tile reconstruction is always possible from peers.
			s.a.SetTile(i, j, make([]float64, len(t)))
			s.resident[i][j] = worker
			s.residentInRow[i]++
		}
	}
	return s.ver[i][j], nil
}

// putLocal records a coordinator-local in-place write of tile c (the
// degradation ladder's fallback executes kernels directly on the store
// matrix; any resident operand must be reconstructed before the kernel).
// The at-rest CRC is recomputed from the freshly written bytes — local
// writes have no wire hop, so the chain starts here.
func (s *store) putLocal(c coord, finalized bool) int {
	s.ver[c[0]][c[1]]++
	s.crc[c[0]][c[1]] = ft.CRC64(s.a.Tile(c[0], c[1]))
	s.dirty[c[0]][c[1]] = false
	if finalized {
		s.ers.Commit(c[0], c[1])
	}
	return s.ver[c[0]][c[1]]
}

// reconstruct rebuilds a dropped tile in-store from the row parity and
// clears its residency. The rebuilt bytes are checked against the tile's
// committed CRC — a mismatch means a peer rotted while this tile's bytes
// were dropped, which single parity cannot untangle.
func (s *store) reconstruct(c coord) error {
	i, j := c[0], c[1]
	if err := s.ers.ReconstructTile(i, j); err != nil {
		return err
	}
	if got := ft.CRC64(s.a.Tile(i, j)); got != s.crc[i][j] {
		return fmt.Errorf("dist: tile (%d,%d) reconstruction does not match its committed CRC (peer rot?)", i, j)
	}
	s.clearResident(c)
	if s.onReconstruct != nil {
		s.onReconstruct()
	}
	return nil
}

func (s *store) clearResident(c coord) {
	i, j := c[0], c[1]
	if s.resident[i][j] >= 0 {
		s.resident[i][j] = -1
		s.residentInRow[i]--
	}
}

// dropWorker reconstructs every tile resident on a dead or departed
// worker — called before the worker's cache ceases to exist (eviction,
// Bye). Returns how many tiles were rebuilt.
func (s *store) dropWorker(worker int) (int, error) {
	n := 0
	for i := 0; i < s.a.MT; i++ {
		for j := 0; j < s.a.NT; j++ {
			if s.resident[i][j] == worker {
				if err := s.reconstruct(coord{i, j}); err != nil {
					return n, err
				}
				n++
			}
		}
	}
	return n, nil
}

// materialize reconstructs every dropped tile, leaving the full matrix
// in-store — the final gather, and the precondition for a checkpoint
// snapshot (which serializes the store's bytes).
func (s *store) materialize() error {
	for i := 0; i < s.a.MT; i++ {
		for j := 0; j < s.a.NT; j++ {
			if s.resident[i][j] >= 0 {
				if err := s.reconstruct(coord{i, j}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// versions returns the current versions of the listed tiles.
func (s *store) versions(cs []coord) []int {
	out := make([]int, len(cs))
	for k, c := range cs {
		out[k] = s.ver[c[0]][c[1]]
	}
	return out
}
