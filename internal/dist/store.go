package dist

import (
	"fmt"

	"exadla/internal/ft"
	"exadla/internal/tile"
)

// store is the coordinator's tile object store — the numpywren-style
// disaggregated half of the runtime. It is the single source of truth for
// tile data: every commit lands here before the task counts as done, so a
// worker dying after commit loses nothing and a worker dying before
// commit loses only a lease.
//
// On top of plain storage it keeps the ft.RowErasure XOR parity of every
// *finalized* tile (one the factorization will never write again). That
// enables write-back residency: with WriteBack on, a finalized tile's
// bytes may be dropped from the store — only the committing worker holds
// them — as long as at most one tile per tile row is dropped, because the
// parity plus the in-store peers reconstructs a single missing tile
// bit-exactly. When the worker holding a resident tile dies, the store
// reconstructs instead of re-running the task chain that produced it:
// recovery cost is one XOR pass, not a DAG suffix.
//
// The store is not internally locked; the coordinator serializes access
// under its own mutex.
type store struct {
	a   *tile.Matrix[float64]
	ers *ft.RowErasure
	// ver[i][j] counts accepted writes of tile (i,j). The DAG serializes
	// writers, so the version sequence — and hence the data each version
	// names — is deterministic; workers use versions for cache coherence.
	ver [][]int
	// resident[i][j] is the worker holding the only copy of a dropped
	// finalized tile, or -1 when the bytes are in the store.
	resident [][]int
	// residentInRow[i] counts dropped tiles in tile row i (kept ≤ 1).
	residentInRow []int
	writeBack     bool
	// onReconstruct, when non-nil, is called once per rebuilt tile (the
	// coordinator mirrors it into the dist.tiles_reconstructed counter).
	onReconstruct func()
}

func newStore(a *tile.Matrix[float64], writeBack bool, onReconstruct func()) *store {
	s := &store{
		a:             a,
		ers:           ft.NewRowErasure(a, nil),
		ver:           make([][]int, a.MT),
		resident:      make([][]int, a.MT),
		residentInRow: make([]int, a.MT),
		writeBack:     writeBack,
		onReconstruct: onReconstruct,
	}
	for i := 0; i < a.MT; i++ {
		s.ver[i] = make([]int, a.NT)
		s.resident[i] = make([]int, a.NT)
		for j := 0; j < a.NT; j++ {
			s.resident[i][j] = -1
		}
	}
	return s
}

// get returns a copy of tile c's data and its version, reconstructing a
// dropped resident tile from parity first. requester is the worker asking
// (so its own residency is not pointlessly reconstructed — it has the
// bytes cached; anyone else's read needs them in-store).
func (s *store) get(c coord, requester int) ([]float64, int, error) {
	i, j := c[0], c[1]
	if w := s.resident[i][j]; w >= 0 && w != requester {
		if err := s.reconstruct(c); err != nil {
			return nil, 0, err
		}
	}
	t := s.a.Tile(i, j)
	out := make([]float64, len(t))
	copy(out, t)
	return out, s.ver[i][j], nil
}

// put stores a committed tile payload, bumps its version, and — when the
// committing task finalizes the tile — folds it into the row parity and
// possibly drops the bytes (write-back residency at the committing
// worker). Returns the new version.
func (s *store) put(c coord, data []float64, worker int, finalized bool) (int, error) {
	i, j := c[0], c[1]
	t := s.a.Tile(i, j)
	if len(data) != len(t) {
		return 0, fmt.Errorf("dist: tile (%d,%d) payload has %d words, want %d", i, j, len(data), len(t))
	}
	copy(t, data)
	s.ver[i][j]++
	if s.resident[i][j] >= 0 {
		// The bytes are back (an unexpected re-write of a dropped tile);
		// clear residency rather than hold a stale claim.
		s.clearResident(c)
	}
	if finalized {
		s.ers.Commit(i, j)
		if s.writeBack && s.residentInRow[i] == 0 && worker >= 0 {
			// Drop the bytes; the worker keeps the only copy. One per row, so
			// a single-tile reconstruction is always possible from peers.
			s.a.SetTile(i, j, make([]float64, len(t)))
			s.resident[i][j] = worker
			s.residentInRow[i]++
		}
	}
	return s.ver[i][j], nil
}

// putLocal records a coordinator-local in-place write of tile c (the
// degradation ladder's fallback executes kernels directly on the store
// matrix; any resident operand must be reconstructed before the kernel).
func (s *store) putLocal(c coord, finalized bool) int {
	s.ver[c[0]][c[1]]++
	if finalized {
		s.ers.Commit(c[0], c[1])
	}
	return s.ver[c[0]][c[1]]
}

// reconstruct rebuilds a dropped tile in-store from the row parity and
// clears its residency.
func (s *store) reconstruct(c coord) error {
	i, j := c[0], c[1]
	if err := s.ers.ReconstructTile(i, j); err != nil {
		return err
	}
	s.clearResident(c)
	if s.onReconstruct != nil {
		s.onReconstruct()
	}
	return nil
}

func (s *store) clearResident(c coord) {
	i, j := c[0], c[1]
	if s.resident[i][j] >= 0 {
		s.resident[i][j] = -1
		s.residentInRow[i]--
	}
}

// dropWorker reconstructs every tile resident on a dead or departed
// worker — called before the worker's cache ceases to exist (eviction,
// Bye). Returns how many tiles were rebuilt.
func (s *store) dropWorker(worker int) (int, error) {
	n := 0
	for i := 0; i < s.a.MT; i++ {
		for j := 0; j < s.a.NT; j++ {
			if s.resident[i][j] == worker {
				if err := s.reconstruct(coord{i, j}); err != nil {
					return n, err
				}
				n++
			}
		}
	}
	return n, nil
}

// materialize reconstructs every dropped tile, leaving the full matrix
// in-store — the final gather, and the precondition for a checkpoint
// snapshot (which serializes the store's bytes).
func (s *store) materialize() error {
	for i := 0; i < s.a.MT; i++ {
		for j := 0; j < s.a.NT; j++ {
			if s.resident[i][j] >= 0 {
				if err := s.reconstruct(coord{i, j}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// versions returns the current versions of the listed tiles.
func (s *store) versions(cs []coord) []int {
	out := make([]int, len(cs))
	for k, c := range cs {
		out[k] = s.ver[c[0]][c[1]]
	}
	return out
}
