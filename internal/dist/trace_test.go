package dist_test

// Cluster-tracing tests of the distributed runtime: worker span shards
// ship home on heartbeats, land exactly once, and merge — re-based onto
// the coordinator's clock — into one timeline whose successful spans match
// the coordinator's completion count one for one. Fault runs additionally
// pin the fault instants (evictions, reaps, stale commits, wire chaos)
// and the structured Events hook.

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"exadla/internal/dist"
	"exadla/internal/metrics"
	"exadla/internal/sched"
	"exadla/internal/trace"
)

// okSpans returns the merged whole-attempt spans that completed a task.
func okSpans(l *trace.Log) []trace.Event {
	var ok []trace.Event
	for _, e := range l.Events() {
		if e.Phase == "" && e.Attempt > 0 && e.Outcome == sched.OutcomeOK {
			ok = append(ok, e)
		}
	}
	return ok
}

// checkLaneMonotone asserts that each process lane's whole-attempt spans,
// after clock alignment, are sequential: every process executes one task
// at a time, and re-basing by one constant offset per process must
// preserve that order.
func checkLaneMonotone(t *testing.T, l *trace.Log) {
	t.Helper()
	lastEnd := map[int]int64{}
	lastID := map[int]int{}
	for _, e := range l.Events() { // Events is sorted by Start
		if e.Phase != "" || e.Attempt == 0 {
			continue
		}
		if prev, seen := lastEnd[e.Proc]; seen && e.Start < prev {
			t.Errorf("lane %d: task %d starts at %d before task %d ended at %d",
				e.Proc, e.ID, e.Start, lastID[e.Proc], prev)
		}
		if e.End < e.Start {
			t.Errorf("lane %d task %d: end %d before start %d", e.Proc, e.ID, e.End, e.Start)
		}
		lastEnd[e.Proc], lastID[e.Proc] = e.End, e.ID
	}
}

// checkAligned asserts every span's timestamps landed inside the run's
// wall-clock window on the coordinator's clock (raw worker UnixNano
// timestamps would be ~50 years out).
func checkAligned(t *testing.T, l *trace.Log, wallNS int64) {
	t.Helper()
	const slack = int64(200 * time.Millisecond)
	for _, e := range l.Events() {
		if e.Start < -slack || e.End > wallNS+slack {
			t.Fatalf("span %+v outside the run window [0, %d]: clock alignment broken", e, wallNS)
		}
	}
}

func TestDistClusterTraceCleanRun(t *testing.T) {
	const seed, n, nb = 77, 192, 32
	a := spdTiled(seed, n, nb)
	start := time.Now()
	c, err := runDistributed(t, fastOpts(dist.OpCholesky, a),
		make([]dist.WorkerOptions, 2))
	if err != nil {
		t.Fatal(err)
	}
	wallNS := time.Since(start).Nanoseconds()

	l := c.ClusterLog()
	s := c.Stats()
	ok := okSpans(l)
	if int64(len(ok)) != s.TasksCompleted {
		t.Errorf("merged OK spans %d != tasks completed %d", len(ok), s.TasksCompleted)
	}
	seen := map[int]bool{}
	for _, e := range ok {
		if seen[e.ID] {
			t.Errorf("task %d has more than one successful span", e.ID)
		}
		seen[e.ID] = true
	}
	checkLaneMonotone(t, l)
	checkAligned(t, l, wallNS)

	// The comm-aware DAG analysis sees the same wire traffic the
	// coordinator metered (clean run: no retransmitted fetches).
	d := l.AnalyzeDAG()
	if d.BytesFetched != s.BytesFetched {
		t.Errorf("trace bytes fetched %d != stats %d", d.BytesFetched, s.BytesFetched)
	}
	if d.TCommInf < d.TInf {
		t.Errorf("TCommInf %v < TInf %v", d.TCommInf, d.TInf)
	}
	for _, p := range []int{1, 2, 8} {
		if d.CommSpeedupBound(p) > d.SpeedupBound(p)+1e-12 {
			t.Errorf("p=%d: comm bound %v > DAG bound %v", p, d.CommSpeedupBound(p), d.SpeedupBound(p))
		}
	}

	// Both worker lanes shipped sub-phase spans.
	cs := l.AnalyzeCluster()
	workerLanes := 0
	for _, p := range cs.Procs {
		if p.Proc > 0 && p.Tasks > 0 {
			workerLanes++
			if p.Compute <= 0 || p.Fetch <= 0 || p.Commit <= 0 {
				t.Errorf("lane %d: compute=%v fetch=%v commit=%v, want all positive",
					p.Proc, p.Compute, p.Fetch, p.Commit)
			}
		}
	}
	if workerLanes != 2 {
		t.Errorf("worker lanes with tasks = %d, want 2", workerLanes)
	}
	if len(cs.Faults) != 0 {
		t.Errorf("clean run recorded faults: %v", cs.Faults)
	}
}

func TestDistClusterTraceFaultInstants(t *testing.T) {
	const seed, n, nb = 78, 192, 32
	a := spdTiled(seed, n, nb)
	opt := killOpts(dist.OpCholesky, a)

	var mu sync.Mutex
	var hooked []dist.Event
	opt.Events = func(e dist.Event) {
		mu.Lock()
		hooked = append(hooked, e)
		mu.Unlock()
	}

	// One worker dies mid-lease: its heartbeat silence trips DeadAfter
	// (killOpts puts it well before lease expiry) while its leased task
	// blocks the DAG, so the eviction is guaranteed to land during the
	// run. The other worker sits behind delay-only wire chaos — harmless,
	// but every injected delay is recorded.
	workers := []dist.WorkerOptions{
		{KillAfter: 3},
		{Chaos: dist.NetChaos{Delay: 0.5, MaxDelay: time.Millisecond, Seed: 9}},
	}
	c, err := runDistributed(t, opt, workers)
	if err != nil {
		t.Fatal(err)
	}

	cs := c.ClusterLog().AnalyzeCluster()
	for _, kind := range []string{trace.PhaseEvicted, trace.PhaseChaos} {
		if cs.Faults[kind] == 0 {
			t.Errorf("merged trace has no %s instant: %v", kind, cs.Faults)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	kinds := map[string]int{}
	for _, e := range hooked {
		kinds[e.Kind]++
		if e.Kind == trace.PhaseEvicted && e.Worker < 0 {
			t.Errorf("eviction event without a worker: %+v", e)
		}
	}
	for _, kind := range []string{trace.PhaseEvicted, trace.PhaseChaos} {
		if kinds[kind] == 0 {
			t.Errorf("Events hook never saw %s: %v", kind, kinds)
		}
	}
}

func TestDistClusterTraceStaleCommit(t *testing.T) {
	const seed, n, nb = 81, 128, 32
	a := spdTiled(seed, n, nb)
	// A single worker hangs past its lease: the lease is reaped mid-hang,
	// and the worker wakes and commits against the revoked token while the
	// job is still running (the coordinator's local fallback is held off by
	// a long LocalDelay), so the commit is recorded as stale. The worker
	// then simply pulls the next lease and finishes the job.
	opt := fastOpts(dist.OpCholesky, a)
	opt.Lease = 150 * time.Millisecond
	opt.DeadAfter = 2 * time.Second // heartbeats flow during the hang anyway
	opt.LocalDelay = 600 * time.Millisecond
	c, err := runDistributed(t, opt, []dist.WorkerOptions{
		{HangAfter: 2, HangFor: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := c.ClusterLog().AnalyzeCluster()
	for _, kind := range []string{trace.PhaseReaped, trace.PhaseStale} {
		if cs.Faults[kind] == 0 {
			t.Errorf("merged trace has no %s instant: %v", kind, cs.Faults)
		}
	}
	if s := c.Stats(); s.CommitsRejected == 0 {
		t.Errorf("no commit was rejected: %+v", s)
	}
}

func TestDistRPCMetricsPrometheus(t *testing.T) {
	const seed, n, nb = 79, 128, 32
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	reg := metrics.New()
	opt.Registry = reg
	// The lone worker hangs 250 ms mid-run (within its 300 ms lease) so the
	// run lasts long enough for heartbeats to fire and be metered.
	if _, err := runDistributed(t, opt, []dist.WorkerOptions{
		{HangAfter: 2, HangFor: 250 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, m := range []string{"register", "lease", "heartbeat", "get", "commit", "bye"} {
		name := "dist_rpc_" + m + "_ns"
		if !strings.Contains(text, "# TYPE "+name+" histogram") {
			t.Errorf("missing histogram %s in Prometheus export", name)
			continue
		}
		checkPromHistogram(t, text, name)
	}
	for _, name := range []string{"dist_rpc_get_bytes", "dist_rpc_commit_bytes"} {
		checkPromHistogram(t, text, name)
	}
}

// checkPromHistogram asserts the named histogram exports cumulative
// power-of-two bucket edges folding into a +Inf bucket that equals _count.
func checkPromHistogram(t *testing.T, text, name string) {
	t.Helper()
	var count, infCum int64 = -1, -1
	var prevCum int64
	var edges []int64
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{le=\"+Inf\"} "):
			infCum, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			q := strings.Index(rest, "\"")
			edge, err := strconv.ParseInt(rest[:q], 10, 64)
			if err != nil {
				t.Errorf("%s: unparsable bucket edge in %q", name, line)
				continue
			}
			cum, _ := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if cum < prevCum {
				t.Errorf("%s: bucket counts not cumulative at le=%d", name, edge)
			}
			prevCum = cum
			edges = append(edges, edge)
		case strings.HasPrefix(line, name+"_count "):
			count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	if count <= 0 {
		t.Errorf("%s: count %d, want > 0 observations", name, count)
	}
	if infCum != count {
		t.Errorf("%s: +Inf bucket %d != count %d", name, infCum, count)
	}
	for i, e := range edges {
		// Power-of-two ladder: each edge is 2^k − 1 (or 0 for the v==0
		// bucket); the saturated MaxInt64 bucket folds into +Inf only.
		if e != 0 && (e+1)&e != 0 {
			t.Errorf("%s: edge %d is not 2^k−1", name, e)
		}
		if i > 0 && e <= edges[i-1] {
			t.Errorf("%s: edges not ascending: %v", name, edges)
		}
	}
}

func TestDistClusterTraceChromeExport(t *testing.T) {
	const seed, n, nb = 80, 128, 32
	a := spdTiled(seed, n, nb)
	c, err := runDistributed(t, fastOpts(dist.OpCholesky, a),
		make([]dist.WorkerOptions, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.ClusterLog().WriteChromeCluster(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("cluster export is not Perfetto-loadable JSON: %v", err)
	}
	lanes := map[string]bool{}
	flows := 0
	for _, e := range events {
		if e["name"] == "process_name" {
			lanes[e["args"].(map[string]any)["name"].(string)] = true
		}
		if e["ph"] == "s" {
			flows++
		}
	}
	if !lanes["worker 0"] || !lanes["worker 1"] {
		t.Errorf("missing worker process lanes: %v", lanes)
	}
	if flows == 0 {
		t.Error("no commit→fetch flow events in the cluster export")
	}

	// The native form round-trips and summarizes identically.
	var nat bytes.Buffer
	if err := c.ClusterLog().WriteJSON(&nat); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(&nat)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(back.Events()), len(c.ClusterLog().Events()); got != want {
		t.Errorf("native round trip lost events: %d != %d", got, want)
	}
}
