package dist_test

// In-process tests of the distributed runtime: coordinator and workers
// share the test binary (workers in goroutines, "death" = vanishing
// without a goodbye and with heartbeats stopped), which makes every fault
// schedule seeded and repeatable under -race. The true multi-process
// SIGKILL variants live in proc_test.go.

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"exadla/internal/core"
	"exadla/internal/dist"
	"exadla/internal/matgen"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// fastOpts returns coordinator options tuned for test-speed fault
// detection: short leases and heartbeat deadlines, millisecond polls.
func fastOpts(op string, a *tile.Matrix[float64]) dist.Options {
	return dist.Options{
		Op: op, A: a,
		Lease:      300 * time.Millisecond,
		DeadAfter:  400 * time.Millisecond,
		LocalDelay: 30 * time.Millisecond,
		Poll:       time.Millisecond,
	}
}

// killOpts returns options where heartbeat-silence eviction (DeadAfter)
// fires well before lease expiry: a worker that dies holding a lease is
// declared dead — not merely reaped — before the job can finish, because
// its leased task blocks the DAG until one of the two deadlines trips.
func killOpts(op string, a *tile.Matrix[float64]) dist.Options {
	opt := fastOpts(op, a)
	opt.Lease = 600 * time.Millisecond
	opt.DeadAfter = 200 * time.Millisecond
	return opt
}

// runDistributed runs one job with the given workers, waits for everything
// to finish, and returns the coordinator error.
func runDistributed(t *testing.T, opt dist.Options, workers []dist.WorkerOptions) (*dist.Coordinator, error) {
	t.Helper()
	c, err := dist.NewCoordinator("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(w dist.WorkerOptions) {
			defer wg.Done()
			err := dist.RunWorker(c.Addr(), w)
			if err != nil && !errors.Is(err, dist.ErrKilled) {
				t.Logf("worker exit: %v", err)
			}
		}(workers[i])
	}
	runErr := c.Run()
	wg.Wait()
	return c, runErr
}

// spdTiled builds a deterministic SPD test matrix in tile layout.
func spdTiled(seed int64, n, nb int) *tile.Matrix[float64] {
	rng := rand.New(rand.NewSource(seed))
	return tile.FromColMajor(n, n, matgen.DiagDomSPD[float64](rng, n), n, nb)
}

// choleskyLocal is the single-process reference: same tile kernels, same
// DAG, executed by the in-process scheduler.
func choleskyLocal(t *testing.T, seed int64, n, nb int) []float64 {
	t.Helper()
	a := spdTiled(seed, n, nb)
	r := sched.New(4)
	if err := core.Cholesky(r, a); err != nil {
		t.Fatal(err)
	}
	r.Shutdown()
	return a.ToColMajor()
}

func bitwiseEqual(t *testing.T, got, want []float64, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", context, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: first bit difference at element %d: %x != %x",
				context, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestDistCholeskyCleanMatchesLocal(t *testing.T) {
	const seed, n, nb = 11, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	a := spdTiled(seed, n, nb)
	c, err := runDistributed(t, fastOpts(dist.OpCholesky, a),
		make([]dist.WorkerOptions, 3))
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "clean 3-worker cholesky")
	s := c.Stats()
	if s.WorkersJoined != 3 || s.WorkersLost != 0 {
		t.Errorf("workers joined=%d lost=%d, want 3/0", s.WorkersJoined, s.WorkersLost)
	}
	if s.TasksCompleted == 0 || s.BytesCommitted == 0 {
		t.Errorf("no distributed work recorded: %+v", s)
	}
}

// TestDistKilledWorkersBitwise is the headline acceptance property: k
// seeded worker deaths mid-factorization change nothing about the answer.
func TestDistKilledWorkersBitwise(t *testing.T) {
	const seed, n, nb = 12, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	for _, kills := range []int{0, 1, 2} {
		workers := make([]dist.WorkerOptions, 3)
		// Victims die on their 2nd (and 4th) granted task: lease held, work
		// lost, heartbeats silenced.
		for v := 0; v < kills; v++ {
			workers[v].KillAfter = 2 * (v + 1)
		}
		a := spdTiled(seed, n, nb)
		c, err := runDistributed(t, killOpts(dist.OpCholesky, a), workers)
		if err != nil {
			t.Fatalf("kills=%d: %v", kills, err)
		}
		bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky after kills")
		s := c.Stats()
		if s.WorkersLost != int64(kills) {
			t.Errorf("kills=%d: workers lost = %d", kills, s.WorkersLost)
		}
		if kills > 0 && s.TasksReexecuted == 0 {
			t.Errorf("kills=%d: no task was re-executed", kills)
		}
	}
}

// TestDistLUNoPivKilledWorkersBitwise extends the guarantee to the second
// operation; the reference is the runtime's own zero-worker degradation
// (pure coordinator-local execution of the identical plan).
func TestDistLUNoPivKilledWorkersBitwise(t *testing.T) {
	const seed, n, nb = 13, 80, 16
	ref := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpLUNoPiv, ref)
	opt.LocalDelay = time.Millisecond
	c0, err := runDistributed(t, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := c0.Result().ToColMajor()
	if s := c0.Stats(); s.TasksLocal == 0 || s.TasksCompleted != s.TasksLocal {
		t.Fatalf("zero-worker run was not fully local: %+v", s)
	}

	// The local LU must actually be an LU: A ≈ L·U within roundoff.
	rng := rand.New(rand.NewSource(seed))
	orig := matgen.DiagDomSPD[float64](rng, n)
	lu := want
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				l := lu[i+k*n]
				if k == i {
					l = 1
				}
				u := lu[k+j*n]
				if k > j {
					u = 0
				}
				s += l * u
			}
			if d := math.Abs(s - orig[i+j*n]); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 1e-8 {
		t.Fatalf("L·U deviates from A by %g", maxErr)
	}

	for _, kills := range []int{1, 2} {
		workers := make([]dist.WorkerOptions, 3)
		for v := 0; v < kills; v++ {
			workers[v].KillAfter = v + 2
		}
		a := spdTiled(seed, n, nb)
		c, err := runDistributed(t, killOpts(dist.OpLUNoPiv, a), workers)
		if err != nil {
			t.Fatalf("kills=%d: %v", kills, err)
		}
		bitwiseEqual(t, c.Result().ToColMajor(), want, "lu-nopiv after kills")
	}
}

// TestDistHungWorker: a worker that stalls past its lease while still
// heartbeating is not dead — its task is reaped and re-run elsewhere, and
// its eventual stale commit must be rejected, not double-applied.
func TestDistHungWorker(t *testing.T) {
	const seed, n, nb = 14, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	workers := make([]dist.WorkerOptions, 2)
	workers[0].HangAfter = 2
	workers[0].HangFor = 700 * time.Millisecond
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.Lease = 150 * time.Millisecond
	opt.DeadAfter = 5 * time.Second // hung ≠ dead: heartbeats keep flowing
	c, err := runDistributed(t, opt, workers)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky with hung worker")
	s := c.Stats()
	if s.LeasesExpired == 0 {
		t.Error("hung worker's lease never expired")
	}
	// The straggler's late commit lands after its lease was revoked: if the
	// re-leased twin has not finished yet the commit is rejected outright;
	// if it has, the commit is acknowledged as a duplicate with its payload
	// discarded. Either way it must not be applied — the bitwise check
	// above proves that — and one of the two counters must have fired.
	if s.CommitsRejected+s.CommitsDuplicate == 0 {
		t.Error("hung worker's stale commit was neither rejected nor absorbed as a duplicate")
	}
	if s.WorkersLost != 0 {
		t.Errorf("heartbeating hung worker was evicted (%d lost)", s.WorkersLost)
	}
}

// TestDistNetChaosBitwise: seeded drop/delay/duplicate on every RPC of
// every worker, and the factor still matches the clean local run exactly.
func TestDistNetChaosBitwise(t *testing.T) {
	const seed, n, nb = 15, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	workers := make([]dist.WorkerOptions, 3)
	for i := range workers {
		workers[i].Chaos = dist.NetChaos{
			DropSend:  0.04,
			DropReply: 0.04,
			Dup:       0.04,
			Delay:     0.10,
			MaxDelay:  2 * time.Millisecond,
			Seed:      int64(i + 1),
		}
	}
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.Lease = 500 * time.Millisecond
	opt.DeadAfter = time.Second
	c, err := runDistributed(t, opt, workers)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky under net chaos")
	if s := c.Stats(); s.RPCRetries == 0 {
		t.Error("chaos injected but no RPC retries recorded")
	}
}

// TestDistBytesMatchCountModel is the cost-model contract: under strict
// block-cyclic owner-computes placement with a fully populated grid, the
// bytes workers fetch for task operands must equal the Count replay's
// prediction exactly (tolerance 0 — both count one tile fetch per remote
// operand per execution; the initial scatter is billed separately).
func TestDistBytesMatchCountModel(t *testing.T) {
	const seed, n, nb = 16, 128, 16
	const p, q = 2, 2

	rng := rand.New(rand.NewSource(seed))
	aD := matgen.DiagDomSPD[float64](rng, n)

	ref := tile.FromColMajor(n, n, aD, n, nb)
	rec := sched.NewRecorder()
	if err := core.Cholesky(rec, ref); err != nil {
		t.Fatal(err)
	}
	predicted := dist.Count(rec.Graph(), p*q, dist.BlockCyclic(ref, p, q))

	a := tile.FromColMajor(n, n, aD, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.Strict = true
	opt.GridP, opt.GridQ = p, q
	opt.WaitWorkers = p * q
	opt.Lease = 5 * time.Second // nothing may expire during the clean run
	opt.DeadAfter = 5 * time.Second
	c, err := runDistributed(t, opt, make([]dist.WorkerOptions, p*q))
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), ref.ToColMajor(), "strict-placement cholesky")
	s := c.Stats()
	if s.TasksReexecuted != 0 || s.WorkersLost != 0 {
		t.Fatalf("clean run was not clean: %+v", s)
	}
	wantBytes := int64(8 * predicted.Words)
	if s.BytesFetched != wantBytes {
		t.Errorf("live runtime fetched %d bytes; replay model predicts %d (Δ=%d)",
			s.BytesFetched, wantBytes, s.BytesFetched-wantBytes)
	}
	if s.BytesScattered == 0 {
		t.Error("no scatter traffic recorded for the initial distribution")
	}
}

// TestDistCheckpointAbortResume kills the coordinator (via the abort-after-
// checkpoint hook) and restarts from the saved snapshot; the resumed run
// must finish bitwise-identical to an uninterrupted one.
func TestDistCheckpointAbortResume(t *testing.T) {
	const seed, n, nb = 17, 96, 16 // 6 panel steps
	want := choleskyLocal(t, seed, n, nb)
	dir := t.TempDir()

	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.CkptDir = dir
	opt.CkptEvery = 2
	opt.AbortAtStep = 4
	_, err := runDistributed(t, opt, make([]dist.WorkerOptions, 2))
	if !errors.Is(err, dist.ErrAborted) {
		t.Fatalf("abort hook returned %v, want ErrAborted", err)
	}

	opt2 := fastOpts(dist.OpCholesky, nil)
	opt2.CkptDir = dir
	opt2.Resume = true
	c2, err := runDistributed(t, opt2, make([]dist.WorkerOptions, 2))
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c2.Result().ToColMajor(), want, "resumed cholesky")
	if s := c2.Stats(); s.CheckpointsSaved == 0 {
		t.Error("resumed run saved no further checkpoints")
	}
}

// TestDistWriteBackReconstruction: with write-back residency the store
// deliberately holds only parity for some finalized tiles; killing the
// worker that owns them forces erasure reconstruction (not recomputation),
// and the factor is still exact.
func TestDistWriteBackReconstruction(t *testing.T) {
	const seed, n, nb = 18, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	workers := make([]dist.WorkerOptions, 3)
	workers[0].KillAfter = 4
	a := spdTiled(seed, n, nb)
	opt := killOpts(dist.OpCholesky, a)
	opt.WriteBack = true
	c, err := runDistributed(t, opt, workers)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "write-back cholesky after kill")
	s := c.Stats()
	if s.TilesRebuilt == 0 {
		t.Error("write-back run reconstructed no tiles")
	}
	if s.WorkersLost != 1 {
		t.Errorf("workers lost = %d, want 1", s.WorkersLost)
	}
}

// TestDistElasticJoinAndTotalLoss: workers may join mid-run, and losing
// every worker degrades to coordinator-local execution instead of
// deadlocking.
func TestDistElasticJoinAndTotalLoss(t *testing.T) {
	const seed, n, nb = 19, 160, 16 // 10×10 tiles, 220 tasks: room to join mid-run
	want := choleskyLocal(t, seed, n, nb)

	// Phase 1: late joiner. Start with one worker; once the stats prove the
	// run is in flight (a few tasks done, hundreds left), add another.
	a := spdTiled(seed, n, nb)
	c, err := dist.NewCoordinator("127.0.0.1:0", fastOpts(dist.OpCholesky, a))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = dist.RunWorker(c.Addr(), dist.WorkerOptions{}) }()
	go func() {
		defer wg.Done()
		for c.Stats().TasksCompleted < 3 {
			time.Sleep(time.Millisecond)
		}
		_ = dist.RunWorker(c.Addr(), dist.WorkerOptions{})
	}()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky with late joiner")
	if s := c.Stats(); s.WorkersJoined < 2 {
		t.Errorf("late joiner never joined: %+v", s)
	}

	// Phase 2: every worker dies early; the coordinator must finish alone.
	workers := make([]dist.WorkerOptions, 2)
	workers[0].KillAfter = 1
	workers[1].KillAfter = 2
	a2 := spdTiled(seed, n, nb)
	c2, err := runDistributed(t, killOpts(dist.OpCholesky, a2), workers)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c2.Result().ToColMajor(), want, "cholesky after total worker loss")
	s := c2.Stats()
	if s.WorkersLost != 2 {
		t.Errorf("workers lost = %d, want 2", s.WorkersLost)
	}
	if s.TasksLocal == 0 {
		t.Error("no local fallback execution after losing all workers")
	}
}

// TestDistKernelFailureIsDeterministic: a non-SPD input fails the job with
// the kernel's error rather than hanging or corrupting state.
func TestDistKernelFailure(t *testing.T) {
	n, nb := 64, 16
	aD := matgen.Identity[float64](n)
	aD[5+5*n] = -3 // not positive definite
	a := tile.FromColMajor(n, n, aD, n, nb)
	_, err := runDistributed(t, fastOpts(dist.OpCholesky, a),
		make([]dist.WorkerOptions, 2))
	if err == nil {
		t.Fatal("non-SPD matrix factored without error")
	}
	if !strings.Contains(err.Error(), "positive definite") {
		t.Errorf("unexpected failure: %v", err)
	}
}
