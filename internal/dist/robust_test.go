package dist_test

// Robustness tests for slow, lying, and flapping nodes: speculative twin
// leases rescuing stragglers, end-to-end CRC integrity against wire
// corruption and at-rest rot, partition-tolerant rejoin, and one all-chaos
// soak asserting the whole stack stays bitwise deterministic.

import (
	"sync"
	"testing"
	"time"

	"exadla/internal/dist"
	"exadla/internal/trace"
)

// countPhase counts merged-trace events with the given fault phase.
func countPhase(l *trace.Log, phase string) int {
	n := 0
	for _, e := range l.Events() {
		if e.Phase == phase {
			n++
		}
	}
	return n
}

// TestDistSpeculationRescuesHungWorker: a worker hangs mid-lease with
// heartbeats still flowing, under a lease far too long for reaping to save
// the run. Speculation must notice the straggler against the kernel's
// duration history, twin the task onto an idle worker, and let the twin's
// commit win — completing the job in a fraction of the lease, bitwise
// identical, with the hung worker's late commit absorbed as a duplicate.
func TestDistSpeculationRescuesHungWorker(t *testing.T) {
	const seed, n, nb = 31, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.Lease = 10 * time.Second // reaping must NOT be the rescuer
	opt.DeadAfter = time.Second
	opt.Speculate = true
	opt.SpecMinSamples = 1
	opt.SpecFactor = 3

	workers := make([]dist.WorkerOptions, 3)
	workers[0].HangAfter = 12 // per-worker grant count: deep enough that kernels have history
	workers[0].HangFor = time.Second

	start := time.Now()
	c, err := runDistributed(t, opt, workers)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky with speculative twin")
	if elapsed >= 8*time.Second {
		t.Errorf("run took %v: the lease deadline, not speculation, rescued the hang", elapsed)
	}
	s := c.Stats()
	if s.SpecLaunched == 0 {
		t.Fatalf("no twin lease was launched: %+v", s)
	}
	if s.SpecWins == 0 {
		t.Errorf("no twin won its race (launched %d): %+v", s.SpecLaunched, s)
	}
	if s.CommitsDuplicate == 0 {
		t.Errorf("the hung worker's late commit was not absorbed as a duplicate")
	}

	l := c.ClusterLog()
	if countPhase(l, trace.PhaseSpecTwin) == 0 {
		t.Error("no spec_twin instant in the merged trace")
	}
	// Exactly-once accounting survives the race: every task completed once,
	// and exactly one attempt per task recorded OK (the loser's duplicate
	// ack records Retried, not a second completion).
	ok := okSpans(l)
	if int64(len(ok)) != s.TasksCompleted {
		t.Errorf("merged OK spans %d != tasks completed %d", len(ok), s.TasksCompleted)
	}
	seen := map[int]bool{}
	for _, e := range ok {
		if seen[e.ID] {
			t.Errorf("task %d has more than one successful span", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestDistWireCorruptionDetectedExactly: with bit-flip injection on every
// worker (and no other fault), each injected corruption must be caught by
// exactly one CRC check — commit-side at the coordinator or fetch-side at
// the worker — and the factor must come out bitwise clean.
func TestDistWireCorruptionDetectedExactly(t *testing.T) {
	const seed, n, nb = 32, 96, 16
	want := choleskyLocal(t, seed, n, nb)
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.Lease = 2 * time.Second // corruption retries must not trip reaping
	opt.DeadAfter = 2 * time.Second

	workers := make([]dist.WorkerOptions, 3)
	for i := range workers {
		workers[i].Chaos = dist.NetChaos{Corrupt: 0.2, Seed: int64(100 + i)}
	}
	c, err := runDistributed(t, opt, workers)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky under payload corruption")
	s := c.Stats()
	if s.CorruptInjected == 0 {
		t.Fatal("chaos injected no corruption: the test exercised nothing")
	}
	if detected := s.CorruptCommits + s.CorruptGets; detected != s.CorruptInjected {
		t.Errorf("injected %d corruptions but detected %d (commit %d + get %d): undetected corruption",
			s.CorruptInjected, detected, s.CorruptCommits, s.CorruptGets)
	}
	l := c.ClusterLog()
	if countPhase(l, trace.PhaseCorrupt) == 0 {
		t.Error("no payload_corrupt instant in the merged trace")
	}
	// Clean exits all around: span accounting stays exact under resends.
	if ok := okSpans(l); int64(len(ok)) != s.TasksCompleted {
		t.Errorf("merged OK spans %d != tasks completed %d", len(ok), s.TasksCompleted)
	}
}

// TestDistAtRestRotScrubRepair: a committed tile rots in the store (one
// flipped bit, CRC left stale); the background scrub or the verified read
// path must detect it and rebuild the tile from row parity, leaving the
// factor bitwise identical.
func TestDistAtRestRotScrubRepair(t *testing.T) {
	const seed, n, nb = 33, 160, 16
	want := choleskyLocal(t, seed, n, nb)
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.ScrubEvery = 2 * time.Millisecond

	c, err := dist.NewCoordinator("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		// Injected RPC latency stretches the job across several run-loop
		// ticks so the background scrub actually gets passes in.
		wo := dist.WorkerOptions{Chaos: dist.NetChaos{
			Delay: 0.35, MaxDelay: 4 * time.Millisecond, Seed: int64(301 + i),
		}}
		go func() {
			defer wg.Done()
			if werr := dist.RunWorker(c.Addr(), wo); werr != nil {
				t.Logf("worker exit: %v", werr)
			}
		}()
	}
	// Tile (0,0) is finalized by the very first completed task (the root
	// potrf is the only initially-ready task and its only writer). Rot it
	// as soon as that lands — hundreds of tasks before the job can finish.
	rotted := make(chan error, 1)
	go func() {
		for c.Stats().TasksCompleted == 0 {
			time.Sleep(500 * time.Microsecond)
		}
		rotted <- c.CorruptStoredTile(0, 0, 3, 40)
	}()
	runErr := c.Run()
	wg.Wait()
	if err := <-rotted; err != nil {
		t.Fatalf("rot injection failed: %v", err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky after at-rest rot repair")
	s := c.Stats()
	if s.AtRestDetected == 0 {
		t.Fatalf("injected rot was never detected: %+v", s)
	}
	if s.AtRestRepaired != s.AtRestDetected {
		t.Errorf("detected %d rotted tiles but repaired %d", s.AtRestDetected, s.AtRestRepaired)
	}
	if s.ScrubScanned == 0 {
		t.Error("scrub never scanned a tile despite ScrubEvery being set")
	}
}

// TestDistPartitionRejoinBitwise: a partition window silences one worker's
// traffic mid-run. The coordinator must evict it on heartbeat silence and
// carry on; when the window closes the worker must rejoin under a fresh
// identity and the job must finish bitwise identical — the flapping-node
// case.
func TestDistPartitionRejoinBitwise(t *testing.T) {
	const seed, n, nb = 34, 160, 16
	want := choleskyLocal(t, seed, n, nb)
	a := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpCholesky, a)
	opt.Lease = 300 * time.Millisecond
	opt.DeadAfter = 150 * time.Millisecond

	workers := make([]dist.WorkerOptions, 2)
	// The healthy worker gets injected latency so the job outlives the
	// partition window and the rejoined worker rejoins a live job.
	workers[0].Chaos = dist.NetChaos{Delay: 0.55, MaxDelay: 7 * time.Millisecond, Seed: 201}
	workers[1].Chaos = dist.NetChaos{
		Delay: 0.55, MaxDelay: 7 * time.Millisecond,
		PartitionAfter: 150 * time.Millisecond,
		PartitionFor:   500 * time.Millisecond,
		Seed:           202,
	}

	c, err := runDistributed(t, opt, workers)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseEqual(t, c.Result().ToColMajor(), want, "cholesky across a partition")
	s := c.Stats()
	if s.WorkersLost == 0 {
		t.Fatalf("the partitioned worker was never evicted: %+v", s)
	}
	if s.WorkersRejoined == 0 {
		t.Fatalf("the partitioned worker never rejoined: %+v", s)
	}
	l := c.ClusterLog()
	if countPhase(l, trace.PhasePartition) == 0 {
		t.Error("no partition instant shipped into the merged trace")
	}
	if countPhase(l, trace.PhaseRejoin) == 0 {
		t.Error("no worker_rejoin instant in the merged trace")
	}
}

// allChaos is the kitchen-sink wire-fault config for the soak.
func allChaos(seed int64) dist.NetChaos {
	return dist.NetChaos{
		DropSend:  0.04,
		DropReply: 0.04,
		Dup:       0.06,
		Delay:     0.12,
		MaxDelay:  2 * time.Millisecond,
		Corrupt:   0.06,
		Seed:      seed,
	}
}

// TestDistAllChaosSoakBitwise is the headline robustness property: kill +
// hang + drop + duplicate + delay + corrupt + partition + stragglers all
// at once, with speculation, scrubbing, and write-back residency enabled —
// and both factorizations still land bitwise identical to a fault-free
// single-process run, completing every task exactly once.
func TestDistAllChaosSoakBitwise(t *testing.T) {
	for _, op := range []string{dist.OpCholesky, dist.OpLUNoPiv} {
		t.Run(op, func(t *testing.T) {
			const seed, n, nb = 35, 128, 16
			// Reference: the runtime's own zero-worker degradation executes the
			// identical plan coordinator-locally — fault-free by construction.
			ref := spdTiled(seed, n, nb)
			refOpt := fastOpts(op, ref)
			refOpt.LocalDelay = time.Millisecond
			c0, err := runDistributed(t, refOpt, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := c0.Result().ToColMajor()

			a := spdTiled(seed, n, nb)
			opt := fastOpts(op, a)
			opt.Lease = 500 * time.Millisecond
			opt.DeadAfter = 250 * time.Millisecond
			opt.WriteBack = true
			opt.Speculate = true
			opt.SpecMinSamples = 2
			opt.SpecFactor = 3
			opt.ScrubEvery = 10 * time.Millisecond

			workers := make([]dist.WorkerOptions, 4)
			base := int64(300)
			if op == dist.OpLUNoPiv {
				base = 400
			}
			for i := range workers {
				workers[i].Chaos = allChaos(base + int64(i))
			}
			workers[0].KillAfter = 3
			workers[1].HangAfter = 4
			workers[1].HangFor = 300 * time.Millisecond
			workers[2].Chaos.PartitionAfter = 200 * time.Millisecond
			workers[2].Chaos.PartitionFor = 400 * time.Millisecond
			workers[3].SlowFactor = 8

			c, err := runDistributed(t, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			bitwiseEqual(t, c.Result().ToColMajor(), want, op+" under all chaos at once")

			s := c.Stats()
			st := c.Status()
			if s.TasksCompleted != int64(st.Tasks) {
				t.Errorf("tasks completed %d != plan tasks %d: a task completed twice or never",
					s.TasksCompleted, st.Tasks)
			}
			if s.CorruptInjected == 0 {
				t.Error("soak injected no payload corruption")
			}
			if s.CorruptCommits+s.CorruptGets == 0 {
				t.Error("soak detected no payload corruption")
			}
			if s.WorkersLost == 0 {
				t.Error("soak lost no workers despite kill + partition")
			}
			// Exactly-once through the trace: no task may ever record two
			// successful attempts (speculation losers and chaos duplicates
			// must all be absorbed as Retried). A killed worker can lose its
			// final unshipped spans, so ≤ rather than == here.
			l := c.ClusterLog()
			ok := okSpans(l)
			if int64(len(ok)) > s.TasksCompleted {
				t.Errorf("merged OK spans %d > tasks completed %d: double-counted completion",
					len(ok), s.TasksCompleted)
			}
			seen := map[int]*trace.Event{}
			for _, e := range ok {
				e := e
				if first := seen[e.ID]; first != nil {
					t.Errorf("task %d has more than one successful span:\n  %+v\n  %+v", e.ID, *first, e)
				}
				seen[e.ID] = &e
			}
		})
	}
}
