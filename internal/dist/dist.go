// Package dist analyses the communication a tile algorithm would incur on
// a distributed-memory machine: tiles are assigned to processes of a P×Q
// grid (2D block-cyclic, ScaLAPACK style), each recorded task runs where
// its output tile lives ("owner computes"), and every remote operand counts
// as one message of one tile's worth of words.
//
// This is the quantitative backing for the keynote's central rule — data
// movement, not flops, is the cost at scale: two DAGs with identical flop
// counts (flat vs tree QR, dataflow vs fork-join Cholesky) can be compared
// directly by words moved and messages sent.
package dist

import (
	"fmt"

	"exadla/internal/ft"
	"exadla/internal/sched"
	"exadla/internal/tile"
)

// Placement maps a data handle to its owning process and its size in
// words. Handles it does not recognize (zero size) are treated as
// process-local metadata and never counted.
type Placement func(h sched.Handle) (proc int, words int)

// CommStats aggregates the communication of one replay.
type CommStats struct {
	// Processes is the grid size used.
	Processes int
	// Messages is the number of remote tile fetches.
	Messages int
	// Words is the total words moved.
	Words int
	// LocalTasks and RemoteTasks split tasks by whether all operands were
	// already resident.
	LocalTasks, RemoteTasks int
	// ByKernel maps kernel name to words moved fetching its operands.
	ByKernel map[string]int
}

func (s CommStats) String() string {
	return fmt.Sprintf("P=%d: %d messages, %d words (%d/%d tasks needed remote data)",
		s.Processes, s.Messages, s.Words, s.RemoteTasks, s.LocalTasks+s.RemoteTasks)
}

// BlockCyclic returns the ScaLAPACK-style 2D block-cyclic placement of a
// tiled matrix's handles on a p×q process grid: tile (i, j) lives on
// process (i mod p)·q + (j mod q), and moving it costs its element count.
// Handles from other matrices map to process 0 with zero size; compose
// placements with Merge for multi-matrix algorithms.
func BlockCyclic[F interface{ ~float32 | ~float64 }](a *tile.Matrix[F], p, q int) Placement {
	return func(h sched.Handle) (int, int) {
		th, ok := h.(tile.Handle)
		if !ok {
			return 0, 0
		}
		i, j := th.Coords()
		if !ownsHandle(a, h) {
			return 0, 0
		}
		return (i%p)*q + (j % q), a.TileRows(i) * a.TileCols(j)
	}
}

// ownsHandle reports whether h names a tile of a (handles embed matrix
// identity, so comparing against a freshly built handle suffices).
func ownsHandle[F interface{ ~float32 | ~float64 }](a *tile.Matrix[F], h sched.Handle) bool {
	th := h.(tile.Handle)
	i, j := th.Coords()
	if i < 0 || i >= a.MT || j < 0 || j >= a.NT {
		return false
	}
	return a.Handle(i, j) == th
}

// ParityPlacement places the erasure parity tiles of a matrix's row
// groups (ft.ErasureRowHandle) as FT-ScaLAPACK places its checksum
// column: the parity of tile row i lives where tile (i, nt) would — one
// extra block-cyclic column appended to the nt-column matrix — and
// moving it costs the parity tile's full word count. Committing a tile
// to its parity group from another process therefore ships the whole
// tile to the checksum column, which is exactly the erasure scheme's
// communication bill. It recognizes every ErasureRowHandle; in a
// multi-matrix replay, list the placement whose matrix carries erasure
// first in Merge.
func ParityPlacement(nt, p, q int) Placement {
	return func(h sched.Handle) (int, int) {
		eh, ok := h.(ft.ErasureRowHandle)
		if !ok {
			return 0, 0
		}
		return (eh.Row()%p)*q + (nt % q), eh.Words()
	}
}

// Merge composes placements: the first one reporting a nonzero size wins.
func Merge(ps ...Placement) Placement {
	return func(h sched.Handle) (int, int) {
		for _, p := range ps {
			if proc, words := p(h); words > 0 {
				return proc, words
			}
		}
		return 0, 0
	}
}

// CommDepth returns the number of remote transfers on the graph's longest
// dependence chain — the latency-bound cost of the algorithm (how many
// message rounds must happen in sequence, no matter how much bandwidth is
// available). This is the metric communication-avoiding algorithms
// minimize: a flat panel chain pays one round per process it touches, a
// reduction tree pays one per level.
func CommDepth(g *sched.Graph, place Placement) int {
	depth := make([]int, len(g.Nodes))
	best := 0
	for i, n := range g.Nodes {
		d := 0
		for _, dep := range n.Deps {
			if depth[dep] > d {
				d = depth[dep]
			}
		}
		if !n.Barrier {
			proc := 0
			if len(n.Writes) > 0 {
				proc, _ = place(n.Writes[0])
			}
			for _, h := range n.Reads {
				if home, words := place(h); words > 0 && home != proc {
					d++
				}
			}
			for i, h := range n.Writes {
				if i == 0 {
					continue
				}
				if home, words := place(h); words > 0 && home != proc {
					d++
				}
			}
		}
		depth[i] = d
		if d > best {
			best = d
		}
	}
	return best
}

// Count replays a recorded graph under the placement with the static
// owner-computes rule: each task executes on the home process of its first
// written handle; every other operand homed elsewhere costs one message of
// that tile's words (remote reads are fetched, remote writes shipped back).
// Tasks are charged per access — each task fetches fresh operands, since in
// a factorization almost every operand was rewritten since any earlier
// fetch. A node annotated with Executions > 1 (a task the runtime retried)
// is charged that many times over: every re-execution re-fetches its remote
// operands, which is exactly how recovery inflates the communication bill.
func Count(g *sched.Graph, processes int, place Placement) CommStats {
	stats := CommStats{Processes: processes, ByKernel: map[string]int{}}
	for _, n := range g.Nodes {
		if n.Barrier {
			continue
		}
		execs := n.Executions
		if execs < 1 {
			execs = 1
		}
		proc := 0
		if len(n.Writes) > 0 {
			proc, _ = place(n.Writes[0])
		}
		remote := false
		count := func(h sched.Handle) {
			home, words := place(h)
			if words == 0 || home == proc {
				return
			}
			stats.Messages += execs
			stats.Words += execs * words
			stats.ByKernel[n.Name] += execs * words
			remote = true
		}
		for _, h := range n.Reads {
			count(h)
		}
		for i, h := range n.Writes {
			if i == 0 {
				continue // the task's own output is local by construction
			}
			count(h)
		}
		if remote {
			stats.RemoteTasks++
		} else {
			stats.LocalTasks++
		}
	}
	return stats
}
