package dist

import (
	"sort"
	"time"

	"exadla/internal/sched"
	"exadla/internal/trace"
)

// This file is the coordinator's cluster-observability surface: the merged
// multi-process trace (worker span shards aligned onto the coordinator's
// clock), the structured fault-event hook, and the live status snapshot
// the obs server's /dist endpoint serves.

// Event is one structured distributed-runtime fault event, delivered to
// Options.Events as it happens. Kind is one of trace.PhaseEvicted,
// trace.PhaseReaped, trace.PhaseStale, trace.PhaseChaos,
// trace.PhaseSpecTwin, trace.PhaseCorrupt, trace.PhasePartition,
// trace.PhaseRejoin.
type Event struct {
	Kind    string
	Worker  int // -1 when not worker-specific
	Task    int // -1 when not task-specific
	Attempt int // 0 when unknown
	Detail  string
}

// Eviction is one entry of the coordinator's eviction log.
type Eviction struct {
	Worker int    `json:"worker"`
	Reason string `json:"reason"`
	AtMS   int64  `json:"at_ms"` // milliseconds since the coordinator epoch
}

// WorkerInfo is the live view of one registered worker.
type WorkerInfo struct {
	ID           int   `json:"id"`
	Slot         int   `json:"slot"`
	Live         bool  `json:"live"`
	Evicted      bool  `json:"evicted"`
	Departed     bool  `json:"departed"`
	LastBeatMS   int64 `json:"last_beat_age_ms"`
	ClockOffsetN int64 `json:"clock_offset_ns"`
	ClockRTTNS   int64 `json:"clock_rtt_ns"`
	SpansShipped int64 `json:"spans_shipped"`
}

// LeaseInfo is one outstanding lease in the live lease table.
type LeaseInfo struct {
	Task        int    `json:"task"`
	Kind        string `json:"kind"`
	Worker      int    `json:"worker"`
	Attempt     int    `json:"attempt"`
	ExpiresInMS int64  `json:"expires_in_ms"`
}

// ClusterStatus is the coordinator's live health/progress snapshot, served
// by the obs server's /dist endpoint and folded into /healthz.
type ClusterStatus struct {
	Op          string        `json:"op"`
	Tasks       int           `json:"tasks"`
	Completed   int           `json:"tasks_completed"`
	Done        bool          `json:"done"`
	WorkersLive int           `json:"workers_live"`
	UptimeMS    int64         `json:"uptime_ms"`
	Workers     []WorkerInfo  `json:"workers"`
	Leases      []LeaseInfo   `json:"leases"`
	Evictions   []Eviction    `json:"evictions"`
	Stats       StatsSnapshot `json:"stats"`
}

// nowNS is the coordinator's trace clock: nanoseconds since its epoch.
func (c *Coordinator) nowNS() int64 { return time.Since(c.epoch).Nanoseconds() }

// faultLocked records a fault instant on the affected worker's process
// lane and fires the Events hook.
func (c *Coordinator) faultLocked(kind string, worker, task, attempt int, detail string) {
	now := c.nowNS()
	c.cevents = append(c.cevents, trace.Event{
		ID: task, Worker: worker, Attempt: attempt,
		Start: now, End: now,
		Proc: worker + 1, Phase: kind, Err: detail,
	})
	if c.opt.Events != nil {
		c.opt.Events(Event{Kind: kind, Worker: worker, Task: task, Attempt: attempt, Detail: detail})
	}
}

// rootLocked resolves a registration id to its lineage root: the first
// identity the same worker process registered under. Trace absorption
// state is keyed by root because the span shipper lives for the process,
// not the registration.
func (c *Coordinator) rootLocked(id int) int {
	for {
		p, ok := c.lineage[id]
		if !ok || p == id {
			return id
		}
		id = p
	}
}

// absorbLocked lands one shipped span batch. base is the cumulative index
// of the batch's first span; any prefix already absorbed from this
// shipper's lineage is dropped, making retransmitted and re-shipped
// batches idempotent — including a batch absorbed under a previous
// identity whose acknowledgement was lost before the worker rejoined.
func (c *Coordinator) absorbLocked(shipper int, spans []WireSpan, base, off, rtt int64, hasOff bool) {
	shipper = c.rootLocked(shipper)
	if hasOff {
		if r, seen := c.offRTTs[shipper]; !seen || rtt < r {
			c.offRTTs[shipper] = rtt
			c.offs[shipper] = off
		}
	}
	if len(spans) == 0 {
		return
	}
	end := base + int64(len(spans))
	have := c.absorbed[shipper]
	if end <= have {
		return // full retransmission
	}
	if skip := have - base; skip > 0 {
		spans = spans[skip:]
	}
	c.absorbed[shipper] = end
	c.shards[shipper] = append(c.shards[shipper], spans...)
	if c.opt.Events != nil {
		for _, ws := range spans {
			if trace.IsFault(ws.Phase) {
				c.opt.Events(Event{Kind: ws.Phase, Worker: ws.Worker, Task: ws.ID, Detail: ws.Err})
			}
		}
	}
}

// localSpanLocked records one coordinator-local task execution (the
// degraded-mode path) on process lane 0.
func (c *Coordinator) localSpanLocked(id int, name string, attempt int, startNS int64, err error) {
	e := trace.Event{
		ID: id, Name: name, Worker: 0, Attempt: attempt,
		Start: startNS, End: c.nowNS(), Proc: 0,
	}
	if err != nil {
		e.Outcome = sched.OutcomeFailed
		e.Err = err.Error()
	}
	c.cevents = append(c.cevents, e)
}

// buildTaskDeps mirrors sched.Frontier's RAW/WAR/WAW derivation over the
// plan, giving the merged trace its dependence edges (workers don't know
// them). Index is task ID; IDs are dense plan order.
func buildTaskDeps(op string, pl *plan) [][]int {
	deps := make([][]int, len(pl.tasks))
	type access struct {
		lastWriter int
		readers    []int
	}
	last := map[coord]*access{}
	acc := func(cd coord) *access {
		a := last[cd]
		if a == nil {
			a = &access{lastWriter: -1}
			last[cd] = a
		}
		return a
	}
	for i := range pl.tasks {
		t := &pl.tasks[i]
		reads, writes := accesses(op, t)
		set := map[int]bool{}
		addDep := func(from int) {
			if from >= 0 && from != t.ID {
				set[from] = true
			}
		}
		for _, cd := range reads {
			a := acc(cd)
			addDep(a.lastWriter)
			if !coordIn(writes, cd) {
				a.readers = append(a.readers, t.ID)
			}
		}
		for _, cd := range writes {
			a := acc(cd)
			addDep(a.lastWriter)
			for _, rd := range a.readers {
				addDep(rd)
			}
			a.lastWriter = t.ID
			a.readers = a.readers[:0]
		}
		if len(set) > 0 {
			ds := make([]int, 0, len(set))
			for d := range set {
				ds = append(ds, d)
			}
			sort.Ints(ds)
			deps[t.ID] = ds
		}
	}
	return deps
}

func coordIn(cs []coord, cd coord) bool {
	for _, c := range cs {
		if c == cd {
			return true
		}
	}
	return false
}

// ClusterLog merges the coordinator's own events with every shipped worker
// shard into one trace.Log on the coordinator's clock: each worker's
// local timestamps are re-based by its best (min-RTT) offset sample, a
// single constant per shipper, so per-worker ordering is exactly the
// recording order. Whole-attempt events gain the plan's dependence edges,
// making the merged log analyzable by AnalyzeDAG.
func (c *Coordinator) ClusterLog() *trace.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := trace.NewLog()
	withDeps := func(e trace.Event) trace.Event {
		if e.Phase == "" && e.ID >= 0 && e.ID < len(c.taskDeps) {
			e.Deps = c.taskDeps[e.ID]
		}
		return e
	}
	for _, e := range c.cevents {
		l.Add(withDeps(e))
	}
	for shipper, spans := range c.shards {
		off := c.offs[shipper]
		for _, ws := range spans {
			l.Add(withDeps(wireToEvent(ws, off)))
		}
	}
	return l
}

// Status snapshots the live cluster state.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := ClusterStatus{
		Op:          c.opt.Op,
		Tasks:       len(c.pl.tasks),
		Completed:   int(c.stats.TasksCompleted.Load()),
		Done:        c.done,
		WorkersLive: c.liveCountLocked(),
		UptimeMS:    c.nowNS() / 1e6,
		Evictions:   append([]Eviction(nil), c.evictLog...),
		Stats:       c.stats.Snapshot(),
	}
	for id, w := range c.workers {
		root := c.rootLocked(id)
		st.Workers = append(st.Workers, WorkerInfo{
			ID: id, Slot: w.slot, Live: w.live(),
			Evicted: w.evicted, Departed: w.byed,
			LastBeatMS:   now.Sub(w.lastBeat).Milliseconds(),
			ClockOffsetN: c.offs[root],
			ClockRTTNS:   c.offRTTs[root],
			SpansShipped: c.absorbed[root],
		})
	}
	for _, l := range c.leases {
		st.Leases = append(st.Leases, LeaseInfo{
			Task: l.task, Kind: c.pl.tasks[l.task].Kind,
			Worker: l.worker, Attempt: c.attempts[l.task],
			ExpiresInMS: l.deadline.Sub(now).Milliseconds(),
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].Task < st.Leases[j].Task })
	return st
}
