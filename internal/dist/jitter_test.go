package dist

import (
	"testing"
	"time"
)

// The retry backoff is equal-jitter: every sleep lands in [d/2, d]. Two
// clients with the same seed must produce the same schedule (chaos-run
// reproducibility); different seeds must decorrelate (no thundering herd
// when a fleet retries against the same coordinator).
func TestJitterSourceBoundsAndDeterminism(t *testing.T) {
	const d = 100 * time.Millisecond
	a, b := newJitterSource(42), newJitterSource(42)
	seen := map[time.Duration]bool{}
	for i := 0; i < 2000; i++ {
		ja, jb := a.jitter(d), b.jitter(d)
		if ja != jb {
			t.Fatalf("draw %d: same seed diverged: %v != %v", i, ja, jb)
		}
		if ja < d/2 || ja > d {
			t.Fatalf("draw %d: jitter %v outside [%v, %v]", i, ja, d/2, d)
		}
		seen[ja] = true
	}
	if len(seen) < 500 {
		t.Errorf("2000 draws produced only %d distinct delays: spread too narrow", len(seen))
	}
}

func TestJitterSourceSeedsDecorrelate(t *testing.T) {
	const d = 80 * time.Millisecond
	a, c := newJitterSource(7), newJitterSource(8)
	diff := 0
	for i := 0; i < 200; i++ {
		if a.jitter(d) != c.jitter(d) {
			diff++
		}
	}
	if diff < 100 {
		t.Errorf("adjacent seeds agree on %d of 200 draws: schedules are correlated", 200-diff)
	}
}

func TestJitterSourceDegenerateDelays(t *testing.T) {
	j := newJitterSource(1)
	if got := j.jitter(0); got != 0 {
		t.Errorf("jitter(0) = %v, want 0", got)
	}
	if got := j.jitter(-time.Second); got != 0 {
		t.Errorf("jitter(-1s) = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		if got := j.jitter(1); got < 0 || got > 1 {
			t.Fatalf("jitter(1ns) = %v out of range", got)
		}
	}
}
