package dist_test

// Multi-process tests: the test binary re-execs itself as real worker
// processes (TestMain intercepts the child role via environment), so
// worker death here is actual process death — one worker is SIGKILLed by
// the parent at an arbitrary moment, another exits(137) mid-lease via the
// fault hook. The factorization must still match the single-process run
// bit for bit.

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"exadla/internal/dist"
	"exadla/internal/trace"
)

const (
	workerAddrEnv = "EXADLA_DIST_WORKER_ADDR"
	workerKillEnv = "EXADLA_DIST_WORKER_KILL_AFTER"
)

func TestMain(m *testing.M) {
	if addr := os.Getenv(workerAddrEnv); addr != "" {
		opt := dist.WorkerOptions{ExitOnKill: true}
		if s := os.Getenv(workerKillEnv); s != "" {
			opt.KillAfter, _ = strconv.Atoi(s)
		}
		if err := dist.RunWorker(addr, opt); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnWorker re-execs this test binary as a worker process.
func spawnWorker(t *testing.T, addr string, killAfter int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		workerAddrEnv+"="+addr,
		workerKillEnv+"="+strconv.Itoa(killAfter),
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func TestDistMultiProcessSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const seed, n, nb = 31, 160, 16
	want := choleskyLocal(t, seed, n, nb)

	a := spdTiled(seed, n, nb)
	c, err := dist.NewCoordinator("127.0.0.1:0", killOpts(dist.OpCholesky, a))
	if err != nil {
		t.Fatal(err)
	}

	// Three real worker processes: one marked for exit(137) on its 3rd
	// task, one that the parent will SIGKILL at an arbitrary wall-clock
	// moment, one clean.
	victim := spawnWorker(t, c.Addr(), 3)
	sniped := spawnWorker(t, c.Addr(), 0)
	clean := spawnWorker(t, c.Addr(), 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(150 * time.Millisecond)
		_ = sniped.Process.Signal(syscall.SIGKILL)
	}()

	runErr := c.Run()
	wg.Wait()
	victimErr := victim.Wait()
	snipedErr := sniped.Wait()
	cleanErr := clean.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if cleanErr != nil {
		t.Errorf("clean worker process failed: %v", cleanErr)
	}
	if ee, ok := victimErr.(*exec.ExitError); !ok || ee.ExitCode() != 137 {
		t.Errorf("fault-hook victim exited %v, want exit code 137", victimErr)
	}
	// The sniped worker was either killed mid-run (signal) or — on a very
	// slow or very fast box — finished before/after the signal landed.
	t.Logf("sniped worker: %v", snipedErr)

	got := c.Result().ToColMajor()
	if len(got) != len(want) {
		t.Fatalf("result length %d != %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("multi-process cholesky diverges at element %d", i)
		}
	}
	s := c.Stats()
	if s.WorkersJoined < 3 {
		t.Errorf("workers joined = %d, want >= 3", s.WorkersJoined)
	}
	if s.WorkersLost < 1 {
		t.Errorf("no worker death was detected: %+v", s)
	}
	if s.TasksReexecuted == 0 {
		t.Error("no task was re-executed after process death")
	}
	t.Logf("multi-process stats: %+v", s)

	// The merged cluster trace survives real process death: spans shipped
	// before the SIGKILL are in (a killed process loses only its unshipped
	// tail), the eviction is an instant on the timeline, and the export is
	// loadable Chrome trace JSON with real worker process lanes.
	l := c.ClusterLog()
	checkLaneMonotone(t, l)
	cs := l.AnalyzeCluster()
	if cs.Faults[trace.PhaseEvicted] == 0 {
		t.Errorf("merged trace has no eviction instant: %v", cs.Faults)
	}
	var buf bytes.Buffer
	if err := l.WriteChromeCluster(&buf); err != nil {
		t.Fatal(err)
	}
	var chromeEvents []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &chromeEvents); err != nil {
		t.Fatalf("cluster export is not loadable JSON: %v", err)
	}
	workerLanes := 0
	for _, e := range chromeEvents {
		if e["name"] == "process_name" &&
			strings.HasPrefix(e["args"].(map[string]any)["name"].(string), "worker") {
			workerLanes++
		}
	}
	if workerLanes < 2 {
		t.Errorf("worker process lanes = %d, want >= 2", workerLanes)
	}
}

// TestDistMultiProcessClusterTrace pins the shipping protocol across real
// process boundaries on a clean run: every completed task has exactly one
// successful whole-attempt span in the merged trace (workers flush their
// tails on Bye), and each real process's spans are monotone after its
// RTT-midpoint clock offset re-bases them — raw UnixNano timestamps from
// another process would land decades outside the run window.
func TestDistMultiProcessClusterTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const seed, n, nb = 33, 160, 16
	a := spdTiled(seed, n, nb)
	c, err := dist.NewCoordinator("127.0.0.1:0", fastOpts(dist.OpCholesky, a))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	w1 := spawnWorker(t, c.Addr(), 0)
	w2 := spawnWorker(t, c.Addr(), 0)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Wait(); err != nil {
		t.Errorf("worker 1: %v", err)
	}
	if err := w2.Wait(); err != nil {
		t.Errorf("worker 2: %v", err)
	}
	wallNS := time.Since(start).Nanoseconds()

	l := c.ClusterLog()
	s := c.Stats()
	if ok := okSpans(l); int64(len(ok)) != s.TasksCompleted {
		t.Errorf("merged OK spans %d != tasks completed %d", len(ok), s.TasksCompleted)
	}
	checkLaneMonotone(t, l)
	checkAligned(t, l, wallNS)

	st := c.Status()
	for _, w := range st.Workers {
		if w.SpansShipped == 0 {
			t.Errorf("worker %d shipped no spans", w.ID)
		}
		if w.ClockRTTNS <= 0 {
			t.Errorf("worker %d has no clock-offset sample (rtt %d)", w.ID, w.ClockRTTNS)
		}
	}
}

func TestDistMultiProcessLUNoPiv(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const seed, n, nb = 32, 96, 16

	// Reference: the runtime's own zero-worker local execution.
	ref := spdTiled(seed, n, nb)
	opt := fastOpts(dist.OpLUNoPiv, ref)
	opt.LocalDelay = time.Millisecond
	c0, err := runDistributed(t, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := c0.Result().ToColMajor()

	a := spdTiled(seed, n, nb)
	kopt := killOpts(dist.OpLUNoPiv, a)
	// Start barrier: without it, a slow-to-exec victim process can join
	// after the survivors drained the whole (small) DAG and exit clean
	// without ever reaching its 2nd lease — no death, nothing to detect.
	kopt.WaitWorkers = 3
	c, err := dist.NewCoordinator("127.0.0.1:0", kopt)
	if err != nil {
		t.Fatal(err)
	}
	w1 := spawnWorker(t, c.Addr(), 2) // dies on its 2nd task
	w2 := spawnWorker(t, c.Addr(), 0)
	w3 := spawnWorker(t, c.Addr(), 0)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, _ = w1.Wait(), w2.Wait(), w3.Wait()

	got := c.Result().ToColMajor()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("multi-process lu-nopiv diverges at element %d", i)
		}
	}
	if s := c.Stats(); s.WorkersLost != 1 {
		t.Errorf("workers lost = %d, want 1", s.WorkersLost)
	}
}
