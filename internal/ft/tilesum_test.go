package ft_test

import (
	"math"
	"math/bits"
	"math/rand"
	"strings"
	"testing"

	"exadla/internal/ft"
	"exadla/internal/matgen"
)

// TestFlipBitAdversarialInputs: FlipBit must yield a finite corruption for
// every input bit pattern, including the ones whose mantissa flips stay
// non-finite (Inf, NaN). Regression test for the old single-retry fallback,
// which returned NaN for Inf/NaN inputs.
func TestFlipBitAdversarialInputs(t *testing.T) {
	adversarial := []float64{
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		0, math.Copysign(0, -1),
		1, -1, 1e308, -1e308, 1e-308, 5e-324,
	}
	for seed := int64(0); seed < 50; seed++ {
		inj := ft.NewInjector(seed)
		for i, v := range adversarial {
			data := []float64{v}
			f := inj.FlipBit(data, 0, 1)
			got := data[0]
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("seed %d input %g: corruption %g is not finite", seed, v, got)
			}
			if f.Row != 0 || f.Col != 0 {
				t.Fatalf("input %d: fault location (%d,%d), want (0,0)", i, f.Row, f.Col)
			}
			// Exactly one bit must differ from the original pattern.
			x := math.Float64bits(v) ^ math.Float64bits(got)
			if bits.OnesCount64(x) != 1 {
				t.Fatalf("input %g: %d bits flipped", v, bits.OnesCount64(x))
			}
			// Finite inputs keep the documented mantissa range; Inf/NaN are
			// allowed to use exponent bits (they have to).
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				if b := bits.TrailingZeros64(x); b < 30 || b > 51 {
					t.Fatalf("finite input %g: flipped bit %d outside 30..51", v, b)
				}
			}
		}
	}
}

// TestDetectTolFloorAndScaling pins the contract of the scaled detection
// tolerance: the legacy constant (×n) is the floor, the ‖A‖·n·ε term takes
// over for large norms, and the function is monotone in both arguments.
func TestDetectTolFloorAndScaling(t *testing.T) {
	if got, want := ft.DetectTol(0, 100), 1e-8*100; got != want {
		t.Errorf("DetectTol(0,100) = %g, want floor %g", got, want)
	}
	if got, want := ft.DetectTol(1, 100), 1e-8*100; got != want {
		t.Errorf("DetectTol(1,100) = %g, want floor %g (scaled term below floor)", got, want)
	}
	big := ft.DetectTol(1e12, 512)
	if big <= 1e-8*512 {
		t.Errorf("DetectTol(1e12,512) = %g did not rise above the floor", big)
	}
	if ft.DetectTol(1e12, 1024) <= big {
		t.Error("DetectTol not monotone in n")
	}
	if ft.DetectTol(1e13, 512) <= big {
		t.Error("DetectTol not monotone in norm")
	}
	if got := ft.DetectTol(5, 0); got != 1e-8 {
		t.Errorf("DetectTol with n<1 = %g, want clamped floor 1e-8", got)
	}
}

// TestABFTCholeskyIllScaledNoFalsePositives: a badly scaled SPD matrix
// (entries around 1e10) must factor without phantom fault reports — the
// point of the norm-scaled tolerance — while a genuinely injected fault of
// relative size is still caught.
func TestABFTCholeskyIllScaledNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, scale = 64, 1e10
	a := matgen.DiagDomSPD[float64](rng, n)
	for i := range a {
		a[i] *= scale
	}
	f, err := ft.Cholesky(n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faults := f.Verify(); len(faults) != 0 {
		t.Fatalf("clean ill-scaled factorization reported %d phantom faults: %v", len(faults), faults)
	}
	// A corruption proportional to the factor's scale must still be seen.
	f.L[5+3*n] += 1e-3 * math.Sqrt(scale)
	faults := f.Verify()
	if len(faults) != 1 || faults[0].Row != 5 || faults[0].Col != 3 {
		t.Fatalf("injected fault not located: %v", faults)
	}
}

// TestColSumsRoundTrip: recomputing sums of unchanged data must match the
// witness bit-for-bit (same summation order), so verification with any
// tolerance reports nothing.
func TestColSumsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const m, n = 17, 9
	a := matgen.Dense[float64](rng, m, n)
	sums := make([]float64, 2*n)
	ft.ColSums(m, n, a, m, sums)
	if faults := ft.VerifyColSums(m, n, a, m, sums, 0); len(faults) != 0 {
		t.Fatalf("unchanged tile reported faults: %v", faults)
	}
}

// TestVerifyColSumsLocateAndCorrect injects one fault per run across every
// position of a tile and requires exact location and repair.
func TestVerifyColSumsLocateAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const m, n = 11, 6
	a := matgen.Dense[float64](rng, m, n)
	sums := make([]float64, 2*n)
	ft.ColSums(m, n, a, m, sums)
	for idx := 0; idx < m*n; idx++ {
		b := append([]float64(nil), a...)
		b[idx] += 3.75
		faults := ft.VerifyColSums(m, n, b, m, sums, 1e-8)
		if len(faults) != 1 || faults[0].Row != idx%m || faults[0].Col != idx/m {
			t.Fatalf("idx %d: faults %v, want single fault at (%d,%d)", idx, faults, idx%m, idx/m)
		}
		if c := ft.CorrectColSums(b, m, faults); c != 1 {
			t.Fatalf("idx %d: corrected %d, want 1", idx, c)
		}
		for i := range b {
			if math.Abs(b[i]-a[i]) > 1e-12 {
				t.Fatalf("idx %d: repair left residue at %d", idx, i)
			}
		}
	}
}

// TestVerifyTrilColSumsIgnoresUpperTriangle: garbage in the strict upper
// triangle (stale values in a Cholesky tile) must not trigger detection,
// while lower-triangle corruption is located.
func TestVerifyTrilColSumsIgnoresUpperTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const n = 8
	a := matgen.Dense[float64](rng, n, n)
	sums := make([]float64, 2*n)
	ft.TrilColSums(n, a, n, sums)
	b := append([]float64(nil), a...)
	b[0+5*n] = 1e30 // (0,5): strict upper triangle — stale storage
	if faults := ft.VerifyTrilColSums(n, b, n, sums, 1e-8); len(faults) != 0 {
		t.Fatalf("upper-triangle garbage reported as faults: %v", faults)
	}
	b[6+2*n] -= 2.5 // (6,2): lower triangle
	faults := ft.VerifyTrilColSums(n, b, n, sums, 1e-8)
	if len(faults) != 1 || faults[0].Row != 6 || faults[0].Col != 2 {
		t.Fatalf("lower-triangle fault not located: %v", faults)
	}
}

// TestVerifyColSumsUnlocatable: a NaN column and a multi-error column must
// degrade to Row = -1 (detected but unlocatable) rather than "correcting"
// a healthy entry, and CorrectColSums must skip them.
func TestVerifyColSumsUnlocatable(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const m, n = 9, 4
	a := matgen.Dense[float64](rng, m, n)
	sums := make([]float64, 2*n)
	ft.ColSums(m, n, a, m, sums)

	b := append([]float64(nil), a...)
	b[2+0*m] = math.NaN()
	faults := ft.VerifyColSums(m, n, b, m, sums, 1e-8)
	if len(faults) != 1 || faults[0].Row != -1 || faults[0].Col != 0 {
		t.Fatalf("NaN column: faults %v, want one unlocatable in column 0", faults)
	}
	if c := ft.CorrectColSums(b, m, faults); c != 0 {
		t.Fatalf("corrected %d unlocatable faults", c)
	}

	// Two opposite-sign faults in one column: ds is dominated by one of
	// them but the weighted ratio lands far outside the tile.
	b = append([]float64(nil), a...)
	b[1+2*m] += 1000
	b[7+2*m] -= 999.9999
	faults = ft.VerifyColSums(m, n, b, m, sums, 1e-6)
	for _, f := range faults {
		if f.Col != 2 {
			t.Fatalf("fault attributed to wrong column: %v", f)
		}
	}
	if len(faults) == 1 && faults[0].Row >= 0 {
		// The ratio dw/ds = (r1·d1+r2·d2)/(d1+d2) explodes for d1 ≈ -d2 and
		// must have been clamped to unlocatable.
		t.Fatalf("double fault mislocated as single fault at row %d", faults[0].Row)
	}
}

// TestStatsNote: counting discipline, including nil-safety.
func TestStatsNote(t *testing.T) {
	var s ft.Stats
	s.Note(nil, 0) // no faults: no detection
	s.Note([]ft.Fault{{Row: 1}, {Row: -1}}, 1)
	if s.Detected.Load() != 1 || s.Corrected.Load() != 1 || s.Unlocated.Load() != 1 {
		t.Errorf("stats = detected %d corrected %d unlocated %d, want 1/1/1",
			s.Detected.Load(), s.Corrected.Load(), s.Unlocated.Load())
	}
	var nilStats *ft.Stats
	nilStats.Note([]ft.Fault{{Row: 0}}, 1) // must not panic
}

func TestCorruptionErrorText(t *testing.T) {
	e := &ft.CorruptionError{TileRow: 2, TileCol: 1, Faults: []ft.Fault{{Row: 3, Col: 0, Delta: 1}}, Corrected: 1}
	if msg := e.Error(); !strings.Contains(msg, "(2,1)") || !strings.Contains(msg, "1 corrected") {
		t.Errorf("error text %q missing tile coordinates or correction count", msg)
	}
	sweep := &ft.CorruptionError{TileRow: -1, TileCol: -1}
	if msg := sweep.Error(); !strings.Contains(msg, "sweep") {
		t.Errorf("sweep error text %q does not say sweep", msg)
	}
}
