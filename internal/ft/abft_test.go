package ft_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/blas"
	"exadla/internal/ft"
	"exadla/internal/matgen"
)

func TestProtectedGemmNoFault(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n, k := 30, 20, 25
	a := matgen.Dense[float64](rng, m, k)
	b := matgen.Dense[float64](rng, k, n)
	p := ft.Gemm(m, n, k, a, m, b, k)
	// Result must equal a plain Gemm.
	want := make([]float64, m*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, 0, want, m)
	for i := range want {
		if math.Abs(p.C[i]-want[i]) > 1e-10 {
			t.Fatalf("protected product differs at %d", i)
		}
	}
	if faults := p.Verify(); len(faults) != 0 {
		t.Errorf("false positives: %v", faults)
	}
}

func TestProtectedGemmDetectLocateCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k := 40, 30, 20
	a := matgen.Dense[float64](rng, m, k)
	b := matgen.Dense[float64](rng, k, n)
	for trial := 0; trial < 20; trial++ {
		p := ft.Gemm(m, n, k, a, m, b, k)
		clean := append([]float64(nil), p.C...)
		inj := ft.NewInjector(int64(trial))
		idx := inj.RandomIndex(m, n)
		injected := inj.AddNoise(p.C, idx, m, 100+rng.Float64())
		faults := p.Verify()
		if len(faults) != 1 {
			t.Fatalf("trial %d: detected %d faults, want 1", trial, len(faults))
		}
		f := faults[0]
		if f.Row != injected.Row || f.Col != injected.Col {
			t.Fatalf("trial %d: located (%d,%d), injected (%d,%d)",
				trial, f.Row, f.Col, injected.Row, injected.Col)
		}
		p.Correct(faults)
		for i := range clean {
			if math.Abs(p.C[i]-clean[i]) > 1e-8 {
				t.Fatalf("trial %d: correction imperfect at %d: %g vs %g",
					trial, i, p.C[i], clean[i])
			}
		}
	}
}

func TestProtectedGemmBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 24, 24, 24
	a := matgen.Dense[float64](rng, m, k)
	b := matgen.Dense[float64](rng, k, n)
	detected := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		p := ft.Gemm(m, n, k, a, m, b, k)
		inj := ft.NewInjector(int64(100 + trial))
		idx := inj.RandomIndex(m, n)
		f := inj.FlipBit(p.C, idx, m)
		faults := p.Verify()
		if math.Abs(f.Delta) < 1e-6 {
			continue // flip below detection threshold; not counted
		}
		if len(faults) == 1 && faults[0].Row == f.Row && faults[0].Col == f.Col {
			detected++
		}
		p.Correct(faults)
	}
	if detected < trials*2/3 {
		t.Errorf("located only %d/%d significant bit flips", detected, trials)
	}
}

func TestProtectedGemmMultiColumnFaults(t *testing.T) {
	// One fault per column in several columns: all must be found.
	rng := rand.New(rand.NewSource(4))
	m, n, k := 20, 10, 15
	a := matgen.Dense[float64](rng, m, k)
	b := matgen.Dense[float64](rng, k, n)
	p := ft.Gemm(m, n, k, a, m, b, k)
	clean := append([]float64(nil), p.C...)
	inj := ft.NewInjector(9)
	for _, col := range []int{1, 4, 7} {
		inj.AddNoise(p.C, col*m+col%m, m, 50)
	}
	faults := p.Verify()
	if len(faults) != 3 {
		t.Fatalf("detected %d faults, want 3", len(faults))
	}
	p.Correct(faults)
	for i := range clean {
		if math.Abs(p.C[i]-clean[i]) > 1e-8 {
			t.Fatal("multi-fault correction failed")
		}
	}
}

func TestABFTCholeskyCleanRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	a := matgen.DiagDomSPD[float64](rng, n)
	f, err := ft.Cholesky(n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faults := f.Verify(); len(faults) != 0 {
		t.Errorf("false positives on clean factorization: %v", faults)
	}
	// The factor must actually solve the system.
	xTrue := matgen.Dense[float64](rng, n, 1)
	bb := make([]float64, n)
	blas.Symv(blas.Lower, n, 1, a, n, xTrue, 1, 0, bb, 1)
	f.Solve(bb)
	for i := range bb {
		if math.Abs(bb[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("solve error at %d: %g vs %g", i, bb[i], xTrue[i])
		}
	}
}

func TestABFTCholeskyChecksumsAreColumnSums(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 30
	a := matgen.DiagDomSPD[float64](rng, n)
	f, err := ft.Cholesky(n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		var s float64
		for i := j; i < n; i++ {
			s += f.L[i+j*n]
		}
		if math.Abs(s-f.Sum[j]) > 1e-9*(math.Abs(s)+1) {
			t.Fatalf("column %d: carried checksum %g, column sum %g", j, f.Sum[j], s)
		}
	}
}

func TestABFTCholeskyDetectCorrectStoredFault(t *testing.T) {
	// Fault model: silent corruption of the stored factor after
	// factorization (e.g. a DRAM upset before the factor is reused).
	rng := rand.New(rand.NewSource(7))
	n := 50
	a := matgen.DiagDomSPD[float64](rng, n)
	for trial := 0; trial < 20; trial++ {
		f, err := ft.Cholesky(n, a, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		clean := append([]float64(nil), f.L...)
		inj := ft.NewInjector(int64(trial + 40))
		idx := inj.RandomLowerIndex(n)
		injected := inj.AddNoise(f.L, idx, n, 10)
		faults := f.Verify()
		if len(faults) != 1 || faults[0].Row != injected.Row || faults[0].Col != injected.Col {
			t.Fatalf("trial %d: faults %v, injected %v", trial, faults, injected)
		}
		f.Correct(faults)
		for i := range clean {
			if math.Abs(f.L[i]-clean[i]) > 1e-8 {
				t.Fatalf("trial %d: correction imperfect", trial)
			}
		}
	}
}

func TestABFTCholeskyRecoveredSolveAccuracy(t *testing.T) {
	// End to end: corrupt, verify, correct, then the solve must be as good
	// as a fault-free one.
	rng := rand.New(rand.NewSource(8))
	n := 40
	a := matgen.DiagDomSPD[float64](rng, n)
	xTrue := matgen.Dense[float64](rng, n, 1)
	b := make([]float64, n)
	blas.Symv(blas.Lower, n, 1, a, n, xTrue, 1, 0, b, 1)

	f, err := ft.Cholesky(n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj := ft.NewInjector(99)
	inj.AddNoise(f.L, inj.RandomLowerIndex(n), n, 25)
	// Without correction the solve is garbage; with correction it's exact.
	f.Correct(f.Verify())
	got := append([]float64(nil), b...)
	f.Solve(got)
	for i := range got {
		if math.Abs(got[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("recovered solve wrong at %d", i)
		}
	}
}

func TestABFTCholeskyNotPD(t *testing.T) {
	n := 5
	a := matgen.Identity[float64](n)
	a[3+3*n] = -1
	if _, err := ft.Cholesky(n, a, n, nil); err == nil {
		t.Error("expected not-positive-definite error")
	}
}

func TestInjectorRecordsFaults(t *testing.T) {
	inj := ft.NewInjector(1)
	data := []float64{1, 2, 3, 4}
	f := inj.FlipBit(data, 2, 2)
	if len(inj.Injected) != 1 {
		t.Fatal("fault not recorded")
	}
	if f.Row != 0 || f.Col != 1 {
		t.Errorf("fault coordinates (%d,%d)", f.Row, f.Col)
	}
	if data[2] == 3 {
		t.Error("bit flip did not change the value")
	}
	if math.IsNaN(data[2]) || math.IsInf(data[2], 0) {
		t.Error("bit flip produced non-finite value")
	}
}
