package ft

import (
	"encoding/binary"
	"hash/crc64"
	"math"
)

// Tile integrity checksums. A tile's CRC64 (ECMA polynomial) is computed
// over the IEEE-754 bit patterns of its elements in storage order, so it is
// exactly as bitwise as the determinism contract: two tiles agree on their
// CRC iff they agree bit for bit. The checksum travels end to end — computed
// by the committing worker, verified by the coordinator before the store
// accepts the bytes, kept alongside the tile at rest (where a background
// scrub re-verifies it), and served back with every Get for the fetching
// worker to check. A flipped bit anywhere on that path is detected at the
// next hop rather than silently factored into the result.

var crcTable = crc64.MakeTable(crc64.ECMA)

// CRC64 checksums a float64 slice by its bit patterns.
func CRC64(data []float64) uint64 {
	var buf [8]byte
	crc := crc64.New(crcTable)
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		crc.Write(buf[:])
	}
	return crc.Sum64()
}
