package ft

import (
	"fmt"
	"math"
	"sync"

	"exadla/internal/tile"
)

// This file extends the Huang–Abraham checksum scheme from error
// *correction* to *erasure* recovery — the hard-fault half of the ABFT
// story. The 2×n column sums of tilesum.go locate and fix a flipped entry;
// they cannot rebuild a tile that is gone wholesale (a dead worker's
// output, a lost process's memory). For that, RowErasure keeps one parity
// tile per tile row of the matrix: the XOR of the float64 bit patterns of
// every *committed* (finalized) tile in the row. XOR is subtraction in
// GF(2), so a single lost tile is recovered exactly — bit for bit — by
// XOR-ing the parity with the surviving peers. Bitwise exactness is the
// point: a floating-point checksum row (the classic formulation) recovers
// the tile only up to rounding, which would break the repository's
// bitwise-reproducibility guarantees for chaos runs; the GF(2) parity is
// also order-independent, so commits need no serialization for the parity
// to be well defined.
//
// The protection model is fail-stop plus checksum defense-in-depth: one
// lost tile per tile row is recoverable (FT-ScaLAPACK's checksum-column
// discipline), and the column checksums of tilesum.go distinguish a flip
// (one located fault, corrected in place) from wholesale loss (faults
// across columns, reconstructed here).
//
// Concurrency: parity and the committed set are guarded by an internal
// mutex. Reconstruction reads the *data* of committed peer tiles outside
// any declared scheduler dependence; that is race-free because a committed
// tile is finalized — its last writer happens-before the commit (a
// declared RAW dependence), the commit's mutex release happens-before the
// reconstruction's acquire, and amendments (Amend) to committed tiles are
// serialized against reconstructions by the caller declaring the row's
// parity handle (RowHandle) as written on both task types.

// RowErasure holds the per-tile-row XOR parity of one tile matrix.
type RowErasure struct {
	a     *tile.Matrix[float64]
	stats *Stats

	mu        sync.Mutex
	parity    [][]uint64 // parity[i]: TileRows(i)×NB words, column-major
	committed [][]bool   // committed[i][j]
}

// NewRowErasure allocates zeroed parity for every tile row of a. stats may
// be nil.
func NewRowErasure(a *tile.Matrix[float64], stats *Stats) *RowErasure {
	e := &RowErasure{
		a:         a,
		stats:     stats,
		parity:    make([][]uint64, a.MT),
		committed: make([][]bool, a.MT),
	}
	for i := 0; i < a.MT; i++ {
		e.parity[i] = make([]uint64, a.TileRows(i)*a.NB)
		e.committed[i] = make([]bool, a.NT)
	}
	return e
}

// ErasureRowHandle is the scheduler identity of one tile row's parity
// tile. Tasks that commit to, amend, or reconstruct from a row's parity
// declare its handle as written, which serializes them per row and gives
// reconstruction its happens-before edge to every earlier commit.
type ErasureRowHandle struct {
	e   *RowErasure
	row int
}

// Row returns the tile-row index the parity tile protects.
func (h ErasureRowHandle) Row() int { return h.row }

// Words returns the parity tile's size in words (for communication
// accounting: moving a parity tile costs as much as a full-width tile).
func (h ErasureRowHandle) Words() int { return h.e.a.TileRows(h.row) * h.e.a.NB }

// RowHandle returns the parity handle of tile row i.
func (e *RowErasure) RowHandle(i int) ErasureRowHandle { return ErasureRowHandle{e, i} }

// Commit folds tile (i, j) into its row parity and marks it committed —
// called exactly when the factorization finalizes the tile (it must not be
// rewritten afterwards except through Amend). Committing a committed tile
// is a no-op, so retried commit tasks are idempotent.
func (e *RowErasure) Commit(i, j int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.committed[i][j] {
		return
	}
	e.xorTile(i, j)
	e.committed[i][j] = true
}

// Committed reports whether tile (i, j) is part of its row's parity group.
func (e *RowErasure) Committed(i, j int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.committed[i][j]
}

// Amend fixes the row parity for an in-place change of one entry of the
// committed tile (i, j) from oldVal to newVal — the ABFT correction path
// mutates finalized tiles, and the parity must follow or later
// reconstructions in the row would be wrong. No-op if the tile is not
// committed.
func (e *RowErasure) Amend(i, j, row, col int, oldVal, newVal float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.committed[i][j] {
		return
	}
	tr := e.a.TileRows(i)
	e.parity[i][col*tr+row] ^= math.Float64bits(oldVal) ^ math.Float64bits(newVal)
}

// ReconstructTile rebuilds the committed tile (i, j) in place from the row
// parity and the surviving committed peers: parity ⊕ (⊕ peers) is exactly
// the lost tile's bit pattern. The tile's current (corrupt or zeroed)
// contents are ignored. Errors if the tile was never committed — an
// uncommitted tile has no contribution in the parity to recover.
func (e *RowErasure) ReconstructTile(i, j int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.committed[i][j] {
		return fmt.Errorf("ft: tile (%d,%d) is not in its row parity group; cannot reconstruct", i, j)
	}
	a := e.a
	tr := a.TileRows(i)
	acc := make([]uint64, len(e.parity[i]))
	copy(acc, e.parity[i])
	for jj := 0; jj < a.NT; jj++ {
		if jj == j || !e.committed[i][jj] {
			continue
		}
		t := a.Tile(i, jj)
		for c := 0; c < a.TileCols(jj); c++ {
			for r := 0; r < tr; r++ {
				acc[c*tr+r] ^= math.Float64bits(t[r+c*tr])
			}
		}
	}
	dst := a.Tile(i, j)
	for c := 0; c < a.TileCols(j); c++ {
		for r := 0; r < tr; r++ {
			dst[r+c*tr] = math.Float64frombits(acc[c*tr+r])
		}
	}
	if e.stats != nil {
		e.stats.TilesReconstructed.Add(1)
	}
	return nil
}

// xorTile folds tile (i, j)'s bit pattern into parity[i]. Caller holds mu.
func (e *RowErasure) xorTile(i, j int) {
	a := e.a
	tr := a.TileRows(i)
	t := a.Tile(i, j)
	p := e.parity[i]
	for c := 0; c < a.TileCols(j); c++ {
		for r := 0; r < tr; r++ {
			p[c*tr+r] ^= math.Float64bits(t[r+c*tr])
		}
	}
}
