package ft

import (
	"math"
	"math/rand"
)

// Injector produces the soft-error model used by the experiments: silent
// single-entry corruptions of stored floating-point data (the classic ABFT
// fault model — a bit flip in memory or a register that writes back).
type Injector struct {
	rng *rand.Rand
	// Injected records every corruption performed, for test assertions.
	Injected []Fault
}

// NewInjector returns an injector with its own deterministic stream.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// FlipBit corrupts one element of data by flipping a mantissa or exponent
// bit (bit 30..51 of the IEEE-754 representation: large enough to matter,
// never the sign of infinity/NaN patterns). It records and returns the
// equivalent Fault for a column-major matrix with leading dimension ld.
func (in *Injector) FlipBit(data []float64, idx, ld int) Fault {
	bit := uint(30 + in.rng.Intn(22))
	old := data[idx]
	bits := math.Float64bits(old) ^ (1 << bit)
	corrupted := math.Float64frombits(bits)
	if math.IsNaN(corrupted) || math.IsInf(corrupted, 0) {
		// Retry on a mantissa-only bit so the corruption stays finite.
		bits = math.Float64bits(old) ^ (1 << 30)
		corrupted = math.Float64frombits(bits)
	}
	data[idx] = corrupted
	f := Fault{Row: idx % ld, Col: idx / ld, Delta: corrupted - old}
	in.Injected = append(in.Injected, f)
	return f
}

// AddNoise corrupts one element by adding a large perturbation, the
// easiest-to-reason-about corruption for accuracy experiments.
func (in *Injector) AddNoise(data []float64, idx, ld int, magnitude float64) Fault {
	data[idx] += magnitude
	f := Fault{Row: idx % ld, Col: idx / ld, Delta: magnitude}
	in.Injected = append(in.Injected, f)
	return f
}

// RandomIndex picks a uniformly random index into a dense m×n column-major
// matrix (ld == m).
func (in *Injector) RandomIndex(m, n int) int {
	return in.rng.Intn(m * n)
}

// RandomLowerIndex picks a random index on or below the diagonal of an
// n×n column-major matrix, the storage region of a Cholesky factor.
func (in *Injector) RandomLowerIndex(n int) int {
	for {
		i, j := in.rng.Intn(n), in.rng.Intn(n)
		if i >= j {
			return i + j*n
		}
	}
}
