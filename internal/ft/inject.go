package ft

import (
	"math"
	"math/rand"
)

// Injector produces the soft-error model used by the experiments: silent
// single-entry corruptions of stored floating-point data (the classic ABFT
// fault model — a bit flip in memory or a register that writes back).
type Injector struct {
	rng *rand.Rand
	// Injected records every corruption performed, for test assertions.
	Injected []Fault
}

// NewInjector returns an injector with its own deterministic stream.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// FlipBit corrupts one element of data by flipping one bit of its IEEE-754
// representation, guaranteeing the corrupted value is finite. For finite
// inputs the flipped bit is a high mantissa bit (30..51: large enough to
// matter, and flipping a mantissa bit of a finite double can never produce
// Inf or NaN). For Inf/NaN inputs no mantissa flip can restore finiteness
// — the exponent field is already all ones — so the injector walks
// candidate bits downward from the top exponent bit until the result is
// finite (flipping bit 62 alone repairs every Inf/NaN pattern). It records
// and returns the equivalent Fault for a column-major matrix with leading
// dimension ld; for non-finite inputs the recorded Delta is itself
// non-finite and only the location is meaningful.
func (in *Injector) FlipBit(data []float64, idx, ld int) Fault {
	bit := uint(30 + in.rng.Intn(22))
	old := data[idx]
	corrupted := math.Float64frombits(math.Float64bits(old) ^ (1 << bit))
	for b := uint(62); !finite(corrupted) && b >= 30; b-- {
		corrupted = math.Float64frombits(math.Float64bits(old) ^ (1 << b))
	}
	data[idx] = corrupted
	f := Fault{Row: idx % ld, Col: idx / ld, Delta: corrupted - old}
	in.Injected = append(in.Injected, f)
	return f
}

// finite reports whether v is neither NaN nor an infinity.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// AddNoise corrupts one element by adding a large perturbation, the
// easiest-to-reason-about corruption for accuracy experiments.
func (in *Injector) AddNoise(data []float64, idx, ld int, magnitude float64) Fault {
	data[idx] += magnitude
	f := Fault{Row: idx % ld, Col: idx / ld, Delta: magnitude}
	in.Injected = append(in.Injected, f)
	return f
}

// RandomIndex picks a uniformly random index into a dense m×n column-major
// matrix (ld == m).
func (in *Injector) RandomIndex(m, n int) int {
	return in.rng.Intn(m * n)
}

// RandomLowerIndex picks a random index on or below the diagonal of an
// n×n column-major matrix, the storage region of a Cholesky factor.
func (in *Injector) RandomLowerIndex(n int) int {
	for {
		i, j := in.rng.Intn(n), in.rng.Intn(n)
		if i >= j {
			return i + j*n
		}
	}
}
