// Package ft implements algorithm-based fault tolerance (ABFT) in the
// Huang–Abraham tradition: matrices are extended with checksum rows that
// the factorization or multiplication maintains as a by-product of its own
// arithmetic, so a silent data corruption is detected, located, and
// corrected from the checksum relations — without checkpoints and at O(n²)
// overhead on an O(n³) computation. "At extreme scale, faults are the norm."
package ft

import (
	"fmt"
	"math"

	"exadla/internal/blas"
	"exadla/internal/lapack"
)

// Fault describes one detected (and correctable) corruption.
type Fault struct {
	// Row and Col locate the corrupted entry.
	Row, Col int
	// Delta is the detected corruption (actual − expected); subtracting it
	// repairs the entry.
	Delta float64
}

func (f Fault) String() string {
	return fmt.Sprintf("fault at (%d,%d) Δ=%g", f.Row, f.Col, f.Delta)
}

// detectTol is the legacy absolute tolerance separating rounding noise
// from real corruption in checksum comparisons. It survives as the floor
// of DetectTol, so well-scaled problems keep their historical behaviour.
const detectTol = 1e-8

// eps is the double-precision unit roundoff.
const eps = 0x1p-52

// detectFactor is the headroom multiplier over the worst-case checksum
// rounding drift ‖A‖·n·ε that DetectTol allows before declaring
// corruption.
const detectFactor = 64

// DetectTol returns the threshold separating checksum rounding drift from
// real corruption for an n-dimensional computation on data of the given
// norm (any consistent norm — max-abs is fine; pass 0 if unknown). The
// scaled term ‖A‖·n·ε·factor tracks how legitimate drift grows with
// problem size and data magnitude, so badly scaled matrices do not trip
// false positives; the legacy constant detectTol (times n) remains the
// floor, so the historical behaviour is the default for small norms.
func DetectTol(norm float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	tol := norm * float64(n) * detectFactor * eps
	if floor := detectTol * float64(n); tol < floor {
		tol = floor
	}
	return tol
}

// ProtectedGemm computes C = A·B (A m×k, B k×n) with Huang–Abraham
// checksums: A is extended with plain and row-weighted checksum rows, so
// the product carries column checksums of C. Verify the result with
// VerifyGemm, which locates single corrupted entries per column.
type ProtectedGemm struct {
	M, N, K int
	// C is the m×n product.
	C []float64
	// Sum[j] and Weighted[j] carry eᵀC and wᵀC (w_i = i+1) per column.
	Sum, Weighted []float64
	// Norm bounds the magnitude of C's entries (max|A|·max|B|·k), set by
	// Gemm and consumed by Verify's scaled detection tolerance. Zero means
	// unknown: Verify falls back to the per-column scale and legacy floor.
	Norm float64
}

// Gemm multiplies with checksum protection. The checksum rows are computed
// through the same inner products as C itself (an extended multiplication),
// not by post-hoc summation — that is what makes them independent witnesses
// of C's entries.
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int) *ProtectedGemm {
	// Extended A: (m+2)×k with row m = eᵀA, row m+1 = wᵀA.
	ext := make([]float64, (m+2)*k)
	var maxA, maxB float64
	for j := 0; j < k; j++ {
		col := a[j*lda : j*lda+m]
		var s, ws float64
		for i, v := range col {
			ext[i+j*(m+2)] = v
			s += v
			ws += float64(i+1) * v
			if av := math.Abs(v); av > maxA {
				maxA = av
			}
		}
		ext[m+j*(m+2)] = s
		ext[m+1+j*(m+2)] = ws
	}
	for j := 0; j < n; j++ {
		for i := 0; i < k; i++ {
			if av := math.Abs(b[i+j*ldb]); av > maxB {
				maxB = av
			}
		}
	}
	cext := make([]float64, (m+2)*n)
	blas.Gemm(blas.NoTrans, blas.NoTrans, m+2, n, k, 1, ext, m+2, b, ldb, 0, cext, m+2)
	p := &ProtectedGemm{M: m, N: n, K: k,
		C:        make([]float64, m*n),
		Sum:      make([]float64, n),
		Weighted: make([]float64, n),
		Norm:     maxA * maxB * float64(k),
	}
	for j := 0; j < n; j++ {
		copy(p.C[j*m:j*m+m], cext[j*(m+2):j*(m+2)+m])
		p.Sum[j] = cext[m+j*(m+2)]
		p.Weighted[j] = cext[m+1+j*(m+2)]
	}
	return p
}

// Verify checks every column's checksums against the data, returning the
// located faults (at most one per column is assumed, the standard ABFT
// fault model). It does not modify C.
func (p *ProtectedGemm) Verify() []Fault {
	var faults []Fault
	for j := 0; j < p.N; j++ {
		col := p.C[j*p.M : j*p.M+p.M]
		var s, ws, scale float64
		for i, v := range col {
			s += v
			ws += float64(i+1) * v
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		ds := s - p.Sum[j]
		dw := ws - p.Weighted[j]
		tol := DetectTol(math.Max(p.Norm, scale+1), p.M+p.K)
		if math.Abs(ds) <= tol {
			continue
		}
		// Single-error location: dw/ds = (row+1).
		row := int(math.Round(dw/ds)) - 1
		if row < 0 || row >= p.M {
			row = 0 // fault outside the single-error model; clamp
		}
		faults = append(faults, Fault{Row: row, Col: j, Delta: ds})
	}
	return faults
}

// Correct repairs the given faults in place and returns the count.
func (p *ProtectedGemm) Correct(faults []Fault) int {
	for _, f := range faults {
		p.C[f.Row+f.Col*p.M] -= f.Delta
	}
	return len(faults)
}

// ABFTCholesky factors an SPD matrix with two checksum rows carried through
// the factorization: the extended matrix [A; eᵀA; wᵀA] = [L; x; y]·Lᵀ
// forces x = eᵀL and y = wᵀL, so after (and during) factorization the
// checksum rows independently witness the column sums of L.
type ABFTCholesky struct {
	N int
	// L is the n×n lower-triangular factor (dense storage).
	L []float64
	// Sum and Weighted are the carried checksum rows: eᵀL and wᵀL.
	Sum, Weighted []float64
	// Norm is the max-abs norm of the input matrix, set by Cholesky and
	// consumed by Verify's scaled detection tolerance. Zero means unknown:
	// Verify falls back to the per-column scale and legacy floor.
	Norm float64
}

// Cholesky runs the protected factorization of the n×n SPD matrix A (lower
// triangle referenced; A untouched). faultHook, if non-nil, is invoked
// after each column is computed with the column index and the factor
// storage — tests and the benchmark harness use it to inject corruption
// mid-factorization.
func Cholesky(n int, a []float64, lda int, faultHook func(col int, l []float64)) (*ABFTCholesky, error) {
	// Extended working matrix: (n+2)×n, top n×n = lower triangle of A.
	// Checksums are full-column sums of the symmetric matrix; one
	// column-major pass over the stored lower triangle scatters each
	// entry's contribution to both columns it represents, avoiding the
	// strided reads of reconstructing the upper triangle.
	m := n + 2
	w := make([]float64, m*n)
	var norm float64
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		diag := col[j]
		w[j+j*m] = diag
		w[n+j*m] += diag
		w[n+1+j*m] += float64(j+1) * diag
		if av := math.Abs(diag); av > norm {
			norm = av
		}
		for i := j + 1; i < n; i++ {
			v := col[i]
			if av := math.Abs(v); av > norm {
				norm = av
			}
			w[i+j*m] = v
			// As A[i][j] in column j and as A[j][i] in column i.
			w[n+j*m] += v
			w[n+1+j*m] += float64(i+1) * v
			w[n+i*m] += v
			w[n+1+i*m] += float64(j+1) * v
		}
	}
	// Right-looking Cholesky on rows 0..n-1, with rows n and n+1 carried
	// through the same column operations (they never pivot).
	for j := 0; j < n; j++ {
		d := w[j+j*m]
		for k := 0; k < j; k++ {
			d -= w[j+k*m] * w[j+k*m]
		}
		if d <= 0 {
			return nil, &lapack.NotPositiveDefiniteError{Index: j}
		}
		d = math.Sqrt(d)
		w[j+j*m] = d
		// Column j below the diagonal, including the checksum rows.
		for i := j + 1; i < m; i++ {
			v := w[i+j*m]
			for k := 0; k < j; k++ {
				v -= w[i+k*m] * w[j+k*m]
			}
			w[i+j*m] = v / d
		}
		if faultHook != nil {
			faultHook(j, w)
		}
	}
	f := &ABFTCholesky{N: n, L: make([]float64, n*n), Sum: make([]float64, n), Weighted: make([]float64, n), Norm: norm}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			f.L[i+j*n] = w[i+j*m]
		}
		f.Sum[j] = w[n+j*m]
		f.Weighted[j] = w[n+1+j*m]
	}
	return f, nil
}

// Verify compares L's column sums against the carried checksums and
// locates single corrupted entries per column.
func (f *ABFTCholesky) Verify() []Fault {
	var faults []Fault
	n := f.N
	for j := 0; j < n; j++ {
		var s, ws, scale float64
		for i := j; i < n; i++ {
			v := f.L[i+j*n]
			s += v
			ws += float64(i+1) * v
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
		ds := s - f.Sum[j]
		dw := ws - f.Weighted[j]
		tol := DetectTol(math.Max(f.Norm, scale+1), n)
		if math.Abs(ds) <= tol {
			continue
		}
		row := int(math.Round(dw/ds)) - 1
		if row < j || row >= n {
			row = j
		}
		faults = append(faults, Fault{Row: row, Col: j, Delta: ds})
	}
	return faults
}

// Correct repairs the located faults in L.
func (f *ABFTCholesky) Correct(faults []Fault) int {
	for _, flt := range faults {
		f.L[flt.Row+flt.Col*f.N] -= flt.Delta
	}
	return len(faults)
}

// CholeskyUnprotected runs the identical right-looking factorization
// without checksum rows — the baseline the E6 experiment measures ABFT
// overhead against. It deliberately uses the same (n+2)-row storage layout
// as the protected version (the two checksum rows simply stay unused), so
// the measured delta isolates the checksum arithmetic rather than
// cache-aliasing differences between leading dimensions.
func CholeskyUnprotected(n int, a []float64, lda int) ([]float64, error) {
	m := n + 2
	w := make([]float64, m*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			w[i+j*m] = a[i+j*lda]
		}
	}
	for j := 0; j < n; j++ {
		d := w[j+j*m]
		for k := 0; k < j; k++ {
			d -= w[j+k*m] * w[j+k*m]
		}
		if d <= 0 {
			return nil, &lapack.NotPositiveDefiniteError{Index: j}
		}
		d = math.Sqrt(d)
		w[j+j*m] = d
		for i := j + 1; i < n; i++ {
			v := w[i+j*m]
			for k := 0; k < j; k++ {
				v -= w[i+k*m] * w[j+k*m]
			}
			w[i+j*m] = v / d
		}
	}
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = w[i+j*m]
		}
	}
	return l, nil
}

// Solve uses the (verified) factor to solve A·x = b in place.
func (f *ABFTCholesky) Solve(b []float64) {
	blas.Trsv(blas.Lower, blas.NoTrans, blas.NonUnit, f.N, f.L, f.N, b, 1)
	blas.Trsv(blas.Lower, blas.Trans, blas.NonUnit, f.N, f.L, f.N, b, 1)
}
