package ft

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/tile"
)

// randTiled builds an m×n tiled matrix of nb-sized tiles with random
// (including denormal-ish and negative) entries.
func randTiled(t *testing.T, rng *rand.Rand, m, n, nb int) *tile.Matrix[float64] {
	t.Helper()
	data := make([]float64, m*n)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return tile.FromColMajor(m, n, data, m, nb)
}

func cloneTiles(a *tile.Matrix[float64]) [][]float64 {
	out := make([][]float64, a.MT*a.NT)
	for j := 0; j < a.NT; j++ {
		for i := 0; i < a.MT; i++ {
			out[i+j*a.MT] = append([]float64(nil), a.Tile(i, j)...)
		}
	}
	return out
}

// TestErasureReconstructBitwise commits every tile, wipes one, and checks
// reconstruction is exact to the bit — including boundary tiles narrower
// or shorter than NB, and special values.
func TestErasureReconstructBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, n, nb int }{
		{96, 96, 32},  // uniform tiles
		{100, 70, 32}, // ragged right and bottom boundary tiles
		{64, 64, 64},  // single tile row/col
		{33, 97, 16},  // many ragged tiles
	}
	for _, sh := range shapes {
		a := randTiled(t, rng, sh.m, sh.n, sh.nb)
		// Seed some special values: negative zero, subnormal, huge.
		tl := a.Tile(0, 0)
		tl[0] = math.Copysign(0, -1)
		tl[1] = math.SmallestNonzeroFloat64
		tl[2] = math.MaxFloat64
		var st Stats
		e := NewRowErasure(a, &st)
		for j := 0; j < a.NT; j++ {
			for i := 0; i < a.MT; i++ {
				e.Commit(i, j)
			}
		}
		want := cloneTiles(a)

		for i := 0; i < a.MT; i++ {
			for j := 0; j < a.NT; j++ {
				// Wipe tile (i,j) and reconstruct it.
				lost := a.Tile(i, j)
				for k := range lost {
					lost[k] = 0
				}
				if err := e.ReconstructTile(i, j); err != nil {
					t.Fatalf("%dx%d/nb=%d: ReconstructTile(%d,%d): %v", sh.m, sh.n, sh.nb, i, j, err)
				}
				got := a.Tile(i, j)
				for k := range got {
					if math.Float64bits(got[k]) != math.Float64bits(want[i+j*a.MT][k]) {
						t.Fatalf("%dx%d/nb=%d tile(%d,%d)[%d]: got %x want %x",
							sh.m, sh.n, sh.nb, i, j, k,
							math.Float64bits(got[k]), math.Float64bits(want[i+j*a.MT][k]))
					}
				}
			}
		}
		if got := st.TilesReconstructed.Load(); got != int64(a.MT*a.NT) {
			t.Errorf("TilesReconstructed = %d, want %d", got, a.MT*a.NT)
		}
	}
}

// TestErasureUncommitted: a tile outside the parity group cannot be
// reconstructed, and committing twice folds the tile in only once.
func TestErasureUncommitted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randTiled(t, rng, 64, 64, 32)
	e := NewRowErasure(a, nil)
	if err := e.ReconstructTile(0, 0); err == nil {
		t.Fatal("ReconstructTile of uncommitted tile succeeded")
	}
	if e.Committed(0, 1) {
		t.Fatal("Committed true before Commit")
	}

	e.Commit(0, 0)
	e.Commit(0, 0) // idempotent: parity must not cancel to zero
	e.Commit(0, 1)
	want := append([]float64(nil), a.Tile(0, 0)...)
	for k := range a.Tile(0, 0) {
		a.Tile(0, 0)[k] = math.NaN()
	}
	if err := e.ReconstructTile(0, 0); err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Tile(0, 0) {
		if math.Float64bits(v) != math.Float64bits(want[k]) {
			t.Fatalf("double-commit broke parity at [%d]: %x vs %x",
				k, math.Float64bits(v), math.Float64bits(want[k]))
		}
	}
}

// TestErasureAmend: correcting an entry of a committed tile and amending
// the parity keeps later reconstructions of *other* tiles — and of the
// amended tile itself — exact.
func TestErasureAmend(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randTiled(t, rng, 96, 96, 32)
	e := NewRowErasure(a, nil)
	for j := 0; j < a.NT; j++ {
		e.Commit(0, j)
	}

	// In-place "ABFT correction" of entry (3, 5) of tile (0, 1).
	tl := a.Tile(0, 1)
	ld := a.TileRows(0)
	oldV := tl[3+5*ld]
	newV := oldV + 42.5
	tl[3+5*ld] = newV
	e.Amend(0, 1, 3, 5, oldV, newV)

	// Peer reconstruction still bitwise-exact.
	want := append([]float64(nil), a.Tile(0, 2)...)
	for k := range a.Tile(0, 2) {
		a.Tile(0, 2)[k] = 0
	}
	if err := e.ReconstructTile(0, 2); err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Tile(0, 2) {
		if math.Float64bits(v) != math.Float64bits(want[k]) {
			t.Fatalf("post-amend peer reconstruction wrong at [%d]", k)
		}
	}

	// The amended tile reconstructs to its corrected value.
	wantSelf := append([]float64(nil), tl...)
	for k := range tl {
		tl[k] = 0
	}
	if err := e.ReconstructTile(0, 1); err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Tile(0, 1) {
		if math.Float64bits(v) != math.Float64bits(wantSelf[k]) {
			t.Fatalf("amended tile reconstruction wrong at [%d]", k)
		}
	}
	if got := a.Tile(0, 1)[3+5*ld]; got != newV {
		t.Fatalf("corrected entry reconstructed as %v, want %v", got, newV)
	}
}

// TestErasureRowHandleIdentity: handles are comparable per (erasure, row)
// and report the parity tile's footprint.
func TestErasureRowHandleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randTiled(t, rng, 100, 64, 32) // last tile row has 4 rows
	e := NewRowErasure(a, nil)
	e2 := NewRowErasure(a, nil)
	if e.RowHandle(0) != e.RowHandle(0) {
		t.Error("same row handle not equal to itself")
	}
	if e.RowHandle(0) == e.RowHandle(1) {
		t.Error("different rows compare equal")
	}
	if e.RowHandle(0) == e2.RowHandle(0) {
		t.Error("handles from different erasure groups compare equal")
	}
	if h := e.RowHandle(3); h.Row() != 3 || h.Words() != 4*32 {
		t.Errorf("RowHandle(3) = row %d, %d words; want 3, 128", h.Row(), h.Words())
	}
}
