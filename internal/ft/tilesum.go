package ft

import (
	"fmt"
	"math"
	"sync/atomic"
)

// This file provides the tile-granular checksum primitives behind the
// resilient tile factorizations (core.ResilientCholesky, core.ResilientLU):
// per-tile plain and weighted column sums in a 2×n row-pair layout that
// BLAS kernels can carry through trsm and gemm updates, verification that
// locates single corrupted entries per column, and in-place correction.
//
// Layout: sums[2j] = Σᵢ a[i,j] (plain), sums[2j+1] = Σᵢ (i+1)·a[i,j]
// (weighted). The pair is exactly a two-row column-major matrix with
// leading dimension 2, so for a right-side update A ← A·M the checksums
// follow with the same BLAS call on the 2×n pair — that is what keeps them
// independent witnesses of the tile's entries during a factorization.

// ColSums writes the plain and weighted column checksums of the m×n
// column-major tile a (leading dimension lda) into sums, which must have
// at least 2n elements.
func ColSums(m, n int, a []float64, lda int, sums []float64) {
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s, ws float64
		for i, v := range col {
			s += v
			ws += float64(i+1) * v
		}
		sums[2*j] = s
		sums[2*j+1] = ws
	}
}

// TrilColSums is ColSums restricted to the lower triangle (i ≥ j) of the
// leading n×n block — the storage region of a Cholesky factor tile, whose
// strict upper triangle holds stale values that must not pollute the
// checksums.
func TrilColSums(n int, a []float64, lda int, sums []float64) {
	for j := 0; j < n; j++ {
		var s, ws float64
		for i := j; i < n; i++ {
			v := a[i+j*lda]
			s += v
			ws += float64(i+1) * v
		}
		sums[2*j] = s
		sums[2*j+1] = ws
	}
}

// VerifyColSums recomputes the column sums of the m×n tile a and compares
// them to the carried sums, returning one Fault per column whose plain-sum
// discrepancy exceeds tol. The weighted sum locates the corrupted row
// (single-error model: dw/ds = row+1); a ratio outside [0, m) marks the
// fault unlocatable with Row = -1, in which case Delta still reports the
// column's discrepancy but CorrectColSums will skip it.
func VerifyColSums(m, n int, a []float64, lda int, sums []float64, tol float64) []Fault {
	return verifySums(m, n, a, lda, sums, tol, false)
}

// VerifyTrilColSums is VerifyColSums against TrilColSums witnesses: only
// the lower triangle is summed, and a located row above the diagonal is
// unlocatable (the checksums carry no information about that region).
func VerifyTrilColSums(n int, a []float64, lda int, sums []float64, tol float64) []Fault {
	return verifySums(n, n, a, lda, sums, tol, true)
}

func verifySums(m, n int, a []float64, lda int, sums []float64, tol float64, tril bool) []Fault {
	var faults []Fault
	for j := 0; j < n; j++ {
		lo := 0
		if tril {
			lo = j
		}
		var s, ws float64
		for i := lo; i < m; i++ {
			v := a[i+j*lda]
			s += v
			ws += float64(i+1) * v
		}
		ds := s - sums[2*j]
		dw := ws - sums[2*j+1]
		if math.Abs(ds) <= tol || math.IsNaN(ds) {
			if !math.IsNaN(ds) {
				continue
			}
			// A NaN in the column: unlocatable by the ratio test.
			faults = append(faults, Fault{Row: -1, Col: j, Delta: ds})
			continue
		}
		row := int(math.Round(dw/ds)) - 1
		if row < lo || row >= m {
			row = -1
		}
		faults = append(faults, Fault{Row: row, Col: j, Delta: ds})
	}
	return faults
}

// CorrectColSums repairs located faults in the tile in place (subtracting
// each Delta at its located entry) and returns how many it corrected.
// Unlocatable faults (Row < 0) are skipped.
func CorrectColSums(a []float64, lda int, faults []Fault) int {
	c := 0
	for _, f := range faults {
		if f.Row < 0 {
			continue
		}
		a[f.Row+f.Col*lda] -= f.Delta
		c++
	}
	return c
}

// Stats accumulates fault-tolerance event counts across the tasks of a
// resilient factorization. All fields are updated atomically; a nil *Stats
// is accepted everywhere and counts nothing.
type Stats struct {
	// Injected counts corruptions deliberately introduced (by a test hook
	// or the exabench fault driver).
	Injected atomic.Int64
	// Detected counts verification passes that found at least one fault.
	Detected atomic.Int64
	// Corrected counts individual faults repaired in place.
	Corrected atomic.Int64
	// Unlocated counts faults detected but not locatable under the
	// single-error-per-column model (these fail the factorization).
	Unlocated atomic.Int64
	// TilesReconstructed counts whole tiles rebuilt from a row parity
	// group after a hard loss (see RowErasure.ReconstructTile).
	TilesReconstructed atomic.Int64
}

// note records one verification outcome on s; nil-safe.
func (s *Stats) note(faults []Fault, corrected int) {
	if s == nil || len(faults) == 0 {
		return
	}
	s.Detected.Add(1)
	s.Corrected.Add(int64(corrected))
	s.Unlocated.Add(int64(len(faults) - corrected))
}

// Note records one verification outcome: a non-empty fault list counts as
// one detection, corrected faults and the unlocatable remainder are
// accumulated. Safe on a nil receiver.
func (s *Stats) Note(faults []Fault, corrected int) { s.note(faults, corrected) }

// CorruptionError reports that a verification task found checksum
// violations in one tile. The faults have already been corrected in place
// where locatable; the error is deliberately retryable (not wrapped in
// sched.Permanent) so a scheduler retry re-runs the verification, which
// passes once the correction holds — the "re-execution through the retry
// path" of the recovery design. Unlocatable faults keep failing the
// re-verification and surface as a permanent task failure.
type CorruptionError struct {
	// TileRow and TileCol locate the tile in the tile grid; -1/-1 means a
	// whole-factor sweep.
	TileRow, TileCol int
	// Faults are the detected per-column faults.
	Faults []Fault
	// Corrected is how many of them were repaired in place.
	Corrected int
	// Reconstructed reports that the whole tile was rebuilt from its row
	// parity group instead of per-entry correction — the erasure path taken
	// when the fault pattern looks like wholesale loss rather than a flip.
	Reconstructed bool
}

// CorrectedInPlace reports whether at least one fault was repaired before
// the error was returned — by entry correction or whole-tile
// reconstruction. It implements sched.InPlaceCorrector, so span traces
// classify the retried verification attempt as corruption-corrected rather
// than a generic retry.
func (e *CorruptionError) CorrectedInPlace() bool { return e.Corrected > 0 || e.Reconstructed }

func (e *CorruptionError) Error() string {
	where := fmt.Sprintf("tile (%d,%d)", e.TileRow, e.TileCol)
	if e.TileRow < 0 {
		where = "final sweep"
	}
	if e.Reconstructed {
		return fmt.Sprintf("ft: %s: %d checksum fault(s), tile reconstructed from row parity",
			where, len(e.Faults))
	}
	return fmt.Sprintf("ft: %s: %d checksum fault(s), %d corrected in place",
		where, len(e.Faults), e.Corrected)
}
