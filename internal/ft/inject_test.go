package ft_test

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"exadla/internal/ft"
	"exadla/internal/matgen"
)

// TestInjectorDeterministic: the injector is a seeded stream — two injectors
// with the same seed driven through the same call sequence must corrupt the
// same locations with the same deltas, so every fault experiment replays.
func TestInjectorDeterministic(t *testing.T) {
	const n, trials = 32, 50
	rng := rand.New(rand.NewSource(11))
	orig := matgen.Dense[float64](rng, n, n)

	run := func(seed int64) ([]ft.Fault, []float64) {
		data := append([]float64(nil), orig...)
		inj := ft.NewInjector(seed)
		for i := 0; i < trials; i++ {
			switch i % 3 {
			case 0:
				inj.FlipBit(data, inj.RandomIndex(n, n), n)
			case 1:
				inj.AddNoise(data, inj.RandomLowerIndex(n), n, 5)
			case 2:
				inj.RandomIndex(n, n) // draw without corrupting
			}
		}
		return inj.Injected, data
	}

	fa, da := run(7)
	fb, db := run(7)
	if len(fa) != len(fb) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fault %d differs: %v vs %v", i, fa[i], fb[i])
		}
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed, corrupted data differs at %d", i)
		}
	}
	fc, _ := run(8)
	same := true
	for i := range fa {
		if fa[i] != fc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

// TestFlipBitLocationAndWidth checks the documented fault model: exactly one
// element changes, by exactly one bit in positions 30..51 of its IEEE-754
// representation (or the bit-30 retry), and the recorded Fault names the
// element in (row, col) coordinates of the given leading dimension.
func TestFlipBitLocationAndWidth(t *testing.T) {
	const m, ncols = 13, 7 // ld deliberately != square
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		data := matgen.Dense[float64](rng, m, ncols)
		clean := append([]float64(nil), data...)
		inj := ft.NewInjector(int64(trial))
		idx := inj.RandomIndex(m, ncols)
		f := inj.FlipBit(data, idx, m)

		if f.Row != idx%m || f.Col != idx/m {
			t.Fatalf("trial %d: fault at (%d,%d), want (%d,%d)",
				trial, f.Row, f.Col, idx%m, idx/m)
		}
		for i := range data {
			if i != idx && data[i] != clean[i] {
				t.Fatalf("trial %d: collateral damage at %d", trial, i)
			}
		}
		if data[idx] == clean[idx] {
			t.Fatalf("trial %d: value unchanged", trial)
		}
		if math.IsNaN(data[idx]) || math.IsInf(data[idx], 0) {
			t.Fatalf("trial %d: non-finite corruption %g", trial, data[idx])
		}
		if got, want := f.Delta, data[idx]-clean[idx]; got != want {
			t.Fatalf("trial %d: delta %g, want %g", trial, got, want)
		}
		x := math.Float64bits(data[idx]) ^ math.Float64bits(clean[idx])
		if bits.OnesCount64(x) != 1 {
			t.Fatalf("trial %d: %d bits flipped", trial, bits.OnesCount64(x))
		}
		if b := bits.TrailingZeros64(x); b < 30 || b > 51 {
			t.Fatalf("trial %d: flipped bit %d outside 30..51", trial, b)
		}
	}
}

// TestRandomLowerIndex: every draw must land on or below the diagonal of the
// n×n column-major matrix (the storage region of a Cholesky factor), and over
// many draws the whole triangle should be reachable.
func TestRandomLowerIndex(t *testing.T) {
	const n = 8
	inj := ft.NewInjector(13)
	hit := make(map[int]bool)
	for trial := 0; trial < 4000; trial++ {
		idx := inj.RandomLowerIndex(n)
		i, j := idx%n, idx/n
		if i < j {
			t.Fatalf("trial %d: index %d is above the diagonal (%d,%d)", trial, idx, i, j)
		}
		hit[idx] = true
	}
	if want := n * (n + 1) / 2; len(hit) != want {
		t.Errorf("covered %d/%d lower-triangle entries", len(hit), want)
	}
}

// TestAddNoiseDelta: AddNoise perturbs exactly by the requested magnitude
// and records it.
func TestAddNoiseDelta(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	inj := ft.NewInjector(14)
	f := inj.AddNoise(data, 4, 3, 2.5)
	if f.Row != 1 || f.Col != 1 || f.Delta != 2.5 {
		t.Fatalf("fault %v, want (1,1) delta 2.5", f)
	}
	if data[4] != 5+2.5 {
		t.Fatalf("value %g, want 7.5", data[4])
	}
	if len(inj.Injected) != 1 || inj.Injected[0] != f {
		t.Fatal("fault not recorded")
	}
}

// TestInjectorMidFactorizationRecovery drives the injector through the ABFT
// Cholesky fault hook: the last column of the factor is corrupted the moment
// it is computed (so the corruption is silent — nothing downstream reads it),
// and the carried checksums must locate and repair it.
func TestInjectorMidFactorizationRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n = 40
	a := matgen.DiagDomSPD[float64](rng, n)
	clean, err := ft.Cholesky(n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}

	detected, significant := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		inj := ft.NewInjector(int64(200 + trial))
		var injected ft.Fault
		hook := func(col int, w []float64) {
			if col != n-1 {
				return
			}
			// The working matrix is (n+2)×n column-major; corrupt the last
			// column's diagonal entry, the only factor entry it holds.
			injected = inj.FlipBit(w, (n-1)+(n-1)*(n+2), n+2)
		}
		f, err := ft.Cholesky(n, a, n, hook)
		if err != nil {
			t.Fatal(err)
		}
		if len(inj.Injected) != 1 {
			t.Fatalf("trial %d: hook injected %d faults", trial, len(inj.Injected))
		}
		if math.Abs(injected.Delta) < 1e-6 {
			continue // below the checksum detection threshold by design
		}
		significant++
		faults := f.Verify()
		if len(faults) == 1 && faults[0].Row == n-1 && faults[0].Col == n-1 {
			detected++
		}
		f.Correct(faults)
		for i := range clean.L {
			if math.Abs(f.L[i]-clean.L[i]) > 1e-8 {
				t.Fatalf("trial %d: recovered factor differs at %d", trial, i)
			}
		}
	}
	if significant == 0 {
		t.Fatal("no significant flips across all trials; seeds need adjusting")
	}
	if detected < significant*2/3 {
		t.Errorf("located only %d/%d significant mid-factorization flips", detected, significant)
	}
}
