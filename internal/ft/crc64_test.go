package ft

import (
	"math"
	"testing"
)

func TestCRC64BitSensitivity(t *testing.T) {
	data := make([]float64, 256)
	for i := range data {
		data[i] = float64(i) * 0.7813
	}
	base := CRC64(data)
	if base != CRC64(data) {
		t.Fatal("CRC64 is not deterministic")
	}
	// Any single flipped bit, in any element, changes the checksum.
	for _, elem := range []int{0, 1, 100, 255} {
		for _, bit := range []uint{0, 1, 31, 52, 63} {
			mut := append([]float64(nil), data...)
			mut[elem] = math.Float64frombits(math.Float64bits(mut[elem]) ^ (1 << bit))
			if CRC64(mut) == base {
				t.Errorf("flip of element %d bit %d not detected", elem, bit)
			}
		}
	}
}

func TestCRC64DistinguishesBitPatterns(t *testing.T) {
	// The checksum is over bit patterns, not values: 0.0 and -0.0 compare
	// equal as floats but must checksum differently, and NaNs (never equal
	// to themselves) must checksum stably.
	if CRC64([]float64{0.0}) == CRC64([]float64{math.Copysign(0, -1)}) {
		t.Error("+0 and -0 collide")
	}
	nan := []float64{math.NaN()}
	if CRC64(nan) != CRC64(nan) {
		t.Error("NaN checksum is unstable")
	}
	if CRC64(nil) != CRC64([]float64{}) {
		t.Error("empty slices disagree")
	}
}
