package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultFile wraps the temp file Save encodes into, injecting the failure
// shapes a full or dying disk produces: a short write partway through the
// payload, a failing fsync, or a failing close.
type faultFile struct {
	f *os.File
	// writeBudget is how many bytes Write accepts before failing; -1 means
	// unlimited. A short write lands the accepted prefix on disk, like a
	// real ENOSPC.
	writeBudget int
	failSync    bool
	failClose   bool
	wrote       int
}

var errDiskFull = errors.New("injected: no space left on device")

func (w *faultFile) Write(p []byte) (int, error) {
	if w.writeBudget >= 0 {
		room := w.writeBudget - w.wrote
		if room < len(p) {
			if room < 0 {
				room = 0
			}
			n, _ := w.f.Write(p[:room])
			w.wrote += n
			return n, errDiskFull
		}
	}
	n, err := w.f.Write(p)
	w.wrote += n
	return n, err
}

func (w *faultFile) Sync() error {
	if w.failSync {
		return errDiskFull
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	err := w.f.Close()
	if w.failClose {
		return errDiskFull
	}
	return err
}

// withFaultySaves points Save's temp-file hook at a faultFile factory for
// the duration of the test.
func withFaultySaves(t *testing.T, make_ func(*os.File) *faultFile) {
	t.Helper()
	old := newSaveFile
	newSaveFile = func(f *os.File) syncWriter { return make_(f) }
	t.Cleanup(func() { newSaveFile = old })
}

func testCheckpoint(step int) *Checkpoint {
	n := 16
	data := make([]float64, n*n)
	for i := range data {
		data[i] = float64(i+step) * 1.25
	}
	return &Checkpoint{Op: OpCholesky, Step: step, M: n, N: n, NB: 4, Data: data}
}

// assertDirClean fails if dir holds any visible checkpoint or leftover
// temp file beyond the expected names.
func assertOnly(t *testing.T, dir string, want ...string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range ents {
		seen[e.Name()] = true
		if strings.HasPrefix(e.Name(), ".ckpt-") {
			t.Errorf("leftover temp file %s after failed save", e.Name())
		}
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("expected %s in dir, have %v", w, seen)
		}
	}
	if len(ents) != len(want) {
		t.Errorf("dir holds %d entries, want %d: %v", len(ents), len(want), seen)
	}
}

func TestSaveDiskFullLeavesNoCheckpoint(t *testing.T) {
	// Fail at several points through the file: inside the header, inside
	// the payload, and inside the CRC trailer. None may leave anything a
	// reader could mistake for a checkpoint.
	for _, budget := range []int{0, 8, 100, 16 + 16*16*8} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			withFaultySaves(t, func(f *os.File) *faultFile {
				return &faultFile{f: f, writeBudget: budget}
			})
			if _, err := Save(dir, testCheckpoint(1)); !errors.Is(err, errDiskFull) {
				t.Fatalf("Save = %v, want injected disk-full error", err)
			}
			assertOnly(t, dir) // empty: no ckpt, no temp litter
			if _, _, err := Latest(dir); !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Latest after torn save = %v, want ErrNoCheckpoint", err)
			}
		})
	}
}

func TestSaveSyncAndCloseFailuresAreFatal(t *testing.T) {
	for name, make_ := range map[string]func(*os.File) *faultFile{
		"sync":  func(f *os.File) *faultFile { return &faultFile{f: f, writeBudget: -1, failSync: true} },
		"close": func(f *os.File) *faultFile { return &faultFile{f: f, writeBudget: -1, failClose: true} },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			withFaultySaves(t, make_)
			if _, err := Save(dir, testCheckpoint(2)); !errors.Is(err, errDiskFull) {
				t.Fatalf("Save = %v, want injected error", err)
			}
			// Every byte was written, but durability was never confirmed — the
			// rename must not have happened.
			assertOnly(t, dir)
		})
	}
}

func TestFailedSavePreservesPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, testCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	withFaultySaves(t, func(f *os.File) *faultFile {
		return &faultFile{f: f, writeBudget: 200}
	})
	if _, err := Save(dir, testCheckpoint(2)); !errors.Is(err, errDiskFull) {
		t.Fatalf("Save = %v, want injected disk-full error", err)
	}
	assertOnly(t, dir, "ckpt-000001.ckpt")
	c, path, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest = %v, want the step-1 checkpoint to survive", err)
	}
	if c.Step != 1 || filepath.Base(path) != "ckpt-000001.ckpt" {
		t.Fatalf("Latest = step %d (%s), want step 1", c.Step, path)
	}
	want := testCheckpoint(1)
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("surviving checkpoint data[%d] = %v, want %v", i, c.Data[i], want.Data[i])
		}
	}
}
