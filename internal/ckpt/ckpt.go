// Package ckpt serializes factorization checkpoints: a consistent
// snapshot of the tile matrix plus the DAG frontier (the next panel step)
// and, for LU, the pivot and elimination-stack state accumulated by the
// completed steps. The format is self-contained binary — magic, a
// length-prefixed payload of fixed-width little-endian words, and a CRC32
// trailer — so a checkpoint survives process death and partial writes are
// rejected rather than resumed from.
//
// Bitwise fidelity is part of the contract: float64 values are stored as
// their IEEE-754 bit patterns, so a run resumed from a checkpoint
// continues from *exactly* the aborted run's state and (the kernels being
// deterministic) finishes with a factor bitwise identical to an
// uninterrupted run. That is the property the restart tests assert.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Op identifies the factorization a checkpoint belongs to.
type Op uint8

const (
	OpCholesky Op = 1
	OpLU       Op = 2
	// OpLUNoPiv is the distributed runtime's right-looking LU without
	// pivoting (internal/dist): no pivot or stack state, so a checkpoint is
	// the matrix snapshot and frontier step alone, exactly like Cholesky.
	OpLUNoPiv Op = 3
)

func (op Op) String() string {
	switch op {
	case OpCholesky:
		return "cholesky"
	case OpLU:
		return "lu"
	case OpLUNoPiv:
		return "lu-nopiv"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Checkpoint is one consistent factorization snapshot: every panel step
// before Step has fully executed, none after it has started.
type Checkpoint struct {
	Op   Op
	Step int // next panel step to execute on resume
	M, N int // matrix dimensions
	NB   int // tile size
	// Data is the column-major matrix snapshot (M×N, leading dimension M).
	Data []float64
	// DiagPiv, StackL, StackPiv mirror core.LUFactors for the completed
	// steps (nil entries for work not yet done); empty for Cholesky.
	DiagPiv  [][]int
	StackL   [][]float64
	StackPiv [][]int
}

var (
	magic = [8]byte{'E', 'X', 'A', 'D', 'L', 'A', 'C', '1'}

	// ErrNoCheckpoint is returned by Latest when the directory holds no
	// loadable checkpoint.
	ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")
)

// Caps keep Decode from trusting hostile or torn length fields with huge
// allocations; they bound, not model, real checkpoint sizes.
const (
	maxPayload = 1 << 31 // bytes
	maxDim     = 1 << 20 // M, N
	maxList    = 1 << 24 // outer or inner slice lengths
)

// Encode writes the checkpoint to w.
func Encode(w io.Writer, c *Checkpoint) error {
	if len(c.Data) != c.M*c.N {
		return fmt.Errorf("ckpt: Data has %d elements for a %d×%d matrix", len(c.Data), c.M, c.N)
	}
	var buf bytes.Buffer
	putU8 := func(v uint8) { buf.WriteByte(v) }
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	putU8(uint8(c.Op))
	putU32(uint32(c.Step))
	putU32(uint32(c.M))
	putU32(uint32(c.N))
	putU32(uint32(c.NB))
	for _, v := range c.Data {
		putU64(math.Float64bits(v))
	}
	putIntLists := func(ls [][]int) {
		putU32(uint32(len(ls)))
		for _, l := range ls {
			if l == nil {
				putU32(^uint32(0))
				continue
			}
			putU32(uint32(len(l)))
			for _, v := range l {
				putU64(uint64(int64(v)))
			}
		}
	}
	putU32(uint32(len(c.StackL)))
	for _, l := range c.StackL {
		if l == nil {
			putU32(^uint32(0))
			continue
		}
		putU32(uint32(len(l)))
		for _, v := range l {
			putU64(math.Float64bits(v))
		}
	}
	putIntLists(c.DiagPiv)
	putIntLists(c.StackPiv)

	payload := buf.Bytes()
	var hdr [16]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(tail[:])
	return err
}

// payloadReader parses fixed-width words out of a validated payload,
// latching the first error.
type payloadReader struct {
	b   []byte
	err error
}

func (r *payloadReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (r *payloadReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("truncated payload")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// listLen reads an inner-list length: ^0 means a nil slice, anything
// above maxList (or beyond the remaining payload) is rejected.
func (r *payloadReader) listLen() (n int, isNil bool) {
	v := r.u32()
	if r.err != nil {
		return 0, false
	}
	if v == ^uint32(0) {
		return 0, true
	}
	if v > maxList || int(v)*8 > len(r.b) {
		r.fail("list length %d exceeds payload", v)
		return 0, false
	}
	return int(v), false
}

func (r *payloadReader) intLists() [][]int {
	n, _ := r.listLen()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([][]int, n)
	for i := range out {
		m, isNil := r.listLen()
		if r.err != nil {
			return nil
		}
		if isNil {
			continue
		}
		l := make([]int, m)
		for j := range l {
			l[j] = int(int64(r.u64()))
		}
		out[i] = l
	}
	return out
}

// Decode reads one checkpoint from r, verifying magic, length, and CRC
// before trusting any field.
func Decode(rd io.Reader) (*Checkpoint, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading header: %w", err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, errors.New("ckpt: bad magic")
	}
	plen := binary.LittleEndian.Uint64(hdr[8:])
	if plen > maxPayload {
		return nil, fmt.Errorf("ckpt: payload length %d exceeds cap", plen)
	}
	// Read incrementally rather than pre-allocating plen bytes: a torn or
	// hostile header may declare a payload far larger than the file.
	payload, err := io.ReadAll(io.LimitReader(rd, int64(plen)))
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading payload: %w", err)
	}
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("ckpt: payload truncated (%d of %d bytes)", len(payload), plen)
	}
	var tail [4]byte
	if _, err := io.ReadFull(rd, tail[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (%08x != %08x)", got, want)
	}

	r := &payloadReader{b: payload}
	c := &Checkpoint{}
	c.Op = Op(r.u8())
	c.Step = int(r.u32())
	c.M = int(r.u32())
	c.N = int(r.u32())
	c.NB = int(r.u32())
	if r.err == nil {
		switch {
		case c.Op != OpCholesky && c.Op != OpLU && c.Op != OpLUNoPiv:
			r.fail("unknown op %d", uint8(c.Op))
		case c.M <= 0 || c.N <= 0 || c.M > maxDim || c.N > maxDim:
			r.fail("bad dimensions %d×%d", c.M, c.N)
		case c.NB <= 0 || c.NB > maxDim:
			r.fail("bad tile size %d", c.NB)
		case c.Step < 0 || c.Step > maxDim:
			r.fail("bad step %d", c.Step)
		case c.M*c.N*8 > len(r.b):
			r.fail("matrix data exceeds payload")
		}
	}
	if r.err == nil {
		c.Data = make([]float64, c.M*c.N)
		for i := range c.Data {
			c.Data[i] = math.Float64frombits(r.u64())
		}
	}
	if n, _ := r.listLen(); r.err == nil && n > 0 {
		c.StackL = make([][]float64, n)
		for i := range c.StackL {
			m, isNil := r.listLen()
			if r.err != nil {
				break
			}
			if isNil {
				continue
			}
			l := make([]float64, m)
			for j := range l {
				l[j] = math.Float64frombits(r.u64())
			}
			c.StackL[i] = l
		}
	}
	c.DiagPiv = r.intLists()
	c.StackPiv = r.intLists()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes in payload", len(r.b))
	}
	return c, nil
}

// fileName is the canonical checkpoint file name for a frontier step.
func fileName(step int) string { return fmt.Sprintf("ckpt-%06d.ckpt", step) }

// syncWriter is what Save needs from its temp file. The indirection below
// lets tests wrap the file in a failure injector (short writes, a failing
// fsync or close — the shapes a full disk takes) and assert that no torn
// checkpoint ever becomes visible to Latest.
type syncWriter interface {
	io.Writer
	Sync() error
	Close() error
}

// newSaveFile wraps the freshly created temp file; tests swap it.
var newSaveFile = func(f *os.File) syncWriter { return f }

// Save atomically writes the checkpoint into dir as ckpt-<step>.ckpt:
// write to a temp file, fsync it, and only if every byte landed durably
// rename it into place (then fsync the directory so the rename itself
// survives a crash). Creates dir if needed and returns the final path. On
// any failure the temp file is removed and the error returned — a reader
// never observes a torn or truncated checkpoint, only the previous one.
func Save(dir string, c *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	w := newSaveFile(tmp)
	if err := Encode(w, c); err != nil {
		w.Close()
		return "", err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return "", err
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fileName(c.Step))
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	// Make the rename durable too; best-effort — the data itself is synced.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return path, nil
}

// Load reads and validates one checkpoint file.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Latest loads the newest valid checkpoint in dir (highest step whose
// file decodes cleanly — corrupt or torn files are skipped), returning
// the checkpoint and its path, or ErrNoCheckpoint.
func Latest(dir string) (*Checkpoint, string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ckpt") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, n := range names {
		p := filepath.Join(dir, n)
		c, err := Load(p)
		if err == nil {
			return c, p, nil
		}
	}
	return nil, "", ErrNoCheckpoint
}
