package ckpt

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func sampleCheckpoint(rng *rand.Rand, op Op, m, n, nb, step int) *Checkpoint {
	c := &Checkpoint{Op: op, Step: step, M: m, N: n, NB: nb, Data: make([]float64, m*n)}
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	c.Data[0] = math.Copysign(0, -1)
	if len(c.Data) > 2 {
		c.Data[1] = math.SmallestNonzeroFloat64
		c.Data[2] = math.Inf(1)
	}
	if op == OpLU {
		mt := (m + nb - 1) / nb
		c.DiagPiv = make([][]int, step)
		c.StackL = make([][]float64, mt*mt)
		c.StackPiv = make([][]int, mt*mt)
		for k := 0; k < step; k++ {
			c.DiagPiv[k] = rng.Perm(nb)
			for i := k + 1; i < mt; i++ {
				l := make([]float64, (2*nb)*nb)
				for j := range l {
					l[j] = rng.NormFloat64()
				}
				c.StackL[i+k*mt] = l
				c.StackPiv[i+k*mt] = rng.Perm(nb)
			}
		}
	}
	return c
}

func checkEqual(t *testing.T, got, want *Checkpoint) {
	t.Helper()
	if got.Op != want.Op || got.Step != want.Step ||
		got.M != want.M || got.N != want.N || got.NB != want.NB {
		t.Fatalf("header mismatch: got %+v want %+v",
			[5]int{int(got.Op), got.Step, got.M, got.N, got.NB},
			[5]int{int(want.Op), want.Step, want.M, want.N, want.NB})
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("data length %d != %d", len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("data[%d]: %x != %x", i,
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
	intsEq := func(name string, g, w [][]int) {
		if len(g) != len(w) {
			t.Fatalf("%s length %d != %d", name, len(g), len(w))
		}
		for i := range w {
			if (g[i] == nil) != (w[i] == nil) || len(g[i]) != len(w[i]) {
				t.Fatalf("%s[%d] shape mismatch", name, i)
			}
			for j := range w[i] {
				if g[i][j] != w[i][j] {
					t.Fatalf("%s[%d][%d]: %d != %d", name, i, j, g[i][j], w[i][j])
				}
			}
		}
	}
	intsEq("DiagPiv", got.DiagPiv, want.DiagPiv)
	intsEq("StackPiv", got.StackPiv, want.StackPiv)
	if len(got.StackL) != len(want.StackL) {
		t.Fatalf("StackL length %d != %d", len(got.StackL), len(want.StackL))
	}
	for i := range want.StackL {
		if (got.StackL[i] == nil) != (want.StackL[i] == nil) || len(got.StackL[i]) != len(want.StackL[i]) {
			t.Fatalf("StackL[%d] shape mismatch", i)
		}
		for j := range want.StackL[i] {
			if math.Float64bits(got.StackL[i][j]) != math.Float64bits(want.StackL[i][j]) {
				t.Fatalf("StackL[%d][%d] bits differ", i, j)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []*Checkpoint{
		sampleCheckpoint(rng, OpCholesky, 12, 12, 4, 2),
		sampleCheckpoint(rng, OpLU, 10, 7, 3, 2),
		sampleCheckpoint(rng, OpCholesky, 1, 1, 1, 0),
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, got, c)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := sampleCheckpoint(rng, OpLU, 8, 8, 4, 1)
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncation at every prefix length must error, not panic.
	for _, cut := range []int{0, 7, 15, 16, 20, len(good) - 5, len(good) - 1} {
		if _, err := Decode(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncated to %d bytes decoded successfully", cut)
		}
	}
	// A flipped payload bit must fail the CRC.
	bad := append([]byte(nil), good...)
	bad[40] ^= 0x10
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("bit-flipped checkpoint decoded successfully")
	}
	// Bad magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 'X'
	if _, err := Decode(bytes.NewReader(bad2)); err == nil {
		t.Error("bad magic accepted")
	}
	// A huge declared payload length must be rejected before allocation.
	var huge [28]byte
	copy(huge[:8], magic[:])
	binary.LittleEndian.PutUint64(huge[8:], 1<<40)
	if _, err := Decode(bytes.NewReader(huge[:])); err == nil {
		t.Error("oversized payload length accepted")
	}
}

func TestSaveLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	c1 := sampleCheckpoint(rng, OpCholesky, 8, 8, 4, 1)
	c2 := sampleCheckpoint(rng, OpCholesky, 8, 8, 4, 2)
	if _, err := Save(dir, c1); err != nil {
		t.Fatal(err)
	}
	p2, err := Save(dir, c2)
	if err != nil {
		t.Fatal(err)
	}

	got, path, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != p2 {
		t.Errorf("Latest path %q, want %q", path, p2)
	}
	checkEqual(t, got, c2)

	// Corrupt the newest file: Latest must fall back to step 1.
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err = Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, got, c1)

	// And with nothing valid left, ErrNoCheckpoint.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "ckpt-000009.ckpt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(empty); err != ErrNoCheckpoint {
		t.Errorf("Latest over junk = %v, want ErrNoCheckpoint", err)
	}
}

// FuzzDecode: arbitrary bytes must never panic Decode, and anything that
// decodes must survive a re-encode/re-decode round trip bitwise.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range []*Checkpoint{
		sampleCheckpoint(rng, OpCholesky, 6, 6, 2, 1),
		sampleCheckpoint(rng, OpLU, 5, 4, 2, 1),
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("EXADLAC1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			t.Fatalf("re-encode of decoded checkpoint failed: %v", err)
		}
		c2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		checkEqual(t, c2, c)
	})
}

// FuzzRoundTrip: structured checkpoints built from fuzzed parameters
// round-trip with a bitwise-equal matrix and an identical frontier step.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(5), uint8(2), uint16(3), false, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(8), uint8(8), uint8(4), uint16(1), true, []byte{0xff, 0, 0x80, 7})
	f.Fuzz(func(t *testing.T, m8, n8, nb8 uint8, step uint16, lu bool, raw []byte) {
		m, n, nb := int(m8%32)+1, int(n8%32)+1, int(nb8%8)+1
		c := &Checkpoint{Op: OpCholesky, Step: int(step), M: m, N: n, NB: nb,
			Data: make([]float64, m*n)}
		if lu {
			c.Op = OpLU
		}
		// Fill the matrix from the raw bytes as bit patterns — NaNs,
		// infinities, subnormals and all.
		for i := range c.Data {
			var w [8]byte
			for j := 0; j < 8; j++ {
				if len(raw) > 0 {
					w[j] = raw[(i*8+j)%len(raw)]
				}
			}
			c.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(w[:]))
		}
		if lu && len(raw) > 0 {
			c.DiagPiv = [][]int{{int(raw[0])}, nil}
			c.StackL = [][]float64{nil, {c.Data[0]}}
			c.StackPiv = [][]int{{0, 1}, nil}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, got, c)
	})
}
