// Package batch implements batched dense kernels: thousands of small,
// independent factorizations or multiplications executed through one
// scheduler submission with chunking, versus the one-call-at-a-time loop
// they replace. For tiny matrices the per-problem overhead (dispatch,
// scheduling, cache refill) dominates arithmetic, so batching with
// chunk sizes > 1 is where the throughput comes from — the keynote's
// batched-BLAS argument.
package batch

import (
	"fmt"

	"exadla/internal/blas"
	"exadla/internal/lapack"
	"exadla/internal/sched"
)

// chunkHandle names one chunk of a batch for dependence tracking (chunks of
// one batch are independent; the handle exists so recorded graphs show the
// fan-out).
type chunkHandle struct {
	batch *int
	chunk int
}

// Options configures a batched call.
type Options struct {
	// ChunkSize is the number of problems fused into one task. Zero picks
	// a default that amortizes task overhead for tiny problems.
	ChunkSize int
}

func (o Options) chunk(count, n int) int {
	return o.chunkFor(count, n*n*n)
}

// chunkFor picks the chunk size from the actual per-problem work estimate
// (an element-operation count such as n³ for a square factorization or
// m·n·k for a GEMM). Using the true volume matters for rectangular shapes:
// a 256×8×8 GEMM is 16k element-ops, not the 16M a max(m,n,k)³ estimate
// would claim, and chunks ~1000× too small drown in task overhead.
func (o Options) chunkFor(count, work int) int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	// Aim for tasks of roughly 64³ flops worth of work, but keep at least
	// ~64 chunks when the batch is large so the DAG still exposes
	// parallelism to a multi-worker pool.
	if work < 1 {
		work = 1
	}
	c := (64 * 64 * 64) / work
	if maxC := (count + 63) / 64; c > maxC {
		c = maxC
	}
	if c < 1 {
		c = 1
	}
	if c > count {
		c = count
	}
	return c
}

// runProblem executes one problem's kernel with panic capture, so a
// panicking kernel (an undersized slice, a bug tripped by one pathological
// input) fails only its own batch entry instead of reaching the scheduler's
// panic path and poisoning the whole chunk — in a batch of 10k, one broken
// problem must not take down the other 9 999.
func runProblem(i int, errs []error, f func() error) {
	defer func() {
		if p := recover(); p != nil {
			errs[i] = fmt.Errorf("batch: problem %d panicked: %v", i, p)
		}
	}()
	errs[i] = f()
}

// Potrf factors each n×n SPD matrix in mats (lower triangle, in place,
// leading dimension n) through the scheduler. The returned slice has one
// entry per matrix; nil means success.
func Potrf(s sched.Scheduler, n int, mats [][]float64, opts Options) []error {
	errs := make([]error, len(mats))
	id := new(int)
	cs := opts.chunk(len(mats), n)
	for lo := 0; lo < len(mats); lo += cs {
		lo := lo
		hi := min(lo+cs, len(mats))
		s.Submit(sched.Task{
			Name:   "potrf-batch",
			Writes: []sched.Handle{chunkHandle{id, lo}},
			FnErr: func() error {
				for i := lo; i < hi; i++ {
					runProblem(i, errs, func() error {
						return lapack.Potf2(blas.Lower, n, mats[i], n)
					})
				}
				return nil
			},
		})
	}
	s.Wait()
	return errs
}

// PotrfSeq is the loop baseline: one matrix at a time on the calling
// goroutine.
func PotrfSeq(n int, mats [][]float64) []error {
	errs := make([]error, len(mats))
	for i := range mats {
		errs[i] = lapack.Potf2(blas.Lower, n, mats[i], n)
	}
	return errs
}

// Getrf factors each n×n matrix in mats with partial pivoting, storing
// pivots in pivs (allocated by the call).
func Getrf(s sched.Scheduler, n int, mats [][]float64, opts Options) (pivs [][]int, errs []error) {
	pivs = make([][]int, len(mats))
	errs = make([]error, len(mats))
	id := new(int)
	cs := opts.chunk(len(mats), n)
	for lo := 0; lo < len(mats); lo += cs {
		lo := lo
		hi := min(lo+cs, len(mats))
		s.Submit(sched.Task{
			Name:   "getrf-batch",
			Writes: []sched.Handle{chunkHandle{id, lo}},
			FnErr: func() error {
				for i := lo; i < hi; i++ {
					runProblem(i, errs, func() error {
						piv := make([]int, n)
						err := lapack.Getf2(n, n, mats[i], n, piv)
						pivs[i] = piv
						return err
					})
				}
				return nil
			},
		})
	}
	s.Wait()
	return pivs, errs
}

// GetrfSeq is the loop baseline of Getrf.
func GetrfSeq(n int, mats [][]float64) (pivs [][]int, errs []error) {
	pivs = make([][]int, len(mats))
	errs = make([]error, len(mats))
	for i := range mats {
		piv := make([]int, n)
		errs[i] = lapack.Getf2(n, n, mats[i], n, piv)
		pivs[i] = piv
	}
	return pivs, errs
}

// Gemm computes cs[i] ← as[i]·bs[i] for batches of m×k and k×n matrices.
func Gemm(s sched.Scheduler, m, n, k int, as, bs, cs [][]float64, opts Options) {
	if len(as) != len(bs) || len(as) != len(cs) {
		panic("batch: Gemm batch length mismatch")
	}
	id := new(int)
	chunk := opts.chunkFor(len(as), m*n*k)
	for lo := 0; lo < len(as); lo += chunk {
		lo := lo
		hi := min(lo+chunk, len(as))
		s.Submit(sched.Task{
			Name:   "gemm-batch",
			Writes: []sched.Handle{chunkHandle{id, lo}},
			Fn: func() {
				for i := lo; i < hi; i++ {
					blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, k,
						1, as[i], m, bs[i], k, 0, cs[i], m)
				}
			},
		})
	}
	s.Wait()
}

// GemmSeq is the loop baseline of Gemm.
func GemmSeq(m, n, k int, as, bs, cs [][]float64) {
	for i := range as {
		blas.Gemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, as[i], m, bs[i], k, 0, cs[i], m)
	}
}
