package batch_test

import (
	"math"
	"math/rand"
	"testing"

	"exadla/internal/batch"
	"exadla/internal/matgen"
	"exadla/internal/sched"
)

func spdBatch(rng *rand.Rand, count, n int) [][]float64 {
	mats := make([][]float64, count)
	for i := range mats {
		mats[i] = matgen.DiagDomSPD[float64](rng, n)
	}
	return mats
}

func cloneBatch(mats [][]float64) [][]float64 {
	out := make([][]float64, len(mats))
	for i, m := range mats {
		out[i] = append([]float64(nil), m...)
	}
	return out
}

func TestBatchedPotrfMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	count, n := 37, 8
	mats := spdBatch(rng, count, n)
	seq := cloneBatch(mats)
	par := cloneBatch(mats)

	if errs := batch.PotrfSeq(n, seq); anyErr(errs) {
		t.Fatal("seq errors")
	}
	r := sched.New(4)
	defer r.Shutdown()
	for _, cs := range []int{1, 5, 100} {
		got := cloneBatch(par)
		if errs := batch.Potrf(r, n, got, batch.Options{ChunkSize: cs}); anyErr(errs) {
			t.Fatalf("chunk %d: errors", cs)
		}
		for i := range got {
			for k := range got[i] {
				if got[i][k] != seq[i][k] {
					t.Fatalf("chunk %d: matrix %d differs at %d", cs, i, k)
				}
			}
		}
	}
}

func TestBatchedPotrfReportsPerMatrixErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 6
	mats := spdBatch(rng, 5, n)
	// Break matrix 3.
	mats[3][2+2*n] = -1e6
	r := sched.New(2)
	defer r.Shutdown()
	errs := batch.Potrf(r, n, mats, batch.Options{})
	for i, err := range errs {
		if i == 3 && err == nil {
			t.Error("matrix 3 should have failed")
		}
		if i != 3 && err != nil {
			t.Errorf("matrix %d unexpectedly failed: %v", i, err)
		}
	}
}

func TestBatchedGetrfMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	count, n := 21, 10
	mats := make([][]float64, count)
	for i := range mats {
		mats[i] = matgen.Dense[float64](rng, n, n)
	}
	seq := cloneBatch(mats)
	pivSeq, errsSeq := batch.GetrfSeq(n, seq)
	if anyErr(errsSeq) {
		t.Fatal("seq errors")
	}
	r := sched.New(4)
	defer r.Shutdown()
	got := cloneBatch(mats)
	pivPar, errsPar := batch.Getrf(r, n, got, batch.Options{ChunkSize: 4})
	if anyErr(errsPar) {
		t.Fatal("par errors")
	}
	for i := range got {
		for k := range got[i] {
			if got[i][k] != seq[i][k] {
				t.Fatalf("matrix %d differs", i)
			}
		}
		for k := range pivPar[i] {
			if pivPar[i][k] != pivSeq[i][k] {
				t.Fatalf("pivots of matrix %d differ", i)
			}
		}
	}
}

func TestBatchedGemmMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	count, m, n, k := 15, 7, 6, 5
	as := make([][]float64, count)
	bs := make([][]float64, count)
	cs := make([][]float64, count)
	cs2 := make([][]float64, count)
	for i := 0; i < count; i++ {
		as[i] = matgen.Dense[float64](rng, m, k)
		bs[i] = matgen.Dense[float64](rng, k, n)
		cs[i] = make([]float64, m*n)
		cs2[i] = make([]float64, m*n)
	}
	batch.GemmSeq(m, n, k, as, bs, cs)
	r := sched.New(3)
	defer r.Shutdown()
	batch.Gemm(r, m, n, k, as, bs, cs2, batch.Options{ChunkSize: 2})
	for i := range cs {
		for j := range cs[i] {
			if math.Abs(cs[i][j]-cs2[i][j]) > 1e-12 {
				t.Fatalf("product %d differs", i)
			}
		}
	}
}

func TestDefaultChunkSize(t *testing.T) {
	// Tiny problems must be fused into multi-problem chunks by default:
	// the recorded graph has far fewer tasks than problems.
	rng := rand.New(rand.NewSource(5))
	count, n := 1000, 4
	mats := spdBatch(rng, count, n)
	rec := sched.NewRecorder()
	batch.Potrf(rec, n, mats, batch.Options{})
	tasks := rec.Graph().Tasks()
	if tasks >= count {
		t.Errorf("default chunking produced %d tasks for %d problems", tasks, count)
	}
	if tasks < 1 {
		t.Error("no tasks at all")
	}
}

func TestGemmRectangularChunking(t *testing.T) {
	// A rectangular batch must be chunked by its true m·n·k volume. A
	// 256×8×8 problem is 16k element-ops; the old max(m,n,k)³ estimate saw
	// 16M, picked 1-problem chunks, and produced one task per problem.
	count, m, n, k := 256, 256, 8, 8
	rng := rand.New(rand.NewSource(6))
	as := make([][]float64, count)
	bs := make([][]float64, count)
	cs := make([][]float64, count)
	cs2 := make([][]float64, count)
	for i := 0; i < count; i++ {
		as[i] = matgen.Dense[float64](rng, m, k)
		bs[i] = matgen.Dense[float64](rng, k, n)
		cs[i] = make([]float64, m*n)
		cs2[i] = make([]float64, m*n)
	}
	rec := sched.NewRecorder()
	batch.Gemm(rec, m, n, k, as, bs, cs, batch.Options{})
	tasks := rec.Graph().Tasks()
	if tasks > count/2 {
		t.Errorf("rectangular %dx%dx%d batch of %d got %d tasks; chunking is ignoring the true volume",
			m, n, k, count, tasks)
	}
	if tasks < 1 {
		t.Fatal("no tasks at all")
	}
	// And the fused chunks must still compute the right products.
	batch.GemmSeq(m, n, k, as, bs, cs2)
	for i := range cs {
		for j := range cs[i] {
			if cs[i][j] != cs2[i][j] {
				t.Fatalf("product %d differs at %d", i, j)
			}
		}
	}
}

func TestBatchedPotrfPanicIsolation(t *testing.T) {
	// A panicking kernel (here: an undersized backing slice) must fail only
	// its own entry, not the chunk around it or the whole batch.
	rng := rand.New(rand.NewSource(7))
	count, n := 20, 8
	mats := spdBatch(rng, count, n)
	mats[5] = mats[5][:3] // out-of-range panic inside Potf2
	r := sched.New(2)
	defer r.Shutdown()
	errs := batch.Potrf(r, n, mats, batch.Options{ChunkSize: 10})
	for i, err := range errs {
		if i == 5 {
			if err == nil {
				t.Error("problem 5 should have failed")
			}
			continue
		}
		if err != nil {
			t.Errorf("problem %d unexpectedly failed: %v", i, err)
		}
	}
	// Problems after the panicking one in the same chunk still ran.
	ref := spdBatch(rand.New(rand.NewSource(7)), count, n)
	if errsRef := batch.PotrfSeq(n, ref); anyErr(errsRef) {
		t.Fatal("reference errors")
	}
	for k := range mats[9] {
		if mats[9][k] != ref[9][k] {
			t.Fatal("problem 9 (same chunk as the panic) was not computed")
		}
	}
	// The runtime survived and is reusable.
	good := spdBatch(rng, 4, n)
	if errs := batch.Potrf(r, n, good, batch.Options{}); anyErr(errs) {
		t.Error("runtime unusable after a batched panic")
	}
}

func TestBatchedGetrfPanicIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	count, n := 12, 6
	mats := make([][]float64, count)
	for i := range mats {
		mats[i] = matgen.Dense[float64](rng, n, n)
	}
	mats[2] = mats[2][:4]
	r := sched.New(2)
	defer r.Shutdown()
	pivs, errs := batch.Getrf(r, n, mats, batch.Options{ChunkSize: 6})
	for i, err := range errs {
		if i == 2 {
			if err == nil {
				t.Error("problem 2 should have failed")
			}
			continue
		}
		if err != nil {
			t.Errorf("problem %d unexpectedly failed: %v", i, err)
		}
		if len(pivs[i]) != n {
			t.Errorf("problem %d missing pivots", i)
		}
	}
}

func anyErr(errs []error) bool {
	for _, e := range errs {
		if e != nil {
			return true
		}
	}
	return false
}
