package blas

// level3Block is the diagonal-leaf size used to route Syrk and Trmm through
// the packed GEMM kernel: diagonal blocks of this order run the specialized
// triangular/symmetric small kernels, everything off-diagonal is a plain
// rectangular GEMM update that inherits the packed path's throughput. Kept
// small so that tile-sized operands (nb = 64–256) spend most of their flops
// in the packed kernel rather than the axpy leaves.
const level3Block = 32

// Syrk computes the symmetric rank-k update
//
//	C ← α·A·Aᵀ + β·C   (trans == NoTrans, A is n×k)
//	C ← α·Aᵀ·A + β·C   (trans == Trans,   A is k×n)
//
// where only the uplo triangle of the n×n matrix C is referenced and
// updated. Off-diagonal blocks are routed through the packed GEMM kernel.
func Syrk[T Float](uplo Uplo, trans Transpose, n, k int, alpha T, a []T, lda int, beta T, c []T, ldc int) {
	checkUplo(uplo)
	checkTrans(trans)
	if trans == NoTrans {
		checkMatrix("A", n, k, a, lda)
	} else {
		checkMatrix("A", k, n, a, lda)
	}
	checkMatrix("C", n, n, c, ldc)
	if n == 0 {
		return
	}
	start := syrkMetrics.Start()

	// Scale the referenced triangle of C.
	if beta != 1 {
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == Lower {
				lo, hi = j, n
			}
			col := c[j*ldc:]
			if beta == 0 {
				for i := lo; i < hi; i++ {
					col[i] = 0
				}
			} else {
				for i := lo; i < hi; i++ {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		// No product work performed; charge zero so GF/s stays truthful.
		syrkMetrics.Stop(start, 0)
		return
	}

	syrkRec(uplo, trans, n, k, alpha, a, lda, c, ldc)
	syrkMetrics.Stop(start, int64(n)*int64(n+1)*int64(k))
}

// syrkRec recursively halves the updated triangle: the two diagonal halves
// recurse (down to level3Block-sized leaves handled by syrkKernel) and the
// off-diagonal coupling block — the bulk of the flops — is one rectangular
// gemmAccum update at packed-kernel speed.
func syrkRec[T Float](uplo Uplo, trans Transpose, n, k int, alpha T, a []T, lda int, c []T, ldc int) {
	if n <= level3Block {
		syrkKernel(uplo, trans, n, k, alpha, a, lda, c, ldc)
		return
	}
	n1 := n / 2
	n2 := n - n1
	// Rows (NoTrans) or columns (Trans) n1: of A feed the second half.
	a1, a2 := a, a[n1:]
	if trans == Trans {
		a2 = a[n1*lda:]
	}
	syrkRec(uplo, trans, n1, k, alpha, a1, lda, c, ldc)
	if uplo == Lower {
		// C21 += α·A2·A1ᵀ (n2×n1).
		if trans == NoTrans {
			gemmAccum(NoTrans, Trans, n2, n1, k, alpha, a2, lda, a1, lda, c[n1:], ldc)
		} else {
			gemmAccum(Trans, NoTrans, n2, n1, k, alpha, a2, lda, a1, lda, c[n1:], ldc)
		}
	} else {
		// C12 += α·A1·A2ᵀ (n1×n2).
		if trans == NoTrans {
			gemmAccum(NoTrans, Trans, n1, n2, k, alpha, a1, lda, a2, lda, c[n1*ldc:], ldc)
		} else {
			gemmAccum(Trans, NoTrans, n1, n2, k, alpha, a1, lda, a2, lda, c[n1*ldc:], ldc)
		}
	}
	syrkRec(uplo, trans, n2, k, alpha, a2, lda, c[n1+n1*ldc:], ldc)
}

// syrkKernel accumulates the uplo triangle of C += α·op(A)·op(A)ᵀ for a
// diagonal block whose β-scaling has already been applied. Zero operand
// values are not skipped, so non-finite inputs propagate as in RefSyrk.
func syrkKernel[T Float](uplo Uplo, trans Transpose, n, k int, alpha T, a []T, lda int, c []T, ldc int) {
	if trans == NoTrans {
		// C[i,j] += α Σ_l A[i,l]·A[j,l]: accumulate column-wise axpy.
		for l := 0; l < k; l++ {
			acol := a[l*lda : l*lda+n]
			for j := 0; j < n; j++ {
				v := alpha * acol[j]
				ccol := c[j*ldc:]
				if uplo == Lower {
					for i := j; i < n; i++ {
						ccol[i] += v * acol[i]
					}
				} else {
					for i := 0; i <= j; i++ {
						ccol[i] += v * acol[i]
					}
				}
			}
		}
		return
	}
	// trans == Trans: C[i,j] += α·A[:,i]ᵀA[:,j]; columns contiguous.
	for j := 0; j < n; j++ {
		ajcol := a[j*lda : j*lda+k]
		ccol := c[j*ldc:]
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			aicol := a[i*lda : i*lda+k]
			var s T
			for l, v := range ajcol {
				s += aicol[l] * v
			}
			ccol[i] += alpha * s
		}
	}
}

// Symm computes C ← α·A·B + β·C (side == Left) or C ← α·B·A + β·C
// (side == Right), where A is symmetric with only the uplo triangle stored
// and C is m×n.
func Symm[T Float](side Side, uplo Uplo, m, n int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	checkSide(side)
	checkUplo(uplo)
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("A", na, na, a, lda)
	checkMatrix("B", m, n, b, ldb)
	checkMatrix("C", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	// Symm appears only on cold paths here; expand the symmetric operand
	// into a pooled scratch buffer and delegate to Gemm (whose packed path
	// and metrics it then shares) rather than duplicating its blocking.
	fullBuf := getScratch[T](na * na)
	full := fullBuf.buf
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			var v T
			if (uplo == Lower && i >= j) || (uplo == Upper && i <= j) {
				v = a[i+j*lda]
			} else {
				v = a[j+i*lda]
			}
			full[i+j*na] = v
		}
	}
	if side == Left {
		Gemm(NoTrans, NoTrans, m, n, m, alpha, full, na, b, ldb, beta, c, ldc)
	} else {
		Gemm(NoTrans, NoTrans, m, n, n, alpha, b, ldb, full, na, beta, c, ldc)
	}
	fullBuf.release()
}

// Trmm computes B ← α·op(A)·B (side == Left) or B ← α·B·op(A)
// (side == Right) in place, where A is triangular and B is m×n. Large
// operands are partitioned so that only diagonal blocks run the triangular
// small kernel; the off-diagonal bulk goes through the packed GEMM path.
func Trmm[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, alpha T, a []T, lda int, b []T, ldb int) {
	checkSide(side)
	checkUplo(uplo)
	checkTrans(transA)
	checkDiag(diag)
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("A", na, na, a, lda)
	checkMatrix("B", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	start := trmmMetrics.Start()
	if alpha == 0 {
		scaleMatrix(m, n, 0, b, ldb)
		trmmMetrics.Stop(start, 0)
		return
	}
	if side == Left {
		trmmLeft(uplo, transA, diag, m, n, a, lda, b, ldb)
	} else {
		trmmRight(uplo, transA, diag, m, n, a, lda, b, ldb)
	}
	// α is applied in one sweep at the end: the blocked updates must all
	// read unscaled row/column blocks, whatever the processing order.
	if alpha != 1 {
		for j := 0; j < n; j++ {
			Scal(m, alpha, b[j*ldb:j*ldb+m], 1)
		}
	}
	trmmMetrics.Stop(start, int64(m)*int64(n)*int64(na))
}

// trmmLeft computes B ← op(A)·B in place (α = 1).
func trmmLeft[T Float](uplo Uplo, transA Transpose, diag Diag, m, n int, a []T, lda int, b []T, ldb int) {
	if m <= level3Block {
		trmmSmallLeft(uplo, transA, diag, m, n, a, lda, b, ldb)
		return
	}
	lowerEff := (uplo == Lower) == (transA == NoTrans)
	if lowerEff {
		// B_i ← op(A)_ii·B_i + Σ_{j<i} op(A)_ij·B_j, descending i so the
		// sum reads unprocessed (old) row blocks.
		last := (m - 1) / level3Block * level3Block
		for i0 := last; i0 >= 0; i0 -= level3Block {
			bi := min(level3Block, m-i0)
			trmmSmallLeft(uplo, transA, diag, bi, n, a[i0+i0*lda:], lda, b[i0:], ldb)
			for j0 := 0; j0 < i0; j0 += level3Block {
				bj := min(level3Block, i0-j0)
				if transA == NoTrans {
					gemmAccum(NoTrans, NoTrans, bi, n, bj, 1, a[i0+j0*lda:], lda, b[j0:], ldb, b[i0:], ldb)
				} else {
					gemmAccum(Trans, NoTrans, bi, n, bj, 1, a[j0+i0*lda:], lda, b[j0:], ldb, b[i0:], ldb)
				}
			}
		}
		return
	}
	// Effective upper triangle: ascending i, contributions from j > i.
	for i0 := 0; i0 < m; i0 += level3Block {
		bi := min(level3Block, m-i0)
		trmmSmallLeft(uplo, transA, diag, bi, n, a[i0+i0*lda:], lda, b[i0:], ldb)
		for j0 := i0 + bi; j0 < m; j0 += level3Block {
			bj := min(level3Block, m-j0)
			if transA == NoTrans {
				gemmAccum(NoTrans, NoTrans, bi, n, bj, 1, a[i0+j0*lda:], lda, b[j0:], ldb, b[i0:], ldb)
			} else {
				gemmAccum(Trans, NoTrans, bi, n, bj, 1, a[j0+i0*lda:], lda, b[j0:], ldb, b[i0:], ldb)
			}
		}
	}
}

// trmmRight computes B ← B·op(A) in place (α = 1).
func trmmRight[T Float](uplo Uplo, transA Transpose, diag Diag, m, n int, a []T, lda int, b []T, ldb int) {
	if n <= level3Block {
		trmmSmallRight(uplo, transA, diag, m, n, a, lda, b, ldb)
		return
	}
	lowerEff := (uplo == Lower) == (transA == NoTrans)
	if lowerEff {
		// B_j ← B_j·op(A)_jj + Σ_{i>j} B_i·op(A)_ij, ascending j.
		for j0 := 0; j0 < n; j0 += level3Block {
			bj := min(level3Block, n-j0)
			trmmSmallRight(uplo, transA, diag, m, bj, a[j0+j0*lda:], lda, b[j0*ldb:], ldb)
			for i0 := j0 + bj; i0 < n; i0 += level3Block {
				bi := min(level3Block, n-i0)
				if transA == NoTrans {
					gemmAccum(NoTrans, NoTrans, m, bj, bi, 1, b[i0*ldb:], ldb, a[i0+j0*lda:], lda, b[j0*ldb:], ldb)
				} else {
					gemmAccum(NoTrans, Trans, m, bj, bi, 1, b[i0*ldb:], ldb, a[j0+i0*lda:], lda, b[j0*ldb:], ldb)
				}
			}
		}
		return
	}
	// Effective upper triangle: descending j, contributions from i < j.
	last := (n - 1) / level3Block * level3Block
	for j0 := last; j0 >= 0; j0 -= level3Block {
		bj := min(level3Block, n-j0)
		trmmSmallRight(uplo, transA, diag, m, bj, a[j0+j0*lda:], lda, b[j0*ldb:], ldb)
		for i0 := 0; i0 < j0; i0 += level3Block {
			bi := min(level3Block, j0-i0)
			if transA == NoTrans {
				gemmAccum(NoTrans, NoTrans, m, bj, bi, 1, b[i0*ldb:], ldb, a[i0+j0*lda:], lda, b[j0*ldb:], ldb)
			} else {
				gemmAccum(NoTrans, Trans, m, bj, bi, 1, b[i0*ldb:], ldb, a[j0+i0*lda:], lda, b[j0*ldb:], ldb)
			}
		}
	}
}

// trmmSmallLeft applies the triangular product column-by-column of B via
// Trmv (α = 1).
func trmmSmallLeft[T Float](uplo Uplo, transA Transpose, diag Diag, m, n int, a []T, lda int, b []T, ldb int) {
	for j := 0; j < n; j++ {
		Trmv(uplo, transA, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
	}
}

// trmmSmallRight computes B ← B·op(A) as Bᵀ ← op(A)ᵀ·Bᵀ, operating on rows
// of B through a pooled row buffer (α = 1).
func trmmSmallRight[T Float](uplo Uplo, transA Transpose, diag Diag, m, n int, a []T, lda int, b []T, ldb int) {
	// op'(A) is the flipped transpose.
	t := Trans
	if transA == Trans {
		t = NoTrans
	}
	rowBuf := getScratch[T](n)
	row := rowBuf.buf
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		Trmv(uplo, t, diag, n, a, lda, row, 1)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
	rowBuf.release()
}

// Trsm solves one of the triangular systems
//
//	op(A)·X = α·B   (side == Left)
//	X·op(A) = α·B   (side == Right)
//
// in place: X overwrites the m×n matrix B. A is m×m (Left) or n×n (Right).
// Triangles larger than trsmBlock are solved recursively: the triangle is
// split in half, each half solved in turn, and the rectangular coupling
// block applied as a GEMM update that inherits the packed kernel's
// throughput — so tile-sized solves run at GEMM speed rather than the
// substitution loops' (which handle only the trsmBlock-sized diagonal
// leaves).
func Trsm[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, alpha T, a []T, lda int, b []T, ldb int) {
	checkSide(side)
	checkUplo(uplo)
	checkTrans(transA)
	checkDiag(diag)
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("A", na, na, a, lda)
	checkMatrix("B", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	start := trsmMetrics.Start()
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			if alpha == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				Scal(m, alpha, col, 1)
			}
		}
		if alpha == 0 {
			// B was zeroed without any solve; no product flops were spent.
			trsmMetrics.Stop(start, 0)
			return
		}
	}
	trsmRec(side, uplo, transA, diag, m, n, a, lda, b, ldb)
	trsmMetrics.Stop(start, int64(m)*int64(n)*int64(na))
}

// trsmBlock is the diagonal-leaf cutoff of the recursive Trsm: triangles of
// this order and below run the substitution loops, everything above splits
// so the off-diagonal coupling goes through gemmAccum.
const trsmBlock = 32

// trsmRec recursively solves op(A)·X = B (Left) or X·op(A) = B (Right) in
// place with α already applied. The triangle is halved; the rectangular
// block coupling the two halves becomes one gemmAccum update.
func trsmRec[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, a []T, lda int, b []T, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if na <= trsmBlock {
		trsmSmall(side, uplo, transA, diag, m, n, a, lda, b, ldb)
		return
	}
	n1 := na / 2
	n2 := na - n1
	a11 := a
	a22 := a[n1+n1*lda:]
	// Off-diagonal block of A: lower stores A21 (n2×n1) at a[n1:], upper
	// stores A12 (n1×n2) at a[n1*lda:].
	lowerEff := (uplo == Lower) == (transA == NoTrans)
	if side == Left {
		b1, b2 := b, b[n1:]
		if lowerEff {
			// [L11 0; L21 L22]·[X1; X2] = [B1; B2]: solve X1, update, solve X2.
			trsmRec(side, uplo, transA, diag, n1, n, a11, lda, b1, ldb)
			if uplo == Lower {
				gemmAccum(NoTrans, NoTrans, n2, n, n1, T(-1), a[n1:], lda, b1, ldb, b2, ldb)
			} else { // op(A)21 = A12ᵀ
				gemmAccum(Trans, NoTrans, n2, n, n1, T(-1), a[n1*lda:], lda, b1, ldb, b2, ldb)
			}
			trsmRec(side, uplo, transA, diag, n2, n, a22, lda, b2, ldb)
			return
		}
		// [U11 U12; 0 U22]·[X1; X2] = [B1; B2]: solve X2, update, solve X1.
		trsmRec(side, uplo, transA, diag, n2, n, a22, lda, b2, ldb)
		if uplo == Upper {
			gemmAccum(NoTrans, NoTrans, n1, n, n2, T(-1), a[n1*lda:], lda, b2, ldb, b1, ldb)
		} else { // op(A)12 = A21ᵀ
			gemmAccum(Trans, NoTrans, n1, n, n2, T(-1), a[n1:], lda, b2, ldb, b1, ldb)
		}
		trsmRec(side, uplo, transA, diag, n1, n, a11, lda, b1, ldb)
		return
	}
	// side == Right: split the columns of B.
	b1, b2 := b, b[n1*ldb:]
	if lowerEff {
		// [X1 X2]·[L11 0; L21 L22] = [B1 B2]: X2·L22 = B2 first, then
		// B1 -= X2·op(A)21 and X1·L11 = B1.
		trsmRec(side, uplo, transA, diag, m, n2, a22, lda, b2, ldb)
		if uplo == Lower {
			gemmAccum(NoTrans, NoTrans, m, n1, n2, T(-1), b2, ldb, a[n1:], lda, b1, ldb)
		} else { // op(A)21 = A12ᵀ
			gemmAccum(NoTrans, Trans, m, n1, n2, T(-1), b2, ldb, a[n1*lda:], lda, b1, ldb)
		}
		trsmRec(side, uplo, transA, diag, m, n1, a11, lda, b1, ldb)
		return
	}
	// [X1 X2]·[U11 U12; 0 U22] = [B1 B2]: X1·U11 = B1 first, then
	// B2 -= X1·op(A)12 and X2·U22 = B2.
	trsmRec(side, uplo, transA, diag, m, n1, a11, lda, b1, ldb)
	if uplo == Upper {
		gemmAccum(NoTrans, NoTrans, m, n2, n1, T(-1), b1, ldb, a[n1*lda:], lda, b2, ldb)
	} else { // op(A)12 = A21ᵀ
		gemmAccum(NoTrans, Trans, m, n2, n1, T(-1), b1, ldb, a[n1:], lda, b2, ldb)
	}
	trsmRec(side, uplo, transA, diag, m, n2, a22, lda, b2, ldb)
}

// trsmSmall runs the substitution loops on a diagonal leaf (α = 1).
func trsmSmall[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, a []T, lda int, b []T, ldb int) {
	unit := diag == Unit
	switch {
	case side == Left && transA == NoTrans && uplo == Lower:
		// Forward substitution, rank-1 style over columns of A so that the
		// inner updates stream down contiguous columns of B.
		for k := 0; k < m; k++ {
			akk := a[k+k*lda]
			acol := a[k*lda:]
			for j := 0; j < n; j++ {
				bcol := b[j*ldb:]
				if !unit {
					bcol[k] /= akk
				}
				bk := bcol[k]
				if bk == 0 {
					continue
				}
				for i := k + 1; i < m; i++ {
					bcol[i] -= bk * acol[i]
				}
			}
		}
	case side == Left && transA == NoTrans && uplo == Upper:
		for k := m - 1; k >= 0; k-- {
			akk := a[k+k*lda]
			acol := a[k*lda:]
			for j := 0; j < n; j++ {
				bcol := b[j*ldb:]
				if !unit {
					bcol[k] /= akk
				}
				bk := bcol[k]
				if bk == 0 {
					continue
				}
				for i := 0; i < k; i++ {
					bcol[i] -= bk * acol[i]
				}
			}
		}
	case side == Left && transA == Trans:
		// Solve column-by-column with Trsv (Aᵀ solves use dot products over
		// contiguous columns of A).
		for j := 0; j < n; j++ {
			Trsv(uplo, Trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
	case side == Right && transA == NoTrans && uplo == Lower:
		// X·A = B: process columns of X right-to-left.
		for k := n - 1; k >= 0; k-- {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			// B[:,j] -= A[k,j]·X[:,k] for j < k (A lower: A[k,j] stored).
			for j := 0; j < k; j++ {
				akj := a[k+j*lda]
				if akj == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= akj * bk[i]
				}
			}
		}
	case side == Right && transA == NoTrans && uplo == Upper:
		for k := 0; k < n; k++ {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			for j := k + 1; j < n; j++ {
				akj := a[k+j*lda]
				if akj == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= akj * bk[i]
				}
			}
		}
	case side == Right && transA == Trans && uplo == Lower:
		// X·Aᵀ = B with A lower: Aᵀ upper, columns left-to-right.
		for k := 0; k < n; k++ {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			// (Aᵀ)[k,j] = A[j,k] for j > k.
			acol := a[k*lda:]
			for j := k + 1; j < n; j++ {
				ajk := acol[j]
				if ajk == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= ajk * bk[i]
				}
			}
		}
	default: // side == Right && transA == Trans && uplo == Upper
		for k := n - 1; k >= 0; k-- {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			acol := a[k*lda:]
			for j := 0; j < k; j++ {
				ajk := acol[j]
				if ajk == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= ajk * bk[i]
				}
			}
		}
	}
}
