package blas

// Syrk computes the symmetric rank-k update
//
//	C ← α·A·Aᵀ + β·C   (trans == NoTrans, A is n×k)
//	C ← α·Aᵀ·A + β·C   (trans == Trans,   A is k×n)
//
// where only the uplo triangle of the n×n matrix C is referenced and updated.
func Syrk[T Float](uplo Uplo, trans Transpose, n, k int, alpha T, a []T, lda int, beta T, c []T, ldc int) {
	checkUplo(uplo)
	checkTrans(trans)
	if trans == NoTrans {
		checkMatrix("A", n, k, a, lda)
	} else {
		checkMatrix("A", k, n, a, lda)
	}
	checkMatrix("C", n, n, c, ldc)
	if n == 0 {
		return
	}
	start := syrkMetrics.Start()
	defer func() { syrkMetrics.Stop(start, int64(n)*int64(n+1)*int64(k)) }()

	// Scale the referenced triangle of C.
	if beta != 1 {
		for j := 0; j < n; j++ {
			lo, hi := 0, j+1
			if uplo == Lower {
				lo, hi = j, n
			}
			col := c[j*ldc:]
			if beta == 0 {
				for i := lo; i < hi; i++ {
					col[i] = 0
				}
			} else {
				for i := lo; i < hi; i++ {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}

	if trans == NoTrans {
		// C[i,j] += α Σ_l A[i,l]·A[j,l]: accumulate column-wise axpy.
		for l := 0; l < k; l++ {
			acol := a[l*lda : l*lda+n]
			for j := 0; j < n; j++ {
				v := alpha * acol[j]
				if v == 0 {
					continue
				}
				ccol := c[j*ldc:]
				if uplo == Lower {
					for i := j; i < n; i++ {
						ccol[i] += v * acol[i]
					}
				} else {
					for i := 0; i <= j; i++ {
						ccol[i] += v * acol[i]
					}
				}
			}
		}
		return
	}
	// trans == Trans: C[i,j] += α·A[:,i]ᵀA[:,j]; columns contiguous.
	for j := 0; j < n; j++ {
		ajcol := a[j*lda : j*lda+k]
		ccol := c[j*ldc:]
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			aicol := a[i*lda : i*lda+k]
			var s T
			for l, v := range ajcol {
				s += aicol[l] * v
			}
			ccol[i] += alpha * s
		}
	}
}

// Symm computes C ← α·A·B + β·C (side == Left) or C ← α·B·A + β·C
// (side == Right), where A is symmetric with only the uplo triangle stored
// and C is m×n.
func Symm[T Float](side Side, uplo Uplo, m, n int, alpha T, a []T, lda int, b []T, ldb int, beta T, c []T, ldc int) {
	checkSide(side)
	checkUplo(uplo)
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("A", na, na, a, lda)
	checkMatrix("B", m, n, b, ldb)
	checkMatrix("C", m, n, c, ldc)
	if m == 0 || n == 0 {
		return
	}
	// Symm appears only on cold paths here; expand the symmetric operand and
	// delegate to Gemm rather than duplicating its blocking.
	full := make([]T, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			var v T
			if (uplo == Lower && i >= j) || (uplo == Upper && i <= j) {
				v = a[i+j*lda]
			} else {
				v = a[j+i*lda]
			}
			full[i+j*na] = v
		}
	}
	if side == Left {
		Gemm(NoTrans, NoTrans, m, n, m, alpha, full, na, b, ldb, beta, c, ldc)
	} else {
		Gemm(NoTrans, NoTrans, m, n, n, alpha, b, ldb, full, na, beta, c, ldc)
	}
}

// Trmm computes B ← α·op(A)·B (side == Left) or B ← α·B·op(A)
// (side == Right) in place, where A is triangular and B is m×n.
func Trmm[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, alpha T, a []T, lda int, b []T, ldb int) {
	checkSide(side)
	checkUplo(uplo)
	checkTrans(transA)
	checkDiag(diag)
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("A", na, na, a, lda)
	checkMatrix("B", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	start := trmmMetrics.Start()
	defer func() { trmmMetrics.Stop(start, int64(m)*int64(n)*int64(na)) }()
	if side == Left {
		// Apply the triangular product column-by-column of B via Trmv.
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			Trmv(uplo, transA, diag, m, a, lda, col, 1)
			if alpha != 1 {
				Scal(m, alpha, col, 1)
			}
		}
		return
	}
	// side == Right: Bᵀ ← α·op(A)ᵀ·Bᵀ; operate on rows of B.
	// op'(A) is the flipped transpose.
	t := Trans
	if transA == Trans {
		t = NoTrans
	}
	row := make([]T, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		Trmv(uplo, t, diag, n, a, lda, row, 1)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = alpha * row[j]
		}
	}
}

// Trsm solves one of the triangular systems
//
//	op(A)·X = α·B   (side == Left)
//	X·op(A) = α·B   (side == Right)
//
// in place: X overwrites the m×n matrix B. A is m×m (Left) or n×n (Right).
func Trsm[T Float](side Side, uplo Uplo, transA Transpose, diag Diag, m, n int, alpha T, a []T, lda int, b []T, ldb int) {
	checkSide(side)
	checkUplo(uplo)
	checkTrans(transA)
	checkDiag(diag)
	na := m
	if side == Right {
		na = n
	}
	checkMatrix("A", na, na, a, lda)
	checkMatrix("B", m, n, b, ldb)
	if m == 0 || n == 0 {
		return
	}
	start := trsmMetrics.Start()
	defer func() { trsmMetrics.Stop(start, int64(m)*int64(n)*int64(na)) }()
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			if alpha == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				Scal(m, alpha, col, 1)
			}
		}
		if alpha == 0 {
			return
		}
	}

	unit := diag == Unit
	switch {
	case side == Left && transA == NoTrans && uplo == Lower:
		// Forward substitution, rank-1 style over columns of A so that the
		// inner updates stream down contiguous columns of B.
		for k := 0; k < m; k++ {
			akk := a[k+k*lda]
			acol := a[k*lda:]
			for j := 0; j < n; j++ {
				bcol := b[j*ldb:]
				if !unit {
					bcol[k] /= akk
				}
				bk := bcol[k]
				if bk == 0 {
					continue
				}
				for i := k + 1; i < m; i++ {
					bcol[i] -= bk * acol[i]
				}
			}
		}
	case side == Left && transA == NoTrans && uplo == Upper:
		for k := m - 1; k >= 0; k-- {
			akk := a[k+k*lda]
			acol := a[k*lda:]
			for j := 0; j < n; j++ {
				bcol := b[j*ldb:]
				if !unit {
					bcol[k] /= akk
				}
				bk := bcol[k]
				if bk == 0 {
					continue
				}
				for i := 0; i < k; i++ {
					bcol[i] -= bk * acol[i]
				}
			}
		}
	case side == Left && transA == Trans:
		// Solve column-by-column with Trsv (Aᵀ solves use dot products over
		// contiguous columns of A).
		for j := 0; j < n; j++ {
			Trsv(uplo, Trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
	case side == Right && transA == NoTrans && uplo == Lower:
		// X·A = B: process columns of X right-to-left.
		for k := n - 1; k >= 0; k-- {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			// B[:,j] -= A[k,j]·X[:,k] for j < k (A lower: A[k,j] stored).
			for j := 0; j < k; j++ {
				akj := a[k+j*lda]
				if akj == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= akj * bk[i]
				}
			}
		}
	case side == Right && transA == NoTrans && uplo == Upper:
		for k := 0; k < n; k++ {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			for j := k + 1; j < n; j++ {
				akj := a[k+j*lda]
				if akj == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= akj * bk[i]
				}
			}
		}
	case side == Right && transA == Trans && uplo == Lower:
		// X·Aᵀ = B with A lower: Aᵀ upper, columns left-to-right.
		for k := 0; k < n; k++ {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			// (Aᵀ)[k,j] = A[j,k] for j > k.
			acol := a[k*lda:]
			for j := k + 1; j < n; j++ {
				ajk := acol[j]
				if ajk == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= ajk * bk[i]
				}
			}
		}
	default: // side == Right && transA == Trans && uplo == Upper
		for k := n - 1; k >= 0; k-- {
			akk := a[k+k*lda]
			bk := b[k*ldb:]
			if !unit {
				for i := 0; i < m; i++ {
					bk[i] /= akk
				}
			}
			acol := a[k*lda:]
			for j := 0; j < k; j++ {
				ajk := acol[j]
				if ajk == 0 {
					continue
				}
				bj := b[j*ldb:]
				for i := 0; i < m; i++ {
					bj[i] -= ajk * bk[i]
				}
			}
		}
	}
}
