package blas

// Register-tile microkernels for the packed GEMM path. Each computes one
// mr×nr tile of C += α·op(A)·op(B) from an mr-row sliver of packed op(A)
// (column-major within the sliver, see packA) and an nr-column sliver of
// packed op(B) (row-major within the sliver, see packB), keeping the mr·nr
// partial sums in local variables so the inner loop touches memory only for
// the mr+nr streaming panel reads. Slivers are zero-padded by packing, so
// the kernels never branch on edges; callers route partial tiles through a
// zeroed scratch tile instead.

// Maximum compiled register-tile footprint; the macro kernel's edge scratch
// is sized by these.
const (
	maxMR = 8
	maxNR = 4
)

// microKernel is the signature shared by all register-tile kernels: an
// mr×nr tile at c (leading dimension ldc) accumulates α times the sliver
// product over kb depth steps.
type microKernel[T Float] func(kb int, ap, bp []T, alpha T, c []T, ldc int)

// kernelFor selects the compiled microkernel for the given register-tile
// height. mr == 8 is only ever requested for float64 on CPUs with the
// AVX2+FMA assembly kernel (see gemmPacked); everything else takes the
// generic 4×4 kernel, which the compiler specializes per element type
// anyway.
func kernelFor[T Float](mr int) microKernel[T] {
	if mr == 8 {
		return microKern8x4AvxT[T]
	}
	return microKern4x4[T]
}

// is64 reports whether T is exactly float64. Named ~float64 types return
// false and use the generic kernels.
func is64[T Float]() bool {
	var z T
	_, ok := any(z).(float64)
	return ok
}

// microKern4x4 is the generic 4×4 register-tile kernel.
func microKern4x4[T Float](kb int, ap, bp []T, alpha T, c []T, ldc int) {
	var (
		c00, c10, c20, c30 T
		c01, c11, c21, c31 T
		c02, c12, c22, c32 T
		c03, c13, c23, c33 T
	)
	for l := 0; l < kb; l++ {
		a := ap[l*4 : l*4+4]
		b := bp[l*4 : l*4+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
	}
	d0 := c[0:4]
	d1 := c[ldc : ldc+4]
	d2 := c[2*ldc : 2*ldc+4]
	d3 := c[3*ldc : 3*ldc+4]
	d0[0] += alpha * c00
	d0[1] += alpha * c10
	d0[2] += alpha * c20
	d0[3] += alpha * c30
	d1[0] += alpha * c01
	d1[1] += alpha * c11
	d1[2] += alpha * c21
	d1[3] += alpha * c31
	d2[0] += alpha * c02
	d2[1] += alpha * c12
	d2[2] += alpha * c22
	d2[3] += alpha * c32
	d3[0] += alpha * c03
	d3[1] += alpha * c13
	d3[2] += alpha * c23
	d3[3] += alpha * c33
}

// microKern8x4AvxT adapts the assembly float64 8×4 kernel to the generic
// microKernel signature. The type assertions are allocation-free and the
// function is only reachable when T is float64 (kernelFor is handed mr == 8
// only in that case).
func microKern8x4AvxT[T Float](kb int, ap, bp []T, alpha T, c []T, ldc int) {
	microKern8x4F64Avx(kb, any(ap).([]float64), any(bp).([]float64), float64(alpha), any(c).([]float64), ldc)
}
