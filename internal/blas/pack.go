package blas

import "sync"

// Pack-buffer pool. Every level-3 scratch need in this package — packed
// op(A)/op(B) panels, Symm's densified operand, Trmm's row buffer — draws
// from one sync.Pool per element type, so scheduler-parallel tile kernels
// reach steady state with zero allocations per call. The pool stores
// *[]float64 / *[]float32 and the generic accessor recovers the []T view
// with an allocation-free type assertion (exact float32/float64
// instantiations only; named Float types fall back to plain make, which is
// correct but unpooled).
var (
	packPool64 = sync.Pool{New: func() any { return new([]float64) }}
	packPool32 = sync.Pool{New: func() any { return new([]float32) }}
)

// scratch is a pooled slice handle. Obtain with getScratch, return with
// release. The buffer contents are unspecified on acquisition.
type scratch[T Float] struct {
	buf []T
	p64 *[]float64
	p32 *[]float32
}

// getScratch returns a length-n scratch buffer, pooled when T is exactly
// float32 or float64.
func getScratch[T Float](n int) scratch[T] {
	var s scratch[T]
	var z T
	switch any(z).(type) {
	case float64:
		p := packPool64.Get().(*[]float64)
		if cap(*p) < n {
			*p = make([]float64, n)
		}
		s.p64 = p
		s.buf = any((*p)[:n]).([]T)
	case float32:
		p := packPool32.Get().(*[]float32)
		if cap(*p) < n {
			*p = make([]float32, n)
		}
		s.p32 = p
		s.buf = any((*p)[:n]).([]T)
	default:
		s.buf = make([]T, n)
	}
	return s
}

// release returns the buffer to its pool. The scratch must not be used
// afterwards.
func (s scratch[T]) release() {
	if s.p64 != nil {
		packPool64.Put(s.p64)
	} else if s.p32 != nil {
		packPool32.Put(s.p32)
	}
}

// packA packs the mb×kb panel of op(A) starting at logical row i0, depth l0
// into dst, normalizing the transpose away: dst holds ceil(mb/mr) slivers
// of mr rows each, sliver s laid out column-major as
//
//	dst[s·kb·mr + l·mr + i] = op(A)[i0+s·mr+i, l0+l]
//
// with rows beyond mb zero-filled, so the microkernel always reads a full
// mr×kb sliver with unit stride and never branches on the row edge.
func packA[T Float](trans Transpose, mb, kb int, a []T, lda, i0, l0, mr int, dst []T) {
	for s := 0; s*mr < mb; s++ {
		rows := min(mr, mb-s*mr)
		sl := dst[s*kb*mr:]
		if trans == NoTrans {
			// op(A)[i,l] = a[(i0+i) + (l0+l)·lda]: copy mr-row column chunks.
			base := i0 + s*mr + l0*lda
			for l := 0; l < kb; l++ {
				src := a[base+l*lda : base+l*lda+rows]
				d := sl[l*mr : l*mr+mr]
				copy(d, src)
				for i := rows; i < mr; i++ {
					d[i] = 0
				}
			}
		} else {
			// op(A)[i,l] = a[(l0+l) + (i0+i)·lda]: gather rows of Aᵀ, i.e.
			// contiguous columns of A, transposing into the sliver.
			for i := 0; i < rows; i++ {
				src := a[l0+(i0+s*mr+i)*lda:]
				for l := 0; l < kb; l++ {
					sl[l*mr+i] = src[l]
				}
			}
			for i := rows; i < mr; i++ {
				for l := 0; l < kb; l++ {
					sl[l*mr+i] = 0
				}
			}
		}
	}
}

// packB packs the kb×nb panel of op(B) starting at depth l0, logical column
// j0 into dst as ceil(nb/nr) slivers of nr columns each, sliver s laid out
// row-major as
//
//	dst[s·kb·nr + l·nr + j] = op(B)[l0+l, j0+s·nr+j]
//
// with columns beyond nb zero-filled.
func packB[T Float](trans Transpose, kb, nb int, b []T, ldb, l0, j0, nr int, dst []T) {
	for s := 0; s*nr < nb; s++ {
		cols := min(nr, nb-s*nr)
		sl := dst[s*kb*nr:]
		if trans == NoTrans {
			// op(B)[l,j] = b[(l0+l) + (j0+j)·ldb]: transpose nr columns of B
			// into row-major sliver order.
			for j := 0; j < cols; j++ {
				src := b[l0+(j0+s*nr+j)*ldb:]
				for l := 0; l < kb; l++ {
					sl[l*nr+j] = src[l]
				}
			}
			for j := cols; j < nr; j++ {
				for l := 0; l < kb; l++ {
					sl[l*nr+j] = 0
				}
			}
		} else {
			// op(B)[l,j] = b[(j0+j) + (l0+l)·ldb]: contiguous nr-column row
			// chunks of B.
			base := j0 + s*nr + l0*ldb
			for l := 0; l < kb; l++ {
				src := b[base+l*ldb : base+l*ldb+cols]
				d := sl[l*nr : l*nr+nr]
				copy(d, src)
				for j := cols; j < nr; j++ {
					d[j] = 0
				}
			}
		}
	}
}
